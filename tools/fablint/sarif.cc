#include "sarif.h"

#include <map>
#include <ostream>
#include <string>

namespace fab::lint {

namespace {

/// Minimal JSON string escaping: quotes, backslashes and control bytes.
/// Diagnostic text is ASCII by construction, so no UTF-16 pair handling.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* kHex = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xF];
          out += kHex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void WriteSarif(const std::vector<Violation>& violations, std::ostream& out) {
  const std::vector<RuleInfo>& rules = AllRules();
  std::map<std::string, size_t> rule_index;
  for (size_t i = 0; i < rules.size(); ++i) rule_index[rules[i].id] = i;

  out << "{\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"runs\": [\n"
      << "    {\n"
      << "      \"tool\": {\n"
      << "        \"driver\": {\n"
      << "          \"name\": \"fablint\",\n"
      << "          \"informationUri\": "
         "\"https://example.invalid/fablint\",\n"
      << "          \"rules\": [\n";
  for (size_t i = 0; i < rules.size(); ++i) {
    out << "            {\"id\": \"" << JsonEscape(rules[i].id)
        << "\", \"shortDescription\": {\"text\": \""
        << JsonEscape(rules[i].summary) << "\"}}"
        << (i + 1 < rules.size() ? "," : "") << "\n";
  }
  out << "          ]\n"
      << "        }\n"
      << "      },\n"
      << "      \"results\": [\n";
  for (size_t i = 0; i < violations.size(); ++i) {
    const Violation& v = violations[i];
    out << "        {\"ruleId\": \"" << JsonEscape(v.rule) << "\"";
    const auto it = rule_index.find(v.rule);
    if (it != rule_index.end()) {
      out << ", \"ruleIndex\": " << it->second;
    }
    out << ", \"level\": \"error\""
        << ", \"message\": {\"text\": \"" << JsonEscape(v.message) << "\"}"
        << ", \"locations\": [{\"physicalLocation\": {\"artifactLocation\": "
           "{\"uri\": \""
        << JsonEscape(v.path) << "\"}, \"region\": {\"startLine\": "
        << (v.line > 0 ? v.line : 1) << "}}}]}"
        << (i + 1 < violations.size() ? "," : "") << "\n";
  }
  out << "      ]\n"
      << "    }\n"
      << "  ]\n"
      << "}\n";
}

}  // namespace fab::lint
