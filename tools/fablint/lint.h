#ifndef FAB_TOOLS_FABLINT_LINT_H_
#define FAB_TOOLS_FABLINT_LINT_H_

#include <string>
#include <vector>

/// fablint — project-specific static analysis for the fab codebase.
///
/// The linter enforces the determinism and serving contracts that the
/// runtime golden tests can only spot-check: every rule here encodes a
/// clause of DESIGN.md ("derive RNG streams from (seed, unit_index)",
/// "never reduce over unordered container order", "no ambient clocks or
/// randomness") or a project hygiene/safety convention (FAB_CHECK over
/// assert, no float accumulators, guarded headers).
///
/// It is deliberately lexical, not a full C++ front end: sources are
/// masked (comments, string and character literals blanked out, layout
/// preserved) and then scanned token-wise. That keeps the tool a single
/// dependency-free binary that runs in milliseconds as a ctest entry,
/// at the cost of a small, documented false-positive surface — which is
/// what `// fablint:allow(<rule>)` suppressions are for.
namespace fab::lint {

/// One machine-applicable fix: replace bytes [begin, end) of the file the
/// owning Violation names with `replacement`. Offsets index the ORIGINAL
/// file contents (MaskSource preserves layout, so offsets computed on the
/// masked view are valid here). Applied by the --fix engine (fix.h),
/// which sorts, dedupes and overlap-checks edits per file.
struct Edit {
  size_t begin = 0;
  size_t end = 0;
  std::string replacement;
};

/// One diagnostic: where, which rule, and a human-readable explanation.
/// `fix` is empty for rules with no mechanical remedy; otherwise it holds
/// the span edits `--fix` would apply (guaranteed idempotent: the fixed
/// source no longer triggers the rule).
struct Violation {
  std::string path;  // as supplied (relative to --root when walking)
  int line = 0;      // 1-based
  std::string rule;
  std::string message;
  std::vector<Edit> fix;
};

/// One source file handed to the cross-file (repo-graph) pass: the
/// root-relative path plus the full file contents.
struct FileInput {
  std::string rel;
  std::string src;
};

struct RuleInfo {
  const char* id;
  const char* summary;
};

/// Stable, documented rule set (IDs appear in diagnostics, suppressions,
/// fixtures, and the README rule table).
const std::vector<RuleInfo>& AllRules();

struct Options {
  /// When true, path-based scoping is disabled and every rule applies to
  /// every file (used by the fixture tests). When false, rules honor their
  /// directory scopes: det-mt19937 is allowed inside src/util/random.*,
  /// det-unordered-iter only fires under src/core/, src/explain/ and
  /// src/ml/, and header-only rules skip .cc files.
  bool all_rules = false;
};

/// Returns `src` with comments, string literals and character literals
/// replaced by spaces. Line structure and column positions are preserved so
/// diagnostics computed on the masked text map 1:1 onto the original.
/// Exposed for testing.
std::string MaskSource(const std::string& src);

/// The inverse projection of MaskSource for comments: only comment text
/// survives, everything else (code, string/char literals) is blanked.
/// Layout is preserved. `fablint:allow` suppressions are parsed from this
/// view, so an allow-shaped string literal can never silence a finding.
std::string CommentText(const std::string& src);

/// Splits `src` into lines (without terminators). A trailing newline does
/// not produce an extra empty line.
std::vector<std::string> SplitLines(const std::string& src);

/// True when line `line` (1-based) or the line above in `comment_lines`
/// (the SplitLines of CommentText) carries `fablint:allow(<list>)` naming
/// `rule` or `*`. Shared by the per-file and repo-graph passes so both
/// honor suppressions identically.
bool AllowsRule(const std::vector<std::string>& comment_lines, int line,
                const std::string& rule);

/// Lints one in-memory source file. `rel_path` uses forward slashes and is
/// relative to the repository root (it drives rule scoping and appears in
/// diagnostics). Suppressed violations are dropped here.
std::vector<Violation> LintSource(const std::string& rel_path,
                                  const std::string& src,
                                  const Options& options);

}  // namespace fab::lint

#endif  // FAB_TOOLS_FABLINT_LINT_H_
