#ifndef FAB_TOOLS_FABLINT_DET_H_
#define FAB_TOOLS_FABLINT_DET_H_

#include <vector>

#include "callgraph.h"
#include "lint.h"
#include "repo_graph.h"

/// fablint pass 4 — determinism taint over the call graph, plus
/// blocking-under-lock detection. Four rules:
///
///   det-unordered-iteration  range-for / iterator loops over unordered
///                            containers whose body accumulates, appends
///                            or emits, inside a det-reachable function
///                            (sorted-copy-before-iterate is naturally
///                            safe: the loop then ranges over the copy)
///   det-pointer-key          pointer-keyed map/set declarations and
///                            pointer-comparison sorts in files that
///                            define det-reachable functions (iteration
///                            and tie-break order = allocation order)
///   det-raw-rng              raw RNG entry points the per-file rules
///                            do not cover (srand, drand48, rand_r,
///                            random_shuffle, default_random_engine),
///                            scoped to det-reachable bodies
///   conc-blocking-under-lock known-blocking operations (future waits,
///                            HttpClient round-trips, sleeps, file IO) —
///                            or calls to functions that transitively
///                            perform them — while a mutex is held per
///                            the pass-2 lock-region walker
///
/// The det-* rules apply only where the call graph says a determinism
/// root (`fablint:det-root`) can reach — reachability IS the scope.
/// Like every other pass: lexical, `fablint:allow` honored, and when
/// `--all-rules` is off the rules are further scoped to src/.
namespace fab::lint {

std::vector<Violation> LintDet(const std::vector<FileNode>& nodes,
                               const CallGraph& graph,
                               const Options& options);

}  // namespace fab::lint

#endif  // FAB_TOOLS_FABLINT_DET_H_
