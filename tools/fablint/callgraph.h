#ifndef FAB_TOOLS_FABLINT_CALLGRAPH_H_
#define FAB_TOOLS_FABLINT_CALLGRAPH_H_

#include <iosfwd>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint.h"
#include "repo_graph.h"

/// fablint pass 4 infrastructure — the repo-wide function-level call
/// graph.
///
/// Built from the shared BuildNodes() tokenization with the same
/// PascalCase heuristics as the semantic pass: a *definition* is a
/// PascalCase name followed by a parameter list whose head resolves to a
/// `{` body (constructor initializer lists, `const`/`noexcept`/
/// `override` qualifiers and trailing return types are walked over); a
/// *call site* is any other PascalCase name followed by `(` inside a
/// definition's body. Identity is the bare function name — overloads
/// and same-named methods on different classes collapse into one graph
/// node. That over-approximates reachability, which is the conservative
/// direction here: the determinism rules (det.h) only ever check MORE
/// code than a precise graph would, never less.
///
/// Determinism roots are marked in source with a comment whose first
/// word is the marker `fablint:det-root` (quote it in prose so
/// documentation never marks a function), on the definition line or up
/// to two lines above — the same placement contract as
/// `fablint:allow`. The det-reachable set is the forward closure of the
/// root names over the call edges; the det-* rules in det.h apply only
/// inside det-reachable bodies.
namespace fab::lint {

/// One function (or constructor) definition found in the walked set.
struct FunctionDef {
  std::string name;      // bare name (graph identity)
  std::string display;   // Class::Name when the class is known
  size_t node = 0;       // index into the BuildNodes() vector
  int line = 0;          // 1-based line of the name token
  size_t head = 0;       // token index of the name
  size_t body_begin = 0; // token index of the body's '{'
  size_t body_end = 0;   // token index of the matching '}'
  bool is_root = false;  // carries a det-root marker
  std::set<std::string> calls;  // bare callee names in the body
};

struct CallGraph {
  std::vector<FunctionDef> defs;  // sorted by (rel, line, display)
  /// Union of per-def calls, keyed by caller bare name.
  std::map<std::string, std::set<std::string>> calls;
  std::set<std::string> defined;        // every defined bare name
  std::set<std::string> roots;          // det-root bare names
  std::set<std::string> det_reachable;  // closure of roots over calls
};

/// Builds the call graph over `nodes` (BuildNodes output).
CallGraph BuildCallGraph(const std::vector<FileNode>& nodes);

/// Prints the graph (one block per definition, its outgoing edges, root
/// and det-reachable marks) to `out` — the `--callgraph-dump` view,
/// golden-pinned by tests/fablint_test.cc.
void CallGraphDump(const CallGraph& graph, const std::vector<FileNode>& nodes,
                   std::ostream& out);

}  // namespace fab::lint

#endif  // FAB_TOOLS_FABLINT_CALLGRAPH_H_
