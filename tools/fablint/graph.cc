#include "graph.h"

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <ostream>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "repo_graph.h"

namespace fab::lint {

namespace {

// --- Lock-order pass. -------------------------------------------------------

struct LockSite {
  std::string rel;
  int line = 0;
};

bool SiteLess(const LockSite& a, const LockSite& b) {
  if (a.rel != b.rel) return a.rel < b.rel;
  return a.line < b.line;
}

/// An ordered pair "A was held when B was acquired" -> earliest site.
using LockPairs = std::map<std::pair<std::string, std::string>, LockSite>;

/// Records every nested acquisition into `pairs` via WalkLockRegions —
/// the lock-order rule's per-file collection step.
void ScanLocks(const FileNode& node, LockPairs& pairs) {
  LockWalkHooks hooks;
  hooks.on_acquire = [&node, &pairs](const std::string& qual, int line,
                                     const std::vector<HeldLock>& held) {
    for (const HeldLock& h : held) {
      if (h.qual == qual) continue;
      const auto key = std::make_pair(h.qual, qual);
      const LockSite site{node.rel, line};
      auto it = pairs.find(key);
      if (it == pairs.end()) {
        pairs.emplace(key, site);
      } else if (SiteLess(site, it->second)) {
        it->second = site;  // keep the (path, line)-smallest site
      }
    }
  };
  WalkLockRegions(node, hooks);
}

}  // namespace

/// Mutex names are qualified "Class::member" inside (out-of-line or
/// inline) member functions, else "file.cc::name" — so internal-linkage
/// file-scope mutexes in different TUs stay distinct.
void WalkLockRegions(const FileNode& node, const LockWalkHooks& hooks) {
  const std::vector<Tok>& toks = node.toks;

  std::vector<HeldLock> held;
  int depth = 0;

  // Class context: inline member bodies via the class-scope stack, out-of-
  // line member definitions via `Class::method(...) {` heads.
  std::vector<std::pair<int, std::string>> class_stack;  // (depth, name)
  std::vector<char> scopes;                              // 'n' | 'c' | 'o'
  char pending = 0;
  std::string pending_class_name;
  bool pending_name_frozen = false;
  std::vector<std::pair<int, std::string>> method_stack;  // (depth, class)
  std::string pending_method_class;

  const auto current_class = [&]() -> std::string {
    int best_depth = -1;
    std::string best;
    if (!class_stack.empty() && class_stack.back().first > best_depth) {
      best_depth = class_stack.back().first;
      best = class_stack.back().second;
    }
    if (!method_stack.empty() && method_stack.back().first > best_depth) {
      best = method_stack.back().second;
    }
    return best;
  };
  const auto qualify = [&](const std::string& name) {
    const std::string cls = current_class();
    if (!cls.empty()) return cls + "::" + name;
    return node.rel + "::" + name;
  };
  const auto acquire = [&](const std::string& name, int line, bool manual) {
    const std::string qual = qualify(name);
    if (hooks.on_acquire) hooks.on_acquire(qual, line, held);
    held.push_back(HeldLock{qual, depth, manual});
  };

  for (size_t i = 0; i < toks.size(); ++i) {
    const Tok& t = toks[i];
    if (hooks.on_token) hooks.on_token(i, held);
    if (!t.word) {
      if (t.text == "{") {
        char tag = pending == 'n' ? 'n' : pending == 'c' ? 'c' : 'o';
        scopes.push_back(tag);
        ++depth;
        if (tag == 'c' && !pending_class_name.empty()) {
          class_stack.emplace_back(depth, pending_class_name);
        }
        if (tag == 'o' && !pending_method_class.empty()) {
          method_stack.emplace_back(depth, pending_method_class);
        }
        pending = 0;
        pending_class_name.clear();
        pending_name_frozen = false;
        pending_method_class.clear();
      } else if (t.text == "}") {
        if (!class_stack.empty() && class_stack.back().first == depth) {
          class_stack.pop_back();
        }
        if (!method_stack.empty() && method_stack.back().first == depth) {
          method_stack.pop_back();
        }
        if (!scopes.empty()) scopes.pop_back();
        --depth;
        while (!held.empty() && held.back().depth > depth) held.pop_back();
      } else if (t.text == ";") {
        pending = 0;
        pending_class_name.clear();
        pending_name_frozen = false;
        pending_method_class.clear();
      } else if (t.text == ":" && pending == 'c' &&
                 (i + 1 >= toks.size() || toks[i + 1].text != ":") &&
                 (i == 0 || toks[i - 1].text != ":")) {
        pending_name_frozen = true;  // base-clause: class name is final
      }
      continue;
    }

    // Word token. Track class heads and out-of-line method definitions.
    if (t.text == "namespace") {
      pending = 'n';
      continue;
    }
    if (t.text == "class" || t.text == "struct" || t.text == "union" ||
        t.text == "enum") {
      pending = 'c';
      pending_name_frozen = false;
      pending_class_name.clear();
      continue;
    }
    if (pending == 'c' && !pending_name_frozen &&
        Keywords().count(t.text) == 0) {
      pending_class_name = t.text;
    }
    // `Cls::method(` (possibly `Cls::~Cls(`): remember Cls until the body
    // brace opens.
    if (i + 3 < toks.size() && toks[i + 1].text == ":" &&
        toks[i + 2].text == ":" &&
        (toks[i + 3].word || toks[i + 3].text == "~") &&
        Keywords().count(t.text) == 0) {
      size_t m = i + 3;
      if (toks[m].text == "~" && m + 1 < toks.size()) ++m;
      if (toks[m].word && m + 1 < toks.size() && toks[m + 1].text == "(") {
        pending_method_class = t.text;
      }
    }

    // RAII guard declaration.
    if (t.text == "MutexLock" || t.text == "lock_guard" ||
        t.text == "unique_lock" || t.text == "scoped_lock") {
      size_t j = i + 1;
      if (j < toks.size() && toks[j].text == "<") {  // template arguments
        int angle = 1;
        ++j;
        while (j < toks.size() && angle > 0) {
          if (toks[j].text == "<") ++angle;
          if (toks[j].text == ">") --angle;
          ++j;
        }
      }
      if (j < toks.size() && toks[j].word) {  // guard variable name
        const int line = toks[j].line;
        ++j;
        if (j < toks.size() && toks[j].text == "(") {
          // Argument list up to the matching ')'.
          int paren = 1;
          ++j;
          std::vector<const Tok*> args;
          bool simple = true;
          while (j < toks.size() && paren > 0) {
            if (toks[j].text == "(") ++paren;
            if (toks[j].text == ")") --paren;
            if (paren > 0) {
              if (toks[j].word) {
                args.push_back(&toks[j]);
              } else {
                simple = false;  // '.', ',', '::', ... — not a bare name
              }
            }
            ++j;
          }
          if (simple && args.size() == 1) {
            acquire(args[0]->text, line, /*manual=*/false);
          }
        }
      }
      continue;
    }

    // Manual `name.Lock()` / `name.lock()` and the matching unlocks.
    if ((t.text == "Lock" || t.text == "lock" || t.text == "Unlock" ||
         t.text == "unlock") &&
        i >= 2 && toks[i - 1].text == "." && toks[i - 2].word &&
        i + 1 < toks.size() && toks[i + 1].text == "(") {
      const std::string name = toks[i - 2].text;
      if (t.text == "Lock" || t.text == "lock") {
        acquire(name, t.line, /*manual=*/true);
      } else {
        const std::string qual = qualify(name);
        for (size_t h = held.size(); h-- > 0;) {
          if (held[h].manual && held[h].qual == qual) {
            held.erase(held.begin() + static_cast<long>(h));
            break;
          }
        }
      }
    }
  }
}

namespace {

// --- The four rules. --------------------------------------------------------

void Report(std::vector<Violation>& out, const FileNode& node, int line,
            const char* rule, std::string message,
            std::vector<Edit> fix = {}) {
  if (AllowsRule(node.comment_lines, line, rule)) return;
  out.push_back(
      Violation{node.rel, line, rule, std::move(message), std::move(fix)});
}

/// Cycle detection over the resolved include graph (iterative DFS with
/// an explicit color map). One diagnostic per cycle, anchored at the
/// lexicographically smallest member's outgoing #include.
void CheckIncludeCycles(const std::vector<FileNode>& nodes,
                        const std::map<std::string, size_t>& index,
                        std::vector<Violation>& out) {
  const size_t n = nodes.size();
  std::vector<int> color(n, 0);  // 0 white, 1 on stack, 2 done
  std::vector<std::vector<size_t>> adj(n);
  for (size_t i = 0; i < n; ++i) {
    for (const IncludeEdge& e : nodes[i].includes) {
      if (e.target.empty()) continue;
      const size_t j = index.at(e.target);
      if (j != i) adj[i].push_back(j);
    }
  }

  std::vector<size_t> stack;          // current DFS path
  std::set<std::set<size_t>> seen;    // cycles already reported
  const std::function<void(size_t)> dfs = [&](size_t u) {
    color[u] = 1;
    stack.push_back(u);
    for (size_t v : adj[u]) {
      if (color[v] == 0) {
        dfs(v);
      } else if (color[v] == 1) {
        // Found a back edge: the cycle is the path suffix from v to u.
        auto at = std::find(stack.begin(), stack.end(), v);
        std::vector<size_t> cycle(at, stack.end());
        std::set<size_t> key(cycle.begin(), cycle.end());
        if (!seen.insert(key).second) continue;
        // Rotate so the lexicographically smallest path is the anchor.
        size_t smallest = 0;
        for (size_t k = 1; k < cycle.size(); ++k) {
          if (nodes[cycle[k]].rel < nodes[cycle[smallest]].rel) smallest = k;
        }
        std::rotate(cycle.begin(),
                    cycle.begin() + static_cast<long>(smallest), cycle.end());
        const FileNode& anchor = nodes[cycle[0]];
        const std::string& next_rel =
            nodes[cycle.size() > 1 ? cycle[1] : cycle[0]].rel;
        int line = 1;
        for (const IncludeEdge& e : anchor.includes) {
          if (e.target == next_rel) {
            line = e.line;
            break;
          }
        }
        std::string path;
        for (size_t k : cycle) path += nodes[k].rel + " -> ";
        path += anchor.rel;
        Report(out, anchor, line, "graph-include-cycle",
               "include cycle: " + path +
                   " (break it with a forward declaration or by splitting "
                   "the header)");
      }
    }
    stack.pop_back();
    color[u] = 2;
  };
  for (size_t i = 0; i < n; ++i) {
    if (color[i] == 0) dfs(i);
  }
}

/// Transitive export closure of a header (cycle-safe, memoized): what an
/// includer can legitimately be using from it, umbrella headers included.
const std::set<std::string>& ExportClosure(
    size_t i, const std::vector<FileNode>& nodes,
    const std::map<std::string, size_t>& index,
    std::vector<std::unique_ptr<std::set<std::string>>>& memo,
    std::vector<bool>& visiting) {
  static const std::set<std::string> kEmpty;
  if (memo[i] != nullptr) return *memo[i];
  if (visiting[i]) return kEmpty;  // include cycle: flagged elsewhere
  visiting[i] = true;
  auto closure = std::make_unique<std::set<std::string>>(nodes[i].exports);
  for (const IncludeEdge& e : nodes[i].includes) {
    if (e.target.empty()) continue;
    const std::set<std::string>& sub =
        ExportClosure(index.at(e.target), nodes, index, memo, visiting);
    closure->insert(sub.begin(), sub.end());
  }
  visiting[i] = false;
  memo[i] = std::move(closure);
  return *memo[i];
}

/// The autofix for an unused include deletes its whole line: offsets are
/// recomputed from the masked text (layout-identical to the source), so
/// the edit span is exact even though the graph pass works line-wise.
std::vector<Edit> DeleteLineFix(const FileNode& node, int line) {
  size_t begin = 0;
  int at = 1;
  while (at < line && begin < node.masked.size()) {
    if (node.masked[begin] == '\n') ++at;
    ++begin;
  }
  if (at != line) return {};
  size_t end = begin;
  while (end < node.masked.size() && node.masked[end] != '\n') ++end;
  if (end < node.masked.size()) ++end;  // take the newline too
  return {Edit{begin, end, ""}};
}

void CheckUnusedIncludes(const std::vector<FileNode>& nodes,
                         const std::map<std::string, size_t>& index,
                         bool all_rules, std::vector<Violation>& out) {
  std::vector<std::unique_ptr<std::set<std::string>>> memo(nodes.size());
  std::vector<bool> visiting(nodes.size(), false);
  for (const FileNode& node : nodes) {
    if (!all_rules && !StartsWith(node.rel, "src/")) continue;
    std::set<std::string> reported;
    for (const IncludeEdge& e : node.includes) {
      if (e.target.empty()) continue;
      const size_t j = index.at(e.target);
      if (!nodes[j].is_header) continue;
      if (Stem(node.rel) == Stem(e.target)) continue;  // paired own header
      if (!reported.insert(e.target).second) continue;
      // Honor the standard IWYU pragmas: `export` marks a deliberate
      // re-export (umbrella headers), `keep` a deliberate side-effect
      // include. Both silence this rule for that line.
      const size_t line_idx = static_cast<size_t>(e.line) - 1;
      if (line_idx < node.comment_lines.size() &&
          (node.comment_lines[line_idx].find("IWYU pragma: export") !=
               std::string::npos ||
           node.comment_lines[line_idx].find("IWYU pragma: keep") !=
               std::string::npos)) {
        continue;
      }
      const std::set<std::string>& exports =
          ExportClosure(j, nodes, index, memo, visiting);
      if (exports.empty()) continue;  // nothing extractable: stay quiet
      bool used = false;
      for (const std::string& name : exports) {
        if (node.tokens.count(name) > 0) {
          used = true;
          break;
        }
      }
      if (!used) {
        Report(out, node, e.line, "graph-unused-include",
               "unused include: nothing exported by \"" + e.written +
                   "\" (directly or transitively) is referenced in this "
                   "file",
               DeleteLineFix(node, e.line));
      }
    }
  }
}

void CheckLockOrder(const std::vector<FileNode>& nodes,
                    std::vector<Violation>& out) {
  LockPairs pairs;
  for (const FileNode& node : nodes) ScanLocks(node, pairs);
  for (const auto& [key, site] : pairs) {
    const auto& [first, second] = key;
    if (!(first < second)) continue;  // visit each unordered pair once
    const auto reverse = pairs.find(std::make_pair(second, first));
    if (reverse == pairs.end()) continue;
    // Two sites acquire {first, second} in opposite orders. Anchor the
    // diagnostic at the (path, line)-later site, referencing the other.
    const LockSite* anchor = &site;              // second acquired, first held
    const LockSite* other = &reverse->second;    // first acquired, second held
    std::string acquired = second;
    std::string held = first;
    if (SiteLess(*anchor, *other)) {
      std::swap(anchor, other);
      std::swap(acquired, held);
    }
    const FileNode* anchor_node = nullptr;
    for (const FileNode& node : nodes) {
      if (node.rel == anchor->rel) {
        anchor_node = &node;
        break;
      }
    }
    if (anchor_node == nullptr) continue;
    Report(out, *anchor_node, anchor->line, "lock-order",
           "lock-order inversion: '" + acquired + "' acquired while '" +
               held + "' is held, but " + other->rel + ":" +
               std::to_string(other->line) +
               " nests them in the opposite order (pick one order "
               "repo-wide)");
  }
}

void CheckUnannotatedMutexes(const std::vector<FileNode>& nodes,
                             bool all_rules, std::vector<Violation>& out) {
  for (const FileNode& node : nodes) {
    if (!all_rules && !StartsWith(node.rel, "src/util/") &&
        !StartsWith(node.rel, "src/serve/") &&
        !StartsWith(node.rel, "src/net/")) {
      continue;
    }
    const std::vector<Tok>& toks = node.toks;
    for (size_t i = 0; i + 2 < toks.size(); ++i) {
      const Tok& t = toks[i];
      if (!t.word) continue;
      const bool mutex_type = t.text == "mutex" || t.text == "shared_mutex" ||
                              t.text == "recursive_mutex" ||
                              t.text == "Mutex";
      if (!mutex_type) continue;
      if (!toks[i + 1].word || toks[i + 2].text != ";") continue;
      const std::string& name = toks[i + 1].text;
      // Annotated anywhere in this file? FAB_GUARDED_BY(name) or
      // FAB_PT_GUARDED_BY(name).
      bool guarded = false;
      for (size_t k = 0; k + 3 < toks.size() && !guarded; ++k) {
        if (toks[k].word &&
            (toks[k].text == "FAB_GUARDED_BY" ||
             toks[k].text == "FAB_PT_GUARDED_BY") &&
            toks[k + 1].text == "(" && toks[k + 2].text == name &&
            toks[k + 3].text == ")") {
          guarded = true;
        }
      }
      if (!guarded) {
        Report(out, node, toks[i + 1].line, "safety-unannotated-mutex",
               "mutex '" + name +
                   "' guards nothing: annotate the state it protects with "
                   "FAB_GUARDED_BY(" + name +
                   ") (see src/util/thread_annotations.h)");
      }
    }
  }
}

}  // namespace

std::vector<Violation> LintRepoGraph(const std::vector<FileNode>& nodes,
                                     const Options& options) {
  std::map<std::string, size_t> index;
  for (size_t i = 0; i < nodes.size(); ++i) index[nodes[i].rel] = i;

  std::vector<Violation> out;
  CheckIncludeCycles(nodes, index, out);
  CheckUnusedIncludes(nodes, index, options.all_rules, out);
  CheckLockOrder(nodes, out);
  CheckUnannotatedMutexes(nodes, options.all_rules, out);
  return out;
}

void GraphDump(const std::vector<FileNode>& nodes, std::ostream& out) {
  size_t edges = 0;
  for (const FileNode& node : nodes) {
    for (const IncludeEdge& e : node.includes) {
      if (!e.target.empty()) ++edges;
    }
  }
  out << "include-graph: " << nodes.size() << " file(s), " << edges
      << " edge(s)\n";
  for (const FileNode& node : nodes) {
    out << node.rel << "\n";
    for (const IncludeEdge& e : node.includes) {
      if (e.target.empty()) {
        out << "  ?? \"" << e.written << "\" (line " << e.line
            << ", outside the walked set)\n";
      } else {
        out << "  -> " << e.target << " (line " << e.line << ")\n";
      }
    }
    if (node.is_header) {
      out << "  exports: " << node.exports.size() << " name(s)\n";
    }
  }
}

}  // namespace fab::lint
