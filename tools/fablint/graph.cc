#include "graph.h"

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <ostream>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace fab::lint {

namespace {

bool IsWordChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool IsHeaderPath(const std::string& rel) {
  return EndsWith(rel, ".h") || EndsWith(rel, ".hpp") || EndsWith(rel, ".hh");
}

/// "src/util/thread_pool.cc" -> "thread_pool" (for paired-header checks).
std::string Stem(const std::string& rel) {
  const size_t slash = rel.find_last_of('/');
  const std::string name =
      slash == std::string::npos ? rel : rel.substr(slash + 1);
  const size_t dot = name.find_last_of('.');
  return dot == std::string::npos ? name : name.substr(0, dot);
}

std::string DirOf(const std::string& rel) {
  const size_t slash = rel.find_last_of('/');
  return slash == std::string::npos ? std::string() : rel.substr(0, slash);
}

/// Lexically normalizes "a/./b/../c" to "a/c".
std::string NormPath(const std::string& p) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (size_t i = 0; i <= p.size(); ++i) {
    if (i == p.size() || p[i] == '/') {
      const std::string part = p.substr(start, i - start);
      start = i + 1;
      if (part.empty() || part == ".") continue;
      if (part == ".." && !parts.empty() && parts.back() != "..") {
        parts.pop_back();
      } else {
        parts.push_back(part);
      }
    }
  }
  std::string out;
  for (const std::string& part : parts) {
    if (!out.empty()) out += '/';
    out += part;
  }
  return out;
}

struct IncludeEdge {
  std::string written;  // path as written inside the quotes
  std::string target;   // resolved rel path within the file set (or empty)
  int line = 0;         // 1-based line of the #include
};

/// One token of masked source: a word or a single punctuation character.
struct Tok {
  std::string text;
  int line = 0;
  bool word = false;
};

struct FileNode {
  std::string rel;
  bool is_header = false;
  std::string masked;
  std::vector<std::string> comment_lines;
  std::vector<bool> is_pp;          // 1-based-1: line i (0-based) is a
                                    // preprocessor logical line
  std::vector<IncludeEdge> includes;
  std::vector<Tok> toks;            // masked tokens off preprocessor lines
  std::set<std::string> tokens;     // every word token (pp lines included)
  std::set<std::string> exports;    // headers only
};

/// C++ keywords and common type names excluded from export extraction.
const std::set<std::string>& Keywords() {
  static const std::set<std::string> kWords = {
      "alignas",   "alignof",  "auto",      "bool",          "break",
      "case",      "catch",    "char",      "class",         "const",
      "constexpr", "continue", "decltype",  "default",       "delete",
      "do",        "double",   "else",      "enum",          "explicit",
      "extern",    "false",    "final",     "float",         "for",
      "friend",    "goto",     "if",        "inline",        "int",
      "long",      "mutable",  "namespace", "new",           "noexcept",
      "nullptr",   "operator", "override",  "private",       "protected",
      "public",    "requires", "return",    "short",         "signed",
      "sizeof",    "static",   "static_assert", "struct",    "switch",
      "template",  "this",     "throw",     "true",          "try",
      "typedef",   "typename", "union",     "unsigned",      "using",
      "virtual",   "void",     "volatile",  "while",         "std",
      "size_t",    "uint64_t", "int64_t",   "uint32_t",      "int32_t",
      "uint8_t",   "char8_t",  "wchar_t",   "co_await",      "co_return",
      "co_yield",  "concept",  "consteval", "constinit",     "export",
  };
  return kWords;
}

void ParseIncludes(const std::vector<std::string>& raw_lines, FileNode& node) {
  for (size_t i = 0; i < raw_lines.size(); ++i) {
    const std::string& line = raw_lines[i];
    size_t j = 0;
    while (j < line.size() && (line[j] == ' ' || line[j] == '\t')) ++j;
    if (j >= line.size() || line[j] != '#') continue;
    ++j;
    while (j < line.size() && (line[j] == ' ' || line[j] == '\t')) ++j;
    if (line.compare(j, 7, "include") != 0) continue;
    j += 7;
    while (j < line.size() && (line[j] == ' ' || line[j] == '\t')) ++j;
    if (j >= line.size() || line[j] != '"') continue;  // <...> is ignored
    const size_t close = line.find('"', j + 1);
    if (close == std::string::npos) continue;
    IncludeEdge edge;
    edge.written = line.substr(j + 1, close - j - 1);
    edge.line = static_cast<int>(i) + 1;
    node.includes.push_back(std::move(edge));
  }
}

void MarkPreprocessorLines(const std::vector<std::string>& raw_lines,
                           FileNode& node) {
  node.is_pp.assign(raw_lines.size(), false);
  bool continued = false;
  for (size_t i = 0; i < raw_lines.size(); ++i) {
    const std::string& line = raw_lines[i];
    size_t j = 0;
    while (j < line.size() && (line[j] == ' ' || line[j] == '\t')) ++j;
    const bool starts_pp = j < line.size() && line[j] == '#';
    node.is_pp[i] = continued || starts_pp;
    continued = node.is_pp[i] && !line.empty() && line.back() == '\\';
  }
}

void Tokenize(const FileNode& node, const std::string& masked,
              std::vector<Tok>& toks, std::set<std::string>& all_words) {
  int line = 1;
  for (size_t i = 0; i < masked.size();) {
    const char c = masked[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
      continue;
    }
    const bool pp_line =
        static_cast<size_t>(line - 1) < node.is_pp.size() &&
        node.is_pp[static_cast<size_t>(line - 1)];
    if (IsWordChar(c)) {
      size_t j = i;
      while (j < masked.size() && IsWordChar(masked[j])) ++j;
      const std::string word = masked.substr(i, j - i);
      all_words.insert(word);
      if (!pp_line) toks.push_back(Tok{word, line, true});
      i = j;
    } else {
      if (!pp_line) toks.push_back(Tok{std::string(1, c), line, false});
      ++i;
    }
  }
}

/// Export extraction: names a header makes available to includers.
/// Deliberately liberal — over-extraction only makes graph-unused-include
/// quieter, never noisier. Collected at namespace/class scope only (never
/// inside function bodies): any non-keyword identifier followed by one of
/// `( = ; [ { , :`, plus every object-like or function-like `#define`
/// whose name does not look like an include guard (`*_H_`).
void ExtractExports(const std::vector<std::string>& raw_lines,
                    FileNode& node) {
  for (size_t i = 0; i < raw_lines.size(); ++i) {
    if (!node.is_pp[i]) continue;
    const std::string& line = raw_lines[i];
    const size_t at = line.find("define");
    if (at == std::string::npos) continue;
    size_t j = at + 6;
    while (j < line.size() && (line[j] == ' ' || line[j] == '\t')) ++j;
    size_t k = j;
    while (k < line.size() && IsWordChar(line[k])) ++k;
    if (k == j) continue;
    const std::string name = line.substr(j, k - j);
    if (!EndsWith(name, "_H_")) node.exports.insert(name);
  }

  // Scope walk: a brace is tagged by what opened it. Only namespace and
  // class-like (class/struct/union/enum) braces are export scope; any
  // other brace (function body, initializer, lambda) suspends extraction
  // until it closes.
  std::vector<char> scopes;  // 'n' | 'c' | 'o'
  char pending = 0;
  const auto extractable = [&scopes] {
    for (char s : scopes) {
      if (s == 'o') return false;
    }
    return true;
  };
  const std::vector<Tok>& toks = node.toks;
  for (size_t i = 0; i < toks.size(); ++i) {
    const Tok& t = toks[i];
    if (t.word) {
      if (t.text == "namespace") {
        pending = 'n';
      } else if (t.text == "class" || t.text == "struct" ||
                 t.text == "union" || t.text == "enum") {
        pending = 'c';
      } else if (extractable() && Keywords().count(t.text) == 0 &&
                 i + 1 < toks.size() && !toks[i + 1].word) {
        const char next = toks[i + 1].text[0];
        if (next == '(' || next == '=' || next == ';' || next == '[' ||
            next == '{' || next == ',' ||
            (next == ':' &&
             (i + 2 >= toks.size() || toks[i + 2].text != ":"))) {
          node.exports.insert(t.text);
        }
      }
      continue;
    }
    if (t.text == "{") {
      scopes.push_back(pending == 'n' ? 'n' : pending == 'c' ? 'c' : 'o');
      pending = 0;
    } else if (t.text == "}") {
      if (!scopes.empty()) scopes.pop_back();
    } else if (t.text == ";") {
      pending = 0;  // forward declaration: no scope was opened
    }
  }
}

// --- Lock-order pass. -------------------------------------------------------

struct LockSite {
  std::string rel;
  int line = 0;
};

bool SiteLess(const LockSite& a, const LockSite& b) {
  if (a.rel != b.rel) return a.rel < b.rel;
  return a.line < b.line;
}

/// An ordered pair "A was held when B was acquired" -> earliest site.
using LockPairs = std::map<std::pair<std::string, std::string>, LockSite>;

/// Scans one file's token stream for nested mutex acquisitions.
///
/// Recognized acquisitions: RAII guard declarations (util::MutexLock,
/// std::lock_guard / unique_lock / scoped_lock) whose argument list is a
/// SINGLE bare identifier, and manual `m.Lock()` / `m.lock()` calls
/// (released by `.Unlock()`/`.unlock()` or at scope exit). Guards with
/// multi-argument or member-expression arguments (adopt_lock tricks,
/// `obj.mu`) are skipped: a lexical tool cannot name those mutexes
/// reliably, and false lock-order pairs would be worse than missed ones.
///
/// Mutex names are qualified "Class::member" inside (out-of-line or
/// inline) member functions, else "file.cc::name" — so internal-linkage
/// file-scope mutexes in different TUs stay distinct.
void ScanLocks(const FileNode& node, LockPairs& pairs) {
  const std::vector<Tok>& toks = node.toks;

  struct Held {
    std::string qual;
    int depth = 0;
    bool manual = false;
  };
  std::vector<Held> held;
  int depth = 0;

  // Class context: inline member bodies via the class-scope stack, out-of-
  // line member definitions via `Class::method(...) {` heads.
  std::vector<std::pair<int, std::string>> class_stack;  // (depth, name)
  std::vector<char> scopes;                              // 'n' | 'c' | 'o'
  char pending = 0;
  std::string pending_class_name;
  bool pending_name_frozen = false;
  std::vector<std::pair<int, std::string>> method_stack;  // (depth, class)
  std::string pending_method_class;

  const auto current_class = [&]() -> std::string {
    int best_depth = -1;
    std::string best;
    if (!class_stack.empty() && class_stack.back().first > best_depth) {
      best_depth = class_stack.back().first;
      best = class_stack.back().second;
    }
    if (!method_stack.empty() && method_stack.back().first > best_depth) {
      best = method_stack.back().second;
    }
    return best;
  };
  const auto qualify = [&](const std::string& name) {
    const std::string cls = current_class();
    if (!cls.empty()) return cls + "::" + name;
    return node.rel + "::" + name;
  };
  const auto acquire = [&](const std::string& name, int line, bool manual) {
    const std::string qual = qualify(name);
    for (const Held& h : held) {
      if (h.qual == qual) continue;
      const auto key = std::make_pair(h.qual, qual);
      const LockSite site{node.rel, line};
      auto it = pairs.find(key);
      if (it == pairs.end()) {
        pairs.emplace(key, site);
      } else if (SiteLess(site, it->second)) {
        it->second = site;  // keep the (path, line)-smallest site
      }
    }
    held.push_back(Held{qual, depth, manual});
  };

  for (size_t i = 0; i < toks.size(); ++i) {
    const Tok& t = toks[i];
    if (!t.word) {
      if (t.text == "{") {
        char tag = pending == 'n' ? 'n' : pending == 'c' ? 'c' : 'o';
        scopes.push_back(tag);
        ++depth;
        if (tag == 'c' && !pending_class_name.empty()) {
          class_stack.emplace_back(depth, pending_class_name);
        }
        if (tag == 'o' && !pending_method_class.empty()) {
          method_stack.emplace_back(depth, pending_method_class);
        }
        pending = 0;
        pending_class_name.clear();
        pending_name_frozen = false;
        pending_method_class.clear();
      } else if (t.text == "}") {
        if (!class_stack.empty() && class_stack.back().first == depth) {
          class_stack.pop_back();
        }
        if (!method_stack.empty() && method_stack.back().first == depth) {
          method_stack.pop_back();
        }
        if (!scopes.empty()) scopes.pop_back();
        --depth;
        while (!held.empty() && held.back().depth > depth) held.pop_back();
      } else if (t.text == ";") {
        pending = 0;
        pending_class_name.clear();
        pending_name_frozen = false;
        pending_method_class.clear();
      } else if (t.text == ":" && pending == 'c' &&
                 (i + 1 >= toks.size() || toks[i + 1].text != ":") &&
                 (i == 0 || toks[i - 1].text != ":")) {
        pending_name_frozen = true;  // base-clause: class name is final
      }
      continue;
    }

    // Word token. Track class heads and out-of-line method definitions.
    if (t.text == "namespace") {
      pending = 'n';
      continue;
    }
    if (t.text == "class" || t.text == "struct" || t.text == "union" ||
        t.text == "enum") {
      pending = 'c';
      pending_name_frozen = false;
      pending_class_name.clear();
      continue;
    }
    if (pending == 'c' && !pending_name_frozen &&
        Keywords().count(t.text) == 0) {
      pending_class_name = t.text;
    }
    // `Cls::method(` (possibly `Cls::~Cls(`): remember Cls until the body
    // brace opens.
    if (i + 3 < toks.size() && toks[i + 1].text == ":" &&
        toks[i + 2].text == ":" &&
        (toks[i + 3].word || toks[i + 3].text == "~") &&
        Keywords().count(t.text) == 0) {
      size_t m = i + 3;
      if (toks[m].text == "~" && m + 1 < toks.size()) ++m;
      if (toks[m].word && m + 1 < toks.size() && toks[m + 1].text == "(") {
        pending_method_class = t.text;
      }
    }

    // RAII guard declaration.
    if (t.text == "MutexLock" || t.text == "lock_guard" ||
        t.text == "unique_lock" || t.text == "scoped_lock") {
      size_t j = i + 1;
      if (j < toks.size() && toks[j].text == "<") {  // template arguments
        int angle = 1;
        ++j;
        while (j < toks.size() && angle > 0) {
          if (toks[j].text == "<") ++angle;
          if (toks[j].text == ">") --angle;
          ++j;
        }
      }
      if (j < toks.size() && toks[j].word) {  // guard variable name
        const int line = toks[j].line;
        ++j;
        if (j < toks.size() && toks[j].text == "(") {
          // Argument list up to the matching ')'.
          int paren = 1;
          ++j;
          std::vector<const Tok*> args;
          bool simple = true;
          while (j < toks.size() && paren > 0) {
            if (toks[j].text == "(") ++paren;
            if (toks[j].text == ")") --paren;
            if (paren > 0) {
              if (toks[j].word) {
                args.push_back(&toks[j]);
              } else {
                simple = false;  // '.', ',', '::', ... — not a bare name
              }
            }
            ++j;
          }
          if (simple && args.size() == 1) {
            acquire(args[0]->text, line, /*manual=*/false);
          }
        }
      }
      continue;
    }

    // Manual `name.Lock()` / `name.lock()` and the matching unlocks.
    if ((t.text == "Lock" || t.text == "lock" || t.text == "Unlock" ||
         t.text == "unlock") &&
        i >= 2 && toks[i - 1].text == "." && toks[i - 2].word &&
        i + 1 < toks.size() && toks[i + 1].text == "(") {
      const std::string name = toks[i - 2].text;
      if (t.text == "Lock" || t.text == "lock") {
        acquire(name, t.line, /*manual=*/true);
      } else {
        const std::string qual = qualify(name);
        for (size_t h = held.size(); h-- > 0;) {
          if (held[h].manual && held[h].qual == qual) {
            held.erase(held.begin() + static_cast<long>(h));
            break;
          }
        }
      }
    }
  }
}

// --- The four rules. --------------------------------------------------------

void Report(std::vector<Violation>& out, const FileNode& node, int line,
            const char* rule, std::string message) {
  if (AllowsRule(node.comment_lines, line, rule)) return;
  out.push_back(Violation{node.rel, line, rule, std::move(message)});
}

/// Cycle detection over the resolved include graph (iterative DFS with
/// an explicit color map). One diagnostic per cycle, anchored at the
/// lexicographically smallest member's outgoing #include.
void CheckIncludeCycles(const std::vector<FileNode>& nodes,
                        const std::map<std::string, size_t>& index,
                        std::vector<Violation>& out) {
  const size_t n = nodes.size();
  std::vector<int> color(n, 0);  // 0 white, 1 on stack, 2 done
  std::vector<std::vector<size_t>> adj(n);
  for (size_t i = 0; i < n; ++i) {
    for (const IncludeEdge& e : nodes[i].includes) {
      if (e.target.empty()) continue;
      const size_t j = index.at(e.target);
      if (j != i) adj[i].push_back(j);
    }
  }

  std::vector<size_t> stack;          // current DFS path
  std::set<std::set<size_t>> seen;    // cycles already reported
  const std::function<void(size_t)> dfs = [&](size_t u) {
    color[u] = 1;
    stack.push_back(u);
    for (size_t v : adj[u]) {
      if (color[v] == 0) {
        dfs(v);
      } else if (color[v] == 1) {
        // Found a back edge: the cycle is the path suffix from v to u.
        auto at = std::find(stack.begin(), stack.end(), v);
        std::vector<size_t> cycle(at, stack.end());
        std::set<size_t> key(cycle.begin(), cycle.end());
        if (!seen.insert(key).second) continue;
        // Rotate so the lexicographically smallest path is the anchor.
        size_t smallest = 0;
        for (size_t k = 1; k < cycle.size(); ++k) {
          if (nodes[cycle[k]].rel < nodes[cycle[smallest]].rel) smallest = k;
        }
        std::rotate(cycle.begin(),
                    cycle.begin() + static_cast<long>(smallest), cycle.end());
        const FileNode& anchor = nodes[cycle[0]];
        const std::string& next_rel =
            nodes[cycle.size() > 1 ? cycle[1] : cycle[0]].rel;
        int line = 1;
        for (const IncludeEdge& e : anchor.includes) {
          if (e.target == next_rel) {
            line = e.line;
            break;
          }
        }
        std::string path;
        for (size_t k : cycle) path += nodes[k].rel + " -> ";
        path += anchor.rel;
        Report(out, anchor, line, "graph-include-cycle",
               "include cycle: " + path +
                   " (break it with a forward declaration or by splitting "
                   "the header)");
      }
    }
    stack.pop_back();
    color[u] = 2;
  };
  for (size_t i = 0; i < n; ++i) {
    if (color[i] == 0) dfs(i);
  }
}

/// Transitive export closure of a header (cycle-safe, memoized): what an
/// includer can legitimately be using from it, umbrella headers included.
const std::set<std::string>& ExportClosure(
    size_t i, const std::vector<FileNode>& nodes,
    const std::map<std::string, size_t>& index,
    std::vector<std::unique_ptr<std::set<std::string>>>& memo,
    std::vector<bool>& visiting) {
  static const std::set<std::string> kEmpty;
  if (memo[i] != nullptr) return *memo[i];
  if (visiting[i]) return kEmpty;  // include cycle: flagged elsewhere
  visiting[i] = true;
  auto closure = std::make_unique<std::set<std::string>>(nodes[i].exports);
  for (const IncludeEdge& e : nodes[i].includes) {
    if (e.target.empty()) continue;
    const std::set<std::string>& sub =
        ExportClosure(index.at(e.target), nodes, index, memo, visiting);
    closure->insert(sub.begin(), sub.end());
  }
  visiting[i] = false;
  memo[i] = std::move(closure);
  return *memo[i];
}

void CheckUnusedIncludes(const std::vector<FileNode>& nodes,
                         const std::map<std::string, size_t>& index,
                         bool all_rules, std::vector<Violation>& out) {
  std::vector<std::unique_ptr<std::set<std::string>>> memo(nodes.size());
  std::vector<bool> visiting(nodes.size(), false);
  for (const FileNode& node : nodes) {
    if (!all_rules && !StartsWith(node.rel, "src/")) continue;
    std::set<std::string> reported;
    for (const IncludeEdge& e : node.includes) {
      if (e.target.empty()) continue;
      const size_t j = index.at(e.target);
      if (!nodes[j].is_header) continue;
      if (Stem(node.rel) == Stem(e.target)) continue;  // paired own header
      if (!reported.insert(e.target).second) continue;
      // Honor the standard IWYU pragmas: `export` marks a deliberate
      // re-export (umbrella headers), `keep` a deliberate side-effect
      // include. Both silence this rule for that line.
      const size_t line_idx = static_cast<size_t>(e.line) - 1;
      if (line_idx < node.comment_lines.size() &&
          (node.comment_lines[line_idx].find("IWYU pragma: export") !=
               std::string::npos ||
           node.comment_lines[line_idx].find("IWYU pragma: keep") !=
               std::string::npos)) {
        continue;
      }
      const std::set<std::string>& exports =
          ExportClosure(j, nodes, index, memo, visiting);
      if (exports.empty()) continue;  // nothing extractable: stay quiet
      bool used = false;
      for (const std::string& name : exports) {
        if (node.tokens.count(name) > 0) {
          used = true;
          break;
        }
      }
      if (!used) {
        Report(out, node, e.line, "graph-unused-include",
               "unused include: nothing exported by \"" + e.written +
                   "\" (directly or transitively) is referenced in this "
                   "file");
      }
    }
  }
}

void CheckLockOrder(const std::vector<FileNode>& nodes,
                    std::vector<Violation>& out) {
  LockPairs pairs;
  for (const FileNode& node : nodes) ScanLocks(node, pairs);
  for (const auto& [key, site] : pairs) {
    const auto& [first, second] = key;
    if (!(first < second)) continue;  // visit each unordered pair once
    const auto reverse = pairs.find(std::make_pair(second, first));
    if (reverse == pairs.end()) continue;
    // Two sites acquire {first, second} in opposite orders. Anchor the
    // diagnostic at the (path, line)-later site, referencing the other.
    const LockSite* anchor = &site;              // second acquired, first held
    const LockSite* other = &reverse->second;    // first acquired, second held
    std::string acquired = second;
    std::string held = first;
    if (SiteLess(*anchor, *other)) {
      std::swap(anchor, other);
      std::swap(acquired, held);
    }
    const FileNode* anchor_node = nullptr;
    for (const FileNode& node : nodes) {
      if (node.rel == anchor->rel) {
        anchor_node = &node;
        break;
      }
    }
    if (anchor_node == nullptr) continue;
    Report(out, *anchor_node, anchor->line, "lock-order",
           "lock-order inversion: '" + acquired + "' acquired while '" +
               held + "' is held, but " + other->rel + ":" +
               std::to_string(other->line) +
               " nests them in the opposite order (pick one order "
               "repo-wide)");
  }
}

void CheckUnannotatedMutexes(const std::vector<FileNode>& nodes,
                             bool all_rules, std::vector<Violation>& out) {
  for (const FileNode& node : nodes) {
    if (!all_rules && !StartsWith(node.rel, "src/util/") &&
        !StartsWith(node.rel, "src/serve/") &&
        !StartsWith(node.rel, "src/net/")) {
      continue;
    }
    const std::vector<Tok>& toks = node.toks;
    for (size_t i = 0; i + 2 < toks.size(); ++i) {
      const Tok& t = toks[i];
      if (!t.word) continue;
      const bool mutex_type = t.text == "mutex" || t.text == "shared_mutex" ||
                              t.text == "recursive_mutex" ||
                              t.text == "Mutex";
      if (!mutex_type) continue;
      if (!toks[i + 1].word || toks[i + 2].text != ";") continue;
      const std::string& name = toks[i + 1].text;
      // Annotated anywhere in this file? FAB_GUARDED_BY(name) or
      // FAB_PT_GUARDED_BY(name).
      bool guarded = false;
      for (size_t k = 0; k + 3 < toks.size() && !guarded; ++k) {
        if (toks[k].word &&
            (toks[k].text == "FAB_GUARDED_BY" ||
             toks[k].text == "FAB_PT_GUARDED_BY") &&
            toks[k + 1].text == "(" && toks[k + 2].text == name &&
            toks[k + 3].text == ")") {
          guarded = true;
        }
      }
      if (!guarded) {
        Report(out, node, toks[i + 1].line, "safety-unannotated-mutex",
               "mutex '" + name +
                   "' guards nothing: annotate the state it protects with "
                   "FAB_GUARDED_BY(" + name +
                   ") (see src/util/thread_annotations.h)");
      }
    }
  }
}

std::vector<FileNode> BuildNodes(const std::vector<FileInput>& files) {
  std::vector<FileNode> nodes;
  nodes.reserve(files.size());
  for (const FileInput& file : files) {
    FileNode node;
    node.rel = file.rel;
    node.is_header = IsHeaderPath(file.rel);
    node.masked = MaskSource(file.src);
    node.comment_lines = SplitLines(CommentText(file.src));
    const std::vector<std::string> raw_lines = SplitLines(file.src);
    MarkPreprocessorLines(raw_lines, node);
    ParseIncludes(raw_lines, node);
    Tokenize(node, node.masked, node.toks, node.tokens);
    if (node.is_header) ExtractExports(raw_lines, node);
    nodes.push_back(std::move(node));
  }
  std::sort(nodes.begin(), nodes.end(),
            [](const FileNode& a, const FileNode& b) { return a.rel < b.rel; });

  // Resolve quoted includes against the walked file set. Tried in order:
  // relative to the includer's directory, under src/ (the repo's -I src
  // convention), then root-relative.
  std::map<std::string, size_t> index;
  for (size_t i = 0; i < nodes.size(); ++i) index[nodes[i].rel] = i;
  for (FileNode& node : nodes) {
    const std::string dir = DirOf(node.rel);
    for (IncludeEdge& edge : node.includes) {
      for (const std::string& candidate :
           {NormPath(dir.empty() ? edge.written : dir + "/" + edge.written),
            NormPath("src/" + edge.written), NormPath(edge.written)}) {
        if (index.count(candidate) > 0) {
          edge.target = candidate;
          break;
        }
      }
    }
  }
  return nodes;
}

}  // namespace

std::vector<Violation> LintRepoGraph(const std::vector<FileInput>& files,
                                     const Options& options) {
  const std::vector<FileNode> nodes = BuildNodes(files);
  std::map<std::string, size_t> index;
  for (size_t i = 0; i < nodes.size(); ++i) index[nodes[i].rel] = i;

  std::vector<Violation> out;
  CheckIncludeCycles(nodes, index, out);
  CheckUnusedIncludes(nodes, index, options.all_rules, out);
  CheckLockOrder(nodes, out);
  CheckUnannotatedMutexes(nodes, options.all_rules, out);
  return out;
}

void GraphDump(const std::vector<FileInput>& files, std::ostream& out) {
  const std::vector<FileNode> nodes = BuildNodes(files);
  size_t edges = 0;
  for (const FileNode& node : nodes) {
    for (const IncludeEdge& e : node.includes) {
      if (!e.target.empty()) ++edges;
    }
  }
  out << "include-graph: " << nodes.size() << " file(s), " << edges
      << " edge(s)\n";
  for (const FileNode& node : nodes) {
    out << node.rel << "\n";
    for (const IncludeEdge& e : node.includes) {
      if (e.target.empty()) {
        out << "  ?? \"" << e.written << "\" (line " << e.line
            << ", outside the walked set)\n";
      } else {
        out << "  -> " << e.target << " (line " << e.line << ")\n";
      }
    }
    if (node.is_header) {
      out << "  exports: " << node.exports.size() << " name(s)\n";
    }
  }
}

}  // namespace fab::lint
