#ifndef FAB_TOOLS_FABLINT_FIX_H_
#define FAB_TOOLS_FABLINT_FIX_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "lint.h"

/// fablint --fix — the span-edit application engine.
///
/// Rules attach machine-applicable fixes (Violation::fix) as byte-span
/// edits against the original file. This module turns the per-file edit
/// set into new file contents: edits are sorted, exact duplicates
/// collapsed (two rules may propose the same deletion), and overlapping
/// edits dropped deterministically (first by position wins) rather than
/// guessed at — a dropped edit resurfaces on the next run once the
/// surviving edit has been applied, which is what makes `--fix` safe to
/// iterate to a fixed point. Fix authors guarantee idempotence: applying
/// a rule's fix removes the finding that produced it.
namespace fab::lint {

struct FixResult {
  std::string fixed;   // new file contents
  size_t applied = 0;  // edits applied
  size_t dropped = 0;  // edits dropped (overlap / out of range)
};

/// Applies `edits` to `src`. Never throws: malformed spans (begin > end
/// or past EOF) count as dropped.
FixResult ApplyEdits(const std::string& src, std::vector<Edit> edits);

/// Minimal line diff for `--fix --dry-run`: common prefix/suffix lines
/// are elided, the changed middle prints as a single `-`/`+` hunk with a
/// unified-diff-style header. Exact, deterministic, and enough to review
/// fablint's mechanical edits (which are always local).
void RenderDiff(const std::string& rel, const std::string& before,
                const std::string& after, std::ostream& out);

}  // namespace fab::lint

#endif  // FAB_TOOLS_FABLINT_FIX_H_
