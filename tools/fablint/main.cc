#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "callgraph.h"
#include "det.h"
#include "fix.h"
#include "graph.h"
#include "lint.h"
#include "repo_graph.h"
#include "sarif.h"
#include "semantic.h"

namespace fs = std::filesystem;

namespace {

constexpr const char* kUsage =
    "usage: fablint [--root <dir>] [--all-rules] [--exclude <substr>]...\n"
    "               [--fix [--dry-run]] [--list-rules] [--graph-dump]\n"
    "               [--callgraph-dump] [--sarif <path>] [--stats]\n"
    "               <file-or-dir>...\n"
    "\n"
    "Lints fab C++ sources for determinism, safety and hygiene violations,\n"
    "then runs cross-file rules (include cycles, unused includes, lock\n"
    "ordering, mutex annotation coverage), the Status-discipline pass\n"
    "(discarded Status/Result values, missing [[nodiscard]]) and the\n"
    "call-graph determinism pass (unordered iteration / pointer keys /\n"
    "raw RNG reachable from fablint:det-root entry points, plus blocking\n"
    "calls under a held mutex) over the whole walked set.\n"
    "Diagnostics: <path>:<line>: [<rule-id>] <message>\n"
    "Suppress a finding with '// fablint:allow(<rule-id>)' on the same or\n"
    "the preceding line.\n"
    "\n"
    "  --root <dir>    repository root; paths in diagnostics and rule\n"
    "                  scoping are relative to it (default: cwd)\n"
    "  --all-rules     disable path-based rule scoping (fixture mode)\n"
    "  --exclude <s>   skip files whose root-relative path contains <s>\n"
    "  --fix           apply machine-safe fixes in place (idempotent:\n"
    "                  rerun until '0 fix edit(s)')\n"
    "  --dry-run       with --fix: print the diff instead of writing\n"
    "  --list-rules    print the rule table and exit\n"
    "  --graph-dump    print the resolved include graph and exit\n"
    "  --callgraph-dump  print the function call graph (definitions,\n"
    "                  edges, det-root/det-reachable marks) and exit\n"
    "  --sarif <path>  also write violations as SARIF 2.1.0 to <path>\n"
    "  --stats         print files walked, per-rule violation counts and\n"
    "                  per-pass timings after the run\n"
    "\n"
    "exit status: 0 clean, 1 violations found, 2 usage or I/O error\n";

bool HasLintableExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cc" || ext == ".h" || ext == ".cpp" || ext == ".hpp" ||
         ext == ".cxx" || ext == ".hh";
}

std::string RelPath(const fs::path& file, const fs::path& root) {
  std::error_code ec;
  const fs::path rel = fs::proximate(file, root, ec);
  if (ec || rel.empty()) return file.generic_string();
  const std::string s = rel.generic_string();
  // Outside the root: keep the full path so diagnostics stay clickable.
  if (s.rfind("..", 0) == 0) return file.generic_string();
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  bool all_rules = false;
  bool graph_dump = false;
  bool callgraph_dump = false;
  bool fix_mode = false;
  bool dry_run = false;
  bool stats = false;
  std::string sarif_path;
  std::vector<std::string> excludes;
  std::vector<fs::path> inputs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    } else if (arg == "--list-rules") {
      for (const fab::lint::RuleInfo& rule : fab::lint::AllRules()) {
        std::cout << rule.id << "\t" << rule.summary << "\n";
      }
      return 0;
    } else if (arg == "--all-rules") {
      all_rules = true;
    } else if (arg == "--graph-dump") {
      graph_dump = true;
    } else if (arg == "--callgraph-dump") {
      callgraph_dump = true;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--sarif") {
      if (i + 1 >= argc) {
        std::cerr << "fablint: --sarif needs a value\n" << kUsage;
        return 2;
      }
      sarif_path = argv[++i];
    } else if (arg == "--fix") {
      fix_mode = true;
    } else if (arg == "--dry-run") {
      dry_run = true;
    } else if (arg == "--root") {
      if (i + 1 >= argc) {
        std::cerr << "fablint: --root needs a value\n" << kUsage;
        return 2;
      }
      root = argv[++i];
    } else if (arg == "--exclude") {
      if (i + 1 >= argc) {
        std::cerr << "fablint: --exclude needs a value\n" << kUsage;
        return 2;
      }
      excludes.push_back(argv[++i]);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "fablint: unknown flag " << arg << "\n" << kUsage;
      return 2;
    } else {
      inputs.emplace_back(arg);
    }
  }
  if (inputs.empty()) {
    std::cerr << "fablint: no inputs\n" << kUsage;
    return 2;
  }
  if (dry_run && !fix_mode) {
    std::cerr << "fablint: --dry-run requires --fix\n" << kUsage;
    return 2;
  }

  // Expand directories; explicit files are taken as-is (even fixture files
  // that a directory walk would skip via --exclude).
  std::vector<fs::path> files;
  for (const fs::path& input : inputs) {
    std::error_code ec;
    if (fs::is_directory(input, ec)) {
      for (fs::recursive_directory_iterator it(input, ec), end;
           !ec && it != end; it.increment(ec)) {
        if (it->is_regular_file() && HasLintableExtension(it->path())) {
          files.push_back(it->path());
        }
      }
      if (ec) {
        std::cerr << "fablint: cannot walk " << input << ": " << ec.message()
                  << "\n";
        return 2;
      }
    } else if (fs::is_regular_file(input, ec)) {
      files.push_back(input);
    } else {
      std::cerr << "fablint: no such file or directory: " << input << "\n";
      return 2;
    }
  }

  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  fab::lint::Options options;
  options.all_rules = all_rules;

  // Wall-duration pass timings for --stats. Never fed into computation —
  // the obs-raw-clock contract is about clock values reaching results.
  using StatsClock = std::chrono::steady_clock;
  const auto now = [] {
    return StatsClock::now();  // fablint:allow(obs-raw-clock)
  };
  std::map<std::string, double> pass_ms;
  const auto record = [&pass_ms](const char* pass,
                                 StatsClock::time_point begin,
                                 StatsClock::time_point end) {
    pass_ms[pass] +=
        std::chrono::duration<double, std::milli>(end - begin).count();
  };

  size_t checked = 0;
  std::vector<fab::lint::Violation> violations;
  std::vector<fab::lint::FileInput> walked;
  std::map<std::string, fs::path> rel_to_path;
  for (const fs::path& file : files) {
    const std::string rel = RelPath(file, root);
    bool skip = false;
    for (const std::string& pattern : excludes) {
      if (rel.find(pattern) != std::string::npos) {
        skip = true;
        break;
      }
    }
    if (skip) continue;

    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::cerr << "fablint: cannot read " << file << "\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    ++checked;
    walked.push_back(fab::lint::FileInput{rel, buffer.str()});
    rel_to_path[rel] = file;
    const auto t0 = now();
    std::vector<fab::lint::Violation> found =
        fab::lint::LintSource(rel, walked.back().src, options);
    record("1 per-file", t0, now());
    violations.insert(violations.end(), found.begin(), found.end());
  }

  // Passes 2-4 share one node build: every file is masked and tokenized
  // exactly once per run.
  const auto t_nodes = now();
  const std::vector<fab::lint::FileNode> nodes = fab::lint::BuildNodes(walked);
  record("tokenize", t_nodes, now());

  if (graph_dump) {
    fab::lint::GraphDump(nodes, std::cout);
    return 0;
  }
  if (callgraph_dump) {
    const fab::lint::CallGraph cg = fab::lint::BuildCallGraph(nodes);
    fab::lint::CallGraphDump(cg, nodes, std::cout);
    return 0;
  }

  const struct {
    const char* name;
    std::vector<fab::lint::Violation> (*run)(
        const std::vector<fab::lint::FileNode>&, const fab::lint::Options&);
  } passes[] = {{"2 graph", &fab::lint::LintRepoGraph},
                {"3 semantic", &fab::lint::LintSemantic}};
  for (const auto& pass : passes) {
    const auto t0 = now();
    std::vector<fab::lint::Violation> found = pass.run(nodes, options);
    record(pass.name, t0, now());
    violations.insert(violations.end(), found.begin(), found.end());
  }
  {
    const auto t0 = now();
    const fab::lint::CallGraph cg = fab::lint::BuildCallGraph(nodes);
    std::vector<fab::lint::Violation> found =
        fab::lint::LintDet(nodes, cg, options);
    record("4 callgraph-det", t0, now());
    violations.insert(violations.end(), found.begin(), found.end());
  }
  // One global (path, line, rule) order so per-file, graph, semantic and
  // det findings interleave deterministically.
  std::sort(violations.begin(), violations.end(),
            [](const fab::lint::Violation& a, const fab::lint::Violation& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });

  for (const fab::lint::Violation& v : violations) {
    std::cout << v.path << ":" << v.line << ": [" << v.rule << "] "
              << v.message << "\n";
  }

  if (!sarif_path.empty()) {
    std::ofstream sarif(sarif_path, std::ios::binary | std::ios::trunc);
    if (!sarif) {
      std::cerr << "fablint: cannot write " << sarif_path << "\n";
      return 2;
    }
    fab::lint::WriteSarif(violations, sarif);
    std::cout << "fablint: wrote " << violations.size()
              << " SARIF result(s) to " << sarif_path << "\n";
  }

  if (fix_mode) {
    std::map<std::string, std::vector<fab::lint::Edit>> edits_by_file;
    for (const fab::lint::Violation& v : violations) {
      for (const fab::lint::Edit& e : v.fix) edits_by_file[v.path].push_back(e);
    }
    size_t applied = 0;
    size_t dropped = 0;
    size_t touched = 0;
    for (const fab::lint::FileInput& file : walked) {
      const auto it = edits_by_file.find(file.rel);
      if (it == edits_by_file.end()) continue;
      const fab::lint::FixResult result =
          fab::lint::ApplyEdits(file.src, it->second);
      applied += result.applied;
      dropped += result.dropped;
      if (result.applied == 0) continue;
      ++touched;
      if (dry_run) {
        fab::lint::RenderDiff(file.rel, file.src, result.fixed, std::cout);
      } else {
        std::ofstream out(rel_to_path[file.rel],
                          std::ios::binary | std::ios::trunc);
        if (!out) {
          std::cerr << "fablint: cannot write " << rel_to_path[file.rel]
                    << "\n";
          return 2;
        }
        out << result.fixed;
      }
    }
    std::cout << "fablint: " << (dry_run ? "would apply " : "applied ")
              << applied << " fix edit(s) in " << touched << " file(s)";
    if (dropped > 0) {
      std::cout << " (" << dropped
                << " overlapping edit(s) deferred to the next run)";
    }
    std::cout << "\n";
  }

  if (stats) {
    std::cout << "fablint stats: " << checked << " file(s) walked\n";
    std::map<std::string, size_t> by_rule;
    for (const fab::lint::Violation& v : violations) ++by_rule[v.rule];
    for (const auto& [rule, count] : by_rule) {
      std::cout << "fablint stats:   rule " << rule << ": " << count
                << " violation(s)\n";
    }
    for (const auto& [pass, ms] : pass_ms) {
      std::cout << "fablint stats:   pass " << pass << ": "
                << static_cast<long long>(ms * 1000.0) << " us\n";
    }
  }

  std::cout << "fablint: checked " << checked << " file(s), "
            << violations.size() << " violation(s)\n";
  return violations.empty() ? 0 : 1;
}
