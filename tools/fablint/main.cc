#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "graph.h"
#include "lint.h"

namespace fs = std::filesystem;

namespace {

constexpr const char* kUsage =
    "usage: fablint [--root <dir>] [--all-rules] [--exclude <substr>]...\n"
    "               [--list-rules] [--graph-dump] <file-or-dir>...\n"
    "\n"
    "Lints fab C++ sources for determinism, safety and hygiene violations,\n"
    "then runs cross-file rules (include cycles, unused includes, lock\n"
    "ordering, mutex annotation coverage) over the whole walked set.\n"
    "Diagnostics: <path>:<line>: [<rule-id>] <message>\n"
    "Suppress a finding with '// fablint:allow(<rule-id>)' on the same or\n"
    "the preceding line.\n"
    "\n"
    "  --root <dir>    repository root; paths in diagnostics and rule\n"
    "                  scoping are relative to it (default: cwd)\n"
    "  --all-rules     disable path-based rule scoping (fixture mode)\n"
    "  --exclude <s>   skip files whose root-relative path contains <s>\n"
    "  --list-rules    print the rule table and exit\n"
    "  --graph-dump    print the resolved include graph and exit\n"
    "\n"
    "exit status: 0 clean, 1 violations found, 2 usage or I/O error\n";

bool HasLintableExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cc" || ext == ".h" || ext == ".cpp" || ext == ".hpp" ||
         ext == ".cxx" || ext == ".hh";
}

std::string RelPath(const fs::path& file, const fs::path& root) {
  std::error_code ec;
  const fs::path rel = fs::proximate(file, root, ec);
  if (ec || rel.empty()) return file.generic_string();
  const std::string s = rel.generic_string();
  // Outside the root: keep the full path so diagnostics stay clickable.
  if (s.rfind("..", 0) == 0) return file.generic_string();
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  bool all_rules = false;
  bool graph_dump = false;
  std::vector<std::string> excludes;
  std::vector<fs::path> inputs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    } else if (arg == "--list-rules") {
      for (const fab::lint::RuleInfo& rule : fab::lint::AllRules()) {
        std::cout << rule.id << "\t" << rule.summary << "\n";
      }
      return 0;
    } else if (arg == "--all-rules") {
      all_rules = true;
    } else if (arg == "--graph-dump") {
      graph_dump = true;
    } else if (arg == "--root") {
      if (i + 1 >= argc) {
        std::cerr << "fablint: --root needs a value\n" << kUsage;
        return 2;
      }
      root = argv[++i];
    } else if (arg == "--exclude") {
      if (i + 1 >= argc) {
        std::cerr << "fablint: --exclude needs a value\n" << kUsage;
        return 2;
      }
      excludes.push_back(argv[++i]);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "fablint: unknown flag " << arg << "\n" << kUsage;
      return 2;
    } else {
      inputs.emplace_back(arg);
    }
  }
  if (inputs.empty()) {
    std::cerr << "fablint: no inputs\n" << kUsage;
    return 2;
  }

  // Expand directories; explicit files are taken as-is (even fixture files
  // that a directory walk would skip via --exclude).
  std::vector<fs::path> files;
  for (const fs::path& input : inputs) {
    std::error_code ec;
    if (fs::is_directory(input, ec)) {
      for (fs::recursive_directory_iterator it(input, ec), end;
           !ec && it != end; it.increment(ec)) {
        if (it->is_regular_file() && HasLintableExtension(it->path())) {
          files.push_back(it->path());
        }
      }
      if (ec) {
        std::cerr << "fablint: cannot walk " << input << ": " << ec.message()
                  << "\n";
        return 2;
      }
    } else if (fs::is_regular_file(input, ec)) {
      files.push_back(input);
    } else {
      std::cerr << "fablint: no such file or directory: " << input << "\n";
      return 2;
    }
  }

  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  fab::lint::Options options;
  options.all_rules = all_rules;

  size_t checked = 0;
  std::vector<fab::lint::Violation> violations;
  std::vector<fab::lint::FileInput> graph_inputs;
  for (const fs::path& file : files) {
    const std::string rel = RelPath(file, root);
    bool skip = false;
    for (const std::string& pattern : excludes) {
      if (rel.find(pattern) != std::string::npos) {
        skip = true;
        break;
      }
    }
    if (skip) continue;

    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::cerr << "fablint: cannot read " << file << "\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    ++checked;
    graph_inputs.push_back(fab::lint::FileInput{rel, buffer.str()});
    std::vector<fab::lint::Violation> found =
        fab::lint::LintSource(rel, graph_inputs.back().src, options);
    violations.insert(violations.end(), found.begin(), found.end());
  }

  if (graph_dump) {
    fab::lint::GraphDump(graph_inputs, std::cout);
    return 0;
  }

  // Pass 2: cross-file rules over the whole walked set, then one global
  // (path, line, rule) order so per-file and graph findings interleave
  // deterministically.
  std::vector<fab::lint::Violation> graph_found =
      fab::lint::LintRepoGraph(graph_inputs, options);
  violations.insert(violations.end(), graph_found.begin(), graph_found.end());
  std::sort(violations.begin(), violations.end(),
            [](const fab::lint::Violation& a, const fab::lint::Violation& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });

  for (const fab::lint::Violation& v : violations) {
    std::cout << v.path << ":" << v.line << ": [" << v.rule << "] "
              << v.message << "\n";
  }
  std::cout << "fablint: checked " << checked << " file(s), "
            << violations.size() << " violation(s)\n";
  return violations.empty() ? 0 : 1;
}
