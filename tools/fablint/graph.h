#ifndef FAB_TOOLS_FABLINT_GRAPH_H_
#define FAB_TOOLS_FABLINT_GRAPH_H_

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "lint.h"
#include "repo_graph.h"

/// fablint pass 2 — cross-file analysis over the whole walked file set.
///
/// Operates on the shared repo graph (repo_graph.h): the quoted-include
/// DAG, a per-file symbol index (exported names, word tokens, mutex
/// members) and per-file lock-acquisition sequences. Evaluates four
/// rules no single-file linter can express:
///
///   graph-include-cycle      cycles in the quoted-include graph
///   graph-unused-include     includes whose transitive exports are never
///                            referenced by the includer (IWYU-lite)
///   lock-order               the same two mutexes nested in opposite
///                            orders anywhere in the repo (deadlock shape)
///   safety-unannotated-mutex mutex members with no FAB_GUARDED_BY user
///
/// Like pass 1 rules, everything is lexical (MaskSource + token scans),
/// diagnostics carry file:line anchors, and `fablint:allow(<rule-id>)`
/// suppressions on the anchor line (or the line above) are honored.
namespace fab::lint {

/// One mutex currently held at a point in the lock-region walk.
/// `qual` is the qualified name ("Class::member" inside member
/// functions, else "file.cc::name"); `manual` marks `.Lock()`-style
/// acquisitions that a matching `.Unlock()` releases early.
struct HeldLock {
  std::string qual;
  int depth = 0;   // brace depth at acquisition (scope-exit release)
  bool manual = false;
};

/// Callbacks for WalkLockRegions. Either hook may be empty.
struct LockWalkHooks {
  /// Fired when a mutex is acquired; `held_before` is the stack of locks
  /// already held at that point (the lock-order rule's input).
  std::function<void(const std::string& qual, int line,
                     const std::vector<HeldLock>& held_before)>
      on_acquire;
  /// Fired for EVERY token, with the locks held while it executes. Lets
  /// pass 4's conc-blocking-under-lock rule test arbitrary token
  /// patterns against the live lock set without re-deriving regions.
  std::function<void(size_t tok_index, const std::vector<HeldLock>& held)>
      on_token;
};

/// Walks one file's token stream tracking mutex-held regions.
///
/// Recognized acquisitions: RAII guard declarations (util::MutexLock,
/// std::lock_guard / unique_lock / scoped_lock) whose argument list is a
/// SINGLE bare identifier, and manual `m.Lock()` / `m.lock()` calls
/// (released by `.Unlock()`/`.unlock()` or at scope exit). Guards with
/// multi-argument or member-expression arguments (adopt_lock tricks,
/// `obj.mu`) are skipped: a lexical tool cannot name those mutexes
/// reliably, and false lock regions would be worse than missed ones.
/// Shared by pass 2 (lock-order) and pass 4 (conc-blocking-under-lock)
/// so "a lock is held here" means exactly one thing.
void WalkLockRegions(const FileNode& node, const LockWalkHooks& hooks);

/// Runs the cross-file rules over `nodes` (BuildNodes output). Returned
/// violations are unsorted; the caller merges them with per-file and
/// semantic-pass findings and sorts.
std::vector<Violation> LintRepoGraph(const std::vector<FileNode>& nodes,
                                     const Options& options);

/// Prints the resolved quoted-include graph (one block per file, edges
/// with the include's line number) to `out` — the `--graph-dump` view.
void GraphDump(const std::vector<FileNode>& nodes, std::ostream& out);

}  // namespace fab::lint

#endif  // FAB_TOOLS_FABLINT_GRAPH_H_
