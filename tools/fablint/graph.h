#ifndef FAB_TOOLS_FABLINT_GRAPH_H_
#define FAB_TOOLS_FABLINT_GRAPH_H_

#include <iosfwd>
#include <vector>

#include "lint.h"
#include "repo_graph.h"

/// fablint pass 2 — cross-file analysis over the whole walked file set.
///
/// Operates on the shared repo graph (repo_graph.h): the quoted-include
/// DAG, a per-file symbol index (exported names, word tokens, mutex
/// members) and per-file lock-acquisition sequences. Evaluates four
/// rules no single-file linter can express:
///
///   graph-include-cycle      cycles in the quoted-include graph
///   graph-unused-include     includes whose transitive exports are never
///                            referenced by the includer (IWYU-lite)
///   lock-order               the same two mutexes nested in opposite
///                            orders anywhere in the repo (deadlock shape)
///   safety-unannotated-mutex mutex members with no FAB_GUARDED_BY user
///
/// Like pass 1 rules, everything is lexical (MaskSource + token scans),
/// diagnostics carry file:line anchors, and `fablint:allow(<rule-id>)`
/// suppressions on the anchor line (or the line above) are honored.
namespace fab::lint {

/// Runs the cross-file rules over `nodes` (BuildNodes output). Returned
/// violations are unsorted; the caller merges them with per-file and
/// semantic-pass findings and sorts.
std::vector<Violation> LintRepoGraph(const std::vector<FileNode>& nodes,
                                     const Options& options);

/// Prints the resolved quoted-include graph (one block per file, edges
/// with the include's line number) to `out` — the `--graph-dump` view.
void GraphDump(const std::vector<FileNode>& nodes, std::ostream& out);

}  // namespace fab::lint

#endif  // FAB_TOOLS_FABLINT_GRAPH_H_
