#include "lint.h"

#include <algorithm>
#include <cctype>
#include <set>

namespace fab::lint {

namespace {

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

size_t SkipWs(const std::string& s, size_t i) {
  while (i < s.size() && IsSpace(s[i])) ++i;
  return i;
}

/// True when `text[pos, pos+word)` equals `word` with word boundaries on
/// both sides.
bool TokenAt(const std::string& text, size_t pos, const std::string& word) {
  if (pos + word.size() > text.size()) return false;
  if (text.compare(pos, word.size(), word) != 0) return false;
  if (pos > 0 && IsWordChar(text[pos - 1])) return false;
  const size_t end = pos + word.size();
  if (end < text.size() && IsWordChar(text[end])) return false;
  return true;
}

/// Calls `fn(pos)` for every boundary-delimited occurrence of `word`.
template <typename Fn>
void ForEachToken(const std::string& text, const std::string& word, Fn fn) {
  size_t pos = text.find(word);
  while (pos != std::string::npos) {
    if (TokenAt(text, pos, word)) fn(pos);
    pos = text.find(word, pos + 1);
  }
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool IsHeaderPath(const std::string& rel) {
  return EndsWith(rel, ".h") || EndsWith(rel, ".hpp") || EndsWith(rel, ".hh");
}

/// Shared per-file scanning state.
struct Ctx {
  std::string rel;
  std::vector<std::string> comment_lines;  // CommentText, for suppressions
  std::string masked;                      // comments/strings blanked
  std::vector<size_t> line_start;          // offset of each line in masked
  bool all_rules = false;
  std::vector<Violation> out;
};

int LineOf(const Ctx& ctx, size_t pos) {
  auto it = std::upper_bound(ctx.line_start.begin(), ctx.line_start.end(), pos);
  return static_cast<int>(it - ctx.line_start.begin());
}

/// Calls `fn(id)` for each comma-separated id inside every
/// `fablint:allow(<list>)` occurrence on `text` (whitespace stripped).
template <typename Fn>
void ForEachAllowId(const std::string& text, Fn fn) {
  const std::string marker = "fablint:allow(";
  size_t at = text.find(marker);
  while (at != std::string::npos) {
    const size_t open = at + marker.size() - 1;
    const size_t close = text.find(')', open);
    if (close == std::string::npos) return;
    const std::string list = text.substr(open + 1, close - open - 1);
    size_t start = 0;
    while (start <= list.size()) {
      size_t comma = list.find(',', start);
      if (comma == std::string::npos) comma = list.size();
      std::string id = list.substr(start, comma - start);
      id.erase(std::remove_if(id.begin(), id.end(),
                              [](char c) { return IsSpace(c); }),
               id.end());
      if (!id.empty()) fn(id);
      start = comma + 1;
    }
    at = text.find(marker, close);
  }
}

bool Suppressed(const Ctx& ctx, int line, const std::string& rule) {
  return AllowsRule(ctx.comment_lines, line, rule);
}

void Add(Ctx& ctx, size_t pos, const char* rule, std::string message,
         std::vector<Edit> fix = {}) {
  const int line = LineOf(ctx, pos);
  if (Suppressed(ctx, line, rule)) return;
  ctx.out.push_back(
      Violation{ctx.rel, line, rule, std::move(message), std::move(fix)});
}

/// Deletes the statement starting at `begin` through its terminating `;`.
/// When nothing else shares the line(s), the whole line is removed,
/// newline included, so --fix leaves no blank scar.
std::vector<Edit> DeleteStatementFix(const Ctx& ctx, size_t begin) {
  const std::string& text = ctx.masked;
  size_t end = text.find(';', begin);
  if (end == std::string::npos) return {};
  ++end;  // include the ';'
  size_t line_start = begin;
  while (line_start > 0 && text[line_start - 1] != '\n') --line_start;
  size_t line_end = end;
  while (line_end < text.size() && text[line_end] != '\n') ++line_end;
  bool alone = true;
  for (size_t i = line_start; i < begin && alone; ++i) {
    if (!IsSpace(text[i])) alone = false;
  }
  for (size_t i = end; i < line_end && alone; ++i) {
    if (!IsSpace(text[i])) alone = false;
  }
  if (alone) {
    begin = line_start;
    end = line_end < text.size() ? line_end + 1 : line_end;
  }
  return {Edit{begin, end, ""}};
}

// --- Determinism rules. -----------------------------------------------------

/// `word` immediately (modulo whitespace) followed by `(`.
template <typename Fn>
void ForEachCall(const std::string& text, const std::string& word, Fn fn) {
  ForEachToken(text, word, [&](size_t pos) {
    const size_t after = SkipWs(text, pos + word.size());
    if (after < text.size() && text[after] == '(') fn(pos);
  });
}

void CheckBannedRandomness(Ctx& ctx) {
  ForEachCall(ctx.masked, "rand", [&](size_t pos) {
    Add(ctx, pos, "det-rand",
        "std::rand() is banned: draw from an explicitly seeded fab::Rng "
        "(src/util/random.h)");
  });
  ForEachToken(ctx.masked, "random_device", [&](size_t pos) {
    Add(ctx, pos, "det-random-device",
        "std::random_device is ambient entropy: all randomness must derive "
        "from the experiment seed");
  });
  ForEachCall(ctx.masked, "time", [&](size_t pos) {
    Add(ctx, pos, "det-time",
        "wall-clock time is banned in deterministic code (steady_clock "
        "durations are fine; rule matches time() and system_clock)");
  });
  ForEachToken(ctx.masked, "system_clock", [&](size_t pos) {
    Add(ctx, pos, "det-time",
        "std::chrono::system_clock is wall-clock time: use steady_clock for "
        "durations, never clock values in computation");
  });
  const bool mt_allowed =
      !ctx.all_rules && StartsWith(ctx.rel, "src/util/random.");
  if (!mt_allowed) {
    for (const char* word : {"mt19937", "mt19937_64"}) {
      ForEachToken(ctx.masked, word, [&](size_t pos) {
        Add(ctx, pos, "det-mt19937",
            "construct RNGs via fab::Rng / Rng::Fork (src/util/random.h), "
            "not std::mt19937 directly");
      });
    }
  }
}

/// Collects names declared (in this file) with an unordered container type,
/// then flags range-for statements and .begin()/.cbegin() calls on them.
/// Per-file and lexical by design: members declared in another header are
/// not tracked (the declaring header itself is linted instead).
void CheckUnorderedIteration(Ctx& ctx) {
  if (!ctx.all_rules && !StartsWith(ctx.rel, "src/core/") &&
      !StartsWith(ctx.rel, "src/explain/") && !StartsWith(ctx.rel, "src/ml/")) {
    return;
  }
  const std::string& text = ctx.masked;
  std::set<std::string> names;
  for (const char* type : {"unordered_map", "unordered_set",
                           "unordered_multimap", "unordered_multiset"}) {
    ForEachToken(text, type, [&](size_t pos) {
      size_t i = SkipWs(text, pos + std::string(type).size());
      if (i >= text.size() || text[i] != '<') return;
      int depth = 1;
      ++i;
      while (i < text.size() && depth > 0) {
        if (text[i] == '<') ++depth;
        if (text[i] == '>') --depth;
        ++i;
      }
      // Skip refs/pointers/cv between the type and the declared name.
      while (i < text.size()) {
        i = SkipWs(text, i);
        if (i < text.size() && (text[i] == '&' || text[i] == '*')) {
          ++i;
          continue;
        }
        if (TokenAt(text, i, "const")) {
          i += 5;
          continue;
        }
        break;
      }
      size_t j = i;
      while (j < text.size() && IsWordChar(text[j])) ++j;
      if (j > i) names.insert(text.substr(i, j - i));
    });
  }
  if (names.empty()) return;

  // Range-for whose range expression is one of the collected names.
  ForEachToken(text, "for", [&](size_t pos) {
    size_t i = SkipWs(text, pos + 3);
    if (i >= text.size() || text[i] != '(') return;
    int depth = 1;
    size_t colon = std::string::npos;
    size_t k = i + 1;
    while (k < text.size() && depth > 0) {
      const char c = text[k];
      if (c == '(') ++depth;
      if (c == ')') --depth;
      if (c == ':' && depth == 1 && colon == std::string::npos &&
          (k + 1 >= text.size() || text[k + 1] != ':') &&
          (k == 0 || text[k - 1] != ':')) {
        colon = k;
      }
      ++k;
    }
    if (colon == std::string::npos) return;  // not a range-for
    size_t e = SkipWs(text, colon + 1);
    while (e < text.size() && (text[e] == '*' || text[e] == '&')) {
      e = SkipWs(text, e + 1);
    }
    size_t f = e;
    while (f < text.size() && IsWordChar(text[f])) ++f;
    const std::string base = text.substr(e, f - e);
    if (names.count(base) == 0) return;
    // `base` alone or `base.something` both depend on hash order; only an
    // exact container expression is flagged (members of the element do not
    // appear here — the loop variable does).
    Add(ctx, pos, "det-unordered-iter",
        "range-for over unordered container '" + base +
            "': hash order is not deterministic; reduce in index or "
            "sorted-key order");
  });

  // Explicit iterator walks / bulk copies that expose hash order.
  for (const std::string& name : names) {
    ForEachToken(text, name, [&](size_t pos) {
      const size_t after = pos + name.size();
      for (const char* member : {".begin(", ".cbegin(", "->begin("}) {
        if (text.compare(after, std::string(member).size(), member) == 0) {
          Add(ctx, pos, "det-unordered-iter",
              "iterator over unordered container '" + name +
                  "': hash order is not deterministic; reduce in index or "
                  "sorted-key order");
          return;
        }
      }
    });
  }
}

// --- Safety rules. ----------------------------------------------------------

void CheckSafety(Ctx& ctx) {
  const std::string& text = ctx.masked;
  ForEachCall(text, "assert", [&](size_t pos) {
    Add(ctx, pos, "safety-assert",
        "bare assert() is compiled out in Release builds: use FAB_CHECK / "
        "FAB_DCHECK (src/util/check.h)");
  });
  ForEachToken(text, "catch", [&](size_t pos) {
    size_t i = SkipWs(text, pos + 5);
    if (i >= text.size() || text[i] != '(') return;
    i = SkipWs(text, i + 1);
    if (text.compare(i, 3, "...") != 0) return;
    Add(ctx, pos, "safety-catch-all",
        "catch (...) can silently swallow failures: rethrow the exception, "
        "or suppress with a justification comment");
  });
  ForEachToken(text, "float", [&](size_t pos) {
    size_t i = SkipWs(text, pos + 5);
    size_t j = i;
    while (j < text.size() && IsWordChar(text[j])) ++j;
    if (j == i) return;  // not followed by an identifier (cast, template arg)
    const size_t after = SkipWs(text, j);
    if (after >= text.size()) return;
    const char c = text[after];
    if (c != '=' && c != ';' && c != '{' && c != ',') return;
    Add(ctx, pos, "safety-float-accum",
        "float local '" + text.substr(i, j - i) +
            "': accumulate in double (float drifts in long reductions)");
  });
}

// --- Hygiene rules. ---------------------------------------------------------

void CheckHygiene(Ctx& ctx) {
  const std::string& text = ctx.masked;
  const bool is_header = IsHeaderPath(ctx.rel);

  if (is_header || ctx.all_rules) {
    const bool has_pragma = text.find("#pragma once") != std::string::npos;
    const bool has_guard = text.find("#ifndef") != std::string::npos &&
                           text.find("#define") != std::string::npos;
    if (is_header && !has_pragma && !has_guard) {
      Add(ctx, 0, "hygiene-guard",
          "header has neither #pragma once nor an #ifndef include guard");
    }
    if (is_header) {
      ForEachToken(text, "using", [&](size_t pos) {
        const size_t i = SkipWs(text, pos + 5);
        if (!TokenAt(text, i, "namespace")) return;
        Add(ctx, pos, "hygiene-using-namespace",
            "using namespace in a header leaks into every includer",
            DeleteStatementFix(ctx, pos));
      });
    }
  }

  auto preceding_token = [&text](size_t pos) -> std::string {
    size_t i = pos;
    while (i > 0 && IsSpace(text[i - 1])) --i;
    size_t j = i;
    while (j > 0 && IsWordChar(text[j - 1])) --j;
    return text.substr(j, i - j);
  };
  auto preceding_char = [&text](size_t pos) -> char {
    size_t i = pos;
    while (i > 0 && IsSpace(text[i - 1])) --i;
    return i > 0 ? text[i - 1] : '\0';
  };

  ForEachToken(text, "new", [&](size_t pos) {
    if (preceding_token(pos) == "operator") return;
    Add(ctx, pos, "hygiene-new-delete",
        "raw new: use std::make_unique / std::make_shared / containers "
        "(suppress with a justification for intentional leaks)");
  });
  ForEachToken(text, "delete", [&](size_t pos) {
    if (preceding_char(pos) == '=') return;  // deleted special member
    if (preceding_token(pos) == "operator") return;
    Add(ctx, pos, "hygiene-new-delete",
        "raw delete: owning types must use RAII "
        "(unique_ptr/shared_ptr/containers)");
  });
}

// --- Observability rules. ---------------------------------------------------

/// Raw monotonic-clock reads outside the observability layer defeat the
/// single-wall-clock-boundary contract: timing must go through obs::Clock
/// (src/util/obs/clock.h) so wall-clock values provably flow only into
/// obs sinks (trace buffers, metric histograms), never into computation.
/// src/util/obs/ itself and bench/ (which reports wall time by design)
/// are exempt.
void CheckRawClock(Ctx& ctx) {
  if (!ctx.all_rules && (StartsWith(ctx.rel, "src/util/obs/") ||
                         StartsWith(ctx.rel, "bench/"))) {
    return;
  }
  const std::string& text = ctx.masked;
  for (const char* clock :
       {"steady_clock", "system_clock", "high_resolution_clock"}) {
    ForEachToken(text, clock, [&](size_t pos) {
      size_t i = SkipWs(text, pos + std::string(clock).size());
      if (i + 1 >= text.size() || text[i] != ':' || text[i + 1] != ':') return;
      i = SkipWs(text, i + 2);
      if (!TokenAt(text, i, "now")) return;
      i = SkipWs(text, i + 3);
      if (i >= text.size() || text[i] != '(') return;
      Add(ctx, pos, "obs-raw-clock",
          std::string(clock) +
              "::now() outside src/util/obs/ and bench/: read time through "
              "obs::Clock so wall-clock stays an observability-only input");
    });
  }
}

/// FAB_TRACE_SCOPE's span name must be a string literal: TraceSpan and
/// the flight recorder store the `const char*` unowned — the ring keeps
/// it until the slot recycles and the signal-handler dump dereferences
/// it long after the scope ended, so a std::string::c_str() or stack
/// buffer there is a use-after-free in the crash path. Detection works
/// on masked text: a literal first argument (quotes included) masks to
/// pure whitespace, so ANY visible character before the argument's
/// closing ',' or ')' means a computed name. src/util/obs/ (the macro's
/// own definition and span internals) is exempt.
void CheckSpanLiteral(Ctx& ctx) {
  if (!ctx.all_rules && StartsWith(ctx.rel, "src/util/obs/")) return;
  const std::string& text = ctx.masked;
  ForEachToken(text, "FAB_TRACE_SCOPE", [&](size_t pos) {
    const size_t open =
        SkipWs(text, pos + std::string("FAB_TRACE_SCOPE").size());
    if (open >= text.size() || text[open] != '(') return;  // mention, not call
    bool visible = false;
    int depth = 1;
    for (size_t k = open + 1; k < text.size(); ++k) {
      const char c = text[k];
      if (depth == 1 && (c == ',' || c == ')')) break;
      if (c == '(' || c == '{' || c == '[') ++depth;
      if (c == ')' || c == '}' || c == ']') --depth;
      if (!IsSpace(c)) visible = true;
    }
    if (!visible) return;
    Add(ctx, pos, "obs-span-literal",
        "FAB_TRACE_SCOPE name must be a string literal: the span/flight "
        "ring stores the char* unowned and the crash dump reads it after "
        "the scope dies");
  });
}

// --- Performance rules. -----------------------------------------------------

/// [begin, end] in 1-based lines, both inclusive.
struct LineRange {
  int begin = 0;
  int end = 0;
};

/// `// fablint:hot` ... `// fablint:endhot` comment markers delimit hot
/// regions (the FlatForest traversal loop, the HTTP parser byte loop, the
/// batch submit path). The marker must be the FIRST word of the comment
/// (so prose that merely mentions a marker never opens a region); text
/// after it is free-form annotation. An unterminated open marker extends
/// to EOF; nested markers do not stack (the outermost pair wins).
std::vector<LineRange> HotRanges(const std::vector<std::string>& comment_lines) {
  const auto leads_with = [](const std::string& l, const char* marker) {
    const size_t at = SkipWs(l, 0);
    return l.compare(at, std::string(marker).size(), marker) == 0;
  };
  std::vector<LineRange> ranges;
  int open = 0;
  for (size_t i = 0; i < comment_lines.size(); ++i) {
    const std::string& l = comment_lines[i];
    if (leads_with(l, "fablint:endhot")) {
      if (open > 0) {
        ranges.push_back(LineRange{open, static_cast<int>(i) + 1});
        open = 0;
      }
    } else if (leads_with(l, "fablint:hot")) {
      if (open == 0) open = static_cast<int>(i) + 1;
    }
  }
  if (open > 0) ranges.push_back(LineRange{open, 1 << 30});
  return ranges;
}

/// Allocation in a marked hot region: heap allocation (new / make_unique /
/// make_shared), container growth with no visible reserve on the same
/// receiver anywhere in the file, and std::string temporaries (by-value
/// construction, to_string, substr, operator+ on strings is out of lexical
/// reach). Cold sub-paths inside a hot region (error branches) carry a
/// justified fablint:allow(perf-hot-alloc).
void CheckHotAlloc(Ctx& ctx) {
  const std::vector<LineRange> ranges = HotRanges(ctx.comment_lines);
  if (ranges.empty()) return;
  const std::string& text = ctx.masked;
  auto in_hot = [&](size_t pos) {
    const int line = LineOf(ctx, pos);
    for (const LineRange& r : ranges) {
      if (line >= r.begin && line <= r.end) return true;
    }
    return false;
  };

  for (const char* call : {"new", "make_unique", "make_shared"}) {
    ForEachToken(text, call, [&](size_t pos) {
      if (!in_hot(pos)) return;
      Add(ctx, pos, "perf-hot-alloc",
          std::string(call) +
              " allocates inside a fablint:hot region: hoist the allocation "
              "out of the hot path (or fablint:allow(perf-hot-alloc) with a "
              "justification for a cold branch)");
    });
  }

  // Receivers with a visible `x.reserve(` / `x->reserve(` anywhere in the
  // file (typically just above the hot loop) are exempt from the growth
  // check.
  auto receiver_of = [&text](size_t dot) -> std::string {
    size_t i = dot;
    if (i >= 2 && text[i - 1] == '>' && text[i - 2] == '-') {
      i -= 2;
    } else if (i >= 1 && text[i - 1] == '.') {
      i -= 1;
    } else {
      return std::string();
    }
    size_t j = i;
    while (j > 0 && IsWordChar(text[j - 1])) --j;
    return text.substr(j, i - j);
  };
  std::set<std::string> reserved;
  ForEachToken(text, "reserve", [&](size_t pos) {
    const std::string recv = receiver_of(pos);
    if (!recv.empty()) reserved.insert(recv);
  });
  for (const char* grow : {"push_back", "emplace_back"}) {
    ForEachToken(text, grow, [&](size_t pos) {
      if (!in_hot(pos)) return;
      const std::string recv = receiver_of(pos);
      if (recv.empty() || reserved.count(recv) > 0) return;
      Add(ctx, pos, "perf-hot-alloc",
          std::string(grow) + " on '" + recv +
              "' inside a fablint:hot region with no " + recv +
              ".reserve(...) in this file: reserve capacity before the hot "
              "loop");
    });
  }

  for (const char* strfn : {"to_string", "substr"}) {
    ForEachCall(text, strfn, [&](size_t pos) {
      if (!in_hot(pos)) return;
      Add(ctx, pos, "perf-hot-alloc",
          std::string(strfn) +
              " builds a std::string temporary inside a fablint:hot region: "
              "format outside the hot path or reuse a buffer");
    });
  }
  ForEachToken(text, "string", [&](size_t pos) {
    if (!in_hot(pos)) return;
    // Only std::-qualified uses that construct a value: `std::string x` or
    // `std::string(...)`. References/pointers (`const std::string&`) and
    // unqualified words do not allocate here.
    if (pos < 2 || text[pos - 1] != ':' || text[pos - 2] != ':') return;
    size_t i = SkipWs(text, pos + 6);
    const bool ctor_call = i < text.size() && text[i] == '(';
    const bool value_decl = i < text.size() && IsWordChar(text[i]);
    if (!ctor_call && !value_decl) return;
    Add(ctx, pos, "perf-hot-alloc",
        "std::string constructed by value inside a fablint:hot region: "
        "allocate outside the hot path or reuse a buffer");
  });
}

// --- Network rules. ---------------------------------------------------------

/// Byte-level network plumbing is confined to src/net/: the serving
/// front-end's correctness argument rests on ONE IO thread owning every
/// socket, and its telemetry on every accept/parse/respond passing
/// through the instrumented server. A raw syscall anywhere else opens a
/// side door past both. Matches the explicit global-namespace call form
/// (`::socket(...)`) the codebase uses for libc calls; tests, benches
/// and examples go through net::HttpClient / net::HttpServer instead.
void CheckRawSyscalls(Ctx& ctx) {
  if (!ctx.all_rules && StartsWith(ctx.rel, "src/net/")) return;
  const std::string& text = ctx.masked;
  for (const char* call :
       {"socket", "bind", "listen", "accept", "accept4", "connect",
        "epoll_create", "epoll_create1", "epoll_ctl", "epoll_wait", "poll",
        "recv", "send", "recvfrom", "sendto", "setsockopt", "getsockopt",
        "getsockname"}) {
    ForEachToken(text, call, [&](size_t pos) {
      // Only the global-qualified form `::call(` — a plain identifier is
      // far more often a member function or local (send, bind, poll...).
      if (pos < 2 || text[pos - 1] != ':' || text[pos - 2] != ':') return;
      if (pos >= 3 &&
          (IsWordChar(text[pos - 3]) || text[pos - 3] == ':')) {
        return;  // name-qualified (foo::bind), not the global namespace
      }
      const size_t after = SkipWs(text, pos + std::string(call).size());
      if (after >= text.size() || text[after] != '(') return;
      Add(ctx, pos, "net-raw-syscall",
          std::string("::") + call +
              "() outside src/net/: raw socket syscalls are confined to "
              "the fab::net layer (use net::HttpClient / net::HttpServer)");
    });
  }
}

// --- Lint-the-linter rules. -------------------------------------------------

/// A typo'd id in an allow list suppresses nothing and silently rots: a
/// misspelling like det-rnd looks like a suppression but the finding it
/// meant to cover still fires (or worse, was fixed and the stale allow
/// hides a future regression). Ids containing '<' or '>' are treated as
/// documentation placeholders and skipped.
void CheckUnknownRules(Ctx& ctx) {
  std::set<std::string> known;
  for (const RuleInfo& rule : AllRules()) known.insert(rule.id);
  for (size_t l = 0; l < ctx.comment_lines.size(); ++l) {
    ForEachAllowId(ctx.comment_lines[l], [&](const std::string& id) {
      if (id == "*" || known.count(id) > 0) return;
      if (id.find('<') != std::string::npos ||
          id.find('>') != std::string::npos) {
        return;  // placeholder in prose, e.g. fablint:allow(<rule-id>)
      }
      const int line = static_cast<int>(l) + 1;
      if (Suppressed(ctx, line, "lint-unknown-rule")) return;
      ctx.out.push_back(Violation{
          ctx.rel, line, "lint-unknown-rule",
          "unknown rule id '" + id +
              "' in fablint:allow list (run fablint --list-rules; a typo "
              "here suppresses nothing)"});
    });
  }
}

}  // namespace

const std::vector<RuleInfo>& AllRules() {
  static const std::vector<RuleInfo> kRules = {
      {"det-rand", "std::rand() banned; use fab::Rng"},
      {"det-random-device", "std::random_device banned; seed-derived only"},
      {"det-time", "time()/system_clock banned in deterministic code"},
      {"det-mt19937", "std::mt19937 banned outside src/util/random.*"},
      {"det-unordered-iter",
       "no iteration over unordered containers in reduction code "
       "(src/core, src/explain, src/ml)"},
      {"safety-assert", "bare assert() banned; use FAB_CHECK/FAB_DCHECK"},
      {"safety-catch-all", "catch (...) must rethrow or be justified"},
      {"safety-float-accum", "float accumulators banned; use double"},
      {"hygiene-guard", "headers need #pragma once or an include guard"},
      {"hygiene-using-namespace", "no using namespace in headers"},
      {"hygiene-new-delete", "no raw new/delete outside justified sites"},
      {"safety-unannotated-mutex",
       "mutex members must guard something via FAB_GUARDED_BY "
       "(src/util, src/serve, src/net)"},
      {"graph-include-cycle", "no cycles in the quoted-include graph"},
      {"graph-unused-include",
       "quoted includes must export something the includer references "
       "(src/)"},
      {"lock-order",
       "no opposite-order nested mutex acquisitions across the repo"},
      {"lint-unknown-rule",
       "fablint:allow lists may only name real rule ids (or *)"},
      {"obs-raw-clock",
       "raw *_clock::now() banned outside src/util/obs/ and bench/; "
       "use obs::Clock"},
      {"obs-span-literal",
       "FAB_TRACE_SCOPE name must be a string literal (the span/flight "
       "ring stores the char* unowned)"},
      {"net-raw-syscall",
       "raw ::socket/::bind/::epoll_*/... banned outside src/net/; "
       "use net::HttpClient / net::HttpServer"},
      {"status-unchecked",
       "Status/Result return values must be consumed (FAB_CHECK_OK, "
       "assign, branch, return, or explicit (void))"},
      {"status-nodiscard",
       "Status/Result-returning declarations in src/ headers need "
       "[[nodiscard]]"},
      {"perf-hot-alloc",
       "no heap allocation, unreserved growth, or string temporaries "
       "inside fablint:hot regions"},
      {"det-unordered-iteration",
       "no accumulating/emitting loops over unordered containers in "
       "det-reachable functions (fablint:det-root closure)"},
      {"det-pointer-key",
       "no pointer-keyed maps/sets or pointer-comparison sorts in files "
       "defining det-reachable functions"},
      {"det-raw-rng",
       "no srand/drand48/rand_r/random_shuffle/default_random_engine in "
       "det-reachable functions"},
      {"conc-blocking-under-lock",
       "no blocking calls (future/pool waits, HTTP round-trips, sleeps, "
       "file IO) while a mutex is held"},
  };
  return kRules;
}

std::string MaskSource(const std::string& src) {
  std::string out = src;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (state) {
      case State::kCode: {
        if (c == '/' && next == '/') {
          out[i] = ' ';
          state = State::kLineComment;
        } else if (c == '/' && next == '*') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kBlockComment;
        } else if (c == '"') {
          // Raw string literal: R"delim( ... )delim" — blank it wholesale.
          if (i > 0 && src[i - 1] == 'R' &&
              (i < 2 || !IsWordChar(src[i - 2]) || src[i - 2] == 'u' ||
               src[i - 2] == 'U' || src[i - 2] == 'L' || src[i - 2] == '8')) {
            const size_t open = src.find('(', i + 1);
            if (open != std::string::npos) {
              const std::string delim = src.substr(i + 1, open - i - 1);
              const std::string closer = ")" + delim + "\"";
              size_t close = src.find(closer, open + 1);
              if (close == std::string::npos) close = src.size();
              const size_t stop = std::min(src.size(), close + closer.size());
              for (size_t k = i; k < stop; ++k) {
                if (src[k] != '\n') out[k] = ' ';
              }
              i = stop - 1;
              break;
            }
          }
          out[i] = ' ';
          state = State::kString;
        } else if (c == '\'') {
          out[i] = ' ';
          state = State::kChar;
        }
        break;
      }
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
      case State::kChar: {
        const char quote = state == State::kString ? '"' : '\'';
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == quote || c == '\n') {  // '\n': unterminated literal
          if (c != '\n') out[i] = ' ';
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      }
    }
  }
  return out;
}

std::string CommentText(const std::string& src) {
  // Same scanner shape as MaskSource, keeping the opposite side: only
  // comment text survives; code and string/char literals (raw strings
  // included) are blanked. Newlines always survive so line numbers match.
  std::string out(src.size(), ' ');
  for (size_t i = 0; i < src.size(); ++i) {
    if (src[i] == '\n') out[i] = '\n';
  }
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (state) {
      case State::kCode: {
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == '"') {
          // Raw string literal: skip it wholesale (its body may contain
          // comment-looking text that must NOT count as a comment).
          if (i > 0 && src[i - 1] == 'R' &&
              (i < 2 || !IsWordChar(src[i - 2]) || src[i - 2] == 'u' ||
               src[i - 2] == 'U' || src[i - 2] == 'L' || src[i - 2] == '8')) {
            const size_t open = src.find('(', i + 1);
            if (open != std::string::npos) {
              const std::string delim = src.substr(i + 1, open - i - 1);
              const std::string closer = ")" + delim + "\"";
              size_t close = src.find(closer, open + 1);
              if (close == std::string::npos) close = src.size();
              i = std::min(src.size(), close + closer.size()) - 1;
              break;
            }
          }
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      }
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = c;
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = c;
        }
        break;
      case State::kString:
      case State::kChar: {
        const char quote = state == State::kString ? '"' : '\'';
        if (c == '\\' && next != '\0' && next != '\n') {
          ++i;
        } else if (c == quote || c == '\n') {  // '\n': unterminated literal
          state = State::kCode;
        }
        break;
      }
    }
  }
  return out;
}

std::vector<std::string> SplitLines(const std::string& src) {
  std::vector<std::string> lines;
  size_t start = 0;
  for (size_t i = 0; i <= src.size(); ++i) {
    if (i == src.size() || src[i] == '\n') {
      if (i == src.size() && start == i && !lines.empty()) break;
      lines.push_back(src.substr(start, i - start));
      start = i + 1;
    }
  }
  return lines;
}

bool AllowsRule(const std::vector<std::string>& comment_lines, int line,
                const std::string& rule) {
  for (int l = line; l >= line - 1 && l >= 1; --l) {
    if (static_cast<size_t>(l) > comment_lines.size()) continue;
    bool hit = false;
    ForEachAllowId(comment_lines[static_cast<size_t>(l) - 1],
                   [&](const std::string& id) {
                     if (id == rule || id == "*") hit = true;
                   });
    if (hit) return true;
  }
  return false;
}

std::vector<Violation> LintSource(const std::string& rel_path,
                                  const std::string& src,
                                  const Options& options) {
  Ctx ctx;
  ctx.rel = rel_path;
  ctx.all_rules = options.all_rules;
  ctx.masked = MaskSource(src);
  ctx.comment_lines = SplitLines(CommentText(src));

  ctx.line_start.push_back(0);
  for (size_t i = 0; i < src.size(); ++i) {
    if (src[i] == '\n') ctx.line_start.push_back(i + 1);
  }

  CheckBannedRandomness(ctx);
  CheckUnorderedIteration(ctx);
  CheckSafety(ctx);
  CheckHygiene(ctx);
  CheckHotAlloc(ctx);
  CheckRawClock(ctx);
  CheckSpanLiteral(ctx);
  CheckRawSyscalls(ctx);
  CheckUnknownRules(ctx);

  std::sort(ctx.out.begin(), ctx.out.end(),
            [](const Violation& a, const Violation& b) {
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return ctx.out;
}

}  // namespace fab::lint
