#ifndef FAB_TOOLS_FABLINT_REPO_GRAPH_H_
#define FAB_TOOLS_FABLINT_REPO_GRAPH_H_

#include <set>
#include <string>
#include <vector>

#include "lint.h"

/// Shared repo-graph infrastructure for fablint's cross-file passes.
///
/// Pass 2 (graph.cc: include DAG, lock order, mutex annotations) and
/// pass 3 (semantic.cc: Status discipline over a cross-file signature
/// index) both analyze every walked file at once. This header holds the
/// representation they share — one FileNode per input with the masked
/// source, a position-annotated token stream, the quoted-include edges
/// and the exported-name index — so the files are masked and tokenized
/// exactly once per run, in BuildNodes().
namespace fab::lint {

bool StartsWith(const std::string& s, const std::string& prefix);
bool EndsWith(const std::string& s, const std::string& suffix);
bool IsHeaderPath(const std::string& rel);

/// "src/util/thread_pool.cc" -> "thread_pool" (for paired-header checks).
std::string Stem(const std::string& rel);
std::string DirOf(const std::string& rel);

/// Lexically normalizes "a/./b/../c" to "a/c".
std::string NormPath(const std::string& p);

struct IncludeEdge {
  std::string written;  // path as written inside the quotes
  std::string target;   // resolved rel path within the file set (or empty)
  int line = 0;         // 1-based line of the #include
};

/// One token of masked source: a word or a single punctuation character.
/// `off` is the byte offset in the original file (masking preserves
/// layout, so masked offsets map 1:1 onto the source — fix edits anchor
/// here).
struct Tok {
  std::string text;
  int line = 0;
  size_t off = 0;
  bool word = false;
};

struct FileNode {
  std::string rel;
  bool is_header = false;
  std::string masked;
  std::vector<std::string> comment_lines;
  std::vector<bool> is_pp;          // 1-based-1: line i (0-based) is a
                                    // preprocessor logical line
  std::vector<IncludeEdge> includes;
  std::vector<Tok> toks;            // masked tokens off preprocessor lines
  std::set<std::string> tokens;     // every word token (pp lines included)
  std::set<std::string> exports;    // headers only
};

/// C++ keywords and common type names excluded from export extraction.
const std::set<std::string>& Keywords();

/// Project style: functions are PascalCase. Lowercase words are
/// variables/keywords; SHOUTY words are macros. Shared by the semantic
/// and call-graph passes so "looks like a function" means one thing.
bool IsFunctionName(const std::string& name);

/// toks[open] must be "<". Returns the index just past the matching ">",
/// or 0 when the bracket never closes in this statement (a less-than
/// operator, not template arguments).
size_t MatchTemplateArgs(const std::vector<Tok>& toks, size_t open);

/// Index of the ')' matching the '(' at toks[open], or SIZE_MAX when the
/// file ends unbalanced (preprocessor arms — the caller gives up rather
/// than swallow the rest of the file).
size_t MatchParen(const std::vector<Tok>& toks, size_t open);

/// Index of the '}' matching the '{' at toks[open]; SIZE_MAX if unbalanced.
size_t MatchBrace(const std::vector<Tok>& toks, size_t open);

/// Masks, tokenizes and indexes every input, resolves quoted includes
/// against the walked set, and returns the nodes sorted by rel path.
std::vector<FileNode> BuildNodes(const std::vector<FileInput>& files);

}  // namespace fab::lint

#endif  // FAB_TOOLS_FABLINT_REPO_GRAPH_H_
