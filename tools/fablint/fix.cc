#include "fix.h"

#include <algorithm>
#include <ostream>

namespace fab::lint {

FixResult ApplyEdits(const std::string& src, std::vector<Edit> edits) {
  std::sort(edits.begin(), edits.end(), [](const Edit& a, const Edit& b) {
    if (a.begin != b.begin) return a.begin < b.begin;
    if (a.end != b.end) return a.end < b.end;
    return a.replacement < b.replacement;
  });
  edits.erase(std::unique(edits.begin(), edits.end(),
                          [](const Edit& a, const Edit& b) {
                            return a.begin == b.begin && a.end == b.end &&
                                   a.replacement == b.replacement;
                          }),
              edits.end());

  FixResult result;
  std::string& out = result.fixed;
  out.reserve(src.size());
  size_t cursor = 0;  // next unconsumed byte of src
  for (const Edit& e : edits) {
    if (e.begin > e.end || e.end > src.size() || e.begin < cursor) {
      ++result.dropped;  // malformed span, or overlaps an applied edit
      continue;
    }
    out.append(src, cursor, e.begin - cursor);
    out.append(e.replacement);
    cursor = e.end;
    ++result.applied;
  }
  out.append(src, cursor, src.size() - cursor);
  return result;
}

void RenderDiff(const std::string& rel, const std::string& before,
                const std::string& after, std::ostream& out) {
  const std::vector<std::string> a = SplitLines(before);
  const std::vector<std::string> b = SplitLines(after);
  size_t prefix = 0;
  while (prefix < a.size() && prefix < b.size() && a[prefix] == b[prefix]) {
    ++prefix;
  }
  size_t suffix = 0;
  while (suffix < a.size() - prefix && suffix < b.size() - prefix &&
         a[a.size() - 1 - suffix] == b[b.size() - 1 - suffix]) {
    ++suffix;
  }
  const size_t a_count = a.size() - prefix - suffix;
  const size_t b_count = b.size() - prefix - suffix;
  if (a_count == 0 && b_count == 0) return;
  out << "--- a/" << rel << "\n+++ b/" << rel << "\n";
  out << "@@ -" << (a_count == 0 ? prefix : prefix + 1) << "," << a_count
      << " +" << (b_count == 0 ? prefix : prefix + 1) << "," << b_count
      << " @@\n";
  for (size_t i = prefix; i < prefix + a_count; ++i) out << "-" << a[i] << "\n";
  for (size_t i = prefix; i < prefix + b_count; ++i) out << "+" << b[i] << "\n";
}

}  // namespace fab::lint
