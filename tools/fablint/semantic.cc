#include "semantic.h"

#include <cctype>
#include <set>
#include <string>

namespace fab::lint {

namespace {

constexpr size_t kNpos = static_cast<size_t>(-1);

/// Control-flow / declaration-structure keywords: a word that can
/// legitimately precede a call expression or class-head name, never a
/// return type in a declaration.
bool IsControlWord(const std::string& w) {
  static const std::set<std::string> kControl = {
      "if",      "while",    "for",     "switch",    "return",  "case",
      "else",    "do",       "goto",    "throw",     "new",     "delete",
      "sizeof",  "co_return", "co_await", "co_yield", "operator", "using",
      "typedef", "break",    "continue", "try",      "catch",   "namespace",
      "class",   "struct",   "union",   "enum",      "public",  "private",
      "protected", "template", "typename", "this",   "requires", "concept",
      "static_assert", "alignof", "decltype", "not",  "and",     "or",
  };
  return kControl.count(w) > 0;
}

/// When toks[i] starts a `Status` / `Result<...>` return type of a
/// function declaration or definition, returns the index of the declared
/// name token; kNpos otherwise.
size_t DeclNameIndex(const std::vector<Tok>& toks, size_t i) {
  if (!toks[i].word) return kNpos;
  size_t j;
  if (toks[i].text == "Status") {
    j = i + 1;
  } else if (toks[i].text == "Result") {
    if (i + 1 >= toks.size() || toks[i + 1].text != "<") return kNpos;
    j = MatchTemplateArgs(toks, i + 1);
    if (j == 0) return kNpos;
  } else {
    return kNpos;
  }
  if (j + 1 >= toks.size()) return kNpos;
  if (!toks[j].word || !IsFunctionName(toks[j].text)) return kNpos;
  if (toks[j + 1].text != "(") return kNpos;
  return j;
}

/// The cross-file signature index: function names only ever declared with
/// a Status/Result return type. Names also seen with any other return
/// type are ambiguous at the lexical level and are dropped.
std::set<std::string> BuildStatusIndex(const std::vector<FileNode>& nodes) {
  std::set<std::string> status_fns;
  std::set<std::string> other_fns;
  for (const FileNode& node : nodes) {
    const std::vector<Tok>& toks = node.toks;
    for (size_t i = 0; i < toks.size(); ++i) {
      if (!toks[i].word) continue;
      const size_t name = DeclNameIndex(toks, i);
      if (name != kNpos) {
        status_fns.insert(toks[name].text);
        continue;
      }
      // Conflict evidence: `T Name (`, `T & Name (`, `T * Name (` with T
      // a word other than Status/Result. Control-flow keywords before a
      // call (`return Foo(`, `else Bar(`) are not declarations; type-ish
      // keywords (void, bool, int, auto, ...) are the most common
      // non-Status returns and absolutely count.
      if (i + 2 >= toks.size()) continue;
      const std::string& t = toks[i].text;
      if (t == "Status" || t == "Result") continue;
      if (IsControlWord(t)) continue;
      size_t fn = i + 1;
      if (!toks[fn].word && (toks[fn].text == "&" || toks[fn].text == "*") &&
          fn + 1 < toks.size()) {
        ++fn;
      }
      if (fn + 1 >= toks.size()) continue;
      if (!toks[fn].word || !IsFunctionName(toks[fn].text)) continue;
      if (toks[fn + 1].text != "(") continue;
      other_fns.insert(toks[fn].text);
    }
  }
  for (const std::string& name : other_fns) status_fns.erase(name);
  return status_fns;
}

/// Walks backward from the call-name token over its object chain
/// (`obj.`, `ptr->`, `ns::` — `->` and `::` are two tokens each in the
/// masked stream) and returns the index of the chain's first token.
size_t ChainStart(const std::vector<Tok>& toks, size_t i) {
  size_t s = i;
  while (s > 0) {
    const std::string& prev = toks[s - 1].text;
    if (prev == "." && s >= 2 && toks[s - 2].word) {
      s -= 2;
    } else if (prev == ">" && s >= 3 && toks[s - 2].text == "-" &&
               toks[s - 3].word) {
      s -= 3;
    } else if (prev == ":" && s >= 3 && toks[s - 2].text == ":" &&
               toks[s - 3].word) {
      s -= 3;
    } else {
      break;
    }
  }
  return s;
}

/// True when the chain beginning at toks[s] opens an expression
/// statement: the previous token ends a statement or opens a block /
/// control clause. An explicit `(void)` cast before the chain counts as
/// consuming the value, not discarding it.
bool StartsStatement(const std::vector<Tok>& toks, size_t s) {
  if (s == 0) return true;
  const Tok& b = toks[s - 1];
  if (b.word) return b.text == "else" || b.text == "do";
  // `:` is deliberately NOT a statement boundary: a ternary's second arm
  // (`x = c ? A() : B();`) consumes the value, and that shape is far more
  // common than a discard as the first statement after a label.
  if (b.text == ";" || b.text == "{" || b.text == "}") return true;
  if (b.text == ")") {
    // `(void) Foo();` — deliberate discard, recognized as checked.
    const bool void_cast = s >= 3 && toks[s - 2].text == "void" &&
                           toks[s - 3].text == "(";
    return !void_cast;  // `if (...) Foo();` / `for (...) Foo();` discard
  }
  return false;  // =, (, ',', return-expression operators: consumed
}

void CheckUnchecked(const FileNode& node,
                    const std::set<std::string>& status_fns,
                    std::vector<Violation>& out) {
  const std::vector<Tok>& toks = node.toks;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (!toks[i].word || status_fns.count(toks[i].text) == 0) continue;
    if (i + 1 >= toks.size() || toks[i + 1].text != "(") continue;
    // The declaration itself (`Status Foo(`): chain-preceding token is the
    // return type word, which StartsStatement rejects. Find the call's
    // closing paren; the statement must end right there.
    int depth = 0;
    size_t close = kNpos;
    for (size_t j = i + 1; j < toks.size(); ++j) {
      if (toks[j].text == "(") ++depth;
      if (toks[j].text == ")" && --depth == 0) {
        close = j;
        break;
      }
    }
    if (close == kNpos || close + 1 >= toks.size()) continue;
    if (toks[close + 1].text != ";") continue;  // chained / braced: consumed
    if (!StartsStatement(toks, ChainStart(toks, i))) continue;
    const int line = toks[i].line;
    if (AllowsRule(node.comment_lines, line, "status-unchecked")) continue;
    out.push_back(Violation{
        node.rel, line, "status-unchecked",
        "return value of '" + toks[i].text +
            "' (Status/Result) is silently discarded: FAB_CHECK_OK it, "
            "branch on it, return it, or cast to (void) with a comment "
            "saying why failure is ignorable"});
  }
}

void CheckNodiscard(const FileNode& node, std::vector<Violation>& out) {
  const std::vector<Tok>& toks = node.toks;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (DeclNameIndex(toks, i) == kNpos) continue;
    // Walk to the declaration's front: over leading qualifiers and over
    // the type's own namespace qualification (`fab::Status`).
    size_t front = i;
    while (front > 0) {
      const Tok& p = toks[front - 1];
      if (p.word && (p.text == "virtual" || p.text == "static" ||
                     p.text == "inline" || p.text == "constexpr" ||
                     p.text == "explicit" || p.text == "friend" ||
                     p.text == "extern")) {
        --front;
      } else if (p.text == ":" && front >= 3 &&
                 toks[front - 2].text == ":" && toks[front - 3].word) {
        front -= 3;
      } else {
        break;
      }
    }
    // `[[...nodiscard...]]` immediately before the front?
    bool annotated = false;
    if (front >= 2 && toks[front - 1].text == "]" &&
        toks[front - 2].text == "]") {
      for (size_t j = front - 2; j > 0; --j) {
        const std::string& t = toks[j - 1].text;
        if (t == "[") break;
        if (toks[j - 1].word && t == "nodiscard") {
          annotated = true;
          break;
        }
      }
    }
    if (annotated) continue;
    const int line = toks[i].line;
    if (AllowsRule(node.comment_lines, line, "status-nodiscard")) continue;
    const size_t name = DeclNameIndex(toks, i);
    out.push_back(Violation{
        node.rel, line, "status-nodiscard",
        "'" + toks[name].text +
            "' returns Status/Result but is not [[nodiscard]]: annotate "
            "the declaration so the compiler rejects silent discards",
        {Edit{toks[front].off, toks[front].off, "[[nodiscard]] "}}});
  }
}

}  // namespace

std::vector<Violation> LintSemantic(const std::vector<FileNode>& nodes,
                                    const Options& options) {
  std::vector<Violation> out;
  const std::set<std::string> status_fns = BuildStatusIndex(nodes);
  for (const FileNode& node : nodes) {
    CheckUnchecked(node, status_fns, out);
    if (node.is_header &&
        (options.all_rules || StartsWith(node.rel, "src/"))) {
      CheckNodiscard(node, out);
    }
  }
  return out;
}

}  // namespace fab::lint
