#!/usr/bin/env python3
"""Validates fablint's --sarif export against the checked-in schema.

Runs the binary over the lint fixtures (deliberate violations, so the
results array is non-empty), parses the emitted SARIF, and validates it
against sarif_schema.json with a small built-in validator (required
properties, primitive types, const values, minItems/minimum). On top of
the schema it cross-checks the semantic invariants GitHub code scanning
relies on: every result's ruleId is declared in the driver rules table
and every ruleIndex points at the matching entry.

Usage: check_sarif.py --fablint <binary> --fixtures <dir>
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
}


def validate(value, schema, path, errors):
    if "const" in schema and value != schema["const"]:
        errors.append(f"{path}: expected {schema['const']!r}, got {value!r}")
        return
    expected = schema.get("type")
    if expected is not None:
        py_type = _TYPES[expected]
        if not isinstance(value, py_type) or (
            expected == "integer" and isinstance(value, bool)
        ):
            errors.append(f"{path}: expected {expected}, got {type(value).__name__}")
            return
    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required property {key!r}")
        for key, sub in schema.get("properties", {}).items():
            if key in value:
                validate(value[key], sub, f"{path}.{key}", errors)
    elif isinstance(value, list):
        if len(value) < schema.get("minItems", 0):
            errors.append(f"{path}: fewer than {schema['minItems']} item(s)")
        item_schema = schema.get("items")
        if item_schema is not None:
            for i, item in enumerate(value):
                validate(item, item_schema, f"{path}[{i}]", errors)
    elif isinstance(value, int) and not isinstance(value, bool):
        if "minimum" in schema and value < schema["minimum"]:
            errors.append(f"{path}: {value} below minimum {schema['minimum']}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fablint", required=True, help="fablint binary")
    parser.add_argument("--fixtures", required=True, help="lint fixtures dir")
    args = parser.parse_args()

    schema_path = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                               "sarif_schema.json")
    with open(schema_path, encoding="utf-8") as fh:
        schema = json.load(fh)

    with tempfile.TemporaryDirectory() as tmp:
        sarif_path = os.path.join(tmp, "fablint.sarif")
        proc = subprocess.run(
            [args.fablint, "--all-rules", "--root", args.fixtures,
             "--sarif", sarif_path, args.fixtures],
            capture_output=True, text=True,
        )
        # Exit 1 (violations found) is the expected outcome on fixtures;
        # 2 is a usage/IO failure.
        if proc.returncode not in (0, 1):
            print(proc.stdout)
            print(proc.stderr, file=sys.stderr)
            print(f"fablint exited {proc.returncode}")
            return 1
        with open(sarif_path, encoding="utf-8") as fh:
            doc = json.load(fh)

    errors = []
    validate(doc, schema, "$", errors)

    runs = doc.get("runs") or [{}]
    driver = runs[0].get("tool", {}).get("driver", {})
    rules = driver.get("rules", [])
    ids = [rule.get("id") for rule in rules]
    results = runs[0].get("results", [])
    if not results:
        errors.append("results: empty - fixtures should always violate rules")
    for i, result in enumerate(results):
        rule_id = result.get("ruleId")
        if rule_id not in ids:
            errors.append(f"results[{i}]: ruleId {rule_id!r} not in driver rules")
        index = result.get("ruleIndex")
        if index is not None and (
            not 0 <= index < len(ids) or ids[index] != rule_id
        ):
            errors.append(
                f"results[{i}]: ruleIndex {index} does not match {rule_id!r}"
            )

    if errors:
        for error in errors:
            print(error)
        return 1
    print(f"sarif valid: {len(results)} result(s), {len(rules)} rule(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
