#ifndef FAB_TOOLS_FABLINT_SARIF_H_
#define FAB_TOOLS_FABLINT_SARIF_H_

#include <iosfwd>
#include <vector>

#include "lint.h"

/// SARIF 2.1.0 export — the `--sarif <path>` flag.
///
/// Emits one run with the full AllRules() table as the tool's rule
/// metadata and one result per violation, each anchored to a
/// physicalLocation (uri + startLine). GitHub code scanning ingests the
/// file via codeql-action/upload-sarif and annotates PR diffs inline.
/// Hand-rolled serialization (one JSON escaper, no dependencies), same
/// spirit as the rest of the tool.
namespace fab::lint {

/// Writes the SARIF document for `violations` to `out`. Violations are
/// expected pre-sorted (path, line, rule) — the writer preserves order.
void WriteSarif(const std::vector<Violation>& violations, std::ostream& out);

}  // namespace fab::lint

#endif  // FAB_TOOLS_FABLINT_SARIF_H_
