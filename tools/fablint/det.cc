#include "det.h"

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "graph.h"

namespace fab::lint {

namespace {

constexpr size_t kNpos = static_cast<size_t>(-1);

void Report(std::vector<Violation>& out, const FileNode& node, int line,
            const char* rule, std::string message) {
  if (AllowsRule(node.comment_lines, line, rule)) return;
  out.push_back(Violation{node.rel, line, rule, std::move(message)});
}

/// det-reachable definitions per node index: the bodies the det-* rules
/// scan. Bare-name identity means every same-named definition is
/// included — over-approximate, which only widens coverage.
std::map<size_t, std::vector<const FunctionDef*>> DetDefsByNode(
    const CallGraph& graph) {
  std::map<size_t, std::vector<const FunctionDef*>> by_node;
  for (const FunctionDef& def : graph.defs) {
    if (graph.det_reachable.count(def.name) > 0) {
      by_node[def.node].push_back(&def);
    }
  }
  return by_node;
}

// --- det-unordered-iteration. -----------------------------------------------

/// Names declared in this file with an unordered container type. Unlike
/// the per-file v1 rule, the det pass unions these with the names of
/// every directly-included walked header (LintDet below), so members a
/// .cc iterates but its header declares are still caught.
std::set<std::string> UnorderedNames(const FileNode& node) {
  static const std::set<std::string> kTypes = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  std::set<std::string> names;
  const std::vector<Tok>& toks = node.toks;
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!toks[i].word || kTypes.count(toks[i].text) == 0) continue;
    if (toks[i + 1].text != "<") continue;
    size_t j = MatchTemplateArgs(toks, i + 1);
    if (j == 0) continue;
    while (j < toks.size() &&
           (toks[j].text == "&" || toks[j].text == "*" ||
            toks[j].text == "const")) {
      ++j;
    }
    if (j < toks.size() && toks[j].word) names.insert(toks[j].text);
  }
  return names;
}

/// True when [begin, end) contains an accumulation/append/emit shape:
/// compound assignment, stream insert, increment/decrement, or a growth
/// call. A loop body with none of these only reads per-entry state, and
/// reading in hash order is harmless.
bool HasAccumulation(const std::vector<Tok>& toks, size_t begin, size_t end) {
  static const std::set<std::string> kGrowth = {
      "push_back", "emplace_back", "insert", "emplace", "append"};
  for (size_t i = begin; i < end && i < toks.size(); ++i) {
    const Tok& t = toks[i];
    if (t.word) {
      if (kGrowth.count(t.text) > 0) return true;
      continue;
    }
    if (i + 1 >= end || i + 1 >= toks.size()) continue;
    const Tok& u = toks[i + 1];
    if (u.word || u.off != t.off + 1) continue;  // not glued punctuation
    const char a = t.text[0];
    const char b = u.text[0];
    if (b == '=' && (a == '+' || a == '-' || a == '*' || a == '/')) {
      return true;
    }
    if ((a == '<' && b == '<') || (a == '+' && b == '+') ||
        (a == '-' && b == '-')) {
      return true;
    }
  }
  return false;
}

/// Token range of the loop body for the `for` whose header closes at
/// toks[close]: a brace block, or the single statement up to `;`.
std::pair<size_t, size_t> LoopBody(const std::vector<Tok>& toks,
                                   size_t close) {
  const size_t k = close + 1;
  if (k < toks.size() && toks[k].text == "{") {
    const size_t e = MatchBrace(toks, k);
    return {k + 1, e == kNpos ? toks.size() : e};
  }
  size_t e = k;
  while (e < toks.size() && toks[e].text != ";") ++e;
  return {k, e};
}

void CheckUnorderedIteration(const FileNode& node,
                             const std::vector<const FunctionDef*>& defs,
                             const std::set<std::string>& unordered,
                             std::vector<Violation>& out) {
  if (unordered.empty()) return;
  const std::vector<Tok>& toks = node.toks;
  for (const FunctionDef* def : defs) {
    for (size_t i = def->body_begin + 1;
         i < def->body_end && i + 1 < toks.size(); ++i) {
      if (!toks[i].word || toks[i].text != "for") continue;
      if (toks[i + 1].text != "(") continue;
      const size_t close = MatchParen(toks, i + 1);
      if (close == kNpos) continue;

      // Range-for over an unordered name?
      std::string base;
      int depth = 0;
      for (size_t j = i + 1; j < close; ++j) {
        if (toks[j].word) continue;
        if (toks[j].text == "(") ++depth;
        if (toks[j].text == ")") --depth;
        if (toks[j].text == ":" && depth == 1 &&
            toks[j - 1].text != ":" &&
            (j + 1 >= close || toks[j + 1].text != ":")) {
          size_t e = j + 1;
          while (e < close && (toks[e].text == "*" || toks[e].text == "&")) {
            ++e;
          }
          if (e < close && toks[e].word) base = toks[e].text;
          break;
        }
      }
      bool hazard = !base.empty() && unordered.count(base) > 0;

      // Iterator loop whose header walks an unordered container?
      if (!hazard) {
        for (size_t j = i + 2; j + 2 < close; ++j) {
          if (!toks[j].word || unordered.count(toks[j].text) == 0) continue;
          size_t m = j + 1;
          if (toks[m].text == ".") {
            ++m;
          } else if (toks[m].text == "-" && toks[m + 1].text == ">") {
            m += 2;
          } else {
            continue;
          }
          if (m < close && toks[m].word &&
              (toks[m].text == "begin" || toks[m].text == "cbegin")) {
            base = toks[j].text;
            hazard = true;
            break;
          }
        }
      }
      if (!hazard) continue;

      const auto [bb, be] = LoopBody(toks, close);
      if (!HasAccumulation(toks, bb, be)) continue;  // read-only: harmless
      Report(out, node, toks[i].line, "det-unordered-iteration",
             "loop over unordered container '" + base +
                 "' accumulates or emits inside det-reachable '" +
                 def->display +
                 "': hash order is not deterministic — iterate a sorted "
                 "copy of the keys (or fablint:allow with a one-line "
                 "order-independence argument)");
    }
  }
}

// --- det-pointer-key. -------------------------------------------------------

void CheckPointerKeys(const FileNode& node, std::vector<Violation>& out) {
  static const std::set<std::string> kAssoc = {
      "map",           "set",           "multimap",
      "multiset",      "unordered_map", "unordered_set",
      "unordered_multimap", "unordered_multiset"};
  const std::vector<Tok>& toks = node.toks;
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!toks[i].word) continue;

    // Pointer-keyed associative container: first template argument ends
    // with '*'. Pointer VALUES are fine — they never drive order.
    if (kAssoc.count(toks[i].text) > 0 && toks[i + 1].text == "<") {
      int depth = 0;
      size_t last = kNpos;
      for (size_t j = i + 1; j < toks.size(); ++j) {
        const std::string& t = toks[j].text;
        if (t == "<") {
          ++depth;
        } else if (t == ">") {
          if (--depth == 0) break;
        } else if (t == "," && depth == 1) {
          break;
        } else if (t == ";" || t == "{" || t == "}") {
          last = kNpos;  // a less-than operator, not template arguments
          break;
        }
        if (j > i + 1) last = j;
      }
      if (last != kNpos && toks[last].text == "*") {
        Report(out, node, toks[i].line, "det-pointer-key",
               "'" + toks[i].text +
                   "' keyed by a pointer: iteration/tie-break order is "
                   "allocation order, which varies run to run — key by a "
                   "stable id (index, name) instead");
      }
      continue;
    }

    // Pointer-comparison sort: a sort(...) comparator whose pointer
    // parameters are compared by value (`a < b`, not `a->field <
    // b->field`).
    if ((toks[i].text == "sort" || toks[i].text == "stable_sort") &&
        toks[i + 1].text == "(") {
      const size_t close = MatchParen(toks, i + 1);
      if (close == kNpos) continue;
      // Find the lambda: '[' ... ']' '(' params ')' '{' body '}'.
      size_t lb = kNpos;
      for (size_t j = i + 2; j < close; ++j) {
        if (!toks[j].word && toks[j].text == "[") {
          lb = j;
          break;
        }
      }
      if (lb == kNpos) continue;
      size_t rb = lb + 1;
      while (rb < close && toks[rb].text != "]") ++rb;
      if (rb + 1 >= close || toks[rb + 1].text != "(") continue;
      const size_t pclose = MatchParen(toks, rb + 1);
      if (pclose == kNpos || pclose >= close) continue;
      // Parameter names: the word right before each ',' / ')', but only
      // for parameters declared with a '*'.
      std::set<std::string> ptr_params;
      bool saw_star = false;
      std::string last_word;
      for (size_t j = rb + 2; j <= pclose; ++j) {
        if (toks[j].word) {
          last_word = toks[j].text;
        } else if (toks[j].text == "*") {
          saw_star = true;
        } else if (toks[j].text == "," || j == pclose) {
          if (saw_star && !last_word.empty()) ptr_params.insert(last_word);
          saw_star = false;
          last_word.clear();
        }
      }
      if (ptr_params.empty()) continue;
      if (pclose + 1 >= close || toks[pclose + 1].text != "{") continue;
      size_t bclose = MatchBrace(toks, pclose + 1);
      if (bclose == kNpos || bclose > close) bclose = close;
      for (size_t j = pclose + 2; j + 2 < bclose; ++j) {
        if (!toks[j].word || ptr_params.count(toks[j].text) == 0) continue;
        if (toks[j + 1].text != "<" && toks[j + 1].text != ">") continue;
        if (!toks[j + 2].word || ptr_params.count(toks[j + 2].text) == 0) {
          continue;
        }
        Report(out, node, toks[i].line, "det-pointer-key",
               "sort comparator orders by raw pointer value ('" +
                   toks[j].text + " " + toks[j + 1].text + " " +
                   toks[j + 2].text +
                   "'): allocation order varies run to run — compare a "
                   "stable field instead");
        break;
      }
    }
  }
}

// --- det-raw-rng. -----------------------------------------------------------

void CheckRawRng(const FileNode& node,
                 const std::vector<const FunctionDef*>& defs,
                 std::vector<Violation>& out) {
  static const std::set<std::string> kRaw = {
      "srand",        "drand48", "lrand48", "rand_r",
      "random_shuffle", "default_random_engine"};
  const std::vector<Tok>& toks = node.toks;
  for (const FunctionDef* def : defs) {
    for (size_t i = def->body_begin + 1; i < def->body_end; ++i) {
      if (!toks[i].word || kRaw.count(toks[i].text) == 0) continue;
      Report(out, node, toks[i].line, "det-raw-rng",
             "'" + toks[i].text + "' inside det-reachable '" + def->display +
                 "': all randomness on determinism paths must come from "
                 "fab::Rng seeded by (seed, unit_index)");
    }
  }
}

// --- conc-blocking-under-lock. ----------------------------------------------

/// Receiver word of a `.member` / `->member` access whose member token is
/// at `i`; empty when the token is not a member access.
std::string ReceiverOf(const std::vector<Tok>& toks, size_t i) {
  if (i >= 2 && toks[i - 1].text == "." && toks[i - 2].word) {
    return toks[i - 2].text;
  }
  if (i >= 3 && toks[i - 1].text == ">" && toks[i - 2].text == "-" &&
      toks[i - 3].word) {
    return toks[i - 3].text;
  }
  return std::string();
}

/// Names declared in this file with std::future / std::shared_future
/// type, plus HttpClient-typed names — the receivers whose `.get()` /
/// `.Get()` calls the blocking rule recognizes.
struct DeclaredBlockers {
  std::set<std::string> futures;
  std::set<std::string> clients;
};

DeclaredBlockers CollectDeclaredBlockers(const FileNode& node) {
  DeclaredBlockers decls;
  const std::vector<Tok>& toks = node.toks;
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!toks[i].word) continue;
    if ((toks[i].text == "future" || toks[i].text == "shared_future") &&
        toks[i + 1].text == "<") {
      size_t j = MatchTemplateArgs(toks, i + 1);
      if (j != 0 && j < toks.size() && toks[j].word) {
        decls.futures.insert(toks[j].text);
      }
    } else if (toks[i].text == "HttpClient") {
      size_t j = i + 1;
      while (j < toks.size() && (toks[j].text == "&" || toks[j].text == "*")) {
        ++j;
      }
      if (j < toks.size() && toks[j].word) decls.clients.insert(toks[j].text);
    }
  }
  return decls;
}

/// When the token at `i` is a known-blocking operation, returns a short
/// description of it; nullptr otherwise. The one deliberate negative:
/// `.Wait(mu)` / `.wait(lock)` WITH arguments is the condition-variable
/// pattern — it releases the lock while sleeping — so only empty-argument
/// waits (futures, pools, latches) count as blocking.
const char* BlockingOpAt(const std::vector<Tok>& toks, size_t i,
                         const DeclaredBlockers& decls) {
  if (!toks[i].word) return nullptr;
  const std::string& t = toks[i].text;
  const bool call = i + 1 < toks.size() && toks[i + 1].text == "(";

  if ((t == "sleep_for" || t == "sleep_until" || t == "usleep" ||
       t == "nanosleep") &&
      call) {
    return "a sleep";
  }
  if ((t == "getline" || t == "fopen" || t == "fread" || t == "fwrite" ||
       t == "fsync") &&
      call) {
    return "file IO";
  }
  if (t == "ifstream" || t == "ofstream" || t == "fstream") {
    return "file-stream IO";
  }
  const std::string recv = ReceiverOf(toks, i);
  if (recv.empty() || !call) return nullptr;
  const bool empty_args = i + 2 < toks.size() && toks[i + 2].text == ")";
  if (t == "get" && empty_args &&
      (decls.futures.count(recv) > 0 ||
       recv.find("future") != std::string::npos ||
       recv.find("fut") == 0)) {
    return "a future wait";
  }
  if ((t == "Wait" || t == "wait") && empty_args) {
    return "a blocking wait";
  }
  if ((t == "Get" || t == "Post" || t == "RoundTrip" || t == "Request") &&
      decls.clients.count(recv) > 0) {
    return "an HTTP round-trip";
  }
  return nullptr;
}

/// Why a function name blocks: the operation description, and (for
/// transitive cases) the callee the blocking is reached through.
struct BlockReason {
  std::string what;
  std::string via;  // empty: blocks directly
};

/// Direct blocking seeds per definition, then a fixed point over the
/// call graph: a caller of a blocking function blocks too.
std::map<std::string, BlockReason> ComputeBlocking(
    const std::vector<FileNode>& nodes, const CallGraph& graph,
    const std::vector<DeclaredBlockers>& decls) {
  std::map<std::string, BlockReason> why;
  for (const FunctionDef& def : graph.defs) {
    if (why.count(def.name) > 0) continue;
    const std::vector<Tok>& toks = nodes[def.node].toks;
    for (size_t i = def.body_begin + 1; i < def.body_end; ++i) {
      const char* what = BlockingOpAt(toks, i, decls[def.node]);
      if (what != nullptr) {
        why[def.name] = BlockReason{what, ""};
        break;
      }
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const FunctionDef& def : graph.defs) {
      if (why.count(def.name) > 0) continue;
      for (const std::string& callee : def.calls) {
        const auto it = why.find(callee);
        if (it == why.end()) continue;
        why[def.name] = BlockReason{it->second.what, callee};
        changed = true;
        break;
      }
    }
  }
  return why;
}

void CheckBlockingUnderLock(const FileNode& node,
                            const DeclaredBlockers& decls,
                            const std::map<std::string, BlockReason>& why,
                            std::vector<Violation>& out) {
  const std::vector<Tok>& toks = node.toks;
  std::set<int> reported;  // one diagnostic per line is plenty
  LockWalkHooks hooks;
  hooks.on_token = [&](size_t i, const std::vector<HeldLock>& held) {
    if (held.empty() || reported.count(toks[i].line) > 0) return;
    const std::string& mu = held.back().qual;
    const char* what = BlockingOpAt(toks, i, decls);
    if (what != nullptr) {
      reported.insert(toks[i].line);
      Report(out, node, toks[i].line, "conc-blocking-under-lock",
             std::string(what) + " while mutex '" + mu +
                 "' is held: release the lock first (copy the state out, "
                 "or hand the work to a queue drained outside the "
                 "critical section)");
      return;
    }
    // A call to a function the graph knows blocks (directly or through
    // its callees).
    if (!toks[i].word || i + 1 >= toks.size() || toks[i + 1].text != "(") {
      return;
    }
    const auto it = why.find(toks[i].text);
    if (it == why.end()) return;
    reported.insert(toks[i].line);
    std::string how = it->second.what;
    if (!it->second.via.empty()) {
      how += " (reached via '" + it->second.via + "')";
    }
    Report(out, node, toks[i].line, "conc-blocking-under-lock",
           "call to '" + toks[i].text + "' performs " + how +
               " while mutex '" + mu +
               "' is held: move the call outside the critical section");
  };
  WalkLockRegions(node, hooks);
}

}  // namespace

std::vector<Violation> LintDet(const std::vector<FileNode>& nodes,
                               const CallGraph& graph,
                               const Options& options) {
  std::vector<Violation> out;
  const std::map<size_t, std::vector<const FunctionDef*>> det_defs =
      DetDefsByNode(graph);
  std::vector<DeclaredBlockers> decls(nodes.size());
  for (size_t n = 0; n < nodes.size(); ++n) {
    decls[n] = CollectDeclaredBlockers(nodes[n]);
  }
  const std::map<std::string, BlockReason> why =
      ComputeBlocking(nodes, graph, decls);

  std::map<std::string, size_t> index;
  for (size_t n = 0; n < nodes.size(); ++n) index[nodes[n].rel] = n;
  std::vector<std::set<std::string>> own_names(nodes.size());
  for (size_t n = 0; n < nodes.size(); ++n) {
    own_names[n] = UnorderedNames(nodes[n]);
  }

  for (size_t n = 0; n < nodes.size(); ++n) {
    const FileNode& node = nodes[n];
    if (!options.all_rules && !StartsWith(node.rel, "src/")) continue;
    const auto it = det_defs.find(n);
    if (it != det_defs.end()) {
      std::set<std::string> unordered = own_names[n];
      for (const IncludeEdge& edge : node.includes) {
        if (edge.target.empty()) continue;
        const std::set<std::string>& inc = own_names[index.at(edge.target)];
        unordered.insert(inc.begin(), inc.end());
      }
      CheckUnorderedIteration(node, it->second, unordered, out);
      CheckRawRng(node, it->second, out);
      CheckPointerKeys(node, out);
    }
    CheckBlockingUnderLock(node, decls[n], why, out);
  }
  return out;
}

}  // namespace fab::lint
