#include "repo_graph.h"

#include <algorithm>
#include <map>
#include <utility>

namespace fab::lint {

namespace {

bool IsWordChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

void ParseIncludes(const std::vector<std::string>& raw_lines, FileNode& node) {
  for (size_t i = 0; i < raw_lines.size(); ++i) {
    const std::string& line = raw_lines[i];
    size_t j = 0;
    while (j < line.size() && (line[j] == ' ' || line[j] == '\t')) ++j;
    if (j >= line.size() || line[j] != '#') continue;
    ++j;
    while (j < line.size() && (line[j] == ' ' || line[j] == '\t')) ++j;
    if (line.compare(j, 7, "include") != 0) continue;
    j += 7;
    while (j < line.size() && (line[j] == ' ' || line[j] == '\t')) ++j;
    if (j >= line.size() || line[j] != '"') continue;  // <...> is ignored
    const size_t close = line.find('"', j + 1);
    if (close == std::string::npos) continue;
    IncludeEdge edge;
    edge.written = line.substr(j + 1, close - j - 1);
    edge.line = static_cast<int>(i) + 1;
    node.includes.push_back(std::move(edge));
  }
}

void MarkPreprocessorLines(const std::vector<std::string>& raw_lines,
                           FileNode& node) {
  node.is_pp.assign(raw_lines.size(), false);
  bool continued = false;
  for (size_t i = 0; i < raw_lines.size(); ++i) {
    const std::string& line = raw_lines[i];
    size_t j = 0;
    while (j < line.size() && (line[j] == ' ' || line[j] == '\t')) ++j;
    const bool starts_pp = j < line.size() && line[j] == '#';
    node.is_pp[i] = continued || starts_pp;
    continued = node.is_pp[i] && !line.empty() && line.back() == '\\';
  }
}

void Tokenize(const FileNode& node, const std::string& masked,
              std::vector<Tok>& toks, std::set<std::string>& all_words) {
  int line = 1;
  for (size_t i = 0; i < masked.size();) {
    const char c = masked[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
      continue;
    }
    const bool pp_line =
        static_cast<size_t>(line - 1) < node.is_pp.size() &&
        node.is_pp[static_cast<size_t>(line - 1)];
    if (IsWordChar(c)) {
      size_t j = i;
      while (j < masked.size() && IsWordChar(masked[j])) ++j;
      const std::string word = masked.substr(i, j - i);
      all_words.insert(word);
      if (!pp_line) toks.push_back(Tok{word, line, i, true});
      i = j;
    } else {
      if (!pp_line) toks.push_back(Tok{std::string(1, c), line, i, false});
      ++i;
    }
  }
}

/// Export extraction: names a header makes available to includers.
/// Deliberately liberal — over-extraction only makes graph-unused-include
/// quieter, never noisier. Collected at namespace/class scope only (never
/// inside function bodies): any non-keyword identifier followed by one of
/// `( = ; [ { , :`, plus every object-like or function-like `#define`
/// whose name does not look like an include guard (`*_H_`).
void ExtractExports(const std::vector<std::string>& raw_lines,
                    FileNode& node) {
  for (size_t i = 0; i < raw_lines.size(); ++i) {
    if (!node.is_pp[i]) continue;
    const std::string& line = raw_lines[i];
    const size_t at = line.find("define");
    if (at == std::string::npos) continue;
    size_t j = at + 6;
    while (j < line.size() && (line[j] == ' ' || line[j] == '\t')) ++j;
    size_t k = j;
    while (k < line.size() && IsWordChar(line[k])) ++k;
    if (k == j) continue;
    const std::string name = line.substr(j, k - j);
    if (!EndsWith(name, "_H_")) node.exports.insert(name);
  }

  // Scope walk: a brace is tagged by what opened it. Only namespace and
  // class-like (class/struct/union/enum) braces are export scope; any
  // other brace (function body, initializer, lambda) suspends extraction
  // until it closes.
  std::vector<char> scopes;  // 'n' | 'c' | 'o'
  char pending = 0;
  const auto extractable = [&scopes] {
    for (char s : scopes) {
      if (s == 'o') return false;
    }
    return true;
  };
  const std::vector<Tok>& toks = node.toks;
  for (size_t i = 0; i < toks.size(); ++i) {
    const Tok& t = toks[i];
    if (t.word) {
      if (t.text == "namespace") {
        pending = 'n';
      } else if (t.text == "class" || t.text == "struct" ||
                 t.text == "union" || t.text == "enum") {
        pending = 'c';
      } else if (extractable() && Keywords().count(t.text) == 0 &&
                 i + 1 < toks.size() && !toks[i + 1].word) {
        const char next = toks[i + 1].text[0];
        if (next == '(' || next == '=' || next == ';' || next == '[' ||
            next == '{' || next == ',' ||
            (next == ':' &&
             (i + 2 >= toks.size() || toks[i + 2].text != ":"))) {
          node.exports.insert(t.text);
        }
      }
      continue;
    }
    if (t.text == "{") {
      scopes.push_back(pending == 'n' ? 'n' : pending == 'c' ? 'c' : 'o');
      pending = 0;
    } else if (t.text == "}") {
      if (!scopes.empty()) scopes.pop_back();
    } else if (t.text == ";") {
      pending = 0;  // forward declaration: no scope was opened
    }
  }
}

}  // namespace

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool IsHeaderPath(const std::string& rel) {
  return EndsWith(rel, ".h") || EndsWith(rel, ".hpp") || EndsWith(rel, ".hh");
}

std::string Stem(const std::string& rel) {
  const size_t slash = rel.find_last_of('/');
  const std::string name =
      slash == std::string::npos ? rel : rel.substr(slash + 1);
  const size_t dot = name.find_last_of('.');
  return dot == std::string::npos ? name : name.substr(0, dot);
}

std::string DirOf(const std::string& rel) {
  const size_t slash = rel.find_last_of('/');
  return slash == std::string::npos ? std::string() : rel.substr(0, slash);
}

std::string NormPath(const std::string& p) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (size_t i = 0; i <= p.size(); ++i) {
    if (i == p.size() || p[i] == '/') {
      const std::string part = p.substr(start, i - start);
      start = i + 1;
      if (part.empty() || part == ".") continue;
      if (part == ".." && !parts.empty() && parts.back() != "..") {
        parts.pop_back();
      } else {
        parts.push_back(part);
      }
    }
  }
  std::string out;
  for (const std::string& part : parts) {
    if (!out.empty()) out += '/';
    out += part;
  }
  return out;
}

const std::set<std::string>& Keywords() {
  static const std::set<std::string> kWords = {
      "alignas",   "alignof",  "auto",      "bool",          "break",
      "case",      "catch",    "char",      "class",         "const",
      "constexpr", "continue", "decltype",  "default",       "delete",
      "do",        "double",   "else",      "enum",          "explicit",
      "extern",    "false",    "final",     "float",         "for",
      "friend",    "goto",     "if",        "inline",        "int",
      "long",      "mutable",  "namespace", "new",           "noexcept",
      "nullptr",   "operator", "override",  "private",       "protected",
      "public",    "requires", "return",    "short",         "signed",
      "sizeof",    "static",   "static_assert", "struct",    "switch",
      "template",  "this",     "throw",     "true",          "try",
      "typedef",   "typename", "union",     "unsigned",      "using",
      "virtual",   "void",     "volatile",  "while",         "std",
      "size_t",    "uint64_t", "int64_t",   "uint32_t",      "int32_t",
      "uint8_t",   "char8_t",  "wchar_t",   "co_await",      "co_return",
      "co_yield",  "concept",  "consteval", "constinit",     "export",
  };
  return kWords;
}

bool IsFunctionName(const std::string& name) {
  if (name.empty() || !(name[0] >= 'A' && name[0] <= 'Z')) return false;
  if (Keywords().count(name) > 0) return false;
  for (char c : name) {
    if (c >= 'a' && c <= 'z') return true;
  }
  return false;  // ALL_CAPS: a macro, not a function
}

size_t MatchTemplateArgs(const std::vector<Tok>& toks, size_t open) {
  int depth = 0;
  for (size_t j = open; j < toks.size(); ++j) {
    const std::string& t = toks[j].text;
    if (t == "<") {
      ++depth;
    } else if (t == ">") {
      if (--depth == 0) return j + 1;
    } else if (t == ";" || t == "{" || t == "}") {
      break;
    }
  }
  return 0;
}

size_t MatchParen(const std::vector<Tok>& toks, size_t open) {
  int depth = 0;
  for (size_t j = open; j < toks.size(); ++j) {
    if (toks[j].word) continue;
    if (toks[j].text == "(") ++depth;
    if (toks[j].text == ")" && --depth == 0) return j;
  }
  return static_cast<size_t>(-1);
}

size_t MatchBrace(const std::vector<Tok>& toks, size_t open) {
  int depth = 0;
  for (size_t j = open; j < toks.size(); ++j) {
    if (toks[j].word) continue;
    if (toks[j].text == "{") ++depth;
    if (toks[j].text == "}" && --depth == 0) return j;
  }
  return static_cast<size_t>(-1);
}

std::vector<FileNode> BuildNodes(const std::vector<FileInput>& files) {
  std::vector<FileNode> nodes;
  nodes.reserve(files.size());
  for (const FileInput& file : files) {
    FileNode node;
    node.rel = file.rel;
    node.is_header = IsHeaderPath(file.rel);
    node.masked = MaskSource(file.src);
    node.comment_lines = SplitLines(CommentText(file.src));
    const std::vector<std::string> raw_lines = SplitLines(file.src);
    MarkPreprocessorLines(raw_lines, node);
    ParseIncludes(raw_lines, node);
    Tokenize(node, node.masked, node.toks, node.tokens);
    if (node.is_header) ExtractExports(raw_lines, node);
    nodes.push_back(std::move(node));
  }
  std::sort(nodes.begin(), nodes.end(),
            [](const FileNode& a, const FileNode& b) { return a.rel < b.rel; });

  // Resolve quoted includes against the walked file set. Tried in order:
  // relative to the includer's directory, under src/ (the repo's -I src
  // convention), then root-relative.
  std::map<std::string, size_t> index;
  for (size_t i = 0; i < nodes.size(); ++i) index[nodes[i].rel] = i;
  for (FileNode& node : nodes) {
    const std::string dir = DirOf(node.rel);
    for (IncludeEdge& edge : node.includes) {
      for (const std::string& candidate :
           {NormPath(dir.empty() ? edge.written : dir + "/" + edge.written),
            NormPath("src/" + edge.written), NormPath(edge.written)}) {
        if (index.count(candidate) > 0) {
          edge.target = candidate;
          break;
        }
      }
    }
  }
  return nodes;
}

}  // namespace fab::lint
