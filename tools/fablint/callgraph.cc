#include "callgraph.h"

#include <algorithm>
#include <ostream>
#include <utility>

namespace fab::lint {

namespace {

constexpr size_t kNpos = static_cast<size_t>(-1);

/// True when `line` (a CommentText projection line) consists of the
/// marker word `fablint:det-root` as its FIRST word. Leads-with
/// semantics, like `fablint:hot`: prose that merely mentions the marker
/// (always quoted in documentation) never marks a function.
bool LeadsWithDetRoot(const std::string& line) {
  static const std::string kMarker = "fablint:det-root";
  size_t i = 0;
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  if (line.compare(i, kMarker.size(), kMarker) != 0) return false;
  // Word boundary after the marker: annotation text may follow (": why"),
  // but `fablint:det-rootish` is not the marker.
  const size_t j = i + kMarker.size();
  if (j < line.size()) {
    const char c = line[j];
    if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
        (c >= '0' && c <= '9') || c == '_' || c == '-') {
      return false;
    }
  }
  return true;
}

/// True when a det-root marker sits on the definition-name line or up to
/// two lines above it (room for a return type line plus the comment).
bool HasDetRootMarker(const std::vector<std::string>& comment_lines,
                      int line) {
  for (int l = line; l >= line - 2 && l >= 1; --l) {
    const size_t idx = static_cast<size_t>(l) - 1;
    if (idx < comment_lines.size() && LeadsWithDetRoot(comment_lines[idx])) {
      return true;
    }
  }
  return false;
}

/// toks[i] is a PascalCase word and toks[i + 1] is "(". Decides whether
/// this is a function DEFINITION head and, if so, returns the token index
/// of the body's '{'. Returns kNpos for declarations, calls and anything
/// the walk cannot classify.
///
/// After the parameter list's ')' the walk accepts, in any order:
/// cv/ref/exception qualifiers (`const`, `&`, `&&`, `noexcept`,
/// `noexcept(...)`), virt-specifiers (`override`, `final`), attributes
/// (`[[...]]`), a trailing return type (`-> T<...>::U`), and a
/// constructor initializer list (`: member(x), other{y}`). A `;` or `=`
/// (pure virtual / defaulted / deleted) means declaration. Inside the
/// initializer list a '{' preceded by a word or '>' is a member
/// brace-initializer to skip; any other '{' is the body.
size_t FindDefBody(const std::vector<Tok>& toks, size_t i) {
  const size_t close = MatchParen(toks, i + 1);
  if (close == kNpos) return kNpos;
  size_t k = close + 1;
  bool in_init_list = false;
  while (k < toks.size()) {
    const Tok& t = toks[k];
    if (t.word) {
      if (!in_init_list &&
          (t.text == "const" || t.text == "override" || t.text == "final" ||
           t.text == "mutable")) {
        ++k;
        continue;
      }
      if (!in_init_list && t.text == "noexcept") {
        ++k;
        if (k < toks.size() && toks[k].text == "(") {
          const size_t e = MatchParen(toks, k);
          if (e == kNpos) return kNpos;
          k = e + 1;
        }
        continue;
      }
      if (in_init_list || t.text == "requires") return kNpos;  // too clever
      // Trailing-return-type words (`-> std::vector<int>`) are consumed
      // by the '-' '>' arm below; a bare word here is K&R-ish noise.
      return kNpos;
    }
    if (t.text == ";" || t.text == "=") return kNpos;  // declaration
    if (t.text == "{") {
      if (in_init_list && k > 0 &&
          (toks[k - 1].word || toks[k - 1].text == ">")) {
        // Member brace-initializer: `x_{1}` — skip to its close.
        const size_t e = MatchBrace(toks, k);
        if (e == kNpos) return kNpos;
        k = e + 1;
        continue;
      }
      return k;  // the body
    }
    if (t.text == ":" && !in_init_list) {
      // `::` would be a qualified trailing name; a single ':' after the
      // parameter list opens a constructor initializer list.
      if (k + 1 < toks.size() && toks[k + 1].text == ":") return kNpos;
      in_init_list = true;
      ++k;
      continue;
    }
    if (in_init_list) {
      // Initializer expressions: walk over words, commas, parens and
      // template args until the body '{' shows up at this level.
      if (t.text == "(") {
        const size_t e = MatchParen(toks, k);
        if (e == kNpos) return kNpos;
        k = e + 1;
        continue;
      }
      if (t.text == "," || t.text == ":") {  // ':' from A::B qualifiers
        ++k;
        continue;
      }
      if (t.text == "<") {
        const size_t e = MatchTemplateArgs(toks, k);
        if (e == 0) return kNpos;
        k = e;
        continue;
      }
      return kNpos;
    }
    if (t.text == "-" && k + 1 < toks.size() && toks[k + 1].text == ">") {
      // Trailing return type: consume its tokens (words, '::', template
      // args, '*', '&') up to the '{', ';' or init ':' that follows.
      k += 2;
      while (k < toks.size()) {
        const Tok& r = toks[k];
        if (r.word || r.text == "*" || r.text == "&") {
          ++k;
        } else if (r.text == ":" && k + 1 < toks.size() &&
                   toks[k + 1].text == ":") {
          k += 2;
        } else if (r.text == "<") {
          const size_t e = MatchTemplateArgs(toks, k);
          if (e == 0) return kNpos;
          k = e;
        } else {
          break;
        }
      }
      continue;
    }
    if (t.text == "[" && k + 1 < toks.size() && toks[k + 1].text == "[") {
      // Attribute: skip to the closing ']' ']'.
      size_t e = k + 2;
      while (e + 1 < toks.size() &&
             !(toks[e].text == "]" && toks[e + 1].text == "]")) {
        ++e;
      }
      if (e + 1 >= toks.size()) return kNpos;
      k = e + 2;
      continue;
    }
    return kNpos;
  }
  return kNpos;
}

/// Collects bare-name call sites inside [begin, end): any PascalCase
/// word followed by '(' that is not a type keyword head. Constructor
/// calls and static calls count too — more edges only widen the
/// det-reachable set, which is the safe direction.
void CollectCalls(const std::vector<Tok>& toks, size_t begin, size_t end,
                  std::set<std::string>& calls) {
  for (size_t i = begin; i < end && i + 1 < toks.size(); ++i) {
    if (!toks[i].word || !IsFunctionName(toks[i].text)) continue;
    if (toks[i + 1].text != "(") continue;
    calls.insert(toks[i].text);
  }
}

}  // namespace

CallGraph BuildCallGraph(const std::vector<FileNode>& nodes) {
  CallGraph graph;
  for (size_t n = 0; n < nodes.size(); ++n) {
    const FileNode& node = nodes[n];
    const std::vector<Tok>& toks = node.toks;

    // Class context, mirroring the lock walker: inline member bodies via
    // the class-scope stack, out-of-line members via `Cls::Name(` heads.
    std::vector<std::pair<int, std::string>> class_stack;  // (depth, name)
    int depth = 0;
    char pending = 0;
    std::string pending_class_name;
    bool pending_name_frozen = false;
    size_t active_end = 0;  // token index past the current def body, or 0

    for (size_t i = 0; i < toks.size(); ++i) {
      const Tok& t = toks[i];
      if (i >= active_end) active_end = 0;
      if (!t.word) {
        if (t.text == "{") {
          ++depth;
          if (pending == 'c' && !pending_class_name.empty()) {
            class_stack.emplace_back(depth, pending_class_name);
          }
          pending = 0;
          pending_class_name.clear();
          pending_name_frozen = false;
        } else if (t.text == "}") {
          if (!class_stack.empty() && class_stack.back().first == depth) {
            class_stack.pop_back();
          }
          --depth;
        } else if (t.text == ";") {
          pending = 0;
          pending_class_name.clear();
          pending_name_frozen = false;
        } else if (t.text == ":" && pending == 'c' &&
                   (i + 1 >= toks.size() || toks[i + 1].text != ":") &&
                   (i == 0 || toks[i - 1].text != ":")) {
          pending_name_frozen = true;  // base-clause: class name is final
        }
        continue;
      }

      if (t.text == "class" || t.text == "struct" || t.text == "union" ||
          t.text == "enum") {
        pending = 'c';
        pending_name_frozen = false;
        pending_class_name.clear();
        continue;
      }
      if (pending == 'c' && !pending_name_frozen &&
          Keywords().count(t.text) == 0) {
        pending_class_name = t.text;
      }

      if (active_end != 0) continue;  // inside a body: calls collected below
      if (!IsFunctionName(t.text)) continue;
      if (i + 1 >= toks.size() || toks[i + 1].text != "(") continue;
      // A member access before the name (`x.Foo(`, `p->Foo(`) is a call
      // even at class scope (default member initializers); skip it.
      if (i >= 1 && toks[i - 1].text == ".") continue;
      if (i >= 2 && toks[i - 1].text == ">" && toks[i - 2].text == "-") {
        continue;
      }
      const size_t body = FindDefBody(toks, i);
      if (body == kNpos) continue;
      const size_t body_end = MatchBrace(toks, body);
      if (body_end == kNpos) continue;

      FunctionDef def;
      def.name = t.text;
      if (i >= 3 && toks[i - 1].text == ":" && toks[i - 2].text == ":" &&
          toks[i - 3].word) {
        def.display = toks[i - 3].text + "::" + def.name;  // out-of-line
      } else if (!class_stack.empty()) {
        def.display = class_stack.back().second + "::" + def.name;
      } else {
        def.display = def.name;
      }
      def.node = n;
      def.line = t.line;
      def.head = i;
      def.body_begin = body;
      def.body_end = body_end;
      def.is_root = HasDetRootMarker(node.comment_lines, t.line);
      CollectCalls(toks, body + 1, body_end, def.calls);
      graph.defs.push_back(std::move(def));
      active_end = body_end;  // skip def-head re-detection until it closes
    }
  }

  for (const FunctionDef& def : graph.defs) {
    graph.defined.insert(def.name);
    graph.calls[def.name].insert(def.calls.begin(), def.calls.end());
    if (def.is_root) graph.roots.insert(def.name);
  }

  // det-reachable: forward closure of the roots over the call edges.
  std::vector<std::string> frontier(graph.roots.begin(), graph.roots.end());
  graph.det_reachable.insert(graph.roots.begin(), graph.roots.end());
  while (!frontier.empty()) {
    const std::string name = std::move(frontier.back());
    frontier.pop_back();
    const auto it = graph.calls.find(name);
    if (it == graph.calls.end()) continue;
    for (const std::string& callee : it->second) {
      if (graph.det_reachable.insert(callee).second) {
        frontier.push_back(callee);
      }
    }
  }
  return graph;
}

void CallGraphDump(const CallGraph& graph, const std::vector<FileNode>& nodes,
                   std::ostream& out) {
  size_t edges = 0;
  for (const auto& [caller, callees] : graph.calls) edges += callees.size();
  size_t det_defined = 0;
  for (const std::string& name : graph.det_reachable) {
    if (graph.defined.count(name) > 0) ++det_defined;
  }
  out << "call-graph: " << graph.defs.size() << " definition(s), " << edges
      << " edge(s), " << graph.roots.size() << " root(s), " << det_defined
      << " det-reachable definition(s)\n";
  std::string current_file;
  for (const FunctionDef& def : graph.defs) {
    const std::string& rel = nodes[def.node].rel;
    if (rel != current_file) {
      out << rel << "\n";
      current_file = rel;
    }
    out << "  " << def.display << " (line " << def.line << ")";
    if (def.is_root) out << " [root]";
    if (graph.det_reachable.count(def.name) > 0) out << " [det]";
    out << "\n";
    for (const std::string& callee : def.calls) {
      out << "    -> " << callee;
      if (graph.defined.count(callee) == 0) out << " ??";
      out << "\n";
    }
  }
}

}  // namespace fab::lint
