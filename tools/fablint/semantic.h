#ifndef FAB_TOOLS_FABLINT_SEMANTIC_H_
#define FAB_TOOLS_FABLINT_SEMANTIC_H_

#include <vector>

#include "lint.h"
#include "repo_graph.h"

/// fablint pass 3 — Status-discipline analysis over a cross-file
/// function-signature index.
///
/// BuildNodes() gives every pass the same masked, position-annotated
/// token streams. This pass first indexes every function declared (or
/// defined) with a `Status` / `Result<...>` return type anywhere in the
/// walked set, then evaluates two rules:
///
///   status-unchecked   a call to an indexed function whose result forms
///                      an expression statement by itself — the Status is
///                      silently destroyed. Recognized consumers: passing
///                      to a macro/function (FAB_CHECK_OK, FAB_RETURN_IF_
///                      ERROR, ...), assignment, branching, `return`, an
///                      explicit `(void)` cast, and fablint:allow.
///   status-nodiscard   a Status/Result-returning declaration in a src/
///                      header without [[nodiscard]] — the compiler can
///                      only enforce discard-checking when the attribute
///                      is present (class-level [[nodiscard]] on the
///                      types covers by-value returns; the per-function
///                      attribute keeps the contract visible and covers
///                      future non-fab wrappers). Carries a --fix edit
///                      inserting `[[nodiscard]] ` at the declaration.
///
/// Like every fablint pass this is lexical, not a C++ front end: the
/// index keys on bare function names, so a name declared with BOTH a
/// Status-ish and a non-Status return type anywhere in the repo is
/// dropped from the index (ambiguous), and names must be PascalCase
/// (project style for functions) so constructor-style variable
/// declarations (`Status status(...)`) never enter the index.
namespace fab::lint {

/// Runs the Status-discipline rules over `nodes` (BuildNodes output).
std::vector<Violation> LintSemantic(const std::vector<FileNode>& nodes,
                                    const Options& options);

}  // namespace fab::lint

#endif  // FAB_TOOLS_FABLINT_SEMANTIC_H_
