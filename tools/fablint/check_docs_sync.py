#!/usr/bin/env python3
"""Fails when `fablint --list-rules` and the README rule table drift.

The README's static-analysis section documents every rule in a markdown
table whose first cell is the backticked rule id. This check compares
that set against the ids the binary actually registers, in both
directions, so adding a rule without documenting it (or documenting a
rule that was renamed or removed) fails ctest (`fablint_docs_sync`).

Usage: check_docs_sync.py --fablint <binary> --readme <README.md>
"""

import argparse
import re
import subprocess
import sys

# A rule id is lowercase words joined by hyphens (at least one hyphen),
# alone in the first cell of a table row. The hyphen requirement keeps
# other README tables (library targets, macros, endpoints) out.
_ROW = re.compile(r"^\|\s*`([a-z][a-z0-9]*(?:-[a-z0-9]+)+)`\s*\|")


def readme_rules(path):
    rules = set()
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            match = _ROW.match(line)
            if match:
                rules.add(match.group(1))
    return rules


def linter_rules(binary):
    out = subprocess.run(
        [binary, "--list-rules"], check=True, capture_output=True, text=True
    ).stdout
    return {line.split("\t", 1)[0] for line in out.splitlines() if line.strip()}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fablint", required=True, help="fablint binary")
    parser.add_argument("--readme", required=True, help="README.md path")
    args = parser.parse_args()

    documented = readme_rules(args.readme)
    registered = linter_rules(args.fablint)

    undocumented = sorted(registered - documented)
    stale = sorted(documented - registered)
    if undocumented:
        print(
            "rules registered in fablint but missing from the README table: "
            + ", ".join(undocumented)
        )
    if stale:
        print(
            "rules documented in the README table but unknown to fablint: "
            + ", ".join(stale)
        )
    if undocumented or stale:
        return 1
    print(f"docs in sync: {len(registered)} rule(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
