#!/usr/bin/env python3
"""Perf-regression gate over the committed BENCH_*.json baselines.

Usage:
    perf_gate.py --baselines bench/baselines --current <dir> [--bench NAME ...]
    perf_gate.py --self-test

Compares the scalar metrics in each current `BENCH_<name>.json` against
the committed baseline of the same name and fails (exit 1) on any metric
outside its allowed band. Exit 2 means the gate itself could not run
(missing file, malformed JSON, bad flags) — CI treats both as red, but
the distinction keeps "the server got slower" apart from "the bench
never ran".

Gate policy — what is gated and why
-----------------------------------

Benchmarks run on whatever machine CI hands us, so raw throughput
numbers move with the runner's core count, frequency and neighbors.
The gate therefore prefers *machine-portable* metrics and applies a
documented noise band to everything else:

* ratios (`flat_vs_per_row_speedup`, `speedup_w8`) transfer across
  hosts and get the standard 40% band — wide enough for CPU jitter on
  shared runners, narrow enough to catch a real 2x regression;
* absolute throughputs (`rows_per_s_flat_batch`, `server_rows_per_s`,
  `saturation_goodput_qps`) get a wider 60% band — they are still worth
  gating because a 10x collapse (accidental O(n^2), lost batching, a
  serialization bug) sails through no band at all;
* behavioral invariants are exact or floored regardless of hardware:
  determinism (`bitwise_identical == 1`), low-rate goodput keeping up
  with offered load (open-loop 200/400 qps floors), and overload
  behavior (the saturated server MUST shed — `overload_shed429 >= 1` —
  while still serving — `overload_ok >= 1`).

Latency percentiles (`*_p50_ms`, `*_p99_ms`) and the adaptive sweep's
upper steps are deliberately NOT gated: the sweep's step list depends on
where the knee lands on the host, and tail latency on a shared runner is
noise first, signal second. They stay in the JSON for humans.

Refreshing baselines: rerun the three benches with the CI arguments
(see .github/workflows/ci.yml, perf-gate job) and copy the BENCH_*.json
files into bench/baselines/.
"""

import argparse
import json
import os
import sys
import tempfile

# direction: "higher" | "lower" -> relative band vs baseline;
#            "exact"            -> must equal baseline bit-for-bit;
#            "floor"            -> absolute minimum, baseline ignored.
# band: fraction for higher/lower (0.40 = allow 40% worse), the
#       absolute threshold for floor, unused for exact.
GATES = {
    "serve_throughput": {
        "flat_vs_per_row_speedup": ("higher", 0.40),
        "rows_per_s_flat_batch": ("higher", 0.60),
        "server_rows_per_s": ("higher", 0.60),
    },
    "parallel_scaling": {
        "bitwise_identical": ("exact", None),
        "speedup_w8": ("higher", 0.40),
    },
    "serve_http": {
        # The first two sweep steps always run (the load generator pins
        # them before adapting), so their keys exist on every host. At
        # these rates the open-loop server must keep up with offered
        # load; the floors are 90% of offered.
        "qps200_goodput": ("floor", 180.0),
        "qps400_goodput": ("floor", 360.0),
        "saturation_goodput_qps": ("higher", 0.60),
        # Overload contract: at 2x saturation the admission controller
        # sheds (429s flow) while the server keeps serving admitted work.
        "overload_shed429": ("floor", 1.0),
        "overload_ok": ("floor", 1.0),
    },
    "obs_overhead": {
        # Observability must stay nearly free. These are throughput
        # ratios vs the obs-off serving baseline measured in the same
        # process (hardware-portable): the always-on flight-recorder
        # tier and full tracing may each cost at most half the
        # baseline's serving throughput.
        "serve_ratio_flight": ("floor", 0.5),
        "serve_ratio_trace": ("floor", 0.5),
    },
    "sweep": {
        # The seed x regime property sweep (tools/sweep) is pass/fail
        # science, not timing: every metric is hardware-portable, so the
        # gates are behavioral floors / exact matches. The floors track
        # the CI grid in .github/workflows/ci.yml (sweep-smoke job:
        # 4 seeds x 6 regimes x 2 scenarios = 24 cells, 108 checks).
        "cells": ("floor", 24.0),
        "checks": ("floor", 100.0),
        "cell_errors": ("exact", None),
        "property_violations": ("exact", None),
        "pass_rate": ("floor", 1.0),
    },
}


def load_results(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except FileNotFoundError:
        raise SystemExit(f"perf_gate: missing bench file: {path}")
    except json.JSONDecodeError as e:
        raise SystemExit(f"perf_gate: malformed JSON in {path}: {e}")
    results = doc.get("results")
    if not isinstance(results, dict):
        raise SystemExit(f"perf_gate: {path} has no 'results' object")
    return results


def check_metric(metric, direction, band, base, cur):
    """Returns (ok, allowed_description)."""
    if direction == "exact":
        return cur == base, f"== {base:g}"
    if direction == "floor":
        return cur >= band, f">= {band:g} (absolute floor)"
    if direction == "higher":
        allowed = base * (1.0 - band)
        return cur >= allowed, f">= {allowed:g} (baseline {base:g} - {band:.0%})"
    if direction == "lower":
        allowed = base * (1.0 + band)
        return cur <= allowed, f"<= {allowed:g} (baseline {base:g} + {band:.0%})"
    raise SystemExit(f"perf_gate: unknown direction {direction!r} for {metric}")


def gate_bench(name, baseline_dir, current_dir):
    """Returns a list of failure strings (empty = pass)."""
    spec = GATES[name]
    base = load_results(os.path.join(baseline_dir, f"BENCH_{name}.json"))
    cur = load_results(os.path.join(current_dir, f"BENCH_{name}.json"))

    failures = []
    for metric, (direction, band) in sorted(spec.items()):
        if metric not in cur:
            failures.append(f"{name}/{metric}: missing from current run")
            continue
        if direction != "floor" and metric not in base:
            failures.append(f"{name}/{metric}: missing from baseline")
            continue
        base_v = float(base.get(metric, 0.0))
        cur_v = float(cur[metric])
        ok, allowed = check_metric(metric, direction, band, base_v, cur_v)
        verdict = "ok" if ok else "REGRESSION"
        print(f"  {name}/{metric}: {cur_v:g} (allowed {allowed}) {verdict}")
        if not ok:
            failures.append(
                f"{name}/{metric}: {cur_v:g} outside allowed {allowed}")
    return failures


def self_test():
    """Exercises every direction and both failure modes on synthetic data."""
    cases_ran = 0

    def write(dirpath, name, results):
        with open(os.path.join(dirpath, f"BENCH_{name}.json"), "w") as f:
            json.dump({"name": name, "results": results}, f)

    def expect(ok_expected, base_results, cur_results, what):
        nonlocal cases_ran
        with tempfile.TemporaryDirectory() as tmp:
            base_dir = os.path.join(tmp, "base")
            cur_dir = os.path.join(tmp, "cur")
            os.mkdir(base_dir)
            os.mkdir(cur_dir)
            write(base_dir, "serve_http", base_results)
            write(cur_dir, "serve_http", cur_results)
            failures = gate_bench("serve_http", base_dir, cur_dir)
        ok = not failures
        if ok != ok_expected:
            raise SystemExit(
                f"perf_gate self-test FAILED: {what}: "
                f"expected {'pass' if ok_expected else 'fail'}, "
                f"got {failures or 'pass'}")
        cases_ran += 1

    healthy = {
        "qps200_goodput": 199.0,
        "qps400_goodput": 398.0,
        "saturation_goodput_qps": 3000.0,
        "overload_shed429": 80.0,
        "overload_ok": 4000.0,
    }
    expect(True, healthy, dict(healthy), "identical run passes")
    expect(True, healthy, {**healthy, "saturation_goodput_qps": 1300.0},
           "39% drop inside the 60% band passes")
    expect(False, healthy, {**healthy, "saturation_goodput_qps": 900.0},
           "70% throughput collapse fails")
    expect(False, healthy, {**healthy, "qps200_goodput": 100.0},
           "low-rate goodput under the absolute floor fails")
    expect(False, healthy, {**healthy, "overload_shed429": 0.0},
           "overload without shedding fails")
    missing = dict(healthy)
    del missing["overload_ok"]
    expect(False, healthy, missing, "metric missing from current run fails")

    # The exact direction (via parallel_scaling's bitwise_identical).
    with tempfile.TemporaryDirectory() as tmp:
        base_dir = os.path.join(tmp, "base")
        cur_dir = os.path.join(tmp, "cur")
        os.mkdir(base_dir)
        os.mkdir(cur_dir)
        scaling = {"bitwise_identical": 1.0, "speedup_w8": 2.8}
        write(base_dir, "parallel_scaling", scaling)
        write(cur_dir, "parallel_scaling",
              {"bitwise_identical": 0.0, "speedup_w8": 2.8})
        if not gate_bench("parallel_scaling", base_dir, cur_dir):
            raise SystemExit(
                "perf_gate self-test FAILED: determinism break must fail")
        cases_ran += 1

    # The sweep gate: a single property violation or a shrunken grid
    # must fail even though every metric is "small".
    with tempfile.TemporaryDirectory() as tmp:
        base_dir = os.path.join(tmp, "base")
        cur_dir = os.path.join(tmp, "cur")
        os.mkdir(base_dir)
        os.mkdir(cur_dir)
        clean = {"cells": 24.0, "checks": 108.0, "cell_errors": 0.0,
                 "property_violations": 0.0, "pass_rate": 1.0}
        write(base_dir, "sweep", clean)
        write(cur_dir, "sweep",
              {**clean, "property_violations": 1.0, "pass_rate": 0.990741})
        if not gate_bench("sweep", base_dir, cur_dir):
            raise SystemExit(
                "perf_gate self-test FAILED: property violation must fail")
        write(cur_dir, "sweep", {**clean, "cells": 12.0, "checks": 54.0})
        if not gate_bench("sweep", base_dir, cur_dir):
            raise SystemExit(
                "perf_gate self-test FAILED: shrunken grid must fail")
        write(cur_dir, "sweep", dict(clean))
        if gate_bench("sweep", base_dir, cur_dir):
            raise SystemExit(
                "perf_gate self-test FAILED: clean sweep must pass")
        cases_ran += 3

    print(f"perf_gate self-test: {cases_ran} cases passed")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baselines", help="directory of committed baselines")
    parser.add_argument("--current", help="directory of freshly-run benches")
    parser.add_argument("--bench", action="append", choices=sorted(GATES),
                        help="gate only these benches (default: all)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in unit checks and exit")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if not args.baselines or not args.current:
        parser.error("--baselines and --current are required (or --self-test)")

    failures = []
    for name in args.bench or sorted(GATES):
        print(f"gating {name}:")
        failures.extend(gate_bench(name, args.baselines, args.current))

    if failures:
        print(f"\nperf_gate: {len(failures)} regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nperf_gate: all metrics within bands")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
