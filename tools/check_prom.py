#!/usr/bin/env python3
"""Validates a Prometheus text-exposition (0.0.4) document.

Used by the CI trace-smoke job to gate what GET /metricsz serves, and
registered as a ctest (`check_prom_selftest`) so the checker itself
cannot rot. Checks, per the exposition format spec plus the invariants
fab::obs::ExportPrometheus promises:

  * every non-comment line parses as `name{labels} value`
  * metric names match [a-zA-Z_:][a-zA-Z0-9_:]*
  * every sample's family has a preceding `# TYPE` line, and the
    sample's suffix agrees with the declared type (histogram samples
    come only as _bucket/_sum/_count)
  * values parse as floats (NaN/+Inf/-Inf spellings included)
  * counter values are finite and non-negative
  * per histogram: `le` bucket values are cumulative non-decreasing,
    a `+Inf` bucket is present, and `_count` equals the `+Inf` bucket
    (the exporter guarantees internal consistency by construction)

Usage: check_prom.py <file>        validate a scraped document
       check_prom.py --self-test   run the embedded good/bad fixtures
       check_prom.py --require N   additionally require family N exists
"""

import argparse
import math
import re
import sys

_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
# name{labels} value  — labels optional; values include NaN/+Inf/-Inf.
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)$"
)
_LABEL = re.compile(r'^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$')


def _parse_value(text):
    if text in ("NaN", "nan"):
        return math.nan
    if text in ("+Inf", "Inf", "inf"):
        return math.inf
    if text == "-Inf":
        return -math.inf
    return float(text)


def _family_of(name, types):
    """The TYPE family a sample name belongs to (histograms expose
    _bucket/_sum/_count under the family's bare name)."""
    if name in types:
        return name
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix) and name[: -len(suffix)] in types:
            return name[: -len(suffix)]
    return None


def check(text):
    """Returns a list of error strings; empty means valid."""
    errors = []
    types = {}  # family -> counter|gauge|histogram
    samples = []  # (name, labels dict, value, line_no)
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                errors.append(f"line {line_no}: malformed TYPE line")
                continue
            _, _, family, kind = parts
            if not _NAME.match(family):
                errors.append(f"line {line_no}: bad family name {family!r}")
            if kind not in ("counter", "gauge", "histogram", "summary",
                            "untyped"):
                errors.append(f"line {line_no}: unknown type {kind!r}")
            if family in types:
                errors.append(f"line {line_no}: duplicate TYPE for {family}")
            types[family] = kind
            continue
        if line.startswith("#"):
            continue  # HELP or free comment
        match = _SAMPLE.match(line)
        if not match:
            errors.append(f"line {line_no}: unparseable sample {line!r}")
            continue
        name = match.group("name")
        labels = {}
        label_text = match.group("labels")
        if label_text:
            for part in label_text.split(","):
                pair = _LABEL.match(part.strip())
                if not pair:
                    errors.append(
                        f"line {line_no}: malformed label {part!r}")
                    continue
                labels[pair.group(1)] = pair.group(2)
        try:
            value = _parse_value(match.group("value"))
        except ValueError:
            errors.append(
                f"line {line_no}: bad value {match.group('value')!r}")
            continue
        family = _family_of(name, types)
        if family is None:
            errors.append(f"line {line_no}: sample {name} has no TYPE line")
            continue
        kind = types[family]
        if kind == "histogram" and name == family:
            errors.append(
                f"line {line_no}: histogram {family} exposes a bare sample "
                "(expected _bucket/_sum/_count)")
        if kind == "counter" and not (value >= 0 and math.isfinite(value)):
            errors.append(
                f"line {line_no}: counter {name} = {value} "
                "(must be finite and non-negative)")
        samples.append((name, labels, value, line_no))

    for family, kind in types.items():
        if kind != "histogram":
            continue
        buckets = [
            (labels.get("le"), value, line_no)
            for name, labels, value, line_no in samples
            if name == family + "_bucket"
        ]
        counts = [v for name, _, v, _ in samples if name == family + "_count"]
        if not buckets:
            errors.append(f"histogram {family}: no _bucket samples")
            continue
        if not any(le == "+Inf" for le, _, _ in buckets):
            errors.append(f"histogram {family}: missing le=\"+Inf\" bucket")
        prev = -math.inf
        inf_value = None
        for le, value, line_no in buckets:
            if le is None:
                errors.append(
                    f"line {line_no}: {family}_bucket without an le label")
                continue
            if value < prev:
                errors.append(
                    f"line {line_no}: {family}_bucket le={le} not "
                    f"cumulative ({value} < {prev})")
            prev = value
            if le == "+Inf":
                inf_value = value
        if not counts:
            errors.append(f"histogram {family}: missing _count sample")
        elif inf_value is not None and counts[0] != inf_value:
            errors.append(
                f"histogram {family}: _count {counts[0]} != +Inf bucket "
                f"{inf_value}")
    return errors


_GOOD = """\
# TYPE fab_net_http_requests_total counter
fab_net_http_requests_total 42
# TYPE fab_serve_queue_depth gauge
fab_serve_queue_depth -3
# TYPE fab_serve_latency_us histogram
fab_serve_latency_us_bucket{le="0.001"} 1
fab_serve_latency_us_bucket{le="1024"} 7
fab_serve_latency_us_bucket{le="+Inf"} 9
fab_serve_latency_us_sum 1234.5
fab_serve_latency_us_count 9
"""

_BAD = [
    # No TYPE line for the sample.
    "fab_orphan_total 1\n",
    # Negative counter.
    "# TYPE fab_c_total counter\nfab_c_total -1\n",
    # Buckets not cumulative.
    "# TYPE fab_h histogram\n"
    'fab_h_bucket{le="1"} 5\nfab_h_bucket{le="2"} 3\n'
    'fab_h_bucket{le="+Inf"} 5\nfab_h_sum 1\nfab_h_count 5\n',
    # Missing +Inf bucket.
    "# TYPE fab_h histogram\n"
    'fab_h_bucket{le="1"} 5\nfab_h_sum 1\nfab_h_count 5\n',
    # _count disagrees with +Inf.
    "# TYPE fab_h histogram\n"
    'fab_h_bucket{le="+Inf"} 5\nfab_h_sum 1\nfab_h_count 6\n',
    # Unparseable sample line.
    "# TYPE fab_g gauge\nfab_g one\n",
]


def self_test():
    good_errors = check(_GOOD)
    if good_errors:
        print("self-test: good document rejected:", file=sys.stderr)
        for error in good_errors:
            print("  " + error, file=sys.stderr)
        return 1
    for i, bad in enumerate(_BAD):
        if not check(bad):
            print(f"self-test: bad document #{i} accepted", file=sys.stderr)
            return 1
    print("check_prom self-test: ok")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("path", nargs="?", help="exposition file to validate")
    parser.add_argument("--self-test", action="store_true")
    parser.add_argument(
        "--require", action="append", default=[],
        help="fail unless this metric family is present (repeatable)")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    if not args.path:
        parser.error("need a file to validate (or --self-test)")
    with open(args.path, encoding="utf-8") as fh:
        text = fh.read()
    errors = check(text)
    families = {
        line.split()[2]
        for line in text.splitlines()
        if line.startswith("# TYPE ") and len(line.split()) == 4
    }
    for name in args.require:
        if name not in families:
            errors.append(f"required metric family {name!r} not exposed")
    if errors:
        for error in errors:
            print(error, file=sys.stderr)
        print(f"check_prom: {len(errors)} error(s) in {args.path}",
              file=sys.stderr)
        return 1
    print(f"check_prom: {args.path} ok ({len(families)} families)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
