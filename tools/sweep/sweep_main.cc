// fab_sweep — property-based seed×regime robustness sweep.
//
// Fans Experiments::PrecomputeAll across a seeds × stress-regimes grid
// (src/core/sweep.h) and writes BENCH_sweep.json. Exit codes: 0 = every
// property passed on every cell, 1 = violations or cell errors (each is
// reported with its exact repro seed), 2 = bad flags.
//
// Default grid: 25 seeds × all 8 standard regimes = 200 cells. CI runs
// the reduced grid documented in .github/workflows/ci.yml (sweep-smoke).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/sweep.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace {

using fab::core::RegimeByName;
using fab::core::RegimeSpec;
using fab::core::RunSweep;
using fab::core::StandardRegimes;
using fab::core::StudyPeriod;
using fab::core::SweepOptions;
using fab::core::SweepReport;

void PrintUsage() {
  std::printf(
      "usage: fab_sweep [options]\n"
      "  --seeds N              number of seeds (default 25)\n"
      "  --seed0 S              first seed (default 1000)\n"
      "  --regimes a,b,c        regime names (default: all standard)\n"
      "  --periods 2017,2019    study periods (default 2019)\n"
      "  --windows 1,30         prediction windows (default 1,30)\n"
      "  --improvement-seeds N  seeds per regime that run the improvement\n"
      "                         CV property (default 2)\n"
      "  --cache DIR            artifact cache root (default .fab_cache/sweep)\n"
      "  --out DIR              BENCH_sweep.json directory (default\n"
      "                         $FAB_BENCH_DIR or .)\n"
      "  --threads N            shared pool width (default hardware)\n"
      "  --list-regimes         print regime names and exit\n");
}

bool ParseU64(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t num_seeds = 25;
  uint64_t seed0 = 1000;
  int threads = 0;
  std::string regimes_csv;
  std::string periods_csv = "2019";
  std::string windows_csv = "1,30";
  std::string out_dir;
  SweepOptions options;

  const char* bench_dir = std::getenv("FAB_BENCH_DIR");
  out_dir = (bench_dir != nullptr && *bench_dir != '\0') ? bench_dir : ".";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    }
    if (arg == "--list-regimes") {
      for (const RegimeSpec& spec : StandardRegimes()) {
        std::printf("%s\n", spec.name.c_str());
      }
      return 0;
    }
    const char* value = nullptr;
    if (arg == "--seeds" && (value = next()) != nullptr) {
      if (!ParseU64(value, &num_seeds) || num_seeds == 0) {
        std::fprintf(stderr, "fab_sweep: bad --seeds %s\n", value);
        return 2;
      }
    } else if (arg == "--seed0" && (value = next()) != nullptr) {
      if (!ParseU64(value, &seed0)) {
        std::fprintf(stderr, "fab_sweep: bad --seed0 %s\n", value);
        return 2;
      }
    } else if (arg == "--regimes" && (value = next()) != nullptr) {
      regimes_csv = value;
    } else if (arg == "--periods" && (value = next()) != nullptr) {
      periods_csv = value;
    } else if (arg == "--windows" && (value = next()) != nullptr) {
      windows_csv = value;
    } else if (arg == "--improvement-seeds" && (value = next()) != nullptr) {
      uint64_t v = 0;
      if (!ParseU64(value, &v)) {
        std::fprintf(stderr, "fab_sweep: bad --improvement-seeds %s\n", value);
        return 2;
      }
      options.improvement_seeds = static_cast<int>(v);
    } else if (arg == "--cache" && (value = next()) != nullptr) {
      options.cache_dir = value;
    } else if (arg == "--out" && (value = next()) != nullptr) {
      out_dir = value;
    } else if (arg == "--threads" && (value = next()) != nullptr) {
      uint64_t v = 0;
      if (!ParseU64(value, &v)) {
        std::fprintf(stderr, "fab_sweep: bad --threads %s\n", value);
        return 2;
      }
      threads = static_cast<int>(v);
    } else {
      std::fprintf(stderr, "fab_sweep: unknown or incomplete flag: %s\n",
                   arg.c_str());
      PrintUsage();
      return 2;
    }
  }

  for (uint64_t i = 0; i < num_seeds; ++i) options.seeds.push_back(seed0 + i);

  if (regimes_csv.empty()) {
    options.regimes = StandardRegimes();
  } else {
    for (const std::string& name : fab::Split(regimes_csv, ',')) {
      auto spec = RegimeByName(name);
      if (!spec.ok()) {
        std::fprintf(stderr, "fab_sweep: %s\n",
                     spec.status().ToString().c_str());
        return 2;
      }
      options.regimes.push_back(*spec);
    }
  }

  options.periods.clear();
  for (const std::string& p : fab::Split(periods_csv, ',')) {
    if (p == "2017") {
      options.periods.push_back(StudyPeriod::k2017);
    } else if (p == "2019") {
      options.periods.push_back(StudyPeriod::k2019);
    } else {
      std::fprintf(stderr, "fab_sweep: unknown period %s (use 2017/2019)\n",
                   p.c_str());
      return 2;
    }
  }

  options.windows.clear();
  for (const std::string& w : fab::Split(windows_csv, ',')) {
    uint64_t v = 0;
    if (!ParseU64(w, &v) || v == 0) {
      std::fprintf(stderr, "fab_sweep: bad window %s\n", w.c_str());
      return 2;
    }
    options.windows.push_back(static_cast<int>(v));
  }

  fab::util::SetSharedPoolThreads(threads);

  std::printf("fab_sweep: %zu seeds x %zu regimes = %zu cells (%zu scenarios "
              "each)\n",
              options.seeds.size(), options.regimes.size(),
              options.seeds.size() * options.regimes.size(),
              options.periods.size() * options.windows.size());

  auto report = RunSweep(options);
  if (!report.ok()) {
    std::fprintf(stderr, "fab_sweep: %s\n",
                 report.status().ToString().c_str());
    return 2;
  }

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  const std::string path = out_dir + "/BENCH_sweep.json";
  {
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "fab_sweep: cannot write %s\n", path.c_str());
      return 2;
    }
    out << report->ToJson();
  }

  std::printf("fab_sweep: %zu cells, %zu cell errors, %zu checks, %zu "
              "violations (pass rate %.4f) -> %s\n",
              report->cells, report->cell_errors, report->checks,
              report->violation_count, report->pass_rate(), path.c_str());
  for (const auto& p : report->properties) {
    std::printf("  %-28s %zu/%zu\n", p.property.c_str(), p.passed, p.checked);
  }
  for (const auto& v : report->violations) {
    std::printf("  VIOLATION %s regime=%s seed=%llu scenario=%s: %s\n",
                v.property.c_str(), v.regime.c_str(),
                static_cast<unsigned long long>(v.seed), v.scenario.c_str(),
                v.detail.c_str());
  }
  if (!report->first_error.empty()) {
    std::printf("  first cell error: %s\n", report->first_error.c_str());
  }

  return (report->violation_count == 0 && report->cell_errors == 0) ? 0 : 1;
}
