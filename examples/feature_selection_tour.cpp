// Feature-selection tour: runs the paper's full selection stack — Pearson
// correlation, RF/XGB mean-decrease-impurity, permutation importance,
// TreeSHAP, and finally the Feature Reduction Algorithm — on one scenario
// and shows how each method ranks the candidate categories.
//
//   ./feature_selection_tour

#include <cstdio>
#include <map>

#include "core/experiments.h"
#include "core/report.h"
#include "explain/correlation.h"
#include "explain/permutation.h"
#include "explain/ranking.h"
#include "util/string_util.h"

namespace {

using namespace fab;

/// Mean score per category, for a quick per-method comparison.
std::map<int, double> MeanByCategory(const core::ScenarioDataset& scenario,
                                     const std::vector<double>& scores) {
  std::map<int, std::pair<double, int>> acc;
  for (size_t j = 0; j < scores.size(); ++j) {
    auto& slot = acc[static_cast<int>(scenario.categories[j])];
    slot.first += scores[j];
    slot.second += 1;
  }
  std::map<int, double> out;
  for (const auto& [cat, sum_count] : acc) {
    out[cat] = sum_count.first / sum_count.second;
  }
  return out;
}

}  // namespace

int main() {
  core::ExperimentConfig config = core::ExperimentConfig::FromEnv();
  config.fast = true;  // keep the tour snappy
  core::Experiments ex(config);

  auto scenario_or = ex.Scenario(core::StudyPeriod::k2019, 30);
  if (!scenario_or.ok()) {
    std::fprintf(stderr, "scenario failed: %s\n",
                 scenario_or.status().ToString().c_str());
    return 1;
  }
  const core::ScenarioDataset& scenario = **scenario_or;
  std::printf("Scenario 2019_30: %zu rows, %zu candidates\n\n",
              scenario.data.num_rows(), scenario.data.num_features());

  // Method 1: |Pearson| correlation with the target.
  const std::vector<double> corr =
      explain::AbsFeatureTargetCorrelations(scenario.data);
  std::printf("Top 5 by |Pearson| correlation:\n");
  for (const auto& name :
       explain::TopKNames(corr, scenario.data.feature_names, 5)) {
    std::printf("  %s\n", name.c_str());
  }

  // Method 2+3: model-based MDI and permutation importance.
  ml::RandomForestRegressor rf(config.fra.rf);
  if (Status s = rf.Fit(scenario.data.x, scenario.data.y); !s.ok()) {
    std::fprintf(stderr, "fit failed: %s\n", s.ToString().c_str());
    return 1;
  }
  const std::vector<double> mdi = rf.FeatureImportances();
  std::printf("\nTop 5 by RF mean decrease impurity:\n");
  for (const auto& name :
       explain::TopKNames(mdi, scenario.data.feature_names, 5)) {
    std::printf("  %s\n", name.c_str());
  }

  explain::PermutationOptions pfi_options;
  pfi_options.n_repeats = 1;
  auto pfi = explain::PermutationImportance(rf, scenario.data, pfi_options);
  std::printf("\nTop 5 by permutation importance:\n");
  for (const auto& name :
       explain::TopKNames(*pfi, scenario.data.feature_names, 5)) {
    std::printf("  %s\n", name.c_str());
  }

  // The full FRA + SHAP pipeline via the orchestrator (cached).
  auto fvec = ex.FinalVector(core::StudyPeriod::k2019, 30);
  if (!fvec.ok()) {
    std::fprintf(stderr, "final vector failed: %s\n",
                 fvec.status().ToString().c_str());
    return 1;
  }
  std::printf("\nFinal feature vector: %zu features "
              "(FRA ∩ SHAP-top-100 overlap: %zu)\n",
              fvec->features.size(), fvec->overlap_fra_shap_top100);

  auto contributions = ex.Contributions(core::StudyPeriod::k2019, 30);
  core::AsciiTable table({"category", "candidates", "selected", "factor"});
  for (const auto& c : *contributions) {
    table.AddRow({sim::CategoryName(c.category), std::to_string(c.candidates),
                  std::to_string(c.selected),
                  FormatDouble(c.contribution_factor, 3)});
  }
  std::printf("%s", table.Render().c_str());
  return 0;
}
