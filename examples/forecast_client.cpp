// Forecast client: a command-line front door for a running fab::net
// forecast server (see forecast_server --serve).
//
//   ./forecast_client [--trace] <port> healthz
//   ./forecast_client [--trace] <port> statusz
//   ./forecast_client [--trace] <port> predict <period> <window> <model> [rows=4]
//
// Talks HTTP/1.1 over a keep-alive net::HttpClient — the sanctioned
// client-side socket door (fablint's net-raw-syscall rule keeps raw
// sockets confined to src/net/). Random feature rows are generated
// locally; a real deployment would feed the live feature pipeline here.
//
// --trace mints a trace id, installs it for the request (HttpClient
// attaches it as x-fab-trace, the server adopts it), and prints it —
// paste it into GET /tracez?trace=<id> on the server to pull up the
// request's span tree across the IO thread, handler pool, and shard
// batch threads.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>

#include "net/http_client.h"
#include "net/json.h"
#include "util/obs/trace_context.h"
#include "util/random.h"

namespace {

constexpr size_t kFeatures = 12;

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--trace] <port> healthz\n"
               "       %s [--trace] <port> statusz\n"
               "       %s [--trace] <port> predict <period> <window> <model> "
               "[rows]\n",
               argv0, argv0, argv0);
  return 2;
}

std::string PredictBody(const std::string& period, int window,
                        const std::string& model, size_t rows) {
  fab::Rng rng(42);
  std::ostringstream body;
  body << "{\"period\":" << fab::net::EscapeJson(period)
       << ",\"window\":" << window
       << ",\"model\":" << fab::net::EscapeJson(model) << ",\"rows\":[";
  for (size_t r = 0; r < rows; ++r) {
    body << (r == 0 ? "[" : ",[");
    for (size_t j = 0; j < kFeatures; ++j) {
      body << (j == 0 ? "" : ",") << rng.Normal();
    }
    body << "]";
  }
  body << "]}";
  return body.str();
}

}  // namespace

int main(int argc, char** argv) {
  bool trace = false;
  int arg = 1;
  if (arg < argc && std::strcmp(argv[arg], "--trace") == 0) {
    trace = true;
    ++arg;
  }
  if (argc - arg < 2) return Usage(argv[0]);
  const int port = std::atoi(argv[arg]);
  if (port <= 0 || port > 65535) return Usage(argv[0]);
  const std::string command = argv[arg + 1];
  argv += arg - 1;  // commands index argv[3..] as before the flag
  argc -= arg - 1;

  // Install the trace context before the round trip: HttpClient sees it
  // and tags the request, the server adopts the id end to end.
  const uint64_t trace_id = trace ? fab::obs::MintTraceId() : 0;
  const fab::obs::ScopedTraceId trace_scope(trace_id);
  if (trace) {
    std::printf("trace id: %s\n", fab::obs::FormatTraceId(trace_id).c_str());
  }

  fab::net::HttpClient client("127.0.0.1", static_cast<uint16_t>(port));

  fab::Result<fab::net::HttpResponse> response =
      fab::Status::InvalidArgument("unknown command");
  if (command == "healthz") {
    response = client.Get("/healthz");
  } else if (command == "statusz") {
    response = client.Get("/statusz");
  } else if (command == "predict") {
    if (argc < 6) return Usage(argv[0]);
    const std::string period = argv[3];
    const int window = std::atoi(argv[4]);
    const std::string model = argv[5];
    const size_t rows = argc > 6 ? static_cast<size_t>(std::atoi(argv[6])) : 4;
    response = client.Post("/predict", PredictBody(period, window, model, rows));
  } else {
    return Usage(argv[0]);
  }

  if (!response.ok()) {
    std::fprintf(stderr, "request failed: %s\n",
                 response.status().ToString().c_str());
    return 1;
  }

  std::printf("HTTP %d\n", response->status_code);
  if (command == "predict" && response->status_code == 200) {
    auto doc = fab::net::ParseJson(response->body);
    if (doc.ok()) {
      const fab::net::JsonValue* forecasts = doc->Find("forecasts");
      const fab::net::JsonValue* shard = doc->Find("shard");
      if (forecasts != nullptr && forecasts->is_array()) {
        std::printf("shard %d, %zu forecasts:\n",
                    shard != nullptr ? static_cast<int>(shard->number()) : -1,
                    forecasts->array().size());
        for (const auto& f : forecasts->array()) {
          std::printf("  %.6f\n", f.number());
        }
        return 0;
      }
    }
  }
  std::printf("%s\n", response->body.c_str());
  // 429 sheds carry Retry-After so callers can back off politely.
  const std::string* retry_after = response->Header("Retry-After");
  if (retry_after != nullptr) {
    std::printf("Retry-After: %s\n", retry_after->c_str());
  }
  return response->status_code < 400 ? 0 : 1;
}
