// On-chain data diversification (the paper's future-work item): does
// adding an ETH-like on-chain family — a representative of the smart-
// contract/DeFi segment — improve Crypto100 forecasts beyond BTC+USDC
// on-chain data?
//
//   ./eth_diversification

#include <cstdio>

#include "core/dataset_builder.h"
#include "core/report.h"
#include "ml/forest.h"
#include "ml/model_selection.h"
#include "sim/market_sim.h"
#include "util/string_util.h"

namespace {

using namespace fab;

double CvMse(const ml::Dataset& data) {
  ml::ForestParams params;
  params.n_trees = 30;
  params.max_depth = 8;
  params.max_features = 0.33;
  ml::RandomForestRegressor rf(params);
  const auto folds = ml::KFold(data.num_rows(), 5, /*shuffle=*/true, 2718);
  return *ml::CrossValMse(rf, data, *folds);
}

}  // namespace

int main() {
  // Two worlds from the same seed: with and without the ETH family.
  sim::MarketSimConfig config;
  config.seed = 42;
  config.include_eth = true;
  auto market = sim::SimulateMarket(config);
  if (!market.ok() || !core::AddTechnicalIndicators(&market.value()).ok()) {
    std::fprintf(stderr, "market setup failed\n");
    return 1;
  }
  std::printf("ETH on-chain candidates: %zu\n",
              market->catalog.CountInCategory(sim::DataCategory::kOnChainEth));

  core::AsciiTable table(
      {"window", "without ETH (MSE)", "with ETH (MSE)", "change"});
  for (int window : {7, 30, 90}) {
    core::ScenarioOptions options;
    auto scenario = core::BuildScenarioDataset(
        *market, core::StudyPeriod::k2019, window, options);
    if (!scenario.ok()) {
      std::fprintf(stderr, "scenario failed: %s\n",
                   scenario.status().ToString().c_str());
      return 1;
    }
    // "Without ETH": every candidate except the ETH family.
    std::vector<int> base_positions;
    for (size_t j = 0; j < scenario->categories.size(); ++j) {
      if (scenario->categories[j] != sim::DataCategory::kOnChainEth) {
        base_positions.push_back(static_cast<int>(j));
      }
    }
    const ml::Dataset without_eth =
        *scenario->data.SelectFeatures(base_positions);
    const double mse_without = CvMse(without_eth);
    const double mse_with = CvMse(scenario->data);
    const double change = 100.0 * (mse_without - mse_with) / mse_with;
    table.AddRow({std::to_string(window), FormatDouble(mse_without, 0),
                  FormatDouble(mse_with, 0),
                  (change >= 0 ? "+" : "") + FormatDouble(change, 1) + "%"});
  }
  std::printf("%s", table.Render().c_str());
  std::printf(
      "\nPositive change = the ETH family carries information the BTC+USDC "
      "families miss (the paper's Section-5 proposal to diversify on-chain "
      "sources by market segment). A negative short-horizon change is the "
      "paper's own caveat in action: naively appending correlated features "
      "without re-running feature selection can add noise — run FRA over "
      "the extended candidate set to harvest the gain.\n");
  return 0;
}
