// Index explorer: builds the Crypto100 index from the simulated asset
// panel, sweeps the scaling-factor power, and writes the daily index and
// BTC price to crypto100.csv for external plotting.
//
//   ./index_explorer [output.csv]

#include <cstdio>
#include <string>

#include "core/crypto100.h"
#include "core/report.h"
#include "sim/market_sim.h"
#include "table/csv.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace fab;
  const std::string out_path = argc > 1 ? argv[1] : "crypto100.csv";

  sim::MarketSimConfig config;
  config.seed = 42;
  auto market = sim::SimulateMarket(config);
  if (!market.ok()) {
    std::fprintf(stderr, "simulation failed: %s\n",
                 market.status().ToString().c_str());
    return 1;
  }

  const size_t first =
      static_cast<size_t>(market->latent.FindDay(Date(2017, 1, 1)));
  std::vector<Date> dates;
  std::vector<double> sums, btc;
  std::vector<std::string> labels;
  for (size_t t = first; t < market->latent.num_days(); ++t) {
    dates.push_back(market->latent.dates[t]);
    labels.push_back(market->latent.dates[t].ToString());
    sums.push_back(market->top100_mcap_sum[t]);
    btc.push_back(market->latent.btc_close[t]);
  }

  // Power sweep: how comparable is the index to BTC's price scale?
  core::AsciiTable table({"power", "log10 distance to BTC"});
  for (double power = 5.0; power <= 9.0; power += 1.0) {
    auto index = core::Crypto100Series(sums, power);
    auto dist = core::LogScaleDistance(*index, btc);
    table.AddRow({FormatDouble(power, 0), FormatDouble(*dist, 3)});
  }
  std::printf("%s\n", table.Render().c_str());

  auto index = core::Crypto100Series(sums);  // tuned power 7
  std::printf("%s\n",
              core::AsciiSeries("Crypto100 (power 7)", labels, *index).c_str());

  // Export for plotting.
  auto out_table = table::Table::Create(dates);
  (void)out_table->AddColumn("crypto100", *index);
  (void)out_table->AddColumn("btc_close", btc);
  if (Status s = table::WriteCsv(*out_table, out_path); !s.ok()) {
    std::fprintf(stderr, "csv write failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu rows to %s\n", out_table->num_rows(),
              out_path.c_str());
  return 0;
}
