// Quickstart: simulate a crypto market, build the Crypto100 index, train a
// random forest on the diverse feature set and predict the index price 7
// days ahead.
//
//   ./quickstart

#include <cstdio>

#include "core/crypto100.h"
#include "core/dataset_builder.h"
#include "ml/forest.h"
#include "ml/metrics.h"
#include "ml/model_selection.h"
#include "sim/market_sim.h"

int main() {
  using namespace fab;

  // 1. Simulate the market (deterministic in the seed) and derive the
  //    technical-indicator family from BTC's OHLCV candles.
  sim::MarketSimConfig sim_config;
  sim_config.seed = 7;
  auto market = sim::SimulateMarket(sim_config);
  if (!market.ok()) {
    std::fprintf(stderr, "simulation failed: %s\n",
                 market.status().ToString().c_str());
    return 1;
  }
  if (Status s = core::AddTechnicalIndicators(&market.value()); !s.ok()) {
    std::fprintf(stderr, "indicators failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("simulated %zu days, %zu metrics across %zu categories\n",
              market->latent.num_days(), market->metrics.num_columns(),
              sim::AllCategories().size());

  // 2. The Crypto100 index: top-100 market-cap sum compressed onto BTC's
  //    price scale.
  auto index = core::Crypto100Series(market->top100_mcap_sum);
  std::printf("Crypto100 on %s: %.0f (BTC close: %.0f)\n",
              market->latent.dates.back().ToString().c_str(),
              index->back(), market->latent.btc_close.back());

  // 3. Build the supervised scenario: set 2019, 7-day-ahead target.
  core::ScenarioOptions options;
  auto scenario = core::BuildScenarioDataset(*market, core::StudyPeriod::k2019,
                                             /*window=*/7, options);
  if (!scenario.ok()) {
    std::fprintf(stderr, "scenario failed: %s\n",
                 scenario.status().ToString().c_str());
    return 1;
  }
  std::printf("scenario 2019_7: %zu rows x %zu candidate features\n",
              scenario->data.num_rows(), scenario->data.num_features());

  // 4. Train a random forest on a shuffled 80/20 split and evaluate.
  auto folds = ml::KFold(scenario->data.num_rows(), 5, /*shuffle=*/true, 99);
  const ml::Fold& fold = folds->front();
  const ml::Dataset train = scenario->data.TakeRows(fold.train);
  const ml::Dataset test = scenario->data.TakeRows(fold.validation);

  ml::ForestParams params;
  params.n_trees = 60;
  params.max_depth = 10;
  params.max_features = 0.33;
  ml::RandomForestRegressor rf(params);
  if (Status s = rf.Fit(train.x, train.y); !s.ok()) {
    std::fprintf(stderr, "fit failed: %s\n", s.ToString().c_str());
    return 1;
  }
  const std::vector<double> pred = rf.Predict(test.x);
  std::printf("7-day-ahead forecast:  RMSE = %.1f   R^2 = %.3f   MAPE = %.1f%%\n",
              ml::RootMeanSquaredError(test.y, pred),
              ml::R2Score(test.y, pred),
              ml::MeanAbsolutePercentageError(test.y, pred));

  // 5. The three most important features by MDI.
  std::vector<double> importance = rf.FeatureImportances();
  std::printf("top features:");
  for (int k = 0; k < 3; ++k) {
    size_t best = 0;
    for (size_t j = 0; j < importance.size(); ++j) {
      if (importance[j] > importance[best]) best = j;
    }
    std::printf(" %s (%.3f)", scenario->data.feature_names[best].c_str(),
                importance[best]);
    importance[best] = -1.0;
  }
  std::printf("\n");
  return 0;
}
