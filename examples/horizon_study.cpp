// Horizon study: how forecast difficulty grows with the prediction window
// and how much a diverse feature set helps vs technical indicators alone —
// the paper's core finding, condensed into one runnable example.
//
//   ./horizon_study

#include <cmath>
#include <cstdio>

#include "core/dataset_builder.h"
#include "core/report.h"
#include "ml/forest.h"
#include "ml/metrics.h"
#include "ml/model_selection.h"
#include "sim/market_sim.h"
#include "util/string_util.h"

int main() {
  using namespace fab;

  sim::MarketSimConfig sim_config;
  sim_config.seed = 42;
  auto market = sim::SimulateMarket(sim_config);
  if (!market.ok() ||
      !core::AddTechnicalIndicators(&market.value()).ok()) {
    std::fprintf(stderr, "market setup failed\n");
    return 1;
  }

  ml::ForestParams params;
  params.n_trees = 40;
  params.max_depth = 8;
  params.max_features = 0.33;

  core::AsciiTable table({"window", "diverse RMSE", "technical-only RMSE",
                          "diversity advantage"});
  for (int window : {1, 7, 30, 90, 180}) {
    core::ScenarioOptions options;
    auto scenario = core::BuildScenarioDataset(
        *market, core::StudyPeriod::k2019, window, options);
    if (!scenario.ok()) {
      std::fprintf(stderr, "scenario failed: %s\n",
                   scenario.status().ToString().c_str());
      return 1;
    }

    auto folds = ml::KFold(scenario->data.num_rows(), 5, true, 1234);
    ml::RandomForestRegressor rf(params);
    auto diverse_mse = ml::CrossValMse(rf, scenario->data, *folds);

    // Technical indicators only.
    const std::vector<int> tech_positions =
        scenario->FeaturePositionsInCategory(sim::DataCategory::kTechnical);
    auto tech_data = scenario->data.SelectFeatures(tech_positions);
    auto tech_folds = ml::KFold(tech_data->num_rows(), 5, true, 1234);
    auto tech_mse = ml::CrossValMse(rf, *tech_data, *tech_folds);

    const double advantage = 100.0 * (*tech_mse - *diverse_mse) / *diverse_mse;
    table.AddRow({std::to_string(window),
                  FormatDouble(std::sqrt(*diverse_mse), 1),
                  FormatDouble(std::sqrt(*tech_mse), 1),
                  (advantage >= 0 ? "+" : "") + FormatDouble(advantage, 1) +
                      "%"});
  }
  std::printf("%s", table.Render().c_str());
  std::printf("\nReading: error grows with the horizon, and the advantage of "
              "diverse data grows with it — technical indicators alone "
              "cannot carry long-horizon forecasts.\n");
  return 0;
}
