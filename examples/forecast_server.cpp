// Forecast server demo: the full serving lifecycle in one binary.
//
//   1. Train the three fine-tuned model kinds (RF, GBDT, MLP) on a
//      synthetic Crypto100-style regression task.
//   2. Install them into a ModelRegistry as versioned snapshots on disk.
//   3. Stand up a BatchServer over the flattened RF and let concurrent
//      clients issue single-row forecasts that get coalesced into batches.
//   4. Retrain, republish the snapshot, and hot-reload without downtime.
//
//   ./forecast_server

#include <cstdio>
#include <filesystem>
#include <thread>
#include <vector>

#include "ml/forest.h"
#include "ml/gbdt.h"
#include "ml/mlp.h"
#include "serve/batch_server.h"
#include "serve/registry.h"
#include "serve/snapshot.h"
#include "util/random.h"

namespace {

fab::ml::ColMatrix MakeMatrix(size_t n, size_t f, uint64_t seed) {
  fab::Rng rng(seed);
  std::vector<std::vector<double>> cols(f, std::vector<double>(n));
  for (auto& c : cols) {
    for (auto& v : c) v = rng.Normal();
  }
  return *fab::ml::ColMatrix::FromColumns(std::move(cols));
}

std::vector<double> MakeTarget(const fab::ml::ColMatrix& x, uint64_t seed) {
  fab::Rng rng(seed);
  std::vector<double> y(x.rows());
  for (size_t i = 0; i < x.rows(); ++i) {
    y[i] = 2.0 * x.at(i, 0) - x.at(i, 1) + 0.5 * x.at(i, 2) * x.at(i, 3) +
           0.2 * rng.Normal();
  }
  return y;
}

void Die(const fab::Status& status, const char* what) {
  if (status.ok()) return;
  std::fprintf(stderr, "FATAL %s: %s\n", what, status.ToString().c_str());
  std::exit(1);
}

}  // namespace

int main() {
  using namespace fab;

  const size_t kFeatures = 12;
  const std::string dir =
      (std::filesystem::temp_directory_path() / "fab_forecast_server_demo")
          .string();
  std::filesystem::remove_all(dir);

  // --- 1. Train the three fine-tuned model kinds. --------------------------
  const ml::ColMatrix train = MakeMatrix(800, kFeatures, 1);
  const std::vector<double> y = MakeTarget(train, 2);

  ml::ForestParams rf_params;
  rf_params.n_trees = 60;
  rf_params.max_depth = 8;
  auto rf = std::make_unique<ml::RandomForestRegressor>(rf_params);
  Die(rf->Fit(train, y), "rf fit");

  ml::GbdtParams xgb_params;
  xgb_params.n_rounds = 80;
  auto xgb = std::make_unique<ml::GbdtRegressor>(xgb_params);
  Die(xgb->Fit(train, y), "xgb fit");

  ml::MlpParams mlp_params;
  mlp_params.hidden = {32, 16};
  mlp_params.epochs = 40;
  auto mlp = std::make_unique<ml::MlpRegressor>(mlp_params);
  Die(mlp->Fit(train, y), "mlp fit");

  // --- 2. Install snapshots into the registry. -----------------------------
  serve::ModelRegistry registry(dir);
  Die(registry.Install({"2017", 7, "rf"}, std::move(rf)), "install rf");
  Die(registry.Install({"2017", 7, "xgb"}, std::move(xgb)), "install xgb");
  Die(registry.Install({"2017", 7, "mlp"}, std::move(mlp)), "install mlp");

  std::printf("registry at %s:\n", dir.c_str());
  for (const serve::ModelKey& key : registry.ListOnDisk()) {
    auto info = serve::SnapshotCodec::Probe(registry.PathFor(key));
    std::printf("  %-14s snapshot v%u (%s)\n", key.ToString().c_str(),
                info.ok() ? info->version : 0,
                info.ok() ? serve::ModelKindName(info->kind) : "?");
  }

  // --- 3. Serve concurrent traffic over the flattened RF. ------------------
  auto servable = registry.Get({"2017", 7, "rf"});
  Die(servable.status(), "registry get");
  std::printf("\nserving %s (flattened=%s, %zu features)\n",
              (*servable)->model().name().c_str(),
              (*servable)->flattened() ? "yes" : "no",
              (*servable)->num_features());

  serve::BatchServerOptions options;
  options.num_threads = 2;
  options.max_batch = 32;
  serve::BatchServer server(*servable, options);

  const ml::ColMatrix queries = MakeMatrix(512, kFeatures, 3);
  constexpr int kClients = 4;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::vector<double> features(kFeatures);
      for (size_t r = static_cast<size_t>(c); r < queries.rows();
           r += kClients) {
        for (size_t j = 0; j < kFeatures; ++j) features[j] = queries.at(r, j);
        auto forecast = server.Forecast(features);
        if (!forecast.ok()) std::fprintf(stderr, "forecast failed\n");
      }
    });
  }
  for (auto& client : clients) client.join();

  const serve::BatchServerStats stats = server.Stats();
  std::printf("%llu forecasts in %llu batches (mean %.1f rows/batch)\n",
              static_cast<unsigned long long>(stats.requests_completed),
              static_cast<unsigned long long>(stats.batches_run),
              stats.mean_batch_size);
  std::printf("%.0f rows/s, p50 %.0f us, p99 %.0f us\n", stats.rows_per_sec,
              stats.p50_latency_us, stats.p99_latency_us);

  // --- 4. Hot-reload: retrain, republish, swap — no downtime. --------------
  const ml::ColMatrix fresh_train = MakeMatrix(800, kFeatures, 4);
  auto fresh_rf = std::make_unique<ml::RandomForestRegressor>(rf_params);
  Die(fresh_rf->Fit(fresh_train, MakeTarget(fresh_train, 5)), "retrain");
  Die(serve::SnapshotCodec::Save(*fresh_rf,
                                 registry.PathFor({"2017", 7, "rf"})),
      "republish");
  Die(registry.Reload({"2017", 7, "rf"}), "reload");
  auto swapped = registry.Get({"2017", 7, "rf"});
  Die(swapped.status(), "get after reload");
  server.UpdateModel(*swapped);

  std::vector<double> probe(kFeatures, 0.25);
  auto after = server.Forecast(probe);
  Die(after.status(), "forecast after hot-swap");
  std::printf("\nhot-swapped model serves: forecast(0.25...) = %.4f\n", *after);

  server.Shutdown();
  std::filesystem::remove_all(dir);
  std::printf("done.\n");
  return 0;
}
