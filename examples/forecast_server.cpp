// Forecast server demo: the full networked serving lifecycle in one binary.
//
//   1. Train the three fine-tuned model kinds (RF, GBDT, MLP) on a
//      synthetic Crypto100-style regression task.
//   2. Install them into a ModelRegistry as versioned snapshots on disk.
//   3. Stand up the fab::net stack — ShardedRouter (2 admission-controlled
//      BatchServer shards) + ForecastService + HttpServer on an ephemeral
//      port — and exercise /healthz, /predict and /statusz through the
//      sanctioned HttpClient.
//   4. Drive a trace-tagged request and read it back through the live
//      debug surfaces: /tracez (its span tree out of the flight
//      recorder), /rpcz (per-endpoint + per-shard stats), /metricsz
//      (Prometheus exposition).
//   5. Retrain, republish the snapshot, hot-reload: the router resolves
//      the servable per request, so the very next /predict serves the new
//      model with zero downtime and no server restart.
//
//   ./forecast_server             # demo mode: runs the tour, exits 0
//   ./forecast_server --serve [P] # stays up on port P (default ephemeral)
//
// Demo mode doubles as the ctest `forecast_server_example` smoke test: a
// real TCP socket, JSON-validated responses, non-zero exit on any miss.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "ml/forest.h"
#include "ml/gbdt.h"
#include "ml/mlp.h"
#include "net/forecast_service.h"
#include "net/http_client.h"
#include "net/http_server.h"
#include "net/json.h"
#include "net/shard_router.h"
#include "serve/registry.h"
#include "serve/snapshot.h"
#include "util/obs/trace_context.h"
#include "util/random.h"

namespace {

constexpr size_t kFeatures = 12;

fab::ml::ColMatrix MakeMatrix(size_t n, size_t f, uint64_t seed) {
  fab::Rng rng(seed);
  std::vector<std::vector<double>> cols(f, std::vector<double>(n));
  for (auto& c : cols) {
    for (auto& v : c) v = rng.Normal();
  }
  return *fab::ml::ColMatrix::FromColumns(std::move(cols));
}

std::vector<double> MakeTarget(const fab::ml::ColMatrix& x, uint64_t seed) {
  fab::Rng rng(seed);
  std::vector<double> y(x.rows());
  for (size_t i = 0; i < x.rows(); ++i) {
    y[i] = 2.0 * x.at(i, 0) - x.at(i, 1) + 0.5 * x.at(i, 2) * x.at(i, 3) +
           0.2 * rng.Normal();
  }
  return y;
}

void Die(const fab::Status& status, const char* what) {
  if (status.ok()) return;
  std::fprintf(stderr, "FATAL %s: %s\n", what, status.ToString().c_str());
  std::exit(1);
}

void DieIf(bool condition, const char* what) {
  if (!condition) return;
  std::fprintf(stderr, "FATAL %s\n", what);
  std::exit(1);
}

/// Builds the /predict request body for `key` with `rows` random rows.
std::string PredictBody(const fab::serve::ModelKey& key, size_t rows,
                        uint64_t seed) {
  fab::Rng rng(seed);
  std::ostringstream body;
  body << "{\"period\":" << fab::net::EscapeJson(key.period)
       << ",\"window\":" << key.window
       << ",\"model\":" << fab::net::EscapeJson(key.model) << ",\"rows\":[";
  for (size_t r = 0; r < rows; ++r) {
    body << (r == 0 ? "[" : ",[");
    for (size_t j = 0; j < kFeatures; ++j) {
      body << (j == 0 ? "" : ",") << rng.Normal();
    }
    body << "]";
  }
  body << "]}";
  return body.str();
}

/// POSTs one /predict for `key`, validates the JSON, returns the first
/// forecast.
double Predict(fab::net::HttpClient& client, const fab::serve::ModelKey& key,
               size_t rows, uint64_t seed) {
  auto response = client.Post("/predict", PredictBody(key, rows, seed));
  Die(response.status(), "POST /predict");
  DieIf(response->status_code != 200, "/predict did not return 200");
  auto doc = fab::net::ParseJson(response->body);
  Die(doc.status(), "parse /predict response");
  const fab::net::JsonValue* forecasts = doc->Find("forecasts");
  DieIf(forecasts == nullptr || !forecasts->is_array() ||
            forecasts->array().size() != rows,
        "/predict response missing forecasts");
  auto shard = doc->GetNumber("shard");
  Die(shard.status(), "/predict response missing shard");
  std::printf("  %-14s -> shard %d, %zu forecasts, first %.4f\n",
              key.ToString().c_str(), static_cast<int>(*shard), rows,
              forecasts->array()[0].number());
  return forecasts->array()[0].number();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fab;

  bool serve_forever = false;
  uint16_t requested_port = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--serve") == 0) {
      serve_forever = true;
    } else {
      requested_port = static_cast<uint16_t>(std::atoi(argv[i]));
    }
  }

  const std::string dir =
      (std::filesystem::temp_directory_path() / "fab_forecast_server_demo")
          .string();
  std::filesystem::remove_all(dir);

  // --- 1. Train the three fine-tuned model kinds. --------------------------
  const ml::ColMatrix train = MakeMatrix(800, kFeatures, 1);
  const std::vector<double> y = MakeTarget(train, 2);

  ml::ForestParams rf_params;
  rf_params.n_trees = 60;
  rf_params.max_depth = 8;
  auto rf = std::make_unique<ml::RandomForestRegressor>(rf_params);
  Die(rf->Fit(train, y), "rf fit");

  ml::GbdtParams xgb_params;
  xgb_params.n_rounds = 80;
  auto xgb = std::make_unique<ml::GbdtRegressor>(xgb_params);
  Die(xgb->Fit(train, y), "xgb fit");

  ml::MlpParams mlp_params;
  mlp_params.hidden = {32, 16};
  mlp_params.epochs = 40;
  auto mlp = std::make_unique<ml::MlpRegressor>(mlp_params);
  Die(mlp->Fit(train, y), "mlp fit");

  // --- 2. Install snapshots into the registry. -----------------------------
  // Three distinct scenario keys so the shard hash has something to route:
  // under 2 shards, rf lands on shard 0 and xgb/mlp on shard 1.
  const serve::ModelKey kRfKey{"2017", 7, "rf"};
  const serve::ModelKey kXgbKey{"2019", 21, "xgb"};
  const serve::ModelKey kMlpKey{"2017", 1, "mlp"};

  serve::ModelRegistry registry(dir);
  Die(registry.Install(kRfKey, std::move(rf)), "install rf");
  Die(registry.Install(kXgbKey, std::move(xgb)), "install xgb");
  Die(registry.Install(kMlpKey, std::move(mlp)), "install mlp");

  std::printf("registry at %s:\n", dir.c_str());
  for (const serve::ModelKey& key : registry.ListOnDisk()) {
    auto info = serve::SnapshotCodec::Probe(registry.PathFor(key));
    std::printf("  %-14s snapshot v%u (%s)\n", key.ToString().c_str(),
                info.ok() ? info->version : 0,
                info.ok() ? serve::ModelKindName(info->kind) : "?");
  }

  // --- 3. Stand up the fab::net serving stack. -----------------------------
  net::ShardedRouterOptions router_options;
  router_options.num_shards = 2;
  router_options.threads_per_shard = 2;
  router_options.max_batch = 32;
  router_options.max_shard_queue = 256;
  auto router = net::ShardedRouter::Create(&registry, router_options);
  Die(router.status(), "router create");

  net::ForecastService service(router->get());

  net::HttpServerOptions server_options;
  server_options.port = requested_port;
  server_options.num_workers = 4;
  net::HttpServer server(server_options);
  service.RegisterRoutes(&server);
  Die(server.Start(), "server start");
  std::printf("\nserving on http://127.0.0.1:%u (%zu shards)\n",
              server.port(), (*router)->num_shards());

  if (serve_forever) {
    std::printf("press Ctrl-C to stop\n");
    for (;;) std::this_thread::sleep_for(std::chrono::seconds(60));
  }

  // --- 4. Exercise the API through the sanctioned client. ------------------
  net::HttpClient client("127.0.0.1", server.port());

  auto health = client.Get("/healthz");
  Die(health.status(), "GET /healthz");
  DieIf(health->status_code != 200, "/healthz did not return 200");
  std::printf("GET /healthz -> %d %s\n", health->status_code,
              health->body.c_str());

  std::printf("POST /predict:\n");
  Predict(client, kRfKey, 4, 11);
  Predict(client, kXgbKey, 4, 12);
  Predict(client, kMlpKey, 4, 13);

  auto statusz = client.Get("/statusz");
  Die(statusz.status(), "GET /statusz");
  DieIf(statusz->status_code != 200, "/statusz did not return 200");
  auto statusz_doc = net::ParseJson(statusz->body);
  Die(statusz_doc.status(), "parse /statusz");
  const net::JsonValue* router_json = statusz_doc->Find("router");
  DieIf(router_json == nullptr, "/statusz missing router");
  auto num_shards = router_json->GetNumber("num_shards");
  Die(num_shards.status(), "/statusz missing num_shards");
  DieIf(static_cast<size_t>(*num_shards) != (*router)->num_shards(),
        "/statusz shard count mismatch");
  std::printf("GET /statusz -> %d (%zu shards reported, %zu bytes)\n",
              statusz->status_code, static_cast<size_t>(*num_shards),
              statusz->body.size());

  // --- 5. Debug surfaces: /tracez, /rpcz, /metricsz. -----------------------
  // Tag one request with a minted trace id (HttpClient attaches it as
  // x-fab-trace; the server adopts it), then pull exactly that request's
  // span tree back out of the flight recorder via /tracez.
  const uint64_t trace_id = obs::MintTraceId();
  {
    const obs::ScopedTraceId trace_scope(trace_id);
    Predict(client, kRfKey, 2, 21);
  }
  const std::string trace_hex = obs::FormatTraceId(trace_id);
  auto tracez = client.Get("/tracez?trace=" + trace_hex);
  Die(tracez.status(), "GET /tracez");
  DieIf(tracez->status_code != 200, "/tracez did not return 200");
  auto tracez_doc = net::ParseJson(tracez->body);
  Die(tracez_doc.status(), "parse /tracez");
  const net::JsonValue* traces = tracez_doc->Find("traces");
  DieIf(traces == nullptr || !traces->is_array() || traces->array().empty(),
        "/tracez has no trace for the tagged request");
  DieIf(tracez->body.find(trace_hex) == std::string::npos,
        "/tracez trace id mismatch");
  DieIf(tracez->body.find("net/request") == std::string::npos,
        "/tracez trace missing the net/request root span");
  DieIf(tracez->body.find("serve/request") == std::string::npos,
        "/tracez trace missing the shard batch leg");
  std::printf("GET /tracez?trace=%s -> %d (%zu bytes, spans IO->shard)\n",
              trace_hex.c_str(), tracez->status_code, tracez->body.size());

  auto rpcz = client.Get("/rpcz");
  Die(rpcz.status(), "GET /rpcz");
  DieIf(rpcz->status_code != 200, "/rpcz did not return 200");
  auto rpcz_doc = net::ParseJson(rpcz->body);
  Die(rpcz_doc.status(), "parse /rpcz");
  const net::JsonValue* endpoints_json = rpcz_doc->Find("server");
  DieIf(endpoints_json == nullptr || endpoints_json->Find("endpoints") == nullptr,
        "/rpcz missing server endpoints");
  const net::JsonValue* shards_json = rpcz_doc->Find("shards");
  DieIf(shards_json == nullptr || shards_json->Find("shards") == nullptr,
        "/rpcz missing shard section");
  DieIf(rpcz->body.find("/predict") == std::string::npos,
        "/rpcz has no /predict endpoint stats");
  std::printf("GET /rpcz -> %d (%zu bytes)\n", rpcz->status_code,
              rpcz->body.size());

  auto metricsz = client.Get("/metricsz");
  Die(metricsz.status(), "GET /metricsz");
  DieIf(metricsz->status_code != 200, "/metricsz did not return 200");
  DieIf(metricsz->body.find("# TYPE fab_net_http_requests_total counter") ==
            std::string::npos,
        "/metricsz missing the http requests counter");
  DieIf(metricsz->body.find("_bucket{le=") == std::string::npos,
        "/metricsz missing histogram buckets");
  std::printf("GET /metricsz -> %d (%zu bytes of Prometheus text)\n",
              metricsz->status_code, metricsz->body.size());

  // --- 6. Hot-reload: retrain, republish, swap — no downtime. --------------
  // The router resolves the registry servable on every submit, so the
  // republished snapshot serves the moment Reload() swaps it in. The
  // server never restarts; the client keeps its connection.
  const double before = Predict(client, kRfKey, 1, 99);
  const ml::ColMatrix fresh_train = MakeMatrix(800, kFeatures, 4);
  auto fresh_rf = std::make_unique<ml::RandomForestRegressor>(rf_params);
  Die(fresh_rf->Fit(fresh_train, MakeTarget(fresh_train, 5)), "retrain");
  Die(serve::SnapshotCodec::Save(*fresh_rf, registry.PathFor(kRfKey)),
      "republish");
  Die(registry.Reload(kRfKey), "reload");
  const double after = Predict(client, kRfKey, 1, 99);
  std::printf("hot-reload: forecast %.4f -> %.4f over one live connection\n",
              before, after);

  // --- 7. Clean shutdown. --------------------------------------------------
  server.Shutdown();
  (*router)->Shutdown();
  std::filesystem::remove_all(dir);
  std::printf("done.\n");
  return 0;
}
