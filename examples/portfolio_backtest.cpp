// Portfolio backtest: the paper's "application in finance" future-work
// direction — use the 7-day Crypto100 forecast as a long/flat trading
// signal and compare against buy-and-hold. Walk-forward evaluation via
// core/backtest: the model is refit on an expanding window, predictions
// are strictly out-of-sample.
//
//   ./portfolio_backtest

#include <cmath>
#include <cstdio>

#include "core/backtest.h"
#include "core/dataset_builder.h"
#include "core/report.h"
#include "ml/forest.h"
#include "sim/market_sim.h"
#include "util/string_util.h"

int main() {
  using namespace fab;

  sim::MarketSimConfig sim_config;
  sim_config.seed = 42;
  auto market = sim::SimulateMarket(sim_config);
  if (!market.ok() || !core::AddTechnicalIndicators(&market.value()).ok()) {
    std::fprintf(stderr, "market setup failed\n");
    return 1;
  }
  core::ScenarioOptions options;
  auto scenario = core::BuildScenarioDataset(*market, core::StudyPeriod::k2019,
                                             /*window=*/7, options);
  if (!scenario.ok()) {
    std::fprintf(stderr, "scenario failed: %s\n",
                 scenario.status().ToString().c_str());
    return 1;
  }

  // Trees cannot extrapolate levels beyond the training range, so the
  // model forecasts the 7-day log return instead: for row i the "current"
  // index price is the target of row i-7 (rows are consecutive days).
  ml::Dataset data = scenario->data;
  const size_t n = data.num_rows();
  {
    std::vector<double> returns(n, 0.0);
    for (size_t i = 7; i < n; ++i) {
      returns[i] = std::log(scenario->data.y[i] / scenario->data.y[i - 7]);
    }
    data.y = std::move(returns);
  }

  ml::ForestParams params;
  params.n_trees = 30;
  params.max_depth = 8;
  params.max_features = 0.33;
  ml::RandomForestRegressor rf(params);

  core::WalkForwardOptions wf_options;
  wf_options.warmup_rows = n / 3;
  wf_options.step = 7;              // weekly rebalancing
  wf_options.refit_every_steps = 9; // refit roughly every two months
  auto walk = core::WalkForwardEvaluate(rf, data, wf_options);
  if (!walk.ok()) {
    std::fprintf(stderr, "walk-forward failed: %s\n",
                 walk.status().ToString().c_str());
    return 1;
  }
  std::printf("walk-forward: %zu weekly forecasts, %d refits, oos MSE %.5f\n",
              walk->rows.size(), walk->refits, walk->Mse());

  auto result = core::RunLongFlatBacktest(walk->predictions, walk->actuals,
                                          /*periods_per_year=*/52.0);
  if (!result.ok()) {
    std::fprintf(stderr, "backtest failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  core::AsciiTable table({"metric", "long/flat strategy", "buy & hold"});
  table.AddRow({"total return",
                FormatDouble(100.0 * result->strategy_return, 1) + "%",
                FormatDouble(100.0 * result->hold_return, 1) + "%"});
  table.AddRow({"max drawdown (log pts)",
                FormatDouble(result->max_drawdown_log, 2), "-"});
  table.AddRow({"annualized Sharpe",
                FormatDouble(result->annualized_sharpe, 2), "-"});
  table.AddRow({"weeks in market",
                std::to_string(result->periods_in_market) + "/" +
                    std::to_string(result->periods_total),
                "always"});
  std::printf("%s", table.Render().c_str());
  std::printf("\nWalk-forward long/flat on the 7-day Crypto100 forecast. "
              "This is the baseline the paper proposes for future "
              "portfolio-optimization work, not investment advice.\n");
  return 0;
}
