#include "sim/sentiment.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "util/random.h"

namespace fab::sim {

Date FearGreedStartDate() { return Date(2018, 2, 1); }

namespace {

double RegimeDriftSignal(const LatentState& latent, size_t t) {
  switch (latent.regime[t]) {
    case Regime::kBull:
      return 1.0;
    case Regime::kBear:
      return -1.0;
    case Regime::kNeutral:
      return 0.0;
  }
  return 0.0;
}

double TrailingReturn(const LatentState& latent, size_t t, size_t days) {
  const size_t t0 = t >= days ? t - days : 0;
  return std::log(latent.btc_close[t] / latent.btc_close[t0]);
}

}  // namespace

Status AddSentimentMetrics(const LatentState& latent, uint64_t seed,
                           table::Table* out, MetricCatalog* catalog) {
  const size_t n = latent.num_days();
  if (out->num_rows() != n) {
    return Status::InvalidArgument("output table must share the latent index");
  }
  Rng obs(seed ^ 0x5E47u);

  Status status = Status::OK();
  auto add = [&](const std::string& name, table::Column col,
                 const std::string& desc) {
    if (!status.ok()) return;
    Status s = out->AddColumn(name, std::move(col));
    if (!s.ok()) {
      status = s;
      return;
    }
    status = catalog->Add(name, DataCategory::kSentiment, desc);
  };

  // ---- Fear & Greed: logistic blend of 30d momentum and volatility,
  // starting Feb 2018. -------------------------------------------------------
  {
    table::Column fg(n);
    const int start = latent.FindDay(FearGreedStartDate());
    for (size_t t = start < 0 ? 0 : static_cast<size_t>(start); t < n; ++t) {
      const double mom = TrailingReturn(latent, t, 30);
      const double vol_pen = (latent.btc_sigma[t] - 0.03) * 18.0;
      const double x = 3.2 * mom - vol_pen + 0.04 * latent.flows[t] +
                       0.6 * obs.Normal();
      fg.Set(t, 100.0 / (1.0 + std::exp(-x)));
    }
    add("fear_greed", std::move(fg), "fear & greed index [0, 100]");
  }

  // ---- Monthly Google-trends style search volumes: one value per month,
  // driven by the month's momentum and the adoption level. -------------------
  {
    const char* kTerms[] = {"Bitcoin",  "Ethereum",      "Cryptocurrency",
                            "Crypto",   "Blockchain",    "BuyBitcoin"};
    for (const char* term : kTerms) {
      table::Column col(n);
      double month_value = 20.0;
      int current_month = -1;
      const double sensitivity = 30.0 + 15.0 * obs.Uniform();
      for (size_t t = 0; t < n; ++t) {
        const int ym = latent.dates[t].year() * 12 + latent.dates[t].month();
        if (ym != current_month) {
          current_month = ym;
          const double mom = TrailingReturn(latent, t, 30);
          const double base = 8.0 + 70.0 * latent.adoption[t];
          month_value = std::clamp(
              base + sensitivity * mom + 6.0 * obs.Normal(), 1.0, 100.0);
        }
        col.Set(t, month_value);
      }
      add(std::string("gt_") + term + "_monthly", std::move(col),
          std::string("monthly search volume for '") + term + "'");
    }
  }

  // ---- Daily social metrics: noisy fast-reverting regime/momentum
  // followers. ----------------------------------------------------------------
  {
    table::Column post_vol(n), engagement(n), tweet_vol(n), reddit(n),
        pos(n), neg(n), neu(n), news(n), dominance(n), bull_ratio(n),
        social_score(n);
    for (size_t t = 0; t < n; ++t) {
      const double r7 = TrailingReturn(latent, t, 7);
      const double regime_sig = RegimeDriftSignal(latent, t);
      const double excitement =
          1.0 + 2.5 * std::fabs(r7) + 0.3 * std::max(0.0, regime_sig);
      post_vol.Set(t, 2.0e4 * latent.adoption[t] * excitement *
                          std::exp(0.25 * obs.Normal()));
      engagement.Set(t, post_vol.value(t) * (12.0 + 3.0 * obs.Normal()));
      tweet_vol.Set(t, 6.5e4 * latent.adoption[t] * excitement *
                           std::exp(0.30 * obs.Normal()));
      reddit.Set(t, 1.4e4 * latent.adoption[t] *
                        (1.0 + 1.5 * std::fabs(r7)) *
                        std::exp(0.22 * obs.Normal()));
      // Sentiment split: regime + momentum + investor flows (the herd
      // reacts quickly) through heavy noise.
      const double mood = 0.45 * regime_sig + 4.0 * r7 +
                          0.05 * latent.flows[t] + 0.65 * obs.Normal();
      const double p = 0.34 + 0.10 * std::tanh(mood);
      const double q = 0.26 - 0.08 * std::tanh(mood);
      pos.Set(t, std::clamp(p + 0.02 * obs.Normal(), 0.05, 0.8));
      neg.Set(t, std::clamp(q + 0.02 * obs.Normal(), 0.05, 0.8));
      neu.Set(t, std::clamp(1.0 - pos.value(t) - neg.value(t), 0.05, 0.9));
      news.Set(t, std::clamp(0.5 + 0.25 * std::tanh(mood) +
                                 0.08 * obs.Normal(),
                             0.0, 1.0));
      dominance.Set(t, std::clamp(12.0 + 20.0 * std::fabs(r7) +
                                      2.0 * obs.Normal(),
                                  1.0, 60.0));
      bull_ratio.Set(t, std::clamp(1.0 + 0.8 * std::tanh(mood) +
                                       0.15 * obs.Normal(),
                                   0.1, 4.0));
      social_score.Set(t, std::clamp(50.0 + 20.0 * std::tanh(mood) +
                                         6.0 * obs.Normal(),
                                     0.0, 100.0));
    }
    add("social_post_volume", std::move(post_vol), "daily social posts");
    add("social_engagement", std::move(engagement), "daily engagements");
    add("tweet_volume", std::move(tweet_vol), "daily tweets about crypto");
    add("reddit_active_users", std::move(reddit), "daily active reddit users");
    add("social_sentiment_positive", std::move(pos), "positive post share");
    add("social_sentiment_negative", std::move(neg), "negative post share");
    add("social_sentiment_neutral", std::move(neu), "neutral post share");
    add("news_sentiment", std::move(news), "aggregated news sentiment [0,1]");
    add("social_dominance", std::move(dominance),
        "crypto share of social finance chatter (%)");
    add("bullish_ratio", std::move(bull_ratio), "bullish/bearish post ratio");
    add("social_score", std::move(social_score),
        "composite social activity score");
  }

  return status;
}

}  // namespace fab::sim
