#include "sim/stress.h"

#include <algorithm>
#include <cmath>

#include "sim/onchain_usdc.h"
#include "util/random.h"

namespace fab::sim {

namespace {

// Per-injector seed salts: each injector owns an independent stream
// derived from the stress master seed, so enabling one regime never
// shifts another's event placement.
constexpr uint64_t kFlashCrashSalt = 0xF1A5Cull;
constexpr uint64_t kOutageSalt = 0x0007A6Eull;
constexpr uint64_t kDepegSalt = 0xDE9E6ull;

// Keep events out of the warm-up year (so indicator windows exist) and
// away from the very end (so recoveries and prediction targets fit).
constexpr size_t kEventLeadInDays = 400;
constexpr size_t kEventTailMarginDays = 60;

}  // namespace

std::vector<std::pair<size_t, size_t>> StressEventWindows(uint64_t seed,
                                                          int count,
                                                          size_t duration,
                                                          size_t lo,
                                                          size_t hi) {
  std::vector<std::pair<size_t, size_t>> windows;
  if (count <= 0 || duration == 0 || hi <= lo) return windows;
  const size_t span = hi - lo;
  const size_t segment = span / static_cast<size_t>(count);
  if (segment < duration) return windows;
  Rng rng(seed);
  windows.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    const size_t seg_lo = lo + static_cast<size_t>(i) * segment;
    const size_t slack = segment - duration;
    const size_t start =
        seg_lo + (slack > 0 ? static_cast<size_t>(rng.UniformInt(slack)) : 0);
    windows.emplace_back(start, start + duration);
  }
  return windows;
}

std::vector<std::pair<size_t, size_t>> OutageWindows(const OutageStress& outage,
                                                     uint64_t seed, size_t n) {
  if (!outage.enabled || n <= kEventLeadInDays + kEventTailMarginDays) {
    return {};
  }
  return StressEventWindows(seed ^ kOutageSalt, outage.events,
                            static_cast<size_t>(std::max(1, outage.duration_days)),
                            kEventLeadInDays, n - kEventTailMarginDays);
}

std::vector<size_t> FlashCrashDays(const FlashCrashStress& crash,
                                   uint64_t seed, size_t n) {
  std::vector<size_t> days;
  const size_t tail =
      kEventTailMarginDays + static_cast<size_t>(std::max(0, crash.recovery_days));
  if (!crash.enabled || n <= kEventLeadInDays + tail) return days;
  const auto windows = StressEventWindows(seed ^ kFlashCrashSalt, crash.events,
                                          1, kEventLeadInDays, n - tail);
  days.reserve(windows.size());
  for (const auto& w : windows) days.push_back(w.first);
  return days;
}

Status ApplyLatentStress(const StressConfig& stress, uint64_t seed,
                         LatentState* latent) {
  if (latent == nullptr) {
    return Status::InvalidArgument("ApplyLatentStress: null latent state");
  }
  const size_t n = latent->num_days();

  if (stress.flash_crash.enabled) {
    const FlashCrashStress& crash = stress.flash_crash;
    if (!(crash.magnitude > 0.0) || crash.recovery_days < 0 ||
        !(crash.volume_mult >= 1.0)) {
      return Status::InvalidArgument("flash crash: magnitude must be > 0, "
                                     "recovery_days >= 0, volume_mult >= 1");
    }
    const std::vector<size_t> days = FlashCrashDays(crash, seed, n);
    // Depth draws come after window placement on the same salted stream
    // family; a dedicated Rng keeps them independent of the placement.
    Rng rng(seed ^ kFlashCrashSalt ^ 0xDEE9ull);
    // Cumulative log-price adjustment: the crash knocks the whole
    // subsequent path down by `depth`, then `recovery_fraction` of it is
    // retraced linearly over `recovery_days`.
    std::vector<double> adj(n, 0.0);
    for (const size_t c : days) {
      const double depth = crash.magnitude * (0.75 + 0.5 * rng.Uniform());
      const double rec_per_day =
          crash.recovery_days > 0
              ? crash.recovery_fraction * depth / crash.recovery_days
              : 0.0;
      for (size_t t = c; t < n; ++t) {
        const double elapsed = static_cast<double>(t - c);
        adj[t] += -depth + rec_per_day *
                               std::min(elapsed,
                                        static_cast<double>(crash.recovery_days));
      }
      // Panic volume and realized volatility, decaying over the recovery.
      for (size_t t = c; t < n && t < c + static_cast<size_t>(
                                              crash.recovery_days + 1);
           ++t) {
        const double k = static_cast<double>(t - c);
        latent->btc_volume_usd[t] *=
            1.0 + (crash.volume_mult - 1.0) * std::exp(-k / 3.0);
        latent->btc_sigma[t] *= 1.0 + 2.0 * std::exp(-k / 5.0);
      }
      // Crash-day wick: the low overshoots the close.
      latent->btc_low[c] *= std::exp(-0.2 * depth);
    }
    for (size_t t = 0; t < n; ++t) {
      const double prev_adj = t > 0 ? adj[t - 1] : 0.0;
      if (adj[t] == 0.0 && prev_adj == 0.0) continue;
      const double f = std::exp(adj[t]);
      // The open connects to the previous close, so it carries the
      // previous day's adjustment; high/low bracket both.
      const double fo = std::exp(prev_adj);
      latent->btc_open[t] *= fo;
      latent->btc_close[t] *= f;
      latent->btc_high[t] *= std::max(f, fo);
      latent->btc_low[t] *= std::min(f, fo);
      latent->btc_high[t] = std::max(
          {latent->btc_high[t], latent->btc_open[t], latent->btc_close[t]});
      latent->btc_low[t] = std::min(
          {latent->btc_low[t], latent->btc_open[t], latent->btc_close[t]});
    }
  }

  if (stress.outage.enabled) {
    if (stress.outage.duration_days < 1) {
      return Status::InvalidArgument("outage: duration_days must be >= 1");
    }
    for (const auto& [start, end] : OutageWindows(stress.outage, seed, n)) {
      // kEventLeadInDays > 0 guarantees start > 0: there is always a
      // last trade to freeze at.
      const double last_trade = latent->btc_close[start - 1];
      for (size_t t = start; t < end && t < n; ++t) {
        latent->btc_open[t] = last_trade;
        latent->btc_high[t] = last_trade;
        latent->btc_low[t] = last_trade;
        latent->btc_close[t] = last_trade;
        latent->btc_volume_usd[t] = 0.0;
      }
    }
  }

  return Status::OK();
}

std::vector<double> UsdcPegDeviation(const DepegStress& depeg, uint64_t seed,
                                     const LatentState& latent) {
  const size_t n = latent.num_days();
  std::vector<double> dev(n, 0.0);
  if (!depeg.enabled || depeg.depth <= 0.0 || depeg.duration_days < 1) {
    return dev;
  }
  const int launch_row = latent.FindDay(UsdcLaunchDate());
  if (launch_row < 0) return dev;
  // Events start well after launch so every depeg lands on recorded
  // usdc_ data with an established supply base.
  const size_t lo = static_cast<size_t>(launch_row) + 120;
  if (n <= lo + kEventTailMarginDays) return dev;
  const auto windows = StressEventWindows(
      seed ^ kDepegSalt, depeg.events,
      static_cast<size_t>(depeg.duration_days), lo, n - kEventTailMarginDays);
  Rng rng(seed ^ kDepegSalt ^ 0xD009ull);
  for (const auto& [start, end] : windows) {
    const double depth = depeg.depth * (0.8 + 0.4 * rng.Uniform());
    const double tau = std::max(1.0, depeg.duration_days / 3.0);
    for (size_t t = start; t < end && t < n; ++t) {
      const size_t k = t - start;
      // Day 0 breaks most of the way, day 1 is the bottom, then the peg
      // restores exponentially.
      const double shape =
          k == 0 ? 0.6 : std::exp(-static_cast<double>(k - 1) / tau);
      dev[t] = std::max(dev[t], depth * shape);
    }
  }
  return dev;
}

std::vector<double> RankChurnSigmaMultipliers(const RankChurnStress& churn,
                                              const std::vector<Date>& dates) {
  std::vector<double> mult(dates.size(), 1.0);
  if (!churn.enabled || churn.sigma_mult == 1.0) return mult;
  for (size_t t = 0; t < dates.size(); ++t) {
    const Date d = dates[t];
    const int64_t since_boundary = d.day() - 1;
    const Date next_boundary = d.month() == 12
                                   ? Date(d.year() + 1, 1, 1)
                                   : Date(d.year(), d.month() + 1, 1);
    const int64_t until_boundary = next_boundary - d;
    if (std::min(since_boundary, until_boundary) <=
        static_cast<int64_t>(churn.half_width_days)) {
      mult[t] = churn.sigma_mult;
    }
  }
  return mult;
}

}  // namespace fab::sim
