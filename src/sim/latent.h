#ifndef FAB_SIM_LATENT_H_
#define FAB_SIM_LATENT_H_

#include <cstdint>
#include <vector>

#include "util/date.h"
#include "util/status.h"

namespace fab::sim {

/// Market regime labels for the latent Markov micro-regime chain.
enum class Regime { kBear = 0, kNeutral = 1, kBull = 2 };

/// Configuration of the latent market-state generator.
struct LatentConfig {
  Date start{2016, 7, 1};   ///< includes warm-up before the 2017 study start
  Date end{2023, 6, 30};
  uint64_t seed = 42;

  /// Initial BTC price (USD) at `start`.
  double btc_price0 = 650.0;
  /// Daily idiosyncratic BTC volatility by micro-regime (bear/neutral/bull).
  double sigma_bear = 0.045;
  double sigma_neutral = 0.028;
  double sigma_bull = 0.038;
  /// Micro-regime drift contributions (log points/day).
  double drift_bear = -0.012;
  double drift_neutral = 0.000;
  double drift_bull = 0.014;
  /// Student-t degrees of freedom for return shocks (fat tails).
  double shock_dof = 4.0;
  /// Coupling of the smoothed macro factor into crypto drift.
  double macro_beta = 0.0012;
  /// Baseline drift offset compensating the unconditional mean of the
  /// macro/regime/adoption couplings, so the era backbone stays calibrated.
  double drift_offset = -0.0010;
  /// Coupling of adoption growth into crypto drift.
  double adoption_beta = 1.2;
  /// Jump intensity (per day) and jump scale (log points).
  double jump_intensity = 0.012;
  double jump_scale = 0.07;
};

/// The latent daily state of the simulated market.
///
/// Everything observable — prices, on-chain metrics, sentiment, macro
/// series — is derived from these paths plus observation noise. The
/// design mirrors the causal story the paper tells: a slow macro factor
/// and an adoption curve drive long-horizon price behaviour, a scripted
/// era schedule reproduces the 2017–2023 market cycles, a Markov
/// micro-regime chain adds medium-frequency trend persistence, and
/// investor flows (which stablecoin metrics observe almost directly)
/// respond to regime shifts faster than prices fully do.
struct LatentState {
  std::vector<Date> dates;

  /// Slow AR(1) macro factor (global liquidity / risk appetite), plus an
  /// exponentially smoothed copy that enters crypto drift with delay.
  std::vector<double> macro_factor;
  std::vector<double> macro_smooth;

  /// Scripted era drift (the 2017 bull, 2018 bear, 2020–21 bull, 2022
  /// bear, ... in log points/day) and the Markov micro-regime on top.
  std::vector<double> era_drift;
  std::vector<Regime> regime;

  /// Network adoption level in (0, 1), logistic with regime coupling.
  std::vector<double> adoption;

  /// Net investor flows into the crypto market (arbitrary units/day):
  /// respond to regime and macro with a short lag; stablecoin supply
  /// integrates them.
  std::vector<double> flows;

  /// BTC daily candle and volume.
  std::vector<double> btc_open;
  std::vector<double> btc_high;
  std::vector<double> btc_low;
  std::vector<double> btc_close;
  std::vector<double> btc_volume_usd;

  /// Realized (instantaneous) daily volatility used for each step.
  std::vector<double> btc_sigma;

  size_t num_days() const { return dates.size(); }

  /// Row position of `d`, or -1 if out of range.
  int FindDay(Date d) const;
};

/// Generates the latent market state. Deterministic in `config.seed`.
[[nodiscard]] Result<LatentState> GenerateLatentState(const LatentConfig& config);

/// The scripted era drift (log points/day) for a calendar date — the
/// deterministic backbone that reproduces the 2017–2023 cycle shape.
/// Exposed for tests.
double EraDrift(Date d);

}  // namespace fab::sim

#endif  // FAB_SIM_LATENT_H_
