#ifndef FAB_SIM_ASSETS_H_
#define FAB_SIM_ASSETS_H_

#include <string>
#include <vector>

#include "sim/latent.h"
#include "util/status.h"

namespace fab::sim {

/// Configuration of the simulated asset universe.
struct AssetUniverseConfig {
  /// Number of non-BTC assets (the long tail beyond the top 100 is what
  /// makes the Figure-1 comparison meaningful).
  int num_alts = 250;
  /// Zipf exponent of the baseline alt market-cap distribution.
  double zipf_exponent = 1.35;
  /// Daily volatility of each alt's log-weight random walk (rank churn).
  double weight_walk_sigma = 0.035;
  uint64_t seed = 1234;
};

/// Daily market capitalizations for BTC plus a churning altcoin universe.
///
/// BTC's cap is price × deterministic issuance schedule (halvings in 2016
/// and 2020). The aggregate alt market tracks BTC's cap through a scripted
/// "dominance" path (alt seasons in 2017/2021); individual alts hold
/// Zipf-distributed shares perturbed by log random walks, and launch at
/// staggered dates, so membership of the top 100 churns over time like the
/// real market.
struct AssetPanel {
  std::vector<Date> dates;
  /// Asset names; index 0 is "BTC".
  std::vector<std::string> names;
  /// Launch date per asset (caps are 0 before launch).
  std::vector<Date> launch;
  /// mcap[t][i]: market cap (USD) of asset i on day t.
  std::vector<std::vector<double>> mcap;

  size_t num_days() const { return dates.size(); }
  size_t num_assets() const { return names.size(); }

  /// Sum of the `k` largest caps on day `t`.
  double TopKSum(size_t t, int k) const;

  /// Sum of all caps on day `t`.
  double TotalSum(size_t t) const;

  /// BTC market cap series (column 0).
  std::vector<double> BtcMcap() const;
};

/// BTC circulating supply on a date, from the deterministic issuance
/// schedule (12.5 BTC/block until the May-2020 halving, then 6.25;
/// 144 blocks/day).
double BtcSupplyOn(Date d);

/// Builds the asset panel on top of a latent state.
///
/// `weight_sigma_mult`, when non-null, scales the per-day weight-walk
/// sigma (one multiplier per latent day) — the rank-churn stress regime
/// passes boosted multipliers around rebalance boundaries. The draw
/// count is unchanged, so a vector of all 1s reproduces the unstressed
/// panel bitwise.
[[nodiscard]] Result<AssetPanel> GenerateAssetPanel(
    const LatentState& latent, const AssetUniverseConfig& config,
    const std::vector<double>* weight_sigma_mult = nullptr);

}  // namespace fab::sim

#endif  // FAB_SIM_ASSETS_H_
