#include "sim/assets.h"

#include <algorithm>
#include <cmath>

#include "util/random.h"

namespace fab::sim {

namespace {

/// Scripted BTC dominance backbone (BTC cap / total crypto cap): high in
/// early 2017, diluted by the 2017/2021 alt seasons, recovering in bears.
double DominanceBackbone(Date d) {
  struct Era {
    Date until;
    double dominance;
  };
  static const Era kEras[] = {
      {Date(2017, 2, 28), 0.87},  {Date(2017, 6, 30), 0.62},
      {Date(2018, 1, 15), 0.38},  {Date(2018, 12, 31), 0.52},
      {Date(2019, 9, 30), 0.68},  {Date(2020, 12, 31), 0.64},
      {Date(2021, 5, 15), 0.43},  {Date(2021, 12, 31), 0.41},
      {Date(2022, 12, 31), 0.40}, {Date(2023, 6, 30), 0.48},
  };
  for (const Era& era : kEras) {
    if (d <= era.until) return era.dominance;
  }
  return 0.5;
}

}  // namespace

double BtcSupplyOn(Date d) {
  // Reward eras relevant to the simulation window. Supplies anchored to
  // the actual schedule: ~15.72M on 2016-07-09 (2nd halving).
  const Date halving2(2016, 7, 9);
  const Date halving3(2020, 5, 11);
  const double blocks_per_day = 144.0;
  double supply = 15.72e6;
  if (d <= halving2) return supply;
  const Date upto3 = std::min(d, halving3);
  supply += static_cast<double>(upto3 - halving2) * blocks_per_day * 12.5;
  if (d > halving3) {
    supply += static_cast<double>(d - halving3) * blocks_per_day * 6.25;
  }
  return supply;
}

double AssetPanel::TopKSum(size_t t, int k) const {
  std::vector<double> caps = mcap[t];
  const size_t kk = std::min(static_cast<size_t>(k), caps.size());
  std::partial_sort(caps.begin(), caps.begin() + static_cast<long>(kk),
                    caps.end(), std::greater<double>());
  double sum = 0.0;
  for (size_t i = 0; i < kk; ++i) sum += caps[i];
  return sum;
}

double AssetPanel::TotalSum(size_t t) const {
  double sum = 0.0;
  for (double c : mcap[t]) sum += c;
  return sum;
}

std::vector<double> AssetPanel::BtcMcap() const {
  std::vector<double> out(num_days());
  for (size_t t = 0; t < num_days(); ++t) out[t] = mcap[t][0];
  return out;
}

Result<AssetPanel> GenerateAssetPanel(
    const LatentState& latent, const AssetUniverseConfig& config,
    const std::vector<double>* weight_sigma_mult) {
  if (config.num_alts < 100) {
    return Status::InvalidArgument(
        "asset universe needs at least 100 alts to fill a top-100 index");
  }
  if (weight_sigma_mult != nullptr &&
      weight_sigma_mult->size() != latent.num_days()) {
    return Status::InvalidArgument(
        "weight_sigma_mult must hold one multiplier per latent day");
  }
  const size_t n = latent.num_days();
  const size_t na = static_cast<size_t>(config.num_alts);
  AssetPanel panel;
  panel.dates = latent.dates;
  panel.names.reserve(na + 1);
  panel.launch.reserve(na + 1);
  panel.names.push_back("BTC");
  panel.launch.push_back(Date(2009, 1, 3));

  Rng rng(config.seed);
  // Alts launch progressively: 40% exist at the start, the rest arrive
  // uniformly through 2021 (the maturing-market churn the paper notes).
  for (size_t i = 0; i < na; ++i) {
    panel.names.push_back("ALT" + std::to_string(i + 1));
    if (rng.Bernoulli(0.40)) {
      panel.launch.push_back(latent.dates.front());
    } else {
      const int64_t span = Date(2021, 12, 31) - latent.dates.front();
      panel.launch.push_back(latent.dates.front().AddDays(
          static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(span)))));
    }
  }

  // Zipf base weights (asset i gets 1/(i+1)^s) and per-asset log walks.
  std::vector<double> log_w(na);
  for (size_t i = 0; i < na; ++i) {
    log_w[i] = -config.zipf_exponent * std::log(static_cast<double>(i) + 2.0) +
               0.5 * rng.Normal();
  }

  // Dominance path: mean-reverting to the scripted backbone, nudged by
  // micro-regime (alts outperform in bulls).
  double dom = DominanceBackbone(latent.dates.front());

  panel.mcap.assign(n, std::vector<double>(na + 1, 0.0));
  for (size_t t = 0; t < n; ++t) {
    const double btc_cap = latent.btc_close[t] * BtcSupplyOn(latent.dates[t]);
    panel.mcap[t][0] = btc_cap;

    const double target = DominanceBackbone(latent.dates[t]);
    const double regime_push =
        latent.regime[t] == Regime::kBull ? -0.0006 : 0.0004;
    dom += 0.010 * (target - dom) + 1.6 * regime_push + 0.008 * rng.Normal();
    dom = std::clamp(dom, 0.30, 0.92);
    const double alt_total = btc_cap * (1.0 - dom) / dom;

    // Evolve alt weights and renormalize over launched assets.
    const double walk_sigma =
        config.weight_walk_sigma *
        (weight_sigma_mult != nullptr ? (*weight_sigma_mult)[t] : 1.0);
    double wsum = 0.0;
    for (size_t i = 0; i < na; ++i) {
      log_w[i] += walk_sigma * rng.Normal() -
                  0.001 * log_w[i];  // slight pull to the Zipf anchor
      if (latent.dates[t] >= panel.launch[i + 1]) {
        wsum += std::exp(log_w[i]);
      }
    }
    if (wsum > 0.0) {
      for (size_t i = 0; i < na; ++i) {
        if (latent.dates[t] >= panel.launch[i + 1]) {
          panel.mcap[t][i + 1] = alt_total * std::exp(log_w[i]) / wsum;
        }
      }
    }
  }
  return panel;
}

}  // namespace fab::sim
