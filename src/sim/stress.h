#ifndef FAB_SIM_STRESS_H_
#define FAB_SIM_STRESS_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/latent.h"
#include "util/date.h"
#include "util/status.h"

namespace fab::sim {

/// Adversarial market regimes layered on top of the single causal
/// structure in `latent.cc`/`assets.cc` — the market-structure shocks the
/// CRIX/CCI30 index papers document (depegs, flash crashes, venue
/// outages, rebalance-boundary rank churn) that the baseline simulation
/// never produces on its own.
///
/// Every injector is OFF by default and consumes no randomness from the
/// baseline generators' streams: with a default StressConfig the
/// simulated market is bitwise identical to one built before this layer
/// existed (the hexfloat goldens pin this). Enabled injectors are
/// deterministic in the master seed — the same (seed, StressConfig)
/// reproduces the same shocked market exactly, which is what lets the
/// sweep harness log per-violation repro seeds.

/// A multi-sigma single-day down-move with a volume spike and a partial,
/// drawn-out recovery — the 2020-03-12 / 2021-05-19 cascade shape.
/// Bypasses the latent generator's per-day shock clamp on purpose.
struct FlashCrashStress {
  bool enabled = false;
  /// Number of crash events, spread across the simulation interior.
  int events = 2;
  /// Mean crash depth in log points (0.30 ≈ a 26% daily close-to-close
  /// drop); per-event depth varies ±25% around this.
  double magnitude = 0.30;
  /// Crash-day volume multiplier (decays back to 1 over the recovery).
  double volume_mult = 6.0;
  /// Days over which `recovery_fraction` of the drop is retraced.
  int recovery_days = 15;
  double recovery_fraction = 0.5;
};

/// A stablecoin depeg: USDC trades below $1 for a stretch (sharp drop,
/// exponential re-peg) while redemptions shrink its supply — the
/// USDC-March-2023 / UST-May-2022 shape. Only this regime emits the
/// `usdc_PriceUSD` / `usdc_PegDevBps` columns, so the baseline candidate
/// feature set (and the goldens derived from it) stays unchanged.
struct DepegStress {
  bool enabled = false;
  int events = 1;
  /// Peak deviation below the peg ($0.90 at the default 0.10).
  double depth = 0.10;
  /// Days from the initial break until the peg is effectively restored.
  int duration_days = 10;
};

/// An exchange outage: for each event window the OHLCV feed goes flat
/// (candles frozen at the last trade, volume zero) and the sentiment
/// feeds go dark (null cells). Downstream, DatasetBuilder must digest
/// the flat/gapped inputs without NaN-poisoning derived indicators —
/// the regime exists to prove that it does.
struct OutageStress {
  bool enabled = false;
  int events = 2;
  int duration_days = 5;
};

/// A rank-churn storm: the alt-weight random walk runs hot around every
/// month boundary (the Crypto100 rebalance grid), so top-100 membership
/// churns violently exactly where the index recomposes.
struct RankChurnStress {
  bool enabled = false;
  /// Multiplier on `AssetUniverseConfig::weight_walk_sigma` near
  /// boundaries (1 elsewhere).
  double sigma_mult = 6.0;
  /// A day is "near" a boundary when within this many days of the
  /// first of a month.
  int half_width_days = 3;
};

/// Composable regime configuration carried by `MarketSimConfig`.
struct StressConfig {
  FlashCrashStress flash_crash;
  DepegStress depeg;
  OutageStress outage;
  RankChurnStress rank_churn;

  bool any_enabled() const {
    return flash_crash.enabled || depeg.enabled || outage.enabled ||
           rank_churn.enabled;
  }
};

/// `count` disjoint event windows of `duration` rows each inside
/// [lo, hi), deterministic in `seed`: the eligible span is cut into
/// `count` equal segments and each window lands uniformly inside its
/// segment, so events are spread across the simulation rather than
/// clumped. Returns [start, end) row pairs; empty when the span cannot
/// hold any window.
std::vector<std::pair<size_t, size_t>> StressEventWindows(uint64_t seed,
                                                          int count,
                                                          size_t duration,
                                                          size_t lo, size_t hi);

/// The outage windows implied by (`outage`, `seed`) over an `n`-day
/// index. Exposed so `SimulateMarket` can null sentiment cells over the
/// exact windows `ApplyLatentStress` froze, and so tests can locate the
/// injected shock.
std::vector<std::pair<size_t, size_t>> OutageWindows(const OutageStress& outage,
                                                     uint64_t seed, size_t n);

/// The flash-crash days implied by (`crash`, `seed`) over an `n`-day
/// index. Exposed for tests.
std::vector<size_t> FlashCrashDays(const FlashCrashStress& crash,
                                   uint64_t seed, size_t n);

/// Applies the latent-path injectors (flash crash, exchange outage) to
/// `latent` in place, after GenerateLatentState and before every derived
/// generator, so the shocks propagate into prices, the asset panel,
/// on-chain activity and sentiment alike. Draws only from Rngs derived
/// from `seed`; a fully disabled config is a byte-for-byte no-op.
[[nodiscard]] Status ApplyLatentStress(const StressConfig& stress, uint64_t seed,
                         LatentState* latent);

/// Per-day USDC peg deviation (dollars below $1, >= 0) implied by the
/// depeg regime; all zeros when disabled. Events are placed after the
/// USDC launch so the deviation always lands on recorded data.
std::vector<double> UsdcPegDeviation(const DepegStress& depeg, uint64_t seed,
                                     const LatentState& latent);

/// Per-day multiplier on the alt weight-walk sigma for the rank-churn
/// regime: `sigma_mult` within `half_width_days` of a month's first day,
/// 1 elsewhere (and 1 everywhere when disabled).
std::vector<double> RankChurnSigmaMultipliers(const RankChurnStress& churn,
                                              const std::vector<Date>& dates);

}  // namespace fab::sim

#endif  // FAB_SIM_STRESS_H_
