#include "sim/macro.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "util/random.h"

namespace fab::sim {

double PolicyRateBackbone(Date d) {
  struct Era {
    Date until;
    double rate;
  };
  // Roughly the 2016-2023 federal-funds path.
  static const Era kEras[] = {
      {Date(2016, 12, 14), 0.50}, {Date(2017, 3, 15), 0.75},
      {Date(2017, 6, 14), 1.00},  {Date(2017, 12, 13), 1.25},
      {Date(2018, 3, 21), 1.50},  {Date(2018, 6, 13), 1.75},
      {Date(2018, 9, 26), 2.00},  {Date(2018, 12, 19), 2.25},
      {Date(2019, 7, 31), 2.50},  {Date(2019, 9, 18), 2.25},
      {Date(2019, 10, 30), 2.00}, {Date(2020, 3, 3), 1.75},
      {Date(2020, 3, 15), 1.25},  {Date(2022, 3, 16), 0.25},
      {Date(2022, 5, 4), 0.50},   {Date(2022, 6, 15), 1.00},
      {Date(2022, 7, 27), 1.75},  {Date(2022, 9, 21), 2.50},
      {Date(2022, 11, 2), 3.25},  {Date(2022, 12, 14), 4.00},
      {Date(2023, 2, 1), 4.50},   {Date(2023, 3, 22), 4.75},
      {Date(2023, 5, 3), 5.00},   {Date(2023, 6, 30), 5.25},
  };
  for (const Era& era : kEras) {
    if (d <= era.until) return era.rate;
  }
  return 5.25;
}

double CpiYoYBackbone(Date d) {
  struct Era {
    Date until;
    double cpi;
  };
  static const Era kEras[] = {
      {Date(2017, 12, 31), 2.1}, {Date(2018, 12, 31), 2.4},
      {Date(2019, 12, 31), 1.8}, {Date(2020, 5, 31), 0.4},
      {Date(2020, 12, 31), 1.2}, {Date(2021, 6, 30), 4.5},
      {Date(2021, 12, 31), 6.8}, {Date(2022, 6, 30), 8.9},
      {Date(2022, 12, 31), 7.1}, {Date(2023, 6, 30), 4.1},
  };
  for (const Era& era : kEras) {
    if (d <= era.until) return era.cpi;
  }
  return 3.0;
}

Status AddMacroMetrics(const LatentState& latent, uint64_t seed,
                       table::Table* out, MetricCatalog* catalog) {
  const size_t n = latent.num_days();
  if (out->num_rows() != n) {
    return Status::InvalidArgument("output table must share the latent index");
  }
  Rng obs(seed ^ 0x3AC20u);

  Status status = Status::OK();
  auto add = [&](const std::string& name, std::vector<double> values,
                 const std::string& desc) {
    if (!status.ok()) return;
    Status s = out->AddColumn(name, std::move(values));
    if (!s.ok()) {
      status = s;
      return;
    }
    status = catalog->Add(name, DataCategory::kMacro, desc);
  };

  // Monthly sampler: recompute a value on the first day of each month and
  // hold it constant otherwise.
  auto monthly = [&](auto value_fn) {
    std::vector<double> out_v(n);
    double v = 0.0;
    int current_month = -1;
    for (size_t t = 0; t < n; ++t) {
      const int ym = latent.dates[t].year() * 12 + latent.dates[t].month();
      if (ym != current_month) {
        current_month = ym;
        v = value_fn(t);
      }
      out_v[t] = v;
    }
    return out_v;
  };

  add("fed_funds_rate", monthly([&](size_t t) {
        return PolicyRateBackbone(latent.dates[t]) + 0.08 * obs.Normal();
      }),
      "US policy rate (%)");
  add("ecb_rate", monthly([&](size_t t) {
        // ECB lags the Fed and stayed at zero longer.
        const double us = PolicyRateBackbone(latent.dates[t]);
        return std::max(0.0, 0.7 * (us - 1.0)) + 0.02 * obs.Normal();
      }),
      "ECB policy rate (%)");
  add("us_cpi_yoy", monthly([&](size_t t) {
        return CpiYoYBackbone(latent.dates[t]) + 0.25 * obs.Normal();
      }),
      "US CPI inflation, year over year (%)");
  add("eu_cpi_yoy", monthly([&](size_t t) {
        return 0.9 * CpiYoYBackbone(latent.dates[t]) + 0.4 +
               0.08 * obs.Normal();
      }),
      "Euro-area HICP inflation, year over year (%)");
  add("unemployment_us", monthly([&](size_t t) {
        const Date d = latent.dates[t];
        double u = 4.2;
        if (d >= Date(2020, 4, 1) && d <= Date(2020, 6, 30)) {
          u = 13.5;
        } else if (d >= Date(2020, 7, 1) && d <= Date(2021, 6, 30)) {
          u = 7.0;
        } else if (d > Date(2021, 6, 30)) {
          u = 3.8;
        }
        return u + 0.1 * obs.Normal();
      }),
      "US unemployment rate (%)");
  add("m2_yoy", monthly([&](size_t t) {
        // Money-supply growth mirrors the macro factor (QE eras).
        return 6.0 + 10.0 * latent.macro_factor[t] + 0.4 * obs.Normal();
      }),
      "US M2 money supply growth, year over year (%)");
  add("treasury_2y", monthly([&](size_t t) {
        return PolicyRateBackbone(latent.dates[t]) + 0.3 -
               0.25 * latent.macro_factor[t] + 0.05 * obs.Normal();
      }),
      "2-year treasury yield (%)");
  add("treasury_10y", monthly([&](size_t t) {
        return 0.6 * PolicyRateBackbone(latent.dates[t]) + 1.3 +
               0.3 * CpiYoYBackbone(latent.dates[t]) / 4.0 +
               0.06 * obs.Normal();
      }),
      "10-year treasury yield (%)");
  add("breakeven_inflation_5y", monthly([&](size_t t) {
        return 1.5 + 0.35 * CpiYoYBackbone(latent.dates[t]) / 2.0 +
               0.05 * obs.Normal();
      }),
      "5-year breakeven inflation (%)");
  add("gdp_nowcast_qoq", monthly([&](size_t t) {
        return 2.0 + 2.5 * latent.macro_factor[t] + 0.8 * obs.Normal();
      }),
      "GDP nowcast, quarter over quarter annualized (%)");
  add("consumer_sentiment", monthly([&](size_t t) {
        return 90.0 + 18.0 * latent.macro_factor[t] -
               2.5 * CpiYoYBackbone(latent.dates[t]) + 2.0 * obs.Normal();
      }),
      "consumer sentiment survey level");

  // Policy-uncertainty indices: daily, noisy, spiking when the macro
  // backbone moves fast.
  {
    std::vector<double> epu_us(n), epu_global(n);
    double level = 110.0;
    for (size_t t = 0; t < n; ++t) {
      const double shock =
          t > 0 ? std::fabs(latent.macro_factor[t] - latent.macro_factor[t - 1])
                : 0.0;
      level += 0.05 * (110.0 + 900.0 * shock - level) + 6.0 * obs.Normal();
      level = std::clamp(level, 40.0, 500.0);
      epu_us[t] = level;
      epu_global[t] = level * (1.0 + 0.12 * obs.Normal());
    }
    add("epu_us", std::move(epu_us), "US economic policy uncertainty index");
    add("epu_global", std::move(epu_global),
        "global economic policy uncertainty index");
  }

  return status;
}

}  // namespace fab::sim
