#ifndef FAB_SIM_ONCHAIN_USDC_H_
#define FAB_SIM_ONCHAIN_USDC_H_

#include <cstdint>

#include <vector>

#include "sim/catalog.h"
#include "sim/latent.h"
#include "table/table.h"
#include "util/date.h"
#include "util/status.h"

namespace fab::sim {

/// The simulated USDC launch date; all usdc_* columns are null before it
/// (the paper notes USDC data only exists from late 2018, which is why the
/// 2017 set excludes it).
Date UsdcLaunchDate();

/// Generates the USDC on-chain metric family (usdc_-prefixed Coinmetrics
/// names) into `out`, registered under `DataCategory::kOnChainUsdc`.
///
/// The stablecoin's supply tracks total market size with a ~3-month lag
/// (settlement demand) and integrates the latent investor-flow process:
/// inflows mint USDC, outflows redeem it. Because flows respond to the
/// latent regime faster and with less noise than prices do, usdc_ supply
/// and issuance metrics carry a comparatively clean medium/long-horizon
/// signal — the paper's explanation for why USDC metrics encapsulate
/// "macro changes of the crypto market ... moving funds in and out".
/// `total_mcap` is the daily total crypto market capitalization.
///
/// `peg_deviation`, when non-null, holds one dollars-below-$1 value per
/// day (the depeg stress regime, see sim/stress.h): the internal USDC
/// price drops by it, redemptions shrink supply while it lasts, and two
/// extra columns — `usdc_PriceUSD` and `usdc_PegDevBps` — are emitted.
/// The columns exist ONLY under depeg stress so the baseline candidate
/// feature set (and the goldens built from it) is untouched; an all-zero
/// vector reproduces the unstressed metrics bitwise, minus those two
/// columns.
[[nodiscard]] Status AddUsdcOnChainMetrics(const LatentState& latent,
                             const std::vector<double>& total_mcap,
                             uint64_t seed, table::Table* out,
                             MetricCatalog* catalog,
                             const std::vector<double>* peg_deviation = nullptr);

}  // namespace fab::sim

#endif  // FAB_SIM_ONCHAIN_USDC_H_
