#include "sim/catalog.h"

namespace fab::sim {

const std::vector<DataCategory>& AllCategories() {
  // Intentionally leaked function-local singleton: avoids a destructor
  // running at unspecified shutdown order.  fablint:allow(hygiene-new-delete)
  static const std::vector<DataCategory>* kAll = new std::vector<DataCategory>{
      DataCategory::kMacro,      DataCategory::kTechnical,
      DataCategory::kSentiment,  DataCategory::kTradFi,
      DataCategory::kOnChainBtc, DataCategory::kOnChainUsdc,
      DataCategory::kOnChainEth,
  };
  return *kAll;
}

const char* CategoryName(DataCategory c) {
  switch (c) {
    case DataCategory::kMacro:
      return "Macroeconomic Indicators";
    case DataCategory::kTechnical:
      return "Technical Indicators";
    case DataCategory::kSentiment:
      return "Sentiment and Interest Metrics";
    case DataCategory::kTradFi:
      return "Traditional Market Indices";
    case DataCategory::kOnChainBtc:
      return "On-chain Metrics (BTC)";
    case DataCategory::kOnChainUsdc:
      return "On-chain Metrics (USDC)";
    case DataCategory::kOnChainEth:
      return "On-chain Metrics (ETH)";
  }
  return "Unknown";
}

const char* CategoryKey(DataCategory c) {
  switch (c) {
    case DataCategory::kMacro:
      return "macro";
    case DataCategory::kTechnical:
      return "technical";
    case DataCategory::kSentiment:
      return "sentiment";
    case DataCategory::kTradFi:
      return "tradfi";
    case DataCategory::kOnChainBtc:
      return "onchain_btc";
    case DataCategory::kOnChainUsdc:
      return "onchain_usdc";
    case DataCategory::kOnChainEth:
      return "onchain_eth";
  }
  return "unknown";
}

Result<DataCategory> CategoryFromKey(const std::string& key) {
  for (DataCategory c : AllCategories()) {
    if (key == CategoryKey(c)) return c;
  }
  return Status::NotFound("unknown category key: " + key);
}

Status MetricCatalog::Add(const std::string& name, DataCategory category,
                          const std::string& description) {
  if (by_name_.count(name) > 0) {
    return Status::AlreadyExists("metric already registered: " + name);
  }
  by_name_[name] = metrics_.size();
  metrics_.push_back(MetricInfo{name, category, description});
  return Status::OK();
}

Result<DataCategory> MetricCatalog::CategoryOf(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("metric not in catalog: " + name);
  }
  return metrics_[it->second].category;
}

size_t MetricCatalog::CountInCategory(DataCategory category) const {
  size_t n = 0;
  for (const auto& m : metrics_) n += (m.category == category);
  return n;
}

std::vector<std::string> MetricCatalog::NamesInCategory(
    DataCategory category) const {
  std::vector<std::string> out;
  for (const auto& m : metrics_) {
    if (m.category == category) out.push_back(m.name);
  }
  return out;
}

}  // namespace fab::sim
