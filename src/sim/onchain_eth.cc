#include "sim/onchain_eth.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "sim/onchain_btc.h"
#include "util/random.h"

namespace fab::sim {

Status AddEthOnChainMetrics(const LatentState& latent, uint64_t seed,
                            table::Table* out, MetricCatalog* catalog) {
  const size_t n = latent.num_days();
  if (out->num_rows() != n) {
    return Status::InvalidArgument("output table must share the latent index");
  }
  Rng obs(seed ^ 0xE7411ull);
  auto noisy = [&obs](double v, double sigma) {
    return v * std::exp(sigma * obs.Normal());
  };

  Status status = Status::OK();
  auto add = [&](const std::string& name, std::vector<double> values,
                 const std::string& desc) {
    if (!status.ok()) return;
    Status s = out->AddColumn(name, std::move(values));
    if (!s.ok()) {
      status = s;
      return;
    }
    status = catalog->Add(name, DataCategory::kOnChainEth, desc);
  };

  // --- Structural state. ------------------------------------------------------
  // ETH price: levered on BTC's moves plus a smart-contract adoption kicker.
  std::vector<double> price(n), supply(n), gas(n), tvl(n), staked(n);
  double log_p = std::log(8.0);  // mid-2016 level
  double sc_usage = 0.02;        // smart-contract usage curve in (0, 1)
  double eth_supply = 82e6;
  double tvl_level = 1e6;
  const Date burn_start(2021, 8, 5);   // fee burn activates
  const Date pos_merge(2022, 9, 15);   // issuance drops
  for (size_t t = 0; t < n; ++t) {
    const double btc_ret =
        t > 0 ? std::log(latent.btc_close[t] / latent.btc_close[t - 1]) : 0.0;
    const double dsc = 0.002 * sc_usage * (1.0 - sc_usage) *
                       (latent.regime[t] == Regime::kBull ? 2.2 : 1.0);
    sc_usage = std::clamp(sc_usage + dsc + 0.0004 * obs.Normal(), 0.01, 0.99);
    log_p += 1.25 * btc_ret + 1.5 * dsc + 0.012 * obs.Normal();
    price[t] = std::exp(log_p);

    // Congestion follows usage and market activity.
    gas[t] = noisy(3.0e9 + 9.5e10 * sc_usage *
                              (1.0 + 3.0 * std::fabs(btc_ret)),
                   0.06);
    // Supply: steady PoW issuance, burn after Aug 2021, ~90% cut at merge.
    double issuance = latent.dates[t] < pos_merge ? 13500.0 : 1800.0;
    double burn = latent.dates[t] >= burn_start
                      ? 9000.0 * sc_usage * (1.0 + 2.0 * std::fabs(btc_ret))
                      : 0.0;
    eth_supply += issuance - burn;
    supply[t] = noisy(eth_supply, 0.001);
    // DeFi TVL: usage × market level, crashes with the market.
    tvl_level += 0.08 * (sc_usage * price[t] * 2.2e5 - tvl_level);
    tvl[t] = noisy(std::max(1e6, tvl_level), 0.05);
    // Staked ETH ramps from Dec 2020.
    const double stake_age =
        std::max(0.0, static_cast<double>(latent.dates[t] - Date(2020, 12, 1)));
    staked[t] = noisy(1.0e6 + 28e6 * (1.0 - std::exp(-stake_age / 600.0)) *
                          (latent.dates[t] >= Date(2020, 12, 1) ? 1.0 : 0.0) +
                          1.0,
                      0.01);
  }

  add("eth_PriceUSD", price, "ETH close price");
  add("eth_SplyCur", supply, "current ETH supply");
  add("eth_GasUsedTot", gas, "total daily gas consumed");
  add("eth_DefiTvlUSD", tvl, "total value locked in DeFi (USD)");
  add("eth_SplyStaked", staked, "ETH staked in the beacon chain");

  // Derived families sharing the BTC wealth-model machinery.
  {
    std::vector<double> cap(n), tx(n), adr(n), fee(n), vel(n), cap_real(n);
    double real_price = price[0];
    for (size_t t = 0; t < n; ++t) {
      cap[t] = price[t] * supply[t];
      const double activity =
          0.01 + 0.15 * (gas[t] / 1e11);  // usage-driven turnover
      tx[t] = noisy(2.5e5 + 1.3e6 * (gas[t] / 1e11), 0.04);
      adr[t] = noisy(tx[t] * 0.55, 0.03);
      fee[t] = noisy(cap[t] * activity * activity * 20.0 + 1e4, 0.2);
      vel[t] = noisy(365.0 * activity, 0.02);
      real_price += std::clamp(activity, 5e-4, 0.03) * (price[t] - real_price);
      cap_real[t] = noisy(real_price * supply[t], 0.005);
    }
    add("eth_CapMrktCurUSD", std::move(cap), "ETH market capitalization");
    add("eth_TxCnt", std::move(tx), "daily ETH transactions");
    add("eth_AdrActCnt", std::move(adr), "daily active ETH addresses");
    add("eth_FeeTotUSD", std::move(fee), "total daily ETH fees (USD)");
    add("eth_VelCur1yr", std::move(vel), "ETH velocity (1yr)");
    add("eth_CapRealUSD", std::move(cap_real), "ETH realized capitalization");
  }

  // Balance buckets via the shared Pareto wealth model.
  {
    const double kThresholds[] = {0.01, 0.1, 1, 10, 100, 1e3, 1e4};
    for (double th : kThresholds) {
      std::vector<double> cnt(n), sply(n);
      for (size_t t = 0; t < n; ++t) {
        WealthModel w;
        w.num_addresses = 5e6 + 1.8e8 * std::pow(latent.adoption[t], 1.2);
        w.b_min = 1e-3;
        w.alpha = 0.52 - 0.05 * latent.adoption[t];
        w.b_scale = 30.0;
        w.gamma = 0.33 - 0.06 * latent.adoption[t];
        cnt[t] = noisy(w.CountAtLeast(th), 0.01);
        sply[t] = noisy(supply[t] * w.SupplyShareAtLeast(th), 0.008);
      }
      std::string label;
      if (th >= 1e3) {
        label = std::to_string(static_cast<long long>(th / 1e3)) + "K";
      } else if (th >= 1.0) {
        label = std::to_string(static_cast<long long>(th));
      } else {
        label = th >= 0.1 ? "0.1" : "0.01";
      }
      add("eth_AdrBalNtv" + label + "Cnt", std::move(cnt),
          "addresses holding at least " + label + " ETH");
      add("eth_SplyAdrBalNtv" + label, std::move(sply),
          "ETH held in addresses with balance >= " + label);
    }
  }

  return status;
}

}  // namespace fab::sim
