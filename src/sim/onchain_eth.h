#ifndef FAB_SIM_ONCHAIN_ETH_H_
#define FAB_SIM_ONCHAIN_ETH_H_

#include <cstdint>

#include "sim/catalog.h"
#include "sim/latent.h"
#include "table/table.h"
#include "util/status.h"

namespace fab::sim {

/// Generates an ETH-like on-chain metric family (eth_-prefixed names)
/// under `DataCategory::kOnChainEth` — the paper's "on-chain data
/// diversification" future-work item (a representative of the smart-
/// contract/DeFi segment).
///
/// The model adds two ETH-specific structural processes on top of the
/// shared latent state: a smart-contract usage curve (gas consumed, DeFi
/// value locked) that follows adoption with its own faster dynamics, and
/// a fee-burn mechanism active from Aug 2021 that couples supply growth
/// to congestion. Off by default in `MarketSimConfig` so the headline
/// reproduction matches the paper's BTC+USDC setup.
[[nodiscard]] Status AddEthOnChainMetrics(const LatentState& latent, uint64_t seed,
                            table::Table* out, MetricCatalog* catalog);

}  // namespace fab::sim

#endif  // FAB_SIM_ONCHAIN_ETH_H_
