#include "sim/tradfi.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "sim/macro.h"
#include "util/random.h"

namespace fab::sim {

Status AddTradFiMetrics(const LatentState& latent, uint64_t seed,
                        table::Table* out, MetricCatalog* catalog) {
  const size_t n = latent.num_days();
  if (out->num_rows() != n) {
    return Status::InvalidArgument("output table must share the latent index");
  }
  Rng rng(seed ^ 0x7adf1u);

  Status status = Status::OK();
  auto add = [&](const std::string& name, std::vector<double> values,
                 const std::string& desc) {
    if (!status.ok()) return;
    Status s = out->AddColumn(name, std::move(values));
    if (!s.ok()) {
      status = s;
      return;
    }
    status = catalog->Add(name, DataCategory::kTradFi, desc);
  };

  // Shared daily equity-factor shock (markets co-move).
  std::vector<double> equity_shock(n);
  for (size_t t = 0; t < n; ++t) equity_shock[t] = rng.Normal();

  // Equity indices: GBM with macro-driven drift + shared factor.
  struct Equity {
    const char* name;
    double p0;
    double beta_macro;   // drift sensitivity to the macro factor
    double beta_factor;  // loading on the shared daily shock
    double idio_sigma;
    const char* desc;
  };
  const Equity kEquities[] = {
      {"QQQ_Close", 108.0, 0.0011, 0.011, 0.004,
       "Nasdaq-100 tracker close"},
      {"SPY_Close", 210.0, 0.0009, 0.009, 0.003, "S&P 500 tracker close"},
      {"IWM_Close", 115.0, 0.0008, 0.010, 0.005, "Russell 2000 tracker close"},
      {"DIA_Close", 180.0, 0.0007, 0.008, 0.004, "Dow tracker close"},
      {"XLF_Close", 19.0, 0.0006, 0.009, 0.005, "financials sector close"},
  };
  for (const Equity& e : kEquities) {
    std::vector<double> v(n);
    double log_p = std::log(e.p0);
    for (size_t t = 0; t < n; ++t) {
      const double drift = 0.00030 + e.beta_macro * latent.macro_factor[t];
      log_p += drift + e.beta_factor * equity_shock[t] +
               e.idio_sigma * rng.Normal();
      v[t] = std::exp(log_p);
    }
    add(e.name, std::move(v), e.desc);
  }

  // Dollar strength (UUP) and EURUSD: inverse views of the macro factor —
  // loose global money weakens the dollar.
  {
    std::vector<double> uup(n), eurusd(n);
    double dollar = 0.0;  // latent log dollar-strength
    for (size_t t = 0; t < n; ++t) {
      dollar += 0.01 * (-0.25 * latent.macro_factor[t] - dollar) +
                0.0035 * rng.Normal();
      uup[t] = 24.5 * std::exp(dollar);
      eurusd[t] = 1.12 * std::exp(-0.9 * dollar + 0.002 * rng.Normal());
    }
    add("UUP_Close", std::move(uup), "US dollar index bullish fund close");
    add("EURUSD_Close", std::move(eurusd), "EUR/USD exchange rate");
  }

  // Bond ETFs: price inversely in the scripted policy-rate path, with
  // duration setting the sensitivity.
  struct Bond {
    const char* name;
    double p0;
    double duration;
    const char* desc;
  };
  const Bond kBonds[] = {
      {"BSV_Close", 80.0, 2.7, "short-term bond ETF close"},
      {"MBB_Close", 108.0, 6.0, "mortgage-backed securities ETF close"},
      {"TLT_Close", 130.0, 17.0, "20+ year treasury ETF close"},
  };
  const double rate0 = PolicyRateBackbone(latent.dates.front());
  for (const Bond& b : kBonds) {
    std::vector<double> v(n);
    double noise = 0.0;
    for (size_t t = 0; t < n; ++t) {
      const double rate = PolicyRateBackbone(latent.dates[t]);
      noise += 0.001 * rng.Normal() - 0.02 * noise;
      v[t] = b.p0 * std::exp(-b.duration * (rate - rate0) / 100.0 + noise);
    }
    add(b.name, std::move(v), b.desc);
  }

  // Gold: anti-real-rate asset.
  {
    std::vector<double> gld(n);
    double noise = 0.0;
    for (size_t t = 0; t < n; ++t) {
      const double real_rate = PolicyRateBackbone(latent.dates[t]) -
                               CpiYoYBackbone(latent.dates[t]);
      noise += 0.004 * rng.Normal() - 0.01 * noise;
      gld[t] = 125.0 * std::exp(-0.045 * real_rate + 0.08 + noise);
    }
    add("GLD_Close", std::move(gld), "gold trust close");
  }

  // VIX: baseline + macro stress + equity drawdown response.
  {
    std::vector<double> vix(n);
    double peak = 0.0;
    double log_eq = 0.0;
    for (size_t t = 0; t < n; ++t) {
      log_eq += 0.0003 + 0.011 * equity_shock[t];
      peak = std::max(peak, log_eq);
      const double dd = peak - log_eq;  // equity drawdown in log points
      const double stress = std::max(0.0, -latent.macro_factor[t]);
      vix[t] = std::clamp(13.0 + 90.0 * dd + 9.0 * stress +
                              1.5 * rng.Normal(),
                          9.0, 85.0);
    }
    add("VIX_Close", std::move(vix), "implied-volatility index close");
  }

  // Oil: own cycle plus inflation-era coupling.
  {
    std::vector<double> uso(n);
    double log_p = std::log(11.0);
    for (size_t t = 0; t < n; ++t) {
      const double drift = 0.0002 * (CpiYoYBackbone(latent.dates[t]) - 2.0);
      log_p += drift + 0.015 * rng.Normal();
      uso[t] = std::exp(log_p);
    }
    add("USO_Close", std::move(uso), "oil fund close");
  }

  return status;
}

}  // namespace fab::sim
