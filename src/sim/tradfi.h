#ifndef FAB_SIM_TRADFI_H_
#define FAB_SIM_TRADFI_H_

#include <cstdint>

#include "sim/catalog.h"
#include "sim/latent.h"
#include "table/table.h"
#include "util/status.h"

namespace fab::sim {

/// Generates traditional-market index closes (QQQ, SPY, UUP, EURUSD, BSV,
/// MBB, TLT, GLD, VIX, ...) under `DataCategory::kTradFi`.
///
/// Equity indices share a factor driven by the latent macro backbone;
/// dollar/euro gauges move inversely to it; bond ETFs price off the
/// scripted policy-rate path. Because crypto drift couples to the same
/// macro factor with a ~60-day lag, these indices carry long-horizon
/// information about the crypto market — the paper's explanation for
/// their rising contribution at 90/180-day windows.
[[nodiscard]] Status AddTradFiMetrics(const LatentState& latent, uint64_t seed,
                        table::Table* out, MetricCatalog* catalog);

}  // namespace fab::sim

#endif  // FAB_SIM_TRADFI_H_
