#include "sim/market_sim.h"

#include <string>
#include <utility>
#include <vector>

#include "sim/macro.h"
#include "sim/onchain_btc.h"
#include "sim/onchain_eth.h"
#include "sim/onchain_usdc.h"
#include "sim/sentiment.h"
#include "sim/tradfi.h"

namespace fab::sim {

Result<SimulatedMarket> SimulateMarket(const MarketSimConfig& config) {
  LatentConfig latent_cfg = config.latent;
  latent_cfg.seed = config.seed;
  AssetUniverseConfig asset_cfg = config.assets;
  asset_cfg.seed = config.seed ^ 0xA55E75ull;

  // All stress randomness hangs off one derived master; the injectors
  // split it further per regime (sim/stress.cc salts).
  const uint64_t stress_seed = config.seed ^ 0x57e55ull;

  SimulatedMarket market;
  FAB_ASSIGN_OR_RETURN(market.latent, GenerateLatentState(latent_cfg));
  // Latent-path injectors run before every derived generator so crash
  // and outage shocks propagate into the panel, on-chain activity and
  // sentiment exactly like organic price moves would.
  FAB_RETURN_IF_ERROR(
      ApplyLatentStress(config.stress, stress_seed, &market.latent));

  std::vector<double> churn_mult;
  const std::vector<double>* churn_ptr = nullptr;
  if (config.stress.rank_churn.enabled) {
    churn_mult = RankChurnSigmaMultipliers(config.stress.rank_churn,
                                           market.latent.dates);
    churn_ptr = &churn_mult;
  }
  FAB_ASSIGN_OR_RETURN(market.panel,
                       GenerateAssetPanel(market.latent, asset_cfg, churn_ptr));

  FAB_ASSIGN_OR_RETURN(market.metrics,
                       table::Table::Create(market.latent.dates));

  // Raw BTC market data: the basis for the technical-indicator family.
  FAB_RETURN_IF_ERROR(
      market.metrics.AddColumn(kBtcOpenColumn, market.latent.btc_open));
  FAB_RETURN_IF_ERROR(
      market.metrics.AddColumn(kBtcHighColumn, market.latent.btc_high));
  FAB_RETURN_IF_ERROR(
      market.metrics.AddColumn(kBtcLowColumn, market.latent.btc_low));
  FAB_RETURN_IF_ERROR(
      market.metrics.AddColumn(kBtcCloseColumn, market.latent.btc_close));
  FAB_RETURN_IF_ERROR(
      market.metrics.AddColumn(kBtcVolumeColumn, market.latent.btc_volume_usd));
  FAB_RETURN_IF_ERROR(market.catalog.Add(kBtcOpenColumn,
                                         DataCategory::kTechnical,
                                         "BTC daily open price"));
  FAB_RETURN_IF_ERROR(market.catalog.Add(kBtcHighColumn,
                                         DataCategory::kTechnical,
                                         "BTC daily high price"));
  FAB_RETURN_IF_ERROR(market.catalog.Add(
      kBtcLowColumn, DataCategory::kTechnical, "BTC daily low price"));
  FAB_RETURN_IF_ERROR(market.catalog.Add(
      kBtcCloseColumn, DataCategory::kTechnical, "BTC daily close price"));
  FAB_RETURN_IF_ERROR(market.catalog.Add(kBtcVolumeColumn,
                                         DataCategory::kTechnical,
                                         "BTC daily dollar volume"));

  FAB_RETURN_IF_ERROR(AddBtcOnChainMetrics(market.latent, market.panel,
                                           config.seed ^ 0x0Cb7cull,
                                           &market.metrics, &market.catalog));
  {
    std::vector<double> total_mcap(market.latent.num_days());
    for (size_t t = 0; t < total_mcap.size(); ++t) {
      total_mcap[t] = market.panel.TotalSum(t);
    }
    std::vector<double> peg_dev;
    const std::vector<double>* peg_ptr = nullptr;
    if (config.stress.depeg.enabled) {
      peg_dev =
          UsdcPegDeviation(config.stress.depeg, stress_seed, market.latent);
      peg_ptr = &peg_dev;
    }
    FAB_RETURN_IF_ERROR(AddUsdcOnChainMetrics(market.latent, total_mcap,
                                              config.seed ^ 0x0C05dull,
                                              &market.metrics,
                                              &market.catalog, peg_ptr));
  }
  if (config.include_eth) {
    FAB_RETURN_IF_ERROR(AddEthOnChainMetrics(market.latent,
                                             config.seed ^ 0x0E74ull,
                                             &market.metrics,
                                             &market.catalog));
  }
  FAB_RETURN_IF_ERROR(AddSentimentMetrics(market.latent,
                                          config.seed ^ 0x5E47cull,
                                          &market.metrics, &market.catalog));
  FAB_RETURN_IF_ERROR(AddTradFiMetrics(market.latent, config.seed ^ 0x76ad1ull,
                                       &market.metrics, &market.catalog));
  FAB_RETURN_IF_ERROR(AddMacroMetrics(market.latent, config.seed ^ 0x3ac60ull,
                                      &market.metrics, &market.catalog));

  // Exchange outage, observable side: the sentiment feeds go dark over
  // the same windows the OHLCV feed was frozen (the null cells then run
  // the cleaning/interpolation gauntlet in DatasetBuilder).
  if (config.stress.outage.enabled) {
    const auto windows = OutageWindows(config.stress.outage, stress_seed,
                                       market.latent.num_days());
    for (const std::string& name :
         market.catalog.NamesInCategory(DataCategory::kSentiment)) {
      FAB_ASSIGN_OR_RETURN(table::Column * col,
                           market.metrics.GetMutableColumn(name));
      for (const auto& [start, end] : windows) {
        for (size_t t = start; t < end; ++t) col->SetNull(t);
      }
    }
  }

  const size_t n = market.latent.num_days();
  market.top100_mcap_sum.resize(n);
  market.total_mcap_sum.resize(n);
  for (size_t t = 0; t < n; ++t) {
    market.top100_mcap_sum[t] = market.panel.TopKSum(t, 100);
    market.total_mcap_sum[t] = market.panel.TotalSum(t);
  }
  return market;
}

}  // namespace fab::sim
