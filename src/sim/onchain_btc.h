#ifndef FAB_SIM_ONCHAIN_BTC_H_
#define FAB_SIM_ONCHAIN_BTC_H_

#include <cstdint>

#include "sim/assets.h"
#include "sim/catalog.h"
#include "sim/latent.h"
#include "table/table.h"
#include "util/status.h"

namespace fab::sim {

/// Generates the BTC on-chain metric family (Coinmetrics-style names) into
/// `out`, registering every column in `catalog` under
/// `DataCategory::kOnChainBtc`.
///
/// The generator models the chain with a small set of slow structural
/// processes — a Pareto address-wealth distribution whose tail index
/// drifts with adoption, a turnover process tied to the micro-regime, a
/// hash-rate that follows smoothed price with a long lag, and the
/// deterministic issuance schedule — and derives ~100 named metrics from
/// them with small observation noise. Balance-bucket metrics therefore
/// carry low-noise views of the latent adoption/concentration state (the
/// long-horizon signal the paper attributes to supply dynamics), while
/// activity metrics track the regime at medium frequency.
///
/// `out` must already have the latent date index and no conflicting
/// columns.
[[nodiscard]] Status AddBtcOnChainMetrics(const LatentState& latent, const AssetPanel& panel,
                            uint64_t seed, table::Table* out,
                            MetricCatalog* catalog);

/// The address-wealth model shared by the BTC and USDC generators; exposed
/// for unit tests.
///
/// Counts: the number of addresses with balance >= b native units is
/// `num_addresses * (b / b_min)^(-alpha)` (clamped to the total).
/// Supply: the share of supply held by addresses with balance >= b is
/// `(1 + b / b_scale)^(-gamma)`.
struct WealthModel {
  double num_addresses = 0.0;
  double b_min = 1e-4;     ///< smallest tracked balance (native units)
  double alpha = 0.55;     ///< count tail index
  double b_scale = 2.0;    ///< supply-share scale (native units)
  double gamma = 0.35;     ///< supply-share tail index

  /// Addresses holding at least `b` native units.
  double CountAtLeast(double b) const;

  /// Fraction of total supply held by addresses with balance >= b.
  double SupplyShareAtLeast(double b) const;
};

}  // namespace fab::sim

#endif  // FAB_SIM_ONCHAIN_BTC_H_
