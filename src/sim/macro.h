#ifndef FAB_SIM_MACRO_H_
#define FAB_SIM_MACRO_H_

#include <cstdint>

#include "sim/catalog.h"
#include "sim/latent.h"
#include "table/table.h"
#include "util/status.h"

namespace fab::sim {

/// Generates macroeconomic indicator series (policy rates, CPI inflation,
/// policy-uncertainty indices, unemployment, money supply, treasury
/// yields) under `DataCategory::kMacro`.
///
/// Most series are monthly step functions with small revisions — slow,
/// delayed views of the same macro backbone that feeds crypto drift
/// through a ~60-day smoothing, so their predictive value only shows up
/// at long horizons (the paper's Figure-3 pattern).
[[nodiscard]] Status AddMacroMetrics(const LatentState& latent, uint64_t seed,
                       table::Table* out, MetricCatalog* catalog);

/// Scripted US policy-rate backbone (annual %, monthly granularity) —
/// exposed for tests.
double PolicyRateBackbone(Date d);

/// Scripted US CPI year-over-year backbone (%) — exposed for tests.
double CpiYoYBackbone(Date d);

}  // namespace fab::sim

#endif  // FAB_SIM_MACRO_H_
