#include "sim/latent.h"

#include <algorithm>
#include <cmath>

#include "util/random.h"

namespace fab::sim {

int LatentState::FindDay(Date d) const {
  if (dates.empty() || d < dates.front() || d > dates.back()) return -1;
  return static_cast<int>(d - dates.front());
}

double EraDrift(Date d) {
  // Piecewise log-drift backbone (log points/day) chosen so the integrated
  // path reproduces the familiar 2016–2023 BTC cycle shape:
  //   2016H2 slow climb, 2017 bull, 2018 bear, 2019H1 recovery, 2019H2
  //   fade, 2020 covid crash + recovery, 2020H2–2021Q1 bull, 2021Q2 dip,
  //   2021Q4 double top, 2022 bear, 2023H1 recovery.
  struct Era {
    Date until;
    double drift;
  };
  static const Era kEras[] = {
      {Date(2016, 12, 31), 0.0012},   // slow climb into 2017
      {Date(2017, 5, 31), 0.0058},    // early 2017 bull
      {Date(2017, 12, 17), 0.0092},   // parabolic run to ~19k
      {Date(2018, 3, 31), -0.0085},   // crash phase 1
      {Date(2018, 10, 31), -0.0026},  // grind down
      {Date(2018, 12, 15), -0.0095},  // capitulation to ~3.2k
      {Date(2019, 6, 30), 0.0062},    // 2019 recovery to ~13k
      {Date(2019, 12, 31), -0.0028},  // fade to ~7k
      {Date(2020, 3, 15), -0.0065},   // covid crash
      {Date(2020, 9, 30), 0.0040},    // v-shaped recovery
      {Date(2021, 4, 14), 0.0058},    // bull to ~64k
      {Date(2021, 7, 20), -0.0062},   // china-ban dip to ~30k
      {Date(2021, 11, 10), 0.0052},   // second top ~69k
      {Date(2022, 6, 18), -0.0058},   // luna/3ac bear to ~18k
      {Date(2022, 11, 21), -0.0012},  // ftx slide to ~16k
      {Date(2023, 6, 30), 0.0048},    // 2023H1 recovery to ~30k
  };
  for (const Era& era : kEras) {
    if (d <= era.until) return era.drift;
  }
  return 0.001;
}

namespace {

double SigmaFor(const LatentConfig& cfg, Regime r) {
  switch (r) {
    case Regime::kBear:
      return cfg.sigma_bear;
    case Regime::kNeutral:
      return cfg.sigma_neutral;
    case Regime::kBull:
      return cfg.sigma_bull;
  }
  return cfg.sigma_neutral;
}

double DriftFor(const LatentConfig& cfg, Regime r) {
  switch (r) {
    case Regime::kBear:
      return cfg.drift_bear;
    case Regime::kNeutral:
      return cfg.drift_neutral;
    case Regime::kBull:
      return cfg.drift_bull;
  }
  return 0.0;
}

/// Macro factor backbone: eras of loose/tight global conditions. Positive
/// = supportive (low rates / QE), negative = tightening.
double MacroBackbone(Date d) {
  struct Era {
    Date until;
    double level;
  };
  static const Era kEras[] = {
      {Date(2018, 9, 30), 0.45},    // easy money
      {Date(2019, 7, 31), 0.05},    // mild tightening then pause
      {Date(2020, 2, 29), 0.25},    // easing resumes
      {Date(2020, 4, 15), -0.80},   // covid shock
      {Date(2021, 11, 30), 1.00},   // extraordinary stimulus
      {Date(2022, 12, 31), -0.95},  // inflation fight, fast hikes
      {Date(2023, 6, 30), -0.35},   // late-cycle, hikes slowing
  };
  for (const Era& era : kEras) {
    if (d <= era.until) return era.level;
  }
  return 0.0;
}

}  // namespace

Result<LatentState> GenerateLatentState(const LatentConfig& config) {
  if (!(config.start < config.end)) {
    return Status::InvalidArgument("latent config: start must precede end");
  }
  if (config.btc_price0 <= 0.0) {
    return Status::InvalidArgument("latent config: btc_price0 must be > 0");
  }
  LatentState s;
  s.dates = DailyRange(config.start, config.end);
  const size_t n = s.dates.size();
  s.macro_factor.resize(n);
  s.macro_smooth.resize(n);
  s.era_drift.resize(n);
  s.regime.resize(n);
  s.adoption.resize(n);
  s.flows.resize(n);
  s.btc_open.resize(n);
  s.btc_high.resize(n);
  s.btc_low.resize(n);
  s.btc_close.resize(n);
  s.btc_volume_usd.resize(n);
  s.btc_sigma.resize(n);

  Rng macro_rng(config.seed ^ 0x11d5c1u);
  Rng regime_rng(config.seed ^ 0x22e6f2u);
  Rng price_rng(config.seed ^ 0x33f703u);
  Rng flow_rng(config.seed ^ 0x44a814u);

  // --- Macro factor: slow mean reversion towards a scripted backbone. ---
  double m = MacroBackbone(s.dates.front());
  double m_smooth = m;
  for (size_t t = 0; t < n; ++t) {
    const double target = MacroBackbone(s.dates[t]);
    m += 0.02 * (target - m) + 0.012 * macro_rng.Normal();
    m = std::clamp(m, -1.5, 1.5);
    // ~60-day exponential smoothing: the lag with which macro conditions
    // permeate crypto drift (paper: "delayed effect of economic policies").
    m_smooth += (m - m_smooth) / 60.0;
    s.macro_factor[t] = m;
    s.macro_smooth[t] = m_smooth;
  }

  // --- Era drift + Markov micro-regimes. ---
  // Transition persistence gives trends of a few weeks; macro tilts the
  // stationary distribution (tight money -> more bear days).
  Regime r = Regime::kNeutral;
  for (size_t t = 0; t < n; ++t) {
    s.era_drift[t] = EraDrift(s.dates[t]);
    const double macro_tilt = 0.10 * s.macro_factor[t];  // in [-0.15, 0.15]
    if (regime_rng.Bernoulli(1.0 / 18.0)) {              // switch every ~18d
      const double u = regime_rng.Uniform();
      const double p_bull = std::clamp(0.33 + macro_tilt, 0.05, 0.9);
      const double p_bear = std::clamp(0.33 - macro_tilt, 0.05, 0.9);
      if (u < p_bull) {
        r = Regime::kBull;
      } else if (u < p_bull + p_bear) {
        r = Regime::kBear;
      } else {
        r = Regime::kNeutral;
      }
    }
    s.regime[t] = r;
  }

  // --- Adoption: logistic growth, accelerated in bull micro-regimes. ---
  double a = 0.08;
  for (size_t t = 0; t < n; ++t) {
    const double regime_boost =
        s.regime[t] == Regime::kBull ? 1.8 : (s.regime[t] == Regime::kBear ? 0.4 : 1.0);
    const double k = 0.0012 * regime_boost;
    a += k * a * (1.0 - a) + 0.0003 * macro_rng.Normal();
    a = std::clamp(a, 0.01, 0.995);
    s.adoption[t] = a;
  }

  // --- Investor flows: respond to regime/era with a ~5-day lag, scaled by
  // macro conditions. Stablecoin metrics will integrate these. ---
  double f = 0.0;
  for (size_t t = 0; t < n; ++t) {
    const double regime_signal =
        DriftFor(config, s.regime[t]) + 0.6 * s.era_drift[t] +
        0.002 * s.macro_smooth[t];
    // 5-day partial adjustment towards the regime-implied flow level.
    f += 0.2 * (regime_signal * 900.0 - f) + 1.4 * flow_rng.Normal();
    s.flows[t] = f;
  }

  // --- BTC price: era drift + micro-regime + macro + adoption + t-shocks
  // and occasional jumps; vol follows the micro-regime with GARCH-ish
  // clustering. ---
  double log_p = std::log(config.btc_price0);
  double sigma = config.sigma_neutral;
  for (size_t t = 0; t < n; ++t) {
    const double sigma_target = SigmaFor(config, s.regime[t]);
    sigma += 0.08 * (sigma_target - sigma);
    const double da = t > 0 ? s.adoption[t] - s.adoption[t - 1] : 0.0;
    const double drift = config.drift_offset + s.era_drift[t] +
                         0.12 * DriftFor(config, s.regime[t]) +
                         config.macro_beta * s.macro_smooth[t] +
                         config.adoption_beta * da;
    double shock = sigma * price_rng.StudentT(config.shock_dof) /
                   std::sqrt(config.shock_dof / (config.shock_dof - 2.0));
    if (price_rng.Bernoulli(config.jump_intensity)) {
      const double sign = price_rng.Bernoulli(0.45) ? 1.0 : -1.0;
      shock += sign * config.jump_scale * (0.5 + price_rng.Uniform());
    }
    shock = std::clamp(shock, -0.35, 0.35);
    const double open = std::exp(log_p);
    log_p += drift + shock;
    const double close = std::exp(log_p);
    // Intraday range proportional to the day's volatility.
    const double hi_ext = std::fabs(price_rng.Normal(0.0, 0.5 * sigma));
    const double lo_ext = std::fabs(price_rng.Normal(0.0, 0.5 * sigma));
    s.btc_open[t] = open;
    s.btc_close[t] = close;
    s.btc_high[t] = std::max(open, close) * std::exp(hi_ext);
    s.btc_low[t] = std::min(open, close) * std::exp(-lo_ext);
    s.btc_sigma[t] = sigma;
    // Dollar volume scales with market size, activity and daily range.
    const double turnover =
        0.02 + 0.9 * std::fabs(shock) + 0.15 * s.adoption[t];
    s.btc_volume_usd[t] =
        close * 19.0e6 * s.adoption[t] * turnover *
        std::exp(0.25 * price_rng.Normal());
  }

  return s;
}

}  // namespace fab::sim
