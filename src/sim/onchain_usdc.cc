#include "sim/onchain_usdc.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "sim/onchain_btc.h"
#include "util/random.h"

namespace fab::sim {

Date UsdcLaunchDate() { return Date(2018, 10, 1); }

namespace {

std::string ThresholdLabel(double v) {
  if (v >= 1e9) return std::to_string(static_cast<long long>(v / 1e9)) + "B";
  if (v >= 1e6) return std::to_string(static_cast<long long>(v / 1e6)) + "M";
  if (v >= 1e3) return std::to_string(static_cast<long long>(v / 1e3)) + "K";
  return std::to_string(static_cast<long long>(v));
}

/// Appends a column that is null before `first_valid` and holds
/// `values[t]` afterwards.
struct UsdcSink {
  table::Table* out;
  MetricCatalog* catalog;
  size_t first_valid;
  Status status = Status::OK();

  void Add(const std::string& name, const std::vector<double>& values,
           const std::string& description) {
    if (!status.ok()) return;
    table::Column col(values.size());
    for (size_t t = first_valid; t < values.size(); ++t) col.Set(t, values[t]);
    Status s = out->AddColumn(name, std::move(col));
    if (!s.ok()) {
      status = s;
      return;
    }
    status = catalog->Add(name, DataCategory::kOnChainUsdc, description);
  }
};

}  // namespace

Status AddUsdcOnChainMetrics(const LatentState& latent,
                             const std::vector<double>& total_mcap,
                             uint64_t seed, table::Table* out,
                             MetricCatalog* catalog,
                             const std::vector<double>* peg_deviation) {
  const size_t n = latent.num_days();
  if (out->num_rows() != n || total_mcap.size() != n) {
    return Status::InvalidArgument("output table must share the latent index");
  }
  if (peg_deviation != nullptr && peg_deviation->size() != n) {
    return Status::InvalidArgument(
        "peg_deviation must hold one value per latent day");
  }
  const int launch_row = latent.FindDay(UsdcLaunchDate());
  if (launch_row < 0) {
    return Status::FailedPrecondition(
        "simulation window does not contain the USDC launch date");
  }
  const size_t first = static_cast<size_t>(launch_row);

  Rng obs(seed ^ 0x05DCu);
  auto noisy = [&obs](double v, double sigma) {
    return v * std::exp(sigma * obs.Normal());
  };
  // Per-bucket idiosyncratic wobbles (see onchain_btc.cc).
  Rng wobble_rng(seed ^ 0x05DC0Bull);
  auto make_wobble = [&wobble_rng](size_t days) {
    std::vector<double> w(days);
    double v = 0.0;
    for (size_t t = 0; t < days; ++t) {
      v = 0.985 * v + 0.006 * wobble_rng.Normal();
      w[t] = std::exp(v);
    }
    return w;
  };

  // ---- Structural state: supply integrates flows; holders grow with
  // adoption; turnover is high (stablecoins are the market's settlement
  // rail). -------------------------------------------------------------------
  std::vector<double> supply(n, 0.0), issuance(n, 0.0), holders(n, 0.0),
      turnover(n, 0.0), turn_smooth(n, 0.0), price(n, 1.0);
  double s = 2.5e7;
  const double a0 = latent.adoption[first];
  for (size_t t = first; t < n; ++t) {
    // Supply chases settlement demand (a fixed share of total market cap,
    // with a ~100-day adjustment) and mint/redeem responds to investor
    // flows on top; scale chosen so supply peaks in the tens of billions
    // like the real USDC.
    const double demand = 0.045 * total_mcap[t];
    double net = 0.012 * (demand - s) + latent.flows[t] * 1.6e6;
    if (peg_deviation != nullptr) {
      // A broken peg triggers a redemption run proportional to how far
      // below $1 the coin trades (zero deviation leaves `net` bitwise
      // unchanged: x - 0.0 == x).
      net -= (*peg_deviation)[t] * s * 0.10;
    }
    issuance[t] = net;
    s = std::max(2.0e7, s + net);
    supply[t] = noisy(s, 0.002);
    holders[t] =
        noisy(1.6e5 + 2.6e6 * std::max(0.0, latent.adoption[t] - a0), 0.008);
    const double ret =
        t > 0 ? std::log(latent.btc_close[t] / latent.btc_close[t - 1]) : 0.0;
    const double regime_mult =
        latent.regime[t] == Regime::kBull
            ? 1.5
            : (latent.regime[t] == Regime::kBear ? 1.3 : 1.0);
    turnover[t] = noisy(0.045 * regime_mult * (1.0 + 4.0 * std::fabs(ret)), 0.08);
    turn_smooth[t] = t == first
                         ? turnover[t]
                         : turn_smooth[t - 1] +
                               (turnover[t] - turn_smooth[t - 1]) / 30.0;
    // Peg wobble of a few basis points; under depeg stress the price
    // additionally trades below $1 by the injected deviation.
    price[t] = 1.0 + 0.0015 * obs.Normal();
    if (peg_deviation != nullptr) price[t] -= (*peg_deviation)[t];
  }

  UsdcSink sink{out, catalog, first};

  // Smoothed flows: the institutional signal that differentiates
  // large-holder buckets from retail ones.
  std::vector<double> flows_smooth(n, 0.0);
  for (size_t t = first; t < n; ++t) {
    flows_smooth[t] = t == first ? latent.flows[t]
                                 : flows_smooth[t - 1] +
                                       (latent.flows[t] - flows_smooth[t - 1]) /
                                           10.0;
  }

  // ---- Wealth-bucket families. ---------------------------------------------
  auto wealth_at = [&](size_t t) {
    WealthModel w;
    w.num_addresses = holders[t];
    w.b_min = 1.0;       // 1 USDC
    w.alpha = 0.50 - 0.05 * latent.adoption[t];
    w.b_scale = 2.5e3;   // supply concentrated in exchange/treasury wallets
    w.gamma = 0.30 - 0.05 * latent.adoption[t];
    return w;
  };

  const double kThresholds[] = {1, 10, 100, 1e3, 1e4, 1e5, 1e6, 1e7};
  const size_t kNumThresholds = 8;
  size_t th_index = 0;
  for (double th : kThresholds) {
    std::vector<double> cnt(n, 0.0), sply(n, 0.0), cnt_usd(n, 0.0),
        sply_usd(n, 0.0);
    const std::vector<double> wob_cnt = make_wobble(n);
    const std::vector<double> wob_sply = make_wobble(n);
    // Whale buckets follow institutional flows, retail buckets follow
    // adoption: heterogeneous information, not redundant copies.
    const double tilt =
        static_cast<double>(th_index) / (kNumThresholds - 1.0) - 0.5;
    ++th_index;
    for (size_t t = first; t < n; ++t) {
      const WealthModel w = wealth_at(t);
      const double info =
          std::exp(0.012 * tilt * flows_smooth[t] +
                   0.8 * (-tilt) * (latent.adoption[t] - a0));
      cnt[t] = noisy(w.CountAtLeast(th) * wob_cnt[t] * info, 0.01);
      sply[t] = noisy(supply[t] * w.SupplyShareAtLeast(th) * wob_sply[t] * info,
                      0.008);
      // USD thresholds differ from native only through the peg wobble.
      const double b = th / price[t];
      cnt_usd[t] = noisy(w.CountAtLeast(b) * wob_cnt[t] * info, 0.01);
      sply_usd[t] =
          noisy(supply[t] * w.SupplyShareAtLeast(b) * wob_sply[t] * info, 0.008);
    }
    const std::string label = ThresholdLabel(th);
    sink.Add("usdc_AdrBalNtv" + label + "Cnt", cnt,
             "addresses holding at least " + label + " USDC");
    sink.Add("usdc_SplyAdrBalNtv" + label, sply,
             "USDC held in addresses with balance >= " + label);
    sink.Add("usdc_AdrBalUSD" + label + "Cnt", cnt_usd,
             "addresses holding at least $" + label + " of USDC");
    sink.Add("usdc_SplyAdrBalUSD" + label, sply_usd,
             "USDC held in addresses with balance >= $" + label);
  }
  const double kFracDenoms[] = {1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10};
  size_t denom_index = 0;
  for (double denom : kFracDenoms) {
    std::vector<double> cnt(n, 0.0), sply(n, 0.0);
    const std::vector<double> wob_cnt = make_wobble(n);
    const std::vector<double> wob_sply = make_wobble(n);
    const double tilt = 0.5 - static_cast<double>(denom_index) / 7.0;
    ++denom_index;
    for (size_t t = first; t < n; ++t) {
      const WealthModel w = wealth_at(t);
      const double b = supply[t] / denom;
      const double info = std::exp(0.012 * tilt * flows_smooth[t]);
      cnt[t] = noisy(w.CountAtLeast(b) * wob_cnt[t] * info, 0.01);
      sply[t] =
          noisy(supply[t] * w.SupplyShareAtLeast(b) * wob_sply[t] * info, 0.008);
    }
    const std::string label = ThresholdLabel(denom);
    sink.Add("usdc_AdrBal1in" + label + "Cnt", cnt,
             "addresses holding >= 1/" + label + " of USDC supply");
    sink.Add("usdc_SplyAdrBal1in" + label, sply,
             "USDC held by addresses with >= 1/" + label + " of supply");
  }

  // ---- Supply, activity, flows. ---------------------------------------------
  {
    std::vector<double> sply_cur(n, 0.0), act_ever(n, 0.0), act_pct(n, 0.0),
        vel(n, 0.0), iss(n, 0.0), ser(n, 0.0);
    const int kActDays[] = {7, 30, 90, 180, 365, 730, 1095};
    const char* kActNames[] = {"usdc_SplyAct7d",  "usdc_SplyAct30d",
                               "usdc_SplyAct90d", "usdc_SplyAct180d",
                               "usdc_SplyAct1yr", "usdc_SplyAct2yr",
                               "usdc_SplyAct3yr"};
    std::vector<std::vector<double>> act(7, std::vector<double>(n, 0.0));
    for (size_t t = first; t < n; ++t) {
      const double lambda = std::clamp(turn_smooth[t], 0.005, 0.4);
      sply_cur[t] = supply[t];
      act_ever[t] = noisy(supply[t] * 0.985, 0.002);
      for (int k = 0; k < 7; ++k) {
        // Cap the window by the coin's age.
        const double age = static_cast<double>(t - first + 1);
        const double days = std::min(static_cast<double>(kActDays[k]), age);
        act[static_cast<size_t>(k)][t] =
            noisy(supply[t] * (1.0 - std::exp(-lambda * days)), 0.01);
      }
      act_pct[t] = 100.0 * (1.0 - std::exp(-lambda * 365.0)) *
                   std::exp(0.008 * obs.Normal());
      vel[t] = noisy(365.0 * turn_smooth[t], 0.012);
      iss[t] = issuance[t];
      const WealthModel w = wealth_at(t);
      const double b_top1 = w.b_min * std::pow(0.01, -1.0 / w.alpha);
      const double share_top1 = w.SupplyShareAtLeast(b_top1);
      const double share_small =
          1.0 - w.SupplyShareAtLeast(supply[t] * 1e-7);
      ser[t] = noisy(share_small / share_top1, 0.015);
    }
    sink.Add("usdc_SplyCur", sply_cur, "current USDC supply");
    sink.Add("usdc_SplyActEver", act_ever, "USDC ever active");
    for (int k = 0; k < 7; ++k) {
      sink.Add(kActNames[k], act[static_cast<size_t>(k)],
               "USDC active in the trailing window");
    }
    sink.Add("usdc_SplyActPct1yr", act_pct,
             "% of USDC supply active in the trailing year");
    sink.Add("usdc_VelCur1yr", vel, "USDC velocity (1yr)");
    sink.Add("usdc_IssContNtv", iss, "daily net USDC issuance (mint-redeem)");
    sink.Add("usdc_SER", ser, "USDC supply equality ratio");
  }

  // ---- Capitalization & transactions. ----------------------------------------
  {
    std::vector<double> cap(n, 0.0), cap_ff(n, 0.0), cap_act(n, 0.0),
        tx_cnt(n, 0.0), tfr_val(n, 0.0), tfr_mean(n, 0.0), adr_act(n, 0.0);
    for (size_t t = first; t < n; ++t) {
      cap[t] = supply[t] * price[t];
      cap_ff[t] = noisy(cap[t] * 0.96, 0.003);
      const double lambda = std::clamp(turn_smooth[t], 0.005, 0.4);
      cap_act[t] = noisy(cap[t] * (1.0 - std::exp(-lambda * 365.0)), 0.006);
      adr_act[t] = noisy(holders[t] * std::clamp(turn_smooth[t], 0.01, 0.3),
                         0.02);
      tx_cnt[t] = noisy(adr_act[t] * 3.0, 0.015);
      tfr_val[t] = noisy(supply[t] * turnover[t], 0.025);
      tfr_mean[t] = tfr_val[t] / tx_cnt[t];
    }
    sink.Add("usdc_CapMrktCurUSD", cap, "USDC market capitalization");
    sink.Add("usdc_CapMrktFFUSD", cap_ff, "USDC free-float capitalization");
    sink.Add("usdc_CapAct1yrUSD", cap_act,
             "USD value of USDC active in the last year");
    sink.Add("usdc_AdrActCnt", adr_act, "daily active USDC addresses");
    sink.Add("usdc_TxCnt", tx_cnt, "daily USDC transaction count");
    sink.Add("usdc_TxTfrValAdjUSD", tfr_val, "USDC adjusted transfer value");
    sink.Add("usdc_TxTfrValMeanUSD", tfr_mean, "mean USDC transfer value");
  }

  // ---- Peg columns (depeg stress regime only). -------------------------------
  // Emitted only when a peg-deviation path was injected, so the baseline
  // candidate feature set — and every golden derived from it — never
  // changes shape.
  if (peg_deviation != nullptr) {
    std::vector<double> peg_bps(n, 0.0);
    for (size_t t = first; t < n; ++t) {
      peg_bps[t] = 1e4 * (1.0 - price[t]);
    }
    sink.Add("usdc_PriceUSD", price, "USDC market price (USD)");
    sink.Add("usdc_PegDevBps", peg_bps,
             "USDC peg deviation (basis points below $1)");
  }

  return sink.status;
}

}  // namespace fab::sim
