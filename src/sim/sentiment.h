#ifndef FAB_SIM_SENTIMENT_H_
#define FAB_SIM_SENTIMENT_H_

#include <cstdint>

#include "sim/catalog.h"
#include "sim/latent.h"
#include "table/table.h"
#include "util/date.h"
#include "util/status.h"

namespace fab::sim {

/// First date of the simulated fear-and-greed index (the real one launched
/// in Feb 2018, another reason the paper's 2019 subset exists).
Date FearGreedStartDate();

/// Generates sentiment and interest metrics (fear/greed, Google-trends
/// style monthly search volumes, social-media volume and sentiment splits)
/// under `DataCategory::kSentiment`.
///
/// Sentiment observes the current micro-regime and recent returns through
/// heavy, fast-reverting noise: informative about immediate market
/// reactions, useless at long horizons — the paper's observed pattern.
/// Monthly search-volume series are step functions (one value per month).
[[nodiscard]] Status AddSentimentMetrics(const LatentState& latent, uint64_t seed,
                           table::Table* out, MetricCatalog* catalog);

}  // namespace fab::sim

#endif  // FAB_SIM_SENTIMENT_H_
