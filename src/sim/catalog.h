#ifndef FAB_SIM_CATALOG_H_
#define FAB_SIM_CATALOG_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace fab::sim {

/// The paper's data-source categories (Section 2.2), with BTC and USDC
/// on-chain metrics tracked as separate subcategories (Section 3.1.2).
enum class DataCategory {
  kMacro = 0,
  kTechnical,
  kSentiment,
  kTradFi,
  kOnChainBtc,
  kOnChainUsdc,
  /// Extension category (paper future work): an ETH-like DeFi
  /// representative. Off by default in the simulation config.
  kOnChainEth,
};

/// All categories, in a stable display order.
const std::vector<DataCategory>& AllCategories();

/// Display name, e.g. "Macroeconomic Indicators".
const char* CategoryName(DataCategory c);

/// Short key, e.g. "macro", "onchain_btc" (used in CSV artifacts).
const char* CategoryKey(DataCategory c);

/// Parses a short key back to a category.
[[nodiscard]] Result<DataCategory> CategoryFromKey(const std::string& key);

/// Metadata for one metric column.
struct MetricInfo {
  std::string name;
  DataCategory category;
  std::string description;
};

/// Registry mapping metric names to their category, built up as the
/// generators add columns. The contribution-factor analysis (Figures 3/4)
/// divides per-category selections by these candidate counts.
class MetricCatalog {
 public:
  /// Registers a metric. Fails on duplicate names.
  [[nodiscard]] Status Add(const std::string& name, DataCategory category,
             const std::string& description = "");

  bool Has(const std::string& name) const { return by_name_.count(name) > 0; }

  /// Category of a metric. Fails if unknown.
  [[nodiscard]] Result<DataCategory> CategoryOf(const std::string& name) const;

  /// All registered metrics in insertion order.
  const std::vector<MetricInfo>& metrics() const { return metrics_; }

  /// Number of registered metrics in `category`.
  size_t CountInCategory(DataCategory category) const;

  /// Names of metrics in `category`, in insertion order.
  std::vector<std::string> NamesInCategory(DataCategory category) const;

  size_t size() const { return metrics_.size(); }

 private:
  std::vector<MetricInfo> metrics_;
  // det audit: lookup-only index into metrics_, which owns the order.
  std::unordered_map<std::string, size_t> by_name_;
};

}  // namespace fab::sim

#endif  // FAB_SIM_CATALOG_H_
