#include "sim/onchain_btc.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "util/random.h"

namespace fab::sim {

double WealthModel::CountAtLeast(double b) const {
  if (b <= b_min) return num_addresses;
  return num_addresses * std::pow(b / b_min, -alpha);
}

double WealthModel::SupplyShareAtLeast(double b) const {
  if (b <= 0.0) return 1.0;
  return std::pow(1.0 + b / b_scale, -gamma);
}

namespace {

/// Human-readable threshold labels matching Coinmetrics conventions
/// (0.001, 0.01, ..., 1, 10, 100, 1K, 10K, ..., 10B).
std::string ThresholdLabel(double v) {
  if (v >= 1e9) return std::to_string(static_cast<long long>(v / 1e9)) + "B";
  if (v >= 1e6) return std::to_string(static_cast<long long>(v / 1e6)) + "M";
  if (v >= 1e3) return std::to_string(static_cast<long long>(v / 1e3)) + "K";
  if (v >= 1.0) return std::to_string(static_cast<long long>(v));
  if (v >= 0.1) return "0.1";
  if (v >= 0.01) return "0.01";
  return "0.001";
}

struct SeriesSink {
  table::Table* out;
  MetricCatalog* catalog;
  Status status = Status::OK();

  void Add(const std::string& name, std::vector<double> values,
           const std::string& description) {
    if (!status.ok()) return;
    Status s = out->AddColumn(name, std::move(values));
    if (!s.ok()) {
      status = s;
      return;
    }
    status = catalog->Add(name, DataCategory::kOnChainBtc, description);
  }
};

}  // namespace

Status AddBtcOnChainMetrics(const LatentState& latent, const AssetPanel& panel,
                            uint64_t seed, table::Table* out,
                            MetricCatalog* catalog) {
  const size_t n = latent.num_days();
  if (out->num_rows() != n) {
    return Status::InvalidArgument("output table must share the latent index");
  }
  Rng rng(seed ^ 0xB7C0A1ull);
  Rng obs(seed ^ 0x0B5E77ull);
  auto noisy = [&obs](double v, double sigma) {
    return v * std::exp(sigma * obs.Normal());
  };
  // Per-bucket idiosyncratic AR(1) wobbles: real balance buckets drift
  // apart as wealth redistributes, so sibling metrics are correlated but
  // not duplicates.
  Rng wobble_rng(seed ^ 0x30B81Eull);
  auto make_wobble = [&wobble_rng](size_t days) {
    std::vector<double> w(days);
    double v = 0.0;
    for (size_t t = 0; t < days; ++t) {
      v = 0.985 * v + 0.005 * wobble_rng.Normal();
      w[t] = std::exp(v);
    }
    return w;
  };

  const std::vector<double>& price = latent.btc_close;
  std::vector<double> mcap = panel.BtcMcap();

  // ---- Structural daily state. -------------------------------------------
  std::vector<double> supply(n), issuance(n), num_addr(n), alpha(n), gamma(n);
  std::vector<double> turnover(n), turn_smooth(n), price_smooth(n);
  for (size_t t = 0; t < n; ++t) {
    supply[t] = BtcSupplyOn(latent.dates[t]);
    const double next_supply = BtcSupplyOn(latent.dates[t].AddDays(1));
    issuance[t] = next_supply - supply[t];
    const double a = latent.adoption[t];
    num_addr[t] = noisy(1.8e7 + 3.6e8 * std::pow(a, 1.3), 0.006);
    // Wealth concentration drifts slowly with adoption (new small holders
    // arrive, but large holders accumulate faster).
    // Wealth concentration drifts with adoption and with global liquidity
    // (easy money pulls in large allocators) — this macro coupling is what
    // lets on-chain metrics alone carry long-horizon information.
    alpha[t] = 0.60 - 0.07 * a + 0.015 * latent.macro_smooth[t];
    gamma[t] = 0.40 - 0.09 * a - 0.020 * latent.macro_smooth[t];
    const double ret = t > 0 ? std::log(price[t] / price[t - 1]) : 0.0;
    const double regime_mult =
        latent.regime[t] == Regime::kBull
            ? 1.7
            : (latent.regime[t] == Regime::kBear ? 1.25 : 1.0);
    turnover[t] =
        noisy(0.0022 * regime_mult * (1.0 + 5.0 * std::fabs(ret)) *
                  (1.0 + 0.25 * latent.macro_smooth[t]),
              0.10);
    turn_smooth[t] = t == 0 ? turnover[t]
                            : turn_smooth[t - 1] +
                                  (turnover[t] - turn_smooth[t - 1]) / 30.0;
    price_smooth[t] =
        t == 0 ? price[t]
               : price_smooth[t - 1] + (price[t] - price_smooth[t - 1]) / 90.0;
  }

  SeriesSink sink{out, catalog};

  // Smoothed investor flows differentiate whale buckets (institutional
  // accumulation) from retail buckets.
  std::vector<double> flows_smooth(n, 0.0);
  for (size_t t = 0; t < n; ++t) {
    flows_smooth[t] =
        t == 0 ? latent.flows[t]
               : flows_smooth[t - 1] + (latent.flows[t] - flows_smooth[t - 1]) / 10.0;
  }

  // ---- Balance-bucket families (counts + supply held). -------------------
  const double kNtvThresholds[] = {0.001, 0.01, 0.1, 1, 10, 100, 1e3, 1e4};
  const double kUsdThresholds[] = {1, 10, 100, 1e3, 1e4, 1e5, 1e6, 1e7};
  const double kFracDenoms[] = {1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10};

  auto wealth_at = [&](size_t t) {
    WealthModel w;
    w.num_addresses = num_addr[t];
    w.alpha = alpha[t];
    w.gamma = gamma[t];
    return w;
  };

  size_t ntv_index = 0;
  for (double th : kNtvThresholds) {
    std::vector<double> cnt(n), sply(n);
    const std::vector<double> wob_cnt = make_wobble(n);
    const std::vector<double> wob_sply = make_wobble(n);
    const double tilt = static_cast<double>(ntv_index) / 7.0 - 0.5;
    ++ntv_index;
    for (size_t t = 0; t < n; ++t) {
      const WealthModel w = wealth_at(t);
      const double info = std::exp(0.008 * tilt * flows_smooth[t] +
                                   0.5 * (-tilt) * latent.adoption[t]);
      cnt[t] = noisy(w.CountAtLeast(th) * wob_cnt[t] * info, 0.008);
      sply[t] = noisy(supply[t] * w.SupplyShareAtLeast(th) * wob_sply[t] * info,
                      0.006);
    }
    const std::string label = ThresholdLabel(th);
    sink.Add("AdrBalNtv" + label + "Cnt", std::move(cnt),
             "addresses holding at least " + label + " BTC");
    sink.Add("SplyAdrBalNtv" + label, std::move(sply),
             "BTC held in addresses with balance >= " + label);
  }
  size_t usd_index = 0;
  for (double th : kUsdThresholds) {
    std::vector<double> cnt(n), sply(n);
    const std::vector<double> wob_cnt = make_wobble(n);
    const std::vector<double> wob_sply = make_wobble(n);
    const double tilt = static_cast<double>(usd_index) / 7.0 - 0.5;
    ++usd_index;
    for (size_t t = 0; t < n; ++t) {
      const WealthModel w = wealth_at(t);
      const double b = th / price[t];
      const double info = std::exp(0.008 * tilt * flows_smooth[t]);
      cnt[t] = noisy(w.CountAtLeast(b) * wob_cnt[t] * info, 0.008);
      sply[t] = noisy(supply[t] * w.SupplyShareAtLeast(b) * wob_sply[t] * info,
                      0.006);
    }
    const std::string label = ThresholdLabel(th);
    sink.Add("AdrBalUSD" + label + "Cnt", std::move(cnt),
             "addresses holding at least $" + label + " of BTC");
    sink.Add("SplyAdrBalUSD" + label, std::move(sply),
             "BTC held in addresses with balance >= $" + label);
  }
  size_t frac_index = 0;
  for (double denom : kFracDenoms) {
    std::vector<double> cnt(n), sply(n);
    const std::vector<double> wob_cnt = make_wobble(n);
    const std::vector<double> wob_sply = make_wobble(n);
    const double tilt = 0.5 - static_cast<double>(frac_index) / 7.0;
    ++frac_index;
    for (size_t t = 0; t < n; ++t) {
      const WealthModel w = wealth_at(t);
      const double b = supply[t] / denom;
      const double info = std::exp(0.008 * tilt * flows_smooth[t]);
      cnt[t] = noisy(w.CountAtLeast(b) * wob_cnt[t] * info, 0.008);
      sply[t] = noisy(supply[t] * w.SupplyShareAtLeast(b) * wob_sply[t] * info,
                      0.006);
    }
    const std::string label = ThresholdLabel(denom);
    sink.Add("AdrBal1in" + label + "Cnt", std::move(cnt),
             "addresses holding >= 1/" + label + " of current supply");
    sink.Add("SplyAdrBal1in" + label, std::move(sply),
             "BTC held by addresses with >= 1/" + label + " of supply");
  }

  // ---- Supply & activity. -------------------------------------------------
  {
    std::vector<double> sply_cur(n), sply_act_ever(n), sply_act_pct1yr(n);
    std::vector<double> vel(n);
    const int kActDays[] = {7, 30, 90, 180, 365, 730, 1095};
    const char* kActNames[] = {"SplyAct7d",  "SplyAct30d", "SplyAct90d",
                               "SplyAct180d", "SplyAct1yr", "SplyAct2yr",
                               "SplyAct3yr"};
    std::vector<std::vector<double>> act(7, std::vector<double>(n));
    for (size_t t = 0; t < n; ++t) {
      const double lambda = std::clamp(turn_smooth[t], 5e-4, 0.05);
      sply_cur[t] = supply[t];
      sply_act_ever[t] =
          noisy(supply[t] * (0.76 + 0.20 * latent.adoption[t]), 0.004);
      for (int k = 0; k < 7; ++k) {
        const double share = 1.0 - std::exp(-lambda * kActDays[k]);
        act[static_cast<size_t>(k)][t] = noisy(supply[t] * share, 0.01);
      }
      sply_act_pct1yr[t] =
          100.0 * (1.0 - std::exp(-lambda * 365.0)) * std::exp(0.01 * obs.Normal());
      vel[t] = noisy(365.0 * turn_smooth[t], 0.015);
    }
    sink.Add("SplyCur", std::move(sply_cur), "current BTC supply");
    sink.Add("SplyActEver", std::move(sply_act_ever),
             "BTC held by accounts that ever transacted");
    for (int k = 0; k < 7; ++k) {
      sink.Add(kActNames[k], std::move(act[static_cast<size_t>(k)]),
               "BTC active in the trailing window");
    }
    sink.Add("SplyActPct1yr", std::move(sply_act_pct1yr),
             "% of supply active in the trailing year");
    sink.Add("VelCur1yr", std::move(vel),
             "1yr transferred value / current supply");
  }

  // ---- Capitalization metrics. --------------------------------------------
  {
    std::vector<double> cap_real(n), cap_mrkt(n), cap_ff(n), cap_act(n),
        mvrv(n);
    double real_price = price[0] * 0.9;
    for (size_t t = 0; t < n; ++t) {
      const double m = std::clamp(turnover[t], 5e-4, 0.03);
      real_price += m * (price[t] - real_price);
      cap_real[t] = noisy(real_price * supply[t], 0.004);
      cap_mrkt[t] = mcap[t];
      const double ff = 0.80 + 0.06 * latent.adoption[t];
      cap_ff[t] = noisy(mcap[t] * ff, 0.004);
      const double lambda = std::clamp(turn_smooth[t], 5e-4, 0.05);
      cap_act[t] =
          noisy(cap_real[t] * (1.0 - std::exp(-lambda * 365.0)) * 1.6, 0.01);
      mvrv[t] = mcap[t] / cap_real[t];
    }
    sink.Add("CapRealUSD", std::move(cap_real), "realized capitalization");
    sink.Add("market_cap", std::move(cap_mrkt), "BTC market capitalization");
    sink.Add("CapMrktFFUSD", std::move(cap_ff), "free-float capitalization");
    sink.Add("CapAct1yrUSD", std::move(cap_act),
             "USD value of supply active in the last year");
    sink.Add("CapMVRVCur", std::move(mvrv), "market cap / realized cap");
  }

  // ---- Miner economics, fees, hash rate. ----------------------------------
  {
    std::vector<double> rev_usd(n), rev_all(n), rev_hash(n), hash_rate(n),
        diff(n), fee_tot(n), fee_mean(n), iss_ntv(n), iss_pct(n), s2f(n),
        miner_bal(n);
    double rev_cum = 2.3e9;  // miner revenue accumulated before the window
    for (size_t t = 0; t < n; ++t) {
      const double tech_growth = std::exp(0.0011 * static_cast<double>(t) +
                                          0.20 * latent.macro_smooth[t]);
      hash_rate[t] = noisy(
          1.6 * std::pow(price_smooth[t] / 650.0, 0.95) * tech_growth, 0.03);
      diff[t] = noisy(hash_rate[t] * 1.35e11, 0.01);
      fee_tot[t] = noisy(
          mcap[t] * turnover[t] * turnover[t] * 45.0 + 2.0e4, 0.20);
      const double tx_cnt = num_addr[t] * std::clamp(turn_smooth[t] * 7.0,
                                                     0.004, 0.05);
      fee_mean[t] = fee_tot[t] / tx_cnt;
      iss_ntv[t] = issuance[t];
      iss_pct[t] = 100.0 * issuance[t] * 365.0 / supply[t];
      s2f[t] = supply[t] / (issuance[t] * 365.0);
      rev_usd[t] = (issuance[t] * price[t]) + fee_tot[t];
      rev_cum += rev_usd[t];
      rev_all[t] = noisy(rev_cum, 0.001);
      rev_hash[t] = rev_usd[t] / (hash_rate[t] * 1e6);
      miner_bal[t] =
          noisy(1.75e6 * (1.0 - 0.25 * latent.adoption[t]) * price[t], 0.01);
    }
    sink.Add("HashRate", std::move(hash_rate), "mean daily hash rate (EH/s)");
    sink.Add("DiffMean", std::move(diff), "mean mining difficulty");
    sink.Add("FeeTotUSD", std::move(fee_tot), "total daily fees (USD)");
    sink.Add("FeeMeanUSD", std::move(fee_mean), "mean fee per tx (USD)");
    sink.Add("IssContNtv", std::move(iss_ntv), "daily issuance (BTC)");
    sink.Add("IssContPctAnn", std::move(iss_pct), "annualized issuance %");
    sink.Add("s2f_ratio", std::move(s2f), "stock-to-flow ratio");
    sink.Add("RevUSD", std::move(rev_usd), "daily miner revenue (USD)");
    sink.Add("RevAllTimeUSD", std::move(rev_all),
             "cumulative miner revenue since genesis (USD)");
    sink.Add("RevHashRateUSD", std::move(rev_hash),
             "miner revenue per hash unit (USD)");
    sink.Add("SplyMiner0HopAllUSD", std::move(miner_bal),
             "balances of all mining entities (USD)");
  }

  // ---- Transactions & valuation ratios. ------------------------------------
  {
    std::vector<double> adr_act(n), tx_cnt(n), tx_tfr(n), tfr_val(n),
        tfr_mean(n), tfr_med(n), nvt(n), nvt90(n);
    double nvt_smooth = 0.0;
    for (size_t t = 0; t < n; ++t) {
      const double act_share = std::clamp(turn_smooth[t] * 7.0, 0.004, 0.05);
      adr_act[t] = noisy(num_addr[t] * act_share, 0.02);
      tx_cnt[t] = noisy(adr_act[t] * 2.1, 0.015);
      tx_tfr[t] = noisy(tx_cnt[t] * 0.62, 0.01);
      tfr_val[t] = noisy(supply[t] * turnover[t] * price[t], 0.03);
      tfr_mean[t] = tfr_val[t] / tx_tfr[t];
      tfr_med[t] = noisy(tfr_mean[t] * 0.07, 0.03);
      nvt[t] = mcap[t] / tfr_val[t];
      nvt_smooth = t == 0 ? nvt[t] : nvt_smooth + (nvt[t] - nvt_smooth) / 90.0;
      nvt90[t] = nvt_smooth;
    }
    sink.Add("AdrActCnt", std::move(adr_act), "daily active addresses");
    sink.Add("TxCnt", std::move(tx_cnt), "daily transaction count");
    sink.Add("TxTfrCnt", std::move(tx_tfr), "daily transfer count");
    sink.Add("TxTfrValAdjUSD", std::move(tfr_val),
             "adjusted transfer value (USD)");
    sink.Add("TxTfrValMeanUSD", std::move(tfr_mean), "mean transfer value");
    sink.Add("TxTfrValMedUSD", std::move(tfr_med), "median transfer value");
    sink.Add("NVTAdj", std::move(nvt), "network value / transfer value");
    sink.Add("NVTAdj90", std::move(nvt90), "90-day smoothed NVT");
  }

  // ---- Distribution ratios & cohort percentages. ---------------------------
  {
    std::vector<double> ser(n), top1(n), top10(n), shrimps(n), fish(n),
        sharks(n), whales(n), total_bal(n), roi30(n), roi1yr(n);
    for (size_t t = 0; t < n; ++t) {
      const WealthModel w = wealth_at(t);
      // Top-1%/10% address balance thresholds from the count model.
      const double b_top1 = w.b_min * std::pow(0.01, -1.0 / w.alpha);
      const double b_top10 = w.b_min * std::pow(0.10, -1.0 / w.alpha);
      const double share_top1 = w.SupplyShareAtLeast(b_top1);
      top1[t] = noisy(supply[t] * share_top1, 0.006);
      top10[t] = noisy(supply[t] * w.SupplyShareAtLeast(b_top10), 0.006);
      // SER: supply held by addresses below 1e-7 of supply vs top 1%.
      const double b_small = supply[t] * 1e-7;
      const double share_small = 1.0 - w.SupplyShareAtLeast(b_small);
      ser[t] = noisy(share_small / share_top1, 0.01);
      const double c10 = w.CountAtLeast(10.0);
      const double c100 = w.CountAtLeast(100.0);
      const double c1000 = w.CountAtLeast(1000.0);
      auto pct = [&](double v, double sigma) {
        return std::clamp(noisy(v, sigma), 1e-9, 1.0 - 1e-9);
      };
      shrimps[t] = pct((w.num_addresses - c10) / w.num_addresses, 0.002);
      fish[t] = pct((c10 - c100) / w.num_addresses, 0.004);
      sharks[t] = pct((c100 - c1000) / w.num_addresses, 0.004);
      whales[t] = pct(c1000 / w.num_addresses, 0.004);
      total_bal[t] = noisy(supply[t] * 0.93, 0.003);
      const size_t t30 = t >= 30 ? t - 30 : 0;
      const size_t t365 = t >= 365 ? t - 365 : 0;
      roi30[t] = 100.0 * (price[t] / price[t30] - 1.0);
      roi1yr[t] = 100.0 * (price[t] / price[t365] - 1.0);
    }
    sink.Add("SER", std::move(ser), "supply equality ratio");
    sink.Add("SplyAdrTop1Pct", std::move(top1), "supply held by top 1%");
    sink.Add("SplyAdrTop10Pct", std::move(top10), "supply held by top 10%");
    sink.Add("shrimps_pct", std::move(shrimps), "wallets holding < 10 BTC");
    sink.Add("fish_pct", std::move(fish), "wallets holding 10-100 BTC");
    sink.Add("sharks_pct", std::move(sharks), "wallets holding 100-1K BTC");
    sink.Add("whales_pct", std::move(whales), "wallets holding > 1K BTC");
    sink.Add("total_balance", std::move(total_bal),
             "BTC held by labeled cohorts");
    sink.Add("ROI30d", std::move(roi30), "30-day price return %");
    sink.Add("ROI1yr", std::move(roi1yr), "1-year price return %");
  }

  (void)rng;
  return sink.status;
}

}  // namespace fab::sim
