#ifndef FAB_SIM_MARKET_SIM_H_
#define FAB_SIM_MARKET_SIM_H_

#include <cstdint>
#include <vector>

#include "sim/assets.h"
#include "sim/catalog.h"
#include "sim/latent.h"
#include "sim/stress.h"
#include "table/table.h"
#include "util/status.h"

namespace fab::sim {

/// Configuration of the full market simulation.
struct MarketSimConfig {
  LatentConfig latent;
  AssetUniverseConfig assets;
  /// Master seed; sub-generators derive independent streams from it.
  uint64_t seed = 42;
  /// Also generate the ETH-like on-chain family (paper future work).
  /// Off by default so the headline reproduction matches the paper's
  /// BTC+USDC setup.
  bool include_eth = false;
  /// Adversarial regime injectors (sim/stress.h). All off by default;
  /// a default config reproduces the unstressed market bitwise.
  StressConfig stress;
};

/// The complete simulated market: the raw-metric table every experiment
/// consumes, plus the latent state and asset panel for index construction
/// and diagnostics.
struct SimulatedMarket {
  LatentState latent;
  AssetPanel panel;

  /// All observable metric columns on the daily index: BTC OHLCV, on-chain
  /// BTC & USDC, sentiment, trad-fi, macro. Technical indicators are
  /// *derived* later (core::DatasetBuilder) from the OHLCV columns.
  table::Table metrics;

  /// Category metadata for every metrics column.
  MetricCatalog catalog;

  /// Daily sum of the top-100 market caps (the Crypto100 numerator) and of
  /// the whole universe (Figure 1's comparison series). These are index
  /// ingredients, not features.
  std::vector<double> top100_mcap_sum;
  std::vector<double> total_mcap_sum;
};

/// Names of the raw BTC market columns added to `metrics` (registered
/// under the technical category, since technical indicators are derived
/// from them).
inline constexpr const char* kBtcCloseColumn = "btc_Close";
inline constexpr const char* kBtcOpenColumn = "btc_Open";
inline constexpr const char* kBtcHighColumn = "btc_High";
inline constexpr const char* kBtcLowColumn = "btc_Low";
inline constexpr const char* kBtcVolumeColumn = "btc_VolumeUSD";

/// Runs the full simulation. Deterministic in `config.seed`.
[[nodiscard]] Result<SimulatedMarket> SimulateMarket(const MarketSimConfig& config);

}  // namespace fab::sim

#endif  // FAB_SIM_MARKET_SIM_H_
