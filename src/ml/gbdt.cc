#include "ml/gbdt.h"

#include <algorithm>
#include <cmath>

#include "util/obs/metrics.h"
#include "util/obs/trace.h"

namespace fab::ml {

// fablint:det-root — GBDT fit must be bitwise reproducible per seed.
Status GbdtRegressor::Fit(const ColMatrix& x, const std::vector<double>& y) {
  FAB_TRACE_SCOPE("ml/gbdt_fit", {{"rounds", params_.n_rounds},
                                  {"rows", x.rows()},
                                  {"cols", x.cols()}});
  obs::GetCounter("ml/gbdt_fits").Increment();
  if (y.size() != x.rows()) {
    return Status::InvalidArgument("x/y size mismatch");
  }
  if (x.rows() == 0) return Status::InvalidArgument("empty training set");
  if (params_.n_rounds < 1) {
    return Status::InvalidArgument("n_rounds must be >= 1");
  }
  if (params_.subsample <= 0.0 || params_.subsample > 1.0) {
    return Status::InvalidArgument("subsample must be in (0, 1]");
  }

  FAB_ASSIGN_OR_RETURN(BinnedMatrix binned, BinnedMatrix::Build(x));

  const size_t n = x.rows();
  num_features_ = x.cols();
  base_score_ = 0.0;
  for (double v : y) base_score_ += v;
  base_score_ /= static_cast<double>(n);

  TreeParams tree_params;
  tree_params.max_depth = params_.max_depth;
  tree_params.min_child_weight = params_.min_child_weight;
  tree_params.min_split_weight = 2.0 * params_.min_child_weight;
  tree_params.lambda = params_.lambda;
  tree_params.gamma = params_.gamma;
  tree_params.colsample_per_node = params_.colsample;

  std::vector<double> pred(n, base_score_);
  std::vector<double> g(n), h(n);
  trees_.clear();
  trees_.reserve(static_cast<size_t>(params_.n_rounds));
  Rng rng(params_.seed);

  for (int round = 0; round < params_.n_rounds; ++round) {
    for (size_t i = 0; i < n; ++i) {
      // Squared loss: g = d/dpred 0.5*(pred-y)^2 = pred - y, h = 1;
      // row subsampling zeroes both.
      const bool keep =
          params_.subsample >= 1.0 || rng.Bernoulli(params_.subsample);
      g[i] = keep ? pred[i] - y[i] : 0.0;
      h[i] = keep ? 1.0 : 0.0;
    }
    RegressionTree tree;
    FAB_RETURN_IF_ERROR(tree.Fit(binned, g, h, tree_params, &rng));
    for (size_t i = 0; i < n; ++i) {
      pred[i] += params_.learning_rate * tree.PredictOne(x, i);
    }
    trees_.push_back(std::move(tree));
  }
  return Status::OK();
}

double GbdtRegressor::PredictOne(const ColMatrix& x, size_t row) const {
  // Unfitted: the base prediction, mirroring RandomForestRegressor's
  // fitted-state behaviour (no tree walks, no scaling).
  if (trees_.empty()) return base_score_;
  double acc = 0.0;
  for (const RegressionTree& tree : trees_) acc += tree.PredictOne(x, row);
  // One multiply per prediction instead of one per tree.
  return base_score_ + params_.learning_rate * acc;
}

std::vector<double> GbdtRegressor::Predict(const ColMatrix& x) const {
  std::vector<double> out(x.rows(), 0.0);
  if (trees_.empty()) {
    std::fill(out.begin(), out.end(), base_score_);
    return out;
  }
  for (const RegressionTree& tree : trees_) {
    for (size_t r = 0; r < x.rows(); ++r) out[r] += tree.PredictOne(x, r);
  }
  // Same accumulation order as PredictOne → bitwise-identical output.
  for (double& v : out) v = base_score_ + params_.learning_rate * v;
  return out;
}

GbdtRegressor GbdtRegressor::FromFitted(const GbdtParams& params,
                                        std::vector<RegressionTree> trees,
                                        double base_score,
                                        size_t num_features) {
  GbdtRegressor gbdt(params);
  gbdt.trees_ = std::move(trees);
  gbdt.base_score_ = base_score;
  gbdt.num_features_ = num_features;
  return gbdt;
}

Status GbdtRegressor::SetParam(const std::string& name, double value) {
  if (name == "n_rounds") {
    params_.n_rounds = static_cast<int>(value);
  } else if (name == "learning_rate") {
    params_.learning_rate = value;
  } else if (name == "max_depth") {
    params_.max_depth = static_cast<int>(value);
  } else if (name == "lambda") {
    params_.lambda = value;
  } else if (name == "gamma") {
    params_.gamma = value;
  } else if (name == "min_child_weight") {
    params_.min_child_weight = value;
  } else if (name == "subsample") {
    params_.subsample = value;
  } else if (name == "colsample") {
    params_.colsample = value;
  } else if (name == "seed") {
    params_.seed = static_cast<uint64_t>(value);
  } else {
    return Status::InvalidArgument("unknown xgb parameter: " + name);
  }
  return Status::OK();
}

std::unique_ptr<Regressor> GbdtRegressor::CloneUnfitted() const {
  return std::make_unique<GbdtRegressor>(params_);
}

std::vector<double> GbdtRegressor::FeatureImportances() const {
  std::vector<double> imp(num_features_, 0.0);
  for (const RegressionTree& tree : trees_) {
    const std::vector<double>& gain = tree.gain_importance();
    for (size_t j = 0; j < gain.size() && j < imp.size(); ++j) {
      imp[j] += gain[j];
    }
  }
  double total = 0.0;
  for (double v : imp) total += v;
  if (total > 0.0) {
    for (double& v : imp) v /= total;
  }
  return imp;
}

}  // namespace fab::ml
