#include "ml/mlp.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/random.h"

namespace fab::ml {

namespace {

/// Adam state per parameter vector.
struct AdamState {
  std::vector<double> m;
  std::vector<double> v;
  void Init(size_t n) {
    m.assign(n, 0.0);
    v.assign(n, 0.0);
  }
};

void AdamStep(std::vector<double>* params, const std::vector<double>& grad,
              AdamState* state, double lr, double l2, int t) {
  constexpr double kBeta1 = 0.9;
  constexpr double kBeta2 = 0.999;
  constexpr double kEps = 1e-8;
  const double bc1 = 1.0 - std::pow(kBeta1, t);
  const double bc2 = 1.0 - std::pow(kBeta2, t);
  for (size_t i = 0; i < params->size(); ++i) {
    const double g = grad[i] + l2 * (*params)[i];
    state->m[i] = kBeta1 * state->m[i] + (1.0 - kBeta1) * g;
    state->v[i] = kBeta2 * state->v[i] + (1.0 - kBeta2) * g * g;
    (*params)[i] -=
        lr * (state->m[i] / bc1) / (std::sqrt(state->v[i] / bc2) + kEps);
  }
}

}  // namespace

Status MlpRegressor::Fit(const ColMatrix& x, const std::vector<double>& y) {
  if (y.size() != x.rows()) {
    return Status::InvalidArgument("x/y size mismatch");
  }
  if (x.rows() < 10) {
    return Status::InvalidArgument("need at least 10 rows");
  }
  if (params_.epochs < 1 || params_.batch_size < 1) {
    return Status::InvalidArgument("epochs and batch_size must be >= 1");
  }
  for (int h : params_.hidden) {
    if (h < 1) return Status::InvalidArgument("hidden widths must be >= 1");
  }
  const size_t n = x.rows();
  const size_t f = x.cols();

  // --- Standardize. ---------------------------------------------------------
  x_mean_.assign(f, 0.0);
  x_std_.assign(f, 1.0);
  for (size_t j = 0; j < f; ++j) {
    const std::vector<double>& col = x.column(j);
    double mean = 0.0;
    for (double v : col) mean += v;
    mean /= static_cast<double>(n);
    double var = 0.0;
    for (double v : col) var += (v - mean) * (v - mean);
    var /= static_cast<double>(n);
    x_mean_[j] = mean;
    x_std_[j] = var > 1e-24 ? std::sqrt(var) : 1.0;
  }
  y_mean_ = 0.0;
  for (double v : y) y_mean_ += v;
  y_mean_ /= static_cast<double>(n);
  double y_var = 0.0;
  for (double v : y) y_var += (v - y_mean_) * (v - y_mean_);
  y_var /= static_cast<double>(n);
  y_std_ = y_var > 1e-24 ? std::sqrt(y_var) : 1.0;

  // --- Initialize layers (He init). ------------------------------------------
  Rng rng(params_.seed);
  std::vector<int> widths;
  widths.push_back(static_cast<int>(f));
  for (int h : params_.hidden) widths.push_back(h);
  widths.push_back(1);
  layers_.clear();
  for (size_t l = 0; l + 1 < widths.size(); ++l) {
    Layer layer;
    layer.in = widths[l];
    layer.out = widths[l + 1];
    layer.w.resize(static_cast<size_t>(layer.in) * layer.out);
    layer.b.assign(static_cast<size_t>(layer.out), 0.0);
    const double scale = std::sqrt(2.0 / static_cast<double>(layer.in));
    for (double& w : layer.w) w = scale * rng.Normal();
    layers_.push_back(std::move(layer));
  }

  // --- Split train/validation for early stopping. ----------------------------
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);
  size_t n_valid = params_.validation_fraction > 0.0
                       ? std::max<size_t>(
                             1, static_cast<size_t>(params_.validation_fraction *
                                                    static_cast<double>(n)))
                       : 0;
  if (n_valid >= n / 2) n_valid = 0;  // too small to spare a holdout
  const std::vector<int> valid_rows(order.begin(),
                                    order.begin() + static_cast<long>(n_valid));
  std::vector<int> train_rows(order.begin() + static_cast<long>(n_valid),
                              order.end());

  // Pre-standardized row-major training copies (cache-friendly batches).
  auto standardized_row = [&](int row, std::vector<double>* out) {
    out->resize(f);
    for (size_t j = 0; j < f; ++j) {
      (*out)[j] = (x.at(static_cast<size_t>(row), j) - x_mean_[j]) / x_std_[j];
    }
  };

  // --- Adam optimizer state. --------------------------------------------------
  std::vector<AdamState> w_state(layers_.size()), b_state(layers_.size());
  for (size_t l = 0; l < layers_.size(); ++l) {
    w_state[l].Init(layers_[l].w.size());
    b_state[l].Init(layers_[l].b.size());
  }
  std::vector<std::vector<double>> w_grad(layers_.size()),
      b_grad(layers_.size());

  std::vector<std::vector<double>> activations;
  std::vector<std::vector<double>> deltas(layers_.size());
  std::vector<double> input;

  auto validation_mse = [&]() {
    if (n_valid == 0) return 0.0;
    double acc = 0.0;
    for (int row : valid_rows) {
      const double pred = PredictOne(x, static_cast<size_t>(row));
      const double d = pred - y[static_cast<size_t>(row)];
      acc += d * d;
    }
    return acc / static_cast<double>(n_valid);
  };

  std::vector<Layer> best_layers = layers_;
  double best_valid = n_valid > 0 ? validation_mse() : 0.0;
  int since_best = 0;
  int adam_t = 0;

  for (int epoch = 0; epoch < params_.epochs; ++epoch) {
    rng.Shuffle(train_rows);
    for (size_t start = 0; start < train_rows.size();
         start += static_cast<size_t>(params_.batch_size)) {
      const size_t end = std::min(
          train_rows.size(), start + static_cast<size_t>(params_.batch_size));
      for (size_t l = 0; l < layers_.size(); ++l) {
        w_grad[l].assign(layers_[l].w.size(), 0.0);
        b_grad[l].assign(layers_[l].b.size(), 0.0);
      }
      for (size_t k = start; k < end; ++k) {
        const int row = train_rows[k];
        standardized_row(row, &input);
        const double pred = Forward(input, &activations);
        const double target =
            (y[static_cast<size_t>(row)] - y_mean_) / y_std_;
        // Backprop squared loss d/dpred 0.5*(pred - target)^2.
        double out_delta = pred - target;
        for (size_t l = layers_.size(); l-- > 0;) {
          const Layer& layer = layers_[l];
          std::vector<double>& delta = deltas[l];
          if (l + 1 == layers_.size()) {
            delta.assign(1, out_delta);
          }
          const std::vector<double>& a_in =
              l == 0 ? input : activations[l - 1];
          for (int o = 0; o < layer.out; ++o) {
            const double d = delta[static_cast<size_t>(o)];
            if (d == 0.0) continue;
            b_grad[l][static_cast<size_t>(o)] += d;
            double* wg =
                &w_grad[l][static_cast<size_t>(o) * static_cast<size_t>(layer.in)];
            for (int i = 0; i < layer.in; ++i) {
              wg[i] += d * a_in[static_cast<size_t>(i)];
            }
          }
          if (l > 0) {
            // Delta for the previous layer through this layer's weights,
            // gated by the previous layer's ReLU.
            std::vector<double>& prev = deltas[l - 1];
            prev.assign(static_cast<size_t>(layer.in), 0.0);
            for (int o = 0; o < layer.out; ++o) {
              const double d = delta[static_cast<size_t>(o)];
              if (d == 0.0) continue;
              const double* w =
                  &layer.w[static_cast<size_t>(o) * static_cast<size_t>(layer.in)];
              for (int i = 0; i < layer.in; ++i) {
                prev[static_cast<size_t>(i)] += d * w[i];
              }
            }
            const std::vector<double>& act = activations[l - 1];
            for (int i = 0; i < layer.in; ++i) {
              if (act[static_cast<size_t>(i)] <= 0.0) {
                prev[static_cast<size_t>(i)] = 0.0;
              }
            }
          }
        }
      }
      const double inv = 1.0 / static_cast<double>(end - start);
      ++adam_t;
      for (size_t l = 0; l < layers_.size(); ++l) {
        for (double& g : w_grad[l]) g *= inv;
        for (double& g : b_grad[l]) g *= inv;
        AdamStep(&layers_[l].w, w_grad[l], &w_state[l], params_.learning_rate,
                 params_.l2, adam_t);
        AdamStep(&layers_[l].b, b_grad[l], &b_state[l], params_.learning_rate,
                 0.0, adam_t);
      }
    }
    if (n_valid > 0) {
      const double mse = validation_mse();
      if (mse < best_valid) {
        best_valid = mse;
        best_layers = layers_;
        since_best = 0;
      } else if (++since_best >= params_.patience) {
        break;
      }
    }
  }
  if (n_valid > 0) layers_ = best_layers;
  return Status::OK();
}

double MlpRegressor::Forward(
    const std::vector<double>& input,
    std::vector<std::vector<double>>* activations) const {
  activations->resize(layers_.size());
  const std::vector<double>* current = &input;
  for (size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    std::vector<double>& out = (*activations)[l];
    out.assign(static_cast<size_t>(layer.out), 0.0);
    for (int o = 0; o < layer.out; ++o) {
      const double* w =
          &layer.w[static_cast<size_t>(o) * static_cast<size_t>(layer.in)];
      double acc = layer.b[static_cast<size_t>(o)];
      for (int i = 0; i < layer.in; ++i) {
        acc += w[i] * (*current)[static_cast<size_t>(i)];
      }
      // ReLU on hidden layers, identity on the output layer.
      out[static_cast<size_t>(o)] =
          (l + 1 == layers_.size()) ? acc : std::max(0.0, acc);
    }
    current = &out;
  }
  return (*activations).back()[0];
}

double MlpRegressor::PredictOne(const ColMatrix& x, size_t row) const {
  if (layers_.empty()) return 0.0;
  std::vector<double> input(x.cols());
  for (size_t j = 0; j < x.cols(); ++j) {
    input[j] = (x.at(row, j) - x_mean_[j]) / x_std_[j];
  }
  std::vector<std::vector<double>> activations;
  return Forward(input, &activations) * y_std_ + y_mean_;
}

Status MlpRegressor::SetParam(const std::string& name, double value) {
  if (name == "epochs") {
    params_.epochs = static_cast<int>(value);
  } else if (name == "batch_size") {
    params_.batch_size = static_cast<int>(value);
  } else if (name == "learning_rate") {
    params_.learning_rate = value;
  } else if (name == "l2") {
    params_.l2 = value;
  } else if (name == "seed") {
    params_.seed = static_cast<uint64_t>(value);
  } else if (name == "hidden_width") {
    // Convenience knob for grid search: two layers of the given width.
    const int w = std::max(1, static_cast<int>(value));
    params_.hidden = {w, w / 2 > 0 ? w / 2 : 1};
  } else {
    return Status::InvalidArgument("unknown mlp parameter: " + name);
  }
  return Status::OK();
}

MlpRegressor MlpRegressor::FromFitted(const MlpParams& params,
                                      std::vector<Layer> layers,
                                      std::vector<double> x_mean,
                                      std::vector<double> x_std, double y_mean,
                                      double y_std) {
  MlpRegressor mlp(params);
  mlp.layers_ = std::move(layers);
  mlp.x_mean_ = std::move(x_mean);
  mlp.x_std_ = std::move(x_std);
  mlp.y_mean_ = y_mean;
  mlp.y_std_ = y_std;
  return mlp;
}

std::unique_ptr<Regressor> MlpRegressor::CloneUnfitted() const {
  return std::make_unique<MlpRegressor>(params_);
}

std::vector<double> MlpRegressor::FeatureImportances() const {
  if (layers_.empty()) return {};
  const Layer& first = layers_.front();
  std::vector<double> imp(static_cast<size_t>(first.in), 0.0);
  for (int o = 0; o < first.out; ++o) {
    const double* w =
        &first.w[static_cast<size_t>(o) * static_cast<size_t>(first.in)];
    for (int i = 0; i < first.in; ++i) {
      imp[static_cast<size_t>(i)] += std::fabs(w[i]);
    }
  }
  double total = 0.0;
  for (double v : imp) total += v;
  if (total > 0.0) {
    for (double& v : imp) v /= total;
  }
  return imp;
}

}  // namespace fab::ml
