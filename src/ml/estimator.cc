#include "ml/estimator.h"

namespace fab::ml {

std::vector<double> Regressor::Predict(const ColMatrix& x) const {
  std::vector<double> out(x.rows());
  for (size_t r = 0; r < x.rows(); ++r) out[r] = PredictOne(x, r);
  return out;
}

}  // namespace fab::ml
