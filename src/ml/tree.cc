#include "ml/tree.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace fab::ml {

namespace {

/// Per-bin gradient/hessian accumulator.
struct BinStat {
  double g = 0.0;
  double h = 0.0;
};

class TreeBuilder {
 public:
  TreeBuilder(const BinnedMatrix& x, const std::vector<double>& g,
              const std::vector<double>& h, const TreeParams& params, Rng* rng,
              std::vector<TreeNode>* nodes, std::vector<double>* gain)
      : x_(x),
        params_(params),
        rng_(rng),
        nodes_(nodes),
        gain_(gain) {
    // Keep only in-bag samples; indices_/g_/h_ stay parallel and
    // node-ordered (each node owns a contiguous segment), so histogram
    // accumulation reads gradients sequentially.
    indices_.reserve(x_.rows());
    for (size_t i = 0; i < x_.rows(); ++i) {
      if (g[i] == 0.0 && h[i] == 0.0) continue;
      indices_.push_back(static_cast<int>(i));
      g_.push_back(g[i]);
      h_.push_back(h[i]);
      total_g_ += g[i];
      total_h_ += h[i];
    }
    const size_t m = indices_.size();
    tmp_i_.resize(m);
    tmp_g_.resize(m);
    tmp_h_.resize(m);
    hist_.resize(256);
    touched_.reserve(256);
    pool_.resize(x_.cols());
    std::iota(pool_.begin(), pool_.end(), 0);
  }

  void Build() { BuildNode(0, indices_.size(), total_g_, total_h_, 0); }

 private:
  double Objective(double g, double h) const {
    const double denom = h + params_.lambda;
    return denom > 0.0 ? g * g / denom : 0.0;
  }

  double LeafValue(double g, double h) const {
    const double denom = h + params_.lambda;
    return denom > 0.0 ? -g / denom : 0.0;
  }

  int BuildNode(size_t start, size_t end, double node_g, double node_h,
                int depth) {
    const int node_id = static_cast<int>(nodes_->size());
    nodes_->push_back(TreeNode{});
    (*nodes_)[static_cast<size_t>(node_id)].value = LeafValue(node_g, node_h);
    (*nodes_)[static_cast<size_t>(node_id)].cover = node_h;

    if (depth >= params_.max_depth || node_h < params_.min_split_weight ||
        end - start < 2) {
      return node_id;
    }

    // Candidate feature subset for this node: a partial Fisher–Yates over
    // the persistent pool (no per-node allocation).
    const size_t f = x_.cols();
    size_t n_eval = f;
    if (params_.colsample_per_node < 1.0) {
      n_eval = std::max<size_t>(
          1, static_cast<size_t>(std::ceil(params_.colsample_per_node *
                                           static_cast<double>(f))));
      for (size_t k = 0; k < n_eval; ++k) {
        const size_t j =
            k + static_cast<size_t>(rng_->UniformInt(
                    static_cast<uint64_t>(f - k)));
        std::swap(pool_[k], pool_[j]);
      }
    }

    int best_feature = -1;
    int best_bin = -1;
    double best_gain = 0.0;
    const double parent_obj = Objective(node_g, node_h);

    for (size_t jj = 0; jj < n_eval; ++jj) {
      const size_t j = static_cast<size_t>(pool_[jj]);
      const int nb = x_.num_bins(j);
      if (nb < 2) continue;
      const std::vector<uint8_t>& codes = x_.codes(j);
      // hist_ is all-zero on entry (restored after each feature). For
      // nodes smaller than the bin count, track only touched bins.
      const bool sparse = (end - start) < static_cast<size_t>(nb);
      touched_.clear();
      if (sparse) {
        for (size_t k = start; k < end; ++k) {
          const uint8_t c = codes[static_cast<size_t>(indices_[k])];
          BinStat& s = hist_[c];
          if (s.g == 0.0 && s.h == 0.0) touched_.push_back(c);
          s.g += g_[k];
          s.h += h_[k];
        }
        std::sort(touched_.begin(), touched_.end());
      } else {
        for (size_t k = start; k < end; ++k) {
          BinStat& s = hist_[codes[static_cast<size_t>(indices_[k])]];
          s.g += g_[k];
          s.h += h_[k];
        }
      }
      // Scan split points between bins (left = codes <= b). In the sparse
      // path only occupied bins matter: splitting between two occupied
      // bins is equivalent to splitting at the lower one.
      double gl = 0.0;
      double hl = 0.0;
      const size_t scan_count =
          sparse ? touched_.size() : static_cast<size_t>(nb);
      for (size_t bb = 0; bb + 1 < scan_count; ++bb) {
        const size_t b = sparse ? touched_[bb] : bb;
        gl += hist_[b].g;
        hl += hist_[b].h;
        if (hl < params_.min_child_weight) continue;
        const double hr = node_h - hl;
        if (hr < params_.min_child_weight) break;
        const double gr = node_g - gl;
        const double gain =
            0.5 * (Objective(gl, hl) + Objective(gr, hr) - parent_obj) -
            params_.gamma;
        if (gain > best_gain) {
          best_gain = gain;
          best_feature = static_cast<int>(j);
          best_bin = static_cast<int>(b);
        }
      }
      // Restore the all-zero invariant.
      if (sparse) {
        for (size_t b : touched_) hist_[b] = BinStat{};
      } else {
        for (int b = 0; b < nb; ++b) hist_[static_cast<size_t>(b)] = BinStat{};
      }
    }

    if (best_feature < 0 || best_gain <= 0.0) return node_id;

    // Partition the node's segment of (indices, g, h) order-preservingly.
    const std::vector<uint8_t>& codes =
        x_.codes(static_cast<size_t>(best_feature));
    double left_g = 0.0;
    double left_h = 0.0;
    size_t lo = start;
    size_t hi = 0;
    for (size_t k = start; k < end; ++k) {
      const int i = indices_[k];
      if (codes[static_cast<size_t>(i)] <= best_bin) {
        left_g += g_[k];
        left_h += h_[k];
        indices_[lo] = i;
        g_[lo] = g_[k];
        h_[lo] = h_[k];
        ++lo;
      } else {
        tmp_i_[hi] = i;
        tmp_g_[hi] = g_[k];
        tmp_h_[hi] = h_[k];
        ++hi;
      }
    }
    const size_t left_count = lo - start;
    if (left_count == 0 || left_count == end - start) return node_id;
    for (size_t k = 0; k < hi; ++k) {
      indices_[lo + k] = tmp_i_[k];
      g_[lo + k] = tmp_g_[k];
      h_[lo + k] = tmp_h_[k];
    }

    (*gain_)[static_cast<size_t>(best_feature)] += best_gain;
    const size_t mid = start + left_count;
    const int left_id = BuildNode(start, mid, left_g, left_h, depth + 1);
    const int right_id =
        BuildNode(mid, end, node_g - left_g, node_h - left_h, depth + 1);
    TreeNode& node = (*nodes_)[static_cast<size_t>(node_id)];
    node.feature = best_feature;
    node.threshold =
        x_.upper_edge(static_cast<size_t>(best_feature), best_bin);
    node.left = left_id;
    node.right = right_id;
    return node_id;
  }

  const BinnedMatrix& x_;
  const TreeParams& params_;
  Rng* rng_;
  std::vector<TreeNode>* nodes_;
  std::vector<double>* gain_;

  std::vector<int> indices_;   // in-bag sample ids, node-ordered
  std::vector<double> g_;      // parallel to indices_
  std::vector<double> h_;      // parallel to indices_
  std::vector<int> tmp_i_;
  std::vector<double> tmp_g_;
  std::vector<double> tmp_h_;
  std::vector<BinStat> hist_;
  std::vector<size_t> touched_;
  std::vector<int> pool_;
  double total_g_ = 0.0;
  double total_h_ = 0.0;
};

}  // namespace

Status RegressionTree::Fit(const BinnedMatrix& x, const std::vector<double>& g,
                           const std::vector<double>& h,
                           const TreeParams& params, Rng* rng) {
  if (g.size() != x.rows() || h.size() != x.rows()) {
    return Status::InvalidArgument("gradient/hessian size mismatch");
  }
  if (params.colsample_per_node < 1.0 && rng == nullptr) {
    return Status::InvalidArgument(
        "column subsampling requires a random generator");
  }
  if (params.max_depth < 1) {
    return Status::InvalidArgument("max_depth must be >= 1");
  }
  nodes_.clear();
  gain_.assign(x.cols(), 0.0);
  if (x.rows() == 0) {
    nodes_.push_back(TreeNode{});
    return Status::OK();
  }
  TreeBuilder builder(x, g, h, params, rng, &nodes_, &gain_);
  builder.Build();
  return Status::OK();
}

double RegressionTree::PredictOne(const ColMatrix& x, size_t row) const {
  if (nodes_.empty()) return 0.0;
  int id = 0;
  while (nodes_[static_cast<size_t>(id)].feature >= 0) {
    const TreeNode& node = nodes_[static_cast<size_t>(id)];
    const double v = x.at(row, static_cast<size_t>(node.feature));
    id = v <= node.threshold ? node.left : node.right;
  }
  return nodes_[static_cast<size_t>(id)].value;
}

RegressionTree RegressionTree::FromParts(std::vector<TreeNode> nodes,
                                         std::vector<double> gain) {
  RegressionTree tree;
  tree.nodes_ = std::move(nodes);
  tree.gain_ = std::move(gain);
  return tree;
}

int RegressionTree::NumLeaves() const {
  int leaves = 0;
  for (const TreeNode& node : nodes_) leaves += (node.feature < 0);
  return leaves;
}

int RegressionTree::Depth() const {
  if (nodes_.empty()) return 0;
  std::vector<int> depth(nodes_.size(), 0);
  int max_depth = 0;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const TreeNode& node = nodes_[i];
    if (node.feature >= 0) {
      depth[static_cast<size_t>(node.left)] = depth[i] + 1;
      depth[static_cast<size_t>(node.right)] = depth[i] + 1;
      max_depth = std::max(max_depth, depth[i] + 1);
    }
  }
  return max_depth;
}

}  // namespace fab::ml
