#ifndef FAB_ML_MODEL_SELECTION_H_
#define FAB_ML_MODEL_SELECTION_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ml/estimator.h"
#include "ml/matrix.h"
#include "util/status.h"

namespace fab::ml {

/// One train/validation split (row indices into the full dataset).
struct Fold {
  std::vector<int> train;
  std::vector<int> validation;
};

/// K-fold splits of `n` rows. With `shuffle`, rows are permuted with
/// `seed` first; otherwise folds are contiguous blocks. Every row appears
/// in exactly one validation set.
[[nodiscard]] Result<std::vector<Fold>> KFold(size_t n, int k, bool shuffle, uint64_t seed);

/// A point in hyperparameter space.
using ParamPoint = std::map<std::string, double>;

/// Cartesian product of per-parameter value lists.
std::vector<ParamPoint> ExpandGrid(
    const std::map<std::string, std::vector<double>>& grid);

/// Mean validation MSE of `prototype` (cloned per fold) across `folds`.
[[nodiscard]] Result<double> CrossValMse(const Regressor& prototype, const Dataset& data,
                           const std::vector<Fold>& folds);

/// Result of a grid search.
struct GridSearchResult {
  ParamPoint best_params;
  double best_mse = 0.0;
  /// Mean CV MSE for every grid point, parallel to the expanded grid.
  std::vector<double> all_mse;
};

/// Exhaustive k-fold cross-validated grid search minimizing MSE — the
/// paper's fine-tuning procedure (5-fold CV grid search, Section 3.2).
/// `prototype` supplies the fixed parameters; each grid point is applied
/// on top via SetParam.
[[nodiscard]] Result<GridSearchResult> GridSearchCV(const Regressor& prototype,
                                      const Dataset& data,
                                      const std::vector<ParamPoint>& grid,
                                      int k_folds, uint64_t seed);

}  // namespace fab::ml

#endif  // FAB_ML_MODEL_SELECTION_H_
