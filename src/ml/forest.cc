#include "ml/forest.h"

#include <algorithm>
#include <cmath>

#include "util/obs/metrics.h"
#include "util/obs/trace.h"
#include "util/thread_pool.h"

namespace fab::ml {

// fablint:det-root — forest fit must be bitwise reproducible per seed.
Status RandomForestRegressor::Fit(const ColMatrix& x,
                                  const std::vector<double>& y) {
  FAB_TRACE_SCOPE("ml/rf_fit", {{"trees", params_.n_trees},
                                {"rows", x.rows()},
                                {"cols", x.cols()}});
  obs::GetCounter("ml/rf_fits").Increment();
  if (y.size() != x.rows()) {
    return Status::InvalidArgument("x/y size mismatch");
  }
  if (x.rows() == 0) return Status::InvalidArgument("empty training set");
  if (params_.n_trees < 1) {
    return Status::InvalidArgument("n_trees must be >= 1");
  }
  if (params_.max_features <= 0.0 || params_.max_features > 1.0) {
    return Status::InvalidArgument("max_features must be in (0, 1]");
  }

  FAB_ASSIGN_OR_RETURN(BinnedMatrix binned, BinnedMatrix::Build(x));

  const size_t n = x.rows();
  num_features_ = x.cols();
  trees_.assign(static_cast<size_t>(params_.n_trees), RegressionTree());

  TreeParams tree_params;
  tree_params.max_depth = params_.max_depth;
  tree_params.min_child_weight = params_.min_samples_leaf;
  tree_params.min_split_weight = params_.min_samples_split;
  tree_params.lambda = 0.0;
  tree_params.gamma = 0.0;
  tree_params.colsample_per_node = params_.max_features;

  const int bootstrap_count = std::max(
      1, static_cast<int>(std::lround(params_.bootstrap_fraction *
                                      static_cast<double>(n))));

  // Each tree owns slot t and an RNG derived from (seed, t), so the fit
  // is bitwise identical at any thread count.
  std::vector<Status> statuses(static_cast<size_t>(params_.n_trees));
  util::ParallelFor(
      0, static_cast<size_t>(params_.n_trees),
      [&](size_t t) {
        Rng rng(params_.seed + 0x9E37u * static_cast<uint64_t>(t + 1));
        // Bootstrap as per-sample weights; g = -w*y, h = w makes the
        // second-order tree reduce to weighted-variance CART.
        std::vector<double> g(n, 0.0), h(n, 0.0);
        for (int k = 0; k < bootstrap_count; ++k) {
          const size_t i = rng.UniformInt(n);
          g[i] -= y[i];
          h[i] += 1.0;
        }
        statuses[t] = trees_[t].Fit(binned, g, h, tree_params, &rng);
      },
      params_.num_threads);

  for (const Status& s : statuses) {
    if (!s.ok()) {
      trees_.clear();
      return s;
    }
  }
  return Status::OK();
}

double RandomForestRegressor::PredictOne(const ColMatrix& x,
                                         size_t row) const {
  double sum = 0.0;
  for (const RegressionTree& tree : trees_) sum += tree.PredictOne(x, row);
  return trees_.empty() ? 0.0 : sum / static_cast<double>(trees_.size());
}

std::vector<double> RandomForestRegressor::Predict(const ColMatrix& x) const {
  std::vector<double> out(x.rows(), 0.0);
  if (trees_.empty()) return out;
  for (const RegressionTree& tree : trees_) {
    for (size_t r = 0; r < x.rows(); ++r) out[r] += tree.PredictOne(x, r);
  }
  // Same tree order and final division as PredictOne, so batch and
  // per-row predictions are bitwise identical.
  const double n = static_cast<double>(trees_.size());
  for (double& v : out) v /= n;
  return out;
}

RandomForestRegressor RandomForestRegressor::FromFitted(
    const ForestParams& params, std::vector<RegressionTree> trees,
    size_t num_features) {
  RandomForestRegressor rf(params);
  rf.trees_ = std::move(trees);
  rf.num_features_ = num_features;
  return rf;
}

Status RandomForestRegressor::SetParam(const std::string& name, double value) {
  if (name == "n_trees") {
    params_.n_trees = static_cast<int>(value);
  } else if (name == "max_depth") {
    params_.max_depth = static_cast<int>(value);
  } else if (name == "min_samples_leaf") {
    params_.min_samples_leaf = value;
  } else if (name == "min_samples_split") {
    params_.min_samples_split = value;
  } else if (name == "max_features") {
    params_.max_features = value;
  } else if (name == "bootstrap_fraction") {
    params_.bootstrap_fraction = value;
  } else if (name == "seed") {
    params_.seed = static_cast<uint64_t>(value);
  } else {
    return Status::InvalidArgument("unknown rf parameter: " + name);
  }
  return Status::OK();
}

std::unique_ptr<Regressor> RandomForestRegressor::CloneUnfitted() const {
  return std::make_unique<RandomForestRegressor>(params_);
}

std::vector<double> RandomForestRegressor::FeatureImportances() const {
  std::vector<double> imp(num_features_, 0.0);
  for (const RegressionTree& tree : trees_) {
    const std::vector<double>& gain = tree.gain_importance();
    for (size_t j = 0; j < gain.size() && j < imp.size(); ++j) {
      imp[j] += gain[j];
    }
  }
  double total = 0.0;
  for (double v : imp) total += v;
  if (total > 0.0) {
    for (double& v : imp) v /= total;
  }
  return imp;
}

}  // namespace fab::ml
