#ifndef FAB_ML_MATRIX_H_
#define FAB_ML_MATRIX_H_

#include <cstddef>
#include <string>
#include <vector>

#include "util/check.h"
#include "util/status.h"

namespace fab::ml {

/// A dense column-major feature matrix with optional per-column presorted
/// row orders (the accelerator for exact greedy tree construction).
///
/// Tree building touches features column-wise, so columns are contiguous.
/// `BuildSortIndex()` computes, once, the row permutation that sorts each
/// column ascending; `RegressionTree` then partitions those permutations
/// in place per node, making a full tree build O(features × rows × depth)
/// instead of O(features × rows × log(rows) × nodes).
class ColMatrix {
 public:
  ColMatrix() = default;

  /// A rows × cols matrix of zeros.
  ColMatrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(cols, std::vector<double>(rows, 0.0)) {}

  /// Builds from column vectors (all must share a length).
  [[nodiscard]] static Result<ColMatrix> FromColumns(std::vector<std::vector<double>> cols);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  // Accessors sit on the tree-building hot loop, so the bounds checks are
  // FAB_DCHECKs: free in Release, fatal with coordinates in Debug.
  double at(size_t row, size_t col) const {
    FAB_DCHECK(row < rows_ && col < cols_)
        << "at(" << row << ", " << col << ") on " << rows_ << "x" << cols_;
    return data_[col][row];
  }
  void set(size_t row, size_t col, double v) {
    FAB_DCHECK(row < rows_ && col < cols_)
        << "set(" << row << ", " << col << ") on " << rows_ << "x" << cols_;
    data_[col][row] = v;
  }

  const std::vector<double>& column(size_t col) const {
    FAB_DCHECK(col < cols_) << "column " << col << " of " << cols_;
    return data_[col];
  }
  std::vector<double>& mutable_column(size_t col) {
    FAB_DCHECK(col < cols_) << "column " << col << " of " << cols_;
    return data_[col];
  }

  /// New matrix holding the given rows (duplicates allowed), all columns.
  ColMatrix TakeRows(const std::vector<int>& rows) const;

  /// Computes the per-column ascending row orders. Idempotent; call before
  /// sharing the matrix across tree-building threads.
  void BuildSortIndex();

  bool has_sort_index() const { return !sorted_.empty(); }

  /// Row indices that sort `col` ascending. Requires BuildSortIndex().
  const std::vector<int>& sorted_order(size_t col) const {
    FAB_DCHECK(col < sorted_.size())
        << "sorted_order(" << col << ") without BuildSortIndex (have "
        << sorted_.size() << " columns)";
    return sorted_[col];
  }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<std::vector<double>> data_;
  std::vector<std::vector<int>> sorted_;
};

/// A supervised dataset: features, target, and feature names.
struct Dataset {
  ColMatrix x;
  std::vector<double> y;
  std::vector<std::string> feature_names;

  size_t num_rows() const { return x.rows(); }
  size_t num_features() const { return x.cols(); }

  /// Subset of rows (duplicates allowed).
  Dataset TakeRows(const std::vector<int>& rows) const;

  /// Subset of feature columns by position.
  [[nodiscard]] Result<Dataset> SelectFeatures(const std::vector<int>& cols) const;

  /// Positions of the named features. Fails on a missing name.
  [[nodiscard]] Result<std::vector<int>> FeaturePositions(
      const std::vector<std::string>& names) const;
};

}  // namespace fab::ml

#endif  // FAB_ML_MATRIX_H_
