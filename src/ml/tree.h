#ifndef FAB_ML_TREE_H_
#define FAB_ML_TREE_H_

#include <cstdint>
#include <vector>

#include "ml/binning.h"
#include "ml/matrix.h"
#include "util/random.h"
#include "util/status.h"

namespace fab::ml {

/// Parameters of a single regression tree.
///
/// The builder is a second-order histogram CART (LightGBM-style): every
/// sample carries a gradient `g` and hessian `h`, a leaf's value is
/// `-G / (H + lambda)` and a split's gain is the XGBoost objective
/// reduction
///   0.5 * (G_L^2/(H_L+lambda) + G_R^2/(H_R+lambda) - G^2/(H+lambda)) - gamma.
/// With `g = -w*y`, `h = w`, `lambda = 0` this is exactly weighted
/// variance-reduction CART with mean leaves, which is how the random
/// forest uses it; the GBDT passes squared-loss gradients instead.
/// Split thresholds are quantile-bin edges (<= 256 per feature).
struct TreeParams {
  int max_depth = 6;
  /// Minimum hessian sum (≈ sample count) on each side of a split.
  double min_child_weight = 1.0;
  /// Minimum hessian sum in a node for it to be split at all.
  double min_split_weight = 2.0;
  /// L2 regularization on leaf values (XGBoost lambda).
  double lambda = 0.0;
  /// Minimum gain required to keep a split (XGBoost gamma).
  double gamma = 0.0;
  /// Fraction of features evaluated per node, in (0, 1].
  double colsample_per_node = 1.0;
};

/// A fitted regression tree node (leaf when `feature < 0`).
struct TreeNode {
  int feature = -1;
  double threshold = 0.0;
  int left = -1;
  int right = -1;
  double value = 0.0;
  /// Training hessian mass that reached this node (≈ sample count); the
  /// conditional-expectation weights TreeSHAP traverses.
  double cover = 0.0;
};

/// Histogram-based regression tree over a `BinnedMatrix`.
class RegressionTree {
 public:
  /// Fits the tree on binned features. `g`/`h` are per-sample
  /// gradient/hessian (see TreeParams); samples with `g == h == 0` are
  /// ignored (bootstrap out-of-bag / subsample drops). `rng` drives
  /// per-node column subsampling and must be non-null when
  /// colsample_per_node < 1.
  [[nodiscard]] Status Fit(const BinnedMatrix& x, const std::vector<double>& g,
             const std::vector<double>& h, const TreeParams& params, Rng* rng);

  /// Prediction for row `row` of a raw (unbinned) matrix with the same
  /// schema; thresholds are real feature values.
  double PredictOne(const ColMatrix& x, size_t row) const;

  /// Reconstructs a fitted tree from its serialized parts (snapshot load).
  /// `gain` must have one entry per training feature; `nodes` must be a
  /// valid node list (children in range, root at index 0).
  static RegressionTree FromParts(std::vector<TreeNode> nodes,
                                  std::vector<double> gain);

  /// Per-feature total split gain (MDI numerator). Length = num features.
  const std::vector<double>& gain_importance() const { return gain_; }

  const std::vector<TreeNode>& nodes() const { return nodes_; }
  bool fitted() const { return !nodes_.empty(); }

  /// Number of leaves.
  int NumLeaves() const;

  /// Maximum node depth actually reached (root = 0).
  int Depth() const;

 private:
  std::vector<TreeNode> nodes_;
  std::vector<double> gain_;
};

}  // namespace fab::ml

#endif  // FAB_ML_TREE_H_
