#ifndef FAB_ML_GBDT_H_
#define FAB_ML_GBDT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "ml/estimator.h"
#include "ml/tree.h"

namespace fab::ml {

/// XGBoost-style gradient-boosting hyperparameters.
struct GbdtParams {
  int n_rounds = 120;
  double learning_rate = 0.10;
  int max_depth = 4;
  /// L2 regularization on leaf weights (XGBoost lambda).
  double lambda = 1.0;
  /// Minimum split gain (XGBoost gamma).
  double gamma = 0.0;
  /// Minimum hessian sum per child.
  double min_child_weight = 1.0;
  /// Row subsampling per round, in (0, 1].
  double subsample = 1.0;
  /// Feature subsampling per node, in (0, 1].
  double colsample = 1.0;
  uint64_t seed = 11;
};

/// Second-order gradient boosting for squared loss.
///
/// Each round fits a regularized exact-greedy tree to the current
/// gradients (g = pred - y, h = 1 under squared loss) and shrinks its
/// contribution by the learning rate — for squared loss this is exactly
/// XGBoost's exact greedy algorithm.
class GbdtRegressor : public Regressor {
 public:
  GbdtRegressor() = default;
  explicit GbdtRegressor(const GbdtParams& params) : params_(params) {}

  [[nodiscard]] Status Fit(const ColMatrix& x, const std::vector<double>& y) override;
  double PredictOne(const ColMatrix& x, size_t row) const override;
  /// Batch fast-path: trees outer / rows inner (see RandomForestRegressor).
  std::vector<double> Predict(const ColMatrix& x) const override;
  [[nodiscard]] Status SetParam(const std::string& name, double value) override;
  std::unique_ptr<Regressor> CloneUnfitted() const override;
  std::vector<double> FeatureImportances() const override;
  std::string name() const override { return "xgb"; }

  const GbdtParams& params() const { return params_; }
  double base_score() const { return base_score_; }
  const std::vector<RegressionTree>& trees() const { return trees_; }
  size_t num_features() const { return num_features_; }

  /// Reconstructs a fitted booster from serialized parts (snapshot load).
  static GbdtRegressor FromFitted(const GbdtParams& params,
                                  std::vector<RegressionTree> trees,
                                  double base_score, size_t num_features);

 private:
  GbdtParams params_;
  std::vector<RegressionTree> trees_;
  double base_score_ = 0.0;
  size_t num_features_ = 0;
};

}  // namespace fab::ml

#endif  // FAB_ML_GBDT_H_
