#ifndef FAB_ML_MLP_H_
#define FAB_ML_MLP_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "ml/estimator.h"

namespace fab::ml {

/// Multi-layer-perceptron hyperparameters.
struct MlpParams {
  /// Hidden layer widths (empty = linear regression).
  std::vector<int> hidden = {64, 32};
  int epochs = 200;
  int batch_size = 32;
  double learning_rate = 1e-3;  ///< Adam step size
  double l2 = 1e-5;             ///< weight decay
  uint64_t seed = 13;
  /// Fraction of rows held out for early-stopping evaluation (0 = off).
  double validation_fraction = 0.1;
  /// Stop when validation MSE hasn't improved for this many epochs.
  int patience = 20;
};

/// A small fully-connected ReLU network trained with Adam on squared
/// loss — the "more complex model" the paper's future-work section asks
/// about. Inputs and target are z-scored internally (tree models don't
/// care about scale, networks do), so it plugs into the same pipelines.
class MlpRegressor : public Regressor {
 public:
  /// One fully-connected layer's fitted parameters (public so snapshot
  /// serialization can round-trip the network exactly).
  struct Layer {
    int in = 0;
    int out = 0;
    std::vector<double> w;  // out × in, row-major
    std::vector<double> b;  // out
  };

  MlpRegressor() = default;
  explicit MlpRegressor(const MlpParams& params) : params_(params) {}

  [[nodiscard]] Status Fit(const ColMatrix& x, const std::vector<double>& y) override;
  double PredictOne(const ColMatrix& x, size_t row) const override;
  [[nodiscard]] Status SetParam(const std::string& name, double value) override;
  std::unique_ptr<Regressor> CloneUnfitted() const override;
  /// MLPs have no split gains; returns |first-layer weight| column sums
  /// (a standard saliency proxy), normalized.
  std::vector<double> FeatureImportances() const override;
  std::string name() const override { return "mlp"; }

  const MlpParams& params() const { return params_; }
  bool fitted() const { return !layers_.empty(); }

  /// Fitted state, exposed for snapshot serialization.
  const std::vector<Layer>& layers() const { return layers_; }
  const std::vector<double>& x_mean() const { return x_mean_; }
  const std::vector<double>& x_std() const { return x_std_; }
  double y_mean() const { return y_mean_; }
  double y_std() const { return y_std_; }

  /// Reconstructs a fitted network from serialized parts (snapshot load).
  static MlpRegressor FromFitted(const MlpParams& params,
                                 std::vector<Layer> layers,
                                 std::vector<double> x_mean,
                                 std::vector<double> x_std, double y_mean,
                                 double y_std);

 private:
  /// Forward pass on a standardized input; scratch holds activations.
  double Forward(const std::vector<double>& input,
                 std::vector<std::vector<double>>* activations) const;

  MlpParams params_;
  std::vector<Layer> layers_;
  // Standardization constants learned at fit time.
  std::vector<double> x_mean_, x_std_;
  double y_mean_ = 0.0;
  double y_std_ = 1.0;
};

}  // namespace fab::ml

#endif  // FAB_ML_MLP_H_
