#ifndef FAB_ML_BINNING_H_
#define FAB_ML_BINNING_H_

#include <cstdint>
#include <vector>

#include "ml/matrix.h"
#include "util/status.h"

namespace fab::ml {

/// Quantile-binned view of a ColMatrix (LightGBM-style).
///
/// Each feature is discretized into at most `max_bins` bins whose edges
/// are value quantiles; tree construction then accumulates per-bin
/// gradient histograms instead of scanning sorted samples, which makes a
/// node split O(rows_in_node × features) with L1-resident working sets.
/// Bin upper edges retain real feature values, so fitted trees predict on
/// raw (unbinned) matrices.
class BinnedMatrix {
 public:
  /// Bins every column of `x`. max_bins in [2, 256].
  [[nodiscard]] static Result<BinnedMatrix> Build(const ColMatrix& x, int max_bins = 256);

  size_t rows() const { return rows_; }
  size_t cols() const { return codes_.size(); }

  /// Bin code of (row, col).
  uint8_t code(size_t row, size_t col) const { return codes_[col][row]; }

  /// All codes of a feature column (length = rows).
  const std::vector<uint8_t>& codes(size_t col) const { return codes_[col]; }

  /// Number of occupied bins for a feature (<= max_bins).
  int num_bins(size_t col) const {
    return static_cast<int>(upper_edges_[col].size());
  }

  /// The real-valued inclusive upper edge of bin `b` of feature `col`:
  /// samples go left under "x <= upper_edge(b)" exactly when their code
  /// is <= b.
  double upper_edge(size_t col, int b) const {
    return upper_edges_[col][static_cast<size_t>(b)];
  }

 private:
  size_t rows_ = 0;
  std::vector<std::vector<uint8_t>> codes_;        // per feature
  std::vector<std::vector<double>> upper_edges_;   // per feature
};

}  // namespace fab::ml

#endif  // FAB_ML_BINNING_H_
