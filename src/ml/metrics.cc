#include "ml/metrics.h"

#include <cmath>
#include <limits>

namespace fab::ml {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
}  // namespace

double MeanSquaredError(const std::vector<double>& y_true,
                        const std::vector<double>& y_pred) {
  if (y_true.empty() || y_true.size() != y_pred.size()) return kNaN;
  double acc = 0.0;
  for (size_t i = 0; i < y_true.size(); ++i) {
    const double d = y_true[i] - y_pred[i];
    acc += d * d;
  }
  return acc / static_cast<double>(y_true.size());
}

double RootMeanSquaredError(const std::vector<double>& y_true,
                            const std::vector<double>& y_pred) {
  return std::sqrt(MeanSquaredError(y_true, y_pred));
}

double MeanAbsoluteError(const std::vector<double>& y_true,
                         const std::vector<double>& y_pred) {
  if (y_true.empty() || y_true.size() != y_pred.size()) return kNaN;
  double acc = 0.0;
  for (size_t i = 0; i < y_true.size(); ++i) {
    acc += std::fabs(y_true[i] - y_pred[i]);
  }
  return acc / static_cast<double>(y_true.size());
}

double MeanAbsolutePercentageError(const std::vector<double>& y_true,
                                   const std::vector<double>& y_pred) {
  if (y_true.empty() || y_true.size() != y_pred.size()) return kNaN;
  double acc = 0.0;
  size_t n = 0;
  for (size_t i = 0; i < y_true.size(); ++i) {
    if (y_true[i] == 0.0) continue;
    acc += std::fabs((y_true[i] - y_pred[i]) / y_true[i]);
    ++n;
  }
  if (n == 0) return kNaN;
  return 100.0 * acc / static_cast<double>(n);
}

double R2Score(const std::vector<double>& y_true,
               const std::vector<double>& y_pred) {
  if (y_true.empty() || y_true.size() != y_pred.size()) return kNaN;
  double mean = 0.0;
  for (double v : y_true) mean += v;
  mean /= static_cast<double>(y_true.size());
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (size_t i = 0; i < y_true.size(); ++i) {
    ss_res += (y_true[i] - y_pred[i]) * (y_true[i] - y_pred[i]);
    ss_tot += (y_true[i] - mean) * (y_true[i] - mean);
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

}  // namespace fab::ml
