#include "ml/model_selection.h"

#include <limits>
#include <numeric>

#include "ml/metrics.h"
#include "util/obs/trace.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace fab::ml {

Result<std::vector<Fold>> KFold(size_t n, int k, bool shuffle, uint64_t seed) {
  if (k < 2) return Status::InvalidArgument("k must be >= 2");
  if (n < static_cast<size_t>(k)) {
    return Status::InvalidArgument("not enough rows for k folds");
  }
  std::vector<int> rows(n);
  std::iota(rows.begin(), rows.end(), 0);
  if (shuffle) {
    Rng rng(seed);
    rng.Shuffle(rows);
  }
  std::vector<Fold> folds(static_cast<size_t>(k));
  // Fold sizes differ by at most one.
  const size_t base = n / static_cast<size_t>(k);
  const size_t extra = n % static_cast<size_t>(k);
  size_t start = 0;
  for (int f = 0; f < k; ++f) {
    const size_t size = base + (static_cast<size_t>(f) < extra ? 1 : 0);
    Fold& fold = folds[static_cast<size_t>(f)];
    fold.validation.assign(rows.begin() + static_cast<long>(start),
                           rows.begin() + static_cast<long>(start + size));
    fold.train.reserve(n - size);
    for (size_t i = 0; i < n; ++i) {
      if (i < start || i >= start + size) fold.train.push_back(rows[i]);
    }
    start += size;
  }
  return folds;
}

std::vector<ParamPoint> ExpandGrid(
    const std::map<std::string, std::vector<double>>& grid) {
  std::vector<ParamPoint> points{{}};
  for (const auto& [name, values] : grid) {
    std::vector<ParamPoint> next;
    next.reserve(points.size() * values.size());
    for (const auto& p : points) {
      for (double v : values) {
        ParamPoint q = p;
        q[name] = v;
        next.push_back(std::move(q));
      }
    }
    points = std::move(next);
  }
  return points;
}

Result<double> CrossValMse(const Regressor& prototype, const Dataset& data,
                           const std::vector<Fold>& folds) {
  FAB_TRACE_SCOPE("ml/cross_val_mse", {{"folds", folds.size()}});
  if (folds.empty()) return Status::InvalidArgument("no folds");
  // Folds train concurrently on the shared pool — each fold's model is a
  // fresh clone whose fit is deterministic in its params, so per-fold
  // MSEs land in index-owned slots and the sequential sum below is
  // bitwise identical to the serial loop at any thread count.
  std::vector<double> fold_mse(folds.size(), 0.0);
  std::vector<Status> statuses(folds.size());
  util::ParallelFor(0, folds.size(), [&](size_t f) {
    FAB_TRACE_SCOPE("ml/cv_fold", {{"fold", f}});
    const Fold& fold = folds[f];
    Dataset train = data.TakeRows(fold.train);
    Dataset valid = data.TakeRows(fold.validation);
    std::unique_ptr<Regressor> model = prototype.CloneUnfitted();
    statuses[f] = model->Fit(train.x, train.y);
    if (!statuses[f].ok()) return;
    const std::vector<double> pred = model->Predict(valid.x);
    fold_mse[f] = MeanSquaredError(valid.y, pred);
  });
  double total = 0.0;
  for (size_t f = 0; f < folds.size(); ++f) {
    FAB_RETURN_IF_ERROR(statuses[f]);
    total += fold_mse[f];
  }
  return total / static_cast<double>(folds.size());
}

Result<GridSearchResult> GridSearchCV(const Regressor& prototype,
                                      const Dataset& data,
                                      const std::vector<ParamPoint>& grid,
                                      int k_folds, uint64_t seed) {
  if (grid.empty()) return Status::InvalidArgument("empty parameter grid");
  FAB_ASSIGN_OR_RETURN(std::vector<Fold> folds,
                       KFold(data.num_rows(), k_folds, /*shuffle=*/true, seed));
  GridSearchResult result;
  result.all_mse.reserve(grid.size());
  double best = std::numeric_limits<double>::infinity();
  for (const ParamPoint& point : grid) {
    std::unique_ptr<Regressor> candidate = prototype.CloneUnfitted();
    for (const auto& [name, value] : point) {
      FAB_RETURN_IF_ERROR(candidate->SetParam(name, value));
    }
    FAB_ASSIGN_OR_RETURN(double mse, CrossValMse(*candidate, data, folds));
    result.all_mse.push_back(mse);
    if (mse < best) {
      best = mse;
      result.best_params = point;
      result.best_mse = mse;
    }
  }
  return result;
}

}  // namespace fab::ml
