#include "ml/matrix.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

namespace fab::ml {

Result<ColMatrix> ColMatrix::FromColumns(
    std::vector<std::vector<double>> cols) {
  ColMatrix m;
  m.cols_ = cols.size();
  m.rows_ = cols.empty() ? 0 : cols[0].size();
  for (const auto& c : cols) {
    if (c.size() != m.rows_) {
      return Status::InvalidArgument("column length mismatch");
    }
  }
  m.data_ = std::move(cols);
  return m;
}

ColMatrix ColMatrix::TakeRows(const std::vector<int>& rows) const {
  ColMatrix out(rows.size(), cols_);
  for (size_t c = 0; c < cols_; ++c) {
    const std::vector<double>& src = data_[c];
    std::vector<double>& dst = out.data_[c];
    for (size_t i = 0; i < rows.size(); ++i) {
      dst[i] = src[static_cast<size_t>(rows[i])];
    }
  }
  return out;
}

void ColMatrix::BuildSortIndex() {
  if (!sorted_.empty()) return;
  sorted_.resize(cols_);
  for (size_t c = 0; c < cols_; ++c) {
    std::vector<int>& order = sorted_[c];
    order.resize(rows_);
    std::iota(order.begin(), order.end(), 0);
    const std::vector<double>& col = data_[c];
    std::stable_sort(order.begin(), order.end(), [&col](int a, int b) {
      return col[static_cast<size_t>(a)] < col[static_cast<size_t>(b)];
    });
  }
}

Dataset Dataset::TakeRows(const std::vector<int>& rows) const {
  Dataset out;
  out.x = x.TakeRows(rows);
  out.y.reserve(rows.size());
  for (int r : rows) out.y.push_back(y[static_cast<size_t>(r)]);
  out.feature_names = feature_names;
  return out;
}

Result<Dataset> Dataset::SelectFeatures(const std::vector<int>& cols) const {
  std::vector<std::vector<double>> new_cols;
  Dataset out;
  for (int c : cols) {
    if (c < 0 || static_cast<size_t>(c) >= num_features()) {
      return Status::OutOfRange("feature index out of range");
    }
    new_cols.push_back(x.column(static_cast<size_t>(c)));
    out.feature_names.push_back(feature_names[static_cast<size_t>(c)]);
  }
  FAB_ASSIGN_OR_RETURN(out.x, ColMatrix::FromColumns(std::move(new_cols)));
  out.y = y;
  return out;
}

Result<std::vector<int>> Dataset::FeaturePositions(
    const std::vector<std::string>& names) const {
  // det audit: lookup-only index; results come out in `names` order.
  std::unordered_map<std::string, int> pos;
  for (size_t i = 0; i < feature_names.size(); ++i) {
    pos[feature_names[i]] = static_cast<int>(i);
  }
  std::vector<int> out;
  out.reserve(names.size());
  for (const auto& name : names) {
    auto it = pos.find(name);
    if (it == pos.end()) {
      return Status::NotFound("no such feature: " + name);
    }
    out.push_back(it->second);
  }
  return out;
}

}  // namespace fab::ml
