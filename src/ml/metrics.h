#ifndef FAB_ML_METRICS_H_
#define FAB_ML_METRICS_H_

#include <vector>

namespace fab::ml {

/// Mean squared error. NaN on size mismatch or empty input.
double MeanSquaredError(const std::vector<double>& y_true,
                        const std::vector<double>& y_pred);

/// Root mean squared error.
double RootMeanSquaredError(const std::vector<double>& y_true,
                            const std::vector<double>& y_pred);

/// Mean absolute error.
double MeanAbsoluteError(const std::vector<double>& y_true,
                         const std::vector<double>& y_pred);

/// Mean absolute percentage error (%), skipping zero-valued truths.
double MeanAbsolutePercentageError(const std::vector<double>& y_true,
                                   const std::vector<double>& y_pred);

/// Coefficient of determination; 0 when the truth is constant and
/// predictions are its mean, negative when worse than the mean predictor.
double R2Score(const std::vector<double>& y_true,
               const std::vector<double>& y_pred);

}  // namespace fab::ml

#endif  // FAB_ML_METRICS_H_
