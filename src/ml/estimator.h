#ifndef FAB_ML_ESTIMATOR_H_
#define FAB_ML_ESTIMATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "ml/matrix.h"
#include "util/status.h"

namespace fab::ml {

/// Abstract regressor: the uniform interface GridSearchCV, permutation
/// importance and the experiment pipeline program against.
class Regressor {
 public:
  virtual ~Regressor() = default;

  /// Trains on `x` (rows = samples) against `y`.
  [[nodiscard]] virtual Status Fit(const ColMatrix& x, const std::vector<double>& y) = 0;

  /// Prediction for one row of `x`. Requires a successful Fit.
  virtual double PredictOne(const ColMatrix& x, size_t row) const = 0;

  /// Predictions for every row of `x`.
  virtual std::vector<double> Predict(const ColMatrix& x) const;

  /// Sets a named hyperparameter (used by grid search). Unknown names fail.
  [[nodiscard]] virtual Status SetParam(const std::string& name, double value) = 0;

  /// Fresh unfitted copy carrying the same hyperparameters.
  virtual std::unique_ptr<Regressor> CloneUnfitted() const = 0;

  /// Normalized MDI feature importances (sums to 1 unless all-zero).
  /// Empty when unfitted.
  virtual std::vector<double> FeatureImportances() const = 0;

  /// Short model id, e.g. "rf" or "xgb".
  virtual std::string name() const = 0;
};

}  // namespace fab::ml

#endif  // FAB_ML_ESTIMATOR_H_
