#include "ml/binning.h"

#include <algorithm>
#include <cmath>

namespace fab::ml {

Result<BinnedMatrix> BinnedMatrix::Build(const ColMatrix& x, int max_bins) {
  if (max_bins < 2 || max_bins > 256) {
    return Status::InvalidArgument("max_bins must be in [2, 256]");
  }
  BinnedMatrix out;
  out.rows_ = x.rows();
  out.codes_.resize(x.cols());
  out.upper_edges_.resize(x.cols());

  const size_t n = x.rows();
  std::vector<double> sorted;
  for (size_t c = 0; c < x.cols(); ++c) {
    const std::vector<double>& col = x.column(c);
    sorted = col;
    std::sort(sorted.begin(), sorted.end());

    // Candidate edges at evenly spaced quantiles; deduplicate so every
    // bin holds a distinct value range. The last edge is the max value.
    std::vector<double>& edges = out.upper_edges_[c];
    edges.clear();
    if (n > 0) {
      for (int b = 1; b <= max_bins; ++b) {
        // Upper edge of bin b at the b/max_bins quantile.
        size_t pos = static_cast<size_t>(b) * n / static_cast<size_t>(max_bins);
        pos = pos == 0 ? 0 : std::min(pos - 1, n - 1);
        const double v = sorted[pos];
        if (edges.empty() || v > edges.back()) edges.push_back(v);
      }
      edges.back() = sorted.back();
    } else {
      edges.push_back(0.0);
    }

    // Assign codes: the first bin whose upper edge >= value.
    std::vector<uint8_t>& codes = out.codes_[c];
    codes.resize(n);
    for (size_t i = 0; i < n; ++i) {
      const auto it = std::lower_bound(edges.begin(), edges.end(), col[i]);
      const size_t b = it == edges.end() ? edges.size() - 1
                                         : static_cast<size_t>(it - edges.begin());
      codes[i] = static_cast<uint8_t>(b);
    }
  }
  return out;
}

}  // namespace fab::ml
