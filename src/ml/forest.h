#ifndef FAB_ML_FOREST_H_
#define FAB_ML_FOREST_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "ml/estimator.h"
#include "ml/tree.h"

namespace fab::ml {

/// Random-forest hyperparameters (sklearn-compatible semantics).
struct ForestParams {
  int n_trees = 100;
  int max_depth = 10;
  /// Minimum (bootstrap-weighted) samples in each leaf.
  double min_samples_leaf = 2.0;
  /// Minimum samples in a node to attempt a split.
  double min_samples_split = 4.0;
  /// Fraction of features evaluated per node, in (0, 1].
  double max_features = 0.33;
  /// Bootstrap sample size as a fraction of the training size.
  double bootstrap_fraction = 1.0;
  uint64_t seed = 7;
  /// Concurrency cap for tree training on the shared pool, under the
  /// util::ResolveThreads convention (0 = full pool width). Any value
  /// yields bitwise-identical trees; see util/thread_pool.h.
  int num_threads = 0;
};

/// Bagged ensemble of exact-greedy CART trees with per-node feature
/// subsampling. Prediction is the mean of tree predictions; importances
/// are gain-based MDI averaged over trees.
class RandomForestRegressor : public Regressor {
 public:
  RandomForestRegressor() = default;
  explicit RandomForestRegressor(const ForestParams& params)
      : params_(params) {}

  [[nodiscard]] Status Fit(const ColMatrix& x, const std::vector<double>& y) override;
  double PredictOne(const ColMatrix& x, size_t row) const override;
  /// Batch fast-path: iterates trees outer / rows inner so each tree's
  /// node list stays cache-hot across the whole batch, instead of the
  /// per-row default that re-walks all trees for every row.
  std::vector<double> Predict(const ColMatrix& x) const override;
  [[nodiscard]] Status SetParam(const std::string& name, double value) override;
  std::unique_ptr<Regressor> CloneUnfitted() const override;
  std::vector<double> FeatureImportances() const override;
  std::string name() const override { return "rf"; }

  const ForestParams& params() const { return params_; }
  const std::vector<RegressionTree>& trees() const { return trees_; }
  size_t num_features() const { return num_features_; }

  /// Reconstructs a fitted forest from serialized parts (snapshot load).
  static RandomForestRegressor FromFitted(const ForestParams& params,
                                          std::vector<RegressionTree> trees,
                                          size_t num_features);

 private:
  ForestParams params_;
  std::vector<RegressionTree> trees_;
  size_t num_features_ = 0;
};

}  // namespace fab::ml

#endif  // FAB_ML_FOREST_H_
