#ifndef FAB_EXPLAIN_PERMUTATION_H_
#define FAB_EXPLAIN_PERMUTATION_H_

#include <cstdint>
#include <vector>

#include "ml/estimator.h"
#include "ml/matrix.h"
#include "util/status.h"

namespace fab::explain {

/// Options for permutation feature importance.
struct PermutationOptions {
  int n_repeats = 3;
  uint64_t seed = 17;
  /// Concurrency cap on the shared pool (util::ResolveThreads convention,
  /// 0 = full pool width). Results are identical at any thread count:
  /// each feature's shuffle stream is derived from (seed, feature).
  int num_threads = 0;
};

/// Permutation Feature Importance (PFI): the increase in MSE when a
/// feature column is shuffled on held-out data. Unlike MDI, this measures
/// the effect on actual predictive performance, which the paper uses to
/// offset training-bias in impurity importances. Returns one value per
/// feature (larger = more important; ≈0 or negative = irrelevant).
[[nodiscard]] Result<std::vector<double>> PermutationImportance(
    const ml::Regressor& model, const ml::Dataset& data,
    const PermutationOptions& options);

}  // namespace fab::explain

#endif  // FAB_EXPLAIN_PERMUTATION_H_
