#include "explain/shap.h"

#include <cmath>

#include "util/obs/trace.h"
#include "util/thread_pool.h"

namespace fab::explain {

namespace {

/// One element of the TreeSHAP feature path (Lundberg & Lee, Algorithm 2).
struct PathElement {
  int feature = -1;
  double zero_fraction = 0.0;  ///< share of paths flowing through when excluded
  double one_fraction = 0.0;   ///< 1/0 whether the sample's value goes this way
  double pweight = 0.0;        ///< permutation weight mass
};

void ExtendPath(std::vector<PathElement>& path, int unique_depth,
                double zero_fraction, double one_fraction, int feature) {
  path[static_cast<size_t>(unique_depth)] =
      PathElement{feature, zero_fraction, one_fraction,
                  unique_depth == 0 ? 1.0 : 0.0};
  for (int i = unique_depth - 1; i >= 0; --i) {
    path[static_cast<size_t>(i + 1)].pweight +=
        one_fraction * path[static_cast<size_t>(i)].pweight *
        static_cast<double>(i + 1) / static_cast<double>(unique_depth + 1);
    path[static_cast<size_t>(i)].pweight =
        zero_fraction * path[static_cast<size_t>(i)].pweight *
        static_cast<double>(unique_depth - i) /
        static_cast<double>(unique_depth + 1);
  }
}

void UnwindPath(std::vector<PathElement>& path, int unique_depth,
                int path_index) {
  const double one_fraction =
      path[static_cast<size_t>(path_index)].one_fraction;
  const double zero_fraction =
      path[static_cast<size_t>(path_index)].zero_fraction;
  double next_one_portion = path[static_cast<size_t>(unique_depth)].pweight;
  for (int i = unique_depth - 1; i >= 0; --i) {
    if (one_fraction != 0.0) {
      const double tmp = path[static_cast<size_t>(i)].pweight;
      path[static_cast<size_t>(i)].pweight =
          next_one_portion * static_cast<double>(unique_depth + 1) /
          (static_cast<double>(i + 1) * one_fraction);
      next_one_portion = tmp - path[static_cast<size_t>(i)].pweight *
                                   zero_fraction *
                                   static_cast<double>(unique_depth - i) /
                                   static_cast<double>(unique_depth + 1);
    } else {
      path[static_cast<size_t>(i)].pweight =
          path[static_cast<size_t>(i)].pweight *
          static_cast<double>(unique_depth + 1) /
          (zero_fraction * static_cast<double>(unique_depth - i));
    }
  }
  for (int i = path_index; i < unique_depth; ++i) {
    path[static_cast<size_t>(i)].feature =
        path[static_cast<size_t>(i + 1)].feature;
    path[static_cast<size_t>(i)].zero_fraction =
        path[static_cast<size_t>(i + 1)].zero_fraction;
    path[static_cast<size_t>(i)].one_fraction =
        path[static_cast<size_t>(i + 1)].one_fraction;
  }
}

double UnwoundPathSum(const std::vector<PathElement>& path, int unique_depth,
                      int path_index) {
  const double one_fraction =
      path[static_cast<size_t>(path_index)].one_fraction;
  const double zero_fraction =
      path[static_cast<size_t>(path_index)].zero_fraction;
  double next_one_portion = path[static_cast<size_t>(unique_depth)].pweight;
  double total = 0.0;
  if (one_fraction != 0.0) {
    for (int i = unique_depth - 1; i >= 0; --i) {
      const double tmp =
          next_one_portion / (static_cast<double>(i + 1) * one_fraction);
      total += tmp;
      next_one_portion =
          path[static_cast<size_t>(i)].pweight -
          tmp * zero_fraction * static_cast<double>(unique_depth - i);
    }
  } else {
    for (int i = unique_depth - 1; i >= 0; --i) {
      total += path[static_cast<size_t>(i)].pweight /
               (zero_fraction * static_cast<double>(unique_depth - i));
    }
  }
  return total * static_cast<double>(unique_depth + 1);
}

class ShapWalker {
 public:
  ShapWalker(const ml::RegressionTree& tree, const ml::ColMatrix& x,
             size_t row, double scale, std::vector<double>* phi)
      : tree_(tree), x_(x), row_(row), scale_(scale), phi_(phi) {}

  void Run() {
    std::vector<PathElement> path(1);
    Recurse(0, path, 0, 1.0, 1.0, -1);
  }

 private:
  void Recurse(int node_id, std::vector<PathElement> path, int unique_depth,
               double parent_zero_fraction, double parent_one_fraction,
               int parent_feature) {
    path.resize(static_cast<size_t>(unique_depth) + 1);
    ExtendPath(path, unique_depth, parent_zero_fraction, parent_one_fraction,
               parent_feature);
    const ml::TreeNode& node = tree_.nodes()[static_cast<size_t>(node_id)];

    if (node.feature < 0) {
      for (int i = 1; i <= unique_depth; ++i) {
        const double w = UnwoundPathSum(path, unique_depth, i);
        const PathElement& el = path[static_cast<size_t>(i)];
        (*phi_)[static_cast<size_t>(el.feature)] +=
            w * (el.one_fraction - el.zero_fraction) * node.value * scale_;
      }
      return;
    }

    const ml::TreeNode& left = tree_.nodes()[static_cast<size_t>(node.left)];
    const ml::TreeNode& right = tree_.nodes()[static_cast<size_t>(node.right)];
    const bool go_left =
        x_.at(row_, static_cast<size_t>(node.feature)) <= node.threshold;
    const int hot = go_left ? node.left : node.right;
    const int cold = go_left ? node.right : node.left;
    const double hot_cover = go_left ? left.cover : right.cover;
    const double cold_cover = go_left ? right.cover : left.cover;
    const double node_cover = node.cover > 0.0 ? node.cover : 1.0;

    double incoming_zero_fraction = 1.0;
    double incoming_one_fraction = 1.0;
    // If this feature was already split on upstream, undo its path entry
    // and carry its fractions forward (features enter the path once).
    int path_index = 0;
    for (int i = 1; i <= unique_depth; ++i) {
      if (path[static_cast<size_t>(i)].feature == node.feature) {
        path_index = i;
        break;
      }
    }
    if (path_index > 0) {
      incoming_zero_fraction =
          path[static_cast<size_t>(path_index)].zero_fraction;
      incoming_one_fraction =
          path[static_cast<size_t>(path_index)].one_fraction;
      UnwindPath(path, unique_depth, path_index);
      --unique_depth;
    }

    Recurse(hot, path, unique_depth + 1,
            (hot_cover / node_cover) * incoming_zero_fraction,
            incoming_one_fraction, node.feature);
    Recurse(cold, path, unique_depth + 1,
            (cold_cover / node_cover) * incoming_zero_fraction, 0.0,
            node.feature);
  }

  const ml::RegressionTree& tree_;
  const ml::ColMatrix& x_;
  size_t row_;
  double scale_;
  std::vector<double>* phi_;
};

Status AccumulateShap(const ml::RegressionTree& tree, const ml::ColMatrix& x,
                      size_t row, double scale, std::vector<double>* phi) {
  if (!tree.fitted()) return Status::FailedPrecondition("tree not fitted");
  if (row >= x.rows()) return Status::OutOfRange("row out of range");
  ShapWalker walker(tree, x, row, scale, phi);
  walker.Run();
  return Status::OK();
}

/// Shared mean-|SHAP| kernel: per-row attributions run concurrently on
/// the shared pool (each row owns its slot), then reduce sequentially in
/// row order — bitwise identical to the serial loop at any thread count.
Result<std::vector<double>> MeanAbsShapTrees(
    const std::vector<ml::RegressionTree>& trees, const ml::ColMatrix& x,
    double scale) {
  FAB_TRACE_SCOPE("explain/shap",
                  {{"rows", x.rows()}, {"trees", trees.size()}});
  const size_t rows = x.rows();
  std::vector<std::vector<double>> row_abs(rows);
  std::vector<Status> statuses(rows);
  util::ParallelFor(0, rows, [&](size_t r) {
    FAB_TRACE_SCOPE("explain/shap_row", {{"row", r}});
    std::vector<double> phi(x.cols(), 0.0);
    for (const ml::RegressionTree& tree : trees) {
      const Status s = AccumulateShap(tree, x, r, scale, &phi);
      if (!s.ok()) {
        statuses[r] = s;
        return;
      }
    }
    for (double& v : phi) v = std::fabs(v);
    row_abs[r] = std::move(phi);
  });
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  std::vector<double> mean_abs(x.cols(), 0.0);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t j = 0; j < mean_abs.size(); ++j) mean_abs[j] += row_abs[r][j];
  }
  for (double& v : mean_abs) v /= static_cast<double>(rows);
  return mean_abs;
}

}  // namespace

Result<std::vector<double>> TreeShapOne(const ml::RegressionTree& tree,
                                        const ml::ColMatrix& x, size_t row,
                                        double scale) {
  std::vector<double> phi(x.cols(), 0.0);
  FAB_RETURN_IF_ERROR(AccumulateShap(tree, x, row, scale, &phi));
  return phi;
}

// fablint:det-root — SHAP attributions feed the ranking goldens.
Result<std::vector<double>> MeanAbsShapForest(
    const ml::RandomForestRegressor& model, const ml::ColMatrix& x) {
  if (model.trees().empty()) {
    return Status::FailedPrecondition("forest not fitted");
  }
  const double scale = 1.0 / static_cast<double>(model.trees().size());
  return MeanAbsShapTrees(model.trees(), x, scale);
}

// fablint:det-root — SHAP attributions feed the ranking goldens.
Result<std::vector<double>> MeanAbsShapGbdt(const ml::GbdtRegressor& model,
                                            const ml::ColMatrix& x) {
  if (model.trees().empty()) {
    return Status::FailedPrecondition("gbdt not fitted");
  }
  return MeanAbsShapTrees(model.trees(), x, model.params().learning_rate);
}

double TreeConditionalExpectation(const ml::RegressionTree& tree,
                                  const ml::ColMatrix& x, size_t row,
                                  const std::vector<bool>& in_s) {
  // Weighted walk: fixed features follow the sample, free features split
  // by cover.
  struct Walker {
    const ml::RegressionTree& tree;
    const ml::ColMatrix& x;
    size_t row;
    const std::vector<bool>& in_s;
    double Walk(int id) const {
      const ml::TreeNode& node = tree.nodes()[static_cast<size_t>(id)];
      if (node.feature < 0) return node.value;
      if (in_s[static_cast<size_t>(node.feature)]) {
        const double v = x.at(row, static_cast<size_t>(node.feature));
        return Walk(v <= node.threshold ? node.left : node.right);
      }
      const double cl = tree.nodes()[static_cast<size_t>(node.left)].cover;
      const double cr = tree.nodes()[static_cast<size_t>(node.right)].cover;
      const double total = cl + cr;
      if (total <= 0.0) return node.value;
      return (cl * Walk(node.left) + cr * Walk(node.right)) / total;
    }
  };
  Walker walker{tree, x, row, in_s};
  return walker.Walk(0);
}

Result<std::vector<double>> ExactTreeShapley(const ml::RegressionTree& tree,
                                             const ml::ColMatrix& x,
                                             size_t row) {
  if (!tree.fitted()) return Status::FailedPrecondition("tree not fitted");
  const size_t f = x.cols();
  if (f > 16) {
    return Status::InvalidArgument(
        "brute-force Shapley limited to 16 features");
  }
  // Factorials up to 16 fit exactly in double.
  std::vector<double> fact(f + 1, 1.0);
  for (size_t i = 1; i <= f; ++i) fact[i] = fact[i - 1] * static_cast<double>(i);

  std::vector<double> phi(f, 0.0);
  const size_t num_subsets = static_cast<size_t>(1) << f;
  std::vector<bool> in_s(f, false);
  for (size_t mask = 0; mask < num_subsets; ++mask) {
    size_t s_size = 0;
    for (size_t j = 0; j < f; ++j) {
      in_s[j] = (mask >> j) & 1;
      s_size += in_s[j];
    }
    const double v_s = TreeConditionalExpectation(tree, x, row, in_s);
    for (size_t j = 0; j < f; ++j) {
      if (in_s[j]) continue;
      in_s[j] = true;
      const double v_sj = TreeConditionalExpectation(tree, x, row, in_s);
      in_s[j] = false;
      const double weight =
          fact[s_size] * fact[f - s_size - 1] / fact[f];
      phi[j] += weight * (v_sj - v_s);
    }
  }
  return phi;
}

}  // namespace fab::explain
