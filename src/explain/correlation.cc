#include "explain/correlation.h"

#include <cmath>

#include "util/stats.h"

namespace fab::explain {

std::vector<double> FeatureTargetCorrelations(const ml::Dataset& data) {
  std::vector<double> out(data.num_features(), 0.0);
  for (size_t j = 0; j < data.num_features(); ++j) {
    out[j] = stats::PearsonCorrelation(data.x.column(j), data.y);
  }
  return out;
}

std::vector<double> AbsFeatureTargetCorrelations(const ml::Dataset& data) {
  std::vector<double> out = FeatureTargetCorrelations(data);
  for (double& v : out) v = std::fabs(v);
  return out;
}

}  // namespace fab::explain
