#ifndef FAB_EXPLAIN_SHAP_H_
#define FAB_EXPLAIN_SHAP_H_

#include <vector>

#include "ml/forest.h"
#include "ml/gbdt.h"
#include "ml/matrix.h"
#include "ml/tree.h"
#include "util/status.h"

namespace fab::explain {

/// SHAP values for one sample under one tree, via Lundberg & Lee's
/// polynomial-time TreeSHAP (O(leaves × depth²)). The conditional
/// expectations are taken under the tree's own cover weights (the
/// "tree_path_dependent" feature perturbation). `phi` has one entry per
/// feature and satisfies sum(phi) = prediction - E[prediction].
[[nodiscard]] Result<std::vector<double>> TreeShapOne(const ml::RegressionTree& tree,
                                        const ml::ColMatrix& x, size_t row,
                                        double scale = 1.0);

/// Mean |SHAP| per feature over all rows of `x` for a random forest
/// (tree contributions averaged) — the global importance ranking the
/// paper combines with FRA.
[[nodiscard]] Result<std::vector<double>> MeanAbsShapForest(
    const ml::RandomForestRegressor& model, const ml::ColMatrix& x);

/// Mean |SHAP| per feature for a GBDT (tree contributions scaled by the
/// learning rate and summed).
[[nodiscard]] Result<std::vector<double>> MeanAbsShapGbdt(const ml::GbdtRegressor& model,
                                            const ml::ColMatrix& x);

/// Exact Shapley values for one sample by brute-force subset enumeration
/// (O(2^features × leaves)); validation oracle for TreeShapOne, usable
/// only for small feature counts (<= ~16).
[[nodiscard]] Result<std::vector<double>> ExactTreeShapley(const ml::RegressionTree& tree,
                                             const ml::ColMatrix& x,
                                             size_t row);

/// The conditional expectation E[f(x) | x_S] under the tree's cover
/// weights, where `in_s[j]` marks features fixed to the sample's values.
/// Exposed for tests.
double TreeConditionalExpectation(const ml::RegressionTree& tree,
                                  const ml::ColMatrix& x, size_t row,
                                  const std::vector<bool>& in_s);

}  // namespace fab::explain

#endif  // FAB_EXPLAIN_SHAP_H_
