#ifndef FAB_EXPLAIN_CORRELATION_H_
#define FAB_EXPLAIN_CORRELATION_H_

#include <vector>

#include "ml/matrix.h"

namespace fab::explain {

/// Pearson correlation of every feature with the target (signed, in
/// [-1, 1]; 0 for constant features).
std::vector<double> FeatureTargetCorrelations(const ml::Dataset& data);

/// |Pearson| of every feature with the target — the correlation signal
/// the Feature Reduction Algorithm thresholds on.
std::vector<double> AbsFeatureTargetCorrelations(const ml::Dataset& data);

}  // namespace fab::explain

#endif  // FAB_EXPLAIN_CORRELATION_H_
