#include "explain/permutation.h"

#include "ml/metrics.h"
#include "util/obs/trace.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace fab::explain {

// fablint:det-root — PFI rankings feed the paper's Table 4 goldens.
Result<std::vector<double>> PermutationImportance(
    const ml::Regressor& model, const ml::Dataset& data,
    const PermutationOptions& options) {
  FAB_TRACE_SCOPE("explain/pfi", {{"features", data.num_features()},
                                  {"repeats", options.n_repeats}});
  if (options.n_repeats < 1) {
    return Status::InvalidArgument("n_repeats must be >= 1");
  }
  if (data.num_rows() < 2) {
    return Status::InvalidArgument("need at least two rows");
  }
  const std::vector<double> base_pred = model.Predict(data.x);
  const double base_mse = ml::MeanSquaredError(data.y, base_pred);

  // Every feature gets its own shuffle stream derived from (seed, j) and
  // writes only slot j, so the result is bitwise identical at any thread
  // count. Each task mutates a private copy of the matrix; the copy is
  // cheap next to the n_repeats model.Predict sweeps it feeds.
  Rng master(options.seed);
  std::vector<uint64_t> feature_seeds(data.num_features());
  for (size_t j = 0; j < feature_seeds.size(); ++j) {
    feature_seeds[j] = master.Fork(j);
  }
  std::vector<double> importance(data.num_features(), 0.0);
  util::ParallelFor(
      0, data.num_features(),
      [&](size_t j) {
        FAB_TRACE_SCOPE("explain/pfi_feature", {{"feature", j}});
        Rng rng(feature_seeds[j]);
        ml::ColMatrix scratch = data.x;
        const std::vector<double>& original = data.x.column(j);
        double acc = 0.0;
        for (int r = 0; r < options.n_repeats; ++r) {
          std::vector<double> shuffled = original;
          rng.Shuffle(shuffled);
          scratch.mutable_column(j) = std::move(shuffled);
          const std::vector<double> pred = model.Predict(scratch);
          acc += ml::MeanSquaredError(data.y, pred) - base_mse;
        }
        importance[j] = acc / static_cast<double>(options.n_repeats);
      },
      options.num_threads);
  return importance;
}

}  // namespace fab::explain
