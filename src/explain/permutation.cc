#include "explain/permutation.h"

#include "ml/metrics.h"
#include "util/random.h"

namespace fab::explain {

Result<std::vector<double>> PermutationImportance(
    const ml::Regressor& model, const ml::Dataset& data,
    const PermutationOptions& options) {
  if (options.n_repeats < 1) {
    return Status::InvalidArgument("n_repeats must be >= 1");
  }
  if (data.num_rows() < 2) {
    return Status::InvalidArgument("need at least two rows");
  }
  const std::vector<double> base_pred = model.Predict(data.x);
  const double base_mse = ml::MeanSquaredError(data.y, base_pred);

  Rng rng(options.seed);
  ml::ColMatrix scratch = data.x;  // one mutable copy, column restored after use
  std::vector<double> importance(data.num_features(), 0.0);
  for (size_t j = 0; j < data.num_features(); ++j) {
    const std::vector<double> original = data.x.column(j);
    double acc = 0.0;
    for (int r = 0; r < options.n_repeats; ++r) {
      std::vector<double> shuffled = original;
      rng.Shuffle(shuffled);
      scratch.mutable_column(j) = std::move(shuffled);
      const std::vector<double> pred = model.Predict(scratch);
      acc += ml::MeanSquaredError(data.y, pred) - base_mse;
    }
    scratch.mutable_column(j) = original;
    importance[j] = acc / static_cast<double>(options.n_repeats);
  }
  return importance;
}

}  // namespace fab::explain
