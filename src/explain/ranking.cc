#include "explain/ranking.h"

#include <algorithm>
#include <unordered_set>

#include "util/stats.h"

namespace fab::explain {

std::vector<int> TopKIndices(const std::vector<double>& scores, size_t k) {
  std::vector<int> order = stats::ArgSortDescending(scores);
  if (order.size() > k) order.resize(k);
  return order;
}

std::vector<std::string> TopKNames(const std::vector<double>& scores,
                                   const std::vector<std::string>& names,
                                   size_t k) {
  std::vector<std::string> out;
  for (int idx : TopKIndices(scores, k)) {
    out.push_back(names[static_cast<size_t>(idx)]);
  }
  return out;
}

std::vector<bool> BottomFractionMask(const std::vector<double>& scores,
                                     double fraction) {
  const size_t n = scores.size();
  std::vector<bool> mask(n, false);
  const size_t cutoff = static_cast<size_t>(
      static_cast<double>(n) * std::clamp(fraction, 0.0, 1.0));
  const std::vector<int> ascending = stats::ArgSortAscending(scores);
  for (size_t i = 0; i < cutoff && i < n; ++i) {
    mask[static_cast<size_t>(ascending[i])] = true;
  }
  return mask;
}

size_t OverlapCount(const std::vector<std::string>& a,
                    const std::vector<std::string>& b) {
  // det audit: membership tests only; iteration order stays in `b`.
  std::unordered_set<std::string> set_a(a.begin(), a.end());
  std::unordered_set<std::string> seen;
  size_t count = 0;
  for (const auto& name : b) {
    if (set_a.count(name) > 0 && seen.insert(name).second) ++count;
  }
  return count;
}

std::vector<std::string> UnionNames(const std::vector<std::string>& a,
                                    const std::vector<std::string>& b) {
  std::vector<std::string> out;
  std::unordered_set<std::string> seen;
  for (const auto& name : a) {
    if (seen.insert(name).second) out.push_back(name);
  }
  for (const auto& name : b) {
    if (seen.insert(name).second) out.push_back(name);
  }
  return out;
}

std::vector<std::string> DifferenceNames(const std::vector<std::string>& a,
                                         const std::vector<std::string>& b) {
  std::unordered_set<std::string> set_b(b.begin(), b.end());
  std::vector<std::string> out;
  for (const auto& name : a) {
    if (set_b.count(name) == 0) out.push_back(name);
  }
  return out;
}

}  // namespace fab::explain
