#ifndef FAB_EXPLAIN_RANKING_H_
#define FAB_EXPLAIN_RANKING_H_

#include <string>
#include <vector>

namespace fab::explain {

/// Indices of the `k` largest scores, descending (stable on ties).
std::vector<int> TopKIndices(const std::vector<double>& scores, size_t k);

/// Names of the `k` highest-scoring features, descending.
std::vector<std::string> TopKNames(const std::vector<double>& scores,
                                   const std::vector<std::string>& names,
                                   size_t k);

/// Set of indices whose score ranks in the bottom `fraction` (e.g. 0.5 =
/// bottom half, the FRA removal zone). Ties broken by stable order.
std::vector<bool> BottomFractionMask(const std::vector<double>& scores,
                                     double fraction);

/// Number of common elements between two name lists (set semantics).
size_t OverlapCount(const std::vector<std::string>& a,
                    const std::vector<std::string>& b);

/// Union of two name lists, preserving first-appearance order.
std::vector<std::string> UnionNames(const std::vector<std::string>& a,
                                    const std::vector<std::string>& b);

/// Elements of `a` not present in `b`, preserving order.
std::vector<std::string> DifferenceNames(const std::vector<std::string>& a,
                                         const std::vector<std::string>& b);

}  // namespace fab::explain

#endif  // FAB_EXPLAIN_RANKING_H_
