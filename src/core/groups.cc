#include "core/groups.h"

#include <unordered_map>
#include <unordered_set>

#include "util/check.h"
#include "util/stats.h"

namespace fab::core {

Result<HorizonGroup> MergeGroup(
    const std::vector<ScoredFeatureVector>& vectors) {
  // Deterministic-reduction contract (fablint det-unordered-iter): `acc` is
  // hash-keyed for O(1) accumulation, but results are NEVER emitted in hash
  // order — `order` records first appearance across the input windows, and
  // the final ranking is a stable sort, so ties keep that order bit-for-bit
  // across platforms and standard libraries.
  std::unordered_map<std::string, std::pair<double, int>> acc;
  std::vector<std::string> order;  // first-appearance order for stability
  for (const auto& vec : vectors) {
    if (vec.features.size() != vec.importance.size()) {
      return Status::InvalidArgument(
          "feature/importance length mismatch in window " +
          std::to_string(vec.window));
    }
    for (size_t j = 0; j < vec.features.size(); ++j) {
      auto [it, inserted] = acc.try_emplace(vec.features[j], 0.0, 0);
      if (inserted) order.push_back(vec.features[j]);
      it->second.first += vec.importance[j];
      it->second.second += 1;
    }
  }
  FAB_DCHECK(order.size() == acc.size())
      << order.size() << " first-appearance names vs " << acc.size()
      << " accumulated";
  std::vector<double> mean_importance;
  mean_importance.reserve(order.size());
  for (const auto& name : order) {
    const auto it = acc.find(name);
    FAB_DCHECK(it != acc.end()) << "accumulator lost feature " << name;
    const auto& [sum, count] = it->second;
    mean_importance.push_back(sum / static_cast<double>(count));
  }
  const std::vector<int> rank = stats::ArgSortDescending(mean_importance);
  HorizonGroup group;
  group.features.reserve(order.size());
  group.importance.reserve(order.size());
  for (int idx : rank) {
    group.features.push_back(order[static_cast<size_t>(idx)]);
    group.importance.push_back(mean_importance[static_cast<size_t>(idx)]);
  }
  return group;
}

std::vector<std::string> GroupTopK(const HorizonGroup& group, size_t k) {
  std::vector<std::string> out = group.features;
  if (out.size() > k) out.resize(k);
  return out;
}

std::vector<std::string> GroupUniqueTopK(const HorizonGroup& group,
                                         const HorizonGroup& other, size_t k) {
  std::unordered_set<std::string> other_set(other.features.begin(),
                                            other.features.end());
  std::vector<std::string> out;
  for (const auto& name : group.features) {
    if (other_set.count(name) == 0) {
      out.push_back(name);
      if (out.size() >= k) break;
    }
  }
  return out;
}

}  // namespace fab::core
