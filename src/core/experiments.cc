#include "core/experiments.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iomanip>

#include "ml/forest.h"
#include "ml/gbdt.h"
#include "serve/registry.h"
#include "serve/snapshot.h"
#include "util/obs/trace.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace fab::core {

namespace {

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoull(v, nullptr, 10);
}

bool EnvFlag(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' && std::string(v) != "0";
}

std::string EnvStr(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return (v == nullptr || *v == '\0') ? fallback : v;
}

}  // namespace

ExperimentConfig ExperimentConfig::FromEnv() {
  ExperimentConfig cfg;
  cfg.seed = EnvU64("FAB_SEED", 42);
  cfg.fast = EnvFlag("FAB_FAST");
  cfg.cache_dir = EnvStr("FAB_CACHE_DIR", ".fab_cache");
  cfg.num_threads = static_cast<int>(EnvU64("FAB_THREADS", 0));

  // FRA inner models: light but expressive.
  cfg.fra.rf.n_trees = cfg.fast ? 15 : 40;
  cfg.fra.rf.max_depth = 8;
  cfg.fra.rf.max_features = 0.30;
  cfg.fra.rf.min_samples_leaf = 3.0;
  cfg.fra.xgb.n_rounds = cfg.fast ? 25 : 60;
  cfg.fra.xgb.max_depth = 4;
  cfg.fra.xgb.learning_rate = 0.12;
  cfg.fra.xgb.subsample = 0.9;
  cfg.fra.xgb.colsample = 0.8;
  cfg.fra.pfi_repeats = cfg.fast ? 1 : 2;
  cfg.fra.seed = cfg.seed ^ 0xF8Aull;

  // SHAP forest + union parameters.
  cfg.feature_vector.rf = cfg.fra.rf;
  cfg.feature_vector.shap_row_limit = cfg.fast ? 120 : 400;
  cfg.feature_vector.seed = cfg.seed ^ 0x54A9ull;

  // Scoring / improvement models (the "fine-tuned" per-scenario models).
  cfg.scoring_rf.n_trees = cfg.fast ? 20 : 80;
  cfg.scoring_rf.max_depth = 10;
  cfg.scoring_rf.max_features = 0.33;
  cfg.scoring_rf.min_samples_leaf = 2.0;
  cfg.scoring_rf.seed = cfg.seed ^ 0x5C0ull;

  cfg.improvement.cv_folds = 5;
  cfg.improvement.rf = cfg.scoring_rf;
  cfg.improvement.rf.n_trees = cfg.fast ? 15 : 50;
  cfg.improvement.xgb.n_rounds = cfg.fast ? 25 : 80;
  cfg.improvement.xgb.max_depth = 4;
  cfg.improvement.xgb.learning_rate = 0.12;
  cfg.improvement.xgb.subsample = 0.9;
  cfg.improvement.xgb.colsample = 0.8;
  cfg.improvement.seed = cfg.seed ^ 0x1417ull;

  // Exported-snapshot MLP (mirrors the ablation_complex_models setup).
  cfg.serving_mlp.hidden = {64, 32};
  cfg.serving_mlp.epochs = cfg.fast ? 40 : 120;
  cfg.serving_mlp.learning_rate = 2e-3;
  cfg.serving_mlp.seed = cfg.seed ^ 0x3E47ull;
  return cfg;
}

Experiments::Experiments(ExperimentConfig config)
    : config_(std::move(config)) {
  // Size the shared analysis pool once, up front: every downstream stage
  // (FRA fits, PFI, SHAP, CV folds, scenario fan-out) draws from it, and
  // thread count never changes results — only wall-clock. Callers that
  // construct Experiments from inside pool workers opt out.
  if (config_.manage_shared_pool) {
    util::SetSharedPoolThreads(config_.num_threads);
  }
}

std::string Experiments::ScenarioTag(StudyPeriod period, int window) const {
  return std::string(PeriodName(period)) + "_" + std::to_string(window);
}

std::string Experiments::CachePath(const std::string& name) const {
  return config_.cache_dir + "/seed" + std::to_string(config_.seed) +
         (config_.fast ? "_fast" : "_full") +
         (config_.cache_tag.empty() ? "" : "_" + config_.cache_tag) + "/" +
         name;
}

Status Experiments::EnsureCacheDir() const {
  std::error_code ec;
  std::filesystem::create_directories(CachePath(""), ec);
  if (ec) return Status::IoError("cannot create cache dir: " + ec.message());
  return Status::OK();
}

Result<const sim::SimulatedMarket*> Experiments::Market() {
  if (market_ == nullptr) {
    sim::MarketSimConfig sim_config;
    sim_config.seed = config_.seed;
    sim_config.stress = config_.stress;
    FAB_ASSIGN_OR_RETURN(sim::SimulatedMarket market,
                         sim::SimulateMarket(sim_config));
    market_ = std::make_unique<sim::SimulatedMarket>(std::move(market));
    FAB_RETURN_IF_ERROR(AddTechnicalIndicators(market_.get()));
  }
  return const_cast<const sim::SimulatedMarket*>(market_.get());
}

Result<const ScenarioDataset*> Experiments::Scenario(StudyPeriod period,
                                                     int window) {
  const auto key = std::make_pair(static_cast<int>(period), window);
  auto it = scenarios_.find(key);
  if (it != scenarios_.end()) return const_cast<const ScenarioDataset*>(it->second.get());
  FAB_ASSIGN_OR_RETURN(const sim::SimulatedMarket* market, Market());
  ScenarioOptions options;
  FAB_ASSIGN_OR_RETURN(ScenarioDataset scenario,
                       BuildScenarioDataset(*market, period, window, options));
  auto owned = std::make_unique<ScenarioDataset>(std::move(scenario));
  const ScenarioDataset* ptr = owned.get();
  scenarios_[key] = std::move(owned);
  return ptr;
}

// fablint:det-root — the experiment grid behind every results table.
Status Experiments::PrecomputeAll(const std::vector<StudyPeriod>& periods,
                                  const std::vector<int>& windows) {
  // Warm the mutating in-RAM memos (market, scenario datasets) serially;
  // after this, concurrent pipeline calls only read them.
  FAB_RETURN_IF_ERROR(Market().status());
  std::vector<std::pair<StudyPeriod, int>> pairs;
  for (StudyPeriod period : periods) {
    for (int window : windows) {
      FAB_RETURN_IF_ERROR(Scenario(period, window).status());
      pairs.emplace_back(period, window);
    }
  }
  FAB_RETURN_IF_ERROR(EnsureCacheDir());
  // Scenario fan-out: every final vector (FRA + SHAP) is seeded purely by
  // (config seed, period, window) and caches to its own file, so the
  // units are independent and the fan-out is thread-count invariant.
  FAB_TRACE_SCOPE("core/precompute_all", {{"scenarios", pairs.size()}});
  std::vector<Status> statuses(pairs.size());
  util::ParallelFor(0, pairs.size(), [&](size_t i) {
    FAB_TRACE_SCOPE("core/scenario", {{"period", PeriodName(pairs[i].first)},
                                      {"window", pairs[i].second}});
    statuses[i] = FinalVector(pairs[i].first, pairs[i].second).status();
  });
  for (const Status& s : statuses) FAB_RETURN_IF_ERROR(s);
  return Status::OK();
}

Result<FraResult> Experiments::Fra(StudyPeriod period, int window) {
  const std::string path = CachePath("fra_" + ScenarioTag(period, window) + ".csv");
  // Cache hit: name,score rows in rank order (history is not persisted).
  {
    std::ifstream in(path);
    if (in) {
      FraResult cached;
      std::string line;
      while (std::getline(in, line)) {
        if (line.empty()) continue;
        const std::vector<std::string> parts = Split(line, ',');
        if (parts.size() != 2) break;
        cached.selected.push_back(parts[0]);
        cached.selected_scores.push_back(std::strtod(parts[1].c_str(), nullptr));
      }
      if (!cached.selected.empty()) return cached;
    }
  }
  FAB_ASSIGN_OR_RETURN(const ScenarioDataset* scenario,
                       Scenario(period, window));
  FraOptions options = config_.fra;
  options.seed = config_.fra.seed + static_cast<uint64_t>(window) * 977 +
                 (period == StudyPeriod::k2019 ? 31337 : 0);
  FAB_ASSIGN_OR_RETURN(FraResult result, RunFra(scenario->data, options));
  FAB_RETURN_IF_ERROR(EnsureCacheDir());
  std::ofstream out(path);
  out << std::setprecision(17);
  for (size_t i = 0; i < result.selected.size(); ++i) {
    out << result.selected[i] << ',' << result.selected_scores[i] << '\n';
  }
  return result;
}

Result<FinalFeatureVector> Experiments::FinalVector(StudyPeriod period,
                                                    int window) {
  const std::string path =
      CachePath("fvec_" + ScenarioTag(period, window) + ".csv");
  {
    std::ifstream in(path);
    if (in) {
      FinalFeatureVector cached;
      std::string line;
      while (std::getline(in, line)) {
        if (line.empty()) continue;
        const std::vector<std::string> parts = Split(line, ',');
        if (parts.size() != 2) continue;
        if (parts[0] == "final") {
          cached.features.push_back(parts[1]);
        } else if (parts[0] == "fra") {
          cached.fra_ranked.push_back(parts[1]);
        } else if (parts[0] == "shap") {
          cached.shap_ranked.push_back(parts[1]);
        } else if (parts[0] == "overlap") {
          cached.overlap_fra_shap_top100 =
              static_cast<size_t>(std::strtoull(parts[1].c_str(), nullptr, 10));
        }
      }
      if (!cached.features.empty()) return cached;
    }
  }
  FAB_ASSIGN_OR_RETURN(const ScenarioDataset* scenario,
                       Scenario(period, window));
  FAB_ASSIGN_OR_RETURN(FraResult fra, Fra(period, window));
  FeatureVectorOptions options = config_.feature_vector;
  options.seed = config_.feature_vector.seed +
                 static_cast<uint64_t>(window) * 131 +
                 (period == StudyPeriod::k2019 ? 77777 : 0);
  FAB_ASSIGN_OR_RETURN(FinalFeatureVector result,
                       BuildFinalFeatureVector(scenario->data, fra, options));
  FAB_RETURN_IF_ERROR(EnsureCacheDir());
  std::ofstream out(path);
  out << std::setprecision(17);
  for (const auto& name : result.features) out << "final," << name << '\n';
  for (const auto& name : result.fra_ranked) out << "fra," << name << '\n';
  for (const auto& name : result.shap_ranked) out << "shap," << name << '\n';
  out << "overlap," << result.overlap_fra_shap_top100 << '\n';
  return result;
}

Result<ScoredFeatureVector> Experiments::ScoredVector(StudyPeriod period,
                                                      int window) {
  const std::string path =
      CachePath("score_" + ScenarioTag(period, window) + ".csv");
  {
    std::ifstream in(path);
    if (in) {
      ScoredFeatureVector cached;
      cached.window = window;
      std::string line;
      while (std::getline(in, line)) {
        if (line.empty()) continue;
        const std::vector<std::string> parts = Split(line, ',');
        if (parts.size() != 2) continue;
        cached.features.push_back(parts[0]);
        cached.importance.push_back(std::strtod(parts[1].c_str(), nullptr));
      }
      if (!cached.features.empty()) return cached;
    }
  }
  FAB_ASSIGN_OR_RETURN(const ScenarioDataset* scenario,
                       Scenario(period, window));
  FAB_ASSIGN_OR_RETURN(FinalFeatureVector fvec, FinalVector(period, window));
  FAB_ASSIGN_OR_RETURN(std::vector<int> positions,
                       scenario->data.FeaturePositions(fvec.features));
  FAB_ASSIGN_OR_RETURN(ml::Dataset sub,
                       scenario->data.SelectFeatures(positions));
  ml::ForestParams params = config_.scoring_rf;
  params.seed = config_.scoring_rf.seed + static_cast<uint64_t>(window);
  ml::RandomForestRegressor rf(params);
  FAB_RETURN_IF_ERROR(rf.Fit(sub.x, sub.y));
  ScoredFeatureVector result;
  result.window = window;
  result.features = fvec.features;
  result.importance = rf.FeatureImportances();
  FAB_RETURN_IF_ERROR(EnsureCacheDir());
  std::ofstream out(path);
  out << std::setprecision(17);
  for (size_t i = 0; i < result.features.size(); ++i) {
    out << result.features[i] << ',' << result.importance[i] << '\n';
  }
  return result;
}

Result<ImprovementResult> Experiments::Improvement(StudyPeriod period,
                                                   int window,
                                                   ModelKind model) {
  const std::string model_tag = model == ModelKind::kRandomForest ? "rf" : "xgb";
  const std::string path = CachePath("imp_" + ScenarioTag(period, window) +
                                     "_" + model_tag + ".csv");
  {
    std::ifstream in(path);
    if (in) {
      ImprovementResult cached;
      cached.period = period;
      cached.window = window;
      cached.model = model;
      std::string line;
      while (std::getline(in, line)) {
        if (line.empty()) continue;
        const std::vector<std::string> parts = Split(line, ',');
        if (parts.size() == 2 && parts[0] == "diverse_mse") {
          cached.diverse_mse = std::strtod(parts[1].c_str(), nullptr);
          continue;
        }
        if (parts.size() != 4) continue;
        Result<sim::DataCategory> cat = sim::CategoryFromKey(parts[0]);
        if (!cat.ok()) continue;
        CategoryImprovement ci;
        ci.category = *cat;
        ci.single_mse = std::strtod(parts[1].c_str(), nullptr);
        ci.diverse_mse = std::strtod(parts[2].c_str(), nullptr);
        ci.improvement_pct = std::strtod(parts[3].c_str(), nullptr);
        cached.per_category.push_back(ci);
      }
      if (!cached.per_category.empty()) return cached;
    }
  }
  FAB_ASSIGN_OR_RETURN(const ScenarioDataset* scenario,
                       Scenario(period, window));
  FAB_ASSIGN_OR_RETURN(FinalFeatureVector fvec, FinalVector(period, window));
  ImprovementOptions options = config_.improvement;
  options.seed = config_.improvement.seed + static_cast<uint64_t>(window) * 53;
  FAB_ASSIGN_OR_RETURN(
      ImprovementResult result,
      RunImprovementExperiment(*scenario, fvec.features, model, options));
  FAB_RETURN_IF_ERROR(EnsureCacheDir());
  std::ofstream out(path);
  out << std::setprecision(17);
  out << "diverse_mse," << result.diverse_mse << '\n';
  for (const auto& ci : result.per_category) {
    out << sim::CategoryKey(ci.category) << ',' << ci.single_mse << ','
        << ci.diverse_mse << ',' << ci.improvement_pct << '\n';
  }
  return result;
}

Result<std::vector<CategoryContribution>> Experiments::Contributions(
    StudyPeriod period, int window) {
  FAB_ASSIGN_OR_RETURN(const ScenarioDataset* scenario,
                       Scenario(period, window));
  FAB_ASSIGN_OR_RETURN(FinalFeatureVector fvec, FinalVector(period, window));
  return ComputeContributions(*scenario, fvec.features);
}

std::string Experiments::ModelDir() const { return CachePath("models"); }

Result<std::string> Experiments::ExportModel(StudyPeriod period, int window,
                                             const std::string& model) {
  serve::ModelKey key;
  key.period = PeriodName(period);
  key.window = window;
  key.model = model;
  const std::string path = ModelDir() + "/" + serve::SnapshotFileName(key);
  // Snapshot cache hit: a loadable file means the model is already
  // exported — snapshots carry full fitted state, nothing to recompute.
  if (serve::SnapshotCodec::Probe(path).ok()) return path;

  // Resolve the model name before any expensive pipeline work so a typo
  // fails fast.
  std::unique_ptr<ml::Regressor> fitted;
  if (model == "rf") {
    ml::ForestParams params = config_.scoring_rf;
    params.seed = config_.scoring_rf.seed + static_cast<uint64_t>(window);
    fitted = std::make_unique<ml::RandomForestRegressor>(params);
  } else if (model == "xgb") {
    ml::GbdtParams params = config_.improvement.xgb;
    params.seed = config_.improvement.seed + static_cast<uint64_t>(window);
    fitted = std::make_unique<ml::GbdtRegressor>(params);
  } else if (model == "mlp") {
    ml::MlpParams params = config_.serving_mlp;
    params.seed = config_.serving_mlp.seed + static_cast<uint64_t>(window);
    fitted = std::make_unique<ml::MlpRegressor>(params);
  } else {
    return Status::InvalidArgument("unknown exportable model: " + model);
  }

  FAB_ASSIGN_OR_RETURN(const ScenarioDataset* scenario,
                       Scenario(period, window));
  FAB_ASSIGN_OR_RETURN(FinalFeatureVector fvec, FinalVector(period, window));
  FAB_ASSIGN_OR_RETURN(std::vector<int> positions,
                       scenario->data.FeaturePositions(fvec.features));
  FAB_ASSIGN_OR_RETURN(ml::Dataset sub,
                       scenario->data.SelectFeatures(positions));
  FAB_RETURN_IF_ERROR(fitted->Fit(sub.x, sub.y));

  std::error_code ec;
  std::filesystem::create_directories(ModelDir(), ec);
  if (ec) return Status::IoError("cannot create model dir: " + ec.message());
  FAB_RETURN_IF_ERROR(serve::SnapshotCodec::Save(*fitted, path));
  return path;
}

Result<std::vector<std::string>> Experiments::ExportModels(StudyPeriod period,
                                                           int window) {
  std::vector<std::string> paths;
  for (const char* model : {"rf", "xgb", "mlp"}) {
    FAB_ASSIGN_OR_RETURN(std::string path, ExportModel(period, window, model));
    paths.push_back(std::move(path));
  }
  return paths;
}

Result<HorizonGroup> Experiments::Group(StudyPeriod period,
                                        const std::vector<int>& windows) {
  std::vector<ScoredFeatureVector> vectors;
  for (int window : windows) {
    FAB_ASSIGN_OR_RETURN(ScoredFeatureVector v, ScoredVector(period, window));
    vectors.push_back(std::move(v));
  }
  return MergeGroup(vectors);
}

}  // namespace fab::core
