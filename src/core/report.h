#ifndef FAB_CORE_REPORT_H_
#define FAB_CORE_REPORT_H_

#include <string>
#include <vector>

namespace fab::core {

/// Minimal ASCII table renderer used by the experiment binaries to print
/// the paper's tables.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  /// Adds one row; must match the header width.
  void AddRow(std::vector<std::string> row);

  /// Renders with column-width alignment, `| a | b |` style.
  std::string Render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renders a numeric series as a fixed-height ASCII sparkline block —
/// enough to eyeball the figures' shapes in a terminal. `labels` and
/// `values` must have equal lengths; only ~`max_points` evenly spaced
/// points are drawn.
std::string AsciiSeries(const std::string& title,
                        const std::vector<std::string>& labels,
                        const std::vector<double>& values,
                        size_t max_points = 60, int height = 12);

/// Renders several aligned series as horizontal-bar groups, one block per
/// label (used for the contribution-factor figures).
std::string AsciiGroupedBars(
    const std::string& title, const std::vector<std::string>& group_labels,
    const std::vector<std::string>& series_names,
    const std::vector<std::vector<double>>& values, int bar_width = 40);

}  // namespace fab::core

#endif  // FAB_CORE_REPORT_H_
