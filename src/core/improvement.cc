#include "core/improvement.h"

#include "ml/model_selection.h"
#include "util/thread_pool.h"

namespace fab::core {

double ImprovementResult::MeanImprovementPct() const {
  if (per_category.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& c : per_category) acc += c.improvement_pct;
  return acc / static_cast<double>(per_category.size());
}

namespace {

Result<double> CvMseOnFeatures(const ScenarioDataset& scenario,
                               const std::vector<int>& feature_positions,
                               ModelKind model,
                               const ImprovementOptions& options) {
  FAB_ASSIGN_OR_RETURN(ml::Dataset sub,
                       scenario.data.SelectFeatures(feature_positions));
  FAB_ASSIGN_OR_RETURN(
      std::vector<ml::Fold> folds,
      ml::KFold(sub.num_rows(), options.cv_folds, /*shuffle=*/true,
                options.seed ^ 0xC0FFEEull));
  if (model == ModelKind::kRandomForest) {
    ml::RandomForestRegressor rf(options.rf);
    return ml::CrossValMse(rf, sub, folds);
  }
  ml::GbdtRegressor xgb(options.xgb);
  return ml::CrossValMse(xgb, sub, folds);
}

}  // namespace

Result<ImprovementResult> RunImprovementExperiment(
    const ScenarioDataset& scenario,
    const std::vector<std::string>& final_features, ModelKind model,
    const ImprovementOptions& options) {
  if (final_features.empty()) {
    return Status::InvalidArgument("empty final feature vector");
  }
  ImprovementResult result;
  result.period = scenario.period;
  result.window = scenario.window;
  result.model = model;

  FAB_ASSIGN_OR_RETURN(std::vector<int> diverse_positions,
                       scenario.data.FeaturePositions(final_features));
  FAB_ASSIGN_OR_RETURN(
      result.diverse_mse,
      CvMseOnFeatures(scenario, diverse_positions, model, options));

  // Each represented category's CV measurement is independent (the fold
  // split and model seeds come from `options`, not a shared stream), so
  // they fan out on the shared pool; results assemble in category order.
  std::vector<sim::DataCategory> categories;
  std::vector<std::vector<int>> category_positions;
  for (sim::DataCategory category : sim::AllCategories()) {
    std::vector<int> positions = scenario.FeaturePositionsInCategory(category);
    if (positions.empty()) continue;
    categories.push_back(category);
    category_positions.push_back(std::move(positions));
  }
  std::vector<double> single_mse(categories.size(), 0.0);
  std::vector<Status> statuses(categories.size());
  util::ParallelFor(0, categories.size(), [&](size_t c) {
    Result<double> mse =
        CvMseOnFeatures(scenario, category_positions[c], model, options);
    if (!mse.ok()) {
      statuses[c] = mse.status();
      return;
    }
    single_mse[c] = *mse;
  });
  for (size_t c = 0; c < categories.size(); ++c) {
    FAB_RETURN_IF_ERROR(statuses[c]);
    CategoryImprovement ci;
    ci.category = categories[c];
    ci.single_mse = single_mse[c];
    ci.diverse_mse = result.diverse_mse;
    ci.improvement_pct = result.diverse_mse > 0.0
                             ? 100.0 * (ci.single_mse - result.diverse_mse) /
                                   result.diverse_mse
                             : 0.0;
    result.per_category.push_back(ci);
  }
  return result;
}

}  // namespace fab::core
