#ifndef FAB_CORE_FRA_H_
#define FAB_CORE_FRA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/dataset_builder.h"
#include "ml/forest.h"
#include "ml/gbdt.h"
#include "util/status.h"

namespace fab::core {

/// Options for the Feature Reduction Algorithm (paper Algorithm 1).
struct FraOptions {
  /// Loop until at most this many features remain.
  size_t target_size = 100;
  /// Initial Pearson-correlation threshold and per-iteration increment.
  double corr_threshold_start = 0.5;
  double corr_threshold_step = 0.025;
  /// Rank fraction counted as "bottom" in each importance method.
  double bottom_fraction = 0.5;
  /// Validation share held out for permutation importance.
  double pfi_holdout_fraction = 0.25;
  int pfi_repeats = 2;
  /// Models used by the inner evaluation methods.
  ml::ForestParams rf;
  ml::GbdtParams xgb;
  uint64_t seed = 29;
  /// Hard cap on iterations (termination is guaranteed anyway once the
  /// correlation threshold exceeds 1, but this bounds wall-clock).
  int max_iterations = 40;
};

/// Snapshot of one FRA iteration, for reporting and tests.
struct FraIteration {
  int iteration = 0;
  size_t features_before = 0;
  size_t features_removed = 0;
  double corr_threshold = 0.0;
};

/// Output of the Feature Reduction Algorithm.
struct FraResult {
  /// Surviving feature names, ranked by final consensus importance
  /// (mean normalized rank across RF-MDI, XGB-MDI, RF-PFI, XGB-PFI).
  std::vector<std::string> selected;
  /// Consensus importance score per selected feature (higher = better).
  std::vector<double> selected_scores;
  std::vector<FraIteration> history;
};

/// Runs Algorithm 1 on a scenario's candidate features: iteratively
/// removes features ranking in the bottom `bottom_fraction` of *all four*
/// importance methods (RF/XGB × MDI/PFI) whose |Pearson| correlation with
/// the target is below a threshold that tightens by `corr_threshold_step`
/// each iteration, until at most `target_size` features remain.
[[nodiscard]] Result<FraResult> RunFra(const ml::Dataset& data, const FraOptions& options);

}  // namespace fab::core

#endif  // FAB_CORE_FRA_H_
