#ifndef FAB_CORE_GROUPS_H_
#define FAB_CORE_GROUPS_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace fab::core {

/// One scenario's final feature vector with fine-tuned-RF importances
/// attached (input to the short/long-term group analysis).
struct ScoredFeatureVector {
  int window = 1;
  std::vector<std::string> features;
  /// RF importance per feature, parallel to `features`.
  std::vector<double> importance;
};

/// A merged horizon group (paper Section 4.2): features from the member
/// windows' final vectors, importance of duplicates averaged, ranked
/// descending.
struct HorizonGroup {
  std::vector<std::string> features;
  std::vector<double> importance;
};

/// Merges the final vectors of several windows into one group: a feature
/// appearing in multiple vectors gets the mean of its importances.
/// Result is ranked by importance, descending.
[[nodiscard]] Result<HorizonGroup> MergeGroup(const std::vector<ScoredFeatureVector>& vectors);

/// Top-k features of a group (Table 3 rows with k = 5).
std::vector<std::string> GroupTopK(const HorizonGroup& group, size_t k);

/// The k most important features of `group` that do NOT appear in
/// `other` (Table 4 rows with k = 20).
std::vector<std::string> GroupUniqueTopK(const HorizonGroup& group,
                                         const HorizonGroup& other, size_t k);

}  // namespace fab::core

#endif  // FAB_CORE_GROUPS_H_
