#include "core/crypto100.h"

#include <cmath>

namespace fab::core {

Result<double> Crypto100Value(double sum_mcap, double power) {
  if (!(sum_mcap > 1.0)) {
    return Status::InvalidArgument(
        "crypto100 requires a market-cap sum > 1 USD");
  }
  const double scale = std::pow(std::log10(sum_mcap), power);
  return sum_mcap / scale;
}

Result<std::vector<double>> Crypto100Series(const std::vector<double>& sum_mcap,
                                            double power) {
  std::vector<double> out(sum_mcap.size());
  for (size_t i = 0; i < sum_mcap.size(); ++i) {
    FAB_ASSIGN_OR_RETURN(out[i], Crypto100Value(sum_mcap[i], power));
  }
  return out;
}

Result<double> LogScaleDistance(const std::vector<double>& index_series,
                                const std::vector<double>& reference_series) {
  if (index_series.size() != reference_series.size() || index_series.empty()) {
    return Status::InvalidArgument("series must be equal-length, non-empty");
  }
  double acc = 0.0;
  for (size_t i = 0; i < index_series.size(); ++i) {
    if (!(index_series[i] > 0.0) || !(reference_series[i] > 0.0)) {
      return Status::InvalidArgument("series must be strictly positive");
    }
    acc += std::fabs(std::log10(index_series[i] / reference_series[i]));
  }
  return acc / static_cast<double>(index_series.size());
}

}  // namespace fab::core
