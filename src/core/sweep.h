#ifndef FAB_CORE_SWEEP_H_
#define FAB_CORE_SWEEP_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/dataset_builder.h"
#include "sim/stress.h"
#include "util/status.h"

namespace fab::core {

/// Property-based seed×regime sweep over the full experiment pipeline.
///
/// The paper evaluates its claims on exactly two study periods × five
/// horizon windows of one simulated market. The sweep turns that grid
/// into a robustness study: it fans `Experiments::PrecomputeAll` across
/// a seeds × stress-regimes grid on the shared pool and checks
/// machine-checkable *shape* properties of the results — not exact
/// values, which differ per seed, but the claims the paper actually
/// makes (features stay finite, FRA keeps on-chain signal, diversity
/// helps at long horizons, importance ranks are seed-stable). Every
/// violation is reported with the exact seed/regime/scenario that
/// reproduces it.

/// A named stress configuration (one grid axis value).
struct RegimeSpec {
  std::string name;
  sim::StressConfig stress;
};

/// The standard regime axis: baseline plus each injector alone plus
/// composed storms. Names are stable — CI, BENCH baselines and repro
/// commands reference them.
const std::vector<RegimeSpec>& StandardRegimes();

/// Looks up a standard regime by name.
[[nodiscard]] Result<RegimeSpec> RegimeByName(const std::string& name);

/// Sweep grid and property thresholds.
struct SweepOptions {
  /// Grid axes. Cells = seeds × regimes; each cell evaluates every
  /// period × window scenario.
  std::vector<uint64_t> seeds;
  std::vector<RegimeSpec> regimes;
  std::vector<StudyPeriod> periods = {StudyPeriod::k2019};
  std::vector<int> windows = {1, 30};

  /// Cache root for per-cell artifacts (tagged per regime inside).
  std::string cache_dir = ".fab_cache/sweep";

  /// The first `improvement_seeds` seeds of every regime also run the
  /// (expensive) improvement CV experiment for the longest window at or
  /// above `horizon_threshold`.
  int improvement_seeds = 2;
  int horizon_threshold = 30;

  /// diverse_beats_single_long passes when the mean per-category
  /// improvement of the diverse model is at least this (percent).
  double min_mean_improvement_pct = 0.0;

  /// rank_stability passes when the mean pairwise Jaccard overlap of
  /// the per-seed top-`rank_top_k` importance *category* sets within a
  /// regime is at least this. Individual feature names are legitimately
  /// seed-specific (each seed is a different market realization); which
  /// data-source categories dominate the importance ranking is the
  /// paper's actual claim, and is what must stay stable.
  double rank_stability_min_jaccard = 0.30;
  size_t rank_top_k = 10;

  /// Shrinks every model far below the standard fast profile — unit
  /// tests only; property results under tiny models are not meaningful.
  bool tiny_models = false;
};

/// One failed property check, with everything needed to reproduce it.
struct PropertyViolation {
  std::string property;
  std::string regime;
  uint64_t seed = 0;
  /// "2019_30"-style scenario tag, or "-" for regime-level properties.
  std::string scenario;
  std::string detail;
};

/// Pass counts for one property.
struct PropertyStat {
  std::string property;
  size_t checked = 0;
  size_t passed = 0;
};

/// Per-regime rollup.
struct RegimeReport {
  std::string regime;
  size_t cells = 0;
  size_t cell_errors = 0;
  size_t checks = 0;
  size_t passed = 0;
  std::vector<PropertyStat> properties;
};

/// The full sweep outcome.
struct SweepReport {
  size_t cells = 0;
  size_t cell_errors = 0;
  size_t checks = 0;
  size_t violation_count = 0;
  std::vector<PropertyStat> properties;
  std::vector<RegimeReport> regimes;
  std::vector<PropertyViolation> violations;
  /// First per-cell pipeline error (diagnostics; errors are counted,
  /// not fatal).
  std::string first_error;

  double pass_rate() const {
    return checks == 0
               ? 1.0
               : static_cast<double>(checks - violation_count) /
                     static_cast<double>(checks);
  }

  /// BENCH_sweep.json-shaped document (deterministic: no timestamps).
  /// The scalar `results` block is what tools/perf_gate gates on;
  /// property/regime tables and the violation list (with repro
  /// commands) ride along for humans.
  std::string ToJson() const;
};

/// Runs the sweep. Cells are fanned over the shared pool; each cell's
/// pipeline errors are recorded (counted in `cell_errors`), not fatal,
/// mirroring how a robustness study must survive individual blowups.
/// Fails only on an empty/invalid grid.
[[nodiscard]] Result<SweepReport> RunSweep(const SweepOptions& options);

}  // namespace fab::core

#endif  // FAB_CORE_SWEEP_H_
