#ifndef FAB_CORE_FEATURE_VECTOR_H_
#define FAB_CORE_FEATURE_VECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/dataset_builder.h"
#include "core/fra.h"
#include "util/status.h"

namespace fab::core {

/// Options for assembling the final per-scenario feature vector.
struct FeatureVectorOptions {
  /// How many top-ranked features each of FRA and SHAP contributes to the
  /// union (paper: 75).
  size_t union_top_k = 75;
  /// Rows subsampled (evenly) for the SHAP computation; 0 = all rows.
  size_t shap_row_limit = 400;
  ml::ForestParams rf;
  uint64_t seed = 31;
};

/// The final feature vector of one scenario (paper Section 3.2): the
/// union of FRA's and SHAP's top-`union_top_k` features.
struct FinalFeatureVector {
  std::vector<std::string> features;
  /// FRA survivors (ranked) and the SHAP ranking over all candidates.
  std::vector<std::string> fra_ranked;
  std::vector<std::string> shap_ranked;
  /// |FRA survivors ∩ SHAP top-100| — the validation overlap the paper
  /// reports (~78 on average).
  size_t overlap_fra_shap_top100 = 0;
};

/// Computes mean-|SHAP| scores for every candidate feature using a random
/// forest fitted on the full scenario (rows subsampled for tractability).
[[nodiscard]] Result<std::vector<double>> ShapScores(const ml::Dataset& data,
                                       const FeatureVectorOptions& options);

/// Builds the final feature vector: union of FRA's top features and the
/// SHAP top features.
[[nodiscard]] Result<FinalFeatureVector> BuildFinalFeatureVector(
    const ml::Dataset& data, const FraResult& fra,
    const FeatureVectorOptions& options);

}  // namespace fab::core

#endif  // FAB_CORE_FEATURE_VECTOR_H_
