#include "core/dataset_builder.h"

#include <cmath>

#include "core/crypto100.h"
#include "ta/ta.h"

namespace fab::core {

Date PeriodStart(StudyPeriod period) {
  return period == StudyPeriod::k2017 ? Date(2017, 1, 1) : Date(2019, 1, 1);
}

Date PeriodEnd() { return Date(2023, 6, 30); }

const char* PeriodName(StudyPeriod period) {
  return period == StudyPeriod::k2017 ? "2017" : "2019";
}

const std::vector<int>& PredictionWindows() {
  // Intentionally leaked function-local singleton: avoids a destructor
  // running at unspecified shutdown order.
  static const std::vector<int>* kWindows =
      // fablint:allow(hygiene-new-delete)
      new std::vector<int>{1, 7, 30, 90, 180};
  return *kWindows;
}

namespace {

/// Adds one derived column + catalog entry under kTechnical.
struct TechSink {
  sim::SimulatedMarket* market;
  Status status = Status::OK();

  void Add(const std::string& name, table::Column col,
           const std::string& desc) {
    if (!status.ok()) return;
    Status s = market->metrics.AddColumn(name, std::move(col));
    if (!s.ok()) {
      status = s;
      return;
    }
    status = market->catalog.Add(name, sim::DataCategory::kTechnical, desc);
  }
};

}  // namespace

Status AddTechnicalIndicators(sim::SimulatedMarket* market) {
  const std::vector<double>& close = market->latent.btc_close;
  const std::vector<double>& high = market->latent.btc_high;
  const std::vector<double>& low = market->latent.btc_low;
  const std::vector<double>& volume = market->latent.btc_volume_usd;
  const std::vector<double> mcap = market->panel.BtcMcap();

  TechSink sink{market};

  // Moving-average sweeps over the three base series the paper's Table 4
  // references (close-price, market-cap, volume).
  struct Base {
    const char* label;
    const std::vector<double>* series;
  };
  const Base kBases[] = {
      {"close-price", &close}, {"market-cap", &mcap}, {"volume", &volume}};
  const int kWindows[] = {5, 10, 14, 20, 30, 50, 100, 200};
  for (const Base& base : kBases) {
    for (int w : kWindows) {
      sink.Add("EMA" + std::to_string(w) + "_" + base.label,
               ta::Ema(*base.series, w),
               "exponential moving average of " + std::string(base.label));
      sink.Add("SMA_" + std::to_string(w) + "_" + base.label,
               ta::Sma(*base.series, w),
               "simple moving average of " + std::string(base.label));
    }
  }

  // Oscillators and band indicators over BTC OHLCV.
  sink.Add("RSI14", ta::Rsi(close, 14), "14-day relative strength index");
  sink.Add("RSI30", ta::Rsi(close, 30), "30-day relative strength index");
  {
    ta::MacdResult macd = ta::Macd(close);
    sink.Add("MACD_line", std::move(macd.line), "MACD line (12/26 EMA diff)");
    sink.Add("MACD_signal", std::move(macd.signal), "MACD signal (9 EMA)");
    sink.Add("MACD_hist", std::move(macd.histogram), "MACD histogram");
  }
  {
    ta::BollingerResult boll = ta::Bollinger(close, 20);
    sink.Add("BB_upper", std::move(boll.upper), "Bollinger upper band (20, 2)");
    sink.Add("BB_lower", std::move(boll.lower), "Bollinger lower band (20, 2)");
    sink.Add("BB_bandwidth", std::move(boll.bandwidth), "Bollinger bandwidth");
    sink.Add("BB_percent_b", std::move(boll.percent_b), "Bollinger %B");
  }
  sink.Add("ATR14", ta::Atr(high, low, close, 14), "14-day average true range");
  sink.Add("ROC7", ta::Roc(close, 7), "7-day rate of change");
  sink.Add("ROC30", ta::Roc(close, 30), "30-day rate of change");
  sink.Add("MOM10", ta::Momentum(close, 10), "10-day momentum");
  sink.Add("MOM30", ta::Momentum(close, 30), "30-day momentum");
  {
    ta::StochasticResult st = ta::Stochastic(high, low, close, 14, 3);
    sink.Add("STOCH_K", std::move(st.percent_k), "stochastic %K (14)");
    sink.Add("STOCH_D", std::move(st.percent_d), "stochastic %D (3)");
  }
  sink.Add("WILLR14", ta::WilliamsR(high, low, close, 14), "Williams %R (14)");
  sink.Add("CCI20", ta::Cci(high, low, close, 20), "commodity channel index");
  sink.Add("OBV", ta::Obv(close, volume), "on-balance volume");
  sink.Add("CMF20", ta::ChaikinMoneyFlow(high, low, close, volume, 20),
           "Chaikin money flow (20)");
  sink.Add("RVOL30", ta::RealizedVolatility(close, 30),
           "30-day realized volatility (annualized)");
  sink.Add("DRAWDOWN", ta::Drawdown(close), "drawdown from running maximum");

  return sink.status;
}

size_t ScenarioDataset::CandidatesInCategory(sim::DataCategory category) const {
  size_t n = 0;
  for (sim::DataCategory c : categories) n += (c == category);
  return n;
}

std::vector<int> ScenarioDataset::FeaturePositionsInCategory(
    sim::DataCategory category) const {
  std::vector<int> out;
  for (size_t j = 0; j < categories.size(); ++j) {
    if (categories[j] == category) out.push_back(static_cast<int>(j));
  }
  return out;
}

Result<ScenarioDataset> BuildScenarioDataset(const sim::SimulatedMarket& market,
                                             StudyPeriod period, int window,
                                             const ScenarioOptions& options) {
  if (window < 1) {
    return Status::InvalidArgument("prediction window must be >= 1 day");
  }
  const Date start = PeriodStart(period);
  const Date end = PeriodEnd();

  // Target: Crypto100 price series over the full simulation (so the
  // `window`-day-ahead target is available near the period end).
  FAB_ASSIGN_OR_RETURN(std::vector<double> crypto100,
                       Crypto100Series(market.top100_mcap_sum));

  // 1-2. Restrict to the period and to metrics recording by its start.
  table::Table period_table = market.metrics.SliceRows(start, end);
  const std::vector<std::string> started =
      table::ColumnsStartedBy(period_table, start.AddDays(30));
  FAB_ASSIGN_OR_RETURN(table::Table candidates,
                       period_table.SelectColumns(started));

  // 3. Clean.
  ScenarioDataset scenario;
  scenario.period = period;
  scenario.window = window;
  scenario.cleaning = table::CleanTable(&candidates, options.cleaning);

  // 4. Attach the future target (negative shift brings later values back).
  {
    const int full_start = market.latent.FindDay(candidates.index().front());
    if (full_start < 0) return Status::Internal("period start out of range");
    table::Column target(candidates.num_rows());
    for (size_t r = 0; r < candidates.num_rows(); ++r) {
      const size_t future =
          static_cast<size_t>(full_start) + r + static_cast<size_t>(window);
      if (future < crypto100.size()) target.Set(r, crypto100[future]);
    }
    FAB_RETURN_IF_ERROR(candidates.AddColumn("__target__", std::move(target)));
  }

  // 5. Drop rows with any nulls (indicator warm-up, USDC pre-launch in
  // the 2017 set would already be column-dropped, missing target tail).
  table::Table complete = candidates.DropRowsWithNulls();
  if (complete.num_rows() < 100) {
    return Status::FailedPrecondition(
        "scenario has fewer than 100 complete rows");
  }

  // Assemble the ml::Dataset.
  std::vector<std::vector<double>> cols;
  for (const auto& name : complete.column_names()) {
    if (name == "__target__") continue;
    const table::Column& c = **complete.GetColumn(name);
    cols.push_back(c.ToDense(0.0));
    scenario.data.feature_names.push_back(name);
    FAB_ASSIGN_OR_RETURN(sim::DataCategory cat, market.catalog.CategoryOf(name));
    scenario.categories.push_back(cat);
  }
  FAB_ASSIGN_OR_RETURN(scenario.data.x,
                       ml::ColMatrix::FromColumns(std::move(cols)));
  scenario.data.y = (*complete.GetColumn("__target__"))->ToDense(0.0);
  scenario.dates = complete.index();
  return scenario;
}

}  // namespace fab::core
