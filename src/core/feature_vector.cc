#include "core/feature_vector.h"

#include <algorithm>

#include "explain/ranking.h"
#include "explain/shap.h"
#include "util/stats.h"

namespace fab::core {

Result<std::vector<double>> ShapScores(const ml::Dataset& data,
                                       const FeatureVectorOptions& options) {
  ml::ForestParams rf_params = options.rf;
  rf_params.seed = options.seed ^ 0x5AA9ull;
  ml::RandomForestRegressor rf(rf_params);
  FAB_RETURN_IF_ERROR(rf.Fit(data.x, data.y));

  // Evenly subsample rows for tractability (SHAP is the costly step).
  const size_t n = data.num_rows();
  const size_t limit = options.shap_row_limit == 0
                           ? n
                           : std::min(options.shap_row_limit, n);
  std::vector<int> rows;
  rows.reserve(limit);
  for (size_t k = 0; k < limit; ++k) {
    rows.push_back(static_cast<int>(k * n / limit));
  }
  const ml::ColMatrix sample = data.x.TakeRows(rows);
  return explain::MeanAbsShapForest(rf, sample);
}

Result<FinalFeatureVector> BuildFinalFeatureVector(
    const ml::Dataset& data, const FraResult& fra,
    const FeatureVectorOptions& options) {
  FAB_ASSIGN_OR_RETURN(std::vector<double> shap, ShapScores(data, options));

  FinalFeatureVector out;
  out.fra_ranked = fra.selected;
  out.shap_ranked =
      explain::TopKNames(shap, data.feature_names, data.num_features());

  std::vector<std::string> fra_top = fra.selected;
  if (fra_top.size() > options.union_top_k) {
    fra_top.resize(options.union_top_k);
  }
  std::vector<std::string> shap_top = out.shap_ranked;
  if (shap_top.size() > options.union_top_k) {
    shap_top.resize(options.union_top_k);
  }
  out.features = explain::UnionNames(fra_top, shap_top);

  std::vector<std::string> shap_top100 = out.shap_ranked;
  if (shap_top100.size() > 100) shap_top100.resize(100);
  out.overlap_fra_shap_top100 =
      explain::OverlapCount(fra.selected, shap_top100);
  return out;
}

}  // namespace fab::core
