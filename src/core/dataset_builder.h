#ifndef FAB_CORE_DATASET_BUILDER_H_
#define FAB_CORE_DATASET_BUILDER_H_

#include <string>
#include <vector>

#include "ml/matrix.h"
#include "sim/market_sim.h"
#include "table/ops.h"
#include "table/table.h"
#include "util/date.h"
#include "util/status.h"

namespace fab::core {

/// The two study periods (paper Section 3.1.2): set 2017 covers Jan 2017 –
/// Jun 2023; set 2019 starts at the Jan 2019 market bottom, after USDC and
/// the fear-greed index began recording.
enum class StudyPeriod { k2017 = 0, k2019 = 1 };

Date PeriodStart(StudyPeriod period);
Date PeriodEnd();
const char* PeriodName(StudyPeriod period);

/// The paper's prediction windows, in days.
const std::vector<int>& PredictionWindows();

/// Derives the technical-indicator family from the raw BTC OHLCV columns
/// and registers every new column under `DataCategory::kTechnical`:
/// EMA/SMA sweeps over close/market-cap/volume, RSI, MACD, Bollinger,
/// ATR, ROC, momentum, stochastic, Williams %R, CCI, OBV, CMF, realized
/// volatility and drawdown. Idempotent per column name (fails on rerun).
[[nodiscard]] Status AddTechnicalIndicators(sim::SimulatedMarket* market);

/// A fully prepared supervised scenario (one period × one window).
struct ScenarioDataset {
  StudyPeriod period;
  int window = 1;
  /// Feature matrix, target (Crypto100 price `window` days ahead), names.
  ml::Dataset data;
  /// Category of each feature, parallel to data.feature_names.
  std::vector<sim::DataCategory> categories;
  /// Dates of the retained rows (diagnostics / plotting).
  std::vector<Date> dates;
  /// What the cleaning phase removed.
  table::CleaningReport cleaning;

  /// Number of candidate features in `category`.
  size_t CandidatesInCategory(sim::DataCategory category) const;

  /// Positions of all features belonging to `category`.
  std::vector<int> FeaturePositionsInCategory(
      sim::DataCategory category) const;
};

/// Options controlling scenario assembly.
struct ScenarioOptions {
  table::CleaningOptions cleaning;
};

/// Builds the scenario dataset for (period, window):
///  1. restrict the metric table to the period,
///  2. drop metrics that had not started recording by the period start,
///  3. clean (drop sparse/flat/duplicate columns, interpolate gaps),
///  4. attach the target: Crypto100 price `window` days ahead,
///  5. drop rows with remaining nulls (indicator warm-up) or no target.
/// Requires AddTechnicalIndicators to have run on `market`.
[[nodiscard]] Result<ScenarioDataset> BuildScenarioDataset(const sim::SimulatedMarket& market,
                                             StudyPeriod period, int window,
                                             const ScenarioOptions& options);

}  // namespace fab::core

#endif  // FAB_CORE_DATASET_BUILDER_H_
