#include "core/contribution.h"

#include <unordered_map>
#include <unordered_set>

namespace fab::core {

Result<std::vector<CategoryContribution>> ComputeContributions(
    const ScenarioDataset& scenario,
    const std::vector<std::string>& final_features) {
  std::unordered_map<std::string, sim::DataCategory> category_of;
  for (size_t j = 0; j < scenario.data.feature_names.size(); ++j) {
    category_of[scenario.data.feature_names[j]] = scenario.categories[j];
  }

  std::unordered_map<int, size_t> selected_count;
  for (const auto& name : final_features) {
    auto it = category_of.find(name);
    if (it == category_of.end()) {
      return Status::NotFound("final feature not among candidates: " + name);
    }
    ++selected_count[static_cast<int>(it->second)];
  }

  std::vector<CategoryContribution> out;
  // Deterministic-reduction contract (fablint det-unordered-iter): counts
  // accumulate in hash maps above, but rows are emitted in catalog index
  // order (AllCategories()), never in hash-iteration order.
  for (sim::DataCategory category : sim::AllCategories()) {
    CategoryContribution c;
    c.category = category;
    c.candidates = scenario.CandidatesInCategory(category);
    if (c.candidates == 0) continue;
    auto it = selected_count.find(static_cast<int>(category));
    c.selected = it == selected_count.end() ? 0 : it->second;
    c.contribution_factor =
        static_cast<double>(c.selected) / static_cast<double>(c.candidates);
    out.push_back(c);
  }
  return out;
}

}  // namespace fab::core
