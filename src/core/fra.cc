#include "core/fra.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "explain/correlation.h"
#include "explain/permutation.h"
#include "explain/ranking.h"
#include "util/obs/trace.h"
#include "util/stats.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace fab::core {

namespace {

/// The four inner importance vectors of one FRA iteration.
struct MethodImportances {
  std::vector<double> rf_mdi;
  std::vector<double> xgb_mdi;
  std::vector<double> rf_pfi;
  std::vector<double> xgb_pfi;
};

Result<MethodImportances> EvaluateMethods(const ml::Dataset& sub,
                                          const FraOptions& options,
                                          uint64_t iteration_seed) {
  // Shuffled train/holdout split; PFI measures on the holdout.
  const size_t n = sub.num_rows();
  std::vector<int> rows(n);
  std::iota(rows.begin(), rows.end(), 0);
  Rng rng(iteration_seed);
  rng.Shuffle(rows);
  const size_t holdout =
      std::max<size_t>(20, static_cast<size_t>(options.pfi_holdout_fraction *
                                               static_cast<double>(n)));
  if (holdout >= n) return Status::InvalidArgument("dataset too small for FRA");
  const std::vector<int> valid_rows(rows.begin(),
                                    rows.begin() + static_cast<long>(holdout));
  const std::vector<int> train_rows(rows.begin() + static_cast<long>(holdout),
                                    rows.end());
  const ml::Dataset train = sub.TakeRows(train_rows);
  const ml::Dataset valid = sub.TakeRows(valid_rows);

  ml::ForestParams rf_params = options.rf;
  rf_params.seed = iteration_seed ^ 0x8Fu;
  ml::GbdtParams xgb_params = options.xgb;
  xgb_params.seed = iteration_seed ^ 0x9Bu;

  // The two model fits are independent (each seeds its own RNG from the
  // iteration seed), as are the two PFI passes afterwards — run each pair
  // concurrently on the shared pool. Inner parallelism (tree training,
  // per-feature PFI) nests safely by running inline on the worker.
  ml::RandomForestRegressor rf(rf_params);
  ml::GbdtRegressor xgb(xgb_params);
  Status fit_status[2];
  util::ParallelFor(0, 2, [&](size_t i) {
    fit_status[i] = i == 0 ? rf.Fit(train.x, train.y)
                           : xgb.Fit(train.x, train.y);
  });
  FAB_RETURN_IF_ERROR(fit_status[0]);
  FAB_RETURN_IF_ERROR(fit_status[1]);

  MethodImportances m;
  m.rf_mdi = rf.FeatureImportances();
  m.xgb_mdi = xgb.FeatureImportances();
  Result<std::vector<double>> pfi_result[2] = {Status::Internal("pending"),
                                               Status::Internal("pending")};
  util::ParallelFor(0, 2, [&](size_t i) {
    explain::PermutationOptions pfi;
    pfi.n_repeats = options.pfi_repeats;
    pfi.seed = iteration_seed ^ (i == 0 ? 0xA7u : 0xB3u);
    pfi_result[i] = i == 0 ? explain::PermutationImportance(rf, valid, pfi)
                           : explain::PermutationImportance(xgb, valid, pfi);
  });
  FAB_ASSIGN_OR_RETURN(m.rf_pfi, std::move(pfi_result[0]));
  FAB_ASSIGN_OR_RETURN(m.xgb_pfi, std::move(pfi_result[1]));
  return m;
}

/// Consensus score: 1 - mean normalized descending rank across methods.
std::vector<double> ConsensusScores(const MethodImportances& m) {
  const std::vector<const std::vector<double>*> methods = {
      &m.rf_mdi, &m.xgb_mdi, &m.rf_pfi, &m.xgb_pfi};
  const size_t n = m.rf_mdi.size();
  std::vector<double> score(n, 0.0);
  for (const auto* imp : methods) {
    const std::vector<int> order = stats::ArgSortDescending(*imp);
    for (size_t rank = 0; rank < order.size(); ++rank) {
      const double normalized =
          n > 1 ? static_cast<double>(rank) / static_cast<double>(n - 1) : 0.0;
      score[static_cast<size_t>(order[rank])] += (1.0 - normalized);
    }
  }
  for (double& v : score) v /= static_cast<double>(methods.size());
  return score;
}

}  // namespace

// fablint:det-root — FRA elimination order is golden-pinned.
Result<FraResult> RunFra(const ml::Dataset& data, const FraOptions& options) {
  if (options.target_size < 1) {
    return Status::InvalidArgument("target_size must be >= 1");
  }
  if (data.num_features() == 0) {
    return Status::InvalidArgument("no candidate features");
  }

  std::vector<int> current(data.num_features());
  std::iota(current.begin(), current.end(), 0);

  FraResult result;
  double corr_threshold = options.corr_threshold_start;
  MethodImportances last_methods;
  bool have_methods = false;

  for (int iter = 0;
       current.size() > options.target_size && iter < options.max_iterations;
       ++iter) {
    // Explicit span object (not the macro) so the features-removed count,
    // only known at the bottom of the iteration, lands on the end event.
    obs::TraceSpan iter_span("fra/iteration",
                             {{"iter", iter},
                              {"features", current.size()},
                              {"corr_threshold", corr_threshold}});
    FAB_ASSIGN_OR_RETURN(ml::Dataset sub, data.SelectFeatures(current));
    FAB_ASSIGN_OR_RETURN(
        MethodImportances m,
        EvaluateMethods(sub, options,
                        options.seed + static_cast<uint64_t>(iter) * 0x51ull));
    const std::vector<double> corr =
        explain::AbsFeatureTargetCorrelations(sub);

    const std::vector<bool> bottom_rf_mdi =
        explain::BottomFractionMask(m.rf_mdi, options.bottom_fraction);
    const std::vector<bool> bottom_xgb_mdi =
        explain::BottomFractionMask(m.xgb_mdi, options.bottom_fraction);
    const std::vector<bool> bottom_rf_pfi =
        explain::BottomFractionMask(m.rf_pfi, options.bottom_fraction);
    const std::vector<bool> bottom_xgb_pfi =
        explain::BottomFractionMask(m.xgb_pfi, options.bottom_fraction);

    std::vector<int> keep;
    keep.reserve(current.size());
    size_t removed = 0;
    for (size_t j = 0; j < current.size(); ++j) {
      const bool remove = bottom_rf_mdi[j] && bottom_xgb_mdi[j] &&
                          bottom_rf_pfi[j] && bottom_xgb_pfi[j] &&
                          corr[j] < corr_threshold;
      if (remove) {
        ++removed;
      } else {
        keep.push_back(current[j]);
      }
    }

    iter_span.AddArg("removed", removed);
    result.history.push_back(FraIteration{iter, current.size(), removed,
                                          corr_threshold});
    // Never remove everything: fall back to keeping the consensus-best
    // `target_size` features if a pathological mask empties the set.
    if (keep.empty()) {
      const std::vector<double> scores = ConsensusScores(m);
      for (int idx : explain::TopKIndices(scores, options.target_size)) {
        keep.push_back(current[static_cast<size_t>(idx)]);
      }
    }
    current = std::move(keep);
    last_methods = std::move(m);
    have_methods = true;
    corr_threshold += options.corr_threshold_step;
  }

  // Final consensus ranking over the surviving set. Reuse the last
  // evaluation when its size matches (nothing was removed in the final
  // iteration); otherwise evaluate once more.
  FAB_ASSIGN_OR_RETURN(ml::Dataset final_sub, data.SelectFeatures(current));
  std::vector<double> scores;
  if (have_methods && last_methods.rf_mdi.size() == current.size()) {
    scores = ConsensusScores(last_methods);
  } else {
    FAB_ASSIGN_OR_RETURN(MethodImportances m,
                         EvaluateMethods(final_sub, options,
                                         options.seed ^ 0xF1A1ull));
    scores = ConsensusScores(m);
  }

  const std::vector<int> order = stats::ArgSortDescending(scores);
  result.selected.reserve(current.size());
  result.selected_scores.reserve(current.size());
  for (int idx : order) {
    result.selected.push_back(
        data.feature_names[static_cast<size_t>(current[static_cast<size_t>(idx)])]);
    result.selected_scores.push_back(scores[static_cast<size_t>(idx)]);
  }
  return result;
}

}  // namespace fab::core
