#include "core/sweep.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <numeric>
#include <set>
#include <unordered_map>
#include <utility>

#include "core/experiments.h"
#include "util/obs/trace.h"
#include "util/thread_pool.h"

namespace fab::core {

namespace {

// Property names (stable identifiers: they appear in BENCH_sweep.json,
// CI logs and EXPERIMENTS.md).
constexpr const char* kNoNanOrInf = "no_nan_or_inf";
constexpr const char* kFraRetainsOnchain = "fra_retains_onchain";
constexpr const char* kDiverseBeatsSingleLong = "diverse_beats_single_long";
constexpr const char* kRankStability = "rank_stability";

struct PropertyCheck {
  std::string property;
  bool passed = false;
  std::string scenario;  // "-" for regime-level checks
  std::string detail;    // violation description (empty when passed)
};

struct CellOutcome {
  Status status = Status::OK();
  std::vector<PropertyCheck> checks;
  /// Categories of the top-k importance features of the anchor
  /// scenario (sorted, unique), for the cross-seed rank-stability
  /// property.
  std::vector<std::string> anchor_top_categories;
};

/// The hermetic per-cell pipeline configuration: the standard fast-mode
/// model block (mirroring ExperimentConfig::FromEnv with FAB_FAST=1,
/// but independent of the environment), reseeded per cell and pointed
/// at a regime-tagged cache.
ExperimentConfig CellConfig(const SweepOptions& options,
                            const RegimeSpec& regime, uint64_t seed) {
  ExperimentConfig cfg;
  cfg.seed = seed;
  cfg.fast = true;
  cfg.cache_dir = options.cache_dir;
  cfg.cache_tag = regime.name;
  cfg.manage_shared_pool = false;
  cfg.stress = regime.stress;

  cfg.fra.rf.n_trees = 15;
  cfg.fra.rf.max_depth = 8;
  cfg.fra.rf.max_features = 0.30;
  cfg.fra.rf.min_samples_leaf = 3.0;
  cfg.fra.xgb.n_rounds = 25;
  cfg.fra.xgb.max_depth = 4;
  cfg.fra.xgb.learning_rate = 0.12;
  cfg.fra.xgb.subsample = 0.9;
  cfg.fra.xgb.colsample = 0.8;
  cfg.fra.pfi_repeats = 1;
  cfg.fra.seed = cfg.seed ^ 0xF8Aull;

  cfg.feature_vector.rf = cfg.fra.rf;
  cfg.feature_vector.shap_row_limit = 120;
  cfg.feature_vector.seed = cfg.seed ^ 0x54A9ull;

  cfg.scoring_rf.n_trees = 20;
  cfg.scoring_rf.max_depth = 10;
  cfg.scoring_rf.max_features = 0.33;
  cfg.scoring_rf.min_samples_leaf = 2.0;
  cfg.scoring_rf.seed = cfg.seed ^ 0x5C0ull;

  cfg.improvement.cv_folds = 5;
  cfg.improvement.rf = cfg.scoring_rf;
  cfg.improvement.rf.n_trees = 15;
  cfg.improvement.xgb.n_rounds = 25;
  cfg.improvement.xgb.max_depth = 4;
  cfg.improvement.xgb.learning_rate = 0.12;
  cfg.improvement.xgb.subsample = 0.9;
  cfg.improvement.xgb.colsample = 0.8;
  cfg.improvement.seed = cfg.seed ^ 0x1417ull;

  cfg.serving_mlp.hidden = {64, 32};
  cfg.serving_mlp.epochs = 40;
  cfg.serving_mlp.learning_rate = 2e-3;
  cfg.serving_mlp.seed = cfg.seed ^ 0x3E47ull;

  if (options.tiny_models) {
    cfg.fra.rf.n_trees = 6;
    cfg.fra.rf.max_depth = 5;
    cfg.fra.xgb.n_rounds = 8;
    cfg.feature_vector.rf = cfg.fra.rf;
    cfg.feature_vector.shap_row_limit = 40;
    cfg.scoring_rf.n_trees = 8;
    cfg.scoring_rf.max_depth = 6;
    cfg.improvement.rf = cfg.scoring_rf;
    cfg.improvement.cv_folds = 3;
    cfg.improvement.xgb.n_rounds = 8;
  }
  return cfg;
}

bool IsOnChain(sim::DataCategory c) {
  return c == sim::DataCategory::kOnChainBtc ||
         c == sim::DataCategory::kOnChainUsdc ||
         c == sim::DataCategory::kOnChainEth;
}

/// Top-`k` feature names of a scored vector by importance (ties broken
/// by name so the set is deterministic).
std::vector<std::string> TopKFeatures(const ScoredFeatureVector& scored,
                                      size_t k) {
  std::vector<size_t> order(scored.features.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (scored.importance[a] != scored.importance[b]) {
      return scored.importance[a] > scored.importance[b];
    }
    return scored.features[a] < scored.features[b];
  });
  std::vector<std::string> top;
  top.reserve(std::min(k, order.size()));
  for (size_t i = 0; i < order.size() && i < k; ++i) {
    top.push_back(scored.features[order[i]]);
  }
  return top;
}

double Jaccard(const std::vector<std::string>& a,
               const std::vector<std::string>& b) {
  const std::set<std::string> sa(a.begin(), a.end());
  const std::set<std::string> sb(b.begin(), b.end());
  size_t inter = 0;
  for (const auto& x : sa) inter += sb.count(x);
  const size_t uni = sa.size() + sb.size() - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

/// Evaluates one (regime, seed) grid cell: runs the pipeline fan-out,
/// then every applicable property. `deep` cells also run the
/// improvement CV experiment.
CellOutcome EvaluateCell(const SweepOptions& options, const RegimeSpec& regime,
                         uint64_t seed, bool deep) {
  CellOutcome out;
  Experiments ex(CellConfig(options, regime, seed));

  Status pre = ex.PrecomputeAll(options.periods, options.windows);
  if (!pre.ok()) {
    out.status = pre;
    return out;
  }

  const StudyPeriod anchor_period = options.periods.back();
  const int anchor_window =
      *std::max_element(options.windows.begin(), options.windows.end());

  for (StudyPeriod period : options.periods) {
    for (int window : options.windows) {
      const std::string tag = std::string(PeriodName(period)) + "_" +
                              std::to_string(window);
      Result<const ScenarioDataset*> scenario = ex.Scenario(period, window);
      if (!scenario.ok()) {
        out.status = scenario.status();
        return out;
      }
      const ScenarioDataset& ds = **scenario;

      // Property: no NaN/Inf escapes any feature vector or target.
      {
        PropertyCheck check{kNoNanOrInf, true, tag, ""};
        for (size_t c = 0; c < ds.data.num_features() && check.passed; ++c) {
          const std::vector<double>& col = ds.data.x.column(c);
          for (size_t r = 0; r < col.size(); ++r) {
            if (!std::isfinite(col[r])) {
              check.passed = false;
              check.detail = "non-finite value in feature " +
                             ds.data.feature_names[c] + " at row " +
                             std::to_string(r);
              break;
            }
          }
        }
        for (size_t r = 0; r < ds.data.y.size() && check.passed; ++r) {
          if (!std::isfinite(ds.data.y[r])) {
            check.passed = false;
            check.detail = "non-finite target at row " + std::to_string(r);
          }
        }
        out.checks.push_back(std::move(check));
      }

      // Property: FRA retains at least one on-chain feature wherever
      // on-chain candidates survived cleaning (the paper's Figure 3/4
      // claim that on-chain sources carry non-redundant signal).
      {
        size_t onchain_candidates = 0;
        for (sim::DataCategory c : ds.categories) {
          if (IsOnChain(c)) ++onchain_candidates;
        }
        if (onchain_candidates > 0) {
          PropertyCheck check{kFraRetainsOnchain, false, tag, ""};
          Result<FraResult> fra = ex.Fra(period, window);
          if (!fra.ok()) {
            out.status = fra.status();
            return out;
          }
          // det audit: lookup-only map; every read is keyed, never iterated.
          std::unordered_map<std::string, sim::DataCategory> cat_of;
          for (size_t i = 0; i < ds.data.feature_names.size(); ++i) {
            cat_of.emplace(ds.data.feature_names[i], ds.categories[i]);
          }
          for (const std::string& name : fra->selected) {
            auto it = cat_of.find(name);
            if (it != cat_of.end() && IsOnChain(it->second)) {
              check.passed = true;
              break;
            }
          }
          if (!check.passed) {
            check.detail = "FRA selected " +
                           std::to_string(fra->selected.size()) +
                           " features, none of the " +
                           std::to_string(onchain_candidates) +
                           " on-chain candidates";
          }
          out.checks.push_back(std::move(check));
        }
      }

      // Anchor scenario: capture the category set of the top-k
      // importance features for the regime-level rank-stability
      // property.
      if (period == anchor_period && window == anchor_window) {
        Result<ScoredFeatureVector> scored = ex.ScoredVector(period, window);
        if (!scored.ok()) {
          out.status = scored.status();
          return out;
        }
        // det audit: lookup-only map; every read is keyed, never iterated.
        std::unordered_map<std::string, sim::DataCategory> cat_of;
        for (size_t i = 0; i < ds.data.feature_names.size(); ++i) {
          cat_of.emplace(ds.data.feature_names[i], ds.categories[i]);
        }
        std::set<std::string> categories;
        for (const std::string& name :
             TopKFeatures(*scored, options.rank_top_k)) {
          auto it = cat_of.find(name);
          if (it != cat_of.end()) {
            categories.insert(sim::CategoryKey(it->second));
          }
        }
        out.anchor_top_categories.assign(categories.begin(), categories.end());
      }
    }
  }

  // Property (deep cells): the diverse feature vector beats single-
  // category vectors at long horizons (the paper's headline claim).
  if (deep) {
    int window = -1;
    for (int w : options.windows) {
      if (w >= options.horizon_threshold) window = std::max(window, w);
    }
    if (window > 0) {
      const StudyPeriod period = options.periods.back();
      const std::string tag = std::string(PeriodName(period)) + "_" +
                              std::to_string(window);
      Result<ImprovementResult> imp =
          ex.Improvement(period, window, ModelKind::kRandomForest);
      if (!imp.ok()) {
        out.status = imp.status();
        return out;
      }
      PropertyCheck check{kDiverseBeatsSingleLong, true, tag, ""};
      const double mean_pct = imp->MeanImprovementPct();
      if (!(mean_pct >= options.min_mean_improvement_pct)) {
        check.passed = false;
        char buf[96];
        std::snprintf(buf, sizeof(buf),
                      "mean improvement %.2f%% below threshold %.2f%%",
                      mean_pct, options.min_mean_improvement_pct);
        check.detail = buf;
      }
      out.checks.push_back(std::move(check));
    }
  }

  return out;
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

std::string FormatRate(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

void Accumulate(std::vector<PropertyStat>* stats, const std::string& property,
                bool passed) {
  for (PropertyStat& s : *stats) {
    if (s.property == property) {
      ++s.checked;
      if (passed) ++s.passed;
      return;
    }
  }
  stats->push_back({property, 1, passed ? size_t{1} : size_t{0}});
}

}  // namespace

const std::vector<RegimeSpec>& StandardRegimes() {
  static const std::vector<RegimeSpec>* kRegimes = [] {
    // Intentionally leaked function-local singleton: avoids a destructor
    // running at unspecified shutdown order.  fablint:allow(hygiene-new-delete)
    auto* regimes = new std::vector<RegimeSpec>;
    auto add = [&](const std::string& name, auto setup) {
      RegimeSpec spec;
      spec.name = name;
      setup(&spec.stress);
      regimes->push_back(std::move(spec));
    };
    add("baseline", [](sim::StressConfig*) {});
    add("flash_crash",
        [](sim::StressConfig* s) { s->flash_crash.enabled = true; });
    add("depeg", [](sim::StressConfig* s) { s->depeg.enabled = true; });
    add("outage", [](sim::StressConfig* s) { s->outage.enabled = true; });
    add("rank_churn",
        [](sim::StressConfig* s) { s->rank_churn.enabled = true; });
    add("contagion", [](sim::StressConfig* s) {
      // A crash that breaks the settlement rail: the 2022 contagion
      // cascade shape.
      s->flash_crash.enabled = true;
      s->depeg.enabled = true;
    });
    add("exchange_chaos", [](sim::StressConfig* s) {
      // Venues go dark while the index recomposes under it.
      s->outage.enabled = true;
      s->rank_churn.enabled = true;
    });
    add("perfect_storm", [](sim::StressConfig* s) {
      s->flash_crash.enabled = true;
      s->depeg.enabled = true;
      s->outage.enabled = true;
      s->rank_churn.enabled = true;
    });
    return regimes;
  }();
  return *kRegimes;
}

Result<RegimeSpec> RegimeByName(const std::string& name) {
  for (const RegimeSpec& spec : StandardRegimes()) {
    if (spec.name == name) return spec;
  }
  return Status::InvalidArgument("unknown stress regime: " + name);
}

// fablint:det-root — sweep reports are compared across seeds/regimes.
Result<SweepReport> RunSweep(const SweepOptions& options) {
  if (options.seeds.empty()) {
    return Status::InvalidArgument("sweep needs at least one seed");
  }
  if (options.regimes.empty()) {
    return Status::InvalidArgument("sweep needs at least one regime");
  }
  if (options.periods.empty() || options.windows.empty()) {
    return Status::InvalidArgument("sweep needs periods and windows");
  }
  for (int w : options.windows) {
    if (w < 1) return Status::InvalidArgument("windows must be >= 1");
  }

  struct Cell {
    size_t regime_index;
    size_t seed_index;
  };
  std::vector<Cell> cells;
  cells.reserve(options.regimes.size() * options.seeds.size());
  for (size_t r = 0; r < options.regimes.size(); ++r) {
    for (size_t s = 0; s < options.seeds.size(); ++s) {
      cells.push_back({r, s});
    }
  }

  // Cell fan-out on the shared pool. Each cell builds its own
  // Experiments (manage_shared_pool=false) and runs the inner
  // PrecomputeAll fan-out inline on the worker — ParallelFor nests
  // without deadlock by design.
  FAB_TRACE_SCOPE("core/sweep", {{"cells", cells.size()}});
  std::vector<CellOutcome> outcomes(cells.size());
  util::ParallelFor(0, cells.size(), [&](size_t i) {
    const Cell& cell = cells[i];
    FAB_TRACE_SCOPE("core/sweep_cell",
                    {{"regime", options.regimes[cell.regime_index].name},
                     {"seed", options.seeds[cell.seed_index]}});
    outcomes[i] =
        EvaluateCell(options, options.regimes[cell.regime_index],
                     options.seeds[cell.seed_index],
                     cell.seed_index <
                         static_cast<size_t>(std::max(0, options.improvement_seeds)));
  });

  // Deterministic aggregation in cell-index order.
  SweepReport report;
  report.cells = cells.size();
  report.regimes.reserve(options.regimes.size());
  for (const RegimeSpec& spec : options.regimes) {
    RegimeReport rr;
    rr.regime = spec.name;
    report.regimes.push_back(std::move(rr));
  }

  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    const CellOutcome& out = outcomes[i];
    const std::string& regime = options.regimes[cell.regime_index].name;
    const uint64_t seed = options.seeds[cell.seed_index];
    RegimeReport& rr = report.regimes[cell.regime_index];
    ++rr.cells;
    if (!out.status.ok()) {
      ++report.cell_errors;
      ++rr.cell_errors;
      if (report.first_error.empty()) {
        report.first_error = "regime " + regime + " seed " +
                             std::to_string(seed) + ": " +
                             out.status.ToString();
      }
      continue;
    }
    for (const PropertyCheck& check : out.checks) {
      ++report.checks;
      ++rr.checks;
      Accumulate(&report.properties, check.property, check.passed);
      Accumulate(&rr.properties, check.property, check.passed);
      if (check.passed) {
        ++rr.passed;
      } else {
        ++report.violation_count;
        report.violations.push_back(
            {check.property, regime, seed, check.scenario, check.detail});
      }
    }
  }

  // Regime-level property: which data-source categories dominate the
  // importance ranking is seed-stable within a regime (mean pairwise
  // Jaccard of the top-k category sets over the anchor scenario).
  for (size_t r = 0; r < options.regimes.size(); ++r) {
    std::vector<const std::vector<std::string>*> tops;
    std::vector<uint64_t> top_seeds;
    for (size_t i = 0; i < cells.size(); ++i) {
      if (cells[i].regime_index != r) continue;
      if (!outcomes[i].status.ok() ||
          outcomes[i].anchor_top_categories.empty()) {
        continue;
      }
      tops.push_back(&outcomes[i].anchor_top_categories);
      top_seeds.push_back(options.seeds[cells[i].seed_index]);
    }
    if (tops.size() < 2) continue;
    double sum = 0.0;
    double worst = 1.0;
    size_t worst_a = 0, worst_b = 0, pairs = 0;
    for (size_t a = 0; a < tops.size(); ++a) {
      for (size_t b = a + 1; b < tops.size(); ++b) {
        const double j = Jaccard(*tops[a], *tops[b]);
        sum += j;
        ++pairs;
        if (j < worst) {
          worst = j;
          worst_a = a;
          worst_b = b;
        }
      }
    }
    const double mean = sum / static_cast<double>(pairs);
    const bool passed = mean >= options.rank_stability_min_jaccard;
    RegimeReport& rr = report.regimes[r];
    ++report.checks;
    ++rr.checks;
    Accumulate(&report.properties, kRankStability, passed);
    Accumulate(&rr.properties, kRankStability, passed);
    if (passed) {
      ++rr.passed;
    } else {
      ++report.violation_count;
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "mean top-k category Jaccard %.3f < %.3f (worst pair: "
                    "seeds %llu vs %llu at %.3f)",
                    mean, options.rank_stability_min_jaccard,
                    static_cast<unsigned long long>(top_seeds[worst_a]),
                    static_cast<unsigned long long>(top_seeds[worst_b]), worst);
      report.violations.push_back(
          {kRankStability, options.regimes[r].name, top_seeds[worst_a], "-",
           buf});
    }
  }

  return report;
}

std::string SweepReport::ToJson() const {
  std::string json;
  json += "{\n";
  json += "  \"name\": \"sweep\",\n";
  json += "  \"results\": {\n";
  json += "    \"cells\": " + std::to_string(cells) + ",\n";
  json += "    \"cell_errors\": " + std::to_string(cell_errors) + ",\n";
  json += "    \"checks\": " + std::to_string(checks) + ",\n";
  json += "    \"property_violations\": " + std::to_string(violation_count) +
          ",\n";
  json += "    \"pass_rate\": " + FormatRate(pass_rate()) + ",\n";
  json += "    \"regimes\": " + std::to_string(regimes.size()) + "\n";
  json += "  },\n";
  json += "  \"properties\": [\n";
  for (size_t i = 0; i < properties.size(); ++i) {
    const PropertyStat& p = properties[i];
    json += "    {\"property\": \"" + EscapeJson(p.property) +
            "\", \"checked\": " + std::to_string(p.checked) +
            ", \"passed\": " + std::to_string(p.passed) + "}";
    json += i + 1 < properties.size() ? ",\n" : "\n";
  }
  json += "  ],\n";
  json += "  \"regimes_detail\": [\n";
  for (size_t i = 0; i < regimes.size(); ++i) {
    const RegimeReport& r = regimes[i];
    json += "    {\"regime\": \"" + EscapeJson(r.regime) +
            "\", \"cells\": " + std::to_string(r.cells) +
            ", \"cell_errors\": " + std::to_string(r.cell_errors) +
            ", \"checks\": " + std::to_string(r.checks) +
            ", \"passed\": " + std::to_string(r.passed) + "}";
    json += i + 1 < regimes.size() ? ",\n" : "\n";
  }
  json += "  ],\n";
  json += "  \"violations\": [\n";
  for (size_t i = 0; i < violations.size(); ++i) {
    const PropertyViolation& v = violations[i];
    json += "    {\"property\": \"" + EscapeJson(v.property) +
            "\", \"regime\": \"" + EscapeJson(v.regime) +
            "\", \"seed\": " + std::to_string(v.seed) + ", \"scenario\": \"" +
            EscapeJson(v.scenario) + "\", \"detail\": \"" +
            EscapeJson(v.detail) + "\", \"repro\": \"" +
            EscapeJson("fab_sweep --seed0 " + std::to_string(v.seed) +
                       " --seeds 1 --regimes " + v.regime) +
            "\"}";
    json += i + 1 < violations.size() ? ",\n" : "\n";
  }
  json += "  ]";
  if (!first_error.empty()) {
    json += ",\n  \"first_error\": \"" + EscapeJson(first_error) + "\"";
  }
  json += "\n}\n";
  return json;
}

}  // namespace fab::core
