#include "core/backtest.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "ml/metrics.h"

namespace fab::core {

double WalkForwardResult::Mse() const {
  return ml::MeanSquaredError(actuals, predictions);
}

Result<WalkForwardResult> WalkForwardEvaluate(
    const ml::Regressor& prototype, const ml::Dataset& data,
    const WalkForwardOptions& options) {
  const size_t n = data.num_rows();
  if (options.warmup_rows < 10 || options.warmup_rows >= n) {
    return Status::InvalidArgument("warmup_rows must be in [10, rows)");
  }
  if (options.step < 1 || options.refit_every_steps < 1) {
    return Status::InvalidArgument("step and refit cadence must be >= 1");
  }
  WalkForwardResult result;
  std::unique_ptr<ml::Regressor> model;
  int steps_since_fit = 0;
  for (size_t t = options.warmup_rows; t < n;
       t += static_cast<size_t>(options.step)) {
    if (model == nullptr || steps_since_fit >= options.refit_every_steps) {
      std::vector<int> train_rows(t);
      std::iota(train_rows.begin(), train_rows.end(), 0);
      const ml::Dataset train = data.TakeRows(train_rows);
      model = prototype.CloneUnfitted();
      FAB_RETURN_IF_ERROR(model->Fit(train.x, train.y));
      ++result.refits;
      steps_since_fit = 0;
    }
    result.rows.push_back(t);
    result.predictions.push_back(model->PredictOne(data.x, t));
    result.actuals.push_back(data.y[t]);
    ++steps_since_fit;
  }
  if (result.rows.empty()) {
    return Status::InvalidArgument("no evaluation points after warmup");
  }
  return result;
}

Result<BacktestResult> RunLongFlatBacktest(
    const std::vector<double>& predicted_returns,
    const std::vector<double>& realized_returns, double periods_per_year) {
  if (predicted_returns.size() != realized_returns.size() ||
      predicted_returns.empty()) {
    return Status::InvalidArgument(
        "predicted/realized return series must be equal-length, non-empty");
  }
  if (periods_per_year <= 0.0) {
    return Status::InvalidArgument("periods_per_year must be positive");
  }
  BacktestResult result;
  result.periods_total = static_cast<int>(predicted_returns.size());
  double strat_log = 0.0;
  double hold_log = 0.0;
  double peak = 0.0;
  std::vector<double> per_period;
  per_period.reserve(predicted_returns.size());
  for (size_t i = 0; i < predicted_returns.size(); ++i) {
    const bool in_market = predicted_returns[i] > 0.0;
    const double r = in_market ? realized_returns[i] : 0.0;
    strat_log += r;
    hold_log += realized_returns[i];
    per_period.push_back(r);
    result.periods_in_market += in_market;
    peak = std::max(peak, strat_log);
    result.max_drawdown_log = std::max(result.max_drawdown_log, peak - strat_log);
  }
  result.strategy_return = std::exp(strat_log) - 1.0;
  result.hold_return = std::exp(hold_log) - 1.0;
  double mean = 0.0;
  for (double r : per_period) mean += r;
  mean /= static_cast<double>(per_period.size());
  double var = 0.0;
  for (double r : per_period) var += (r - mean) * (r - mean);
  if (per_period.size() > 1) {
    var /= static_cast<double>(per_period.size() - 1);
  }
  result.annualized_sharpe =
      var > 0.0 ? mean / std::sqrt(var) * std::sqrt(periods_per_year) : 0.0;
  return result;
}

}  // namespace fab::core
