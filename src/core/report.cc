#include "core/report.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/string_util.h"

namespace fab::core {

AsciiTable::AsciiTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void AsciiTable::AddRow(std::vector<std::string> row) {
  FAB_CHECK(row.size() == header_.size())
      << "row has " << row.size() << " cells, header has " << header_.size();
  rows_.push_back(std::move(row));
}

std::string AsciiTable::Render() const {
  std::vector<size_t> width(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t c = 0; c < row.size(); ++c) {
      line += " " + row[c] + std::string(width[c] - row[c].size(), ' ') + " |";
    }
    return line + "\n";
  };
  std::string sep = "+";
  for (size_t c = 0; c < header_.size(); ++c) {
    sep += std::string(width[c] + 2, '-') + "+";
  }
  sep += "\n";
  std::string out = sep + render_row(header_) + sep;
  for (const auto& row : rows_) out += render_row(row);
  out += sep;
  return out;
}

std::string AsciiSeries(const std::string& title,
                        const std::vector<std::string>& labels,
                        const std::vector<double>& values, size_t max_points,
                        int height) {
  if (values.empty() || labels.size() != values.size() || height < 2) {
    return title + "\n(empty series)\n";
  }
  // Downsample evenly.
  std::vector<size_t> picks;
  const size_t n = values.size();
  const size_t count = std::min(max_points, n);
  for (size_t k = 0; k < count; ++k) picks.push_back(k * n / count);

  double lo = values[picks[0]];
  double hi = lo;
  for (size_t idx : picks) {
    lo = std::min(lo, values[idx]);
    hi = std::max(hi, values[idx]);
  }
  if (hi <= lo) hi = lo + 1.0;

  std::vector<std::string> grid(static_cast<size_t>(height),
                                std::string(picks.size(), ' '));
  for (size_t k = 0; k < picks.size(); ++k) {
    const double frac = (values[picks[k]] - lo) / (hi - lo);
    const int row =
        height - 1 - static_cast<int>(std::lround(frac * (height - 1)));
    grid[static_cast<size_t>(row)][k] = '*';
  }
  std::string out = title + "\n";
  out += "  max " + FormatDouble(hi, 2) + "\n";
  for (const auto& line : grid) out += "  |" + line + "\n";
  out += "  min " + FormatDouble(lo, 2) + "   [" + labels[picks.front()] +
         " .. " + labels[picks.back()] + "]\n";
  return out;
}

std::string AsciiGroupedBars(const std::string& title,
                             const std::vector<std::string>& group_labels,
                             const std::vector<std::string>& series_names,
                             const std::vector<std::vector<double>>& values,
                             int bar_width) {
  std::string out = title + "\n";
  double max_v = 0.0;
  for (const auto& series : values) {
    for (double v : series) max_v = std::max(max_v, v);
  }
  if (max_v <= 0.0) max_v = 1.0;
  size_t name_width = 0;
  for (const auto& name : series_names) {
    name_width = std::max(name_width, name.size());
  }
  for (size_t g = 0; g < group_labels.size(); ++g) {
    out += group_labels[g] + "\n";
    for (size_t s = 0; s < series_names.size(); ++s) {
      if (g >= values[s].size()) continue;
      const double v = values[s][g];
      const int len = static_cast<int>(
          std::lround(v / max_v * static_cast<double>(bar_width)));
      out += "  " + series_names[s] +
             std::string(name_width - series_names[s].size(), ' ') + " | " +
             std::string(static_cast<size_t>(len), '#') + " " +
             FormatDouble(v, 3) + "\n";
    }
  }
  return out;
}

}  // namespace fab::core
