#ifndef FAB_CORE_CONTRIBUTION_H_
#define FAB_CORE_CONTRIBUTION_H_

#include <string>
#include <vector>

#include "core/dataset_builder.h"
#include "sim/catalog.h"
#include "util/status.h"

namespace fab::core {

/// The contribution of one data category to a final feature vector
/// (paper Section 4.1): selected / candidates, making categories of
/// different sizes comparable.
struct CategoryContribution {
  sim::DataCategory category;
  size_t candidates = 0;  ///< features of the category before selection
  size_t selected = 0;    ///< features of the category in the final vector
  double contribution_factor = 0.0;
};

/// Per-category contribution factors of one scenario's final vector.
/// Categories with zero candidates (e.g. USDC in the 2017 set) are
/// omitted.
[[nodiscard]] Result<std::vector<CategoryContribution>> ComputeContributions(
    const ScenarioDataset& scenario,
    const std::vector<std::string>& final_features);

}  // namespace fab::core

#endif  // FAB_CORE_CONTRIBUTION_H_
