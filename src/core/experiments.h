#ifndef FAB_CORE_EXPERIMENTS_H_
#define FAB_CORE_EXPERIMENTS_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/contribution.h"
#include "core/dataset_builder.h"
#include "core/feature_vector.h"
#include "core/fra.h"
#include "core/groups.h"
#include "core/improvement.h"
#include "ml/mlp.h"
#include "sim/market_sim.h"
#include "util/status.h"

namespace fab::core {

/// Global configuration of the reproduction pipeline. `FromEnv()` honours:
///   FAB_SEED       master seed (default 42)
///   FAB_FAST       1 = small models / row limits for smoke runs
///   FAB_CACHE_DIR  artifact cache root (default ".fab_cache")
///   FAB_THREADS    shared-pool width (0 = hardware concurrency); any
///                  value produces bitwise-identical artifacts
struct ExperimentConfig {
  uint64_t seed = 42;
  bool fast = false;
  std::string cache_dir = ".fab_cache";
  /// Width of the shared analysis pool (util::ResolveThreads convention,
  /// 0 = hardware concurrency). Applied by the Experiments constructor.
  int num_threads = 0;
  /// When false the constructor leaves the shared pool's width alone —
  /// set by callers that build many Experiments concurrently (the sweep
  /// harness runs one per grid cell inside pool workers; resizing the
  /// pool from there would be a lifecycle hazard).
  bool manage_shared_pool = true;
  /// Extra tag appended to the cache directory name. Stress regimes
  /// change every artifact, so sweep cells tag their caches per regime
  /// rather than poisoning the baseline `seed<seed>_<fast|full>` dirs.
  std::string cache_tag;
  /// Adversarial regime injectors forwarded to the simulator
  /// (sim/stress.h). Default-off: the baseline pipeline is unchanged.
  sim::StressConfig stress;

  /// Model settings used by the respective pipeline stages.
  FraOptions fra;
  FeatureVectorOptions feature_vector;
  ImprovementOptions improvement;
  /// The fine-tuned RF used to score final-vector features (Table 3/4).
  ml::ForestParams scoring_rf;
  /// The MLP trained for snapshot export (the serving layer's third model).
  ml::MlpParams serving_mlp;

  static ExperimentConfig FromEnv();
};

/// Memoizing orchestrator for every experiment in the paper. Expensive
/// stages (FRA, SHAP, improvement CV) are cached as CSV artifacts under
/// `<cache_dir>/seed<seed>_<fast|full>/`, so the nine experiment binaries
/// compute them once and share the results.
class Experiments {
 public:
  explicit Experiments(ExperimentConfig config);

  const ExperimentConfig& config() const { return config_; }

  /// The simulated market with technical indicators attached (memoized).
  [[nodiscard]] Result<const sim::SimulatedMarket*> Market();

  /// One scenario's prepared dataset (memoized in RAM).
  [[nodiscard]] Result<const ScenarioDataset*> Scenario(StudyPeriod period, int window);

  /// Scenario-level fan-out: materializes the market and every scenario
  /// dataset serially (they mutate the memo maps), then computes all
  /// periods × windows final feature vectors (FRA + SHAP) concurrently on
  /// the shared pool. Artifacts are bitwise identical to computing each
  /// scenario serially, at any thread count.
  [[nodiscard]] Status PrecomputeAll(const std::vector<StudyPeriod>& periods,
                       const std::vector<int>& windows);

  /// FRA output for a scenario (disk-cached).
  [[nodiscard]] Result<FraResult> Fra(StudyPeriod period, int window);

  /// Final feature vector = FRA ∪ SHAP top-75 (disk-cached).
  [[nodiscard]] Result<FinalFeatureVector> FinalVector(StudyPeriod period, int window);

  /// Final vector with fine-tuned-RF importances (disk-cached).
  [[nodiscard]] Result<ScoredFeatureVector> ScoredVector(StudyPeriod period, int window);

  /// Diverse-vs-single-category improvements (disk-cached).
  [[nodiscard]] Result<ImprovementResult> Improvement(StudyPeriod period, int window,
                                        ModelKind model);

  /// Contribution factors of a scenario's final vector (cheap; derived).
  [[nodiscard]] Result<std::vector<CategoryContribution>> Contributions(StudyPeriod period,
                                                          int window);

  /// Merged horizon group over `windows` (e.g. {1, 7} = short-term).
  [[nodiscard]] Result<HorizonGroup> Group(StudyPeriod period,
                             const std::vector<int>& windows);

  /// Directory the serving layer loads snapshots from:
  /// `<cache_dir>/seed<seed>_<fast|full>/models`. A serve::ModelRegistry
  /// rooted here sees every exported model.
  std::string ModelDir() const;

  /// Trains the fine-tuned `model` ("rf", "xgb" or "mlp") for a scenario
  /// on its final feature vector and exports it as a serve snapshot under
  /// ModelDir(). Memoized on disk: a valid existing snapshot short-circuits
  /// retraining. Returns the snapshot path.
  [[nodiscard]] Result<std::string> ExportModel(StudyPeriod period, int window,
                                  const std::string& model);

  /// Exports all three model kinds for a scenario; returns their paths.
  [[nodiscard]] Result<std::vector<std::string>> ExportModels(StudyPeriod period,
                                                int window);

 private:
  std::string ScenarioTag(StudyPeriod period, int window) const;
  std::string CachePath(const std::string& name) const;
  [[nodiscard]] Status EnsureCacheDir() const;

  ExperimentConfig config_;
  std::unique_ptr<sim::SimulatedMarket> market_;
  std::map<std::pair<int, int>, std::unique_ptr<ScenarioDataset>> scenarios_;
};

}  // namespace fab::core

#endif  // FAB_CORE_EXPERIMENTS_H_
