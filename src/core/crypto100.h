#ifndef FAB_CORE_CRYPTO100_H_
#define FAB_CORE_CRYPTO100_H_

#include <vector>

#include "util/status.h"

namespace fab::core {

/// The Crypto100 index (paper Section 3.1.1):
///
///   Crypto100 = sum_mcap / (log10(sum_mcap))^power
///
/// where `sum_mcap` is the summed market capitalization of the top 100
/// cryptocurrencies. The paper tunes `power` to 7 so the index's price
/// scale is directly comparable to BTC; powers <= 6 barely compress the
/// numerator (index in the billions), 8 over-compresses it.
inline constexpr double kCrypto100DefaultPower = 7.0;

/// Index value for one day. Requires sum_mcap > 1 (log10 must be > 0).
[[nodiscard]] Result<double> Crypto100Value(double sum_mcap,
                              double power = kCrypto100DefaultPower);

/// Index series from a daily top-100 market-cap-sum series.
[[nodiscard]] Result<std::vector<double>> Crypto100Series(
    const std::vector<double>& sum_mcap,
    double power = kCrypto100DefaultPower);

/// Mean absolute log10 distance between two positive price series — the
/// scale-comparability criterion used to tune the power (0 = identical
/// scale; 1 = off by 10x on average).
[[nodiscard]] Result<double> LogScaleDistance(const std::vector<double>& index_series,
                                const std::vector<double>& reference_series);

}  // namespace fab::core

#endif  // FAB_CORE_CRYPTO100_H_
