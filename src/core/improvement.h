#ifndef FAB_CORE_IMPROVEMENT_H_
#define FAB_CORE_IMPROVEMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/dataset_builder.h"
#include "ml/forest.h"
#include "ml/gbdt.h"
#include "util/status.h"

namespace fab::core {

/// Options for the diverse-vs-single-category experiment (Section 4.3).
struct ImprovementOptions {
  /// Folds for the cross-validated MSE of each feature set.
  int cv_folds = 5;
  ml::ForestParams rf;
  ml::GbdtParams xgb;
  uint64_t seed = 37;
};

/// Which model family runs the comparison.
enum class ModelKind { kRandomForest = 0, kGbdt = 1 };

/// Improvement of the diverse vector over one single-category vector.
struct CategoryImprovement {
  sim::DataCategory category;
  double single_mse = 0.0;
  double diverse_mse = 0.0;
  /// Percentage MSE decrease: 100 * (single - diverse) / diverse.
  double improvement_pct = 0.0;
};

/// Result of one scenario's improvement experiment.
struct ImprovementResult {
  StudyPeriod period;
  int window = 1;
  ModelKind model;
  double diverse_mse = 0.0;
  std::vector<CategoryImprovement> per_category;

  /// Mean improvement over the represented categories.
  double MeanImprovementPct() const;
};

/// Trains `model` on (a) the scenario's diverse final feature vector and
/// (b) each category's full candidate set, and reports the MSE decrease
/// the diverse vector delivers (cross-validated). Mirrors the paper's
/// "performance improvement" definition.
[[nodiscard]] Result<ImprovementResult> RunImprovementExperiment(
    const ScenarioDataset& scenario,
    const std::vector<std::string>& final_features, ModelKind model,
    const ImprovementOptions& options);

}  // namespace fab::core

#endif  // FAB_CORE_IMPROVEMENT_H_
