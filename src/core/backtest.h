#ifndef FAB_CORE_BACKTEST_H_
#define FAB_CORE_BACKTEST_H_

#include <vector>

#include "ml/estimator.h"
#include "ml/matrix.h"
#include "util/status.h"

namespace fab::core {

/// Walk-forward evaluation options. Rows must be in time order.
struct WalkForwardOptions {
  /// Rows reserved as the initial training window.
  size_t warmup_rows = 250;
  /// Refit cadence, in evaluation steps (1 = refit every step).
  int refit_every_steps = 8;
  /// Evaluate every `step` rows (e.g. 7 = weekly for daily data).
  int step = 7;
};

/// Strictly out-of-sample predictions from an expanding-window refit.
struct WalkForwardResult {
  /// Row index of each evaluation point (ascending).
  std::vector<size_t> rows;
  /// Model prediction at each evaluation point.
  std::vector<double> predictions;
  /// True target at each evaluation point.
  std::vector<double> actuals;
  /// Number of model refits performed.
  int refits = 0;

  /// Out-of-sample mean squared error.
  double Mse() const;
};

/// Runs an expanding-window walk-forward: at each evaluation row the model
/// has only been fitted on strictly earlier rows. The prototype supplies
/// the hyperparameters; it is cloned on every refit.
[[nodiscard]] Result<WalkForwardResult> WalkForwardEvaluate(const ml::Regressor& prototype,
                                              const ml::Dataset& data,
                                              const WalkForwardOptions& options);

/// Performance of a long/flat strategy versus buy-and-hold.
struct BacktestResult {
  double strategy_return = 0.0;   ///< total simple return of the strategy
  double hold_return = 0.0;       ///< total simple return of buy-and-hold
  double max_drawdown_log = 0.0;  ///< strategy max drawdown in log points
  double annualized_sharpe = 0.0;
  int periods_in_market = 0;
  int periods_total = 0;
};

/// Evaluates "long when the predicted return is positive, flat otherwise"
/// over aligned (predicted, realized) per-period log returns.
/// `periods_per_year` annualizes the Sharpe ratio (52 for weekly periods).
[[nodiscard]] Result<BacktestResult> RunLongFlatBacktest(
    const std::vector<double>& predicted_returns,
    const std::vector<double>& realized_returns, double periods_per_year);

}  // namespace fab::core

#endif  // FAB_CORE_BACKTEST_H_
