#include "util/random.h"

#include <cmath>
#include <numeric>

namespace fab {

namespace {
inline uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

uint64_t SplitMix64::Next() {
  uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : state_) s = sm.Next();
}

uint64_t Rng::NextU64() {
  const uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random bits into [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  // Lemire-style rejection to avoid modulo bias.
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < n) {
    uint64_t t = -n % n;
    while (l < t) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = Uniform();
  } while (u1 <= 0.0);
  const double u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

double Rng::StudentT(double dof) {
  // t = Z / sqrt(ChiSq(dof) / dof); ChiSq(dof) = Gamma(dof/2, 2).
  const double z = Normal();
  const double chi_sq = Gamma(dof / 2.0, 2.0);
  return z / std::sqrt(chi_sq / dof);
}

double Rng::Exponential(double rate) {
  double u = 0.0;
  do {
    u = Uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

double Rng::Gamma(double shape, double scale) {
  if (shape < 1.0) {
    // Boost to shape+1 and correct with a power of a uniform.
    const double g = Gamma(shape + 1.0, scale);
    double u = 0.0;
    do {
      u = Uniform();
    } while (u <= 0.0);
    return g * std::pow(u, 1.0 / shape);
  }
  // Marsaglia–Tsang squeeze method.
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  while (true) {
    double x = 0.0;
    double v = 0.0;
    do {
      x = Normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = Uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v * scale;
    }
  }
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

int Rng::Poisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean > 64.0) {
    const double v = Normal(mean, std::sqrt(mean));
    return v < 0.0 ? 0 : static_cast<int>(v + 0.5);
  }
  const double limit = std::exp(-mean);
  double product = Uniform();
  int count = 0;
  while (product > limit) {
    ++count;
    product *= Uniform();
  }
  return count;
}

std::vector<int> Rng::SampleWithReplacement(int n, int count) {
  std::vector<int> out(static_cast<size_t>(count));
  for (auto& v : out) v = static_cast<int>(UniformInt(static_cast<uint64_t>(n)));
  return out;
}

std::vector<int> Rng::SampleWithoutReplacement(int n, int count) {
  std::vector<int> pool(static_cast<size_t>(n));
  std::iota(pool.begin(), pool.end(), 0);
  // Partial Fisher–Yates: the first `count` slots become the sample.
  for (int i = 0; i < count; ++i) {
    const size_t j =
        static_cast<size_t>(i) +
        static_cast<size_t>(UniformInt(static_cast<uint64_t>(n - i)));
    std::swap(pool[static_cast<size_t>(i)], pool[j]);
  }
  pool.resize(static_cast<size_t>(count));
  return pool;
}

uint64_t Rng::Fork(uint64_t child_index) {
  SplitMix64 sm(state_[0] ^ (0xA5A5A5A5A5A5A5A5ull + child_index));
  return sm.Next();
}

}  // namespace fab
