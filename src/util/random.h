#ifndef FAB_UTIL_RANDOM_H_
#define FAB_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace fab {

/// SplitMix64 — tiny, fast 64-bit generator used to seed xoshiro and to
/// derive independent child seeds from a parent seed. Deterministic across
/// platforms.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  /// Next 64 random bits.
  uint64_t Next();

 private:
  uint64_t state_;
};

/// xoshiro256** — the library's workhorse PRNG.
///
/// All stochastic components (simulator, bootstrap sampling, permutation
/// shuffles, ...) draw from an explicitly seeded `Rng` so every experiment
/// is bit-reproducible. Not cryptographically secure.
class Rng {
 public:
  /// Seeds the four 256-bit state words via SplitMix64(seed).
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next 64 random bits.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal via Box–Muller (cached second deviate).
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Student-t deviate with `dof` degrees of freedom (fat tails for
  /// crypto-like return shocks). Requires dof > 0.
  double StudentT(double dof);

  /// Exponential deviate with the given rate. Requires rate > 0.
  double Exponential(double rate);

  /// Gamma(shape, scale) via Marsaglia–Tsang. Requires shape, scale > 0.
  double Gamma(double shape, double scale);

  /// Bernoulli trial with probability p of true.
  bool Bernoulli(double p);

  /// Poisson deviate (Knuth for small mean, normal approximation above 64).
  int Poisson(double mean);

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// `count` indices sampled uniformly with replacement from [0, n).
  std::vector<int> SampleWithReplacement(int n, int count);

  /// `count` distinct indices sampled uniformly without replacement from
  /// [0, n). Requires count <= n.
  std::vector<int> SampleWithoutReplacement(int n, int count);

  /// Deterministically derives an independent child seed; child `i` of the
  /// same parent is stable across runs.
  uint64_t Fork(uint64_t child_index);

 private:
  uint64_t state_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace fab

#endif  // FAB_UTIL_RANDOM_H_
