#include "util/date.h"

#include <cstdio>

namespace fab {

namespace {

// Howard Hinnant's civil-from-days / days-from-civil algorithms.
int64_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);             // [0, 399]
  const unsigned doy =
      static_cast<unsigned>((153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1);
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;            // [0, 146096]
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

void CivilFromDays(int64_t z, int* y_out, int* m_out, int* d_out) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);          // [0, 146096]
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;             // [0, 399]
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);          // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                               // [0, 11]
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;                       // [1, 31]
  const unsigned m = mp + (mp < 10 ? 3 : -9);                            // [1, 12]
  *y_out = static_cast<int>(y + (m <= 2));
  *m_out = static_cast<int>(m);
  *d_out = static_cast<int>(d);
}

bool IsLeap(int y) { return y % 4 == 0 && (y % 100 != 0 || y % 400 == 0); }

int DaysInMonth(int y, int m) {
  static const int kDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (m == 2 && IsLeap(y)) return 29;
  return kDays[m - 1];
}

}  // namespace

Date::Date(int year, int month, int day)
    : ordinal_(DaysFromCivil(year, month, day)) {}

Date Date::FromOrdinal(int64_t ordinal) { return Date(ordinal); }

Result<Date> Date::FromString(const std::string& iso) {
  int y = 0, m = 0, d = 0;
  char extra = 0;
  if (std::sscanf(iso.c_str(), "%d-%d-%d%c", &y, &m, &d, &extra) != 3) {
    return Status::InvalidArgument("cannot parse date: '" + iso + "'");
  }
  if (!IsValidCivil(y, m, d)) {
    return Status::InvalidArgument("invalid calendar date: '" + iso + "'");
  }
  return Date(y, m, d);
}

bool Date::IsValidCivil(int year, int month, int day) {
  if (month < 1 || month > 12) return false;
  if (day < 1 || day > DaysInMonth(year, month)) return false;
  return true;
}

int Date::year() const {
  int y, m, d;
  CivilFromDays(ordinal_, &y, &m, &d);
  return y;
}

int Date::month() const {
  int y, m, d;
  CivilFromDays(ordinal_, &y, &m, &d);
  return m;
}

int Date::day() const {
  int y, m, d;
  CivilFromDays(ordinal_, &y, &m, &d);
  return d;
}

int Date::day_of_week() const {
  // 1970-01-01 was a Thursday (ISO weekday 4).
  int64_t w = (ordinal_ + 3) % 7;  // 0 = Monday.
  if (w < 0) w += 7;
  return static_cast<int>(w) + 1;
}

std::string Date::ToString() const {
  int y, m, d;
  CivilFromDays(ordinal_, &y, &m, &d);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m, d);
  return buf;
}

std::vector<Date> DailyRange(Date start, Date end) {
  std::vector<Date> out;
  if (end < start) return out;
  out.reserve(static_cast<size_t>(end - start) + 1);
  for (int64_t o = start.ordinal(); o <= end.ordinal(); ++o) {
    out.push_back(Date::FromOrdinal(o));
  }
  return out;
}

}  // namespace fab
