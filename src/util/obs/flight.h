#ifndef FAB_UTIL_OBS_FLIGHT_H_
#define FAB_UTIL_OBS_FLIGHT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/obs/clock.h"
#include "util/status.h"

/// fab::obs flight recorder: a fixed-size lock-free ring of the most
/// recently *completed* spans, always on — independent of FAB_TRACE.
///
/// Where the tracer (trace.h) keeps every event and needs an explicit
/// export, the flight recorder keeps only the last N spans and is built
/// to survive the worst moment: a crash. When FAB_FLIGHT_DUMP names a
/// file, the fd is opened eagerly and SIGSEGV/SIGABRT/atexit handlers
/// dump the ring as Chrome trace JSON through an async-signal-safe
/// writer — so any crash report ships with its last seconds of spans.
///
/// Knobs (read once at process start):
///   FAB_FLIGHT_SPANS  ring capacity, rounded up to a power of two
///                     (default 8192; 0 disables recording entirely)
///   FAB_FLIGHT_DUMP   crash/exit dump path (unset = no dump handlers)
///
/// The ring is written on span destruction (TraceSpan wires itself in)
/// and read by /tracez snapshots and the crash dumper. Writers claim a
/// monotonically increasing ticket and overwrite slot `ticket % N`; a
/// per-slot sequence word (seqlock) lets readers detect and skip slots
/// they raced with. Span names must be string literals (fablint's
/// obs-span-literal rule) so the stored `const char*` is dereferenceable
/// forever — including from the signal handler.
///
/// Cost per recorded span: two relaxed fetch_adds plus a handful of
/// relaxed stores (~tens of ns). -DFAB_OBS=OFF compiles recording to a
/// true no-op.
namespace fab::obs {

/// One completed span, as copied out of the ring by FlightSnapshot.
/// Times are nanoseconds relative to the recorder's process-start
/// origin; `tid` is a small dense per-thread index (first-record order),
/// not an OS thread id.
struct FlightSpan {
  const char* name = nullptr;
  uint64_t trace_id = 0;
  int64_t start_ns = 0;
  int64_t dur_ns = 0;
  int tid = 0;
};

#if !defined(FAB_OBS_DISABLED)

/// True when the ring accepts spans (capacity > 0 and not disabled by
/// FlightSetEnabled). One relaxed load — safe on any hot path.
bool FlightEnabled();

/// Test/bench hook: force recording off (or back on) regardless of the
/// env-configured capacity. Does not clear the ring.
void FlightSetEnabled(bool enabled);

/// Ring capacity in spans (power of two; 0 when FAB_FLIGHT_SPANS=0).
size_t FlightCapacity();

/// Records one completed span. `name` MUST be a string literal (or
/// otherwise immortal storage) — the pointer is kept, not the bytes.
void FlightRecordSpan(const char* name, uint64_t trace_id,
                      Clock::time_point start, Clock::time_point end);

/// Copies every currently-valid slot out of the ring. Slots mid-write
/// are skipped, not blocked on; the result is unordered.
std::vector<FlightSpan> FlightSnapshot();

/// Async-signal-safe: writes the ring to `fd` as Chrome trace JSON
/// ("X" complete events) using only write(2) and stack buffers. Safe to
/// call from a SIGSEGV handler. The fd is truncated/rewound first.
void FlightDumpToFd(int fd);

/// Convenience (NOT signal-safe): open `path`, dump, close.
[[nodiscard]] Status FlightDump(const std::string& path);

/// Opens `path` eagerly, keeps the fd, and installs SIGSEGV/SIGABRT
/// handlers plus an atexit hook that dump the ring to it. Idempotent per
/// path; callable at any time (the FAB_FLIGHT_DUMP env bootstrap calls
/// it at static init, tests call it after fork). Whichever of crash or
/// clean exit happens first writes the file exactly once.
[[nodiscard]] Status FlightConfigureDump(const std::string& path);

#else  // FAB_OBS_DISABLED: recording compiles to nothing.

inline bool FlightEnabled() { return false; }
inline void FlightSetEnabled(bool) {}
inline size_t FlightCapacity() { return 0; }
inline void FlightRecordSpan(const char*, uint64_t, Clock::time_point,
                             Clock::time_point) {}
inline std::vector<FlightSpan> FlightSnapshot() { return {}; }
inline void FlightDumpToFd(int) {}
/// Disabled builds still honour the dump entry points so the smoke path
/// (dump + parse) works in every configuration: they write an empty,
/// valid Chrome trace.
[[nodiscard]] Status FlightDump(const std::string& path);
[[nodiscard]] Status FlightConfigureDump(const std::string& path);

#endif  // FAB_OBS_DISABLED

}  // namespace fab::obs

#endif  // FAB_UTIL_OBS_FLIGHT_H_
