#include "util/obs/flight.h"

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include <fcntl.h>
#include <unistd.h>

namespace fab::obs {

#if !defined(FAB_OBS_DISABLED)

namespace {

constexpr size_t kDefaultCapacity = 8192;
constexpr size_t kMaxCapacity = size_t{1} << 22;

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

size_t CapacityFromEnv() {
  const char* env = std::getenv("FAB_FLIGHT_SPANS");
  if (env == nullptr || *env == '\0') return kDefaultCapacity;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0') return kDefaultCapacity;
  if (v == 0) return 0;
  if (v > kMaxCapacity) return kMaxCapacity;
  return RoundUpPow2(static_cast<size_t>(v));
}

/// One ring slot. Every field is a relaxed atomic so concurrent
/// writer/reader access is race-free; the `seq` word is the seqlock that
/// gives readers cross-field consistency:
///   writer: seq = 2*ticket+1 (odd: writing), fields, seq = 2*ticket+2
///   reader: s1 = seq (must be even, nonzero), fields, s2 = seq, s1==s2
/// A reader that loses the race simply skips the slot — never blocks.
struct Slot {
  std::atomic<uint64_t> seq{0};
  std::atomic<const char*> name{nullptr};
  std::atomic<uint64_t> trace_id{0};
  std::atomic<int64_t> start_ns{0};
  std::atomic<int64_t> dur_ns{0};
  std::atomic<int> tid{0};
};

std::atomic<bool> g_flight_enabled{false};

/// Process-wide ring. Intentionally heap-allocated and never destroyed
/// (same rationale as the Tracer in trace.cc): spans destruct during
/// static teardown and the SIGSEGV handler must be able to walk the
/// slots at absolutely any time.
class Ring {
 public:
  static Ring& Get() {
    // Intentional leak; still reachable through this static, so
    // LeakSanitizer stays silent.
    static Ring* const ring = new Ring();  // fablint:allow(hygiene-new-delete)
    return *ring;
  }

  size_t capacity() const { return capacity_; }
  Clock::time_point origin() const { return origin_; }

  void Record(const char* name, uint64_t trace_id, int64_t start_ns,
              int64_t dur_ns, int tid) {
    const uint64_t ticket = next_.fetch_add(1, std::memory_order_relaxed);
    Slot& slot = slots_[ticket & mask_];
    slot.seq.store(ticket * 2 + 1, std::memory_order_release);
    slot.name.store(name, std::memory_order_relaxed);
    slot.trace_id.store(trace_id, std::memory_order_relaxed);
    slot.start_ns.store(start_ns, std::memory_order_relaxed);
    slot.dur_ns.store(dur_ns, std::memory_order_relaxed);
    slot.tid.store(tid, std::memory_order_relaxed);
    slot.seq.store(ticket * 2 + 2, std::memory_order_release);
  }

  /// Seqlock read of slot `i`; false when empty or racing a writer.
  bool Read(size_t i, FlightSpan* out) const {
    const Slot& slot = slots_[i];
    const uint64_t s1 = slot.seq.load(std::memory_order_acquire);
    if (s1 == 0 || (s1 & 1) != 0) return false;
    out->name = slot.name.load(std::memory_order_relaxed);
    out->trace_id = slot.trace_id.load(std::memory_order_relaxed);
    out->start_ns = slot.start_ns.load(std::memory_order_relaxed);
    out->dur_ns = slot.dur_ns.load(std::memory_order_relaxed);
    out->tid = slot.tid.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    return slot.seq.load(std::memory_order_relaxed) == s1;
  }

 private:
  Ring()
      : origin_(Clock::Now()),
        capacity_(CapacityFromEnv()),
        mask_(capacity_ == 0 ? 0 : capacity_ - 1),
        slots_(capacity_ == 0
                   ? nullptr
                   : new Slot[capacity_]) {  // fablint:allow(hygiene-new-delete)
    g_flight_enabled.store(capacity_ > 0, std::memory_order_relaxed);
  }

  const Clock::time_point origin_;
  const size_t capacity_;
  const size_t mask_;
  Slot* const slots_;
  std::atomic<uint64_t> next_{0};
};

/// Small dense thread index for dump readability (signal-safe to read:
/// the ring stores the already-assigned value, never assigns in a
/// handler).
int LocalTid() {
  static std::atomic<int> counter{0};
  thread_local const int tid = counter.fetch_add(1, std::memory_order_relaxed) + 1;
  return tid;
}

/// Append-to-fd writer built exclusively from write(2) and stack
/// buffers: every method is async-signal-safe.
class FdWriter {
 public:
  explicit FdWriter(int fd) : fd_(fd) {}

  void Str(const char* s) {
    while (*s != '\0') Put(*s++);
  }
  void U64(uint64_t v) {
    char tmp[20];
    int n = 0;
    do {
      tmp[n++] = static_cast<char>('0' + v % 10);
      v /= 10;
    } while (v != 0);
    while (n > 0) Put(tmp[--n]);
  }
  void I64(int64_t v) {
    if (v < 0) {
      Put('-');
      U64(static_cast<uint64_t>(-(v + 1)) + 1);
    } else {
      U64(static_cast<uint64_t>(v));
    }
  }
  void Hex16(uint64_t v) {
    for (int shift = 60; shift >= 0; shift -= 4) {
      Put("0123456789abcdef"[(v >> shift) & 0xf]);
    }
  }
  /// Nanoseconds rendered as fractional microseconds ("123.456") —
  /// Chrome trace "ts"/"dur" are microseconds.
  void Micros(int64_t ns) {
    I64(ns / 1000);
    int64_t frac = ns % 1000;
    if (frac < 0) frac = -frac;
    Put('.');
    Put(static_cast<char>('0' + frac / 100));
    Put(static_cast<char>('0' + (frac / 10) % 10));
    Put(static_cast<char>('0' + frac % 10));
  }
  /// Span names are string literals from our own code (fablint's
  /// obs-span-literal rule), so instead of a full JSON escaper any
  /// character that would need escaping is replaced with '_'.
  void SafeName(const char* s) {
    for (; *s != '\0'; ++s) {
      const char c = *s;
      const bool unsafe =
          c == '"' || c == '\\' || static_cast<unsigned char>(c) < 0x20;
      Put(unsafe ? '_' : c);
    }
  }
  void Flush() {
    size_t off = 0;
    while (off < len_) {
      const ssize_t w = ::write(fd_, buf_ + off, len_ - off);
      if (w <= 0) break;
      off += static_cast<size_t>(w);
    }
    len_ = 0;
  }

 private:
  void Put(char c) {
    if (len_ == sizeof(buf_)) Flush();
    buf_[len_++] = c;
  }

  const int fd_;
  size_t len_ = 0;
  char buf_[4096];
};

std::atomic<int> g_dump_fd{-1};
std::atomic<bool> g_dump_done{false};

/// First caller (crash handler or atexit, whichever fires) dumps; the
/// other becomes a no-op so the file is written exactly once.
void DumpOnce() {
  const int fd = g_dump_fd.load(std::memory_order_relaxed);
  if (fd < 0) return;
  if (g_dump_done.exchange(true, std::memory_order_acq_rel)) return;
  FlightDumpToFd(fd);
}

void FlightSignalHandler(int sig) {
  DumpOnce();
  // SA_RESETHAND already restored the default disposition; re-raise so
  // the process still dies with the original signal.
  ::raise(sig);
}

void FlightAtExitDump() { DumpOnce(); }

/// Static-init bootstrap, mirroring the tracer's: establishes the time
/// origin early and honours the env knobs even in processes that never
/// touch the API explicitly.
[[maybe_unused]] const bool g_flight_bootstrap = [] {
  Ring::Get();
  const char* dump = std::getenv("FAB_FLIGHT_DUMP");
  if (dump != nullptr && *dump != '\0') {
    const Status status = FlightConfigureDump(dump);
    if (!status.ok()) {
      std::fprintf(stderr, "fab::obs: %s\n", status.ToString().c_str());
    }
  }
  return true;
}();

}  // namespace

bool FlightEnabled() {
  return g_flight_enabled.load(std::memory_order_relaxed);
}

void FlightSetEnabled(bool enabled) {
  // Cannot enable a ring that was never allocated (FAB_FLIGHT_SPANS=0).
  if (enabled && Ring::Get().capacity() == 0) return;
  g_flight_enabled.store(enabled, std::memory_order_relaxed);
}

size_t FlightCapacity() { return Ring::Get().capacity(); }

void FlightRecordSpan(const char* name, uint64_t trace_id,
                      Clock::time_point start, Clock::time_point end) {
  if (!FlightEnabled()) return;
  Ring& ring = Ring::Get();
  ring.Record(name, trace_id, Clock::NanosBetween(ring.origin(), start),
              Clock::NanosBetween(start, end), LocalTid());
}

std::vector<FlightSpan> FlightSnapshot() {
  Ring& ring = Ring::Get();
  std::vector<FlightSpan> out;
  out.reserve(ring.capacity());
  for (size_t i = 0; i < ring.capacity(); ++i) {
    FlightSpan span;
    if (ring.Read(i, &span)) out.push_back(span);
  }
  return out;
}

void FlightDumpToFd(int fd) {
  ::lseek(fd, 0, SEEK_SET);
  while (::ftruncate(fd, 0) == -1 && errno == EINTR) {
  }
  Ring& ring = Ring::Get();
  FdWriter w(fd);
  w.Str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
  bool first = true;
  for (size_t i = 0; i < ring.capacity(); ++i) {
    FlightSpan span;
    if (!ring.Read(i, &span) || span.name == nullptr) continue;
    if (!first) w.Str(",");
    first = false;
    w.Str("\n{\"name\":\"");
    w.SafeName(span.name);
    w.Str("\",\"ph\":\"X\",\"ts\":");
    w.Micros(span.start_ns);
    w.Str(",\"dur\":");
    w.Micros(span.dur_ns);
    w.Str(",\"pid\":1,\"tid\":");
    w.U64(static_cast<uint64_t>(span.tid));
    w.Str(",\"cat\":\"flight\",\"args\":{\"trace\":\"");
    w.Hex16(span.trace_id);
    w.Str("\"}}");
  }
  w.Str("\n]}\n");
  w.Flush();
}

Status FlightDump(const std::string& path) {
  const int fd =
      ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return Status::IoError("cannot open flight dump file: " + path);
  FlightDumpToFd(fd);
  ::close(fd);
  return Status::OK();
}

Status FlightConfigureDump(const std::string& path) {
  const int fd =
      ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return Status::IoError("cannot open flight dump file: " + path);
  const int old = g_dump_fd.exchange(fd, std::memory_order_relaxed);
  if (old >= 0) ::close(old);
  g_dump_done.store(false, std::memory_order_relaxed);
  static const bool installed = [] {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = FlightSignalHandler;
    sa.sa_flags = SA_RESETHAND;
    sigemptyset(&sa.sa_mask);
    ::sigaction(SIGSEGV, &sa, nullptr);
    ::sigaction(SIGABRT, &sa, nullptr);
    ::sigaction(SIGBUS, &sa, nullptr);
    std::atexit(FlightAtExitDump);
    return true;
  }();
  (void)installed;
  return Status::OK();
}

#else  // FAB_OBS_DISABLED

namespace {

/// Disabled builds keep the dump contract alive with an empty, valid
/// Chrome trace (mirrors WriteTrace in trace.cc).
Status WriteEmptyTrace(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot write flight dump file: " + path);
  out << "{\"traceEvents\":[]}\n";
  return Status::OK();
}

}  // namespace

Status FlightDump(const std::string& path) { return WriteEmptyTrace(path); }

Status FlightConfigureDump(const std::string& path) {
  return WriteEmptyTrace(path);
}

#endif  // FAB_OBS_DISABLED

}  // namespace fab::obs
