#ifndef FAB_UTIL_OBS_TRACE_CONTEXT_H_
#define FAB_UTIL_OBS_TRACE_CONTEXT_H_

#include <cstdint>
#include <string>

/// fab::obs request-scoped trace context.
///
/// A trace id is a 64-bit token minted once per inbound request (or
/// adopted from the client's `x-fab-trace` header) and carried through
/// every thread that works on that request: the HttpServer IO thread
/// installs it before dispatch, ThreadPool::Enqueue captures it into
/// the queued task, and BatchServer re-installs it around completion
/// callbacks. Every span and histogram sample recorded while a context
/// is installed is attributed to that id, which is what lets /tracez
/// stitch a request's spans across the IO thread, the handler pool,
/// and the shard batch threads.
///
/// This header is compiled in *every* build configuration, including
/// -DFAB_OBS=OFF: metric exemplars and response-header echo still need
/// the id even when span collection is compiled out. The cost when no
/// request is in flight is one thread-local load.
///
/// Determinism contract: ids are minted from a per-process salt and an
/// atomic counter — no wall clock, no RNG — and never feed back into
/// any computation. Goldens are bitwise identical with or without a
/// context installed.
namespace fab::obs {

/// The trace id installed on the calling thread, or 0 when none is.
uint64_t CurrentTraceId();

/// RAII: installs `id` as the calling thread's trace context and
/// restores the previous context (usually 0) on destruction. Installing
/// 0 is a no-op restore-only scope, so callers never need to branch.
class ScopedTraceId {
 public:
  explicit ScopedTraceId(uint64_t id);
  ~ScopedTraceId();

  ScopedTraceId(const ScopedTraceId&) = delete;
  ScopedTraceId& operator=(const ScopedTraceId&) = delete;

 private:
  uint64_t saved_;
};

/// Mints a fresh process-unique trace id. Never returns 0 (the "no
/// context" sentinel). Built from a pid-derived salt mixed with an
/// atomic counter via SplitMix64 — deterministic per process, unique
/// across the fleet for any realistic request volume.
uint64_t MintTraceId();

/// Renders an id as exactly 16 lowercase hex digits (the `x-fab-trace`
/// wire format), e.g. "00c4ceb9fe1a85ec".
std::string FormatTraceId(uint64_t id);

/// Parses the wire format back. Accepts 1..16 hex digits (case
/// insensitive); returns 0 on any malformed input — which downgrades an
/// unusable inbound header to "mint a fresh id" at the adoption site.
uint64_t ParseTraceId(const std::string& text);

}  // namespace fab::obs

#endif  // FAB_UTIL_OBS_TRACE_CONTEXT_H_
