#ifndef FAB_UTIL_OBS_METRICS_H_
#define FAB_UTIL_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "util/status.h"

/// fab::obs metrics: named Counter / Gauge / Histogram instruments.
///
/// Unlike the trace macros (trace.h), metrics are compiled in every build
/// configuration — BatchServer's latency percentiles are part of its API
/// and must work with FAB_OBS=OFF. Every instrument is a handful of
/// relaxed/CAS atomics, cheap enough for hot paths; recording never
/// blocks and never allocates.
///
/// Instruments can be owned directly (BatchServer holds its own
/// Histograms so per-instance stats stay isolated) or fetched from the
/// process-wide registry by name:
///
///   obs::GetCounter("ml/rf_fits").Increment();
///   obs::GetGauge("threadpool/queue_depth").Add(1);
///   obs::GetHistogram("threadpool/task_us").Record(micros);
///
/// Registry references are valid for the process lifetime. The whole
/// registry dumps as JSON via obs::ExportMetrics(); when the FAB_METRICS
/// environment variable names a file, the process writes that JSON there
/// at exit.
namespace fab::obs {

/// Monotonically increasing event count. Lock-free.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Instantaneous level (queue depth, resident models, ...). Lock-free;
/// Add uses a CAS loop, so concurrent +1/-1 never lose updates.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-footprint log-scale histogram with percentile readout.
///
/// 512 buckets whose upper edges grow geometrically by g = 2^(1/8)
/// starting at kLowest = 1e-3, so the tracked range spans 1e-3 .. ~1.6e16
/// (nanoseconds to hours when recording microseconds). Values at or
/// below kLowest land in bucket 0; values beyond the top edge land in
/// the last bucket.
///
/// Error bound (documented contract, asserted in tests): Percentile()
/// returns the geometric midpoint of the selected bucket, clamped to the
/// exact tracked [Min(), Max()], so any percentile is within a relative
/// error of sqrt(g) - 1 = 2^(1/16) - 1 ≈ 4.4% (< 5%) of the exact
/// sorted-sample percentile, for samples inside the tracked range.
/// Count, Sum, Min and Max are exact.
///
/// Record() is lock-free (one relaxed fetch_add plus two bounded CAS
/// loops); readout methods are monotonic-consistent but may observe a
/// mid-update snapshot under concurrency, which is fine for telemetry.
class Histogram {
 public:
  static constexpr int kBuckets = 512;
  static constexpr int kBucketsPerDoubling = 8;
  static constexpr double kLowest = 1e-3;

  /// Records `v`, attributed to the calling thread's trace context
  /// (obs::CurrentTraceId) for the max-bucket exemplar.
  void Record(double v);

  /// Records `v` with an explicit trace id — for values measured on a
  /// thread other than the one that owns the request context (e.g.
  /// BatchServer batch threads recording per-request queue wait).
  void Record(double v, uint64_t trace_id);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  double Mean() const {
    const uint64_t n = Count();
    return n == 0 ? 0.0 : Sum() / static_cast<double>(n);
  }
  /// Exact smallest / largest recorded value (0 when empty).
  double Min() const;
  double Max() const;

  /// Approximate q-quantile, q in [0, 1]; see the class comment for the
  /// ≤ 5% relative error bound. Returns 0 when empty.
  double Percentile(double q) const;

  /// Trace id of the most recent sample that set (or tied) Max() while
  /// a trace context was installed — the "what was the worst request"
  /// exemplar surfaced by /rpcz. 0 when no traced sample has led yet.
  /// Maintained with a single relaxed atomic store on the record path:
  /// under a race the exemplar may lag the exact max by one sample,
  /// which is fine for telemetry.
  uint64_t MaxExemplarTraceId() const {
    return max_trace_.load(std::memory_order_relaxed);
  }

  /// Raw per-bucket count (i in [0, kBuckets)) — the Prometheus
  /// exposition reads these to emit cumulative `le` buckets.
  uint64_t BucketCount(int i) const {
    return buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
  }

  /// Upper edge of bucket i: kLowest * 2^((i+1)/8).
  static double BucketUpperEdge(int i);

  /// {"count":N,"sum":S,"min":m,"max":M,"p50":...,"p95":...,"p99":...,
  ///  "max_trace":"<hex16>"} (max_trace only when an exemplar exists).
  std::string ToJson() const;

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};  ///< valid only when count_ > 0
  std::atomic<double> max_{0.0};  ///< valid only when count_ > 0
  std::atomic<uint64_t> max_trace_{0};  ///< exemplar for the max bucket
};

/// Process-wide instruments by name. The returned reference stays valid
/// for the process lifetime; repeated calls with the same name return
/// the same instrument. Lookup takes a mutex — fetch once, reuse the
/// reference on hot paths.
Counter& GetCounter(const std::string& name);
Gauge& GetGauge(const std::string& name);
Histogram& GetHistogram(const std::string& name);

/// One JSON object covering every registered instrument:
///   {"counters":{...},"gauges":{...},"histograms":{name:{...}}}
/// The registry lock is held only to snapshot instrument pointers;
/// serialization runs outside it.
std::string ExportMetrics();

/// Prometheus text exposition (version 0.0.4) of the whole registry —
/// what GET /metricsz serves. Names are sanitized ("serve/latency_us"
/// -> "fab_serve_latency_us"), counters gain the conventional `_total`
/// suffix, and histograms emit cumulative `_bucket{le="..."}` lines
/// (non-empty buckets plus `+Inf`), `_sum`, and `_count`.
std::string ExportPrometheus();

/// Writes ExportMetrics() to `path` atomically (temp file + rename).
[[nodiscard]] Status WriteMetrics(const std::string& path);

}  // namespace fab::obs

#endif  // FAB_UTIL_OBS_METRICS_H_
