#include "util/obs/trace_context.h"

#include <atomic>
#include <cstdio>

#include <unistd.h>

namespace fab::obs {

namespace {

thread_local uint64_t t_trace_id = 0;

/// SplitMix64 finalizer: bijective, so distinct (salt + counter) inputs
/// can never collide, and the avalanche makes ids look uniform even
/// though the inputs are sequential.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

uint64_t CurrentTraceId() { return t_trace_id; }

ScopedTraceId::ScopedTraceId(uint64_t id) : saved_(t_trace_id) {
  if (id != 0) t_trace_id = id;
}

ScopedTraceId::~ScopedTraceId() { t_trace_id = saved_; }

uint64_t MintTraceId() {
  // The pid salt distinguishes processes that fork from the same image;
  // the counter distinguishes requests within one. No wall clock: ids
  // must not introduce a timing dependence anywhere (see header).
  static const uint64_t salt = Mix64(static_cast<uint64_t>(::getpid()));
  static std::atomic<uint64_t> counter{0};
  uint64_t id = 0;
  while (id == 0) {  // 0 is the "no context" sentinel; skip it
    id = Mix64(salt ^ counter.fetch_add(1, std::memory_order_relaxed));
  }
  return id;
}

std::string FormatTraceId(uint64_t id) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(id));
  return buf;
}

uint64_t ParseTraceId(const std::string& text) {
  if (text.empty() || text.size() > 16) return 0;
  uint64_t id = 0;
  for (char c : text) {
    const int d = HexDigit(c);
    if (d < 0) return 0;
    id = (id << 4) | static_cast<uint64_t>(d);
  }
  return id;
}

}  // namespace fab::obs
