#include "util/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <unistd.h>

#include "util/obs/trace_context.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace fab::obs {

namespace {

/// Relaxed CAS-min/max on an atomic<double>. `count_` going 0 -> 1
/// initialises both bounds, so `first` seeds instead of comparing.
void AtomicMin(std::atomic<double>& a, double v, bool first) {
  double cur = a.load(std::memory_order_relaxed);
  while ((first || v < cur) &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    first = false;
  }
}

/// Returns true when `v` became (or tied) the tracked max — the signal
/// the caller uses to refresh the max-bucket exemplar.
bool AtomicMax(std::atomic<double>& a, double v, bool first) {
  double cur = a.load(std::memory_order_relaxed);
  while (first || v > cur) {
    if (a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
      return true;
    }
    first = false;
  }
  return v == cur;
}

void AtomicAdd(std::atomic<double>& a, double delta) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + delta,
                                  std::memory_order_relaxed)) {
  }
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return v > 0 ? "\"inf\"" : (v < 0 ? "\"-inf\"" : "\"nan\"");
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Metric names are code-controlled identifiers ("serve/latency_us");
/// escape defensively anyway so the export is always valid JSON.
std::string JsonString(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

/// Bucket index for a positive value: floor(log2(v / kLowest) * 8),
/// clamped into [0, kBuckets). Bucket i covers
/// (kLowest * 2^(i/8), kLowest * 2^((i+1)/8)].
int BucketIndex(double v) {
  if (!(v > Histogram::kLowest)) return 0;
  const double idx = std::floor(std::log2(v / Histogram::kLowest) *
                                Histogram::kBucketsPerDoubling);
  if (idx >= Histogram::kBuckets - 1) return Histogram::kBuckets - 1;
  return static_cast<int>(idx);
}

/// Geometric midpoint of bucket i — the representative value returned
/// by Percentile() before clamping to the exact min/max.
double BucketMid(int i) {
  return Histogram::kLowest *
         std::exp2((i + 0.5) / Histogram::kBucketsPerDoubling);
}

/// Name-keyed instrument maps. Instruments are never deleted, so the
/// references handed out stay valid for the process lifetime; the whole
/// registry is intentionally leaked (still reachable => LSan-silent) so
/// pool workers draining during static destruction can still record.
class Registry {
 public:
  static Registry& Get() {
    // fablint:allow(hygiene-new-delete) — intentional process-lifetime leak.
    static Registry* const registry = new Registry();
    return *registry;
  }

  Counter& GetCounter(const std::string& name) FAB_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    auto& slot = counters_[name];
    if (slot == nullptr) slot = std::make_unique<Counter>();
    return *slot;
  }

  Gauge& GetGauge(const std::string& name) FAB_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    auto& slot = gauges_[name];
    if (slot == nullptr) slot = std::make_unique<Gauge>();
    return *slot;
  }

  Histogram& GetHistogram(const std::string& name) FAB_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    auto& slot = histograms_[name];
    if (slot == nullptr) slot = std::make_unique<Histogram>();
    return *slot;
  }

  /// Pointer snapshot of every registered instrument. Map nodes are
  /// process-lifetime (instruments are never deleted), so the name and
  /// instrument pointers stay valid after the lock is released — which
  /// is what lets Export/ExportPrometheus serialize lock-free.
  struct Snapshot {
    std::vector<std::pair<const std::string*, const Counter*>> counters;
    std::vector<std::pair<const std::string*, const Gauge*>> gauges;
    std::vector<std::pair<const std::string*, const Histogram*>> histograms;
  };

  Snapshot Snap() FAB_EXCLUDES(mu_) {
    Snapshot snap;
    util::MutexLock lock(mu_);
    // fablint:hot -- registry lock held: pointer copies into reserved
    // vectors only; every byte of serialization happens off-lock.
    snap.counters.reserve(counters_.size());
    snap.gauges.reserve(gauges_.size());
    snap.histograms.reserve(histograms_.size());
    for (const auto& [name, counter] : counters_) {
      snap.counters.push_back({&name, counter.get()});
    }
    for (const auto& [name, gauge] : gauges_) {
      snap.gauges.push_back({&name, gauge.get()});
    }
    for (const auto& [name, histogram] : histograms_) {
      snap.histograms.push_back({&name, histogram.get()});
    }
    // fablint:endhot
    return snap;
  }

  std::string Export() FAB_EXCLUDES(mu_) {
    const Snapshot snap = Snap();
    std::string out;
    out.reserve(64 + 48 * snap.counters.size() + 48 * snap.gauges.size() +
                224 * snap.histograms.size());
    out += "{\"counters\":{";
    bool first = true;
    for (const auto& [name, counter] : snap.counters) {
      if (!first) out += ",";
      first = false;
      out += JsonString(*name) + ":" + std::to_string(counter->Value());
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto& [name, gauge] : snap.gauges) {
      if (!first) out += ",";
      first = false;
      out += JsonString(*name) + ":" + JsonNumber(gauge->Value());
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto& [name, histogram] : snap.histograms) {
      if (!first) out += ",";
      first = false;
      out += JsonString(*name) + ":" + histogram->ToJson();
    }
    out += "}}";
    return out;
  }

 private:
  Registry() {
    const char* path = std::getenv("FAB_METRICS");
    if (path != nullptr && *path != '\0') {
      exit_path_ = path;
      std::atexit(+[] {
        const std::string& path = Registry::Get().exit_path_;
        const Status status = WriteMetrics(path);
        if (!status.ok()) {
          std::fprintf(stderr, "fab::obs: %s\n", status.ToString().c_str());
        }
      });
    }
  }

  std::string exit_path_;
  util::Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      FAB_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ FAB_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      FAB_GUARDED_BY(mu_);
};

/// Runs the FAB_METRICS env bootstrap at static-init time, so the
/// exit-dump hook is registered even in processes that never create an
/// instrument (the dump is then a valid empty registry).
[[maybe_unused]] const bool g_env_bootstrap = [] {
  Registry::Get();
  return true;
}();

}  // namespace

void Histogram::Record(double v) { Record(v, CurrentTraceId()); }

void Histogram::Record(double v, uint64_t trace_id) {
  buckets_[static_cast<size_t>(BucketIndex(v))].fetch_add(
      1, std::memory_order_relaxed);
  const uint64_t prior = count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(sum_, v);
  AtomicMin(min_, v, /*first=*/prior == 0);
  // One relaxed store when this sample leads: the exemplar may lag the
  // exact max by one racing sample, never blocks, never locks. Untraced
  // samples (trace_id 0) leave the previous exemplar in place.
  if (AtomicMax(max_, v, /*first=*/prior == 0) && trace_id != 0) {
    max_trace_.store(trace_id, std::memory_order_relaxed);
  }
}

double Histogram::BucketUpperEdge(int i) {
  return kLowest * std::exp2(static_cast<double>(i + 1) / kBucketsPerDoubling);
}

double Histogram::Min() const {
  return Count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::Max() const {
  return Count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double Histogram::Percentile(double q) const {
  const uint64_t total = Count();
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-quantile under the nearest-rank definition.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(total))));
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
    if (seen >= rank) {
      // Clamp the bucket midpoint to the exact tracked range so
      // Percentile(0) >= Min(), Percentile(1) <= Max(), and percentile
      // ordering vs the exact extremes always holds.
      return std::clamp(BucketMid(i), Min(), Max());
    }
  }
  return Max();  // racing snapshot: buckets lag count_; max is the
                 // closest consistent answer
}

std::string Histogram::ToJson() const {
  std::string out;
  out.reserve(224);
  out += "{\"count\":" + std::to_string(Count());
  out += ",\"sum\":" + JsonNumber(Sum());
  out += ",\"min\":" + JsonNumber(Min());
  out += ",\"max\":" + JsonNumber(Max());
  out += ",\"p50\":" + JsonNumber(Percentile(0.50));
  out += ",\"p95\":" + JsonNumber(Percentile(0.95));
  out += ",\"p99\":" + JsonNumber(Percentile(0.99));
  const uint64_t exemplar = MaxExemplarTraceId();
  if (exemplar != 0) {
    out += ",\"max_trace\":\"" + FormatTraceId(exemplar) + "\"";
  }
  out += "}";
  return out;
}

Counter& GetCounter(const std::string& name) {
  return Registry::Get().GetCounter(name);
}

Gauge& GetGauge(const std::string& name) {
  return Registry::Get().GetGauge(name);
}

Histogram& GetHistogram(const std::string& name) {
  return Registry::Get().GetHistogram(name);
}

std::string ExportMetrics() { return Registry::Get().Export(); }

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:]; our instrument names use
/// '/' and '-' as separators. "serve/latency_us" -> "fab_serve_latency_us".
std::string PromName(const std::string& name) {
  std::string out = "fab_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

/// Prometheus sample values: plain decimal, with +Inf/-Inf/NaN spelled
/// the way the exposition format expects.
std::string PromNumber(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string ExportPrometheus() {
  const Registry::Snapshot snap = Registry::Get().Snap();
  std::string out;
  out.reserve(128 + 96 * snap.counters.size() + 96 * snap.gauges.size() +
              768 * snap.histograms.size());
  for (const auto& [name, counter] : snap.counters) {
    const std::string prom = PromName(*name);
    out += "# TYPE " + prom + "_total counter\n";
    out += prom + "_total " + std::to_string(counter->Value()) + "\n";
  }
  for (const auto& [name, gauge] : snap.gauges) {
    const std::string prom = PromName(*name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " " + PromNumber(gauge->Value()) + "\n";
  }
  for (const auto& [name, histogram] : snap.histograms) {
    const std::string prom = PromName(*name);
    out += "# TYPE " + prom + " histogram\n";
    // Cumulative le-buckets, non-empty buckets only: bucket edges are
    // strictly increasing by construction, which keeps the exposition
    // valid, and 512 mostly-zero lines per histogram would bury it.
    uint64_t cumulative = 0;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      const uint64_t n = histogram->BucketCount(i);
      if (n == 0) continue;
      cumulative += n;
      out += prom + "_bucket{le=\"" +
             PromNumber(Histogram::BucketUpperEdge(i)) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += prom + "_bucket{le=\"+Inf\"} " + std::to_string(cumulative) + "\n";
    out += prom + "_sum " + PromNumber(histogram->Sum()) + "\n";
    // _count mirrors the +Inf bucket (not count_) so the exposition is
    // internally consistent even when a concurrent Record() has bumped
    // count_ but not yet its bucket.
    out += prom + "_count " + std::to_string(cumulative) + "\n";
  }
  return out;
}

Status WriteMetrics(const std::string& path) {
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot write metrics file: " + tmp);
    out << ExportMetrics() << "\n";
    if (!out.good()) return Status::IoError("metrics write failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError("cannot rename metrics file into place: " + path);
  }
  return Status::OK();
}

}  // namespace fab::obs
