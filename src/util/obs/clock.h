#ifndef FAB_UTIL_OBS_CLOCK_H_
#define FAB_UTIL_OBS_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace fab::obs {

/// The single wall-clock boundary of the codebase.
///
/// All timing — spans, histograms, bench reporters, serving latency —
/// reads the monotonic clock through this wrapper, never through
/// std::chrono::*_clock::now() directly. fablint's `obs-raw-clock` rule
/// enforces the boundary: a raw ::now() call outside src/util/obs/ and
/// bench/ is a diagnostic. The point is auditability of the determinism
/// contract: wall-clock values only ever flow *into* observability sinks
/// (trace buffers, metric histograms, bench reports), never into any
/// computation that produces pipeline artifacts, and keeping every read
/// behind one chokepoint makes that provable by inspection.
class Clock {
 public:
  using time_point = std::chrono::steady_clock::time_point;
  using duration = std::chrono::steady_clock::duration;

  /// Monotonic now. Never use the value in anything deterministic.
  static time_point Now() { return std::chrono::steady_clock::now(); }

  /// Elapsed microseconds from `from` to `to` (signed, fractional).
  static double MicrosBetween(time_point from, time_point to) {
    return std::chrono::duration<double, std::micro>(to - from).count();
  }

  /// Elapsed nanoseconds from `from` to `to` as an integer tick count.
  static int64_t NanosBetween(time_point from, time_point to) {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(to - from)
        .count();
  }
};

}  // namespace fab::obs

#endif  // FAB_UTIL_OBS_CLOCK_H_
