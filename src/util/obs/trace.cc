#include "util/obs/trace.h"

#include <array>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <vector>

#include <unistd.h>

#include "util/obs/clock.h"
#include "util/obs/flight.h"
#include "util/obs/trace_context.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace fab::obs {

#if !defined(FAB_OBS_DISABLED)

namespace {

/// Renders a double as a JSON number (non-finite values are quoted —
/// bare NaN/Infinity would make the whole trace unparseable).
std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return v > 0 ? "\"inf\"" : (v < 0 ? "\"-inf\"" : "\"nan\"");
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonString(const std::string& s) {
  return "\"" + JsonEscape(s) + "\"";
}

/// One begin or end record. `args` holds pre-rendered `"key":value`
/// pairs (comma-separated, no surrounding braces) or is empty.
struct TraceEvent {
  std::string name;
  char phase = 'B';
  int64_t ts_ns = 0;  ///< relative to the tracer origin
  std::string args;
};

/// Fixed-size chunk of a per-thread event buffer. The owning thread
/// appends; the exporter reads concurrently without locks:
///   writer: events[used] = e; used.store(used + 1, release);
///   reader: n = used.load(acquire); read events[0, n)
/// The release/acquire pair on `used` publishes the event contents, and
/// full chunks are immutable, so no event is ever read while written.
constexpr size_t kChunkSize = 256;
struct EventChunk {
  std::array<TraceEvent, kChunkSize> events;
  std::atomic<size_t> used{0};
  std::atomic<EventChunk*> next{nullptr};
};

/// One thread's append-only event buffer: a singly-linked list of
/// chunks. Only the owning thread appends (lock-free); the exporter
/// walks the acquire-published chain.
class ThreadBuffer {
 public:
  explicit ThreadBuffer(int tid)
      // Chunks are deliberately never freed: they stay reachable from the
      // process-lifetime tracer below, so exiting threads can never race a
      // destructor and LeakSanitizer sees reachable (not leaked) memory.
      : tid_(tid), head_(new EventChunk()), tail_(head_) {  // fablint:allow(hygiene-new-delete)
  }

  int tid() const { return tid_; }

  void Append(TraceEvent event) {
    EventChunk* chunk = tail_;  // tail_ is touched only by the owner thread
    size_t used = chunk->used.load(std::memory_order_relaxed);
    if (used == kChunkSize) {
      auto* fresh = new EventChunk();  // fablint:allow(hygiene-new-delete)
      chunk->next.store(fresh, std::memory_order_release);
      tail_ = fresh;
      chunk = fresh;
      used = 0;
    }
    chunk->events[used] = std::move(event);
    chunk->used.store(used + 1, std::memory_order_release);
  }

  /// Exporter side: visits every event published so far, in append order.
  template <typename Fn>
  void ForEach(Fn fn) const {
    for (const EventChunk* chunk = head_; chunk != nullptr;
         chunk = chunk->next.load(std::memory_order_acquire)) {
      const size_t n = chunk->used.load(std::memory_order_acquire);
      for (size_t i = 0; i < n; ++i) fn(chunk->events[i]);
    }
  }

 private:
  const int tid_;
  EventChunk* const head_;
  EventChunk* tail_;
};

std::atomic<bool> g_trace_enabled{false};

void FlushTraceAtExit();

/// Process-wide tracer state. Intentionally heap-allocated and never
/// destroyed (see Get): per-thread buffers must outlive every thread,
/// including pool workers that drain during static destruction.
class Tracer {
 public:
  static Tracer& Get() {
    // Intentional leak (see class comment); still reachable through this
    // static, so LeakSanitizer stays silent.
    static Tracer* const tracer = new Tracer();  // fablint:allow(hygiene-new-delete)
    return *tracer;
  }

  ThreadBuffer* RegisterThread() FAB_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    buffers_.push_back(
        std::make_unique<ThreadBuffer>(static_cast<int>(buffers_.size())));
    return buffers_.back().get();
  }

  Clock::time_point origin() const { return origin_; }

  const std::string& exit_path() const { return exit_path_; }

  Status Write(const std::string& path) FAB_EXCLUDES(mu_) {
    std::vector<const ThreadBuffer*> buffers;
    {
      util::MutexLock lock(mu_);
      buffers.reserve(buffers_.size());
      for (const auto& buffer : buffers_) buffers.push_back(buffer.get());
    }
    // Atomic publish: write a sibling temp file, then rename over the
    // target. Concurrent exporters (parallel ctest under FAB_TRACE) each
    // produce a complete file; the last rename wins.
    const std::string tmp = path + ".tmp." + std::to_string(::getpid());
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      if (!out) return Status::IoError("cannot write trace file: " + tmp);
      out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
      bool first = true;
      for (const ThreadBuffer* buffer : buffers) {
        buffer->ForEach([&](const TraceEvent& event) {
          if (!first) out << ",";
          first = false;
          out << "\n{\"name\":" << JsonString(event.name) << ",\"ph\":\""
              << event.phase << "\",\"ts\":"
              << JsonNumber(static_cast<double>(event.ts_ns) / 1000.0)
              << ",\"pid\":1,\"tid\":" << buffer->tid() << ",\"cat\":\"fab\"";
          if (!event.args.empty()) out << ",\"args\":{" << event.args << "}";
          out << "}";
        });
      }
      out << "\n]}\n";
      if (!out.good()) return Status::IoError("trace write failed: " + tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      return Status::IoError("cannot rename trace file into place: " + path);
    }
    return Status::OK();
  }

 private:
  Tracer() : origin_(Clock::Now()) {
    const char* path = std::getenv("FAB_TRACE");
    if (path != nullptr && *path != '\0') {
      exit_path_ = path;
      g_trace_enabled.store(true, std::memory_order_relaxed);
      std::atexit(FlushTraceAtExit);
    }
  }

  const Clock::time_point origin_;
  std::string exit_path_;
  util::Mutex mu_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_ FAB_GUARDED_BY(mu_);
};

void FlushTraceAtExit() {
  Tracer& tracer = Tracer::Get();
  if (!tracer.exit_path().empty()) {
    const Status status = tracer.Write(tracer.exit_path());
    if (!status.ok()) {
      std::fprintf(stderr, "fab::obs: %s\n", status.ToString().c_str());
    }
  }
}

/// Runs the FAB_TRACE env bootstrap at static-init time. Without this,
/// the lazily-constructed Tracer would never be touched in a process
/// that only uses FAB_TRACE_SCOPE (spans check g_trace_enabled before
/// reaching the singleton), so env-driven tracing would silently no-op.
[[maybe_unused]] const bool g_env_bootstrap = [] {
  Tracer::Get();
  return true;
}();

thread_local ThreadBuffer* t_buffer = nullptr;

ThreadBuffer& LocalBuffer() {
  if (t_buffer == nullptr) t_buffer = Tracer::Get().RegisterThread();
  return *t_buffer;
}

int64_t NsAt(Clock::time_point tp) {
  return Clock::NanosBetween(Tracer::Get().origin(), tp);
}

/// Pre-rendered `"trace":"<hex16>"` arg pair, or empty when no request
/// context is installed.
std::string TraceIdArg(uint64_t trace_id) {
  if (trace_id == 0) return {};
  return "\"trace\":\"" + FormatTraceId(trace_id) + "\"";
}

}  // namespace

TraceValue::TraceValue(double v) : json_(JsonNumber(v)) {}
TraceValue::TraceValue(int v) : json_(std::to_string(v)) {}
TraceValue::TraceValue(long v) : json_(std::to_string(v)) {}
TraceValue::TraceValue(long long v) : json_(std::to_string(v)) {}
TraceValue::TraceValue(unsigned int v) : json_(std::to_string(v)) {}
TraceValue::TraceValue(unsigned long v) : json_(std::to_string(v)) {}
TraceValue::TraceValue(unsigned long long v) : json_(std::to_string(v)) {}
TraceValue::TraceValue(const char* s) : json_(JsonString(s)) {}
TraceValue::TraceValue(const std::string& s) : json_(JsonString(s)) {}

bool TraceEnabled() {
  return g_trace_enabled.load(std::memory_order_relaxed);
}

void StartTracing() {
  Tracer::Get();  // establish the time origin first
  g_trace_enabled.store(true, std::memory_order_relaxed);
}

void StopTracing() {
  g_trace_enabled.store(false, std::memory_order_relaxed);
}

Status WriteTrace(const std::string& path) { return Tracer::Get().Write(path); }

TraceSpan::TraceSpan(const char* name) : name_(name) {
  flight_ = FlightEnabled();
  const bool tracing = TraceEnabled();
  if (!flight_ && !tracing) return;
  trace_id_ = CurrentTraceId();
  start_ = Clock::Now();
  if (!tracing) return;
  active_ = true;
  LocalBuffer().Append(TraceEvent{name_, 'B', NsAt(start_), TraceIdArg(trace_id_)});
}

TraceSpan::TraceSpan(const char* name, std::initializer_list<TraceArg> args)
    : name_(name) {
  flight_ = FlightEnabled();
  const bool tracing = TraceEnabled();
  if (!flight_ && !tracing) return;
  trace_id_ = CurrentTraceId();
  start_ = Clock::Now();
  if (!tracing) return;
  active_ = true;
  std::string rendered = TraceIdArg(trace_id_);
  for (const TraceArg& arg : args) {
    if (!rendered.empty()) rendered += ",";
    rendered += JsonString(arg.key) + ":" + arg.value.json();
  }
  LocalBuffer().Append(TraceEvent{name_, 'B', NsAt(start_), std::move(rendered)});
}

TraceSpan::~TraceSpan() {
  if (!active_ && !flight_) return;
  const Clock::time_point end = Clock::Now();
  if (active_) {
    LocalBuffer().Append(TraceEvent{name_, 'E', NsAt(end), std::move(end_args_)});
  }
  if (flight_) FlightRecordSpan(name_, trace_id_, start_, end);
}

void TraceSpan::AddArg(const char* key, const TraceValue& value) {
  if (!active_) return;
  if (!end_args_.empty()) end_args_ += ",";
  end_args_ += JsonString(key) + ":" + value.json();
}

#else  // FAB_OBS_DISABLED

/// The disabled build still honours WriteTrace so the FAB_TRACE smoke
/// path (export + parse) works in every configuration: it produces an
/// empty, valid Chrome trace.
Status WriteTrace(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot write trace file: " + path);
  out << "{\"traceEvents\":[]}\n";
  return Status::OK();
}

#endif  // FAB_OBS_DISABLED

}  // namespace fab::obs
