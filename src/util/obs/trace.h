#ifndef FAB_UTIL_OBS_TRACE_H_
#define FAB_UTIL_OBS_TRACE_H_

#include <cstdint>
#include <initializer_list>
#include <string>

#include "util/obs/clock.h"
#include "util/status.h"

/// fab::obs scoped-span tracing.
///
/// Usage (see README.md "Observability" for the full recipe):
///
///   FAB_TRACE_SCOPE("fra/iteration", {{"iter", i}});   // span = this scope
///   ...
///   obs::TraceSpan span("ml/rf_fit", {{"trees", n}});  // explicit object
///   span.AddArg("failed", 0);                          // lands on the end event
///
/// Spans record a begin/end ("B"/"E") event pair on the monotonic clock
/// (obs::Clock) into per-thread lock-free buffers. When the FAB_TRACE
/// environment variable names a file, the process exports every buffered
/// event at exit as Chrome trace_event JSON — loadable in chrome://tracing
/// or https://ui.perfetto.dev. Collection costs nothing when FAB_TRACE is
/// unset (one relaxed atomic load per span), and the macros compile to a
/// true zero-cost no-op when the build disables observability
/// (-DFAB_OBS=OFF, which defines FAB_OBS_DISABLED).
///
/// Determinism contract: trace timestamps are observability sink data
/// only. Nothing in this header returns a clock value to the caller, so
/// instrumented code cannot accidentally feed wall-clock time into a
/// computation — goldens are bitwise identical with tracing off and on.
namespace fab::obs {

#if !defined(FAB_OBS_DISABLED)

/// One span argument value, pre-rendered to a JSON token. Implicit
/// constructors let call sites write {{"iter", i}, {"tag", "fra"}}.
class TraceValue {
 public:
  TraceValue(double v);              // NOLINT(google-explicit-constructor)
  TraceValue(int v);                 // NOLINT(google-explicit-constructor)
  TraceValue(long v);                // NOLINT(google-explicit-constructor)
  TraceValue(long long v);           // NOLINT(google-explicit-constructor)
  TraceValue(unsigned int v);        // NOLINT(google-explicit-constructor)
  TraceValue(unsigned long v);       // NOLINT(google-explicit-constructor)
  TraceValue(unsigned long long v);  // NOLINT(google-explicit-constructor)
  TraceValue(const char* s);         // NOLINT(google-explicit-constructor)
  TraceValue(const std::string& s);  // NOLINT(google-explicit-constructor)

  const std::string& json() const { return json_; }

 private:
  std::string json_;  ///< a complete JSON scalar, e.g. `3` or `"fra"`
};

struct TraceArg {
  const char* key;
  TraceValue value;
};

/// True when span collection is active (FAB_TRACE set, or StartTracing
/// called). One relaxed atomic load — safe on any hot path.
bool TraceEnabled();

/// Turns collection on without an export path (tests call this, then
/// WriteTrace explicitly). Idempotent.
void StartTracing();

/// Turns collection back off (tests and benches only — production
/// tracing stays on for the process lifetime). Already-buffered events
/// are kept and still export. Idempotent.
void StopTracing();

/// Merges every thread's buffered events and writes one Chrome
/// trace_event JSON file. Written atomically (temp file + rename), so a
/// reader never sees a partial trace even when concurrent processes
/// export to the same path. Callers must quiesce their own spans first;
/// idle pool workers are safe (buffers are only appended mid-span).
[[nodiscard]] Status WriteTrace(const std::string& path);

/// RAII span: records a "B" event at construction and the matching "E"
/// event at destruction, on the constructing thread's buffer. Construct
/// and destroy on the same thread (scoped locals always do).
///
/// Each span also captures the calling thread's trace context
/// (obs::CurrentTraceId) at construction — so spans under a request
/// carry the request's id in their "trace" arg — and, on destruction,
/// records itself into the always-on flight recorder ring (flight.h).
/// `name` must be a string literal (fablint's obs-span-literal rule):
/// the flight ring stores the pointer, not the bytes.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  TraceSpan(const char* name, std::initializer_list<TraceArg> args);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches an argument to the *end* event — for values only known
  /// when the work completes (e.g. FRA's features-removed count).
  void AddArg(const char* key, const TraceValue& value);

 private:
  const char* name_ = nullptr;
  bool active_ = false;  ///< tracer collection (FAB_TRACE) is recording
  bool flight_ = false;  ///< flight ring will record at destruction
  uint64_t trace_id_ = 0;
  Clock::time_point start_{};
  std::string end_args_;  ///< accumulated `"key":value` pairs for the E event
};

#else  // FAB_OBS_DISABLED: every entry point is an empty inline no-op.

class TraceValue {
 public:
  template <typename T>
  TraceValue(const T&) {}  // NOLINT(google-explicit-constructor)
};

struct TraceArg {
  TraceArg(const char*, const TraceValue&) {}
};

inline bool TraceEnabled() { return false; }
inline void StartTracing() {}
inline void StopTracing() {}
[[nodiscard]] Status WriteTrace(const std::string& path);  // writes an empty valid trace

class TraceSpan {
 public:
  explicit TraceSpan(const char*) {}
  TraceSpan(const char*, std::initializer_list<TraceArg>) {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  void AddArg(const char*, const TraceValue&) {}
};

#endif  // FAB_OBS_DISABLED

}  // namespace fab::obs

#define FAB_OBS_CONCAT_INNER_(a, b) a##b
#define FAB_OBS_CONCAT_(a, b) FAB_OBS_CONCAT_INNER_(a, b)

#if !defined(FAB_OBS_DISABLED)
/// Opens a span covering the rest of the enclosing scope:
///   FAB_TRACE_SCOPE("stage/name");
///   FAB_TRACE_SCOPE("stage/name", {{"arg", value}});
#define FAB_TRACE_SCOPE(...) \
  ::fab::obs::TraceSpan FAB_OBS_CONCAT_(fab_trace_span_, __LINE__)(__VA_ARGS__)
#else
/// Compiled out entirely: no object, no clock read, no code.
#define FAB_TRACE_SCOPE(...) \
  do {                       \
  } while (false)
#endif

#endif  // FAB_UTIL_OBS_TRACE_H_
