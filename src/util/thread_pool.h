#ifndef FAB_UTIL_THREAD_POOL_H_
#define FAB_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace fab::util {

/// Unified `num_threads` convention, shared by ml::ForestParams,
/// serve::BatchServerOptions, core::ExperimentConfig and the pool itself:
/// a positive request is honoured exactly; 0 and negative values mean
/// "hardware concurrency" (with a fallback of 4 when the runtime cannot
/// report it). Always returns >= 1.
int ResolveThreads(int requested);

/// Fixed-size worker pool ("work-stealing-lite"): one shared FIFO task
/// queue drained by `num_threads` workers, plus a caller-participates
/// `ParallelFor` whose chunk results land in caller-visible, index-owned
/// slots — so the *schedule* may vary with thread count while every
/// output stays bitwise identical.
///
/// Determinism contract: ParallelFor promises only that `fn(i)` runs
/// exactly once for every index. Callers make parallel code thread-count
/// invariant by (a) deriving any RNG stream from `(seed, i)`, never from
/// a shared sequential generator, and (b) writing results into slot `i`
/// and reducing sequentially in index order afterwards.
///
/// Nested-submit safety: a ParallelFor issued from inside a pool worker
/// (e.g. a forest fit running under a scenario fan-out) executes inline
/// on that worker instead of re-entering the queue, so nesting can never
/// deadlock and never changes results.
class ThreadPool {
 public:
  /// Spawns ResolveThreads(num_threads) workers.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `task`; the future carries its result or exception. Do not
  /// block on the future from inside a pool worker — use ParallelFor for
  /// nested parallelism instead.
  template <typename F>
  auto Submit(F&& task) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto packaged =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(task));
    std::future<R> future = packaged->get_future();
    Enqueue([packaged] { (*packaged)(); });
    return future;
  }

  /// Runs `fn(i)` exactly once for every i in [begin, end), splitting the
  /// range into at most `max_parallel` contiguous chunks (0 = one per
  /// worker) executed by the pool and the calling thread together. Blocks
  /// until every index completes. The first exception (in chunk order) is
  /// rethrown after all chunks finish. Runs inline when called from a
  /// pool worker, when the range is trivial, or when capped to one chunk.
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& fn,
                   int max_parallel = 0);

  /// True when the calling thread is one of this process's pool workers
  /// (any pool; used to detect nesting).
  static bool InWorker();

 private:
  void Enqueue(std::function<void()> task);
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// The process-wide pool every analysis stage (FRA fits, PFI, SHAP, CV
/// folds, scenario fan-out, forest training) shares. Sized on first use
/// from the FAB_THREADS environment knob via ResolveThreads; resize with
/// SetSharedPoolThreads.
ThreadPool& SharedPool();

/// Re-creates the shared pool with ResolveThreads(num_threads) workers.
/// Not safe while shared-pool work is in flight; intended for process
/// startup and tests sweeping thread counts.
void SetSharedPoolThreads(int num_threads);

/// Shared-pool convenience wrapper: ThreadPool::ParallelFor on
/// SharedPool(). `max_parallel` caps concurrency (0 = pool width, 1 =
/// serial inline).
void ParallelFor(size_t begin, size_t end,
                 const std::function<void(size_t)>& fn, int max_parallel = 0);

}  // namespace fab::util

#endif  // FAB_UTIL_THREAD_POOL_H_
