#ifndef FAB_UTIL_THREAD_POOL_H_
#define FAB_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace fab::util {

/// Unified `num_threads` convention, shared by ml::ForestParams,
/// serve::BatchServerOptions, core::ExperimentConfig and the pool itself:
/// a positive request is honoured exactly; 0 and negative values mean
/// "hardware concurrency" (with a fallback of 4 when the runtime cannot
/// report it). Always returns >= 1.
int ResolveThreads(int requested);

/// Fixed-size worker pool ("work-stealing-lite"): one shared FIFO task
/// queue drained by `num_threads` workers, plus a caller-participates
/// `ParallelFor` whose chunk results land in caller-visible, index-owned
/// slots — so the *schedule* may vary with thread count while every
/// output stays bitwise identical.
///
/// Determinism contract: ParallelFor promises only that `fn(i)` runs
/// exactly once for every index. Callers make parallel code thread-count
/// invariant by (a) deriving any RNG stream from `(seed, i)`, never from
/// a shared sequential generator, and (b) writing results into slot `i`
/// and reducing sequentially in index order afterwards.
///
/// Nested-submit safety: a ParallelFor issued from inside a pool worker
/// (e.g. a forest fit running under a scenario fan-out) executes inline
/// on that worker instead of re-entering the queue, so nesting can never
/// deadlock and never changes results.
///
/// Lock discipline is compiler-checked: queue_ and stopping_ carry
/// FAB_GUARDED_BY(mu_) and a Clang `-DFAB_THREAD_SAFETY=ON` build
/// rejects any access outside the lock.
class ThreadPool {
 public:
  /// Spawns ResolveThreads(num_threads) workers.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `task`; the future carries its result or exception. Do not
  /// block on the future from inside a pool worker — use ParallelFor for
  /// nested parallelism instead.
  template <typename F>
  auto Submit(F&& task) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto packaged =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(task));
    std::future<R> future = packaged->get_future();
    Enqueue([packaged] { (*packaged)(); });
    return future;
  }

  /// Runs `fn(i)` exactly once for every i in [begin, end), splitting the
  /// range into at most `max_parallel` contiguous chunks (0 = one per
  /// worker) executed by the pool and the calling thread together. Blocks
  /// until every index completes. The first exception (in chunk order) is
  /// rethrown after all chunks finish. Runs inline when called from a
  /// pool worker, when the range is trivial, or when capped to one chunk.
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& fn,
                   int max_parallel = 0) FAB_EXCLUDES(mu_);

  /// True when the calling thread is one of this process's pool workers
  /// (any pool; used to detect nesting).
  static bool InWorker();

 private:
  void Enqueue(std::function<void()> task) FAB_EXCLUDES(mu_);
  void WorkerLoop();

  Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ FAB_GUARDED_BY(mu_);
  bool stopping_ FAB_GUARDED_BY(mu_) = false;
  /// Written only by the constructor and joined/cleared only by the
  /// destructor; every other access is the const size() in num_threads().
  std::vector<std::thread> workers_;
};

/// The process-wide pool every analysis stage (FRA fits, PFI, SHAP, CV
/// folds, scenario fan-out, forest training) shares. Sized on first use
/// from the FAB_THREADS environment knob via ResolveThreads; resize with
/// SetSharedPoolThreads.
///
/// Returns a shared_ptr copied out under the singleton lock — never a
/// reference into guarded state — so a concurrent SetSharedPoolThreads
/// swap cannot destroy a pool a caller is still using (the old pool
/// drains and joins when its last holder lets go).
std::shared_ptr<ThreadPool> SharedPool();

/// Re-creates the shared pool with ResolveThreads(num_threads) workers.
/// Safe to call while shared-pool work is in flight: in-flight
/// ParallelFor/Submit callers hold their own reference and finish on the
/// pool they started with; only new SharedPool() calls see the new pool.
void SetSharedPoolThreads(int num_threads);

/// Shared-pool convenience wrapper: ThreadPool::ParallelFor on
/// SharedPool(). `max_parallel` caps concurrency (0 = pool width, 1 =
/// serial inline). When called from inside a pool worker the loop runs
/// inline without touching the singleton at all, so nested calls never
/// contend on (or pin) the shared pool.
void ParallelFor(size_t begin, size_t end,
                 const std::function<void(size_t)>& fn, int max_parallel = 0);

}  // namespace fab::util

#endif  // FAB_UTIL_THREAD_POOL_H_
