#ifndef FAB_UTIL_MUTEX_H_
#define FAB_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace fab::util {

/// Capability-annotated exclusive mutex.
///
/// A thin wrapper over std::mutex that exists for exactly one reason:
/// libstdc++'s std::mutex carries no capability attributes, so Clang's
/// `-Wthread-safety` analysis cannot track it. This wrapper is tagged
/// FAB_CAPABILITY, which makes FAB_GUARDED_BY(mu_) fields and
/// FAB_REQUIRES(mu_) functions statically checkable. Zero overhead: the
/// methods are inline forwards and the attributes vanish off Clang.
///
/// Prefer the scoped MutexLock below over manual Lock/Unlock pairs.
class FAB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() FAB_ACQUIRE() { raw_.lock(); }
  void Unlock() FAB_RELEASE() { raw_.unlock(); }
  bool TryLock() FAB_TRY_ACQUIRE(true) { return raw_.try_lock(); }

 private:
  friend class CondVar;  // waits need the underlying native mutex
  // The raw mutex IS the capability this wrapper annotates; nothing for
  // FAB_GUARDED_BY to name here. fablint:allow(safety-unannotated-mutex)
  std::mutex raw_;
};

/// RAII lock for Mutex, understood by the analysis as a scoped
/// capability: the capability is held from construction to the end of
/// the enclosing block. The fab equivalent of std::lock_guard.
class FAB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) FAB_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() FAB_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to util::Mutex.
///
/// Wait/WaitUntil demand the mutex via FAB_REQUIRES, so the compiler
/// proves every predicate around a wait loop reads only state guarded by
/// that same mutex — write waits as explicit loops over guarded fields:
///
///   MutexLock lock(mu_);
///   while (!stopping_ && queue_.empty()) cv_.Wait(mu_);
///
/// Internally the already-held native mutex is adopted into a
/// std::unique_lock for the duration of the wait and released back
/// (still locked) afterwards, so std::condition_variable's fast path is
/// used unchanged.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks until notified, reacquires.
  /// Spurious wakeups happen: always wait in a predicate loop.
  void Wait(Mutex& mu) FAB_REQUIRES(mu);

  /// Like Wait but returns at `deadline` at the latest. Returns false
  /// on timeout, true when (possibly spuriously) notified.
  bool WaitUntil(Mutex& mu, std::chrono::steady_clock::time_point deadline)
      FAB_REQUIRES(mu);

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace fab::util

#endif  // FAB_UTIL_MUTEX_H_
