#include "util/string_util.h"

#include <cctype>
#include <cstdio>

namespace fab {

std::vector<std::string> Split(const std::string& s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(delim, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& delim) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += delim;
    out += parts[i];
  }
  return out;
}

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

}  // namespace fab
