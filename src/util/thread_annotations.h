#ifndef FAB_UTIL_THREAD_ANNOTATIONS_H_
#define FAB_UTIL_THREAD_ANNOTATIONS_H_

/// Clang thread-safety capability annotations for the fab codebase.
///
/// These macros let the compiler *prove* lock discipline at build time:
/// a field tagged FAB_GUARDED_BY(mu_) can only be touched while `mu_` is
/// held, a function tagged FAB_REQUIRES(mu_) can only be called with it
/// held, and a violation is a hard error under
/// `-DFAB_THREAD_SAFETY=ON` (Clang, `-Wthread-safety
/// -Werror=thread-safety` — see the top-level CMakeLists.txt and the CI
/// `thread-safety` job). On non-Clang compilers every macro expands to
/// nothing, so the default GCC build is byte-for-byte unaffected.
///
/// The analysis only understands annotated capability types, and
/// libstdc++'s std::mutex carries no annotations — which is why locked
/// classes here use fab::util::Mutex / MutexLock / CondVar
/// (src/util/mutex.h) instead of std::mutex directly. fablint's
/// `safety-unannotated-mutex` rule enforces that every mutex member in
/// the annotated targets (src/util, src/serve) has at least one
/// FAB_GUARDED_BY sibling, so new locked classes cannot silently opt
/// out. See DESIGN.md §8 for the "how to annotate a new locked class"
/// recipe.
///
/// Macro reference (mirrors the Clang documentation's canonical set):
///
///   FAB_CAPABILITY(name)       class is a lockable capability ("mutex")
///   FAB_SCOPED_CAPABILITY      RAII class that acquires in its ctor and
///                              releases in its dtor
///   FAB_GUARDED_BY(mu)         field may only be read/written holding mu
///   FAB_PT_GUARDED_BY(mu)      pointee (not the pointer) guarded by mu
///   FAB_REQUIRES(mu...)        caller must hold mu (exclusively)
///   FAB_REQUIRES_SHARED(...)   caller must hold mu (at least shared)
///   FAB_ACQUIRE(mu...)         function acquires mu, caller must not hold
///   FAB_ACQUIRE_SHARED(...)    shared-mode acquire
///   FAB_RELEASE(mu...)         function releases mu, caller must hold
///   FAB_RELEASE_SHARED(...)    shared-mode release
///   FAB_TRY_ACQUIRE(b, mu...)  acquires mu iff the function returns b
///   FAB_EXCLUDES(mu...)        caller must NOT hold mu (deadlock guard)
///   FAB_ACQUIRED_BEFORE(...)   declared lock-order edge (this before mu)
///   FAB_ACQUIRED_AFTER(...)    declared lock-order edge (this after mu)
///   FAB_ASSERT_CAPABILITY(mu)  runtime assert that mu is held
///   FAB_RETURN_CAPABILITY(mu)  function returns a reference to mu
///   FAB_NO_THREAD_SAFETY_ANALYSIS  opt a function out (justify in-code)

#if defined(__clang__) && !defined(SWIG)
#define FAB_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define FAB_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

#define FAB_CAPABILITY(x) FAB_THREAD_ANNOTATION_(capability(x))

#define FAB_SCOPED_CAPABILITY FAB_THREAD_ANNOTATION_(scoped_lockable)

#define FAB_GUARDED_BY(x) FAB_THREAD_ANNOTATION_(guarded_by(x))

#define FAB_PT_GUARDED_BY(x) FAB_THREAD_ANNOTATION_(pt_guarded_by(x))

#define FAB_ACQUIRED_BEFORE(...) \
  FAB_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))

#define FAB_ACQUIRED_AFTER(...) \
  FAB_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

#define FAB_REQUIRES(...) \
  FAB_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

#define FAB_REQUIRES_SHARED(...) \
  FAB_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

#define FAB_ACQUIRE(...) \
  FAB_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

#define FAB_ACQUIRE_SHARED(...) \
  FAB_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

#define FAB_RELEASE(...) \
  FAB_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

#define FAB_RELEASE_SHARED(...) \
  FAB_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

#define FAB_TRY_ACQUIRE(...) \
  FAB_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

#define FAB_EXCLUDES(...) FAB_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

#define FAB_ASSERT_CAPABILITY(x) \
  FAB_THREAD_ANNOTATION_(assert_capability(x))

#define FAB_RETURN_CAPABILITY(x) FAB_THREAD_ANNOTATION_(lock_returned(x))

#define FAB_NO_THREAD_SAFETY_ANALYSIS \
  FAB_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // FAB_UTIL_THREAD_ANNOTATIONS_H_
