#ifndef FAB_UTIL_STATUS_H_
#define FAB_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace fab {

/// Machine-readable error classification carried by `Status`.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIoError,
  kUnavailable,
};

/// Returns a human-readable name for `code` ("OK", "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// Lightweight success/error value used across all fallible fab APIs.
///
/// The library does not throw exceptions across API boundaries; operations
/// that can fail return `Status` (or `Result<T>` when they also produce a
/// value). A default-constructed `Status` is OK.
///
/// The class itself is [[nodiscard]]: any expression that produces a
/// Status by value and drops it is a compile-time warning (-Wall), on top
/// of fablint's status-unchecked / status-nodiscard rules. Deliberate
/// discards spell it out with `(void)` and a comment.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with `code` and a human-readable `message`.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory helpers, one per error class.
  static Status OK() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  [[nodiscard]] static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  [[nodiscard]] static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  [[nodiscard]] static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  [[nodiscard]] static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  /// True when the status carries no error.
  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error union, analogous to absl::StatusOr.
///
/// Either holds a `T` (when `ok()`) or a non-OK `Status`. Accessing
/// `value()` on an error result aborts in debug builds and is undefined
/// otherwise, so callers must check `ok()` first. Like Status, the class
/// is [[nodiscard]]: dropping a Result drops an unexamined error.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from a value: allows `return some_t;`.
  Result(T value) : data_(std::move(value)) {}
  /// Implicit from an error status: allows `return Status::NotFound(...)`.
  Result(Status status) : data_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(data_); }

  /// The error status; OK when the result holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(data_);
  }

  /// Borrow the contained value. Requires `ok()`.
  const T& value() const& { return std::get<T>(data_); }
  T& value() & { return std::get<T>(data_); }
  /// Move the contained value out. Requires `ok()`.
  T&& value() && { return std::get<T>(std::move(data_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

}  // namespace fab

/// Propagates a non-OK status from an expression to the caller.
#define FAB_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::fab::Status _fab_status = (expr);          \
    if (!_fab_status.ok()) return _fab_status;   \
  } while (false)

/// Evaluates a Result expression, assigning the value on success and
/// returning the error status otherwise.
#define FAB_ASSIGN_OR_RETURN(lhs, expr)              \
  auto FAB_CONCAT_(_fab_result_, __LINE__) = (expr); \
  if (!FAB_CONCAT_(_fab_result_, __LINE__).ok())     \
    return FAB_CONCAT_(_fab_result_, __LINE__).status(); \
  lhs = std::move(FAB_CONCAT_(_fab_result_, __LINE__)).value()

#define FAB_CONCAT_INNER_(a, b) a##b
#define FAB_CONCAT_(a, b) FAB_CONCAT_INNER_(a, b)

#endif  // FAB_UTIL_STATUS_H_
