#ifndef FAB_UTIL_STRING_UTIL_H_
#define FAB_UTIL_STRING_UTIL_H_

#include <string>
#include <vector>

namespace fab {

/// Splits `s` on `delim`; adjacent delimiters produce empty fields, so the
/// output always has (number of delimiters + 1) entries.
std::vector<std::string> Split(const std::string& s, char delim);

/// Joins `parts` with `delim` between consecutive elements.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& delim);

/// Copy of `s` with leading/trailing ASCII whitespace removed.
std::string Trim(const std::string& s);

/// ASCII lower-cased copy.
std::string ToLower(const std::string& s);

/// True when `s` begins with `prefix` / ends with `suffix`.
bool StartsWith(const std::string& s, const std::string& prefix);
bool EndsWith(const std::string& s, const std::string& suffix);

/// Formats a double with `precision` decimal places ("%.*f").
std::string FormatDouble(double value, int precision);

}  // namespace fab

#endif  // FAB_UTIL_STRING_UTIL_H_
