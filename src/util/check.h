#ifndef FAB_UTIL_CHECK_H_
#define FAB_UTIL_CHECK_H_

/// Runtime invariant checks for conditions that indicate programmer error
/// (as opposed to recoverable input errors, which return `Status`).
///
///   FAB_CHECK(cond)      — always on; aborts with file:line and the failed
///                          expression. Supports message streaming:
///                            FAB_CHECK(a == b) << "a=" << a << " b=" << b;
///   FAB_DCHECK(cond)     — same contract, but compiled out (condition not
///                          evaluated) when NDEBUG is defined, so it is free
///                          in Release builds. Use on hot paths.
///   FAB_CHECK_OK(expr)   — for `Status` / `Result<T>` expressions whose
///                          failure means a broken internal invariant, not a
///                          caller error; aborts with the status message.
///
/// All three abort via std::abort() so the failure is observable under
/// sanitizers, in ctest output, and in core dumps alike. Never use these for
/// validating external input (snapshot bytes, CSV rows, user parameters) —
/// that is what `Status` / `Result<T>` are for.

#include <cstdlib>
#include <iostream>
#include <sstream>

#include "util/status.h"

namespace fab::internal {

/// Accumulates the failure message and aborts in its destructor, i.e. at the
/// end of the full expression, after every user-streamed operand has been
/// appended.
class CheckFailStream {
 public:
  CheckFailStream(const char* file, int line, const char* expr) {
    stream_ << "FAB_CHECK failed at " << file << ":" << line << ": " << expr
            << " ";
  }
  CheckFailStream(const CheckFailStream&) = delete;
  CheckFailStream& operator=(const CheckFailStream&) = delete;
  ~CheckFailStream() {
    stream_ << "\n";
    std::cerr << stream_.str() << std::flush;
    std::abort();
  }

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

/// Turns the streamed expression into `void` so both branches of the
/// FAB_CHECK ternary have the same type. `&` binds looser than `<<`, so the
/// whole message chain is swallowed.
struct CheckVoidify {
  void operator&(std::ostream&) {}
};

/// Normalizes Status / Result<T> for FAB_CHECK_OK.
inline const Status& ToStatus(const Status& s) { return s; }
template <typename T>
[[nodiscard]] Status ToStatus(const Result<T>& r) {
  return r.status();
}

}  // namespace fab::internal

#define FAB_CHECK(cond)                               \
  (static_cast<bool>(cond))                           \
      ? (void)0                                       \
      : ::fab::internal::CheckVoidify() &             \
            ::fab::internal::CheckFailStream(__FILE__, __LINE__, #cond) \
                .stream()

#ifdef NDEBUG
// Compiled out: the condition is parsed (so it cannot bitrot) but never
// evaluated, and the streamed operands are dead code.
#define FAB_DCHECK(cond) \
  while (false) FAB_CHECK(cond)
#else
#define FAB_DCHECK(cond) FAB_CHECK(cond)
#endif

// A `for` (rather than `if`/`else`) keeps the macro immune to dangling-else
// ambiguity in unbraced callers; the body runs at most once because the
// fail-stream destructor aborts at the end of the statement.
//
// `expr` is evaluated exactly once, in the for-init-statement — never in
// the loop condition, which only reads the materialized status. Callers
// may therefore pass side-effecting expressions (`FAB_CHECK_OK(Pop())`)
// safely; check_test.cc pins this with a call counter.
#define FAB_CHECK_OK(expr)                                              \
  for (const ::fab::Status _fab_check_ok_status =                       \
           ::fab::internal::ToStatus((expr));                           \
       !_fab_check_ok_status.ok();)                                     \
  ::fab::internal::CheckVoidify() &                                     \
      ::fab::internal::CheckFailStream(__FILE__, __LINE__, #expr)       \
              .stream()                                                 \
          << "status = " << _fab_check_ok_status.ToString() << " "

#endif  // FAB_UTIL_CHECK_H_
