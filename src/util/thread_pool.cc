#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>

#include "util/obs/clock.h"
#include "util/obs/metrics.h"
#include "util/obs/trace.h"
#include "util/obs/trace_context.h"

namespace fab::util {

namespace {

/// Set for the lifetime of every pool worker thread (any pool), so nested
/// ParallelFor calls can detect they are already on a worker.
thread_local bool t_in_pool_worker = false;

#if !defined(FAB_OBS_DISABLED)
// Pool telemetry (shared across pool instances — the interesting signal
// is process-wide pressure on the shared pool). Fetched once; Record /
// Add are lock-free. Compiled out entirely under FAB_OBS=OFF so the
// worker loop carries no clock reads or atomics.
obs::Gauge& QueueDepthGauge() {
  static obs::Gauge& gauge = obs::GetGauge("threadpool/queue_depth");
  return gauge;
}
obs::Histogram& TaskLatencyHistogram() {
  static obs::Histogram& histogram =
      obs::GetHistogram("threadpool/task_us");
  return histogram;
}
obs::Counter& TasksEnqueuedCounter() {
  static obs::Counter& counter = obs::GetCounter("threadpool/tasks_enqueued");
  return counter;
}
#endif

int EnvThreads() {
  const char* v = std::getenv("FAB_THREADS");
  if (v == nullptr || *v == '\0') return 0;
  return static_cast<int>(std::strtol(v, nullptr, 10));
}

}  // namespace

int ResolveThreads(int requested) {
  if (requested > 0) return requested;
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  return hw > 0 ? hw : 4;
}

ThreadPool::ThreadPool(int num_threads) {
  const int n = ResolveThreads(num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] {
      t_in_pool_worker = true;
      WorkerLoop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

bool ThreadPool::InWorker() { return t_in_pool_worker; }

void ThreadPool::Enqueue(std::function<void()> task) {
  // Trace-context propagation: a task submitted while a request context
  // is installed (HttpServer dispatch, nested Submit chains) carries the
  // request's trace id onto whichever worker runs it, so its spans and
  // histogram exemplars stitch to the request. Free when untraced.
  const uint64_t trace_id = obs::CurrentTraceId();
  if (trace_id != 0) {
    task = [trace_id, inner = std::move(task)] {
      obs::ScopedTraceId scope(trace_id);
      inner();
    };
  }
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
  }
#if !defined(FAB_OBS_DISABLED)
  QueueDepthGauge().Add(1);
  TasksEnqueuedCounter().Increment();
#endif
  cv_.NotifyOne();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stopping_ && queue_.empty()) cv_.Wait(mu_);
      if (queue_.empty()) return;  // stopping and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
#if !defined(FAB_OBS_DISABLED)
    QueueDepthGauge().Add(-1);
    const obs::Clock::time_point start = obs::Clock::Now();
    {
      FAB_TRACE_SCOPE("threadpool/task");
      task();  // packaged_task-style wrappers capture their own exceptions
    }
    TaskLatencyHistogram().Record(
        obs::Clock::MicrosBetween(start, obs::Clock::Now()));
#else
    task();  // packaged_task-style wrappers capture their own exceptions
#endif
  }
}

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t)>& fn,
                             int max_parallel) {
  if (begin >= end) return;
  const size_t len = end - begin;
  size_t chunks = static_cast<size_t>(
      max_parallel > 0 ? std::min(max_parallel, num_threads())
                       : num_threads());
  chunks = std::min(chunks, len);
  // Inline fast path: trivial range, serial cap, or already on a worker
  // (nested parallelism) — same fn(i) calls, so identical results.
  if (chunks <= 1 || InWorker()) {
    for (size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  // Contiguous even split; chunk c covers [begin + c*len/chunks,
  // begin + (c+1)*len/chunks). The caller runs chunk 0 itself while the
  // pool runs the rest.
  auto run_chunk = [&](size_t c) {
    const size_t lo = begin + c * len / chunks;
    const size_t hi = begin + (c + 1) * len / chunks;
    for (size_t i = lo; i < hi; ++i) fn(i);
  };
  std::vector<std::future<void>> futures;
  futures.reserve(chunks - 1);
  for (size_t c = 1; c < chunks; ++c) {
    futures.push_back(Submit([run_chunk, c] { run_chunk(c); }));
  }
  std::exception_ptr first_error;
  try {
    run_chunk(0);
    // Not swallowed: the exception is stored and rethrown below, after every
    // chunk has been joined (rethrowing early would let tasks outlive `fn`).
  } catch (...) {  // fablint:allow(safety-catch-all)
    first_error = std::current_exception();
  }
  // Wait for every chunk before rethrowing so no task outlives `fn`.
  for (auto& future : futures) {
    try {
      future.get();
      // Not swallowed: first exception wins and is rethrown below; later
      // ones are dropped deliberately to mirror serial first-failure order.
    } catch (...) {  // fablint:allow(safety-catch-all)
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

namespace {

Mutex g_shared_pool_mu;
std::shared_ptr<ThreadPool> g_shared_pool FAB_GUARDED_BY(g_shared_pool_mu);

}  // namespace

std::shared_ptr<ThreadPool> SharedPool() {
  MutexLock lock(g_shared_pool_mu);
  if (g_shared_pool == nullptr) {
    g_shared_pool = std::make_shared<ThreadPool>(EnvThreads());
  }
  return g_shared_pool;  // a copy taken under the lock, not a reference
}

void SetSharedPoolThreads(int num_threads) {
  const int n = ResolveThreads(num_threads);
  std::shared_ptr<ThreadPool> retired;
  {
    MutexLock lock(g_shared_pool_mu);
    if (g_shared_pool != nullptr && g_shared_pool->num_threads() == n) return;
    // Swap under the lock, destroy outside it: if this is the last
    // reference, ~ThreadPool joins the old workers, and a join must not
    // happen while holding the singleton lock (a draining task calling
    // util::ParallelFor would need it and deadlock).
    retired = std::move(g_shared_pool);
    g_shared_pool = std::make_shared<ThreadPool>(n);
  }
}

void ParallelFor(size_t begin, size_t end,
                 const std::function<void(size_t)>& fn, int max_parallel) {
  // Nested calls from pool workers run inline (exactly what
  // ThreadPool::ParallelFor would do) without taking the singleton lock
  // or a pool reference — so a worker can never end up holding the last
  // reference to its own pool and joining itself.
  if (ThreadPool::InWorker()) {
    for (size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  SharedPool()->ParallelFor(begin, end, fn, max_parallel);
}

}  // namespace fab::util
