#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace fab::stats {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
}  // namespace

double Mean(const std::vector<double>& v) {
  if (v.empty()) return kNaN;
  double sum = 0.0;
  for (double x : v) sum += x;
  return sum / static_cast<double>(v.size());
}

double Variance(const std::vector<double>& v) {
  if (v.size() < 2) return kNaN;
  const double m = Mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return acc / static_cast<double>(v.size() - 1);
}

double PopulationVariance(const std::vector<double>& v) {
  if (v.empty()) return kNaN;
  const double m = Mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return acc / static_cast<double>(v.size());
}

double StdDev(const std::vector<double>& v) { return std::sqrt(Variance(v)); }

double Covariance(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) return kNaN;
  const double mx = Mean(x);
  const double my = Mean(y);
  double acc = 0.0;
  for (size_t i = 0; i < x.size(); ++i) acc += (x[i] - mx) * (y[i] - my);
  return acc / static_cast<double>(x.size() - 1);
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) return kNaN;
  const double mx = Mean(x);
  const double my = Mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double SpearmanCorrelation(const std::vector<double>& x,
                           const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) return kNaN;
  return PearsonCorrelation(MidRanks(x), MidRanks(y));
}

double Quantile(std::vector<double> v, double q) {
  if (v.empty()) return kNaN;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double Median(std::vector<double> v) { return Quantile(std::move(v), 0.5); }

double Min(const std::vector<double>& v) {
  if (v.empty()) return kNaN;
  return *std::min_element(v.begin(), v.end());
}

double Max(const std::vector<double>& v) {
  if (v.empty()) return kNaN;
  return *std::max_element(v.begin(), v.end());
}

std::vector<double> MidRanks(const std::vector<double>& v) {
  const size_t n = v.size();
  std::vector<int> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  std::stable_sort(idx.begin(), idx.end(),
                   [&](int a, int b) { return v[static_cast<size_t>(a)] < v[static_cast<size_t>(b)]; });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n &&
           v[static_cast<size_t>(idx[j + 1])] == v[static_cast<size_t>(idx[i])]) {
      ++j;
    }
    // Average rank across the tie group [i, j] (1-based ranks).
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[static_cast<size_t>(idx[k])] = avg;
    i = j + 1;
  }
  return ranks;
}

std::vector<double> ZScores(const std::vector<double>& v) {
  std::vector<double> out(v.size(), 0.0);
  const double m = Mean(v);
  const double s = StdDev(v);
  if (!(s > 0.0)) return out;
  for (size_t i = 0; i < v.size(); ++i) out[i] = (v[i] - m) / s;
  return out;
}

std::vector<int> ArgSortDescending(const std::vector<double>& v) {
  std::vector<int> idx(v.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::stable_sort(idx.begin(), idx.end(), [&](int a, int b) {
    return v[static_cast<size_t>(a)] > v[static_cast<size_t>(b)];
  });
  return idx;
}

std::vector<int> ArgSortAscending(const std::vector<double>& v) {
  std::vector<int> idx(v.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::stable_sort(idx.begin(), idx.end(), [&](int a, int b) {
    return v[static_cast<size_t>(a)] < v[static_cast<size_t>(b)];
  });
  return idx;
}

}  // namespace fab::stats
