#include "util/mutex.h"

namespace fab::util {

// Both waits use the adopt/release trick: the caller already holds
// mu.raw_ (enforced by FAB_REQUIRES), so it is adopted into a
// std::unique_lock without relocking, handed to the condition variable,
// and released from the unique_lock afterwards so the caller keeps
// ownership. The capability state therefore matches the annotation:
// held on entry, held on exit.

void CondVar::Wait(Mutex& mu) {
  std::unique_lock<std::mutex> native(mu.raw_, std::adopt_lock);
  cv_.wait(native);
  native.release();
}

bool CondVar::WaitUntil(Mutex& mu,
                        std::chrono::steady_clock::time_point deadline) {
  std::unique_lock<std::mutex> native(mu.raw_, std::adopt_lock);
  const std::cv_status status = cv_.wait_until(native, deadline);
  native.release();
  return status == std::cv_status::no_timeout;
}

}  // namespace fab::util
