#ifndef FAB_UTIL_STATS_H_
#define FAB_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace fab::stats {

/// Arithmetic mean. Returns NaN for an empty span.
double Mean(const std::vector<double>& v);

/// Unbiased sample variance (n-1 denominator). Returns NaN for n < 2.
double Variance(const std::vector<double>& v);

/// Population variance (n denominator). Returns NaN for an empty span.
double PopulationVariance(const std::vector<double>& v);

/// Sample standard deviation. Returns NaN for n < 2.
double StdDev(const std::vector<double>& v);

/// Sample covariance of equally sized vectors. Returns NaN for n < 2 or
/// mismatched lengths.
double Covariance(const std::vector<double>& x, const std::vector<double>& y);

/// Pearson correlation coefficient in [-1, 1]. Returns 0 when either input
/// is (numerically) constant, NaN on length mismatch or n < 2.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

/// Spearman rank correlation (Pearson over midranks).
double SpearmanCorrelation(const std::vector<double>& x,
                           const std::vector<double>& y);

/// Linear-interpolated quantile, q in [0, 1]. Returns NaN for empty input.
double Quantile(std::vector<double> v, double q);

/// Median (Quantile at 0.5).
double Median(std::vector<double> v);

/// Smallest / largest element. NaN for empty input.
double Min(const std::vector<double>& v);
double Max(const std::vector<double>& v);

/// Midranks of `v`: ties receive the average of the ranks they span,
/// ranks start at 1.
std::vector<double> MidRanks(const std::vector<double>& v);

/// z-scores of `v` ((x - mean) / sample stddev); all zeros when the input
/// is constant.
std::vector<double> ZScores(const std::vector<double>& v);

/// Indices that would sort `v` descending (stable).
std::vector<int> ArgSortDescending(const std::vector<double>& v);

/// Indices that would sort `v` ascending (stable).
std::vector<int> ArgSortAscending(const std::vector<double>& v);

}  // namespace fab::stats

#endif  // FAB_UTIL_STATS_H_
