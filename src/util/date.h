#ifndef FAB_UTIL_DATE_H_
#define FAB_UTIL_DATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace fab {

/// A calendar date in the proleptic Gregorian calendar.
///
/// Dates convert losslessly to/from a day ordinal (days since 1970-01-01),
/// which is what `table::Table` uses as its row index. All simulated series
/// are daily, matching the paper's data granularity.
class Date {
 public:
  /// 1970-01-01.
  Date() : ordinal_(0) {}

  /// From a civil year/month/day. Out-of-range months/days are normalized
  /// by the ordinal conversion (e.g. Feb 30 -> Mar 1/2); use `IsValidCivil`
  /// to validate raw input first.
  Date(int year, int month, int day);

  /// From days since the Unix epoch (may be negative).
  static Date FromOrdinal(int64_t ordinal);

  /// Parses "YYYY-MM-DD".
  [[nodiscard]] static Result<Date> FromString(const std::string& iso);

  /// True when (year, month, day) names a real calendar date.
  static bool IsValidCivil(int year, int month, int day);

  int64_t ordinal() const { return ordinal_; }
  int year() const;
  int month() const;
  int day() const;

  /// ISO 8601 day of week, 1 = Monday ... 7 = Sunday.
  int day_of_week() const;

  /// "YYYY-MM-DD".
  std::string ToString() const;

  Date AddDays(int64_t days) const { return FromOrdinal(ordinal_ + days); }

  bool operator==(const Date& o) const { return ordinal_ == o.ordinal_; }
  bool operator!=(const Date& o) const { return ordinal_ != o.ordinal_; }
  bool operator<(const Date& o) const { return ordinal_ < o.ordinal_; }
  bool operator<=(const Date& o) const { return ordinal_ <= o.ordinal_; }
  bool operator>(const Date& o) const { return ordinal_ > o.ordinal_; }
  bool operator>=(const Date& o) const { return ordinal_ >= o.ordinal_; }

  /// Days from `o` to `*this` (positive when `*this` is later).
  int64_t operator-(const Date& o) const { return ordinal_ - o.ordinal_; }

 private:
  explicit Date(int64_t ordinal) : ordinal_(ordinal) {}

  int64_t ordinal_;  // Days since 1970-01-01.
};

/// Every date in [start, end] inclusive, one per day.
std::vector<Date> DailyRange(Date start, Date end);

}  // namespace fab

#endif  // FAB_UTIL_DATE_H_
