#include "serve/snapshot.h"

#include <bit>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "ml/forest.h"
#include "ml/gbdt.h"
#include "ml/mlp.h"
#include "ml/tree.h"
#include "util/check.h"

namespace fab::serve {

namespace {

constexpr char kMagic[8] = {'F', 'A', 'B', 'S', 'N', 'A', 'P', '\0'};

/// Append-only little-endian encoder.
class Writer {
 public:
  explicit Writer(std::string* out) : out_(out) {}

  void Bytes(const void* data, size_t n) {
    out_->append(static_cast<const char*>(data), n);
  }
  void U32(uint32_t v) {
    char b[4];
    for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
    Bytes(b, 4);
  }
  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }
  void U64(uint64_t v) {
    char b[8];
    for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
    Bytes(b, 8);
  }
  void F64(double v) { U64(std::bit_cast<uint64_t>(v)); }
  void F64Vec(const std::vector<double>& v) {
    U64(v.size());
    for (double d : v) F64(d);
  }

 private:
  std::string* out_;
};

/// Bounds-checked little-endian decoder over an in-memory buffer.
class Reader {
 public:
  explicit Reader(const std::string& bytes) : bytes_(bytes) {}

  Status Bytes(void* out, size_t n) {
    // Cursor-past-end would be a Reader bug, not corrupt input; the
    // truncation case below handles hostile lengths via Status.
    FAB_DCHECK(pos_ <= bytes_.size())
        << "reader cursor " << pos_ << " past buffer " << bytes_.size();
    if (n > bytes_.size() - pos_) {
      return Status::InvalidArgument("corrupt snapshot: truncated");
    }
    std::memcpy(out, bytes_.data() + pos_, n);
    pos_ += n;
    return Status::OK();
  }
  Status U32(uint32_t* out) {
    unsigned char b[4];
    FAB_RETURN_IF_ERROR(Bytes(b, 4));
    *out = 0;
    for (int i = 0; i < 4; ++i) *out |= static_cast<uint32_t>(b[i]) << (8 * i);
    return Status::OK();
  }
  Status I32(int32_t* out) {
    uint32_t u;
    FAB_RETURN_IF_ERROR(U32(&u));
    *out = static_cast<int32_t>(u);
    return Status::OK();
  }
  Status U64(uint64_t* out) {
    unsigned char b[8];
    FAB_RETURN_IF_ERROR(Bytes(b, 8));
    *out = 0;
    for (int i = 0; i < 8; ++i) *out |= static_cast<uint64_t>(b[i]) << (8 * i);
    return Status::OK();
  }
  Status F64(double* out) {
    uint64_t u;
    FAB_RETURN_IF_ERROR(U64(&u));
    *out = std::bit_cast<double>(u);
    return Status::OK();
  }
  /// Length-prefixed double vector; the length is checked against the
  /// remaining buffer so corrupt lengths can't force huge allocations.
  Status F64Vec(std::vector<double>* out) {
    uint64_t n;
    FAB_RETURN_IF_ERROR(U64(&n));
    if (n > Remaining() / 8) {
      return Status::InvalidArgument("corrupt snapshot: bad vector length");
    }
    out->resize(n);
    for (double& d : *out) FAB_RETURN_IF_ERROR(F64(&d));
    return Status::OK();
  }
  size_t Remaining() const { return bytes_.size() - pos_; }

 private:
  const std::string& bytes_;
  size_t pos_ = 0;
};

// --- Tree payload. ----------------------------------------------------------

void EncodeTree(const ml::RegressionTree& tree, Writer* w) {
  const std::vector<ml::TreeNode>& nodes = tree.nodes();
  w->U64(nodes.size());
  for (const ml::TreeNode& node : nodes) {
    w->I32(node.feature);
    w->F64(node.threshold);
    w->I32(node.left);
    w->I32(node.right);
    w->F64(node.value);
    w->F64(node.cover);
  }
  w->F64Vec(tree.gain_importance());
}

Status DecodeTree(Reader* r, size_t num_features, ml::RegressionTree* out) {
  uint64_t count;
  FAB_RETURN_IF_ERROR(r->U64(&count));
  // Every node costs at least 36 encoded bytes; reject counts the
  // remaining buffer cannot possibly hold.
  if (count > r->Remaining() / 36) {
    return Status::InvalidArgument("corrupt snapshot: bad node count");
  }
  std::vector<ml::TreeNode> nodes(count);
  for (ml::TreeNode& node : nodes) {
    FAB_RETURN_IF_ERROR(r->I32(&node.feature));
    FAB_RETURN_IF_ERROR(r->F64(&node.threshold));
    FAB_RETURN_IF_ERROR(r->I32(&node.left));
    FAB_RETURN_IF_ERROR(r->I32(&node.right));
    FAB_RETURN_IF_ERROR(r->F64(&node.value));
    FAB_RETURN_IF_ERROR(r->F64(&node.cover));
    if (node.feature >= static_cast<int>(num_features)) {
      return Status::InvalidArgument("corrupt snapshot: feature out of range");
    }
    if (node.feature >= 0 &&
        (node.left < 0 || node.right < 0 ||
         node.left >= static_cast<int>(count) ||
         node.right >= static_cast<int>(count))) {
      return Status::InvalidArgument("corrupt snapshot: child out of range");
    }
  }
  std::vector<double> gain;
  FAB_RETURN_IF_ERROR(r->F64Vec(&gain));
  *out = ml::RegressionTree::FromParts(std::move(nodes), std::move(gain));
  return Status::OK();
}

// --- Random forest. ---------------------------------------------------------

void EncodeForest(const ml::RandomForestRegressor& rf, Writer* w) {
  const ml::ForestParams& p = rf.params();
  w->I32(p.n_trees);
  w->I32(p.max_depth);
  w->F64(p.min_samples_leaf);
  w->F64(p.min_samples_split);
  w->F64(p.max_features);
  w->F64(p.bootstrap_fraction);
  w->U64(p.seed);
  w->I32(p.num_threads);
  w->U64(rf.num_features());
  w->U64(rf.trees().size());
  for (const ml::RegressionTree& tree : rf.trees()) EncodeTree(tree, w);
}

Result<std::unique_ptr<ml::Regressor>> DecodeForest(Reader* r) {
  ml::ForestParams p;
  FAB_RETURN_IF_ERROR(r->I32(&p.n_trees));
  FAB_RETURN_IF_ERROR(r->I32(&p.max_depth));
  FAB_RETURN_IF_ERROR(r->F64(&p.min_samples_leaf));
  FAB_RETURN_IF_ERROR(r->F64(&p.min_samples_split));
  FAB_RETURN_IF_ERROR(r->F64(&p.max_features));
  FAB_RETURN_IF_ERROR(r->F64(&p.bootstrap_fraction));
  FAB_RETURN_IF_ERROR(r->U64(&p.seed));
  FAB_RETURN_IF_ERROR(r->I32(&p.num_threads));
  uint64_t num_features, tree_count;
  FAB_RETURN_IF_ERROR(r->U64(&num_features));
  FAB_RETURN_IF_ERROR(r->U64(&tree_count));
  if (tree_count > r->Remaining() / 8) {
    return Status::InvalidArgument("corrupt snapshot: bad tree count");
  }
  std::vector<ml::RegressionTree> trees(tree_count);
  for (ml::RegressionTree& tree : trees) {
    FAB_RETURN_IF_ERROR(DecodeTree(r, num_features, &tree));
  }
  return std::unique_ptr<ml::Regressor>(
      std::make_unique<ml::RandomForestRegressor>(
          ml::RandomForestRegressor::FromFitted(p, std::move(trees),
                                                num_features)));
}

// --- GBDT. ------------------------------------------------------------------

void EncodeGbdt(const ml::GbdtRegressor& gbdt, Writer* w) {
  const ml::GbdtParams& p = gbdt.params();
  w->I32(p.n_rounds);
  w->F64(p.learning_rate);
  w->I32(p.max_depth);
  w->F64(p.lambda);
  w->F64(p.gamma);
  w->F64(p.min_child_weight);
  w->F64(p.subsample);
  w->F64(p.colsample);
  w->U64(p.seed);
  w->F64(gbdt.base_score());
  w->U64(gbdt.num_features());
  w->U64(gbdt.trees().size());
  for (const ml::RegressionTree& tree : gbdt.trees()) EncodeTree(tree, w);
}

Result<std::unique_ptr<ml::Regressor>> DecodeGbdt(Reader* r) {
  ml::GbdtParams p;
  FAB_RETURN_IF_ERROR(r->I32(&p.n_rounds));
  FAB_RETURN_IF_ERROR(r->F64(&p.learning_rate));
  FAB_RETURN_IF_ERROR(r->I32(&p.max_depth));
  FAB_RETURN_IF_ERROR(r->F64(&p.lambda));
  FAB_RETURN_IF_ERROR(r->F64(&p.gamma));
  FAB_RETURN_IF_ERROR(r->F64(&p.min_child_weight));
  FAB_RETURN_IF_ERROR(r->F64(&p.subsample));
  FAB_RETURN_IF_ERROR(r->F64(&p.colsample));
  FAB_RETURN_IF_ERROR(r->U64(&p.seed));
  double base_score = 0.0;
  FAB_RETURN_IF_ERROR(r->F64(&base_score));
  uint64_t num_features, tree_count;
  FAB_RETURN_IF_ERROR(r->U64(&num_features));
  FAB_RETURN_IF_ERROR(r->U64(&tree_count));
  if (tree_count > r->Remaining() / 8) {
    return Status::InvalidArgument("corrupt snapshot: bad tree count");
  }
  std::vector<ml::RegressionTree> trees(tree_count);
  for (ml::RegressionTree& tree : trees) {
    FAB_RETURN_IF_ERROR(DecodeTree(r, num_features, &tree));
  }
  return std::unique_ptr<ml::Regressor>(std::make_unique<ml::GbdtRegressor>(
      ml::GbdtRegressor::FromFitted(p, std::move(trees), base_score,
                                    num_features)));
}

// --- MLP. -------------------------------------------------------------------

void EncodeMlp(const ml::MlpRegressor& mlp, Writer* w) {
  const ml::MlpParams& p = mlp.params();
  w->U64(p.hidden.size());
  for (int h : p.hidden) w->I32(h);
  w->I32(p.epochs);
  w->I32(p.batch_size);
  w->F64(p.learning_rate);
  w->F64(p.l2);
  w->U64(p.seed);
  w->F64(p.validation_fraction);
  w->I32(p.patience);
  w->U64(mlp.layers().size());
  for (const ml::MlpRegressor::Layer& layer : mlp.layers()) {
    w->I32(layer.in);
    w->I32(layer.out);
    w->F64Vec(layer.w);
    w->F64Vec(layer.b);
  }
  w->F64Vec(mlp.x_mean());
  w->F64Vec(mlp.x_std());
  w->F64(mlp.y_mean());
  w->F64(mlp.y_std());
}

Result<std::unique_ptr<ml::Regressor>> DecodeMlp(Reader* r) {
  ml::MlpParams p;
  uint64_t hidden_count;
  FAB_RETURN_IF_ERROR(r->U64(&hidden_count));
  if (hidden_count > r->Remaining() / 4) {
    return Status::InvalidArgument("corrupt snapshot: bad hidden count");
  }
  p.hidden.resize(hidden_count);
  for (int& h : p.hidden) FAB_RETURN_IF_ERROR(r->I32(&h));
  FAB_RETURN_IF_ERROR(r->I32(&p.epochs));
  FAB_RETURN_IF_ERROR(r->I32(&p.batch_size));
  FAB_RETURN_IF_ERROR(r->F64(&p.learning_rate));
  FAB_RETURN_IF_ERROR(r->F64(&p.l2));
  FAB_RETURN_IF_ERROR(r->U64(&p.seed));
  FAB_RETURN_IF_ERROR(r->F64(&p.validation_fraction));
  FAB_RETURN_IF_ERROR(r->I32(&p.patience));
  uint64_t layer_count;
  FAB_RETURN_IF_ERROR(r->U64(&layer_count));
  if (layer_count > r->Remaining() / 24) {
    return Status::InvalidArgument("corrupt snapshot: bad layer count");
  }
  std::vector<ml::MlpRegressor::Layer> layers(layer_count);
  for (ml::MlpRegressor::Layer& layer : layers) {
    FAB_RETURN_IF_ERROR(r->I32(&layer.in));
    FAB_RETURN_IF_ERROR(r->I32(&layer.out));
    FAB_RETURN_IF_ERROR(r->F64Vec(&layer.w));
    FAB_RETURN_IF_ERROR(r->F64Vec(&layer.b));
    if (layer.in < 0 || layer.out < 0 ||
        layer.w.size() !=
            static_cast<size_t>(layer.in) * static_cast<size_t>(layer.out) ||
        layer.b.size() != static_cast<size_t>(layer.out)) {
      return Status::InvalidArgument("corrupt snapshot: layer shape mismatch");
    }
  }
  std::vector<double> x_mean, x_std;
  FAB_RETURN_IF_ERROR(r->F64Vec(&x_mean));
  FAB_RETURN_IF_ERROR(r->F64Vec(&x_std));
  double y_mean = 0.0, y_std = 1.0;
  FAB_RETURN_IF_ERROR(r->F64(&y_mean));
  FAB_RETURN_IF_ERROR(r->F64(&y_std));
  if (x_mean.size() != x_std.size()) {
    return Status::InvalidArgument("corrupt snapshot: x stats mismatch");
  }
  return std::unique_ptr<ml::Regressor>(std::make_unique<ml::MlpRegressor>(
      ml::MlpRegressor::FromFitted(p, std::move(layers), std::move(x_mean),
                                   std::move(x_std), y_mean, y_std)));
}

Status ParseHeader(Reader* r, SnapshotInfo* info) {
  char magic[8];
  FAB_RETURN_IF_ERROR(r->Bytes(magic, 8));
  if (std::memcmp(magic, kMagic, 8) != 0) {
    return Status::InvalidArgument("corrupt snapshot: bad magic");
  }
  FAB_RETURN_IF_ERROR(r->U32(&info->version));
  if (info->version != SnapshotCodec::kFormatVersion) {
    return Status::InvalidArgument("unsupported snapshot version " +
                                   std::to_string(info->version));
  }
  uint32_t kind;
  FAB_RETURN_IF_ERROR(r->U32(&kind));
  if (kind > static_cast<uint32_t>(ModelKind::kMlp)) {
    return Status::InvalidArgument("corrupt snapshot: unknown model kind");
  }
  info->kind = static_cast<ModelKind>(kind);
  return Status::OK();
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open snapshot: " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) {
    return Status::IoError("cannot read snapshot: " + path);
  }
  return bytes;
}

}  // namespace

Result<ModelKind> KindOf(const ml::Regressor& model) {
  if (dynamic_cast<const ml::RandomForestRegressor*>(&model) != nullptr) {
    return ModelKind::kRandomForest;
  }
  if (dynamic_cast<const ml::GbdtRegressor*>(&model) != nullptr) {
    return ModelKind::kGbdt;
  }
  if (dynamic_cast<const ml::MlpRegressor*>(&model) != nullptr) {
    return ModelKind::kMlp;
  }
  return Status::InvalidArgument("no snapshot codec for model: " +
                                 model.name());
}

const char* ModelKindName(ModelKind kind) {
  switch (kind) {
    case ModelKind::kRandomForest:
      return "rf";
    case ModelKind::kGbdt:
      return "xgb";
    case ModelKind::kMlp:
      return "mlp";
  }
  return "?";
}

Result<std::string> SnapshotCodec::Encode(const ml::Regressor& model) {
  FAB_ASSIGN_OR_RETURN(ModelKind kind, KindOf(model));
  std::string bytes;
  Writer w(&bytes);
  w.Bytes(kMagic, 8);
  w.U32(kFormatVersion);
  w.U32(static_cast<uint32_t>(kind));
  switch (kind) {
    case ModelKind::kRandomForest:
      EncodeForest(static_cast<const ml::RandomForestRegressor&>(model), &w);
      break;
    case ModelKind::kGbdt:
      EncodeGbdt(static_cast<const ml::GbdtRegressor&>(model), &w);
      break;
    case ModelKind::kMlp:
      EncodeMlp(static_cast<const ml::MlpRegressor&>(model), &w);
      break;
  }
  return bytes;
}

Result<std::unique_ptr<ml::Regressor>> SnapshotCodec::Decode(
    const std::string& bytes) {
  Reader r(bytes);
  SnapshotInfo info;
  FAB_RETURN_IF_ERROR(ParseHeader(&r, &info));
  switch (info.kind) {
    case ModelKind::kRandomForest:
      return DecodeForest(&r);
    case ModelKind::kGbdt:
      return DecodeGbdt(&r);
    case ModelKind::kMlp:
      return DecodeMlp(&r);
  }
  return Status::Internal("unreachable snapshot kind");
}

Status SnapshotCodec::Save(const ml::Regressor& model,
                           const std::string& path) {
  FAB_ASSIGN_OR_RETURN(std::string bytes, Encode(model));
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot write snapshot: " + tmp);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out.good()) return Status::IoError("short write: " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return Status::IoError("cannot publish snapshot " + path + ": " +
                           ec.message());
  }
  return Status::OK();
}

Result<std::unique_ptr<ml::Regressor>> SnapshotCodec::Load(
    const std::string& path) {
  FAB_ASSIGN_OR_RETURN(std::string bytes, ReadFile(path));
  return Decode(bytes);
}

Result<SnapshotInfo> SnapshotCodec::Probe(const std::string& path) {
  FAB_ASSIGN_OR_RETURN(std::string bytes, ReadFile(path));
  Reader r(bytes);
  SnapshotInfo info;
  FAB_RETURN_IF_ERROR(ParseHeader(&r, &info));
  return info;
}

}  // namespace fab::serve
