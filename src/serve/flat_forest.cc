#include "serve/flat_forest.h"

#include <queue>

#include "ml/forest.h"
#include "ml/gbdt.h"
#include "util/check.h"

namespace fab::serve {

FlatForest FlatForest::FromTrees(const std::vector<ml::RegressionTree>& trees,
                                 double base, double scale, bool mean) {
  FlatForest flat;
  flat.base_ = base;
  flat.scale_ = scale;
  flat.mean_ = mean;
  size_t total_nodes = 0;
  for (const ml::RegressionTree& tree : trees) {
    total_nodes += tree.nodes().size();
  }
  flat.feature_.reserve(total_nodes);
  flat.threshold_.reserve(total_nodes);
  flat.left_.reserve(total_nodes);
  flat.roots_.reserve(trees.size());

  for (const ml::RegressionTree& tree : trees) {
    const std::vector<ml::TreeNode>& nodes = tree.nodes();
    if (nodes.empty()) continue;
    // Breadth-first renumbering that appends each internal node's two
    // children adjacently: right child = left child + 1, and the levels
    // every row traverses first sit contiguously at the front.
    const auto root = static_cast<int32_t>(flat.feature_.size());
    flat.roots_.push_back(root);
    flat.feature_.push_back(0);
    flat.threshold_.push_back(0.0);
    flat.left_.push_back(0);
    std::queue<std::pair<int32_t, int32_t>> pending;  // (source idx, flat idx)
    pending.emplace(0, root);
    while (!pending.empty()) {
      const auto [src, dst] = pending.front();
      pending.pop();
      FAB_DCHECK(src >= 0 && static_cast<size_t>(src) < nodes.size())
          << "tree child index " << src << " outside " << nodes.size()
          << " nodes";
      const ml::TreeNode& node = nodes[static_cast<size_t>(src)];
      if (node.feature < 0) {
        flat.feature_[static_cast<size_t>(dst)] = -1;
        flat.threshold_[static_cast<size_t>(dst)] = node.value;
        flat.left_[static_cast<size_t>(dst)] = 0;
        continue;
      }
      const auto child = static_cast<int32_t>(flat.feature_.size());
      flat.feature_[static_cast<size_t>(dst)] = node.feature;
      flat.threshold_[static_cast<size_t>(dst)] = node.threshold;
      flat.left_[static_cast<size_t>(dst)] = child;
      for (int k = 0; k < 2; ++k) {
        flat.feature_.push_back(0);
        flat.threshold_.push_back(0.0);
        flat.left_.push_back(0);
      }
      pending.emplace(node.left, child);
      pending.emplace(node.right, child + 1);
    }
  }
  return flat;
}

Result<FlatForest> FlatForest::FromRegressor(const ml::Regressor& model) {
  if (const auto* rf =
          dynamic_cast<const ml::RandomForestRegressor*>(&model)) {
    return FromTrees(rf->trees(), 0.0, 1.0, /*mean=*/true);
  }
  if (const auto* gbdt = dynamic_cast<const ml::GbdtRegressor*>(&model)) {
    return FromTrees(gbdt->trees(), gbdt->base_score(),
                     gbdt->params().learning_rate, /*mean=*/false);
  }
  return Status::InvalidArgument("cannot flatten model: " + model.name());
}

void FlatForest::PredictRange(const ml::ColMatrix& x, size_t row_begin,
                              size_t row_end, double* out) const {
  // Per-range (not per-row), so the always-on check stays off the hot loop.
  FAB_CHECK(row_begin <= row_end && row_end <= x.rows())
      << "predict range [" << row_begin << ", " << row_end << ") on "
      << x.rows() << " rows";
  const size_t n = row_end - row_begin;
  for (size_t i = 0; i < n; ++i) out[i] = 0.0;
  if (roots_.empty()) {
    if (!mean_) {
      for (size_t i = 0; i < n; ++i) out[i] = base_;
    }
    return;
  }
  // Hoist the column pointers: the traversal loop then runs entirely on
  // raw arrays with no vector-of-vectors indirection.
  std::vector<const double*> cols(x.cols());
  for (size_t j = 0; j < x.cols(); ++j) cols[j] = x.column(j).data();
  const int32_t* feature = feature_.data();
  const double* threshold = threshold_.data();
  const int32_t* left = left_.data();

  // fablint:hot — the serving inner loop; every request prediction runs
  // through here, so it must stay allocation-free.
  for (const int32_t root : roots_) {
    for (size_t i = 0; i < n; ++i) {
      const size_t row = row_begin + i;
      int32_t id = root;
      int32_t f = feature[id];
      while (f >= 0) {
        // Branch-free child select: right = left + 1.
        id = left[id] + static_cast<int32_t>(
                            cols[static_cast<size_t>(f)][row] > threshold[id]);
        f = feature[id];
      }
      out[i] += threshold[id];
    }
  }
  // fablint:endhot
  if (mean_) {
    const double n_trees = static_cast<double>(roots_.size());
    for (size_t i = 0; i < n; ++i) out[i] /= n_trees;
  } else {
    for (size_t i = 0; i < n; ++i) out[i] = base_ + scale_ * out[i];
  }
}

// fablint:det-root — serving must return bit-identical scores to fit.
std::vector<double> FlatForest::Predict(const ml::ColMatrix& x) const {
  std::vector<double> out(x.rows());
  if (!out.empty()) PredictRange(x, 0, x.rows(), out.data());
  return out;
}

double FlatForest::PredictOne(const ml::ColMatrix& x, size_t row) const {
  double out = 0.0;
  PredictRange(x, row, row + 1, &out);
  return out;
}

}  // namespace fab::serve
