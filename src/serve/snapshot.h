#ifndef FAB_SERVE_SNAPSHOT_H_
#define FAB_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "ml/estimator.h"
#include "util/status.h"

namespace fab::serve {

/// Model kinds a snapshot can carry (stable on-disk ids — append only).
enum class ModelKind : uint32_t {
  kRandomForest = 0,
  kGbdt = 1,
  kMlp = 2,
};

/// Returns the serialization id for a fitted `model`, or InvalidArgument
/// for regressor types the codec does not know.
[[nodiscard]] Result<ModelKind> KindOf(const ml::Regressor& model);

/// "rf" / "xgb" / "mlp" — matches Regressor::name().
const char* ModelKindName(ModelKind kind);

/// Parsed snapshot header.
struct SnapshotInfo {
  uint32_t version = 0;
  ModelKind kind = ModelKind::kRandomForest;
};

/// Versioned binary serialization of fitted models.
///
/// Layout (all integers little-endian, doubles as raw IEEE-754 bits so a
/// round-trip is bitwise exact):
///
///   [0..7]   magic "FABSNAP\0"
///   [8..11]  u32 format version (currently 1)
///   [12..15] u32 ModelKind
///   [16..]   kind-specific payload: hyperparameters, then fitted state
///            (flattened tree node lists + per-feature gains for rf/xgb,
///            layer weights + standardization constants for mlp)
///
/// Decode validates structure (magic, version, lengths, node child
/// indices) and rejects corrupt or truncated bytes with a non-OK Status.
class SnapshotCodec {
 public:
  /// Serializes a fitted model into a byte buffer.
  [[nodiscard]] static Result<std::string> Encode(const ml::Regressor& model);

  /// Parses a byte buffer back into a concrete fitted model.
  [[nodiscard]] static Result<std::unique_ptr<ml::Regressor>> Decode(const std::string& bytes);

  /// Encode + atomic write (temp file then rename), so concurrent loaders
  /// never observe a half-written snapshot.
  [[nodiscard]] static Status Save(const ml::Regressor& model, const std::string& path);

  /// Reads and decodes a snapshot file.
  [[nodiscard]] static Result<std::unique_ptr<ml::Regressor>> Load(const std::string& path);

  /// Reads just the header of a snapshot file (cheap existence/kind check).
  [[nodiscard]] static Result<SnapshotInfo> Probe(const std::string& path);

  static constexpr uint32_t kFormatVersion = 1;
};

}  // namespace fab::serve

#endif  // FAB_SERVE_SNAPSHOT_H_
