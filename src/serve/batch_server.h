#ifndef FAB_SERVE_BATCH_SERVER_H_
#define FAB_SERVE_BATCH_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/servable.h"
#include "util/mutex.h"
#include "util/obs/clock.h"
#include "util/obs/metrics.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace fab::serve {

struct BatchServerOptions {
  /// Worker threads draining the request queue, under the
  /// util::ResolveThreads convention (0 = hardware concurrency).
  int num_threads = 0;
  /// Upper bound on rows coalesced into one inference batch.
  size_t max_batch = 64;
  /// How long a worker holding a non-full batch waits for more requests
  /// before running what it has (0 = run immediately).
  int coalesce_wait_us = 200;
  /// Upper bound on queued-but-not-yet-batched requests (0 = unbounded).
  /// When full, Submit fails fast with kUnavailable instead of letting
  /// the queue — and with it the queue-wait latency — grow without
  /// limit. This is the hard backstop the fab::net admission layer
  /// builds its softer SLO-based shedding on.
  size_t max_queue = 0;
  /// Shutdown drains already-accepted requests for at most this long;
  /// whatever is still queued at the deadline is completed with a
  /// kUnavailable error rather than dropped or waited on forever.
  /// Negative = drain fully, however long it takes.
  int shutdown_drain_ms = 5000;
};

/// Point-in-time serving counters.
///
/// Percentile fields are read out of fixed-footprint log-scale
/// obs::Histograms (not raw samples), so memory stays bounded no matter
/// how long the server runs. Approximation contract: each percentile is
/// the geometric midpoint of a bucket whose edges grow by 2^(1/8),
/// clamped to the exact observed min/max — within a relative error of
/// 2^(1/16) - 1 ≈ 4.4% (< 5%) of the exact sorted-sample percentile.
/// Counts, means, max and rows_per_sec are exact.
struct BatchServerStats {
  uint64_t requests_completed = 0;
  /// Submits refused at the door because the queue was at max_queue.
  uint64_t requests_rejected = 0;
  /// Accepted requests completed with an error at the shutdown-drain
  /// deadline (never silently dropped: each one's future resolves).
  uint64_t requests_abandoned = 0;
  uint64_t batches_run = 0;
  /// requests_completed / batches_run.
  double mean_batch_size = 0.0;
  /// Batch-size distribution (rows per executed batch).
  double p99_batch_size = 0.0;
  /// End-to-end (enqueue → promise fulfilled) latency percentiles, µs.
  double p50_latency_us = 0.0;
  double p95_latency_us = 0.0;
  double p99_latency_us = 0.0;
  double max_latency_us = 0.0;
  /// Enqueue → batch-assembly wait percentiles, µs (time spent queued
  /// before a worker picked the request into a batch).
  double p50_queue_wait_us = 0.0;
  double p99_queue_wait_us = 0.0;
  /// Completed requests divided by the first-submit → last-completion span.
  double rows_per_sec = 0.0;
};

/// A thread-pool-backed forecast server that coalesces single-row
/// requests into batches and runs them through a Servable's batched
/// kernel — the pattern that turns N queue-depth point lookups into one
/// cache-friendly flat-forest sweep.
///
/// Two serving modes share the queue and workers:
///   * default-model: Submit(features) runs against the model installed
///     at construction / by UpdateModel — the original single-model mode;
///   * keyed: SubmitTo/SubmitWithCallback carry an explicit Servable, so
///     one BatchServer can serve every scenario key of a fab::net shard.
///     Workers extract maximal same-model runs from the queue, so rows
///     for the same model still coalesce into one kernel sweep while
///     rows for different models never mix in a batch.
///
/// Completion is a Result<double>: the value on success, or the error
/// that ended the request asynchronously (e.g. the shutdown-drain
/// deadline). Thread-safe: any number of client threads may Submit
/// concurrently; UpdateModel hot-swaps the served model without draining
/// the queue (in-flight batches finish on the model they started with).
///
/// Three capabilities, each compiler-checked via FAB_GUARDED_BY under
/// `-DFAB_THREAD_SAFETY=ON`:
///   * mu_            — request queue, served model, stop flag (the
///                      condition-variable predicates read only this
///                      guarded state, in explicit wait loops);
///   * stats_mu_      — serving counters and latency samples;
///   * lifecycle_mu_  — the worker threads themselves. Held across the
///                      join in Shutdown, so Start/Shutdown/Start races
///                      serialize instead of double-joining. Fixed order
///                      when nested: lifecycle_mu_ before mu_ (fablint's
///                      cross-TU lock-order rule watches the inverse).
class BatchServer {
 public:
  /// Invoked exactly once per accepted request with its forecast or the
  /// terminal error. Runs on a worker thread (or on the thread driving
  /// Shutdown, for deadline-abandoned requests): keep it cheap and never
  /// call back into this BatchServer from inside it.
  using Callback = std::function<void(Result<double>)>;

  BatchServer(std::shared_ptr<const Servable> model,
              const BatchServerOptions& options);
  ~BatchServer();

  BatchServer(const BatchServer&) = delete;
  BatchServer& operator=(const BatchServer&) = delete;

  /// Enqueues one feature row against the default model; the future
  /// resolves to the forecast or the asynchronous error. Fails fast
  /// (before queueing) on a feature-count mismatch, a full queue, or
  /// after Shutdown.
  [[nodiscard]] Result<std::future<Result<double>>> Submit(std::vector<double> features)
      FAB_EXCLUDES(mu_);

  /// Keyed variant: enqueues against an explicit model (fab::net shards
  /// route many scenario keys into one BatchServer this way).
  [[nodiscard]] Result<std::future<Result<double>>> SubmitTo(
      std::shared_ptr<const Servable> model, std::vector<double> features)
      FAB_EXCLUDES(mu_);

  /// Callback-completed keyed submit: no future, no waiting thread. The
  /// admission verdict is the returned Status; the forecast (or async
  /// error) arrives through `done`. This is what lets an HTTP front-end
  /// keep thousands of requests in flight without parking a thread per
  /// request.
  [[nodiscard]] Status SubmitWithCallback(std::shared_ptr<const Servable> model,
                            std::vector<double> features, Callback done)
      FAB_EXCLUDES(mu_);

  /// Blocking convenience wrapper around Submit.
  [[nodiscard]] Result<double> Forecast(std::vector<double> features);

  /// Atomically replaces the served model (e.g. after a registry Reload).
  void UpdateModel(std::shared_ptr<const Servable> model) FAB_EXCLUDES(mu_);

  /// (Re)spawns the worker threads after a Shutdown and starts accepting
  /// requests again. Idempotent while running; also run by the
  /// constructor. Serving stats carry over across restarts.
  void Start() FAB_EXCLUDES(lifecycle_mu_, mu_);

  /// Stops accepting requests, drains the queue (bounded by
  /// options.shutdown_drain_ms), joins the workers. Requests still
  /// queued at the drain deadline are completed with kUnavailable — an
  /// accepted request is never silently lost. Idempotent; also run by
  /// the destructor. A stopped server can be revived with Start().
  void Shutdown() FAB_EXCLUDES(lifecycle_mu_, mu_);

  BatchServerStats Stats() const;

  /// Stats() plus the full histograms, rendered as one JSON object —
  /// the machine-readable twin used by telemetry scrapes and the bench
  /// reporter ("statsz" in the /varz-/statsz debug-page tradition).
  std::string StatszJson() const;

  /// Requests accepted but not yet picked into a batch.
  size_t QueueDepth() const FAB_EXCLUDES(mu_);

  /// Predicted queue wait for a request admitted right now, in µs:
  /// current depth × the EMA per-row service time ÷ worker count. Zero
  /// until the first batch completes. The fab::net admission layer sheds
  /// load when this crosses the queue-wait SLO — before latency
  /// collapses, not after.
  double EstimatedQueueWaitUs() const FAB_EXCLUDES(mu_);

  /// Feature count the served model expects (0 when unknown).
  size_t num_features() const { return num_features_.load(); }

 private:
  struct Request {
    std::vector<double> features;
    /// Explicit model for keyed submits; null = default model, resolved
    /// when a worker assembles the batch.
    std::shared_ptr<const Servable> model;
    std::promise<Result<double>> promise;  ///< used when callback empty
    Callback callback;
    obs::Clock::time_point enqueued;
    /// Trace context captured at submit time (obs::CurrentTraceId; 0 when
    /// untraced). Batch workers re-install it around completion callbacks
    /// and attribute this request's latency samples to it, so a request's
    /// spans stitch across the submitting thread and the batch thread.
    uint64_t trace_id = 0;
  };

  /// Fulfils a request exactly once, via callback or promise.
  static void Complete(Request request, Result<double> result);

  /// Shared admission + enqueue path behind every Submit flavour.
  [[nodiscard]] Status Enqueue(Request request) FAB_EXCLUDES(mu_);

  void WorkerLoop() FAB_EXCLUDES(mu_);
  void RunBatch(std::vector<Request> batch,
                const std::shared_ptr<const Servable>& model);

  const BatchServerOptions options_;
  /// Atomic: read lock-free on the Submit fast path, written by UpdateModel.
  std::atomic<size_t> num_features_{0};
  /// EMA of per-row batch service time in µs (relaxed CAS updates from
  /// workers; feeds EstimatedQueueWaitUs).
  std::atomic<double> ema_row_service_us_{0.0};

  mutable util::Mutex mu_;
  util::CondVar cv_;
  /// Workers notify when the queue empties; Shutdown's bounded drain
  /// waits on it instead of polling.
  util::CondVar drained_cv_;
  std::deque<Request> queue_ FAB_GUARDED_BY(mu_);
  std::shared_ptr<const Servable> model_ FAB_GUARDED_BY(mu_);
  bool stopping_ FAB_GUARDED_BY(mu_) = false;

  mutable util::Mutex stats_mu_;
  uint64_t requests_completed_ FAB_GUARDED_BY(stats_mu_) = 0;
  uint64_t batches_run_ FAB_GUARDED_BY(stats_mu_) = 0;
  bool have_first_submit_ FAB_GUARDED_BY(stats_mu_) = false;
  obs::Clock::time_point first_submit_ FAB_GUARDED_BY(stats_mu_);
  obs::Clock::time_point last_complete_ FAB_GUARDED_BY(stats_mu_);

  // Admission counters are lock-free so the rejection fast path never
  // touches stats_mu_.
  std::atomic<uint64_t> requests_rejected_{0};
  std::atomic<uint64_t> requests_abandoned_{0};

  // Per-instance histograms (bounded memory, see BatchServerStats).
  // obs instruments are internally lock-free, so they live outside
  // stats_mu_ — recording never contends with Stats() readers.
  obs::Histogram latency_us_hist_;
  obs::Histogram batch_size_hist_;
  obs::Histogram queue_wait_us_hist_;

  util::Mutex lifecycle_mu_ FAB_ACQUIRED_BEFORE(mu_);
  std::vector<std::thread> workers_ FAB_GUARDED_BY(lifecycle_mu_);
};

}  // namespace fab::serve

#endif  // FAB_SERVE_BATCH_SERVER_H_
