#ifndef FAB_SERVE_BATCH_SERVER_H_
#define FAB_SERVE_BATCH_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/servable.h"
#include "util/mutex.h"
#include "util/obs/clock.h"
#include "util/obs/metrics.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace fab::serve {

struct BatchServerOptions {
  /// Worker threads draining the request queue, under the
  /// util::ResolveThreads convention (0 = hardware concurrency).
  int num_threads = 0;
  /// Upper bound on rows coalesced into one inference batch.
  size_t max_batch = 64;
  /// How long a worker holding a non-full batch waits for more requests
  /// before running what it has (0 = run immediately).
  int coalesce_wait_us = 200;
};

/// Point-in-time serving counters.
///
/// Percentile fields are read out of fixed-footprint log-scale
/// obs::Histograms (not raw samples), so memory stays bounded no matter
/// how long the server runs. Approximation contract: each percentile is
/// the geometric midpoint of a bucket whose edges grow by 2^(1/8),
/// clamped to the exact observed min/max — within a relative error of
/// 2^(1/16) - 1 ≈ 4.4% (< 5%) of the exact sorted-sample percentile.
/// Counts, means, max and rows_per_sec are exact.
struct BatchServerStats {
  uint64_t requests_completed = 0;
  uint64_t batches_run = 0;
  /// requests_completed / batches_run.
  double mean_batch_size = 0.0;
  /// Batch-size distribution (rows per executed batch).
  double p99_batch_size = 0.0;
  /// End-to-end (enqueue → promise fulfilled) latency percentiles, µs.
  double p50_latency_us = 0.0;
  double p95_latency_us = 0.0;
  double p99_latency_us = 0.0;
  double max_latency_us = 0.0;
  /// Enqueue → batch-assembly wait percentiles, µs (time spent queued
  /// before a worker picked the request into a batch).
  double p50_queue_wait_us = 0.0;
  double p99_queue_wait_us = 0.0;
  /// Completed requests divided by the first-submit → last-completion span.
  double rows_per_sec = 0.0;
};

/// A thread-pool-backed forecast server that coalesces single-row
/// requests into batches and runs them through a Servable's batched
/// kernel — the pattern that turns N queue-depth point lookups into one
/// cache-friendly flat-forest sweep.
///
/// Thread-safe: any number of client threads may Submit concurrently;
/// UpdateModel hot-swaps the served model without draining the queue
/// (in-flight batches finish on the model they started with).
///
/// Three capabilities, each compiler-checked via FAB_GUARDED_BY under
/// `-DFAB_THREAD_SAFETY=ON`:
///   * mu_            — request queue, served model, stop flag (the
///                      condition-variable predicates read only this
///                      guarded state, in explicit wait loops);
///   * stats_mu_      — serving counters and latency samples;
///   * lifecycle_mu_  — the worker threads themselves. Held across the
///                      join in Shutdown, so Start/Shutdown/Start races
///                      serialize instead of double-joining. Fixed order
///                      when nested: lifecycle_mu_ before mu_ (fablint's
///                      cross-TU lock-order rule watches the inverse).
class BatchServer {
 public:
  BatchServer(std::shared_ptr<const Servable> model,
              const BatchServerOptions& options);
  ~BatchServer();

  BatchServer(const BatchServer&) = delete;
  BatchServer& operator=(const BatchServer&) = delete;

  /// Enqueues one feature row; the future resolves to the forecast.
  /// Fails fast (before queueing) on a feature-count mismatch or after
  /// Shutdown.
  Result<std::future<double>> Submit(std::vector<double> features)
      FAB_EXCLUDES(mu_);

  /// Blocking convenience wrapper around Submit.
  Result<double> Forecast(std::vector<double> features);

  /// Atomically replaces the served model (e.g. after a registry Reload).
  void UpdateModel(std::shared_ptr<const Servable> model) FAB_EXCLUDES(mu_);

  /// (Re)spawns the worker threads after a Shutdown and starts accepting
  /// requests again. Idempotent while running; also run by the
  /// constructor. Serving stats carry over across restarts.
  void Start() FAB_EXCLUDES(lifecycle_mu_, mu_);

  /// Stops accepting requests, drains the queue, joins the workers.
  /// Idempotent; also run by the destructor. A stopped server can be
  /// revived with Start().
  void Shutdown() FAB_EXCLUDES(lifecycle_mu_, mu_);

  BatchServerStats Stats() const;

  /// Stats() plus the full histograms, rendered as one JSON object —
  /// the machine-readable twin used by telemetry scrapes and the bench
  /// reporter ("statsz" in the /varz-/statsz debug-page tradition).
  std::string StatszJson() const;

  /// Feature count the served model expects (0 when unknown).
  size_t num_features() const { return num_features_.load(); }

 private:
  struct Request {
    std::vector<double> features;
    std::promise<double> promise;
    obs::Clock::time_point enqueued;
  };

  void WorkerLoop() FAB_EXCLUDES(mu_);
  void RunBatch(std::vector<Request> batch,
                const std::shared_ptr<const Servable>& model);

  const BatchServerOptions options_;
  /// Atomic: read lock-free on the Submit fast path, written by UpdateModel.
  std::atomic<size_t> num_features_{0};

  mutable util::Mutex mu_;
  util::CondVar cv_;
  std::deque<Request> queue_ FAB_GUARDED_BY(mu_);
  std::shared_ptr<const Servable> model_ FAB_GUARDED_BY(mu_);
  bool stopping_ FAB_GUARDED_BY(mu_) = false;

  mutable util::Mutex stats_mu_;
  uint64_t requests_completed_ FAB_GUARDED_BY(stats_mu_) = 0;
  uint64_t batches_run_ FAB_GUARDED_BY(stats_mu_) = 0;
  bool have_first_submit_ FAB_GUARDED_BY(stats_mu_) = false;
  obs::Clock::time_point first_submit_ FAB_GUARDED_BY(stats_mu_);
  obs::Clock::time_point last_complete_ FAB_GUARDED_BY(stats_mu_);

  // Per-instance histograms (bounded memory, see BatchServerStats).
  // obs instruments are internally lock-free, so they live outside
  // stats_mu_ — recording never contends with Stats() readers.
  obs::Histogram latency_us_hist_;
  obs::Histogram batch_size_hist_;
  obs::Histogram queue_wait_us_hist_;

  util::Mutex lifecycle_mu_ FAB_ACQUIRED_BEFORE(mu_);
  std::vector<std::thread> workers_ FAB_GUARDED_BY(lifecycle_mu_);
};

}  // namespace fab::serve

#endif  // FAB_SERVE_BATCH_SERVER_H_
