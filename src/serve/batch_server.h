#ifndef FAB_SERVE_BATCH_SERVER_H_
#define FAB_SERVE_BATCH_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/servable.h"
#include "util/status.h"

namespace fab::serve {

struct BatchServerOptions {
  /// Worker threads draining the request queue, under the
  /// util::ResolveThreads convention (0 = hardware concurrency).
  int num_threads = 0;
  /// Upper bound on rows coalesced into one inference batch.
  size_t max_batch = 64;
  /// How long a worker holding a non-full batch waits for more requests
  /// before running what it has (0 = run immediately).
  int coalesce_wait_us = 200;
  /// Latency samples kept for percentile stats (oldest-first cap).
  size_t latency_sample_cap = 1 << 20;
};

/// Point-in-time serving counters.
struct BatchServerStats {
  uint64_t requests_completed = 0;
  uint64_t batches_run = 0;
  /// requests_completed / batches_run.
  double mean_batch_size = 0.0;
  /// End-to-end (enqueue → promise fulfilled) latency percentiles, µs.
  double p50_latency_us = 0.0;
  double p99_latency_us = 0.0;
  double max_latency_us = 0.0;
  /// Completed requests divided by the first-submit → last-completion span.
  double rows_per_sec = 0.0;
};

/// A thread-pool-backed forecast server that coalesces single-row
/// requests into batches and runs them through a Servable's batched
/// kernel — the pattern that turns N queue-depth point lookups into one
/// cache-friendly flat-forest sweep.
///
/// Thread-safe: any number of client threads may Submit concurrently;
/// UpdateModel hot-swaps the served model without draining the queue
/// (in-flight batches finish on the model they started with).
class BatchServer {
 public:
  BatchServer(std::shared_ptr<const Servable> model,
              const BatchServerOptions& options);
  ~BatchServer();

  BatchServer(const BatchServer&) = delete;
  BatchServer& operator=(const BatchServer&) = delete;

  /// Enqueues one feature row; the future resolves to the forecast.
  /// Fails fast (before queueing) on a feature-count mismatch or after
  /// Shutdown.
  Result<std::future<double>> Submit(std::vector<double> features);

  /// Blocking convenience wrapper around Submit.
  Result<double> Forecast(std::vector<double> features);

  /// Atomically replaces the served model (e.g. after a registry Reload).
  void UpdateModel(std::shared_ptr<const Servable> model);

  /// Stops accepting requests, drains the queue, joins the workers.
  /// Idempotent; also run by the destructor.
  void Shutdown();

  BatchServerStats Stats() const;

  /// Feature count the served model expects (0 when unknown).
  size_t num_features() const { return num_features_.load(); }

 private:
  struct Request {
    std::vector<double> features;
    std::promise<double> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  void WorkerLoop();
  void RunBatch(std::vector<Request> batch,
                const std::shared_ptr<const Servable>& model);

  const BatchServerOptions options_;
  /// Atomic: read lock-free on the Submit fast path, written by UpdateModel.
  std::atomic<size_t> num_features_{0};

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Request> queue_;
  std::shared_ptr<const Servable> model_;
  bool stopping_ = false;

  mutable std::mutex stats_mu_;
  uint64_t requests_completed_ = 0;
  uint64_t batches_run_ = 0;
  std::vector<double> latency_us_;
  bool have_first_submit_ = false;
  std::chrono::steady_clock::time_point first_submit_;
  std::chrono::steady_clock::time_point last_complete_;

  std::vector<std::thread> workers_;
};

}  // namespace fab::serve

#endif  // FAB_SERVE_BATCH_SERVER_H_
