#ifndef FAB_SERVE_FLAT_FOREST_H_
#define FAB_SERVE_FLAT_FOREST_H_

#include <cstdint>
#include <vector>

#include "ml/estimator.h"
#include "ml/matrix.h"
#include "ml/tree.h"
#include "util/status.h"

namespace fab::serve {

/// A tree ensemble flattened into structure-of-arrays form for batched
/// inference.
///
/// All trees share three parallel node arrays:
///   feature_[i]    split feature, or -1 for a leaf
///   threshold_[i]  split threshold; holds the LEAF VALUE when feature < 0
///   left_[i]       index of the left child; the right child is always
///                  left_[i] + 1 (children are laid out adjacently)
///
/// Compared with walking `RegressionTree::PredictOne` through an
/// ensemble of independently-allocated 40-byte node vectors, this layout
/// is 16 bytes per node, keeps every tree contiguous in one arena, and
/// makes the two possible next nodes adjacent in memory. Prediction
/// iterates trees outer / rows inner so a tree's nodes stay cache-hot
/// across the whole batch.
///
/// The accumulation order matches the source model's PredictOne exactly
/// (sum over trees in order, then mean for forests / base + lr * sum for
/// boosters), so flat predictions are bitwise identical to the virtual
/// path.
class FlatForest {
 public:
  FlatForest() = default;

  /// Flattens a fitted tree-ensemble regressor (RandomForestRegressor or
  /// GbdtRegressor). Other model kinds get InvalidArgument — serve them
  /// through Regressor::Predict instead.
  [[nodiscard]] static Result<FlatForest> FromRegressor(const ml::Regressor& model);

  /// Flattens raw trees with an explicit output transform
  /// `base + scale * sum` (or `sum / n_trees` when `mean` is set).
  static FlatForest FromTrees(const std::vector<ml::RegressionTree>& trees,
                              double base, double scale, bool mean);

  /// Predictions for rows [row_begin, row_end); writes row_end - row_begin
  /// values into `out`.
  void PredictRange(const ml::ColMatrix& x, size_t row_begin, size_t row_end,
                    double* out) const;

  /// Predictions for every row of `x`.
  std::vector<double> Predict(const ml::ColMatrix& x) const;

  /// Single-row prediction (the low-latency point-lookup path).
  double PredictOne(const ml::ColMatrix& x, size_t row) const;

  size_t num_trees() const { return roots_.size(); }
  size_t num_nodes() const { return feature_.size(); }
  bool empty() const { return roots_.empty(); }

 private:
  std::vector<int32_t> feature_;
  std::vector<double> threshold_;
  std::vector<int32_t> left_;
  /// Root node index of each tree within the shared arrays.
  std::vector<int32_t> roots_;
  double base_ = 0.0;
  double scale_ = 1.0;
  /// True → output is the tree mean (random forest); false → base + scale*sum.
  bool mean_ = false;
};

}  // namespace fab::serve

#endif  // FAB_SERVE_FLAT_FOREST_H_
