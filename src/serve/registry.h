#ifndef FAB_SERVE_REGISTRY_H_
#define FAB_SERVE_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "serve/servable.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace fab::serve {

/// Identity of a deployed model: which study period and forecast window
/// it was fine-tuned for, and which estimator family it is.
struct ModelKey {
  std::string period;  // e.g. "2017" or "2019"
  int window = 1;      // forecast horizon in days
  std::string model;   // "rf" | "xgb" | "mlp"

  bool operator<(const ModelKey& other) const {
    if (period != other.period) return period < other.period;
    if (window != other.window) return window < other.window;
    return model < other.model;
  }
  bool operator==(const ModelKey& other) const {
    return period == other.period && window == other.window &&
           model == other.model;
  }
  std::string ToString() const;
};

/// Snapshot file name for a key: "<period>_w<window>_<model>.fabsnap".
std::string SnapshotFileName(const ModelKey& key);

/// Inverse of SnapshotFileName; fails on names it did not produce.
[[nodiscard]] Result<ModelKey> ParseSnapshotFileName(const std::string& filename);

/// Thread-safe catalogue of servable models backed by a snapshot
/// directory (typically `<FAB_CACHE_DIR>/seed<seed>_<mode>/models/`).
///
/// `Get` lazily loads a key's snapshot on first use and memoizes the
/// Servable; `Reload` re-reads the file and atomically swaps the entry,
/// so readers either see the old model or the new one, never a torn
/// state — and in-flight batches keep the old model alive through their
/// shared_ptr until they finish.
///
/// Escape discipline (compiler-checked via FAB_GUARDED_BY under
/// `-DFAB_THREAD_SAFETY=ON`): no method ever returns a reference or
/// pointer into the guarded map — accessors hand out shared_ptr *copies*
/// taken under the lock, so a concurrent Reload/Evict can never leave a
/// caller holding a dangling handle.
class ModelRegistry {
 public:
  explicit ModelRegistry(std::string root_dir) : root_(std::move(root_dir)) {}

  /// The servable for `key`, loading it from disk on first access.
  [[nodiscard]] Result<std::shared_ptr<const Servable>> Get(const ModelKey& key);

  /// Re-reads `key`'s snapshot from disk and hot-swaps the cached entry.
  [[nodiscard]] Status Reload(const ModelKey& key);

  /// Registers an already-fitted model under `key` (in memory only).
  [[nodiscard]] Status Put(const ModelKey& key, std::unique_ptr<ml::Regressor> model);

  /// Saves a fitted model into the registry directory AND registers it.
  [[nodiscard]] Status Install(const ModelKey& key, std::unique_ptr<ml::Regressor> model);

  /// Drops a cached entry (the snapshot file, if any, is untouched).
  void Evict(const ModelKey& key);

  /// Keys with a parseable snapshot file in the registry directory.
  std::vector<ModelKey> ListOnDisk() const;

  /// Number of models currently resident in memory.
  size_t LoadedCount() const;

  /// Monotonic mutation counter: bumped by every successful Reload, Put,
  /// Install and entry-removing Evict. Lets serving layers detect "has
  /// anything changed since I last looked?" with one cheap call instead
  /// of comparing servable pointers key by key.
  uint64_t Generation() const;

  const std::string& root_dir() const { return root_; }
  std::string PathFor(const ModelKey& key) const;

 private:
  [[nodiscard]] Result<std::shared_ptr<const Servable>> LoadFromDisk(
      const ModelKey& key) const;

  const std::string root_;
  mutable util::Mutex mu_;
  std::map<ModelKey, std::shared_ptr<const Servable>> loaded_
      FAB_GUARDED_BY(mu_);
  uint64_t generation_ FAB_GUARDED_BY(mu_) = 0;
};

}  // namespace fab::serve

#endif  // FAB_SERVE_REGISTRY_H_
