#include "serve/servable.h"

#include "ml/forest.h"
#include "ml/gbdt.h"
#include "ml/mlp.h"

namespace fab::serve {

Result<std::shared_ptr<const Servable>> Servable::Wrap(
    std::unique_ptr<ml::Regressor> model) {
  if (model == nullptr) {
    return Status::InvalidArgument("cannot wrap a null model");
  }
  FlatForest flat;
  size_t num_features = 0;
  if (const auto* rf =
          dynamic_cast<const ml::RandomForestRegressor*>(model.get())) {
    num_features = rf->num_features();
    FAB_ASSIGN_OR_RETURN(flat, FlatForest::FromRegressor(*model));
  } else if (const auto* gbdt =
                 dynamic_cast<const ml::GbdtRegressor*>(model.get())) {
    num_features = gbdt->num_features();
    FAB_ASSIGN_OR_RETURN(flat, FlatForest::FromRegressor(*model));
  } else if (const auto* mlp =
                 dynamic_cast<const ml::MlpRegressor*>(model.get())) {
    num_features = mlp->x_mean().size();
  }
  // make_shared cannot reach the private constructor; ownership transfers to
  // the shared_ptr on the same line.
  return std::shared_ptr<const Servable>(  // fablint:allow(hygiene-new-delete)
      new Servable(std::move(model), std::move(flat), num_features));
}

std::vector<double> Servable::Predict(const ml::ColMatrix& x) const {
  if (flattened()) return flat_.Predict(x);
  return model_->Predict(x);
}

double Servable::PredictOne(const ml::ColMatrix& x, size_t row) const {
  if (flattened()) return flat_.PredictOne(x, row);
  return model_->PredictOne(x, row);
}

}  // namespace fab::serve
