#include "serve/registry.h"

#include <algorithm>
#include <cctype>
#include <filesystem>

#include "serve/snapshot.h"

namespace fab::serve {

namespace {
constexpr char kExtension[] = ".fabsnap";
}  // namespace

std::string ModelKey::ToString() const {
  return period + "/w" + std::to_string(window) + "/" + model;
}

std::string SnapshotFileName(const ModelKey& key) {
  return key.period + "_w" + std::to_string(key.window) + "_" + key.model +
         kExtension;
}

Result<ModelKey> ParseSnapshotFileName(const std::string& filename) {
  const std::string ext(kExtension);
  if (filename.size() <= ext.size() ||
      filename.compare(filename.size() - ext.size(), ext.size(), ext) != 0) {
    return Status::InvalidArgument("not a snapshot file: " + filename);
  }
  const std::string stem = filename.substr(0, filename.size() - ext.size());
  const size_t model_sep = stem.rfind('_');
  if (model_sep == std::string::npos || model_sep + 1 >= stem.size()) {
    return Status::InvalidArgument("malformed snapshot name: " + filename);
  }
  const size_t window_sep = stem.rfind("_w", model_sep - 1);
  if (window_sep == std::string::npos || window_sep == 0) {
    return Status::InvalidArgument("malformed snapshot name: " + filename);
  }
  const std::string digits =
      stem.substr(window_sep + 2, model_sep - window_sep - 2);
  if (digits.empty()) {
    return Status::InvalidArgument("malformed snapshot name: " + filename);
  }
  for (char c : digits) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0) {
      return Status::InvalidArgument("malformed snapshot name: " + filename);
    }
  }
  ModelKey key;
  key.period = stem.substr(0, window_sep);
  key.window = std::stoi(digits);
  key.model = stem.substr(model_sep + 1);
  return key;
}

std::string ModelRegistry::PathFor(const ModelKey& key) const {
  return root_ + "/" + SnapshotFileName(key);
}

Result<std::shared_ptr<const Servable>> ModelRegistry::LoadFromDisk(
    const ModelKey& key) const {
  FAB_ASSIGN_OR_RETURN(std::unique_ptr<ml::Regressor> model,
                       SnapshotCodec::Load(PathFor(key)));
  return Servable::Wrap(std::move(model));
}

Result<std::shared_ptr<const Servable>> ModelRegistry::Get(
    const ModelKey& key) {
  {
    util::MutexLock lock(mu_);
    auto it = loaded_.find(key);
    // A shared_ptr copy made while the lock is held — never a reference
    // into loaded_, which a concurrent Reload/Evict could invalidate.
    if (it != loaded_.end()) return it->second;
  }
  // Load outside the lock so a slow disk read doesn't stall lookups of
  // already-resident models.
  FAB_ASSIGN_OR_RETURN(std::shared_ptr<const Servable> servable,
                       LoadFromDisk(key));
  util::MutexLock lock(mu_);
  // A racing loader may have won; keep the first one in.
  auto [it, inserted] = loaded_.emplace(key, std::move(servable));
  if (inserted) ++generation_;
  return it->second;
}

Status ModelRegistry::Reload(const ModelKey& key) {
  FAB_ASSIGN_OR_RETURN(std::shared_ptr<const Servable> fresh,
                       LoadFromDisk(key));
  util::MutexLock lock(mu_);
  loaded_[key] = std::move(fresh);  // atomic swap under the lock
  ++generation_;
  return Status::OK();
}

Status ModelRegistry::Put(const ModelKey& key,
                          std::unique_ptr<ml::Regressor> model) {
  FAB_ASSIGN_OR_RETURN(std::shared_ptr<const Servable> servable,
                       Servable::Wrap(std::move(model)));
  util::MutexLock lock(mu_);
  loaded_[key] = std::move(servable);
  ++generation_;
  return Status::OK();
}

Status ModelRegistry::Install(const ModelKey& key,
                              std::unique_ptr<ml::Regressor> model) {
  if (model == nullptr) {
    return Status::InvalidArgument("cannot install a null model");
  }
  std::error_code ec;
  std::filesystem::create_directories(root_, ec);
  if (ec) {
    return Status::IoError("cannot create registry dir: " + ec.message());
  }
  FAB_RETURN_IF_ERROR(SnapshotCodec::Save(*model, PathFor(key)));
  return Put(key, std::move(model));
}

void ModelRegistry::Evict(const ModelKey& key) {
  util::MutexLock lock(mu_);
  if (loaded_.erase(key) > 0) ++generation_;
}

std::vector<ModelKey> ModelRegistry::ListOnDisk() const {
  std::vector<ModelKey> keys;
  std::error_code ec;
  std::filesystem::directory_iterator it(root_, ec);
  if (ec) return keys;
  for (const auto& entry : it) {
    if (!entry.is_regular_file()) continue;
    Result<ModelKey> key = ParseSnapshotFileName(entry.path().filename());
    if (key.ok()) keys.push_back(std::move(key).value());
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

size_t ModelRegistry::LoadedCount() const {
  util::MutexLock lock(mu_);
  return loaded_.size();
}

uint64_t ModelRegistry::Generation() const {
  util::MutexLock lock(mu_);
  return generation_;
}

}  // namespace fab::serve
