#include "serve/batch_server.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

#include "util/obs/trace.h"
#include "util/thread_pool.h"

namespace fab::serve {

namespace {

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return v > 0 ? "\"inf\"" : (v < 0 ? "\"-inf\"" : "\"nan\"");
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

BatchServer::BatchServer(std::shared_ptr<const Servable> model,
                         const BatchServerOptions& options)
    : options_(options),
      num_features_(model != nullptr ? model->num_features() : 0),
      model_(std::move(model)) {
  Start();
}

BatchServer::~BatchServer() { Shutdown(); }

void BatchServer::Start() {
  util::MutexLock lifecycle(lifecycle_mu_);
  if (!workers_.empty()) return;  // already running
  {
    util::MutexLock lock(mu_);
    stopping_ = false;
  }
  const int threads = util::ResolveThreads(options_.num_threads);
  workers_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void BatchServer::Shutdown() {
  // lifecycle_mu_ is held for the whole stop-notify-join sequence, so a
  // concurrent Start/Shutdown pair serializes: either the restart sees a
  // fully joined server, or the shutdown joins the freshly started
  // workers. Lock order lifecycle_mu_ -> mu_ matches Start().
  util::MutexLock lifecycle(lifecycle_mu_);
  {
    util::MutexLock lock(mu_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

Result<std::future<double>> BatchServer::Submit(std::vector<double> features) {
  const size_t expected = num_features_.load();
  if (expected != 0 && features.size() != expected) {
    return Status::InvalidArgument(
        "feature count mismatch: got " + std::to_string(features.size()) +
        ", model expects " + std::to_string(expected));
  }
  Request request;
  request.features = std::move(features);
  request.enqueued = obs::Clock::Now();
  std::future<double> future = request.promise.get_future();
  {
    util::MutexLock lock(mu_);
    if (stopping_) {
      return Status::FailedPrecondition("server is shut down");
    }
    queue_.push_back(std::move(request));
  }
  {
    util::MutexLock lock(stats_mu_);
    if (!have_first_submit_) {
      have_first_submit_ = true;
      first_submit_ = obs::Clock::Now();
    }
  }
  cv_.NotifyOne();
  return future;
}

Result<double> BatchServer::Forecast(std::vector<double> features) {
  FAB_ASSIGN_OR_RETURN(std::future<double> future,
                       Submit(std::move(features)));
  return future.get();
}

void BatchServer::UpdateModel(std::shared_ptr<const Servable> model) {
  util::MutexLock lock(mu_);
  model_ = std::move(model);
  if (model_ != nullptr) num_features_ = model_->num_features();
}

void BatchServer::WorkerLoop() {
  while (true) {
    std::vector<Request> batch;
    std::shared_ptr<const Servable> model;
    {
      util::MutexLock lock(mu_);
      // Explicit wait loops over FAB_GUARDED_BY state (no predicate
      // lambdas): the analysis then proves every read of queue_ and
      // stopping_ happens with mu_ held.
      while (!stopping_ && queue_.empty()) cv_.Wait(mu_);
      if (queue_.empty()) return;  // stopping and fully drained
      if (queue_.size() < options_.max_batch && options_.coalesce_wait_us > 0 &&
          !stopping_) {
        // Hold the batch open briefly so bursty single-row traffic
        // coalesces instead of running one row at a time.
        const auto deadline =
            obs::Clock::Now() +
            std::chrono::microseconds(options_.coalesce_wait_us);
        while (!stopping_ && queue_.size() < options_.max_batch) {
          if (!cv_.WaitUntil(mu_, deadline)) break;  // timed out
        }
      }
      const size_t take = std::min(queue_.size(), options_.max_batch);
      batch.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      model = model_;  // shared_ptr copy under the lock, never a reference
    }
    if (!batch.empty()) RunBatch(std::move(batch), model);
  }
}

void BatchServer::RunBatch(std::vector<Request> batch,
                           const std::shared_ptr<const Servable>& model) {
  const size_t rows = batch.size();
  FAB_TRACE_SCOPE("serve/batch", {{"rows", rows}});
  // Queue wait ends here: the requests just left the queue for a batch.
  const obs::Clock::time_point batch_start = obs::Clock::Now();
  for (const Request& request : batch) {
    queue_wait_us_hist_.Record(
        obs::Clock::MicrosBetween(request.enqueued, batch_start));
  }
  batch_size_hist_.Record(static_cast<double>(rows));
  const size_t expected = num_features_.load();
  const size_t cols = expected != 0 ? expected : batch.front().features.size();
  ml::ColMatrix x(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    const std::vector<double>& features = batch[r].features;
    for (size_t c = 0; c < cols && c < features.size(); ++c) {
      x.set(r, c, features[c]);
    }
  }
  std::vector<double> pred =
      model != nullptr ? model->Predict(x) : std::vector<double>(rows, 0.0);
  const obs::Clock::time_point done = obs::Clock::Now();
  // End-to-end latency lands in the bounded histogram — no sample cap,
  // no unbounded vector, O(1) memory for any request volume.
  for (const Request& request : batch) {
    latency_us_hist_.Record(obs::Clock::MicrosBetween(request.enqueued, done));
  }
  {
    // Record stats before fulfilling the promises: once a caller's future
    // resolves, a subsequent Stats() call must already count that request.
    util::MutexLock lock(stats_mu_);
    requests_completed_ += rows;
    batches_run_ += 1;
    last_complete_ = done;
  }
  for (size_t r = 0; r < rows; ++r) {
    batch[r].promise.set_value(pred[r]);
  }
}

BatchServerStats BatchServer::Stats() const {
  BatchServerStats stats;
  // Histogram readouts are lock-free; only the scalar counters need
  // stats_mu_. See BatchServerStats for the percentile error contract.
  stats.p50_latency_us = latency_us_hist_.Percentile(0.50);
  stats.p95_latency_us = latency_us_hist_.Percentile(0.95);
  stats.p99_latency_us = latency_us_hist_.Percentile(0.99);
  stats.max_latency_us = latency_us_hist_.Max();
  stats.p99_batch_size = batch_size_hist_.Percentile(0.99);
  stats.p50_queue_wait_us = queue_wait_us_hist_.Percentile(0.50);
  stats.p99_queue_wait_us = queue_wait_us_hist_.Percentile(0.99);
  util::MutexLock lock(stats_mu_);
  stats.requests_completed = requests_completed_;
  stats.batches_run = batches_run_;
  stats.mean_batch_size =
      batches_run_ > 0 ? static_cast<double>(requests_completed_) /
                             static_cast<double>(batches_run_)
                       : 0.0;
  if (have_first_submit_ && requests_completed_ > 0) {
    const double span =
        std::chrono::duration<double>(last_complete_ - first_submit_).count();
    if (span > 0.0) {
      stats.rows_per_sec = static_cast<double>(requests_completed_) / span;
    }
  }
  return stats;
}

std::string BatchServer::StatszJson() const {
  const BatchServerStats stats = Stats();
  std::string out = "{";
  out += "\"requests_completed\":" + std::to_string(stats.requests_completed);
  out += ",\"batches_run\":" + std::to_string(stats.batches_run);
  out += ",\"mean_batch_size\":" + JsonNumber(stats.mean_batch_size);
  out += ",\"rows_per_sec\":" + JsonNumber(stats.rows_per_sec);
  out += ",\"latency_us\":" + latency_us_hist_.ToJson();
  out += ",\"batch_size\":" + batch_size_hist_.ToJson();
  out += ",\"queue_wait_us\":" + queue_wait_us_hist_.ToJson();
  out += "}";
  return out;
}

}  // namespace fab::serve
