#include "serve/batch_server.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <utility>

#include "util/obs/flight.h"
#include "util/obs/trace.h"
#include "util/obs/trace_context.h"
#include "util/thread_pool.h"

namespace fab::serve {

namespace {

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return v > 0 ? "\"inf\"" : (v < 0 ? "\"-inf\"" : "\"nan\"");
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// EMA update via relaxed CAS: workers race, each applies its own sample,
/// and any interleaving yields a valid smoothed estimate.
void EmaUpdate(std::atomic<double>& ema, double sample, double alpha) {
  double prev = ema.load(std::memory_order_relaxed);
  double next;
  do {
    next = prev == 0.0 ? sample : prev + alpha * (sample - prev);
  } while (!ema.compare_exchange_weak(prev, next, std::memory_order_relaxed));
}

}  // namespace

BatchServer::BatchServer(std::shared_ptr<const Servable> model,
                         const BatchServerOptions& options)
    : options_(options),
      num_features_(model != nullptr ? model->num_features() : 0),
      model_(std::move(model)) {
  Start();
}

BatchServer::~BatchServer() { Shutdown(); }

void BatchServer::Start() {
  util::MutexLock lifecycle(lifecycle_mu_);
  if (!workers_.empty()) return;  // already running
  {
    util::MutexLock lock(mu_);
    stopping_ = false;
  }
  const int threads = util::ResolveThreads(options_.num_threads);
  workers_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    // WorkerLoop runs on the spawned thread, not under lifecycle_mu_; the
    // lock only covers the spawn. fablint:allow(conc-blocking-under-lock)
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void BatchServer::Shutdown() {
  // lifecycle_mu_ is held for the whole stop-drain-join sequence, so a
  // concurrent Start/Shutdown pair serializes: either the restart sees a
  // fully joined server, or the shutdown joins the freshly started
  // workers. Lock order lifecycle_mu_ -> mu_ matches Start().
  util::MutexLock lifecycle(lifecycle_mu_);
  std::vector<Request> abandoned;
  {
    util::MutexLock lock(mu_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
    cv_.NotifyAll();
    if (!workers_.empty()) {
      // Bounded drain: workers keep batching while we wait; whatever is
      // still queued at the deadline is pulled out and failed explicitly
      // below. With the queue empty the workers' wait loops exit.
      if (options_.shutdown_drain_ms < 0) {
        while (!queue_.empty()) drained_cv_.Wait(mu_);
      } else {
        const auto deadline =
            obs::Clock::Now() +
            std::chrono::milliseconds(options_.shutdown_drain_ms);
        while (!queue_.empty()) {
          if (!drained_cv_.WaitUntil(mu_, deadline)) break;  // timed out
        }
      }
    }
    while (!queue_.empty()) {
      abandoned.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
  }
  cv_.NotifyAll();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  // Accepted requests are never silently lost: each one left at the
  // drain deadline resolves with an explicit error, after the workers
  // are gone (so completion order is deterministic per request).
  requests_abandoned_.fetch_add(abandoned.size(), std::memory_order_relaxed);
  for (Request& request : abandoned) {
    Complete(std::move(request),
             Status::Unavailable("shutdown deadline: request not served"));
  }
}

void BatchServer::Complete(Request request, Result<double> result) {
  // Re-install the request's trace context: callbacks (PredictState
  // completion, Responder::Send) run on a batch worker or the shutdown
  // thread, neither of which carries it naturally.
  obs::ScopedTraceId scope(request.trace_id);
  if (request.callback) {
    request.callback(std::move(result));
  } else {
    request.promise.set_value(std::move(result));
  }
}

// fablint:hot — per-request admission; runs under mu_ on every Submit.
Status BatchServer::Enqueue(Request request) {
  {
    util::MutexLock lock(mu_);
    if (stopping_) {
      return Status::FailedPrecondition("server is shut down");
    }
    if (options_.max_queue != 0 && queue_.size() >= options_.max_queue) {
      requests_rejected_.fetch_add(1, std::memory_order_relaxed);
      // Shed path only: the request is rejected, so formatting the
      // diagnostic is off the served-request path by construction.
      return Status::Unavailable(
          // fablint:allow(perf-hot-alloc)
          "queue full: " + std::to_string(queue_.size()) + " of " +
          // fablint:allow(perf-hot-alloc)
          std::to_string(options_.max_queue) + " slots in use");
    }
    // Deque block allocation is amortized and bounded by max_queue; no
    // reserve() exists on std::deque. fablint:allow(perf-hot-alloc)
    queue_.push_back(std::move(request));
  }
  {
    util::MutexLock lock(stats_mu_);
    if (!have_first_submit_) {
      have_first_submit_ = true;
      first_submit_ = obs::Clock::Now();
    }
  }
  cv_.NotifyOne();
  return Status::OK();
}
// fablint:endhot

Result<std::future<Result<double>>> BatchServer::Submit(
    std::vector<double> features) {
  const size_t expected = num_features_.load();
  if (expected != 0 && features.size() != expected) {
    return Status::InvalidArgument(
        "feature count mismatch: got " + std::to_string(features.size()) +
        ", model expects " + std::to_string(expected));
  }
  Request request;
  request.features = std::move(features);
  request.enqueued = obs::Clock::Now();
  request.trace_id = obs::CurrentTraceId();
  std::future<Result<double>> future = request.promise.get_future();
  FAB_RETURN_IF_ERROR(Enqueue(std::move(request)));
  return future;
}

Result<std::future<Result<double>>> BatchServer::SubmitTo(
    std::shared_ptr<const Servable> model, std::vector<double> features) {
  if (model == nullptr) {
    return Status::InvalidArgument("SubmitTo requires a non-null model");
  }
  const size_t expected = model->num_features();
  if (expected != 0 && features.size() != expected) {
    return Status::InvalidArgument(
        "feature count mismatch: got " + std::to_string(features.size()) +
        ", model expects " + std::to_string(expected));
  }
  Request request;
  request.features = std::move(features);
  request.model = std::move(model);
  request.enqueued = obs::Clock::Now();
  request.trace_id = obs::CurrentTraceId();
  std::future<Result<double>> future = request.promise.get_future();
  FAB_RETURN_IF_ERROR(Enqueue(std::move(request)));
  return future;
}

Status BatchServer::SubmitWithCallback(std::shared_ptr<const Servable> model,
                                       std::vector<double> features,
                                       Callback done) {
  if (model == nullptr) {
    return Status::InvalidArgument(
        "SubmitWithCallback requires a non-null model");
  }
  if (!done) {
    return Status::InvalidArgument(
        "SubmitWithCallback requires a completion callback");
  }
  const size_t expected = model->num_features();
  if (expected != 0 && features.size() != expected) {
    return Status::InvalidArgument(
        "feature count mismatch: got " + std::to_string(features.size()) +
        ", model expects " + std::to_string(expected));
  }
  Request request;
  request.features = std::move(features);
  request.model = std::move(model);
  request.callback = std::move(done);
  request.enqueued = obs::Clock::Now();
  request.trace_id = obs::CurrentTraceId();
  return Enqueue(std::move(request));
}

Result<double> BatchServer::Forecast(std::vector<double> features) {
  FAB_ASSIGN_OR_RETURN(std::future<Result<double>> future,
                       Submit(std::move(features)));
  return future.get();
}

void BatchServer::UpdateModel(std::shared_ptr<const Servable> model) {
  util::MutexLock lock(mu_);
  model_ = std::move(model);
  if (model_ != nullptr) num_features_ = model_->num_features();
}

size_t BatchServer::QueueDepth() const {
  util::MutexLock lock(mu_);
  return queue_.size();
}

double BatchServer::EstimatedQueueWaitUs() const {
  const double row_us = ema_row_service_us_.load(std::memory_order_relaxed);
  if (row_us <= 0.0) return 0.0;
  size_t depth;
  {
    util::MutexLock lock(mu_);
    depth = queue_.size();
  }
  const int threads = util::ResolveThreads(options_.num_threads);
  return static_cast<double>(depth) * row_us /
         static_cast<double>(threads > 0 ? threads : 1);
}

void BatchServer::WorkerLoop() {
  while (true) {
    std::vector<Request> batch;
    std::shared_ptr<const Servable> model;
    {
      util::MutexLock lock(mu_);
      // Explicit wait loops over FAB_GUARDED_BY state (no predicate
      // lambdas): the analysis then proves every read of queue_ and
      // stopping_ happens with mu_ held.
      while (!stopping_ && queue_.empty()) cv_.Wait(mu_);
      if (queue_.empty()) return;  // stopping and fully drained
      if (queue_.size() < options_.max_batch && options_.coalesce_wait_us > 0 &&
          !stopping_) {
        // Hold the batch open briefly so bursty single-row traffic
        // coalesces instead of running one row at a time.
        const auto deadline =
            obs::Clock::Now() +
            std::chrono::microseconds(options_.coalesce_wait_us);
        while (!stopping_ && queue_.size() < options_.max_batch) {
          if (!cv_.WaitUntil(mu_, deadline)) break;  // timed out
        }
        // Another worker may have drained the queue while we waited.
        if (queue_.empty()) continue;
      }
      // Extract the maximal same-model run: rows for the front request's
      // effective model coalesce into one batch; requests for other
      // models are put back in their original relative order and picked
      // up by the next extraction. A default-model request (null model)
      // and an explicit submit to that same servable batch together.
      model = queue_.front().model != nullptr ? queue_.front().model : model_;
      std::vector<Request> skipped;
      while (!queue_.empty() && batch.size() < options_.max_batch) {
        Request request = std::move(queue_.front());
        queue_.pop_front();
        const Servable* effective =
            request.model != nullptr ? request.model.get() : model_.get();
        if (effective == model.get()) {
          batch.push_back(std::move(request));
        } else {
          skipped.push_back(std::move(request));
        }
      }
      for (auto it = skipped.rbegin(); it != skipped.rend(); ++it) {
        queue_.push_front(std::move(*it));
      }
      if (!skipped.empty()) cv_.NotifyOne();  // other-model work remains
      if (queue_.empty()) drained_cv_.NotifyAll();
    }
    if (!batch.empty()) RunBatch(std::move(batch), model);
  }
}

void BatchServer::RunBatch(std::vector<Request> batch,
                           const std::shared_ptr<const Servable>& model) {
  const size_t rows = batch.size();
  FAB_TRACE_SCOPE("serve/batch", {{"rows", rows}});
  // Queue wait ends here: the requests just left the queue for a batch.
  const obs::Clock::time_point batch_start = obs::Clock::Now();
  for (const Request& request : batch) {
    // Explicit trace id: the batch thread has no request context of its
    // own, but each row remembers who submitted it.
    queue_wait_us_hist_.Record(
        obs::Clock::MicrosBetween(request.enqueued, batch_start),
        request.trace_id);
  }
  batch_size_hist_.Record(static_cast<double>(rows));
  const size_t expected =
      model != nullptr ? model->num_features() : num_features_.load();
  const size_t cols = expected != 0 ? expected : batch.front().features.size();
  ml::ColMatrix x(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    const std::vector<double>& features = batch[r].features;
    for (size_t c = 0; c < cols && c < features.size(); ++c) {
      x.set(r, c, features[c]);
    }
  }
  std::vector<double> pred =
      model != nullptr ? model->Predict(x) : std::vector<double>(rows, 0.0);
  const obs::Clock::time_point done = obs::Clock::Now();
  // Feed the admission estimator: per-row service time for this batch.
  EmaUpdate(ema_row_service_us_,
            obs::Clock::MicrosBetween(batch_start, done) /
                static_cast<double>(rows),
            /*alpha=*/0.25);
  // End-to-end latency lands in the bounded histogram — no sample cap,
  // no unbounded vector, O(1) memory for any request volume. Each row
  // also drops a per-request span into the flight ring: the shard-batch
  // leg of the request's /tracez span tree (enqueue → completion).
  for (const Request& request : batch) {
    latency_us_hist_.Record(obs::Clock::MicrosBetween(request.enqueued, done),
                            request.trace_id);
    obs::FlightRecordSpan("serve/request", request.trace_id, request.enqueued,
                          done);
  }
  {
    // Record stats before fulfilling the promises: once a caller's future
    // resolves, a subsequent Stats() call must already count that request.
    util::MutexLock lock(stats_mu_);
    requests_completed_ += rows;
    batches_run_ += 1;
    last_complete_ = done;
  }
  for (size_t r = 0; r < rows; ++r) {
    Complete(std::move(batch[r]), pred[r]);
  }
}

BatchServerStats BatchServer::Stats() const {
  BatchServerStats stats;
  // Histogram readouts are lock-free; only the scalar counters need
  // stats_mu_. See BatchServerStats for the percentile error contract.
  stats.p50_latency_us = latency_us_hist_.Percentile(0.50);
  stats.p95_latency_us = latency_us_hist_.Percentile(0.95);
  stats.p99_latency_us = latency_us_hist_.Percentile(0.99);
  stats.max_latency_us = latency_us_hist_.Max();
  stats.p99_batch_size = batch_size_hist_.Percentile(0.99);
  stats.p50_queue_wait_us = queue_wait_us_hist_.Percentile(0.50);
  stats.p99_queue_wait_us = queue_wait_us_hist_.Percentile(0.99);
  stats.requests_rejected = requests_rejected_.load(std::memory_order_relaxed);
  stats.requests_abandoned =
      requests_abandoned_.load(std::memory_order_relaxed);
  util::MutexLock lock(stats_mu_);
  stats.requests_completed = requests_completed_;
  stats.batches_run = batches_run_;
  stats.mean_batch_size =
      batches_run_ > 0 ? static_cast<double>(requests_completed_) /
                             static_cast<double>(batches_run_)
                       : 0.0;
  if (have_first_submit_ && requests_completed_ > 0) {
    const double span =
        std::chrono::duration<double>(last_complete_ - first_submit_).count();
    if (span > 0.0) {
      stats.rows_per_sec = static_cast<double>(requests_completed_) / span;
    }
  }
  return stats;
}

std::string BatchServer::StatszJson() const {
  const BatchServerStats stats = Stats();
  std::string out;
  out.reserve(1024);
  out += "{\"requests_completed\":" + std::to_string(stats.requests_completed);
  out += ",\"requests_rejected\":" + std::to_string(stats.requests_rejected);
  out += ",\"requests_abandoned\":" + std::to_string(stats.requests_abandoned);
  out += ",\"batches_run\":" + std::to_string(stats.batches_run);
  out += ",\"mean_batch_size\":" + JsonNumber(stats.mean_batch_size);
  out += ",\"rows_per_sec\":" + JsonNumber(stats.rows_per_sec);
  out += ",\"queue_depth\":" + std::to_string(QueueDepth());
  out += ",\"est_queue_wait_us\":" + JsonNumber(EstimatedQueueWaitUs());
  out += ",\"latency_us\":" + latency_us_hist_.ToJson();
  out += ",\"batch_size\":" + batch_size_hist_.ToJson();
  out += ",\"queue_wait_us\":" + queue_wait_us_hist_.ToJson();
  out += "}";
  return out;
}

}  // namespace fab::serve
