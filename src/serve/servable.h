#ifndef FAB_SERVE_SERVABLE_H_
#define FAB_SERVE_SERVABLE_H_

#include <memory>
#include <string>

#include "ml/estimator.h"
#include "serve/flat_forest.h"
#include "util/status.h"

namespace fab::serve {

/// An immutable, ready-to-serve model: the fitted regressor plus (for
/// tree ensembles) its flattened inference kernel. Handed out as
/// `shared_ptr<const Servable>` so a registry hot-swap never invalidates
/// a model an in-flight batch is still using.
class Servable {
 public:
  /// Wraps a fitted model, pre-building the flat kernel when the model is
  /// a tree ensemble. Models the flattener does not know (e.g. the MLP)
  /// are served through the virtual Predict path.
  [[nodiscard]] static Result<std::shared_ptr<const Servable>> Wrap(
      std::unique_ptr<ml::Regressor> model);

  /// Batched predictions — the flat kernel when available, else the
  /// model's own (possibly overridden) Predict.
  std::vector<double> Predict(const ml::ColMatrix& x) const;

  /// Single-row prediction.
  double PredictOne(const ml::ColMatrix& x, size_t row) const;

  const ml::Regressor& model() const { return *model_; }
  bool flattened() const { return !flat_.empty(); }
  const FlatForest& flat() const { return flat_; }

  /// Feature count the model was fitted on (0 when unknown).
  size_t num_features() const { return num_features_; }

 private:
  Servable(std::unique_ptr<ml::Regressor> model, FlatForest flat,
           size_t num_features)
      : model_(std::move(model)),
        flat_(std::move(flat)),
        num_features_(num_features) {}

  std::unique_ptr<ml::Regressor> model_;
  FlatForest flat_;
  size_t num_features_ = 0;
};

}  // namespace fab::serve

#endif  // FAB_SERVE_SERVABLE_H_
