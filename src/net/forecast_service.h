#ifndef FAB_NET_FORECAST_SERVICE_H_
#define FAB_NET_FORECAST_SERVICE_H_

#include <memory>
#include <string>

#include "net/debugz.h"
#include "net/http_server.h"
#include "net/shard_router.h"
#include "util/status.h"

namespace fab::net {

/// Maps a fab::Status to the HTTP status code the serving API uses:
/// OK→200, InvalidArgument→400, NotFound→404, Unavailable→429,
/// FailedPrecondition→503, anything else→500.
int HttpStatusFor(const Status& status);

/// The JSON forecast API over a ShardedRouter.
///
///   POST /predict   {"period":"2017","window":7,"model":"rf",
///                    "rows":[[f0,f1,...],...]}
///                   → 200 {"forecasts":[...],"shard":N}
///                   → 429 {"error":...} + Retry-After when shedding
///   GET  /statusz   router shard statsz + full obs metrics export
///   GET  /healthz   200 {"status":"ok"}
///
/// RegisterRoutes also mounts the DebugService surfaces (/tracez, /rpcz,
/// /metricsz) on the same server, so every forecast front-end is
/// debuggable out of the box.
///
/// Handlers are non-blocking: /predict fans each row into the shard's
/// BatchServer via SubmitWithCallback and the LAST completion serializes
/// and sends the response — no handler thread ever parks on a forecast,
/// which is what lets a small worker pool sustain thousands of in-flight
/// rows. Stateless apart from the router pointer; thread-safe.
class ForecastService {
 public:
  /// `router` is borrowed and must outlive the service.
  explicit ForecastService(ShardedRouter* router) : router_(router) {}

  /// Registers /predict, /statusz and /healthz on `server`, plus the
  /// DebugService routes (/tracez, /rpcz, /metricsz). Call before
  /// HttpServer::Start.
  void RegisterRoutes(HttpServer* server);

  void HandlePredict(const HttpRequest& request, Responder responder);
  void HandleStatusz(const HttpRequest& request, Responder responder);
  void HandleHealthz(const HttpRequest& request, Responder responder);

 private:
  ShardedRouter* const router_;
  /// Created lazily by RegisterRoutes (it needs the server pointer);
  /// owns nothing beyond its borrowed pointers.
  std::unique_ptr<DebugService> debug_;
};

}  // namespace fab::net

#endif  // FAB_NET_FORECAST_SERVICE_H_
