#ifndef FAB_NET_JSON_H_
#define FAB_NET_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace fab::net {

/// A parsed JSON document node.
///
/// Recursive-descent parsed (ParseJson below), depth- and size-bounded so
/// a hostile request body cannot recurse the stack away or allocate
/// unboundedly. The serving layer only *reads* JSON through this type;
/// response JSON is rendered with the same hand-built string style the
/// rest of the codebase uses (bench_common, StatszJson), so there is no
/// writer here beyond EscapeJson.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool bool_value() const { return bool_; }
  double number() const { return number_; }
  const std::string& str() const { return string_; }
  const std::vector<JsonValue>& array() const { return array_; }
  const std::map<std::string, JsonValue>& object() const { return object_; }

  /// Object member lookup; null when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  /// Typed member accessors for the common "required field" pattern:
  /// fail with InvalidArgument naming the key when absent or mistyped.
  [[nodiscard]] Result<std::string> GetString(const std::string& key) const;
  [[nodiscard]] Result<double> GetNumber(const std::string& key) const;

 private:
  friend class JsonParser;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Parses one complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected). `max_depth` bounds nesting; input size is
/// bounded by the HTTP layer's body limit before it ever reaches here.
[[nodiscard]] Result<JsonValue> ParseJson(const std::string& text, int max_depth = 64);

/// Renders `s` as a double-quoted JSON string literal (with escapes).
std::string EscapeJson(const std::string& s);

}  // namespace fab::net

#endif  // FAB_NET_JSON_H_
