#include "net/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace fab::net {

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

Result<std::string> JsonValue::GetString(const std::string& key) const {
  const JsonValue* v = Find(key);
  if (v == nullptr || !v->is_string()) {
    return Status::InvalidArgument("missing or non-string field \"" + key +
                                   "\"");
  }
  return v->str();
}

Result<double> JsonValue::GetNumber(const std::string& key) const {
  const JsonValue* v = Find(key);
  if (v == nullptr || !v->is_number()) {
    return Status::InvalidArgument("missing or non-number field \"" + key +
                                   "\"");
  }
  return v->number();
}

/// Single-pass recursive-descent parser over a complete in-memory
/// document. Position-tracked errors ("at byte N") make malformed client
/// requests debuggable from the 400 response alone.
class JsonParser {
 public:
  JsonParser(const std::string& text, int max_depth)
      : text_(text), max_depth_(max_depth) {}

  Result<JsonValue> Parse() {
    FAB_ASSIGN_OR_RETURN(JsonValue value, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument(what + " at byte " + std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* lit) {
    const size_t n = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue(int depth) {
    if (depth > max_depth_) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        FAB_ASSIGN_OR_RETURN(std::string s, ParseString());
        JsonValue v;
        v.type_ = JsonValue::Type::kString;
        v.string_ = std::move(s);
        return v;
      }
      case 't':
      case 'f': {
        JsonValue v;
        v.type_ = JsonValue::Type::kBool;
        if (ConsumeLiteral("true")) {
          v.bool_ = true;
          return v;
        }
        if (ConsumeLiteral("false")) {
          v.bool_ = false;
          return v;
        }
        return Error("invalid literal");
      }
      case 'n':
        if (ConsumeLiteral("null")) return JsonValue();
        return Error("invalid literal");
      default:
        return ParseNumber();
    }
  }

  Result<JsonValue> ParseObject(int depth) {
    Consume('{');
    JsonValue v;
    v.type_ = JsonValue::Type::kObject;
    SkipWhitespace();
    if (Consume('}')) return v;
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      FAB_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      FAB_ASSIGN_OR_RETURN(JsonValue member, ParseValue(depth + 1));
      v.object_[std::move(key)] = std::move(member);
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return v;
      return Error("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray(int depth) {
    Consume('[');
    JsonValue v;
    v.type_ = JsonValue::Type::kArray;
    SkipWhitespace();
    if (Consume(']')) return v;
    while (true) {
      FAB_ASSIGN_OR_RETURN(JsonValue element, ParseValue(depth + 1));
      v.array_.push_back(std::move(element));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return v;
      return Error("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    Consume('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Error("invalid \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // needed by any fab payload; reject rather than mis-encode).
          if (code >= 0xD800 && code <= 0xDFFF) {
            return Error("surrogate \\u escapes unsupported");
          }
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a JSON value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || end == token.c_str()) {
      pos_ = start;
      return Error("malformed number");
    }
    JsonValue v;
    v.type_ = JsonValue::Type::kNumber;
    v.number_ = parsed;
    return v;
  }

  const std::string& text_;
  const int max_depth_;
  size_t pos_ = 0;
};

Result<JsonValue> ParseJson(const std::string& text, int max_depth) {
  return JsonParser(text, max_depth).Parse();
}

std::string EscapeJson(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

}  // namespace fab::net
