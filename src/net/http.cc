#include "net/http.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace fab::net {

namespace {

bool EqualsIgnoreCase(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

const std::string* FindHeader(
    const std::vector<std::pair<std::string, std::string>>& headers,
    const std::string& name) {
  for (const auto& [key, value] : headers) {
    if (EqualsIgnoreCase(key, name)) return &value;
  }
  return nullptr;
}

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t')) --e;
  return s.substr(b, e - b);
}

}  // namespace

const std::string* HttpRequest::Header(const std::string& name) const {
  return FindHeader(headers, name);
}

bool HttpRequest::KeepAlive() const {
  const std::string* connection = Header("Connection");
  if (connection != nullptr) {
    if (EqualsIgnoreCase(*connection, "close")) return false;
    if (EqualsIgnoreCase(*connection, "keep-alive")) return true;
  }
  return version != "HTTP/1.0";  // 1.1 default is persistent
}

const std::string* HttpResponse::Header(const std::string& name) const {
  return FindHeader(headers, name);
}

HttpResponse HttpResponse::Json(int status_code, std::string body) {
  HttpResponse response;
  response.status_code = status_code;
  response.reason = ReasonPhrase(status_code);
  response.headers.emplace_back("Content-Type", "application/json");
  response.body = std::move(body);
  return response;
}

std::string HttpResponse::Serialize(bool keep_alive) const {
  std::string out = "HTTP/1.1 " + std::to_string(status_code) + " " +
                    (reason.empty() ? ReasonPhrase(status_code) : reason) +
                    "\r\n";
  for (const auto& [key, value] : headers) {
    out += key + ": " + value + "\r\n";
  }
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  out += "\r\n";
  out += body;
  return out;
}

const char* ReasonPhrase(int status_code) {
  switch (status_code) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Content Too Large";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

HttpParser::HttpParser(Mode mode) : HttpParser(mode, Limits()) {}

HttpParser::HttpParser(Mode mode, Limits limits)
    : mode_(mode), limits_(limits) {}

Status HttpParser::Fail(const std::string& what) {
  phase_ = Phase::kError;
  buffer_.clear();
  return Status::InvalidArgument("http parse: " + what);
}

// fablint:hot — per-read ingest on the IO thread; one amortized append,
// no other allocation.
Status HttpParser::Consume(const char* data, size_t n) {
  if (phase_ == Phase::kError) {
    return Status::FailedPrecondition("http parser in error state");
  }
  buffer_.append(data, n);
  return TryParse();
}
// fablint:endhot

Status HttpParser::TryParse() {
  if (phase_ == Phase::kHead) {
    const size_t head_end = buffer_.find("\r\n\r\n");
    if (head_end == std::string::npos) {
      if (buffer_.size() > limits_.max_head_bytes) {
        return Fail("header section exceeds " +
                    std::to_string(limits_.max_head_bytes) + " bytes");
      }
      return Status::OK();  // need more bytes
    }
    // The bound must also hold when the terminator arrived in the same
    // Consume call that blew the limit — not only mid-accumulation.
    if (head_end > limits_.max_head_bytes) {
      return Fail("header section exceeds " +
                  std::to_string(limits_.max_head_bytes) + " bytes");
    }
    FAB_RETURN_IF_ERROR(ParseHead(buffer_.substr(0, head_end)));
    buffer_.erase(0, head_end + 4);
    phase_ = Phase::kBody;
  }
  if (phase_ == Phase::kBody) {
    if (buffer_.size() < body_expected_) return Status::OK();
    std::string& body =
        mode_ == Mode::kRequest ? request_.body : response_.body;
    body = buffer_.substr(0, body_expected_);
    buffer_.erase(0, body_expected_);  // surplus stays for the next message
    phase_ = Phase::kDone;
  }
  return Status::OK();
}

Status HttpParser::ParseHead(const std::string& head) {
  std::vector<std::pair<std::string, std::string>>* headers = nullptr;
  size_t line_end = head.find("\r\n");
  const std::string first =
      head.substr(0, line_end == std::string::npos ? head.size() : line_end);
  if (mode_ == Mode::kRequest) {
    request_ = HttpRequest();
    const size_t sp1 = first.find(' ');
    const size_t sp2 = first.rfind(' ');
    if (sp1 == std::string::npos || sp2 == sp1) {
      return Fail("malformed request line");
    }
    request_.method = first.substr(0, sp1);
    request_.target = first.substr(sp1 + 1, sp2 - sp1 - 1);
    request_.version = first.substr(sp2 + 1);
    if (request_.method.empty() || request_.target.empty() ||
        request_.version.rfind("HTTP/", 0) != 0) {
      return Fail("malformed request line");
    }
    headers = &request_.headers;
  } else {
    response_ = HttpResponse();
    if (first.rfind("HTTP/", 0) != 0) return Fail("malformed status line");
    const size_t sp1 = first.find(' ');
    if (sp1 == std::string::npos) return Fail("malformed status line");
    const size_t sp2 = first.find(' ', sp1 + 1);
    const std::string code_token =
        first.substr(sp1 + 1, sp2 == std::string::npos ? std::string::npos
                                                       : sp2 - sp1 - 1);
    char* end = nullptr;
    const long code = std::strtol(code_token.c_str(), &end, 10);
    if (end == code_token.c_str() || *end != '\0' || code < 100 ||
        code > 599) {
      return Fail("malformed status code");
    }
    response_.status_code = static_cast<int>(code);
    response_.reason =
        sp2 == std::string::npos ? std::string() : first.substr(sp2 + 1);
    headers = &response_.headers;
  }

  // Header lines: `Name: value`, no obsolete line folding.
  size_t pos = line_end == std::string::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    size_t next = head.find("\r\n", pos);
    if (next == std::string::npos) next = head.size();
    const std::string line = head.substr(pos, next - pos);
    pos = next + 2;
    if (line.empty()) continue;
    if (line[0] == ' ' || line[0] == '\t') {
      return Fail("obsolete header folding unsupported");
    }
    const size_t colon = line.find(':');
    if (colon == std::string::npos || colon == 0) {
      return Fail("malformed header line");
    }
    (*headers).emplace_back(line.substr(0, colon),
                            Trim(line.substr(colon + 1)));
  }

  body_expected_ = 0;
  const std::string* content_length = FindHeader(*headers, "Content-Length");
  if (content_length != nullptr) {
    char* end = nullptr;
    const unsigned long long parsed =
        std::strtoull(content_length->c_str(), &end, 10);
    if (end == content_length->c_str() || *end != '\0') {
      return Fail("malformed Content-Length");
    }
    if (parsed > limits_.max_body_bytes) {
      return Fail("body of " + std::to_string(parsed) + " bytes exceeds " +
                  std::to_string(limits_.max_body_bytes) + "-byte limit");
    }
    body_expected_ = static_cast<size_t>(parsed);
  }
  if (FindHeader(*headers, "Transfer-Encoding") != nullptr) {
    return Fail("chunked transfer encoding unsupported");
  }
  return Status::OK();
}

Status HttpParser::Reset() {
  if (phase_ != Phase::kDone) {
    return Status::FailedPrecondition("Reset before message complete");
  }
  request_ = HttpRequest();
  response_ = HttpResponse();
  body_expected_ = 0;
  phase_ = Phase::kHead;
  // Surplus bytes already received (pipelined next message) parse now.
  return TryParse();
}

}  // namespace fab::net
