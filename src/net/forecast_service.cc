#include "net/forecast_service.h"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "net/json.h"
#include "util/mutex.h"
#include "util/obs/metrics.h"
#include "util/obs/trace.h"
#include "util/thread_annotations.h"

namespace fab::net {

namespace {

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) {
    return v > 0 ? "\"inf\"" : (v < 0 ? "\"-inf\"" : "\"nan\"");
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

HttpResponse ErrorResponse(const Status& status) {
  return HttpResponse::Json(
      HttpStatusFor(status),
      "{\"error\":" + EscapeJson(status.ToString()) + "}");
}

/// Shared completion state for one /predict request: rows fan out to
/// the shard's BatchServer, callbacks land here, and whichever
/// completion drives `remaining` to zero serializes and sends the
/// response. Row slots are index-owned (each callback writes only
/// forecasts[i]), so the only cross-thread coordination is the counter
/// and the first-error latch.
struct PredictState {
  std::vector<double> forecasts;
  std::atomic<size_t> remaining{0};
  Responder responder;
  size_t shard = 0;
  int retry_after_s = 1;

  util::Mutex mu;
  Status first_error FAB_GUARDED_BY(mu);

  explicit PredictState(Responder r) : responder(std::move(r)) {}

  void RecordError(const Status& status) {
    util::MutexLock lock(mu);
    if (first_error.ok()) first_error = status;
  }

  /// Called exactly once, by whoever completes the last row.
  void Finish() {
    Status error;
    {
      util::MutexLock lock(mu);
      error = first_error;
    }
    if (!error.ok()) {
      HttpResponse response = ErrorResponse(error);
      if (response.status_code == 429) {
        response.headers.emplace_back("Retry-After",
                                      std::to_string(retry_after_s));
      }
      responder.Send(std::move(response));
      return;
    }
    std::string body = "{\"forecasts\":[";
    for (size_t i = 0; i < forecasts.size(); ++i) {
      if (i != 0) body += ",";
      body += JsonNumber(forecasts[i]);
    }
    body += "],\"shard\":" + std::to_string(shard) + "}";
    responder.Send(HttpResponse::Json(200, std::move(body)));
  }

  void CompleteOne() {
    if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) Finish();
  }
};

}  // namespace

int HttpStatusFor(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk: return 200;
    case StatusCode::kInvalidArgument: return 400;
    case StatusCode::kNotFound: return 404;
    case StatusCode::kUnavailable: return 429;
    case StatusCode::kFailedPrecondition: return 503;
    default: return 500;
  }
}

void ForecastService::RegisterRoutes(HttpServer* server) {
  server->Handle("POST", "/predict",
                 [this](const HttpRequest& request, Responder responder) {
                   HandlePredict(request, std::move(responder));
                 });
  server->Handle("GET", "/statusz",
                 [this](const HttpRequest& request, Responder responder) {
                   HandleStatusz(request, std::move(responder));
                 });
  server->Handle("GET", "/healthz",
                 [this](const HttpRequest& request, Responder responder) {
                   HandleHealthz(request, std::move(responder));
                 });
  debug_ = std::make_unique<DebugService>(server, router_);
  debug_->RegisterRoutes(server);
}

void ForecastService::HandlePredict(const HttpRequest& request,
                                    Responder responder) {
  FAB_TRACE_SCOPE("net/predict");
  Result<JsonValue> parsed = ParseJson(request.body);
  if (!parsed.ok()) {
    responder.Send(ErrorResponse(parsed.status()));
    return;
  }
  const JsonValue& doc = *parsed;

  serve::ModelKey key;
  Result<std::string> period = doc.GetString("period");
  Result<std::string> model = doc.GetString("model");
  Result<double> window = doc.GetNumber("window");
  if (!period.ok() || !model.ok() || !window.ok()) {
    responder.Send(ErrorResponse(Status::InvalidArgument(
        "body requires string \"period\", string \"model\" and number "
        "\"window\"")));
    return;
  }
  key.period = std::move(*period);
  key.model = std::move(*model);
  key.window = static_cast<int>(*window);
  if (static_cast<double>(key.window) != *window || key.window < 1) {
    responder.Send(ErrorResponse(
        Status::InvalidArgument("\"window\" must be a positive integer")));
    return;
  }

  const JsonValue* rows = doc.Find("rows");
  if (rows == nullptr || !rows->is_array() || rows->array().empty()) {
    responder.Send(ErrorResponse(Status::InvalidArgument(
        "body requires a non-empty \"rows\" array of feature arrays")));
    return;
  }
  std::vector<std::vector<double>> features;
  features.reserve(rows->array().size());
  for (const JsonValue& row : rows->array()) {
    if (!row.is_array()) {
      responder.Send(ErrorResponse(Status::InvalidArgument(
          "every \"rows\" entry must be an array of numbers")));
      return;
    }
    std::vector<double> values;
    values.reserve(row.array().size());
    for (const JsonValue& cell : row.array()) {
      if (!cell.is_number()) {
        responder.Send(ErrorResponse(Status::InvalidArgument(
            "every feature must be a number")));
        return;
      }
      values.push_back(cell.number());
    }
    features.push_back(std::move(values));
  }

  auto state = std::make_shared<PredictState>(std::move(responder));
  const size_t n = features.size();
  state->forecasts.assign(n, 0.0);
  state->shard = router_->ShardFor(key);
  state->retry_after_s = router_->RetryAfterSeconds(state->shard);
  // +1 sentinel held by this handler: Finish cannot fire until every
  // row has been submitted (or synchronously refused), no matter how
  // fast the callbacks land.
  state->remaining.store(n + 1, std::memory_order_relaxed);

  for (size_t i = 0; i < n; ++i) {
    Admission admission = Admission::kAdmitted;
    const Status submitted = router_->Submit(
        key, std::move(features[i]),
        [state, i](Result<double> result) {
          if (result.ok()) {
            state->forecasts[i] = *result;
          } else {
            state->RecordError(result.status());
          }
          state->CompleteOne();
        },
        &admission);
    if (!submitted.ok()) {
      // Callback never fires for a refused row: settle it here.
      state->RecordError(submitted);
      state->CompleteOne();
    }
  }
  state->CompleteOne();  // release the sentinel
}

void ForecastService::HandleStatusz(const HttpRequest& request,
                                    Responder responder) {
  (void)request;
  FAB_TRACE_SCOPE("net/statusz");
  std::string body = "{\"router\":" + router_->StatszJson() +
                     ",\"metrics\":" + obs::ExportMetrics() + "}";
  responder.Send(HttpResponse::Json(200, std::move(body)));
}

void ForecastService::HandleHealthz(const HttpRequest& request,
                                    Responder responder) {
  (void)request;
  responder.Send(HttpResponse::Json(200, "{\"status\":\"ok\"}"));
}

}  // namespace fab::net
