#include "net/http_server.h"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <deque>
#include <vector>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "net/json.h"
#include "util/obs/flight.h"
#include "util/obs/trace.h"
#include "util/obs/trace_context.h"

namespace fab::net {

namespace internal {

/// The only state shared between handler threads and the IO thread.
/// Owns the write end of the wakeup pipe for its whole lifetime, so a
/// racing Responder::Send can never write into a recycled descriptor.
struct ServerCore {
  struct Pending {
    int fd = -1;
    uint64_t conn_id = 0;
    uint64_t exchange = 0;
    HttpResponse response;
  };

  util::Mutex mu;
  std::deque<Pending> queue FAB_GUARDED_BY(mu);
  bool alive FAB_GUARDED_BY(mu) = true;
  /// Written once before the IO thread starts, then read-only.
  int wakeup_write_fd = -1;

  ~ServerCore() {
    if (wakeup_write_fd >= 0) ::close(wakeup_write_fd);
  }
};

}  // namespace internal

namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

/// Path component of a request target ("/predict?x=1" → "/predict").
std::string PathOf(const std::string& target) {
  const size_t q = target.find('?');
  return q == std::string::npos ? target : target.substr(0, q);
}

/// A client that resets its connection while a response is flushing (or
/// a wakeup-pipe write racing shutdown's close of the read end) must
/// surface as EPIPE, not kill the process. Socket writes also pass
/// MSG_NOSIGNAL, but that cannot cover pipes, so the signal disposition
/// is the backstop. Process-wide, set once, never restored: a serving
/// binary has no use for the default terminate-on-SIGPIPE.
void IgnoreSigpipeOnce() {
  static const bool ignored = [] {
    (void)std::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)ignored;
}

}  // namespace

void Responder::Send(HttpResponse response) const {
  // Re-install the request's trace context: Send may run on an async
  // completion thread (batch worker, timer) that doesn't carry it.
  obs::ScopedTraceId scope(trace_id_);
  FAB_TRACE_SCOPE("net/send", {{"status", response.status_code}});
  // Holding the shared_ptr across the whole call keeps the pipe's write
  // end open even if the server is torn down concurrently.
  std::shared_ptr<internal::ServerCore> core = core_.lock();
  if (core == nullptr) return;
  {
    util::MutexLock lock(core->mu);
    if (!core->alive) return;  // server gone: the socket no longer exists
    internal::ServerCore::Pending pending;
    pending.fd = fd_;
    pending.conn_id = conn_id_;
    pending.exchange = exchange_;
    pending.response = std::move(response);
    core->queue.push_back(std::move(pending));
  }
  const char byte = 'r';
  // Nonblocking: a full pipe is fine, the loop is already awake.
  (void)!::write(core->wakeup_write_fd, &byte, 1);
}

HttpServer::HttpServer(HttpServerOptions options)
    : options_(std::move(options)) {}

HttpServer::~HttpServer() { Shutdown(); }

void HttpServer::Handle(std::string method, std::string path,
                        Handler handler) {
  route_stats_.try_emplace({method, path});  // node-stable; see RouteStats
  routes_[{std::move(method), std::move(path)}] = std::move(handler);
}

std::string HttpServer::RpczJson() const {
  std::string out;
  out.reserve(128 + 320 * route_stats_.size());
  out += "{\"endpoints\":[";
  bool first = true;
  for (const auto& [key, stats] : route_stats_) {
    if (!first) out += ",";
    first = false;
    out += "{\"method\":" + EscapeJson(key.first);
    out += ",\"path\":" + EscapeJson(key.second);
    out += ",\"requests\":" + std::to_string(stats.requests.Value());
    out += ",\"errors\":" + std::to_string(stats.errors.Value());
    out += ",\"latency_us\":" + stats.latency_us.ToJson();
    out += "}";
  }
  out += "]}";
  return out;
}

Status HttpServer::Start() {
  util::MutexLock lifecycle(lifecycle_mu_);
  if (io_thread_.joinable()) {
    return Status::FailedPrecondition("server already started");
  }
  stopping_.store(false);
  // DoStart only binds/listens; the blocking 'Create' the call graph sees
  // is an unrelated same-named function. fablint:allow(conc-blocking-under-lock)
  const Status started = DoStart();
  if (!started.ok()) {
    // Unwind partial setup so a failed Start neither leaks descriptors
    // nor poisons a retry. On success the IO thread owns teardown.
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    if (wakeup_read_fd_ >= 0) {
      ::close(wakeup_read_fd_);
      wakeup_read_fd_ = -1;
    }
    if (spare_fd_ >= 0) {
      ::close(spare_fd_);
      spare_fd_ = -1;
    }
    core_.reset();  // ~ServerCore closes the pipe's write end
    port_.store(0);
  }
  return started;
}

Status HttpServer::DoStart() {
  IgnoreSigpipeOnce();
  spare_fd_ = ::open("/dev/null", O_RDONLY);

  // Wakeup pipe: handler threads write, the IO loop reads.
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) return Errno("pipe");
  FAB_RETURN_IF_ERROR(SetNonBlocking(pipe_fds[0]));
  FAB_RETURN_IF_ERROR(SetNonBlocking(pipe_fds[1]));
  wakeup_read_fd_ = pipe_fds[0];
  core_ = std::make_shared<internal::ServerCore>();
  core_->wakeup_write_fd = pipe_fds[1];

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Errno("socket");
  const int one = 1;
  (void)!::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                      sizeof(one));
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Errno("bind " + options_.bind_address + ":" +
                 std::to_string(options_.port));
  }
  if (::listen(listen_fd_, 128) != 0) return Errno("listen");
  FAB_RETURN_IF_ERROR(SetNonBlocking(listen_fd_));

  // Resolve the actual port (option port 0 = kernel-assigned).
  struct sockaddr_in bound = {};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&bound),
                    &bound_len) != 0) {
    return Errno("getsockname");
  }
  port_.store(ntohs(bound.sin_port));

  FAB_ASSIGN_OR_RETURN(std::unique_ptr<EventLoop> loop,
                       EventLoop::Create(options_.backend));
  FAB_RETURN_IF_ERROR(loop->Add(listen_fd_, /*want_read=*/true, false));
  FAB_RETURN_IF_ERROR(loop->Add(wakeup_read_fd_, /*want_read=*/true, false));

  workers_ = std::make_unique<util::ThreadPool>(options_.num_workers);
  io_thread_ = std::thread(
      [this, owned_loop = std::move(loop)] { IoLoop(owned_loop.get()); });
  return Status::OK();
}

void HttpServer::Shutdown() {
  util::MutexLock lifecycle(lifecycle_mu_);
  if (!io_thread_.joinable()) return;
  stopping_.store(true);
  {
    // Wake the loop; keep alive=true until it exits so late in-flight
    // responses queued before the join are simply never drained.
    const char byte = 's';
    (void)!::write(core_->wakeup_write_fd, &byte, 1);
  }
  io_thread_.join();
  {
    util::MutexLock lock(core_->mu);
    core_->alive = false;
    core_->queue.clear();
  }
  // Joins the handler pool; Sends from still-running handlers hit the
  // dead core and vanish.
  workers_.reset();
  core_.reset();
}

void HttpServer::IoLoop(EventLoop* loop) {
  std::vector<IoEvent> events;
  while (!stopping_.load()) {
    // Bounded wait so a missed wakeup byte can only delay, not hang,
    // shutdown.
    const Status wait = loop->Wait(/*timeout_ms=*/100, &events);
    if (!wait.ok()) break;
    for (const IoEvent& event : events) {
      if (event.fd == listen_fd_) {
        AcceptNew(loop);
        continue;
      }
      if (event.fd == wakeup_read_fd_) {
        DrainControlQueue(loop);
        continue;
      }
      if (event.error) {
        CloseConnection(loop, event.fd);
        continue;
      }
      if (event.readable) HandleReadable(loop, event.fd);
      // The connection may have been closed by the read path; the write
      // path revalidates membership itself.
      if (event.writable) HandleWritable(loop, event.fd);
    }
  }
  // Teardown on the owning thread: every socket dies here.
  std::vector<int> fds;
  fds.reserve(connections_.size());
  for (const auto& [fd, conn] : connections_) fds.push_back(fd);
  for (const int fd : fds) CloseConnection(loop, fd);
  (void)loop->Del(listen_fd_);
  (void)loop->Del(wakeup_read_fd_);
  ::close(listen_fd_);
  ::close(wakeup_read_fd_);
  listen_fd_ = -1;
  wakeup_read_fd_ = -1;
  if (spare_fd_ >= 0) {
    ::close(spare_fd_);
    spare_fd_ = -1;
  }
}

void HttpServer::AcceptNew(EventLoop* loop) {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // EAGAIN: accepted everything pending.
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      // The peer aborted between backlog and accept; next, please.
      if (errno == ECONNABORTED || errno == EPROTO) continue;
      if (errno == EMFILE || errno == ENFILE) {
        // fd table exhausted. A level-triggered listener stays readable
        // until the backlog entry is consumed, so returning here would
        // spin the IO loop at 100% CPU. Burn the reserved spare fd to
        // accept-and-close: the client gets a clean RST-ish shed and
        // the loop goes back to sleep.
        if (spare_fd_ >= 0) {
          ::close(spare_fd_);
          spare_fd_ = -1;
          const int shed = ::accept(listen_fd_, nullptr, nullptr);
          if (shed >= 0) ::close(shed);
          spare_fd_ = ::open("/dev/null", O_RDONLY);
          overloaded_.Increment();
          continue;
        }
      }
      // Anything else: leave the listener armed and retry on the next
      // readiness event.
      return;
    }
    FAB_TRACE_SCOPE("net/accept", {{"fd", fd}});
    if (connections_.size() >= options_.max_connections) {
      overloaded_.Increment();
      ::close(fd);
      continue;
    }
    if (!SetNonBlocking(fd).ok()) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    (void)!::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (!loop->Add(fd, /*want_read=*/true, false).ok()) {
      ::close(fd);
      continue;
    }
    connections_.try_emplace(fd, next_conn_id_++, options_.parser_limits);
    accepted_.Increment();
    open_connections_.Set(static_cast<double>(connections_.size()));
  }
}

void HttpServer::HandleReadable(EventLoop* loop, int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Connection& conn = it->second;
  char buf[16384];
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      FAB_TRACE_SCOPE("net/parse", {{"bytes", static_cast<long>(n)}});
      const Status parsed = conn.parser.Consume(buf, static_cast<size_t>(n));
      if (!parsed.ok()) {
        parse_errors_.Increment();
        // One 400 with the parse diagnostic, then hang up.
        conn.keep_alive = false;
        conn.close_after_write = true;
        conn.write_buffer += HttpResponse::Json(
                                 400, "{\"error\":" +
                                          EscapeJson(parsed.message()) + "}")
                                 .Serialize(/*keep_alive=*/false);
        (void)loop->Mod(fd, /*want_read=*/false, /*want_write=*/true);
        HandleWritable(loop, fd);
        return;
      }
      if (conn.parser.done()) break;  // dispatch before reading further
      continue;
    }
    if (n == 0) {  // peer closed
      CloseConnection(loop, fd);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConnection(loop, fd);
    return;
  }
  DispatchIfReady(loop, fd);
}

void HttpServer::DispatchIfReady(EventLoop* loop, int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Connection& conn = it->second;
  if (!conn.parser.done() || conn.handling) return;
  requests_.Increment();
  HttpRequest request = conn.parser.request();  // copy: parser re-arms later
  conn.keep_alive = request.KeepAlive();
  conn.handling = true;
  ++conn.exchange;
  conn.responded = false;
  // Trace context: adopt the client's x-fab-trace id (so a trace spans
  // client and server) or mint a fresh one. The scoped install covers
  // route lookup and pool Submit — ThreadPool::Enqueue captures it onto
  // the handler thread, which is how every span and histogram sample
  // under this request stitches to one id.
  const std::string* inbound = request.Header("x-fab-trace");
  uint64_t trace_id = inbound != nullptr ? obs::ParseTraceId(*inbound) : 0;
  if (trace_id == 0) trace_id = obs::MintTraceId();
  conn.trace_id = trace_id;
  conn.dispatched = obs::Clock::Now();
  conn.route_stats = nullptr;
  obs::ScopedTraceId scope(trace_id);
  FAB_TRACE_SCOPE("net/dispatch");
  // One-in-one-out: no reads while the handler owns the exchange.
  (void)loop->Mod(fd, /*want_read=*/false, /*want_write=*/false);

  const std::string path = PathOf(request.target);
  auto route = routes_.find({request.method, path});
  if (route == routes_.end()) {
    bool path_exists = false;
    for (const auto& [key, handler] : routes_) {
      if (key.second == path) path_exists = true;
    }
    const int code = path_exists ? 405 : 404;
    QueueResponse(loop, fd, conn.conn_id, conn.exchange,
                  HttpResponse::Json(
                      code, std::string("{\"error\":\"") +
                                (path_exists ? "method not allowed"
                                             : "no such endpoint") +
                                "\"}"));
    return;
  }
  auto stats = route_stats_.find({request.method, path});
  if (stats != route_stats_.end()) {
    conn.route_stats = &stats->second;
    conn.route_stats->requests.Increment();
  }
  Responder responder(core_, fd, conn.conn_id, conn.exchange, trace_id);
  const Handler handler = route->second;  // copy: stable across threads
  (void)workers_->Submit(
      [handler, request = std::move(request), responder]() {
        FAB_TRACE_SCOPE("net/handle");
        handler(request, responder);
      });
}

void HttpServer::QueueResponse(EventLoop* loop, int fd, uint64_t conn_id,
                               uint64_t exchange, HttpResponse response) {
  auto it = connections_.find(fd);
  if (it == connections_.end() || it->second.conn_id != conn_id) {
    return;  // connection since closed (and fd possibly recycled)
  }
  Connection& conn = it->second;
  if (!conn.handling || conn.exchange != exchange || conn.responded) {
    // Duplicate Send on the current exchange, or a straggler from a
    // finished one: appending a second response would corrupt the
    // keep-alive framing for the next request, so drop it.
    return;
  }
  conn.responded = true;
  obs::ScopedTraceId scope(conn.trace_id);
  FAB_TRACE_SCOPE("net/respond", {{"status", response.status_code}});
  // The exchange is decided: close out the request's telemetry. The
  // "net/request" flight span (dispatch → response queued) is the root
  // of the /tracez span tree; the per-route sample carries the trace id
  // as its max-bucket exemplar; the echoed header lets the client log
  // the id it should quote in a slow-request report.
  const obs::Clock::time_point now = obs::Clock::Now();
  if (conn.route_stats != nullptr) {
    conn.route_stats->latency_us.Record(
        obs::Clock::MicrosBetween(conn.dispatched, now), conn.trace_id);
    if (response.status_code >= 400) conn.route_stats->errors.Increment();
  }
  obs::FlightRecordSpan("net/request", conn.trace_id, conn.dispatched, now);
  response.headers.push_back({"x-fab-trace", obs::FormatTraceId(conn.trace_id)});
  const bool keep_alive = conn.keep_alive && !stopping_.load();
  conn.write_buffer += response.Serialize(keep_alive);
  if (!keep_alive) conn.close_after_write = true;
  responses_.Increment();
  (void)loop->Mod(fd, /*want_read=*/false, /*want_write=*/true);
  HandleWritable(loop, fd);  // opportunistic synchronous flush
}

void HttpServer::HandleWritable(EventLoop* loop, int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Connection& conn = it->second;
  while (!conn.write_buffer.empty()) {
    // MSG_NOSIGNAL: a peer that reset mid-flush yields EPIPE (handled
    // below as a close), not a process-killing SIGPIPE.
    const ssize_t n = ::send(fd, conn.write_buffer.data(),
                             conn.write_buffer.size(), MSG_NOSIGNAL);
    if (n > 0) {
      conn.write_buffer.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    CloseConnection(loop, fd);
    return;
  }
  // Fully flushed.
  if (conn.close_after_write) {
    CloseConnection(loop, fd);
    return;
  }
  if (conn.handling) {
    // Exchange complete: re-arm for the next request on this connection.
    conn.handling = false;
    if (!conn.parser.Reset().ok()) {
      CloseConnection(loop, fd);
      return;
    }
    (void)loop->Mod(fd, /*want_read=*/true, /*want_write=*/false);
    DispatchIfReady(loop, fd);  // a pipelined request may be complete
  } else {
    (void)loop->Mod(fd, /*want_read=*/true, /*want_write=*/false);
  }
}

void HttpServer::CloseConnection(EventLoop* loop, int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  (void)loop->Del(fd);
  ::close(fd);
  connections_.erase(it);
  open_connections_.Set(static_cast<double>(connections_.size()));
}

void HttpServer::DrainControlQueue(EventLoop* loop) {
  // Swallow every wakeup byte, then apply every queued response.
  char buf[256];
  while (::read(wakeup_read_fd_, buf, sizeof(buf)) > 0) {
  }
  std::deque<internal::ServerCore::Pending> pending;
  {
    util::MutexLock lock(core_->mu);
    pending.swap(core_->queue);
  }
  for (internal::ServerCore::Pending& p : pending) {
    QueueResponse(loop, p.fd, p.conn_id, p.exchange, std::move(p.response));
  }
}

}  // namespace fab::net
