#include "net/debugz.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <utility>

#include "net/json.h"
#include "util/obs/metrics.h"
#include "util/obs/trace.h"
#include "util/obs/trace_context.h"

namespace fab::net {

namespace {

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return v > 0 ? "\"inf\"" : (v < 0 ? "\"-inf\"" : "\"nan\"");
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

/// Value of `key` in the request target's query string ("" when absent).
/// Values are used as numbers/hex ids only, so no %-decoding.
std::string QueryParam(const std::string& target, const std::string& key) {
  const size_t q = target.find('?');
  if (q == std::string::npos) return {};
  size_t pos = q + 1;
  while (pos < target.size()) {
    size_t amp = target.find('&', pos);
    if (amp == std::string::npos) amp = target.size();
    const size_t eq = target.find('=', pos);
    if (eq != std::string::npos && eq < amp &&
        target.compare(pos, eq - pos, key) == 0) {
      return target.substr(eq + 1, amp - eq - 1);
    }
    pos = amp + 1;
  }
  return {};
}

/// One trace's spans nested by interval containment. Index-based so
/// child lists never invalidate each other while building.
struct TraceTree {
  std::vector<obs::FlightSpan> spans;      ///< sorted by (start, -dur)
  std::vector<std::vector<size_t>> kids;   ///< children of spans[i]
  std::vector<size_t> roots;
  int64_t start_ns = 0;
  int64_t end_ns = 0;
};

/// Containment nesting via the classic interval-stack sweep: spans are
/// sorted by start (longest first on ties), and a span becomes a child
/// of the innermost open span that fully contains it. Spans that only
/// partially overlap (e.g. serve/request starts inside net/handle but
/// outlives it) attach to the nearest ancestor that does contain them —
/// for request trees that is the net/request root.
TraceTree BuildTree(std::vector<obs::FlightSpan> spans) {
  TraceTree tree;
  std::sort(spans.begin(), spans.end(),
            [](const obs::FlightSpan& a, const obs::FlightSpan& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.dur_ns > b.dur_ns;
            });
  tree.spans = std::move(spans);
  tree.kids.resize(tree.spans.size());
  std::vector<size_t> stack;
  for (size_t i = 0; i < tree.spans.size(); ++i) {
    const int64_t start = tree.spans[i].start_ns;
    const int64_t end = start + tree.spans[i].dur_ns;
    if (i == 0 || start < tree.start_ns) tree.start_ns = start;
    if (i == 0 || end > tree.end_ns) tree.end_ns = end;
    while (!stack.empty()) {
      const obs::FlightSpan& top = tree.spans[stack.back()];
      if (start >= top.start_ns && end <= top.start_ns + top.dur_ns) break;
      stack.pop_back();
    }
    if (stack.empty()) {
      tree.roots.push_back(i);
    } else {
      tree.kids[stack.back()].push_back(i);
    }
    stack.push_back(i);
  }
  return tree;
}

void SerializeNode(const TraceTree& tree, size_t i, std::string* out) {
  const obs::FlightSpan& span = tree.spans[i];
  *out += "{\"name\":";
  *out += EscapeJson(span.name != nullptr ? span.name : "?");
  *out += ",\"tid\":" + std::to_string(span.tid);
  *out += ",\"start_us\":" +
          JsonNumber(static_cast<double>(span.start_ns - tree.start_ns) / 1000.0);
  *out += ",\"dur_us\":" + JsonNumber(static_cast<double>(span.dur_ns) / 1000.0);
  if (!tree.kids[i].empty()) {
    *out += ",\"children\":[";
    bool first = true;
    for (const size_t kid : tree.kids[i]) {
      if (!first) *out += ",";
      first = false;
      SerializeNode(tree, kid, out);
    }
    *out += "]";
  }
  *out += "}";
}

}  // namespace

std::string DebugService::TracezJson(const std::vector<obs::FlightSpan>& spans,
                                     double min_us, uint64_t only_trace,
                                     size_t max_traces) {
  // Group the ring's spans by trace id; untraced spans (internal
  // housekeeping, pipeline work) don't form request trees.
  std::map<uint64_t, std::vector<obs::FlightSpan>> by_trace;
  for (const obs::FlightSpan& span : spans) {
    if (span.trace_id == 0) continue;
    if (only_trace != 0 && span.trace_id != only_trace) continue;
    by_trace[span.trace_id].push_back(span);
  }
  struct Entry {
    uint64_t trace_id;
    TraceTree tree;
    double duration_us;
  };
  std::vector<Entry> entries;
  entries.reserve(by_trace.size());
  for (auto& [trace_id, trace_spans] : by_trace) {
    TraceTree tree = BuildTree(std::move(trace_spans));
    const double duration_us =
        static_cast<double>(tree.end_ns - tree.start_ns) / 1000.0;
    if (only_trace == 0 && duration_us < min_us) continue;
    entries.push_back(Entry{trace_id, std::move(tree), duration_us});
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    if (a.duration_us != b.duration_us) return a.duration_us > b.duration_us;
    return a.trace_id < b.trace_id;  // deterministic tie-break
  });
  if (entries.size() > max_traces) entries.resize(max_traces);

  std::string out;
  out.reserve(256 + 512 * entries.size());
  out += "{\"min_us\":" + JsonNumber(min_us);
  out += ",\"limit\":" + std::to_string(max_traces);
  out += ",\"traces\":[";
  bool first = true;
  for (const Entry& entry : entries) {
    if (!first) out += ",";
    first = false;
    out += "{\"trace\":\"" + obs::FormatTraceId(entry.trace_id) + "\"";
    out += ",\"duration_us\":" + JsonNumber(entry.duration_us);
    out += ",\"spans\":[";
    bool first_root = true;
    for (const size_t root : entry.tree.roots) {
      if (!first_root) out += ",";
      first_root = false;
      SerializeNode(entry.tree, root, &out);
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

void DebugService::RegisterRoutes(HttpServer* server) {
  server->Handle("GET", "/tracez",
                 [this](const HttpRequest& request, Responder responder) {
                   HandleTracez(request, responder);
                 });
  server->Handle("GET", "/rpcz",
                 [this](const HttpRequest& request, Responder responder) {
                   HandleRpcz(request, responder);
                 });
  server->Handle("GET", "/metricsz",
                 [this](const HttpRequest& request, Responder responder) {
                   HandleMetricsz(request, responder);
                 });
}

void DebugService::HandleTracez(const HttpRequest& request,
                                Responder responder) {
  FAB_TRACE_SCOPE("net/tracez");
  const std::string min_us_s = QueryParam(request.target, "min_us");
  const double min_us =
      min_us_s.empty() ? 0.0 : std::strtod(min_us_s.c_str(), nullptr);
  const uint64_t only_trace =
      obs::ParseTraceId(QueryParam(request.target, "trace"));
  const std::string limit_s = QueryParam(request.target, "limit");
  const size_t limit = limit_s.empty()
                           ? 32
                           : static_cast<size_t>(std::strtoull(
                                 limit_s.c_str(), nullptr, 10));
  responder.Send(HttpResponse::Json(
      200, TracezJson(obs::FlightSnapshot(), min_us, only_trace, limit)));
}

void DebugService::HandleRpcz(const HttpRequest& request, Responder responder) {
  FAB_TRACE_SCOPE("net/rpcz");
  (void)request;
  std::string out;
  out.reserve(2048);
  out += "{\"server\":";
  out += server_ != nullptr ? server_->RpczJson() : "{}";
  out += ",\"shards\":";
  out += router_ != nullptr ? router_->StatszJson() : "{}";
  out += "}";
  responder.Send(HttpResponse::Json(200, std::move(out)));
}

void DebugService::HandleMetricsz(const HttpRequest& request,
                                  Responder responder) {
  FAB_TRACE_SCOPE("net/metricsz");
  (void)request;
  HttpResponse response;
  response.status_code = 200;
  response.reason = "OK";
  response.headers.push_back(
      {"Content-Type", "text/plain; version=0.0.4; charset=utf-8"});
  response.body = obs::ExportPrometheus();
  responder.Send(std::move(response));
}

}  // namespace fab::net
