#ifndef FAB_NET_EVENT_LOOP_H_
#define FAB_NET_EVENT_LOOP_H_

#include <cstddef>
#include <map>
#include <memory>
#include <vector>

#include "util/status.h"

namespace fab::net {

/// One readiness notification from EventLoop::Wait.
struct IoEvent {
  int fd = -1;
  bool readable = false;
  bool writable = false;
  /// Error or hangup; the owner should tear the fd down.
  bool error = false;
};

/// Readiness-notification multiplexer behind the HTTP server's IO
/// thread: epoll on Linux (level-triggered — the simple, unmissable
/// semantics), with a portable scalar poll(2) fallback selected either
/// at compile time (non-Linux) or at runtime (tests exercise both
/// backends on the same host).
///
/// Not thread-safe by design: one EventLoop belongs to one IO thread,
/// which is the only thread that touches any registered fd. Cross-thread
/// wakeups go through an fd the loop watches (the server's wakeup pipe),
/// never through this class directly.
class EventLoop {
 public:
  enum class Backend {
    kEpoll,  ///< Linux epoll; Create() fails on other platforms
    kPoll,   ///< portable poll(2) over the registered-fd table
  };

  /// The preferred backend for this platform (epoll on Linux).
  static Backend DefaultBackend();

  /// Builds a loop, acquiring the epoll instance when applicable.
  [[nodiscard]] static Result<std::unique_ptr<EventLoop>> Create(
      Backend backend = DefaultBackend());

  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` for readiness notifications. Errors/hangups are
  /// always reported regardless of the flags.
  [[nodiscard]] Status Add(int fd, bool want_read, bool want_write);

  /// Updates an already-registered fd's interest set.
  [[nodiscard]] Status Mod(int fd, bool want_read, bool want_write);

  /// Deregisters `fd` (the caller still owns and closes it).
  [[nodiscard]] Status Del(int fd);

  /// Blocks up to `timeout_ms` (-1 = indefinitely) and appends ready
  /// events to `out` (cleared first). Zero events on timeout is OK.
  [[nodiscard]] Status Wait(int timeout_ms, std::vector<IoEvent>* out);

  Backend backend() const { return backend_; }
  size_t watched_count() const { return interest_.size(); }

 private:
  explicit EventLoop(Backend backend) : backend_(backend) {}

  struct Interest {
    bool read = false;
    bool write = false;
  };

  const Backend backend_;
  int epoll_fd_ = -1;  ///< valid only for kEpoll
  /// fd → interest; the poll backend builds its pollfd array from this,
  /// the epoll backend keeps it for watched_count and Mod validation.
  std::map<int, Interest> interest_;
};

}  // namespace fab::net

#endif  // FAB_NET_EVENT_LOOP_H_
