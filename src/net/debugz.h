#ifndef FAB_NET_DEBUGZ_H_
#define FAB_NET_DEBUGZ_H_

#include <cstdint>
#include <string>
#include <vector>

#include "net/http_server.h"
#include "net/shard_router.h"
#include "util/obs/flight.h"

namespace fab::net {

/// Live debug surfaces in the /varz-/statsz tradition, registered on an
/// existing HttpServer:
///
///   GET /tracez    span trees of the slowest recent requests, rebuilt
///                  from the flight-recorder ring. Query params:
///                    min_us=N   only traces at least N µs long (default 0)
///                    trace=HEX  only the named trace id
///                    limit=N    at most N traces (default 32)
///   GET /rpcz      per-endpoint request/error counts and latency
///                  histograms with max-bucket trace exemplars, plus the
///                  per-shard admission counters and BatchServer statsz
///   GET /metricsz  Prometheus text exposition of the whole metrics
///                  registry, histogram buckets included
///
/// All three read lock-free telemetry (the flight ring, per-route
/// instruments, the registry snapshot), so scraping them never stalls
/// the serving path. Stateless apart from two borrowed pointers;
/// thread-safe.
class DebugService {
 public:
  /// Both pointers are borrowed and must outlive the service; either may
  /// be null (that section of /rpcz is then omitted). `server` is
  /// typically also the server the routes are registered on.
  DebugService(const HttpServer* server, const ShardedRouter* router)
      : server_(server), router_(router) {}

  /// Registers /tracez, /rpcz and /metricsz. Call before
  /// HttpServer::Start.
  void RegisterRoutes(HttpServer* server);

  void HandleTracez(const HttpRequest& request, Responder responder);
  void HandleRpcz(const HttpRequest& request, Responder responder);
  void HandleMetricsz(const HttpRequest& request, Responder responder);

  /// Pure tree-building core of /tracez, exposed for tests: groups
  /// `spans` by trace id (dropping untraced spans), nests each trace's
  /// spans by interval containment, keeps traces at least `min_us` long
  /// (or exactly `only_trace` when nonzero), sorts longest-first and
  /// returns at most `max_traces` of them as JSON.
  static std::string TracezJson(const std::vector<obs::FlightSpan>& spans,
                                double min_us, uint64_t only_trace,
                                size_t max_traces);

 private:
  const HttpServer* const server_;
  const ShardedRouter* const router_;
};

}  // namespace fab::net

#endif  // FAB_NET_DEBUGZ_H_
