#ifndef FAB_NET_HTTP_H_
#define FAB_NET_HTTP_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace fab::net {

/// A parsed HTTP/1.1 request (server side) — method, target, headers,
/// body. Header names compare case-insensitively per RFC 9110.
struct HttpRequest {
  std::string method;   // "GET", "POST", ...
  std::string target;   // "/predict" (query strings kept verbatim)
  std::string version;  // "HTTP/1.1"
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// First header with `name` (case-insensitive); null when absent.
  const std::string* Header(const std::string& name) const;

  /// HTTP/1.1 defaults to persistent connections; "Connection: close"
  /// (or HTTP/1.0 without keep-alive) opts out.
  bool KeepAlive() const;
};

/// An HTTP response under construction (server side) or parsed (client
/// side). Serialize() renders the wire form; Content-Length and
/// Connection are emitted by the serializer, everything else comes from
/// `headers`.
struct HttpResponse {
  int status_code = 200;
  std::string reason = "OK";
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  const std::string* Header(const std::string& name) const;

  /// Convenience factory: status + JSON body with the right content type.
  static HttpResponse Json(int status_code, std::string body);

  /// Wire form: status line, headers, Content-Length, Connection
  /// (keep-alive/close), blank line, body.
  std::string Serialize(bool keep_alive) const;
};

/// Standard reason phrase for `status_code` ("OK", "Too Many Requests",
/// ...; "Unknown" for codes the map does not carry).
const char* ReasonPhrase(int status_code);

/// Incremental HTTP/1.1 message parser, one instance per connection.
///
/// Feed raw bytes as they arrive with Consume(); once done() turns true
/// the parsed message is in request()/response() and any bytes past the
/// message end stay buffered for the next Reset() cycle (keep-alive
/// pipelining). Malformed or oversized input turns the parser into a
/// terminal error state: the server maps it to 400, the client to a
/// protocol error.
///
/// Deliberately minimal for the serving workload: Content-Length bodies
/// only (no chunked transfer), no multi-line header folding, bounded
/// header and body sizes. Single-threaded use — each connection's bytes
/// are parsed on the IO thread.
class HttpParser {
 public:
  enum class Mode { kRequest, kResponse };

  struct Limits {
    size_t max_head_bytes = 16 * 1024;        ///< status/request line + headers
    size_t max_body_bytes = 4 * 1024 * 1024;  ///< Content-Length cap
  };

  explicit HttpParser(Mode mode);  // default Limits
  HttpParser(Mode mode, Limits limits);

  /// Appends `n` bytes and advances the parse. Returns a non-OK status
  /// exactly once, at the transition into the error state.
  [[nodiscard]] Status Consume(const char* data, size_t n);

  /// True once one complete message has been parsed.
  bool done() const { return phase_ == Phase::kDone; }
  bool error() const { return phase_ == Phase::kError; }

  /// The parsed message; valid once done() (mode-matching accessor only).
  const HttpRequest& request() const { return request_; }
  const HttpResponse& response() const { return response_; }

  /// Discards the parsed message and starts parsing the next one from
  /// any already-buffered surplus bytes (keep-alive reuse).
  [[nodiscard]] Status Reset();

 private:
  enum class Phase { kHead, kBody, kDone, kError };

  [[nodiscard]] Status Fail(const std::string& what);
  [[nodiscard]] Status TryParse();
  [[nodiscard]] Status ParseHead(const std::string& head);

  const Mode mode_;
  const Limits limits_;
  Phase phase_ = Phase::kHead;
  std::string buffer_;
  size_t body_expected_ = 0;
  HttpRequest request_;
  HttpResponse response_;
};

}  // namespace fab::net

#endif  // FAB_NET_HTTP_H_
