#include "net/http_client.h"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "util/obs/trace_context.h"

namespace fab::net {

namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

}  // namespace

HttpClient::HttpClient(std::string host, uint16_t port, int timeout_ms)
    : host_(std::move(host)), port_(port), timeout_ms_(timeout_ms) {}

HttpClient::~HttpClient() { Disconnect(); }

void HttpClient::Disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status HttpClient::EnsureConnected() {
  if (fd_ >= 0) return Status::OK();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  struct timeval tv = {};
  tv.tv_sec = timeout_ms_ / 1000;
  tv.tv_usec = (timeout_ms_ % 1000) * 1000;
  (void)!::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  (void)!::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  const int one = 1;
  (void)!::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address: " + host_);
  }
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const Status status =
        Errno("connect " + host_ + ":" + std::to_string(port_));
    ::close(fd);
    return status;
  }
  fd_ = fd;
  return Status::OK();
}

Status HttpClient::SendAll(const std::string& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Errno("send");
  }
  return Status::OK();
}

Result<HttpResponse> HttpClient::RoundTrip(const HttpRequest& request) {
  FAB_RETURN_IF_ERROR(EnsureConnected());

  std::string wire = request.method + " " + request.target + " HTTP/1.1\r\n";
  wire += "Host: " + host_ + ":" + std::to_string(port_) + "\r\n";
  for (const auto& [key, value] : request.headers) {
    wire += key + ": " + value + "\r\n";
  }
  // Trace-context propagation: a caller with an installed trace context
  // (obs::ScopedTraceId) tags the outbound request so the server adopts
  // the same id and the trace spans both processes. An explicit
  // x-fab-trace header in `request` wins.
  const uint64_t trace_id = obs::CurrentTraceId();
  if (trace_id != 0 && request.Header("x-fab-trace") == nullptr) {
    wire += "x-fab-trace: " + obs::FormatTraceId(trace_id) + "\r\n";
  }
  wire += "Content-Length: " + std::to_string(request.body.size()) + "\r\n";
  wire += "Connection: keep-alive\r\n\r\n";
  wire += request.body;

  Status sent = SendAll(wire);
  if (!sent.ok()) {
    // A keep-alive peer may have closed the idle connection between
    // round trips; reconnect once and retry before giving up.
    Disconnect();
    FAB_RETURN_IF_ERROR(EnsureConnected());
    FAB_RETURN_IF_ERROR(SendAll(wire));
  }

  HttpParser parser(HttpParser::Mode::kResponse);
  char buf[16384];
  while (!parser.done()) {
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      FAB_RETURN_IF_ERROR(parser.Consume(buf, static_cast<size_t>(n)));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    Disconnect();
    if (n == 0) return Status::IoError("connection closed mid-response");
    return Errno("recv");
  }
  HttpResponse response = parser.response();
  const std::string* connection = response.Header("Connection");
  if (connection != nullptr && *connection == "close") Disconnect();
  return response;
}

Result<HttpResponse> HttpClient::Get(const std::string& target) {
  HttpRequest request;
  request.method = "GET";
  request.target = target;
  return RoundTrip(request);
}

Result<HttpResponse> HttpClient::Post(const std::string& target,
                                      std::string body,
                                      const std::string& content_type) {
  HttpRequest request;
  request.method = "POST";
  request.target = target;
  request.headers.emplace_back("Content-Type", content_type);
  request.body = std::move(body);
  return RoundTrip(request);
}

}  // namespace fab::net
