#ifndef FAB_NET_SHARD_ROUTER_H_
#define FAB_NET_SHARD_ROUTER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "serve/batch_server.h"
#include "serve/registry.h"
#include "util/obs/metrics.h"
#include "util/status.h"

namespace fab::net {

/// Deterministic scenario-key → shard mapping: FNV-1a 64 over the
/// canonical "period|window|model" string, mod `num_shards`. Pure and
/// version-pinned (kShardHashVersion) — the same key maps to the same
/// shard on every host, every restart, every build. Golden-tested.
uint64_t ShardHash(const serve::ModelKey& key);
size_t ShardOf(const serve::ModelKey& key, size_t num_shards);

/// Bumped only if the hash function ever changes; persisted into the
/// shard layout file so an incompatible router refuses to start instead
/// of silently re-sharding.
inline constexpr int kShardHashVersion = 1;

struct ShardedRouterOptions {
  /// Number of shards (each one coalescing BatchServer + queue).
  size_t num_shards = 4;
  /// Per-shard worker threads (ResolveThreads convention).
  int threads_per_shard = 2;
  /// Per-shard BatchServer batching knobs.
  size_t max_batch = 64;
  int coalesce_wait_us = 200;
  /// Hard per-shard queue bound: submits beyond it shed (HTTP 429).
  size_t max_shard_queue = 256;
  /// Admission SLO: when a shard's predicted queue wait exceeds this,
  /// new requests shed before latency collapses. 0 disables the check.
  double slo_queue_wait_us = 50000.0;
  /// The histogram-p99 arm of the admission predicate only engages
  /// above this queue depth, so a cumulative p99 inflated by a past
  /// overload cannot latch the shard into permanent shedding.
  size_t slo_low_watermark = 8;
  /// Drain budget handed to each shard's BatchServer at shutdown.
  int shutdown_drain_ms = 2000;
};

/// Why a request was (not) admitted; the HTTP layer maps kShedQueueFull
/// and kShedSlo to 429 + Retry-After.
enum class Admission {
  kAdmitted,
  kShedQueueFull,
  kShedSlo,
};

/// Routes scenario keys across a fixed set of admission-controlled
/// BatchServer shards, each serving the subset of the ModelRegistry
/// that hashes to it.
///
/// Layout persistence: Create() writes (first run) or validates (later
/// runs) `shard_layout.txt` in the registry root, recording num_shards
/// and the hash version. A restart with a different shard count is
/// REJECTED at load time — resharding is an explicit operation (delete
/// the layout file), never an accident that silently moves keys between
/// queues mid-deployment.
///
/// Thread-safe: Submit may be called from any handler thread. Shard
/// state lives in the BatchServers (locked internally) and per-shard
/// obs counters (lock-free); the router itself is immutable after
/// Create.
class ShardedRouter {
 public:
  /// Builds the shard set over `registry` (not owned; must outlive the
  /// router). Fails if a persisted layout disagrees with `options`.
  [[nodiscard]] static Result<std::unique_ptr<ShardedRouter>> Create(
      serve::ModelRegistry* registry, const ShardedRouterOptions& options);

  ~ShardedRouter();

  ShardedRouter(const ShardedRouter&) = delete;
  ShardedRouter& operator=(const ShardedRouter&) = delete;

  /// Admission-checked asynchronous forecast: resolves `key` in the
  /// registry, applies the shard's admission predicate, and enqueues
  /// onto the shard's BatchServer. The callback fires exactly once on
  /// admitted requests. `admission` (optional) reports the verdict;
  /// sheds return kUnavailable, unknown keys kNotFound.
  [[nodiscard]] Status Submit(const serve::ModelKey& key, std::vector<double> features,
                serve::BatchServer::Callback done,
                Admission* admission = nullptr);

  /// Shard index serving `key` under this router's layout.
  size_t ShardFor(const serve::ModelKey& key) const;

  /// Suggested client back-off when shedding, in seconds (>= 1): the
  /// shard's predicted queue wait, rounded up — what Retry-After carries.
  int RetryAfterSeconds(size_t shard) const;

  /// Aggregated JSON: per-shard BatchServer statsz + admission counters.
  std::string StatszJson() const;

  /// Drains every shard's queue under its deadline (see
  /// BatchServerOptions::shutdown_drain_ms semantics).
  void Shutdown();

  size_t num_shards() const { return shards_.size(); }
  const ShardedRouterOptions& options() const { return options_; }

  /// The layout file path for `registry_root`.
  static std::string LayoutPath(const std::string& registry_root);

 private:
  struct Shard {
    std::unique_ptr<serve::BatchServer> server;
    obs::Counter* admitted = nullptr;   ///< registry-owned
    obs::Counter* shed_full = nullptr;  ///< registry-owned
    obs::Counter* shed_slo = nullptr;   ///< registry-owned
  };

  ShardedRouter(serve::ModelRegistry* registry,
                const ShardedRouterOptions& options);

  /// The admission predicate; kAdmitted means "enqueue now".
  Admission Admit(const Shard& shard) const;

  serve::ModelRegistry* const registry_;
  const ShardedRouterOptions options_;
  std::vector<Shard> shards_;
};

}  // namespace fab::net

#endif  // FAB_NET_SHARD_ROUTER_H_
