#ifndef FAB_NET_HTTP_SERVER_H_
#define FAB_NET_HTTP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>

#include "net/event_loop.h"
#include "net/http.h"
#include "util/mutex.h"
#include "util/obs/clock.h"
#include "util/obs/metrics.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace fab::net {

namespace internal {
/// The handler-thread → IO-thread bridge (control queue + wakeup pipe).
/// Defined in http_server.cc; Responders hold it weakly.
struct ServerCore;
}  // namespace internal

struct HttpServerOptions {
  /// TCP port to bind; 0 picks an ephemeral port (read it back via
  /// port() after Start — how every test avoids port collisions).
  uint16_t port = 0;
  /// Bind address. Loopback by default: this is a shard front-end meant
  /// to sit behind a balancer, not an open listener.
  std::string bind_address = "127.0.0.1";
  /// Handler pool width (util::ResolveThreads convention).
  int num_workers = 4;
  /// Accepted connections beyond this are immediately closed.
  size_t max_connections = 1024;
  /// Event backend; tests exercise kPoll explicitly, production follows
  /// EventLoop::DefaultBackend().
  EventLoop::Backend backend = EventLoop::DefaultBackend();
  /// Per-message parser bounds (header/body size caps).
  HttpParser::Limits parser_limits;
};

/// Completion handle for one in-flight HTTP exchange.
///
/// Copyable and cheap; Send may be called from any thread exactly once
/// per exchange (later calls are dropped). The response is posted to the
/// IO thread — which owns every socket — through the server's control
/// queue and wakeup pipe; a {connection-generation, exchange-generation}
/// tag makes a late Send against a since-recycled fd, a finished
/// exchange, or an already-answered exchange a no-op instead of a
/// cross-talk or keep-alive-framing bug. Outliving the server is safe:
/// the core is held weakly and a Send after Shutdown simply vanishes.
class Responder {
 public:
  void Send(HttpResponse response) const;

  /// The request's trace id (minted or adopted at dispatch) — carried so
  /// async completion paths keep their attribution even when Send runs
  /// on a thread with no trace context installed.
  uint64_t trace_id() const { return trace_id_; }

 private:
  friend class HttpServer;

  Responder(std::weak_ptr<internal::ServerCore> core, int fd,
            uint64_t conn_id, uint64_t exchange, uint64_t trace_id)
      : core_(std::move(core)),
        fd_(fd),
        conn_id_(conn_id),
        exchange_(exchange),
        trace_id_(trace_id) {}

  std::weak_ptr<internal::ServerCore> core_;
  int fd_ = -1;
  uint64_t conn_id_ = 0;
  uint64_t exchange_ = 0;
  uint64_t trace_id_ = 0;
};

/// Minimal non-blocking HTTP/1.1 server.
///
/// Architecture: ONE IO thread runs the EventLoop and is the only thread
/// that ever reads, writes, accepts or closes a socket — connection
/// state needs no locking because it has exactly one owner. Parsed
/// requests are dispatched to a util::ThreadPool of handler workers;
/// handlers answer through a Responder, so a handler that merely
/// enqueues work (the /predict path) occupies a worker for microseconds
/// while thousands of exchanges stay in flight.
///
/// Keep-alive: after a response is flushed the connection re-arms for
/// the next request (HTTP/1.1 default); while a request is being
/// handled the connection's read interest is off, so a client gets
/// one-in-one-out ordering without pipelining surprises.
///
/// Routes are exact {method, path} matches registered before Start();
/// unmatched paths get 404, matched-path-wrong-method 405.
class HttpServer {
 public:
  using Handler = std::function<void(const HttpRequest&, Responder)>;

  explicit HttpServer(HttpServerOptions options);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers a handler for exact `path` under `method`. Call before
  /// Start(); the route table is immutable while serving.
  void Handle(std::string method, std::string path, Handler handler);

  /// Binds, listens and spawns the IO thread + worker pool.
  [[nodiscard]] Status Start() FAB_EXCLUDES(lifecycle_mu_);

  /// Closes the listener and every connection, joins the IO thread,
  /// drains the worker pool. Responses still in flight are dropped (the
  /// socket is gone). Idempotent.
  void Shutdown() FAB_EXCLUDES(lifecycle_mu_);

  /// The bound port (resolves option port 0); valid after Start().
  uint16_t port() const { return port_.load(); }

  /// Per-endpoint serving stats as one JSON object (the endpoint section
  /// of GET /rpcz):
  ///   {"endpoints":[{"method":...,"path":...,"requests":N,"errors":N,
  ///                  "latency_us":{...,"max_trace":"<hex>"}}]}
  /// Safe from any thread while serving: the stats map is immutable
  /// after Start() and the instruments are lock-free.
  std::string RpczJson() const;

 private:
  /// Per-route counters and latency histogram (dispatch → response
  /// queued) with a max-bucket trace-id exemplar. One node per route,
  /// created in Handle(); node addresses are stable, so the IO thread
  /// caches a pointer per dispatched exchange.
  struct RouteStats {
    obs::Counter requests;
    obs::Counter errors;  ///< responses with status >= 400
    obs::Histogram latency_us;
  };
  /// Per-connection state, owned exclusively by the IO thread.
  struct Connection {
    uint64_t conn_id = 0;
    HttpParser parser;
    std::string write_buffer;
    bool keep_alive = true;
    /// A request is with the handler pool; read interest is off.
    bool handling = false;
    /// Bumped at each dispatch; Responders carry the value so a Send
    /// against a previous exchange on this connection is dropped.
    uint64_t exchange = 0;
    /// The current exchange already produced a response; duplicate
    /// Sends must not append a second one (keep-alive framing).
    bool responded = false;
    /// Close once write_buffer flushes.
    bool close_after_write = false;
    /// Trace context of the in-flight exchange: adopted from the
    /// client's x-fab-trace header or minted at dispatch. Echoed on the
    /// response and attributed to every span/sample under the request.
    uint64_t trace_id = 0;
    /// Dispatch instant — start of the request's /tracez root span and
    /// of the per-route latency sample.
    obs::Clock::time_point dispatched{};
    /// Stats node for the dispatched route (null for 404/405).
    RouteStats* route_stats = nullptr;

    Connection(uint64_t id, const HttpParser::Limits& limits)
        : conn_id(id), parser(HttpParser::Mode::kRequest, limits) {}
  };

  /// Start() body; on failure Start() unwinds any partially-created
  /// descriptors so a retry starts clean.
  [[nodiscard]] Status DoStart() FAB_REQUIRES(lifecycle_mu_);
  void IoLoop(EventLoop* loop);
  void AcceptNew(EventLoop* loop);
  void HandleReadable(EventLoop* loop, int fd);
  void HandleWritable(EventLoop* loop, int fd);
  void DispatchIfReady(EventLoop* loop, int fd);
  void QueueResponse(EventLoop* loop, int fd, uint64_t conn_id,
                     uint64_t exchange, HttpResponse response);
  void CloseConnection(EventLoop* loop, int fd);
  void DrainControlQueue(EventLoop* loop);

  const HttpServerOptions options_;
  std::map<std::pair<std::string, std::string>, Handler> routes_;
  /// Keyed like routes_; populated alongside it in Handle() and
  /// structurally immutable while serving (values are lock-free).
  std::map<std::pair<std::string, std::string>, RouteStats> route_stats_;

  std::shared_ptr<internal::ServerCore> core_;
  std::atomic<uint16_t> port_{0};
  std::atomic<bool> stopping_{false};

  /// IO-thread-only state (no guard needed: single owner, see class
  /// comment); torn down by the loop on exit.
  std::map<int, Connection> connections_;
  uint64_t next_conn_id_ = 1;
  int listen_fd_ = -1;
  int wakeup_read_fd_ = -1;
  /// Reserved descriptor burned to accept-and-close under EMFILE/ENFILE
  /// so a level-triggered listener sheds load instead of spinning.
  int spare_fd_ = -1;

  std::unique_ptr<util::ThreadPool> workers_;

  util::Mutex lifecycle_mu_;
  std::thread io_thread_ FAB_GUARDED_BY(lifecycle_mu_);

  // Server-wide telemetry (process registry, scraped via /statusz).
  obs::Counter& accepted_ = obs::GetCounter("net/http/accepted");
  obs::Counter& requests_ = obs::GetCounter("net/http/requests");
  obs::Counter& responses_ = obs::GetCounter("net/http/responses");
  obs::Counter& parse_errors_ = obs::GetCounter("net/http/parse_errors");
  obs::Counter& overloaded_ = obs::GetCounter("net/http/conn_overflow");
  obs::Gauge& open_connections_ = obs::GetGauge("net/http/open_connections");
};

}  // namespace fab::net

#endif  // FAB_NET_HTTP_SERVER_H_
