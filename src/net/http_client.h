#ifndef FAB_NET_HTTP_CLIENT_H_
#define FAB_NET_HTTP_CLIENT_H_

#include <cstdint>
#include <string>

#include "net/http.h"
#include "util/status.h"

namespace fab::net {

/// Blocking keep-alive HTTP/1.1 client for one host:port.
///
/// Exists so that tests, the load-generator bench and the examples can
/// speak to the server without touching raw sockets themselves —
/// fablint's `net-raw-syscall` rule confines socket syscalls to
/// src/net/, and this class is the sanctioned client-side door.
///
/// One connection, reused across requests (Connection: keep-alive);
/// a torn connection reconnects transparently on the next call. NOT
/// thread-safe: one HttpClient per thread (the load generator gives
/// each open-loop worker its own).
class HttpClient {
 public:
  /// `timeout_ms` bounds each connect/send/receive (SO_RCVTIMEO /
  /// SO_SNDTIMEO), so a wedged server fails the call instead of hanging
  /// the client thread.
  HttpClient(std::string host, uint16_t port, int timeout_ms = 5000);
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  /// One round trip: sends `request` (Content-Length and Host are
  /// filled in), blocks for the full response.
  [[nodiscard]] Result<HttpResponse> RoundTrip(const HttpRequest& request);

  /// Convenience wrappers.
  [[nodiscard]] Result<HttpResponse> Get(const std::string& target);
  [[nodiscard]] Result<HttpResponse> Post(const std::string& target, std::string body,
                            const std::string& content_type =
                                "application/json");

  /// Drops the pooled connection (next call reconnects).
  void Disconnect();

 private:
  [[nodiscard]] Status EnsureConnected();
  [[nodiscard]] Status SendAll(const std::string& bytes);

  const std::string host_;
  const uint16_t port_;
  const int timeout_ms_;
  int fd_ = -1;
};

}  // namespace fab::net

#endif  // FAB_NET_HTTP_CLIENT_H_
