#include "net/event_loop.h"

#include <cerrno>
#include <cstring>
#include <memory>

#include <poll.h>
#include <unistd.h>

#if defined(__linux__)
#include <sys/epoll.h>
#define FAB_NET_HAVE_EPOLL 1
#else
#define FAB_NET_HAVE_EPOLL 0
#endif

namespace fab::net {

namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

#if FAB_NET_HAVE_EPOLL
uint32_t ToEpollMask(bool want_read, bool want_write) {
  uint32_t mask = 0;
  if (want_read) mask |= EPOLLIN;
  if (want_write) mask |= EPOLLOUT;
  return mask;
}
#endif

}  // namespace

EventLoop::Backend EventLoop::DefaultBackend() {
#if FAB_NET_HAVE_EPOLL
  return Backend::kEpoll;
#else
  return Backend::kPoll;
#endif
}

Result<std::unique_ptr<EventLoop>> EventLoop::Create(Backend backend) {
  // fablint:allow(hygiene-new-delete) — private ctor, factory owns it.
  std::unique_ptr<EventLoop> loop(new EventLoop(backend));
  if (backend == Backend::kEpoll) {
#if FAB_NET_HAVE_EPOLL
    loop->epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (loop->epoll_fd_ < 0) return Errno("epoll_create1");
#else
    return Status::FailedPrecondition("epoll backend unavailable");
#endif
  }
  return loop;
}

EventLoop::~EventLoop() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

Status EventLoop::Add(int fd, bool want_read, bool want_write) {
  if (fd < 0) return Status::InvalidArgument("Add: negative fd");
  if (interest_.count(fd) != 0) {
    return Status::AlreadyExists("fd " + std::to_string(fd) +
                                 " already registered");
  }
#if FAB_NET_HAVE_EPOLL
  if (backend_ == Backend::kEpoll) {
    struct epoll_event ev = {};
    ev.events = ToEpollMask(want_read, want_write);
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      return Errno("epoll_ctl(ADD)");
    }
  }
#endif
  interest_[fd] = Interest{want_read, want_write};
  return Status::OK();
}

Status EventLoop::Mod(int fd, bool want_read, bool want_write) {
  auto it = interest_.find(fd);
  if (it == interest_.end()) {
    return Status::NotFound("fd " + std::to_string(fd) + " not registered");
  }
#if FAB_NET_HAVE_EPOLL
  if (backend_ == Backend::kEpoll) {
    struct epoll_event ev = {};
    ev.events = ToEpollMask(want_read, want_write);
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
      return Errno("epoll_ctl(MOD)");
    }
  }
#endif
  it->second = Interest{want_read, want_write};
  return Status::OK();
}

Status EventLoop::Del(int fd) {
  auto it = interest_.find(fd);
  if (it == interest_.end()) {
    return Status::NotFound("fd " + std::to_string(fd) + " not registered");
  }
#if FAB_NET_HAVE_EPOLL
  if (backend_ == Backend::kEpoll) {
    struct epoll_event ev = {};  // non-null for pre-2.6.9 kernel ABI
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, &ev) != 0) {
      return Errno("epoll_ctl(DEL)");
    }
  }
#endif
  interest_.erase(it);
  return Status::OK();
}

Status EventLoop::Wait(int timeout_ms, std::vector<IoEvent>* out) {
  out->clear();
#if FAB_NET_HAVE_EPOLL
  if (backend_ == Backend::kEpoll) {
    struct epoll_event events[64];
    const int n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) return Status::OK();  // caller just re-waits
      return Errno("epoll_wait");
    }
    out->reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      IoEvent event;
      event.fd = events[i].data.fd;
      event.readable = (events[i].events & EPOLLIN) != 0;
      event.writable = (events[i].events & EPOLLOUT) != 0;
      event.error = (events[i].events & (EPOLLERR | EPOLLHUP)) != 0;
      out->push_back(event);
    }
    return Status::OK();
  }
#endif
  // Scalar poll fallback: rebuild the pollfd array from the interest
  // table each wait. O(watched fds) per call — fine at the connection
  // counts a single shard front-end handles, and fully portable.
  std::vector<struct pollfd> fds;
  fds.reserve(interest_.size());
  for (const auto& [fd, want] : interest_) {
    struct pollfd p = {};
    p.fd = fd;
    if (want.read) p.events |= POLLIN;
    if (want.write) p.events |= POLLOUT;
    fds.push_back(p);
  }
  const int n = ::poll(fds.data(), fds.size(), timeout_ms);
  if (n < 0) {
    if (errno == EINTR) return Status::OK();
    return Errno("poll");
  }
  for (const struct pollfd& p : fds) {
    if (p.revents == 0) continue;
    IoEvent event;
    event.fd = p.fd;
    event.readable = (p.revents & POLLIN) != 0;
    event.writable = (p.revents & POLLOUT) != 0;
    event.error = (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
    out->push_back(event);
  }
  return Status::OK();
}

}  // namespace fab::net
