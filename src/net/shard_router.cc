#include "net/shard_router.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

namespace fab::net {

uint64_t ShardHash(const serve::ModelKey& key) {
  // FNV-1a 64: tiny, dependency-free, and stable across platforms and
  // standard-library versions (std::hash guarantees neither).
  const std::string canonical =
      key.period + "|" + std::to_string(key.window) + "|" + key.model;
  uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  for (const char c : canonical) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ULL;  // FNV prime
  }
  return h;
}

size_t ShardOf(const serve::ModelKey& key, size_t num_shards) {
  return num_shards == 0 ? 0 : static_cast<size_t>(ShardHash(key) %
                                                   static_cast<uint64_t>(
                                                       num_shards));
}

std::string ShardedRouter::LayoutPath(const std::string& registry_root) {
  return registry_root + "/shard_layout.txt";
}

ShardedRouter::ShardedRouter(serve::ModelRegistry* registry,
                             const ShardedRouterOptions& options)
    : registry_(registry), options_(options) {}

ShardedRouter::~ShardedRouter() { Shutdown(); }

Result<std::unique_ptr<ShardedRouter>> ShardedRouter::Create(
    serve::ModelRegistry* registry, const ShardedRouterOptions& options) {
  if (registry == nullptr) {
    return Status::InvalidArgument("ShardedRouter requires a registry");
  }
  if (options.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }

  // Validate-or-persist the layout: a shard-count change would silently
  // remap keys to different queues, so it must be an explicit operation.
  const std::string path = LayoutPath(registry->root_dir());
  std::ifstream in(path);
  if (in.good()) {
    std::string magic;
    std::string field;
    size_t persisted_shards = 0;
    int persisted_hash = 0;
    in >> magic >> field;
    if (magic != "fab-shard-layout" || field != "v1") {
      return Status::IoError("unrecognized shard layout file: " + path);
    }
    in >> field >> persisted_shards;
    if (field != "num_shards" || !in.good()) {
      return Status::IoError("malformed shard layout file: " + path);
    }
    in >> field >> persisted_hash;
    if (field != "hash_version" || in.fail()) {
      return Status::IoError("malformed shard layout file: " + path);
    }
    if (persisted_hash != kShardHashVersion) {
      return Status::FailedPrecondition(
          "shard layout " + path + " was written by hash version " +
          std::to_string(persisted_hash) + ", this build is version " +
          std::to_string(kShardHashVersion));
    }
    if (persisted_shards != options.num_shards) {
      return Status::FailedPrecondition(
          "shard count change rejected: layout " + path + " pins " +
          std::to_string(persisted_shards) + " shards, options request " +
          std::to_string(options.num_shards) +
          " (delete the layout file to reshard explicitly)");
    }
  } else {
    std::ofstream out(path);
    if (!out.good()) {
      return Status::IoError("cannot write shard layout file: " + path);
    }
    out << "fab-shard-layout v1\n"
        << "num_shards " << options.num_shards << "\n"
        << "hash_version " << kShardHashVersion << "\n";
    if (!out.good()) {
      return Status::IoError("failed writing shard layout file: " + path);
    }
  }

  std::unique_ptr<ShardedRouter> router(
      // fablint:allow(hygiene-new-delete) — private ctor, factory owns it.
      new ShardedRouter(registry, options));
  router->shards_.resize(options.num_shards);
  for (size_t i = 0; i < options.num_shards; ++i) {
    serve::BatchServerOptions server_options;
    server_options.num_threads = options.threads_per_shard;
    server_options.max_batch = options.max_batch;
    server_options.coalesce_wait_us = options.coalesce_wait_us;
    server_options.max_queue = options.max_shard_queue;
    server_options.shutdown_drain_ms = options.shutdown_drain_ms;
    Shard& shard = router->shards_[i];
    // Keyed-only serving: no default model, every submit carries its
    // registry servable.
    shard.server =
        std::make_unique<serve::BatchServer>(nullptr, server_options);
    const std::string prefix = "net/shard" + std::to_string(i);
    shard.admitted = &obs::GetCounter(prefix + "/admitted");
    shard.shed_full = &obs::GetCounter(prefix + "/shed_queue_full");
    shard.shed_slo = &obs::GetCounter(prefix + "/shed_slo");
  }
  return router;
}

size_t ShardedRouter::ShardFor(const serve::ModelKey& key) const {
  return ShardOf(key, shards_.size());
}

Admission ShardedRouter::Admit(const Shard& shard) const {
  const size_t depth = shard.server->QueueDepth();
  if (depth >= options_.max_shard_queue) return Admission::kShedQueueFull;
  if (options_.slo_queue_wait_us > 0.0) {
    // Two signals: the live EMA-based prediction, and the obs-histogram
    // p99 of realized queue waits. The p99 arm is gated on current depth
    // so a cumulative histogram inflated by a past overload cannot pin
    // the shard in shed mode after the queue has drained.
    double worst = shard.server->EstimatedQueueWaitUs();
    if (depth > options_.slo_low_watermark) {
      worst = std::max(worst,
                       shard.server->Stats().p99_queue_wait_us);
    }
    if (worst > options_.slo_queue_wait_us) return Admission::kShedSlo;
  }
  return Admission::kAdmitted;
}

Status ShardedRouter::Submit(const serve::ModelKey& key,
                             std::vector<double> features,
                             serve::BatchServer::Callback done,
                             Admission* admission) {
  if (admission != nullptr) *admission = Admission::kAdmitted;
  const size_t index = ShardFor(key);
  Shard& shard = shards_[index];

  Result<std::shared_ptr<const serve::Servable>> servable =
      registry_->Get(key);
  if (!servable.ok()) return servable.status();

  const Admission verdict = Admit(shard);
  if (verdict == Admission::kShedQueueFull) {
    if (admission != nullptr) *admission = verdict;
    shard.shed_full->Increment();
    return Status::Unavailable("shard " + std::to_string(index) +
                               " queue full");
  }
  if (verdict == Admission::kShedSlo) {
    if (admission != nullptr) *admission = verdict;
    shard.shed_slo->Increment();
    return Status::Unavailable("shard " + std::to_string(index) +
                               " over queue-wait SLO");
  }

  Status submitted = shard.server->SubmitWithCallback(
      std::move(*servable), std::move(features), std::move(done));
  if (submitted.ok()) {
    shard.admitted->Increment();
  } else if (submitted.code() == StatusCode::kUnavailable) {
    // Lost the race against concurrent admits: the queue filled between
    // the check and the enqueue. Same verdict as a front-door shed.
    if (admission != nullptr) *admission = Admission::kShedQueueFull;
    shard.shed_full->Increment();
  }
  return submitted;
}

int ShardedRouter::RetryAfterSeconds(size_t shard) const {
  if (shard >= shards_.size()) return 1;
  const double wait_s =
      shards_[shard].server->EstimatedQueueWaitUs() / 1e6;
  return std::max(1, static_cast<int>(std::ceil(wait_s)));
}

std::string ShardedRouter::StatszJson() const {
  std::ostringstream out;
  out << "{\"num_shards\":" << shards_.size()
      << ",\"hash_version\":" << kShardHashVersion << ",\"shards\":[";
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (i != 0) out << ",";
    const Shard& shard = shards_[i];
    out << "{\"admitted\":" << shard.admitted->Value()
        << ",\"shed_queue_full\":" << shard.shed_full->Value()
        << ",\"shed_slo\":" << shard.shed_slo->Value()
        << ",\"server\":" << shard.server->StatszJson() << "}";
  }
  out << "]}";
  return out.str();
}

void ShardedRouter::Shutdown() {
  for (Shard& shard : shards_) {
    if (shard.server != nullptr) shard.server->Shutdown();
  }
}

}  // namespace fab::net
