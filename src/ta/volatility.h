#ifndef FAB_TA_VOLATILITY_H_
#define FAB_TA_VOLATILITY_H_

#include <vector>

#include "table/column.h"

namespace fab::ta {

/// Bollinger bands: middle = SMA(window), upper/lower = middle ± k·σ,
/// bandwidth = (upper - lower)/middle, percent_b = (close - lower)/(upper -
/// lower).
struct BollingerResult {
  table::Column middle;
  table::Column upper;
  table::Column lower;
  table::Column bandwidth;
  table::Column percent_b;
};
BollingerResult Bollinger(const std::vector<double>& close, int window,
                          double num_stddev = 2.0);

/// Wilder's Average True Range over OHLC data.
table::Column Atr(const std::vector<double>& high,
                  const std::vector<double>& low,
                  const std::vector<double>& close, int window);

/// Annualized realized volatility of daily log returns over the trailing
/// window (√365 scaling — crypto trades every day).
table::Column RealizedVolatility(const std::vector<double>& close, int window);

/// Drawdown from the running maximum, in [-1, 0].
table::Column Drawdown(const std::vector<double>& close);

}  // namespace fab::ta

#endif  // FAB_TA_VOLATILITY_H_
