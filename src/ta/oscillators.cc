#include "ta/oscillators.h"

#include <algorithm>
#include <cmath>

#include "ta/moving_averages.h"

namespace fab::ta {

table::Column Rsi(const std::vector<double>& close, int window) {
  const size_t n = close.size();
  const size_t w = static_cast<size_t>(window);
  table::Column out(n);
  if (window < 1 || n < w + 1) return out;
  double avg_gain = 0.0;
  double avg_loss = 0.0;
  for (size_t i = 1; i <= w; ++i) {
    const double d = close[i] - close[i - 1];
    if (d > 0.0) {
      avg_gain += d;
    } else {
      avg_loss -= d;
    }
  }
  avg_gain /= static_cast<double>(w);
  avg_loss /= static_cast<double>(w);
  auto rsi_of = [](double gain, double loss) {
    if (loss == 0.0) return gain == 0.0 ? 50.0 : 100.0;
    const double rs = gain / loss;
    return 100.0 - 100.0 / (1.0 + rs);
  };
  out.Set(w, rsi_of(avg_gain, avg_loss));
  for (size_t i = w + 1; i < n; ++i) {
    const double d = close[i] - close[i - 1];
    const double gain = d > 0.0 ? d : 0.0;
    const double loss = d < 0.0 ? -d : 0.0;
    // Wilder smoothing.
    avg_gain = (avg_gain * (static_cast<double>(w) - 1.0) + gain) /
               static_cast<double>(w);
    avg_loss = (avg_loss * (static_cast<double>(w) - 1.0) + loss) /
               static_cast<double>(w);
    out.Set(i, rsi_of(avg_gain, avg_loss));
  }
  return out;
}

MacdResult Macd(const std::vector<double>& close, int fast, int slow,
                int signal_window) {
  const size_t n = close.size();
  MacdResult r{table::Column(n), table::Column(n), table::Column(n)};
  const table::Column ema_fast = Ema(close, fast);
  const table::Column ema_slow = Ema(close, slow);
  std::vector<double> line_dense;
  std::vector<size_t> line_rows;
  for (size_t i = 0; i < n; ++i) {
    if (ema_fast.is_valid(i) && ema_slow.is_valid(i)) {
      r.line.Set(i, ema_fast.value(i) - ema_slow.value(i));
      line_dense.push_back(r.line.value(i));
      line_rows.push_back(i);
    }
  }
  const table::Column sig = Ema(line_dense, signal_window);
  for (size_t k = 0; k < line_rows.size(); ++k) {
    if (sig.is_valid(k)) {
      const size_t i = line_rows[k];
      r.signal.Set(i, sig.value(k));
      r.histogram.Set(i, r.line.value(i) - sig.value(k));
    }
  }
  return r;
}

table::Column Roc(const std::vector<double>& close, int window) {
  const size_t n = close.size();
  const size_t w = static_cast<size_t>(window);
  table::Column out(n);
  if (window < 1) return out;
  for (size_t i = w; i < n; ++i) {
    if (close[i - w] != 0.0) {
      out.Set(i, 100.0 * (close[i] / close[i - w] - 1.0));
    }
  }
  return out;
}

table::Column Momentum(const std::vector<double>& close, int window) {
  const size_t n = close.size();
  const size_t w = static_cast<size_t>(window);
  table::Column out(n);
  if (window < 1) return out;
  for (size_t i = w; i < n; ++i) out.Set(i, close[i] - close[i - w]);
  return out;
}

StochasticResult Stochastic(const std::vector<double>& high,
                            const std::vector<double>& low,
                            const std::vector<double>& close, int k_window,
                            int d_window) {
  const size_t n = close.size();
  StochasticResult r{table::Column(n), table::Column(n)};
  if (k_window < 1 || high.size() != n || low.size() != n) return r;
  const size_t kw = static_cast<size_t>(k_window);
  std::vector<double> k_dense;
  std::vector<size_t> k_rows;
  for (size_t i = kw - 1; i < n; ++i) {
    double hh = high[i];
    double ll = low[i];
    for (size_t j = i + 1 - kw; j <= i; ++j) {
      hh = std::max(hh, high[j]);
      ll = std::min(ll, low[j]);
    }
    const double denom = hh - ll;
    const double k = denom > 0.0 ? 100.0 * (close[i] - ll) / denom : 50.0;
    r.percent_k.Set(i, k);
    k_dense.push_back(k);
    k_rows.push_back(i);
  }
  const table::Column d = Sma(k_dense, d_window);
  for (size_t k = 0; k < k_rows.size(); ++k) {
    if (d.is_valid(k)) r.percent_d.Set(k_rows[k], d.value(k));
  }
  return r;
}

table::Column WilliamsR(const std::vector<double>& high,
                        const std::vector<double>& low,
                        const std::vector<double>& close, int window) {
  const size_t n = close.size();
  table::Column out(n);
  if (window < 1 || high.size() != n || low.size() != n) return out;
  const size_t w = static_cast<size_t>(window);
  for (size_t i = w - 1; i < n; ++i) {
    double hh = high[i];
    double ll = low[i];
    for (size_t j = i + 1 - w; j <= i; ++j) {
      hh = std::max(hh, high[j]);
      ll = std::min(ll, low[j]);
    }
    const double denom = hh - ll;
    out.Set(i, denom > 0.0 ? -100.0 * (hh - close[i]) / denom : -50.0);
  }
  return out;
}

table::Column Cci(const std::vector<double>& high,
                  const std::vector<double>& low,
                  const std::vector<double>& close, int window) {
  const size_t n = close.size();
  table::Column out(n);
  if (window < 1 || high.size() != n || low.size() != n) return out;
  const size_t w = static_cast<size_t>(window);
  std::vector<double> tp(n);
  for (size_t i = 0; i < n; ++i) tp[i] = (high[i] + low[i] + close[i]) / 3.0;
  for (size_t i = w - 1; i < n; ++i) {
    double mean = 0.0;
    for (size_t j = i + 1 - w; j <= i; ++j) mean += tp[j];
    mean /= static_cast<double>(w);
    double mad = 0.0;
    for (size_t j = i + 1 - w; j <= i; ++j) mad += std::fabs(tp[j] - mean);
    mad /= static_cast<double>(w);
    out.Set(i, mad > 0.0 ? (tp[i] - mean) / (0.015 * mad) : 0.0);
  }
  return out;
}

}  // namespace fab::ta
