#ifndef FAB_TA_OSCILLATORS_H_
#define FAB_TA_OSCILLATORS_H_

#include <vector>

#include "table/column.h"

namespace fab::ta {

/// Wilder's Relative Strength Index in [0, 100]; null during warm-up.
table::Column Rsi(const std::vector<double>& close, int window);

/// MACD components: line = EMA(fast) - EMA(slow), signal = EMA(line,
/// signal_window), histogram = line - signal.
struct MacdResult {
  table::Column line;
  table::Column signal;
  table::Column histogram;
};
MacdResult Macd(const std::vector<double>& close, int fast = 12,
                int slow = 26, int signal_window = 9);

/// Rate of change: 100 * (close_t / close_{t-window} - 1).
table::Column Roc(const std::vector<double>& close, int window);

/// Momentum: close_t - close_{t-window}.
table::Column Momentum(const std::vector<double>& close, int window);

/// Stochastic oscillator %K (fast) and %D (SMA of %K over d_window).
struct StochasticResult {
  table::Column percent_k;
  table::Column percent_d;
};
StochasticResult Stochastic(const std::vector<double>& high,
                            const std::vector<double>& low,
                            const std::vector<double>& close, int k_window,
                            int d_window);

/// Williams %R in [-100, 0].
table::Column WilliamsR(const std::vector<double>& high,
                        const std::vector<double>& low,
                        const std::vector<double>& close, int window);

/// Commodity Channel Index over the typical price (H+L+C)/3.
table::Column Cci(const std::vector<double>& high,
                  const std::vector<double>& low,
                  const std::vector<double>& close, int window);

}  // namespace fab::ta

#endif  // FAB_TA_OSCILLATORS_H_
