#include "ta/volume.h"

namespace fab::ta {

table::Column Obv(const std::vector<double>& close,
                  const std::vector<double>& volume) {
  const size_t n = close.size();
  table::Column out(n);
  if (n == 0 || volume.size() != n) return out;
  double obv = 0.0;
  out.Set(0, obv);
  for (size_t i = 1; i < n; ++i) {
    if (close[i] > close[i - 1]) {
      obv += volume[i];
    } else if (close[i] < close[i - 1]) {
      obv -= volume[i];
    }
    out.Set(i, obv);
  }
  return out;
}

table::Column ChaikinMoneyFlow(const std::vector<double>& high,
                               const std::vector<double>& low,
                               const std::vector<double>& close,
                               const std::vector<double>& volume, int window) {
  const size_t n = close.size();
  table::Column out(n);
  if (window < 1 || n < static_cast<size_t>(window) || high.size() != n ||
      low.size() != n || volume.size() != n) {
    return out;
  }
  const size_t w = static_cast<size_t>(window);
  std::vector<double> mfv(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const double range = high[i] - low[i];
    const double mult =
        range > 0.0 ? ((close[i] - low[i]) - (high[i] - close[i])) / range : 0.0;
    mfv[i] = mult * volume[i];
  }
  for (size_t i = w - 1; i < n; ++i) {
    double num = 0.0;
    double den = 0.0;
    for (size_t j = i + 1 - w; j <= i; ++j) {
      num += mfv[j];
      den += volume[j];
    }
    out.Set(i, den > 0.0 ? num / den : 0.0);
  }
  return out;
}

table::Column RollingVwap(const std::vector<double>& high,
                          const std::vector<double>& low,
                          const std::vector<double>& close,
                          const std::vector<double>& volume, int window) {
  const size_t n = close.size();
  table::Column out(n);
  if (window < 1 || n < static_cast<size_t>(window) || high.size() != n ||
      low.size() != n || volume.size() != n) {
    return out;
  }
  const size_t w = static_cast<size_t>(window);
  for (size_t i = w - 1; i < n; ++i) {
    double num = 0.0;
    double den = 0.0;
    for (size_t j = i + 1 - w; j <= i; ++j) {
      const double tp = (high[j] + low[j] + close[j]) / 3.0;
      num += tp * volume[j];
      den += volume[j];
    }
    // A window with no traded volume has no volume-weighted price; leave
    // the cell null (a 0.0 sentinel would be a price-scale discontinuity
    // during exchange outages) and let downstream cleaning drop the row.
    if (den > 0.0) out.Set(i, num / den);
  }
  return out;
}

}  // namespace fab::ta
