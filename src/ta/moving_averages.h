#ifndef FAB_TA_MOVING_AVERAGES_H_
#define FAB_TA_MOVING_AVERAGES_H_

#include <vector>

#include "table/column.h"

namespace fab::ta {

/// Simple moving average over the trailing `window` observations. Rows
/// before the warm-up period are null. Requires window >= 1.
table::Column Sma(const std::vector<double>& values, int window);

/// Exponential moving average with smoothing 2/(window+1), seeded with the
/// SMA of the first `window` values (the convention used by most charting
/// libraries). Rows before the seed are null.
table::Column Ema(const std::vector<double>& values, int window);

/// Linearly weighted moving average (weight i+1 on the i-th most recent).
table::Column Wma(const std::vector<double>& values, int window);

}  // namespace fab::ta

#endif  // FAB_TA_MOVING_AVERAGES_H_
