#ifndef FAB_TA_VOLUME_H_
#define FAB_TA_VOLUME_H_

#include <vector>

#include "table/column.h"

namespace fab::ta {

/// On-Balance Volume: cumulative signed volume keyed on close-to-close
/// direction.
table::Column Obv(const std::vector<double>& close,
                  const std::vector<double>& volume);

/// Chaikin money-flow over the trailing window.
table::Column ChaikinMoneyFlow(const std::vector<double>& high,
                               const std::vector<double>& low,
                               const std::vector<double>& close,
                               const std::vector<double>& volume, int window);

/// Rolling volume-weighted average price over the trailing window, using
/// the typical price (H+L+C)/3.
table::Column RollingVwap(const std::vector<double>& high,
                          const std::vector<double>& low,
                          const std::vector<double>& close,
                          const std::vector<double>& volume, int window);

}  // namespace fab::ta

#endif  // FAB_TA_VOLUME_H_
