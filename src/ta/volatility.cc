#include "ta/volatility.h"

#include <algorithm>
#include <cmath>

#include "ta/moving_averages.h"

namespace fab::ta {

BollingerResult Bollinger(const std::vector<double>& close, int window,
                          double num_stddev) {
  const size_t n = close.size();
  BollingerResult r{table::Column(n), table::Column(n), table::Column(n),
                    table::Column(n), table::Column(n)};
  if (window < 2 || n < static_cast<size_t>(window)) return r;
  const size_t w = static_cast<size_t>(window);
  const table::Column mid = Sma(close, window);
  for (size_t i = w - 1; i < n; ++i) {
    const double m = mid.value(i);
    double acc = 0.0;
    for (size_t j = i + 1 - w; j <= i; ++j) acc += (close[j] - m) * (close[j] - m);
    const double sigma = std::sqrt(acc / static_cast<double>(w));
    const double up = m + num_stddev * sigma;
    const double lo = m - num_stddev * sigma;
    r.middle.Set(i, m);
    r.upper.Set(i, up);
    r.lower.Set(i, lo);
    if (m != 0.0) r.bandwidth.Set(i, (up - lo) / m);
    if (up > lo) r.percent_b.Set(i, (close[i] - lo) / (up - lo));
  }
  return r;
}

table::Column Atr(const std::vector<double>& high,
                  const std::vector<double>& low,
                  const std::vector<double>& close, int window) {
  const size_t n = close.size();
  table::Column out(n);
  if (window < 1 || n < 2 || high.size() != n || low.size() != n) return out;
  const size_t w = static_cast<size_t>(window);
  std::vector<double> tr(n, 0.0);
  tr[0] = high[0] - low[0];
  for (size_t i = 1; i < n; ++i) {
    tr[i] = std::max({high[i] - low[i], std::fabs(high[i] - close[i - 1]),
                      std::fabs(low[i] - close[i - 1])});
  }
  if (n < w) return out;
  double atr = 0.0;
  for (size_t i = 0; i < w; ++i) atr += tr[i];
  atr /= static_cast<double>(w);
  out.Set(w - 1, atr);
  for (size_t i = w; i < n; ++i) {
    // Wilder smoothing.
    atr = (atr * (static_cast<double>(w) - 1.0) + tr[i]) / static_cast<double>(w);
    out.Set(i, atr);
  }
  return out;
}

table::Column RealizedVolatility(const std::vector<double>& close, int window) {
  const size_t n = close.size();
  table::Column out(n);
  if (window < 2 || n < static_cast<size_t>(window) + 1) return out;
  const size_t w = static_cast<size_t>(window);
  std::vector<double> lr(n, 0.0);
  for (size_t i = 1; i < n; ++i) {
    lr[i] = (close[i] > 0.0 && close[i - 1] > 0.0)
                ? std::log(close[i] / close[i - 1])
                : 0.0;
  }
  for (size_t i = w; i < n; ++i) {
    double mean = 0.0;
    for (size_t j = i + 1 - w; j <= i; ++j) mean += lr[j];
    mean /= static_cast<double>(w);
    double acc = 0.0;
    for (size_t j = i + 1 - w; j <= i; ++j) acc += (lr[j] - mean) * (lr[j] - mean);
    const double daily = std::sqrt(acc / static_cast<double>(w - 1));
    out.Set(i, daily * std::sqrt(365.0));
  }
  return out;
}

table::Column Drawdown(const std::vector<double>& close) {
  const size_t n = close.size();
  table::Column out(n);
  double peak = 0.0;
  for (size_t i = 0; i < n; ++i) {
    peak = std::max(peak, close[i]);
    out.Set(i, peak > 0.0 ? close[i] / peak - 1.0 : 0.0);
  }
  return out;
}

}  // namespace fab::ta
