#include "ta/moving_averages.h"

namespace fab::ta {

table::Column Sma(const std::vector<double>& values, int window) {
  const size_t n = values.size();
  const size_t w = static_cast<size_t>(window);
  table::Column out(n);
  if (window < 1 || n < w) return out;
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sum += values[i];
    if (i >= w) sum -= values[i - w];
    if (i + 1 >= w) out.Set(i, sum / static_cast<double>(w));
  }
  return out;
}

table::Column Ema(const std::vector<double>& values, int window) {
  const size_t n = values.size();
  const size_t w = static_cast<size_t>(window);
  table::Column out(n);
  if (window < 1 || n < w) return out;
  // Seed with the SMA of the first `window` values.
  double seed = 0.0;
  for (size_t i = 0; i < w; ++i) seed += values[i];
  seed /= static_cast<double>(w);
  const double alpha = 2.0 / (static_cast<double>(window) + 1.0);
  double ema = seed;
  out.Set(w - 1, ema);
  for (size_t i = w; i < n; ++i) {
    ema = alpha * values[i] + (1.0 - alpha) * ema;
    out.Set(i, ema);
  }
  return out;
}

table::Column Wma(const std::vector<double>& values, int window) {
  const size_t n = values.size();
  const size_t w = static_cast<size_t>(window);
  table::Column out(n);
  if (window < 1 || n < w) return out;
  const double denom = static_cast<double>(window) *
                       (static_cast<double>(window) + 1.0) / 2.0;
  for (size_t i = w - 1; i < n; ++i) {
    double acc = 0.0;
    for (size_t k = 0; k < w; ++k) {
      // Most recent value gets the largest weight.
      acc += values[i - k] * static_cast<double>(window - static_cast<int>(k));
    }
    out.Set(i, acc / denom);
  }
  return out;
}

}  // namespace fab::ta
