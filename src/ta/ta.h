#ifndef FAB_TA_TA_H_
#define FAB_TA_TA_H_

/// Umbrella header for the technical-indicator library.

#include "ta/moving_averages.h"   // IWYU pragma: export
#include "ta/oscillators.h"      // IWYU pragma: export
#include "ta/volatility.h"       // IWYU pragma: export
#include "ta/volume.h"           // IWYU pragma: export

#endif  // FAB_TA_TA_H_
