#ifndef FAB_TABLE_CSV_H_
#define FAB_TABLE_CSV_H_

#include <string>

#include "table/table.h"
#include "util/status.h"

namespace fab::table {

/// Writes `t` as CSV: header row `date,<col>,...`, one row per date, empty
/// fields for nulls, full double precision (%.17g round-trips exactly).
[[nodiscard]] Status WriteCsv(const Table& t, const std::string& path);

/// Reads a CSV produced by `WriteCsv` (or any CSV whose first column is an
/// ISO date and whose remaining columns are numeric-or-empty). Rows must be
/// in strictly increasing date order.
[[nodiscard]] Result<Table> ReadCsv(const std::string& path);

}  // namespace fab::table

#endif  // FAB_TABLE_CSV_H_
