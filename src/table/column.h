#ifndef FAB_TABLE_COLUMN_H_
#define FAB_TABLE_COLUMN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace fab::table {

/// A column of doubles with an explicit validity mask (Arrow-style).
///
/// Missing observations are first-class: the simulated feeds start at
/// different dates (e.g. USDC metrics begin late 2018) and the cleaning
/// pipeline reasons about null runs explicitly rather than via NaN
/// sentinels. Values at invalid slots are unspecified but finite-safe
/// (initialized to 0).
class Column {
 public:
  Column() = default;

  /// A column of `n` null slots.
  explicit Column(size_t n) : values_(n, 0.0), valid_(n, 0) {}

  /// A fully valid column holding `values`.
  explicit Column(std::vector<double> values)
      : values_(std::move(values)), valid_(values_.size(), 1) {}

  /// A column with an explicit mask. Requires equal lengths.
  Column(std::vector<double> values, std::vector<uint8_t> valid);

  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  /// Value at `i` (unspecified when null).
  double value(size_t i) const { return values_[i]; }
  bool is_valid(size_t i) const { return valid_[i] != 0; }
  bool is_null(size_t i) const { return valid_[i] == 0; }

  /// Sets slot `i` to a valid value.
  void Set(size_t i, double v) {
    values_[i] = v;
    valid_[i] = 1;
  }

  /// Marks slot `i` null.
  void SetNull(size_t i) {
    values_[i] = 0.0;
    valid_[i] = 0;
  }

  /// Appends a valid value.
  void Append(double v) {
    values_.push_back(v);
    valid_.push_back(1);
  }

  /// Appends a null slot.
  void AppendNull() {
    values_.push_back(0.0);
    valid_.push_back(0);
  }

  /// Number of null slots.
  size_t null_count() const;

  /// Fraction of null slots, 0 for an empty column.
  double null_fraction() const;

  /// Number of distinct values among valid slots.
  size_t distinct_valid_count() const;

  /// Length of the longest run of consecutive identical valid values
  /// (null slots break runs). 0 for an all-null column.
  size_t longest_flat_run() const;

  /// Valid values only, in order.
  std::vector<double> ValidValues() const;

  /// All values with nulls replaced by `fill`.
  std::vector<double> ToDense(double fill) const;

  /// Rows [start, start+count) as a new column.
  Column Slice(size_t start, size_t count) const;

  /// Gathers rows listed in `indices` (each must be < size()).
  Column Take(const std::vector<size_t>& indices) const;

  /// Elementwise equality including mask.
  bool EqualsExactly(const Column& other) const;

  /// Raw storage accessors (values at null slots are unspecified).
  const std::vector<double>& values() const { return values_; }
  const std::vector<uint8_t>& validity() const { return valid_; }

 private:
  std::vector<double> values_;
  std::vector<uint8_t> valid_;
};

}  // namespace fab::table

#endif  // FAB_TABLE_COLUMN_H_
