#include "table/table.h"

#include <algorithm>
#include <cstddef>

#include "util/check.h"

namespace fab::table {

Result<Table> Table::Create(std::vector<Date> index) {
  for (size_t i = 1; i < index.size(); ++i) {
    if (!(index[i - 1] < index[i])) {
      return Status::InvalidArgument(
          "table index must be strictly increasing (violated at row " +
          std::to_string(i) + ")");
    }
  }
  Table t;
  t.index_ = std::move(index);
  return t;
}

Status Table::AddColumn(const std::string& name, Column column) {
  if (HasColumn(name)) {
    return Status::AlreadyExists("column already exists: " + name);
  }
  if (column.size() != num_rows()) {
    return Status::InvalidArgument(
        "column '" + name + "' has " + std::to_string(column.size()) +
        " rows, table has " + std::to_string(num_rows()));
  }
  name_to_pos_[name] = columns_.size();
  names_.push_back(name);
  columns_.push_back(std::move(column));
  return Status::OK();
}

Status Table::AddColumn(const std::string& name, std::vector<double> values) {
  return AddColumn(name, Column(std::move(values)));
}

Status Table::DropColumn(const std::string& name) {
  auto it = name_to_pos_.find(name);
  if (it == name_to_pos_.end()) {
    return Status::NotFound("no such column: " + name);
  }
  const size_t pos = it->second;
  names_.erase(names_.begin() + static_cast<std::ptrdiff_t>(pos));
  columns_.erase(columns_.begin() + static_cast<std::ptrdiff_t>(pos));
  name_to_pos_.erase(it);
  // Per-entry decrement; no cross-entry state, so visit order cannot
  // change the result. fablint:allow(det-unordered-iteration)
  for (auto& [n, p] : name_to_pos_) {
    if (p > pos) --p;
  }
  return Status::OK();
}

Status Table::RenameColumn(const std::string& from, const std::string& to) {
  auto it = name_to_pos_.find(from);
  if (it == name_to_pos_.end()) {
    return Status::NotFound("no such column: " + from);
  }
  if (from == to) return Status::OK();
  if (HasColumn(to)) {
    return Status::AlreadyExists("column already exists: " + to);
  }
  const size_t pos = it->second;
  name_to_pos_.erase(it);
  name_to_pos_[to] = pos;
  names_[pos] = to;
  return Status::OK();
}

Result<const Column*> Table::GetColumn(const std::string& name) const {
  auto it = name_to_pos_.find(name);
  if (it == name_to_pos_.end()) {
    return Status::NotFound("no such column: " + name);
  }
  FAB_DCHECK(it->second < columns_.size())
      << "name->position map points past " << columns_.size()
      << " columns for '" << name << "'";
  return static_cast<const Column*>(&columns_[it->second]);
}

Result<Column*> Table::GetMutableColumn(const std::string& name) {
  auto it = name_to_pos_.find(name);
  if (it == name_to_pos_.end()) {
    return Status::NotFound("no such column: " + name);
  }
  FAB_DCHECK(it->second < columns_.size())
      << "name->position map points past " << columns_.size()
      << " columns for '" << name << "'";
  return &columns_[it->second];
}

Status Table::SetColumn(const std::string& name, Column column) {
  auto it = name_to_pos_.find(name);
  if (it == name_to_pos_.end()) {
    return Status::NotFound("no such column: " + name);
  }
  if (column.size() != num_rows()) {
    return Status::InvalidArgument("column size mismatch for: " + name);
  }
  columns_[it->second] = std::move(column);
  return Status::OK();
}

int Table::FindRow(Date d) const {
  auto it = std::lower_bound(index_.begin(), index_.end(), d);
  if (it == index_.end() || *it != d) return -1;
  return static_cast<int>(it - index_.begin());
}

Table Table::SliceRows(Date start, Date end) const {
  auto lo = std::lower_bound(index_.begin(), index_.end(), start);
  auto hi = std::upper_bound(index_.begin(), index_.end(), end);
  const size_t begin = static_cast<size_t>(lo - index_.begin());
  const size_t count = hi > lo ? static_cast<size_t>(hi - lo) : 0;
  return SliceRowRange(begin, count);
}

Table Table::SliceRowRange(size_t start, size_t count) const {
  start = std::min(start, num_rows());
  count = std::min(count, num_rows() - start);
  Table out;
  out.index_.assign(index_.begin() + static_cast<std::ptrdiff_t>(start),
                    index_.begin() + static_cast<std::ptrdiff_t>(start + count));
  out.names_ = names_;
  out.name_to_pos_ = name_to_pos_;
  out.columns_.reserve(columns_.size());
  for (const Column& c : columns_) out.columns_.push_back(c.Slice(start, count));
  return out;
}

Result<Table> Table::SelectColumns(const std::vector<std::string>& names) const {
  Table out;
  out.index_ = index_;
  for (const auto& name : names) {
    auto it = name_to_pos_.find(name);
    if (it == name_to_pos_.end()) {
      return Status::NotFound("no such column: " + name);
    }
    FAB_RETURN_IF_ERROR(out.AddColumn(name, columns_[it->second]));
  }
  return out;
}

Result<Table> Table::InnerJoin(const Table& other) const {
  for (const auto& name : other.names_) {
    if (HasColumn(name)) {
      return Status::AlreadyExists("duplicate column in join: " + name);
    }
  }
  // Intersect the two sorted date indexes.
  std::vector<Date> merged;
  std::vector<size_t> left_rows, right_rows;
  size_t i = 0, j = 0;
  while (i < index_.size() && j < other.index_.size()) {
    if (index_[i] < other.index_[j]) {
      ++i;
    } else if (other.index_[j] < index_[i]) {
      ++j;
    } else {
      merged.push_back(index_[i]);
      left_rows.push_back(i);
      right_rows.push_back(j);
      ++i;
      ++j;
    }
  }
  Table out;
  out.index_ = std::move(merged);
  for (size_t c = 0; c < columns_.size(); ++c) {
    FAB_RETURN_IF_ERROR(out.AddColumn(names_[c], columns_[c].Take(left_rows)));
  }
  for (size_t c = 0; c < other.columns_.size(); ++c) {
    FAB_RETURN_IF_ERROR(
        out.AddColumn(other.names_[c], other.columns_[c].Take(right_rows)));
  }
  return out;
}

Table Table::DropRowsWithNulls() const {
  std::vector<size_t> keep;
  keep.reserve(num_rows());
  for (size_t r = 0; r < num_rows(); ++r) {
    bool all_valid = true;
    for (const Column& c : columns_) {
      if (c.is_null(r)) {
        all_valid = false;
        break;
      }
    }
    if (all_valid) keep.push_back(r);
  }
  Table out;
  out.index_.reserve(keep.size());
  for (size_t r : keep) out.index_.push_back(index_[r]);
  out.names_ = names_;
  out.name_to_pos_ = name_to_pos_;
  out.columns_.reserve(columns_.size());
  for (const Column& c : columns_) out.columns_.push_back(c.Take(keep));
  return out;
}

size_t Table::TotalNullCount() const {
  size_t n = 0;
  for (const Column& c : columns_) n += c.null_count();
  return n;
}

}  // namespace fab::table
