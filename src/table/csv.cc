#include "table/csv.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace fab::table {

Status WriteCsv(const Table& t, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out << "date";
  for (const auto& name : t.column_names()) out << ',' << name;
  out << '\n';
  char buf[64];
  for (size_t r = 0; r < t.num_rows(); ++r) {
    out << t.index()[r].ToString();
    for (const auto& name : t.column_names()) {
      const Column& c = **t.GetColumn(name);
      out << ',';
      if (c.is_valid(r)) {
        std::snprintf(buf, sizeof(buf), "%.17g", c.value(r));
        out << buf;
      }
    }
    out << '\n';
  }
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<Table> ReadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::string line;
  if (!std::getline(in, line)) {
    return Status::IoError("empty csv: " + path);
  }
  // Strip a UTF-8 BOM and trailing CR if present.
  if (line.size() >= 3 && line.compare(0, 3, "\xEF\xBB\xBF") == 0) {
    line.erase(0, 3);
  }
  if (!line.empty() && line.back() == '\r') line.pop_back();
  std::vector<std::string> header = Split(line, ',');
  if (header.empty() || ToLower(Trim(header[0])) != "date") {
    return Status::InvalidArgument("csv header must start with 'date': " + path);
  }
  const size_t ncols = header.size() - 1;

  std::vector<Date> dates;
  std::vector<Column> cols(ncols);
  size_t row = 0;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (Trim(line).empty()) continue;
    std::vector<std::string> fields = Split(line, ',');
    if (fields.size() != header.size()) {
      return Status::InvalidArgument("row " + std::to_string(row + 1) +
                                     " has wrong field count in: " + path);
    }
    FAB_ASSIGN_OR_RETURN(Date d, Date::FromString(Trim(fields[0])));
    dates.push_back(d);
    for (size_t c = 0; c < ncols; ++c) {
      const std::string field = Trim(fields[c + 1]);
      if (field.empty()) {
        cols[c].AppendNull();
        continue;
      }
      char* end = nullptr;
      const double v = std::strtod(field.c_str(), &end);
      if (end == field.c_str() || *end != '\0') {
        return Status::InvalidArgument("non-numeric field '" + field +
                                       "' at row " + std::to_string(row + 1));
      }
      cols[c].Append(v);
    }
    ++row;
  }
  FAB_ASSIGN_OR_RETURN(Table t, Table::Create(std::move(dates)));
  for (size_t c = 0; c < ncols; ++c) {
    FAB_RETURN_IF_ERROR(t.AddColumn(Trim(header[c + 1]), std::move(cols[c])));
  }
  return t;
}

}  // namespace fab::table
