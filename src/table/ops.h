#ifndef FAB_TABLE_OPS_H_
#define FAB_TABLE_OPS_H_

#include <string>
#include <vector>

#include "table/table.h"
#include "util/status.h"

namespace fab::table {

/// Column-level transforms -------------------------------------------------

/// Fills interior null runs by linear interpolation between the nearest
/// valid neighbours. Leading/trailing null runs are left null (there is
/// nothing to interpolate between).
Column InterpolateLinear(const Column& c);

/// Fills each null with the most recent prior valid value.
Column ForwardFill(const Column& c);

/// Fills each null with the next later valid value.
Column BackwardFill(const Column& c);

/// Shifts values forward by `periods` rows (positive = later rows hold
/// earlier values, pandas-style); vacated slots become null. Negative
/// `periods` shifts backward, which is how supervised targets "price in
/// `w` days" are built.
Column Shift(const Column& c, int periods);

/// Per-row percentage change vs `periods` rows earlier; first rows null.
Column PctChange(const Column& c, int periods);

/// Natural-log return vs `periods` rows earlier (null where either side is
/// null or non-positive).
Column LogReturn(const Column& c, int periods);

/// Table-level cleaning ----------------------------------------------------

/// Summary of what `CleanTable` removed, for reporting.
struct CleaningReport {
  std::vector<std::string> dropped_sparse;    ///< too many nulls
  std::vector<std::string> dropped_flat;      ///< too long a constant run
  std::vector<std::string> dropped_duplicate; ///< identical to an earlier column
  size_t interpolated_cells = 0;              ///< nulls filled by interpolation
};

/// Parameters of the paper's preprocessing phase (Section 3.1.2): fill
/// gaps by interpolation, drop features with flat or missing values for
/// very long periods, drop duplicates.
struct CleaningOptions {
  /// Columns with more than this fraction of nulls (after restriction to
  /// the study period) are dropped.
  double max_null_fraction = 0.30;
  /// Columns whose longest constant run exceeds this many rows are
  /// considered flat and dropped.
  size_t max_flat_run = 180;
  /// Drop columns that are exact duplicates of an earlier column.
  bool drop_duplicates = true;
  /// Interpolate interior nulls on surviving columns.
  bool interpolate = true;
};

/// Applies the cleaning pipeline in place; returns what was removed.
CleaningReport CleanTable(Table* t, const CleaningOptions& options);

/// Names of columns that have at least one valid value on or before
/// `cutoff` — i.e. metrics that had started recording by the period's
/// initial date (the paper discards later-starting metrics per set).
std::vector<std::string> ColumnsStartedBy(const Table& t, Date cutoff);

}  // namespace fab::table

#endif  // FAB_TABLE_OPS_H_
