#ifndef FAB_TABLE_TABLE_H_
#define FAB_TABLE_TABLE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "table/column.h"
#include "util/date.h"
#include "util/status.h"

namespace fab::table {

/// An in-memory columnar table over a strictly increasing daily date index.
///
/// All series in the study are daily observations, so the row index is a
/// vector of `Date`s shared by every column. Columns are double-typed with
/// validity masks (`Column`). Structural edits (add/drop/rename) are O(1)
/// amortized; lookups by name go through a hash map.
class Table {
 public:
  Table() = default;

  /// A table with the given date index and no columns. The index must be
  /// strictly increasing.
  [[nodiscard]] static Result<Table> Create(std::vector<Date> index);

  size_t num_rows() const { return index_.size(); }
  size_t num_columns() const { return columns_.size(); }

  const std::vector<Date>& index() const { return index_; }
  const std::vector<std::string>& column_names() const { return names_; }

  bool HasColumn(const std::string& name) const {
    return name_to_pos_.count(name) > 0;
  }

  /// Adds a column. Fails if the name exists or the length differs from the
  /// index length.
  [[nodiscard]] Status AddColumn(const std::string& name, Column column);

  /// Convenience: adds a fully valid column from raw values.
  [[nodiscard]] Status AddColumn(const std::string& name, std::vector<double> values);

  /// Removes a column. Fails if absent.
  [[nodiscard]] Status DropColumn(const std::string& name);

  /// Renames a column. Fails if `from` is absent or `to` exists.
  [[nodiscard]] Status RenameColumn(const std::string& from, const std::string& to);

  /// Borrow a column by name.
  [[nodiscard]] Result<const Column*> GetColumn(const std::string& name) const;
  [[nodiscard]] Result<Column*> GetMutableColumn(const std::string& name);

  /// Replaces an existing column's data. Fails if absent or mis-sized.
  [[nodiscard]] Status SetColumn(const std::string& name, Column column);

  /// Position of the row whose date equals `d`, or -1.
  int FindRow(Date d) const;

  /// Rows with dates in [start, end] inclusive, all columns.
  Table SliceRows(Date start, Date end) const;

  /// Rows [start, start+count), all columns.
  Table SliceRowRange(size_t start, size_t count) const;

  /// New table containing only `names`, in that order. Fails on a missing
  /// name.
  [[nodiscard]] Result<Table> SelectColumns(const std::vector<std::string>& names) const;

  /// Inner-joins `other` on the date index: the result holds the
  /// intersection of dates and the union of columns. Fails on duplicate
  /// column names.
  [[nodiscard]] Result<Table> InnerJoin(const Table& other) const;

  /// Rows where every column is valid.
  Table DropRowsWithNulls() const;

  /// Total null slots across all columns.
  size_t TotalNullCount() const;

 private:
  std::vector<Date> index_;
  std::vector<std::string> names_;
  std::vector<Column> columns_;
  // det audit: keyed lookups plus one order-independent per-entry fixup
  // in DropColumn; column order lives in names_/columns_, never here.
  std::unordered_map<std::string, size_t> name_to_pos_;
};

}  // namespace fab::table

#endif  // FAB_TABLE_TABLE_H_
