#include "table/column.h"

#include <algorithm>
#include <set>

#include "util/check.h"

namespace fab::table {

Column::Column(std::vector<double> values, std::vector<uint8_t> valid)
    : values_(std::move(values)), valid_(std::move(valid)) {
  FAB_CHECK(values_.size() == valid_.size())
      << "values/validity length mismatch: " << values_.size() << " vs "
      << valid_.size();
}

size_t Column::null_count() const {
  size_t n = 0;
  for (uint8_t v : valid_) n += (v == 0);
  return n;
}

double Column::null_fraction() const {
  if (values_.empty()) return 0.0;
  return static_cast<double>(null_count()) / static_cast<double>(size());
}

size_t Column::distinct_valid_count() const {
  std::set<double> seen;
  for (size_t i = 0; i < size(); ++i) {
    if (is_valid(i)) seen.insert(values_[i]);
  }
  return seen.size();
}

size_t Column::longest_flat_run() const {
  size_t best = 0;
  size_t run = 0;
  bool have_prev = false;
  double prev = 0.0;
  for (size_t i = 0; i < size(); ++i) {
    if (is_null(i)) {
      have_prev = false;
      run = 0;
      continue;
    }
    if (have_prev && values_[i] == prev) {
      ++run;
    } else {
      run = 1;
    }
    prev = values_[i];
    have_prev = true;
    best = std::max(best, run);
  }
  return best;
}

std::vector<double> Column::ValidValues() const {
  std::vector<double> out;
  out.reserve(size() - null_count());
  for (size_t i = 0; i < size(); ++i) {
    if (is_valid(i)) out.push_back(values_[i]);
  }
  return out;
}

std::vector<double> Column::ToDense(double fill) const {
  std::vector<double> out(size());
  for (size_t i = 0; i < size(); ++i) out[i] = is_valid(i) ? values_[i] : fill;
  return out;
}

Column Column::Slice(size_t start, size_t count) const {
  Column out(count);
  for (size_t i = 0; i < count; ++i) {
    if (is_valid(start + i)) out.Set(i, values_[start + i]);
  }
  return out;
}

Column Column::Take(const std::vector<size_t>& indices) const {
  Column out(indices.size());
  for (size_t i = 0; i < indices.size(); ++i) {
    const size_t src = indices[i];
    if (is_valid(src)) out.Set(i, values_[src]);
  }
  return out;
}

bool Column::EqualsExactly(const Column& other) const {
  if (size() != other.size()) return false;
  for (size_t i = 0; i < size(); ++i) {
    if (is_valid(i) != other.is_valid(i)) return false;
    if (is_valid(i) && values_[i] != other.values_[i]) return false;
  }
  return true;
}

}  // namespace fab::table
