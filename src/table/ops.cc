#include "table/ops.h"

#include <cmath>
#include <cstdlib>

namespace fab::table {

Column InterpolateLinear(const Column& c) {
  Column out = c;
  const size_t n = c.size();
  size_t i = 0;
  // Skip the leading null run.
  while (i < n && c.is_null(i)) ++i;
  while (i < n) {
    if (c.is_valid(i)) {
      ++i;
      continue;
    }
    // Null run starting at i; previous index (i-1) is valid.
    size_t j = i;
    while (j < n && c.is_null(j)) ++j;
    if (j == n) break;  // Trailing run: leave null.
    const double lo = c.value(i - 1);
    const double hi = c.value(j);
    const double span = static_cast<double>(j - (i - 1));
    for (size_t k = i; k < j; ++k) {
      const double frac = static_cast<double>(k - (i - 1)) / span;
      out.Set(k, lo + (hi - lo) * frac);
    }
    i = j;
  }
  return out;
}

Column ForwardFill(const Column& c) {
  Column out = c;
  bool have = false;
  double last = 0.0;
  for (size_t i = 0; i < c.size(); ++i) {
    if (c.is_valid(i)) {
      last = c.value(i);
      have = true;
    } else if (have) {
      out.Set(i, last);
    }
  }
  return out;
}

Column BackwardFill(const Column& c) {
  Column out = c;
  bool have = false;
  double next = 0.0;
  for (size_t i = c.size(); i-- > 0;) {
    if (c.is_valid(i)) {
      next = c.value(i);
      have = true;
    } else if (have) {
      out.Set(i, next);
    }
  }
  return out;
}

Column Shift(const Column& c, int periods) {
  const size_t n = c.size();
  Column out(n);
  for (size_t i = 0; i < n; ++i) {
    const long long src = static_cast<long long>(i) - periods;
    if (src < 0 || src >= static_cast<long long>(n)) continue;
    const size_t s = static_cast<size_t>(src);
    if (c.is_valid(s)) out.Set(i, c.value(s));
  }
  return out;
}

Column PctChange(const Column& c, int periods) {
  const size_t n = c.size();
  Column out(n);
  for (size_t i = 0; i < n; ++i) {
    const long long src = static_cast<long long>(i) - periods;
    if (src < 0 || src >= static_cast<long long>(n)) continue;
    const size_t s = static_cast<size_t>(src);
    if (c.is_valid(i) && c.is_valid(s) && c.value(s) != 0.0) {
      out.Set(i, (c.value(i) - c.value(s)) / c.value(s));
    }
  }
  return out;
}

Column LogReturn(const Column& c, int periods) {
  const size_t n = c.size();
  Column out(n);
  for (size_t i = 0; i < n; ++i) {
    const long long src = static_cast<long long>(i) - periods;
    if (src < 0 || src >= static_cast<long long>(n)) continue;
    const size_t s = static_cast<size_t>(src);
    if (c.is_valid(i) && c.is_valid(s) && c.value(i) > 0.0 && c.value(s) > 0.0) {
      out.Set(i, std::log(c.value(i) / c.value(s)));
    }
  }
  return out;
}

CleaningReport CleanTable(Table* t, const CleaningOptions& options) {
  CleaningReport report;
  // Pass 1: drop sparse and flat columns.
  std::vector<std::string> names = t->column_names();
  for (const auto& name : names) {
    const Column& c = **t->GetColumn(name);
    if (c.null_fraction() > options.max_null_fraction) {
      report.dropped_sparse.push_back(name);
      (void)t->DropColumn(name);
      continue;
    }
    if (c.longest_flat_run() > options.max_flat_run) {
      report.dropped_flat.push_back(name);
      (void)t->DropColumn(name);
    }
  }
  // Pass 2: drop exact duplicates of earlier columns.
  if (options.drop_duplicates) {
    names = t->column_names();
    for (size_t i = 0; i < names.size(); ++i) {
      const Column* ci = *t->GetColumn(names[i]);
      for (size_t j = 0; j < i; ++j) {
        if (!t->HasColumn(names[j])) continue;
        const Column* cj = *t->GetColumn(names[j]);
        if (ci->EqualsExactly(*cj)) {
          report.dropped_duplicate.push_back(names[i]);
          (void)t->DropColumn(names[i]);
          break;
        }
      }
    }
  }
  // Pass 3: interpolate interior nulls on survivors.
  if (options.interpolate) {
    for (const auto& name : t->column_names()) {
      Column* c = *t->GetMutableColumn(name);
      const size_t before = c->null_count();
      *c = InterpolateLinear(*c);
      report.interpolated_cells += before - c->null_count();
    }
  }
  return report;
}

std::vector<std::string> ColumnsStartedBy(const Table& t, Date cutoff) {
  std::vector<std::string> out;
  const auto& index = t.index();
  for (const auto& name : t.column_names()) {
    const Column& c = **t.GetColumn(name);
    for (size_t i = 0; i < c.size(); ++i) {
      if (index[i] > cutoff) break;
      if (c.is_valid(i)) {
        out.push_back(name);
        break;
      }
    }
  }
  return out;
}

}  // namespace fab::table
