// Runs the fablint binary against the fixture files in tests/lint_fixtures/
// and asserts exact rule IDs, violation counts, and exit codes — the
// executable contract the fablint_repo ctest gate and CI rely on.
//
// FABLINT_BIN and FABLINT_FIXTURES are injected by tests/CMakeLists.txt.

#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdio>
#include <string>

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr
};

RunResult RunFablint(const std::string& args) {
  const std::string cmd = std::string(FABLINT_BIN) + " " + args + " 2>&1";
  FILE* pipe = ::popen(cmd.c_str(), "r");
  RunResult result;
  if (pipe == nullptr) return result;
  char buffer[4096];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    result.output.append(buffer, n);
  }
  const int status = ::pclose(pipe);
  if (WIFEXITED(status)) result.exit_code = WEXITSTATUS(status);
  return result;
}

std::string Fixture(const std::string& name) {
  return std::string(FABLINT_FIXTURES) + "/" + name;
}

size_t CountOccurrences(const std::string& haystack, const std::string& tag) {
  size_t count = 0;
  size_t pos = haystack.find(tag);
  while (pos != std::string::npos) {
    ++count;
    pos = haystack.find(tag, pos + tag.size());
  }
  return count;
}

/// Asserts the fixture yields exactly `expected` hits of `[rule]` (and no
/// other diagnostics) with exit code 1.
void ExpectSingleRule(const std::string& fixture, const std::string& rule,
                      size_t expected = 1) {
  const RunResult run = RunFablint("--all-rules " + Fixture(fixture));
  SCOPED_TRACE(fixture + "\n" + run.output);
  EXPECT_EQ(run.exit_code, 1);
  EXPECT_EQ(CountOccurrences(run.output, "[" + rule + "]"), expected);
  EXPECT_EQ(CountOccurrences(run.output, "["), expected)
      << "unexpected extra diagnostics";
  EXPECT_NE(run.output.find(std::to_string(expected) + " violation(s)"),
            std::string::npos);
}

TEST(FablintTest, DetRand) { ExpectSingleRule("det_rand.cc", "det-rand"); }

TEST(FablintTest, DetRandReportsExactLine) {
  const RunResult run = RunFablint("--all-rules " + Fixture("det_rand.cc"));
  EXPECT_NE(run.output.find("det_rand.cc:5: [det-rand]"), std::string::npos)
      << run.output;
}

TEST(FablintTest, DetRandomDevice) {
  ExpectSingleRule("det_random_device.cc", "det-random-device");
}

TEST(FablintTest, DetTime) { ExpectSingleRule("det_time.cc", "det-time"); }

TEST(FablintTest, DetMt19937) {
  ExpectSingleRule("det_mt19937.cc", "det-mt19937");
}

TEST(FablintTest, DetUnorderedIter) {
  ExpectSingleRule("det_unordered_iter.cc", "det-unordered-iter");
}

TEST(FablintTest, SafetyAssert) {
  ExpectSingleRule("safety_assert.cc", "safety-assert");
}

TEST(FablintTest, SafetyCatchAll) {
  ExpectSingleRule("safety_catch_all.cc", "safety-catch-all");
}

TEST(FablintTest, SafetyFloatAccum) {
  ExpectSingleRule("safety_float_accum.cc", "safety-float-accum");
}

TEST(FablintTest, HygieneGuard) {
  ExpectSingleRule("hygiene_guard.h", "hygiene-guard");
}

TEST(FablintTest, HygieneUsingNamespace) {
  ExpectSingleRule("hygiene_using_namespace.h", "hygiene-using-namespace");
}

TEST(FablintTest, HygieneNewDelete) {
  ExpectSingleRule("hygiene_new_delete.cc", "hygiene-new-delete");
}

TEST(FablintTest, CleanFileExitsZero) {
  const RunResult run = RunFablint("--all-rules " + Fixture("clean.cc"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "["), 0u) << run.output;
  EXPECT_NE(run.output.find("0 violation(s)"), std::string::npos);
}

TEST(FablintTest, SuppressedFileExitsZero) {
  const RunResult run = RunFablint("--all-rules " + Fixture("suppressed.cc"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "["), 0u) << run.output;
}

TEST(FablintTest, WalkingTheFixtureDirFindsEveryRuleOnce) {
  const RunResult run =
      RunFablint("--all-rules --root " + std::string(FABLINT_FIXTURES) + " " +
                 std::string(FABLINT_FIXTURES));
  EXPECT_EQ(run.exit_code, 1);
  // 11 rules, one deliberate violation each; clean.cc and suppressed.cc
  // contribute nothing.
  EXPECT_NE(run.output.find("checked 13 file(s), 11 violation(s)"),
            std::string::npos)
      << run.output;
  for (const char* rule :
       {"det-rand", "det-random-device", "det-time", "det-mt19937",
        "det-unordered-iter", "safety-assert", "safety-catch-all",
        "safety-float-accum", "hygiene-guard", "hygiene-using-namespace",
        "hygiene-new-delete"}) {
    EXPECT_EQ(CountOccurrences(run.output, std::string("[") + rule + "]"), 1u)
        << rule << "\n"
        << run.output;
  }
}

TEST(FablintTest, ScopingSkipsUnorderedIterOutsideReductionDirs) {
  // Without --all-rules the det-unordered-iter rule only applies under
  // src/core/, src/explain/ and src/ml/; the fixture lives elsewhere.
  const RunResult run =
      RunFablint("--root " + std::string(FABLINT_FIXTURES) + " " +
                 Fixture("det_unordered_iter.cc"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST(FablintTest, ScopingStillBansMt19937OutsideUtilRandom) {
  const RunResult run = RunFablint(
      "--root " + std::string(FABLINT_FIXTURES) + " " +
      Fixture("det_mt19937.cc"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "[det-mt19937]"), 1u);
}

TEST(FablintTest, ListRulesPrintsTheFullTable) {
  const RunResult run = RunFablint("--list-rules");
  EXPECT_EQ(run.exit_code, 0);
  for (const char* rule :
       {"det-rand", "det-random-device", "det-time", "det-mt19937",
        "det-unordered-iter", "safety-assert", "safety-catch-all",
        "safety-float-accum", "hygiene-guard", "hygiene-using-namespace",
        "hygiene-new-delete"}) {
    EXPECT_NE(run.output.find(rule), std::string::npos) << rule;
  }
}

TEST(FablintTest, UsageErrorsExitTwo) {
  EXPECT_EQ(RunFablint("--no-such-flag").exit_code, 2);
  EXPECT_EQ(RunFablint("").exit_code, 2);  // no inputs
  EXPECT_EQ(RunFablint(Fixture("does_not_exist.cc")).exit_code, 2);
}

}  // namespace
