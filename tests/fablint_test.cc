// Runs the fablint binary against the fixture files in tests/lint_fixtures/
// and asserts exact rule IDs, violation counts, and exit codes — the
// executable contract the fablint_repo ctest gate and CI rely on.
//
// FABLINT_BIN and FABLINT_FIXTURES are injected by tests/CMakeLists.txt.

#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdio>
#include <string>

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr
};

RunResult RunFablint(const std::string& args) {
  const std::string cmd = std::string(FABLINT_BIN) + " " + args + " 2>&1";
  FILE* pipe = ::popen(cmd.c_str(), "r");
  RunResult result;
  if (pipe == nullptr) return result;
  char buffer[4096];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    result.output.append(buffer, n);
  }
  const int status = ::pclose(pipe);
  if (WIFEXITED(status)) result.exit_code = WEXITSTATUS(status);
  return result;
}

std::string Fixture(const std::string& name) {
  return std::string(FABLINT_FIXTURES) + "/" + name;
}

size_t CountOccurrences(const std::string& haystack, const std::string& tag) {
  size_t count = 0;
  size_t pos = haystack.find(tag);
  while (pos != std::string::npos) {
    ++count;
    pos = haystack.find(tag, pos + tag.size());
  }
  return count;
}

/// Asserts the fixture yields exactly `expected` hits of `[rule]` (and no
/// other diagnostics) with exit code 1.
void ExpectSingleRule(const std::string& fixture, const std::string& rule,
                      size_t expected = 1) {
  const RunResult run = RunFablint("--all-rules " + Fixture(fixture));
  SCOPED_TRACE(fixture + "\n" + run.output);
  EXPECT_EQ(run.exit_code, 1);
  EXPECT_EQ(CountOccurrences(run.output, "[" + rule + "]"), expected);
  EXPECT_EQ(CountOccurrences(run.output, "["), expected)
      << "unexpected extra diagnostics";
  EXPECT_NE(run.output.find(std::to_string(expected) + " violation(s)"),
            std::string::npos);
}

TEST(FablintTest, DetRand) { ExpectSingleRule("det_rand.cc", "det-rand"); }

TEST(FablintTest, DetRandReportsExactLine) {
  const RunResult run = RunFablint("--all-rules " + Fixture("det_rand.cc"));
  EXPECT_NE(run.output.find("det_rand.cc:5: [det-rand]"), std::string::npos)
      << run.output;
}

TEST(FablintTest, DetRandomDevice) {
  ExpectSingleRule("det_random_device.cc", "det-random-device");
}

TEST(FablintTest, DetTime) { ExpectSingleRule("det_time.cc", "det-time"); }

TEST(FablintTest, DetMt19937) {
  ExpectSingleRule("det_mt19937.cc", "det-mt19937");
}

TEST(FablintTest, DetUnorderedIter) {
  ExpectSingleRule("det_unordered_iter.cc", "det-unordered-iter");
}

TEST(FablintTest, SafetyAssert) {
  ExpectSingleRule("safety_assert.cc", "safety-assert");
}

TEST(FablintTest, SafetyCatchAll) {
  ExpectSingleRule("safety_catch_all.cc", "safety-catch-all");
}

TEST(FablintTest, SafetyFloatAccum) {
  ExpectSingleRule("safety_float_accum.cc", "safety-float-accum");
}

TEST(FablintTest, HygieneGuard) {
  ExpectSingleRule("hygiene_guard.h", "hygiene-guard");
}

TEST(FablintTest, HygieneUsingNamespace) {
  ExpectSingleRule("hygiene_using_namespace.h", "hygiene-using-namespace");
}

TEST(FablintTest, HygieneNewDelete) {
  ExpectSingleRule("hygiene_new_delete.cc", "hygiene-new-delete");
}

TEST(FablintTest, SafetyUnannotatedMutex) {
  ExpectSingleRule("safety_unannotated_mutex.h", "safety-unannotated-mutex");
}

TEST(FablintTest, ObsRawClock) {
  ExpectSingleRule("obs_raw_clock.cc", "obs-raw-clock");
}

TEST(FablintTest, ObsRawClockReportsExactLine) {
  const RunResult run =
      RunFablint("--all-rules " + Fixture("obs_raw_clock.cc"));
  EXPECT_NE(run.output.find("obs_raw_clock.cc:9: [obs-raw-clock]"),
            std::string::npos)
      << run.output;
}

TEST(FablintTest, ObsRawClockAppliesOutsideExemptDirsInScopedMode) {
  // Unlike det-unordered-iter (opt-in dirs), obs-raw-clock applies
  // everywhere by default — scoped mode must still fire on this path.
  const RunResult scoped =
      RunFablint("--root " + std::string(FABLINT_FIXTURES) + " " +
                 Fixture("obs_raw_clock.cc"));
  EXPECT_EQ(scoped.exit_code, 1) << scoped.output;
  EXPECT_EQ(CountOccurrences(scoped.output, "[obs-raw-clock]"), 1u)
      << scoped.output;
}

TEST(FablintTest, ObsRawClockExemptsBenchByPath) {
  // bench/ reports wall time by design: the identical ::now() call under
  // a bench/ prefix is clean in scoped mode (and only resurfaces under
  // --all-rules, which bypasses every path scope).
  const RunResult scoped =
      RunFablint("--root " + std::string(FABLINT_FIXTURES) + " " +
                 Fixture("bench/raw_clock_exempt.cc"));
  EXPECT_EQ(scoped.exit_code, 0) << scoped.output;
  const RunResult all =
      RunFablint("--all-rules --root " + std::string(FABLINT_FIXTURES) + " " +
                 Fixture("bench/raw_clock_exempt.cc"));
  EXPECT_EQ(all.exit_code, 1) << all.output;
  EXPECT_EQ(CountOccurrences(all.output, "[obs-raw-clock]"), 1u) << all.output;
}

TEST(FablintTest, NetRawSyscall) {
  ExpectSingleRule("net_raw_syscall.cc", "net-raw-syscall");
}

TEST(FablintTest, NetRawSyscallReportsExactLine) {
  const RunResult run =
      RunFablint("--all-rules " + Fixture("net_raw_syscall.cc"));
  EXPECT_NE(run.output.find("net_raw_syscall.cc:17: [net-raw-syscall]"),
            std::string::npos)
      << run.output;
}

TEST(FablintTest, NetRawSyscallAppliesOutsideNetInScopedMode) {
  const RunResult scoped =
      RunFablint("--root " + std::string(FABLINT_FIXTURES) + " " +
                 Fixture("net_raw_syscall.cc"));
  EXPECT_EQ(scoped.exit_code, 1) << scoped.output;
  EXPECT_EQ(CountOccurrences(scoped.output, "[net-raw-syscall]"), 1u)
      << scoped.output;
}

TEST(FablintTest, NetRawSyscallExemptsSrcNetByPath) {
  // src/net/ is the sanctioned socket layer: the identical ::socket()
  // call under that prefix is clean in scoped mode, and only resurfaces
  // under --all-rules (which bypasses every path scope).
  const RunResult scoped =
      RunFablint("--root " + std::string(FABLINT_FIXTURES) + " " +
                 Fixture("src/net/raw_syscall_exempt.cc"));
  EXPECT_EQ(scoped.exit_code, 0) << scoped.output;
  const RunResult all =
      RunFablint("--all-rules --root " + std::string(FABLINT_FIXTURES) + " " +
                 Fixture("src/net/raw_syscall_exempt.cc"));
  EXPECT_EQ(all.exit_code, 1) << all.output;
  EXPECT_EQ(CountOccurrences(all.output, "[net-raw-syscall]"), 1u)
      << all.output;
}

TEST(FablintTest, SafetyUnannotatedMutexReportsExactLine) {
  const RunResult run =
      RunFablint("--all-rules " + Fixture("safety_unannotated_mutex.h"));
  EXPECT_NE(run.output.find(
                "safety_unannotated_mutex.h:11: [safety-unannotated-mutex]"),
            std::string::npos)
      << run.output;
}

TEST(FablintTest, LockOrderPairsOppositeSitesAcrossFiles) {
  const RunResult run =
      RunFablint("--all-rules " + Fixture("lock_order_a.cc") + " " +
                 Fixture("lock_order_b.cc"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "[lock-order]"), 1u) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "["), 1u) << run.output;
  // Anchored at the (path, line)-later site, referencing the earlier one.
  EXPECT_NE(run.output.find("lock_order_b.cc:16: [lock-order]"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("lock_order_a.cc:16"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("PairedLocks::first_"), std::string::npos)
      << run.output;
}

TEST(FablintTest, LockOrderNeedsBothSitesToFire) {
  // One TU alone nests consistently — the rule is cross-file by nature.
  const RunResult run =
      RunFablint("--all-rules " + Fixture("lock_order_a.cc"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST(FablintTest, GraphIncludeCycleReportedOnceAtSmallestMember) {
  const RunResult run =
      RunFablint("--all-rules --root " + std::string(FABLINT_FIXTURES) + " " +
                 Fixture("graph"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("checked 9 file(s), 2 violation(s)"),
            std::string::npos)
      << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "[graph-include-cycle]"), 1u)
      << run.output;
  EXPECT_NE(
      run.output.find("graph/cycle_a.h:2: [graph-include-cycle] include "
                      "cycle: graph/cycle_a.h -> graph/cycle_b.h -> "
                      "graph/cycle_c.h -> graph/cycle_a.h"),
      std::string::npos)
      << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "[graph-unused-include]"), 1u)
      << run.output;
  EXPECT_NE(run.output.find("graph/unused_user.cc:1: [graph-unused-include]"),
            std::string::npos)
      << run.output;
}

TEST(FablintTest, DiamondIncludeShapeIsNotACycle) {
  // The negative that keeps the cycle detector honest: reaching
  // diamond_base.h along two paths must produce zero findings.
  const RunResult run = RunFablint(
      "--all-rules --root " + std::string(FABLINT_FIXTURES) + " " +
      Fixture("graph/diamond_top.cc") + " " +
      Fixture("graph/diamond_left.h") + " " +
      Fixture("graph/diamond_right.h") + " " +
      Fixture("graph/diamond_base.h"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "["), 0u) << run.output;
}

TEST(FablintTest, GraphDumpPrintsResolvedEdges) {
  const RunResult run =
      RunFablint("--graph-dump --root " + std::string(FABLINT_FIXTURES) +
                 " " + Fixture("graph"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("include-graph: 9 file(s), 8 edge(s)"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("-> graph/cycle_b.h (line 2)"), std::string::npos)
      << run.output;
}

TEST(FablintTest, MultiRuleAllowListSuppressesEveryNamedRule) {
  const RunResult run =
      RunFablint("--all-rules " + Fixture("allow_multi_rule.cc"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "["), 0u) << run.output;
}

TEST(FablintTest, PrecedingLineAllowSuppresses) {
  const RunResult run =
      RunFablint("--all-rules " + Fixture("allow_prev_line.cc"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "["), 0u) << run.output;
}

TEST(FablintTest, UnknownRuleIdIsDiagnosedNotSilence) {
  const RunResult run =
      RunFablint("--all-rules " + Fixture("allow_unknown_rule.cc"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  // The typo'd allow is itself a finding…
  EXPECT_NE(run.output.find("allow_unknown_rule.cc:6: [lint-unknown-rule]"),
            std::string::npos)
      << run.output;
  // …and it does NOT suppress the real violation underneath.
  EXPECT_NE(run.output.find("allow_unknown_rule.cc:7: [det-rand]"),
            std::string::npos)
      << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "["), 2u) << run.output;
}

TEST(FablintTest, CleanFileExitsZero) {
  const RunResult run = RunFablint("--all-rules " + Fixture("clean.cc"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "["), 0u) << run.output;
  EXPECT_NE(run.output.find("0 violation(s)"), std::string::npos);
}

TEST(FablintTest, SuppressedFileExitsZero) {
  const RunResult run = RunFablint("--all-rules " + Fixture("suppressed.cc"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "["), 0u) << run.output;
}

TEST(FablintTest, WalkingTheFixtureDirFindsEveryRuleOnce) {
  const RunResult run =
      RunFablint("--all-rules --root " + std::string(FABLINT_FIXTURES) + " " +
                 std::string(FABLINT_FIXTURES));
  EXPECT_EQ(run.exit_code, 1);
  // One deliberate violation per rule, plus allow_unknown_rule.cc which
  // contributes a second det-rand (the typo'd allow must not suppress it),
  // bench/raw_clock_exempt.cc which contributes a second obs-raw-clock and
  // src/net/raw_syscall_exempt.cc a second net-raw-syscall (--all-rules
  // bypasses the path exemptions); clean.cc, suppressed.cc, the allow_*
  // negatives and the diamond headers contribute nothing.
  EXPECT_NE(run.output.find("checked 32 file(s), 21 violation(s)"),
            std::string::npos)
      << run.output;
  for (const char* rule :
       {"det-random-device", "det-time", "det-mt19937",
        "det-unordered-iter", "safety-assert", "safety-catch-all",
        "safety-float-accum", "safety-unannotated-mutex", "hygiene-guard",
        "hygiene-using-namespace", "hygiene-new-delete",
        "graph-include-cycle", "graph-unused-include", "lock-order",
        "lint-unknown-rule"}) {
    EXPECT_EQ(CountOccurrences(run.output, std::string("[") + rule + "]"), 1u)
        << rule << "\n"
        << run.output;
  }
  EXPECT_EQ(CountOccurrences(run.output, "[det-rand]"), 2u) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "[obs-raw-clock]"), 2u)
      << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "[net-raw-syscall]"), 2u)
      << run.output;
}

TEST(FablintTest, ScopingSkipsUnorderedIterOutsideReductionDirs) {
  // Without --all-rules the det-unordered-iter rule only applies under
  // src/core/, src/explain/ and src/ml/; the fixture lives elsewhere.
  const RunResult run =
      RunFablint("--root " + std::string(FABLINT_FIXTURES) + " " +
                 Fixture("det_unordered_iter.cc"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST(FablintTest, ScopingStillBansMt19937OutsideUtilRandom) {
  const RunResult run = RunFablint(
      "--root " + std::string(FABLINT_FIXTURES) + " " +
      Fixture("det_mt19937.cc"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "[det-mt19937]"), 1u);
}

TEST(FablintTest, ListRulesPrintsTheFullTable) {
  const RunResult run = RunFablint("--list-rules");
  EXPECT_EQ(run.exit_code, 0);
  for (const char* rule :
       {"det-rand", "det-random-device", "det-time", "det-mt19937",
        "det-unordered-iter", "safety-assert", "safety-catch-all",
        "safety-float-accum", "safety-unannotated-mutex", "hygiene-guard",
        "hygiene-using-namespace", "hygiene-new-delete",
        "graph-include-cycle", "graph-unused-include", "lock-order",
        "lint-unknown-rule", "obs-raw-clock", "net-raw-syscall"}) {
    EXPECT_NE(run.output.find(rule), std::string::npos) << rule;
  }
}

TEST(FablintTest, UsageErrorsExitTwo) {
  EXPECT_EQ(RunFablint("--no-such-flag").exit_code, 2);
  EXPECT_EQ(RunFablint("").exit_code, 2);  // no inputs
  EXPECT_EQ(RunFablint(Fixture("does_not_exist.cc")).exit_code, 2);
}

}  // namespace
