// Runs the fablint binary against the fixture files in tests/lint_fixtures/
// and asserts exact rule IDs, violation counts, and exit codes — the
// executable contract the fablint_repo ctest gate and CI rely on.
//
// FABLINT_BIN and FABLINT_FIXTURES are injected by tests/CMakeLists.txt.

#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace {

namespace fs = std::filesystem;

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr
};

RunResult RunFablint(const std::string& args) {
  const std::string cmd = std::string(FABLINT_BIN) + " " + args + " 2>&1";
  FILE* pipe = ::popen(cmd.c_str(), "r");
  RunResult result;
  if (pipe == nullptr) return result;
  char buffer[4096];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    result.output.append(buffer, n);
  }
  const int status = ::pclose(pipe);
  if (WIFEXITED(status)) result.exit_code = WEXITSTATUS(status);
  return result;
}

std::string Fixture(const std::string& name) {
  return std::string(FABLINT_FIXTURES) + "/" + name;
}

/// Fresh per-test scratch dir for --fix tests (fixtures are never modified
/// in place: each test lints a private copy).
fs::path FixScratchDir(const std::string& test_name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("fablint_" + test_name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// Copies fixture `name` under `dir`, preserving its relative path.
fs::path CopyFixture(const fs::path& dir, const std::string& name) {
  const fs::path to = dir / name;
  fs::create_directories(to.parent_path());
  fs::copy_file(Fixture(name), to, fs::copy_options::overwrite_existing);
  return to;
}

std::string ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

size_t CountOccurrences(const std::string& haystack, const std::string& tag) {
  size_t count = 0;
  size_t pos = haystack.find(tag);
  while (pos != std::string::npos) {
    ++count;
    pos = haystack.find(tag, pos + tag.size());
  }
  return count;
}

/// Asserts the fixture yields exactly `expected` hits of `[rule]` (and no
/// other diagnostics) with exit code 1.
void ExpectSingleRule(const std::string& fixture, const std::string& rule,
                      size_t expected = 1) {
  const RunResult run = RunFablint("--all-rules " + Fixture(fixture));
  SCOPED_TRACE(fixture + "\n" + run.output);
  EXPECT_EQ(run.exit_code, 1);
  EXPECT_EQ(CountOccurrences(run.output, "[" + rule + "]"), expected);
  EXPECT_EQ(CountOccurrences(run.output, "["), expected)
      << "unexpected extra diagnostics";
  EXPECT_NE(run.output.find(std::to_string(expected) + " violation(s)"),
            std::string::npos);
}

TEST(FablintTest, DetRand) { ExpectSingleRule("det_rand.cc", "det-rand"); }

TEST(FablintTest, DetRandReportsExactLine) {
  const RunResult run = RunFablint("--all-rules " + Fixture("det_rand.cc"));
  EXPECT_NE(run.output.find("det_rand.cc:5: [det-rand]"), std::string::npos)
      << run.output;
}

TEST(FablintTest, DetRandomDevice) {
  ExpectSingleRule("det_random_device.cc", "det-random-device");
}

TEST(FablintTest, DetTime) { ExpectSingleRule("det_time.cc", "det-time"); }

TEST(FablintTest, DetMt19937) {
  ExpectSingleRule("det_mt19937.cc", "det-mt19937");
}

TEST(FablintTest, DetUnorderedIter) {
  ExpectSingleRule("det_unordered_iter.cc", "det-unordered-iter");
}

TEST(FablintTest, SafetyAssert) {
  ExpectSingleRule("safety_assert.cc", "safety-assert");
}

TEST(FablintTest, SafetyCatchAll) {
  ExpectSingleRule("safety_catch_all.cc", "safety-catch-all");
}

TEST(FablintTest, SafetyFloatAccum) {
  ExpectSingleRule("safety_float_accum.cc", "safety-float-accum");
}

TEST(FablintTest, HygieneGuard) {
  ExpectSingleRule("hygiene_guard.h", "hygiene-guard");
}

TEST(FablintTest, HygieneUsingNamespace) {
  ExpectSingleRule("hygiene_using_namespace.h", "hygiene-using-namespace");
}

TEST(FablintTest, HygieneNewDelete) {
  ExpectSingleRule("hygiene_new_delete.cc", "hygiene-new-delete");
}

TEST(FablintTest, SafetyUnannotatedMutex) {
  ExpectSingleRule("safety_unannotated_mutex.h", "safety-unannotated-mutex");
}

TEST(FablintTest, ObsRawClock) {
  ExpectSingleRule("obs_raw_clock.cc", "obs-raw-clock");
}

TEST(FablintTest, ObsRawClockReportsExactLine) {
  const RunResult run =
      RunFablint("--all-rules " + Fixture("obs_raw_clock.cc"));
  EXPECT_NE(run.output.find("obs_raw_clock.cc:9: [obs-raw-clock]"),
            std::string::npos)
      << run.output;
}

TEST(FablintTest, ObsRawClockAppliesOutsideExemptDirsInScopedMode) {
  // Unlike det-unordered-iter (opt-in dirs), obs-raw-clock applies
  // everywhere by default — scoped mode must still fire on this path.
  const RunResult scoped =
      RunFablint("--root " + std::string(FABLINT_FIXTURES) + " " +
                 Fixture("obs_raw_clock.cc"));
  EXPECT_EQ(scoped.exit_code, 1) << scoped.output;
  EXPECT_EQ(CountOccurrences(scoped.output, "[obs-raw-clock]"), 1u)
      << scoped.output;
}

TEST(FablintTest, ObsSpanLiteral) {
  ExpectSingleRule("obs_span_literal.cc", "obs-span-literal");
}

TEST(FablintTest, ObsSpanLiteralReportsExactLine) {
  const RunResult run =
      RunFablint("--all-rules " + Fixture("obs_span_literal.cc"));
  EXPECT_NE(run.output.find("obs_span_literal.cc:14: [obs-span-literal]"),
            std::string::npos)
      << run.output;
}

TEST(FablintTest, ObsRawClockExemptsBenchByPath) {
  // bench/ reports wall time by design: the identical ::now() call under
  // a bench/ prefix is clean in scoped mode (and only resurfaces under
  // --all-rules, which bypasses every path scope).
  const RunResult scoped =
      RunFablint("--root " + std::string(FABLINT_FIXTURES) + " " +
                 Fixture("bench/raw_clock_exempt.cc"));
  EXPECT_EQ(scoped.exit_code, 0) << scoped.output;
  const RunResult all =
      RunFablint("--all-rules --root " + std::string(FABLINT_FIXTURES) + " " +
                 Fixture("bench/raw_clock_exempt.cc"));
  EXPECT_EQ(all.exit_code, 1) << all.output;
  EXPECT_EQ(CountOccurrences(all.output, "[obs-raw-clock]"), 1u) << all.output;
}

TEST(FablintTest, NetRawSyscall) {
  ExpectSingleRule("net_raw_syscall.cc", "net-raw-syscall");
}

TEST(FablintTest, NetRawSyscallReportsExactLine) {
  const RunResult run =
      RunFablint("--all-rules " + Fixture("net_raw_syscall.cc"));
  EXPECT_NE(run.output.find("net_raw_syscall.cc:17: [net-raw-syscall]"),
            std::string::npos)
      << run.output;
}

TEST(FablintTest, NetRawSyscallAppliesOutsideNetInScopedMode) {
  const RunResult scoped =
      RunFablint("--root " + std::string(FABLINT_FIXTURES) + " " +
                 Fixture("net_raw_syscall.cc"));
  EXPECT_EQ(scoped.exit_code, 1) << scoped.output;
  EXPECT_EQ(CountOccurrences(scoped.output, "[net-raw-syscall]"), 1u)
      << scoped.output;
}

TEST(FablintTest, NetRawSyscallExemptsSrcNetByPath) {
  // src/net/ is the sanctioned socket layer: the identical ::socket()
  // call under that prefix is clean in scoped mode, and only resurfaces
  // under --all-rules (which bypasses every path scope).
  const RunResult scoped =
      RunFablint("--root " + std::string(FABLINT_FIXTURES) + " " +
                 Fixture("src/net/raw_syscall_exempt.cc"));
  EXPECT_EQ(scoped.exit_code, 0) << scoped.output;
  const RunResult all =
      RunFablint("--all-rules --root " + std::string(FABLINT_FIXTURES) + " " +
                 Fixture("src/net/raw_syscall_exempt.cc"));
  EXPECT_EQ(all.exit_code, 1) << all.output;
  EXPECT_EQ(CountOccurrences(all.output, "[net-raw-syscall]"), 1u)
      << all.output;
}

TEST(FablintTest, SafetyUnannotatedMutexReportsExactLine) {
  const RunResult run =
      RunFablint("--all-rules " + Fixture("safety_unannotated_mutex.h"));
  EXPECT_NE(run.output.find(
                "safety_unannotated_mutex.h:11: [safety-unannotated-mutex]"),
            std::string::npos)
      << run.output;
}

TEST(FablintTest, LockOrderPairsOppositeSitesAcrossFiles) {
  const RunResult run =
      RunFablint("--all-rules " + Fixture("lock_order_a.cc") + " " +
                 Fixture("lock_order_b.cc"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "[lock-order]"), 1u) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "["), 1u) << run.output;
  // Anchored at the (path, line)-later site, referencing the earlier one.
  EXPECT_NE(run.output.find("lock_order_b.cc:16: [lock-order]"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("lock_order_a.cc:16"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("PairedLocks::first_"), std::string::npos)
      << run.output;
}

TEST(FablintTest, LockOrderNeedsBothSitesToFire) {
  // One TU alone nests consistently — the rule is cross-file by nature.
  const RunResult run =
      RunFablint("--all-rules " + Fixture("lock_order_a.cc"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST(FablintTest, GraphIncludeCycleReportedOnceAtSmallestMember) {
  const RunResult run =
      RunFablint("--all-rules --root " + std::string(FABLINT_FIXTURES) + " " +
                 Fixture("graph"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("checked 9 file(s), 2 violation(s)"),
            std::string::npos)
      << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "[graph-include-cycle]"), 1u)
      << run.output;
  EXPECT_NE(
      run.output.find("graph/cycle_a.h:2: [graph-include-cycle] include "
                      "cycle: graph/cycle_a.h -> graph/cycle_b.h -> "
                      "graph/cycle_c.h -> graph/cycle_a.h"),
      std::string::npos)
      << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "[graph-unused-include]"), 1u)
      << run.output;
  EXPECT_NE(run.output.find("graph/unused_user.cc:1: [graph-unused-include]"),
            std::string::npos)
      << run.output;
}

TEST(FablintTest, DiamondIncludeShapeIsNotACycle) {
  // The negative that keeps the cycle detector honest: reaching
  // diamond_base.h along two paths must produce zero findings.
  const RunResult run = RunFablint(
      "--all-rules --root " + std::string(FABLINT_FIXTURES) + " " +
      Fixture("graph/diamond_top.cc") + " " +
      Fixture("graph/diamond_left.h") + " " +
      Fixture("graph/diamond_right.h") + " " +
      Fixture("graph/diamond_base.h"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "["), 0u) << run.output;
}

TEST(FablintTest, GraphDumpPrintsResolvedEdges) {
  const RunResult run =
      RunFablint("--graph-dump --root " + std::string(FABLINT_FIXTURES) +
                 " " + Fixture("graph"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("include-graph: 9 file(s), 8 edge(s)"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("-> graph/cycle_b.h (line 2)"), std::string::npos)
      << run.output;
}

TEST(FablintTest, MultiRuleAllowListSuppressesEveryNamedRule) {
  const RunResult run =
      RunFablint("--all-rules " + Fixture("allow_multi_rule.cc"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "["), 0u) << run.output;
}

TEST(FablintTest, PrecedingLineAllowSuppresses) {
  const RunResult run =
      RunFablint("--all-rules " + Fixture("allow_prev_line.cc"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "["), 0u) << run.output;
}

TEST(FablintTest, UnknownRuleIdIsDiagnosedNotSilence) {
  const RunResult run =
      RunFablint("--all-rules " + Fixture("allow_unknown_rule.cc"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  // The typo'd allow is itself a finding…
  EXPECT_NE(run.output.find("allow_unknown_rule.cc:6: [lint-unknown-rule]"),
            std::string::npos)
      << run.output;
  // …and it does NOT suppress the real violation underneath.
  EXPECT_NE(run.output.find("allow_unknown_rule.cc:7: [det-rand]"),
            std::string::npos)
      << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "["), 2u) << run.output;
}

TEST(FablintTest, CleanFileExitsZero) {
  const RunResult run = RunFablint("--all-rules " + Fixture("clean.cc"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "["), 0u) << run.output;
  EXPECT_NE(run.output.find("0 violation(s)"), std::string::npos);
}

TEST(FablintTest, SuppressedFileExitsZero) {
  const RunResult run = RunFablint("--all-rules " + Fixture("suppressed.cc"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "["), 0u) << run.output;
}

TEST(FablintTest, StatusUnchecked) {
  // Two discards; the consumer shapes (assign, branch, argument, (void),
  // return, fablint:allow) and the in-file declarations stay clean — in
  // particular status-nodiscard does not apply to .cc files, so the
  // unannotated `Status Poke();` produces no second diagnostic.
  ExpectSingleRule("status_unchecked.cc", "status-unchecked", 2);
}

TEST(FablintTest, StatusUncheckedReportsExactLinesAndCallee) {
  const RunResult run =
      RunFablint("--all-rules " + Fixture("status_unchecked.cc"));
  EXPECT_NE(run.output.find("status_unchecked.cc:20: [status-unchecked] "
                            "return value of 'Poke'"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("status_unchecked.cc:21: [status-unchecked] "
                            "return value of 'Fetch'"),
            std::string::npos)
      << run.output;
}

TEST(FablintTest, StatusUncheckedDropsCrossFileConflictedNames) {
  // `Ping` returns Status in a.cc alone — the discard fires. Add b.cc,
  // where `Ping` returns void, and the signature index must drop the
  // ambiguous name entirely.
  const RunResult alone =
      RunFablint("--all-rules " + Fixture("status_conflict_a.cc"));
  EXPECT_EQ(alone.exit_code, 1) << alone.output;
  EXPECT_EQ(CountOccurrences(alone.output, "[status-unchecked]"), 1u)
      << alone.output;
  const RunResult both =
      RunFablint("--all-rules " + Fixture("status_conflict_a.cc") + " " +
                 Fixture("status_conflict_b.cc"));
  EXPECT_EQ(both.exit_code, 0) << both.output;
  EXPECT_EQ(CountOccurrences(both.output, "["), 0u) << both.output;
}

TEST(FablintTest, StatusNodiscard) {
  // Not ExpectSingleRule: the diagnostic text itself contains
  // "[[nodiscard]]", which its bracket-counting heuristic miscounts.
  const RunResult run =
      RunFablint("--all-rules " + Fixture("status_nodiscard.h"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "[status-nodiscard]"), 1u)
      << run.output;
  EXPECT_NE(run.output.find("1 violation(s)"), std::string::npos)
      << run.output;
}

TEST(FablintTest, StatusNodiscardReportsExactLine) {
  const RunResult run =
      RunFablint("--all-rules " + Fixture("status_nodiscard.h"));
  EXPECT_NE(run.output.find(
                "status_nodiscard.h:11: [status-nodiscard] 'Save'"),
            std::string::npos)
      << run.output;
}

TEST(FablintTest, PerfHotAlloc) {
  // make_unique, unreserved push_back and to_string inside the hot
  // region; the reserved push_back, the allow-suppressed std::string and
  // the identical patterns outside the region stay clean.
  ExpectSingleRule("perf_hot_alloc.cc", "perf-hot-alloc", 3);
}

TEST(FablintTest, PerfHotAllocReportsExactLines) {
  const RunResult run =
      RunFablint("--all-rules " + Fixture("perf_hot_alloc.cc"));
  EXPECT_NE(run.output.find("perf_hot_alloc.cc:16: [perf-hot-alloc] "
                            "make_unique"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("perf_hot_alloc.cc:17: [perf-hot-alloc] "
                            "push_back on 'tmp'"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("perf_hot_alloc.cc:20: [perf-hot-alloc] "
                            "to_string"),
            std::string::npos)
      << run.output;
}

TEST(FablintTest, DetUnorderedIterationReachedThroughCallGraph) {
  // The rooted entry point never touches the map; the helper it calls
  // does. Only the pass-4 call-graph closure can connect the two.
  ExpectSingleRule("det_reach_positive.cc", "det-unordered-iteration");
}

TEST(FablintTest, DetUnorderedIterationReportsLineAndEnclosingFunction) {
  const RunResult run =
      RunFablint("--all-rules " + Fixture("det_reach_positive.cc"));
  EXPECT_NE(run.output.find("det_reach_positive.cc:15: "
                            "[det-unordered-iteration]"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("inside det-reachable 'SumCategoryWeights'"),
            std::string::npos)
      << run.output;
}

TEST(FablintTest, DetRulesNeedADetRootToFire) {
  // The identical accumulating loop with no fablint:det-root in the
  // file: nothing is det-reachable, so pass 4 stays quiet.
  const RunResult run =
      RunFablint("--all-rules " + Fixture("det_reach_negative.cc"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "["), 0u) << run.output;
}

TEST(FablintTest, DetSortedCopyRemediationIsClean) {
  // The shape the diagnostic recommends — bulk-copy into std::map, then
  // reduce over the sorted copy — produces zero findings.
  const RunResult run =
      RunFablint("--all-rules " + Fixture("det_sorted_copy.cc"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "["), 0u) << run.output;
}

TEST(FablintTest, DetPointerKey) {
  // The pointer-keyed map and the pointer-value sort comparator; the
  // pointer-typed member (a value, not a key) stays clean.
  ExpectSingleRule("det_pointer_key.cc", "det-pointer-key", 2);
}

TEST(FablintTest, DetPointerKeyReportsExactLines) {
  const RunResult run =
      RunFablint("--all-rules " + Fixture("det_pointer_key.cc"));
  EXPECT_NE(run.output.find("det_pointer_key.cc:20: [det-pointer-key] "
                            "'map' keyed by a pointer"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("det_pointer_key.cc:22: [det-pointer-key] "
                            "sort comparator orders by raw pointer value "
                            "('a < b')"),
            std::string::npos)
      << run.output;
}

TEST(FablintTest, DetRawRng) {
  ExpectSingleRule("det_raw_rng.cc", "det-raw-rng", 2);
}

TEST(FablintTest, DetRawRngReportsExactLines) {
  const RunResult run = RunFablint("--all-rules " + Fixture("det_raw_rng.cc"));
  EXPECT_NE(run.output.find("det_raw_rng.cc:10: [det-raw-rng] 'srand'"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("det_raw_rng.cc:11: [det-raw-rng] 'drand48'"),
            std::string::npos)
      << run.output;
}

TEST(FablintTest, DetRootMarkerPlacementAndWordBoundary) {
  // Marker with trailing rationale and marker two lines above the name
  // both mark; `fablint:det-rootish` does not, so NotRooted's srand is
  // clean and exactly two det-raw-rng findings remain.
  ExpectSingleRule("det_root_annotation.cc", "det-raw-rng", 2);
  const RunResult run =
      RunFablint("--all-rules " + Fixture("det_root_annotation.cc"));
  EXPECT_NE(run.output.find("'RootedWithRationale'"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("'RootedTwoAbove'"), std::string::npos)
      << run.output;
  EXPECT_EQ(run.output.find("'NotRooted'"), std::string::npos) << run.output;
}

TEST(FablintTest, ConcBlockingUnderLock) {
  // Direct sleep, future wait, and a two-hop transitive call into file
  // IO under Cache::mu_; cv.wait(lock) and the post-scope sleep stay
  // clean.
  ExpectSingleRule("conc_blocking_under_lock.cc", "conc-blocking-under-lock",
                   3);
}

TEST(FablintTest, ConcBlockingUnderLockReportsExactLinesAndPath) {
  const RunResult run =
      RunFablint("--all-rules " + Fixture("conc_blocking_under_lock.cc"));
  EXPECT_NE(run.output.find("conc_blocking_under_lock.cc:26: "
                            "[conc-blocking-under-lock] a sleep while mutex "
                            "'Cache::mu_' is held"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("conc_blocking_under_lock.cc:27: "
                            "[conc-blocking-under-lock] a future wait"),
            std::string::npos)
      << run.output;
  EXPECT_NE(
      run.output.find("conc_blocking_under_lock.cc:28: "
                      "[conc-blocking-under-lock] call to 'ReloadAll' "
                      "performs file-stream IO (reached via "
                      "'LoadSnapshotFromDisk')"),
      std::string::npos)
      << run.output;
}

TEST(FablintTest, Pass4ScopedToSrcWithoutAllRules) {
  // Without --all-rules the pass-4 rules only apply under src/; the
  // fixture lives at the fixture root, so the det-reachable loop is
  // quiet in scoped mode.
  const RunResult run =
      RunFablint("--root " + std::string(FABLINT_FIXTURES) + " " +
                 Fixture("det_reach_positive.cc"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "["), 0u) << run.output;
}

TEST(FablintTest, CallGraphDumpMatchesGolden) {
  // The dump is pinned byte-for-byte: definition order, display names,
  // [root]/[det] tags, sorted callees, and the `??` undefined marker.
  const RunResult run =
      RunFablint("--callgraph-dump --root " + std::string(FABLINT_FIXTURES) +
                 " " + Fixture("callgraph/sample.cc"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(run.output, ReadFile(Fixture("callgraph/expected_dump.txt")));
}

TEST(FablintTest, StatsPrintsWalkRuleAndPassLines) {
  const RunResult run =
      RunFablint("--all-rules --stats " + Fixture("det_rand.cc"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("fablint stats: 1 file(s) walked"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("fablint stats:   rule det-rand: 1 violation(s)"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("pass 4 callgraph-det:"), std::string::npos)
      << run.output;
}

TEST(FablintTest, SarifExportNamesEveryResultAndValidatesShape) {
  const fs::path dir = FixScratchDir("sarif_export");
  const fs::path sarif = dir / "out.sarif";
  const RunResult run = RunFablint("--all-rules --sarif " + sarif.string() +
                                   " " + Fixture("det_rand.cc"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("wrote 1 SARIF result(s)"), std::string::npos)
      << run.output;
  const std::string doc = ReadFile(sarif);
  EXPECT_NE(doc.find("\"version\": \"2.1.0\""), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"ruleId\": \"det-rand\""), std::string::npos) << doc;
  EXPECT_NE(doc.find("det_rand.cc"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"startLine\": 5"), std::string::npos) << doc;
}

TEST(FablintTest, FixInsertsNodiscardAndIsIdempotent) {
  const fs::path dir = FixScratchDir("fix_nodiscard");
  const fs::path copy = CopyFixture(dir, "status_nodiscard.h");
  const std::string base =
      "--all-rules --root " + dir.string() + " --fix " + copy.string();

  const RunResult first = RunFablint(base);
  EXPECT_EQ(first.exit_code, 1) << first.output;
  EXPECT_NE(first.output.find("applied 1 fix edit(s) in 1 file(s)"),
            std::string::npos)
      << first.output;
  EXPECT_NE(ReadFile(copy).find("[[nodiscard]] Status Save(int id);"),
            std::string::npos)
      << ReadFile(copy);

  // The fixed file is clean: the second --fix run applies nothing.
  const RunResult second = RunFablint(base);
  EXPECT_EQ(second.exit_code, 0) << second.output;
  EXPECT_NE(second.output.find("applied 0 fix edit(s) in 0 file(s)"),
            std::string::npos)
      << second.output;
}

TEST(FablintTest, FixDeletesUsingNamespaceLine) {
  const fs::path dir = FixScratchDir("fix_using_namespace");
  const fs::path copy = CopyFixture(dir, "hygiene_using_namespace.h");
  const std::string base =
      "--all-rules --root " + dir.string() + " --fix " + copy.string();

  const RunResult first = RunFablint(base);
  EXPECT_EQ(first.exit_code, 1) << first.output;
  const std::string fixed = ReadFile(copy);
  EXPECT_EQ(fixed.find("using namespace"), std::string::npos) << fixed;

  const RunResult second = RunFablint(base);
  EXPECT_EQ(second.exit_code, 0) << second.output;
}

TEST(FablintTest, FixRemovesUnusedIncludeAcrossGraph) {
  const fs::path dir = FixScratchDir("fix_unused_include");
  const fs::path user = CopyFixture(dir, "graph/unused_user.cc");
  CopyFixture(dir, "graph/unused_dep.h");
  const std::string base = "--all-rules --root " + dir.string() + " --fix " +
                           (dir / "graph").string();

  const RunResult first = RunFablint(base);
  EXPECT_EQ(first.exit_code, 1) << first.output;
  // The include line is gone (the fixture's prose comment still names
  // the header, so match the directive, not the file name).
  EXPECT_EQ(ReadFile(user).find("#include"), std::string::npos)
      << ReadFile(user);

  const RunResult second = RunFablint(base);
  EXPECT_EQ(second.exit_code, 0) << second.output;
}

TEST(FablintTest, FixDryRunPrintsDiffWithoutWriting) {
  const fs::path dir = FixScratchDir("fix_dry_run");
  const fs::path copy = CopyFixture(dir, "hygiene_using_namespace.h");
  const std::string before = ReadFile(copy);

  const RunResult run = RunFablint("--all-rules --root " + dir.string() +
                                   " --fix --dry-run " + copy.string());
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("--- a/hygiene_using_namespace.h"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("+++ b/hygiene_using_namespace.h"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("-using namespace std;"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("would apply 1 fix edit(s) in 1 file(s)"),
            std::string::npos)
      << run.output;
  EXPECT_EQ(ReadFile(copy), before) << "--dry-run must not write";
}

TEST(FablintTest, WalkingTheFixtureDirFindsEveryRuleOnce) {
  const RunResult run =
      RunFablint("--all-rules --root " + std::string(FABLINT_FIXTURES) + " " +
                 std::string(FABLINT_FIXTURES));
  EXPECT_EQ(run.exit_code, 1);
  // One deliberate violation per rule, plus allow_unknown_rule.cc which
  // contributes a second det-rand (the typo'd allow must not suppress it),
  // bench/raw_clock_exempt.cc which contributes a second obs-raw-clock and
  // src/net/raw_syscall_exempt.cc a second net-raw-syscall (--all-rules
  // bypasses the path exemptions). status_unchecked.cc contributes two
  // status-unchecked discards and perf_hot_alloc.cc three hot-region
  // allocations; clean.cc, suppressed.cc, the allow_* negatives, the
  // diamond headers and the status_conflict_* pair (the conflicting void
  // overload un-indexes 'Ping') contribute nothing. The pass-4 fixtures
  // add one det-unordered-iteration, two det-pointer-key, four
  // det-raw-rng (two of them from the marker-placement fixture) and
  // three conc-blocking-under-lock; their negatives (det_reach_negative,
  // det_sorted_copy, callgraph/sample) contribute nothing.
  EXPECT_NE(run.output.find("checked 46 file(s), 38 violation(s)"),
            std::string::npos)
      << run.output;
  for (const char* rule :
       {"det-random-device", "det-time", "det-mt19937",
        "det-unordered-iter", "safety-assert", "safety-catch-all",
        "safety-float-accum", "safety-unannotated-mutex", "hygiene-guard",
        "hygiene-using-namespace", "hygiene-new-delete",
        "graph-include-cycle", "graph-unused-include", "lock-order",
        "lint-unknown-rule", "status-nodiscard"}) {
    EXPECT_EQ(CountOccurrences(run.output, std::string("[") + rule + "]"), 1u)
        << rule << "\n"
        << run.output;
  }
  EXPECT_EQ(CountOccurrences(run.output, "[det-rand]"), 2u) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "[obs-raw-clock]"), 2u)
      << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "[net-raw-syscall]"), 2u)
      << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "[status-unchecked]"), 2u)
      << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "[perf-hot-alloc]"), 3u)
      << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "[det-unordered-iteration]"), 1u)
      << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "[det-pointer-key]"), 2u)
      << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "[det-raw-rng]"), 4u) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "[conc-blocking-under-lock]"), 3u)
      << run.output;
}

TEST(FablintTest, ScopingSkipsUnorderedIterOutsideReductionDirs) {
  // Without --all-rules the det-unordered-iter rule only applies under
  // src/core/, src/explain/ and src/ml/; the fixture lives elsewhere.
  const RunResult run =
      RunFablint("--root " + std::string(FABLINT_FIXTURES) + " " +
                 Fixture("det_unordered_iter.cc"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST(FablintTest, ScopingStillBansMt19937OutsideUtilRandom) {
  const RunResult run = RunFablint(
      "--root " + std::string(FABLINT_FIXTURES) + " " +
      Fixture("det_mt19937.cc"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "[det-mt19937]"), 1u);
}

TEST(FablintTest, ListRulesPrintsTheFullTable) {
  const RunResult run = RunFablint("--list-rules");
  EXPECT_EQ(run.exit_code, 0);
  for (const char* rule :
       {"det-rand", "det-random-device", "det-time", "det-mt19937",
        "det-unordered-iter", "safety-assert", "safety-catch-all",
        "safety-float-accum", "safety-unannotated-mutex", "hygiene-guard",
        "hygiene-using-namespace", "hygiene-new-delete",
        "graph-include-cycle", "graph-unused-include", "lock-order",
        "lint-unknown-rule", "obs-raw-clock", "net-raw-syscall",
        "status-unchecked", "status-nodiscard", "perf-hot-alloc",
        "det-unordered-iteration", "det-pointer-key", "det-raw-rng",
        "conc-blocking-under-lock"}) {
    EXPECT_NE(run.output.find(rule), std::string::npos) << rule;
  }
}

TEST(FablintTest, UsageErrorsExitTwo) {
  EXPECT_EQ(RunFablint("--no-such-flag").exit_code, 2);
  EXPECT_EQ(RunFablint("").exit_code, 2);  // no inputs
  EXPECT_EQ(RunFablint(Fixture("does_not_exist.cc")).exit_code, 2);
  // --dry-run is a --fix modifier, not a standalone mode.
  EXPECT_EQ(RunFablint("--dry-run " + Fixture("clean.cc")).exit_code, 2);
}

}  // namespace
