#include "sim/stress.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "sim/market_sim.h"

namespace fab::sim {
namespace {

MarketSimConfig SmallConfig(uint64_t seed = 42) {
  MarketSimConfig config;
  config.latent.start = Date(2017, 6, 1);
  config.latent.end = Date(2019, 12, 31);
  config.seed = seed;
  return config;
}

/// Every metric column of `a` must equal `b`'s bitwise (values and
/// masks). Returns the first differing column name, or "".
std::string FirstMetricsDifference(const SimulatedMarket& a,
                                   const SimulatedMarket& b) {
  if (a.metrics.column_names() != b.metrics.column_names()) {
    return "<column sets differ>";
  }
  for (const auto& name : a.metrics.column_names()) {
    const table::Column& ca = **a.metrics.GetColumn(name);
    const table::Column& cb = **b.metrics.GetColumn(name);
    if (!ca.EqualsExactly(cb)) return name;
  }
  return "";
}

/// Indices of the top-100 assets by market cap on day `t`.
std::set<size_t> Top100(const AssetPanel& panel, size_t t) {
  std::vector<size_t> order(panel.num_assets());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::partial_sort(order.begin(), order.begin() + 100, order.end(),
                    [&](size_t x, size_t y) {
                      return panel.mcap[t][x] > panel.mcap[t][y];
                    });
  return {order.begin(), order.begin() + 100};
}

/// Symmetric-difference size of consecutive top-100 memberships.
size_t MembershipChurn(const AssetPanel& panel, size_t t) {
  const std::set<size_t> prev = Top100(panel, t - 1);
  const std::set<size_t> cur = Top100(panel, t);
  size_t moved = 0;
  for (size_t i : cur) moved += prev.count(i) == 0 ? 1 : 0;
  return moved;
}

TEST(StressTest, DisabledStressIsBitwiseIdentical) {
  const auto plain = SimulateMarket(SmallConfig());
  ASSERT_TRUE(plain.ok());
  MarketSimConfig config = SmallConfig();
  // A present-but-disabled StressConfig must not consume randomness or
  // perturb any arithmetic: this is what keeps the hexfloat goldens
  // bitwise identical.
  config.stress = StressConfig{};
  ASSERT_FALSE(config.stress.any_enabled());
  const auto stressed = SimulateMarket(config);
  ASSERT_TRUE(stressed.ok());
  EXPECT_EQ(FirstMetricsDifference(*plain, *stressed), "");
  EXPECT_EQ(plain->latent.btc_close, stressed->latent.btc_close);
  EXPECT_EQ(plain->panel.mcap, stressed->panel.mcap);
  EXPECT_EQ(plain->top100_mcap_sum, stressed->top100_mcap_sum);
}

TEST(StressTest, EventWindowsAreDeterministicDisjointAndInRange) {
  const auto a = StressEventWindows(99, 4, 7, 400, 900);
  const auto b = StressEventWindows(99, 4, 7, 400, 900);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), 4u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].second - a[i].first, 7u);
    EXPECT_GE(a[i].first, 400u);
    EXPECT_LE(a[i].second, 900u);
    if (i > 0) {
      EXPECT_GE(a[i].first, a[i - 1].second);
    }
  }
  // A different seed moves the windows.
  const auto c = StressEventWindows(100, 4, 7, 400, 900);
  EXPECT_NE(a, c);
  // Degenerate spans yield no windows rather than clamped garbage.
  EXPECT_TRUE(StressEventWindows(99, 4, 200, 400, 900).empty());
  EXPECT_TRUE(StressEventWindows(99, 0, 7, 400, 900).empty());
  EXPECT_TRUE(StressEventWindows(99, 4, 7, 900, 400).empty());
}

TEST(StressTest, FlashCrashInjectsMultiSigmaDownMoveWithVolumeSpike) {
  const auto baseline = SimulateMarket(SmallConfig());
  ASSERT_TRUE(baseline.ok());
  MarketSimConfig config = SmallConfig();
  config.stress.flash_crash.enabled = true;
  const auto crashed = SimulateMarket(config);
  ASSERT_TRUE(crashed.ok());

  const auto days =
      FlashCrashDays(config.stress.flash_crash, config.seed ^ 0x57e55ull,
                     crashed->latent.num_days());
  ASSERT_FALSE(days.empty());
  for (const size_t c : days) {
    const double stressed_ret = std::log(crashed->latent.btc_close[c] /
                                         crashed->latent.btc_close[c - 1]);
    const double base_ret = std::log(baseline->latent.btc_close[c] /
                                     baseline->latent.btc_close[c - 1]);
    // The injected shock is the difference to the organic return; at
    // the default magnitude it is at least a ~20% extra down-move.
    EXPECT_LT(stressed_ret - base_ret, -0.20) << "crash day " << c;
    EXPECT_GT(crashed->latent.btc_volume_usd[c],
              2.0 * baseline->latent.btc_volume_usd[c]);
    // Candle stays coherent through the shock.
    EXPECT_GE(crashed->latent.btc_high[c], crashed->latent.btc_close[c]);
    EXPECT_LE(crashed->latent.btc_low[c], crashed->latent.btc_close[c]);
    EXPECT_GT(crashed->latent.btc_low[c], 0.0);
  }
  // The shock reaches the observable metric table.
  const table::Column& close = **crashed->metrics.GetColumn(kBtcCloseColumn);
  EXPECT_EQ(close.value(days[0]), crashed->latent.btc_close[days[0]]);
}

TEST(StressTest, OutageFreezesOhlcvAndDarkensSentiment) {
  const auto baseline = SimulateMarket(SmallConfig());
  ASSERT_TRUE(baseline.ok());
  MarketSimConfig config = SmallConfig();
  config.stress.outage.enabled = true;
  const auto stressed = SimulateMarket(config);
  ASSERT_TRUE(stressed.ok());

  const auto windows =
      OutageWindows(config.stress.outage, config.seed ^ 0x57e55ull,
                    stressed->latent.num_days());
  ASSERT_FALSE(windows.empty());
  const auto sentiment_names =
      stressed->catalog.NamesInCategory(DataCategory::kSentiment);
  ASSERT_FALSE(sentiment_names.empty());
  for (const auto& [start, end] : windows) {
    const double last_trade = stressed->latent.btc_close[start - 1];
    for (size_t t = start; t < end; ++t) {
      EXPECT_EQ(stressed->latent.btc_open[t], last_trade);
      EXPECT_EQ(stressed->latent.btc_high[t], last_trade);
      EXPECT_EQ(stressed->latent.btc_low[t], last_trade);
      EXPECT_EQ(stressed->latent.btc_close[t], last_trade);
      EXPECT_EQ(stressed->latent.btc_volume_usd[t], 0.0);
      for (const auto& name : sentiment_names) {
        EXPECT_TRUE((*stressed->metrics.GetColumn(name))->is_null(t))
            << name << " at row " << t;
      }
    }
    // The baseline market records sentiment over the same rows (the
    // windows land after every sentiment feed has started).
    size_t baseline_valid = 0;
    for (const auto& name : sentiment_names) {
      for (size_t t = start; t < end; ++t) {
        baseline_valid +=
            (*baseline->metrics.GetColumn(name))->is_valid(t) ? 1 : 0;
      }
    }
    EXPECT_GT(baseline_valid, 0u);
  }
}

TEST(StressTest, DepegEmitsPegColumnsAndRedemptionRun) {
  const auto baseline = SimulateMarket(SmallConfig());
  ASSERT_TRUE(baseline.ok());
  EXPECT_FALSE(baseline->metrics.HasColumn("usdc_PriceUSD"));
  EXPECT_FALSE(baseline->metrics.HasColumn("usdc_PegDevBps"));

  MarketSimConfig config = SmallConfig();
  config.stress.depeg.enabled = true;
  const auto stressed = SimulateMarket(config);
  ASSERT_TRUE(stressed.ok());
  ASSERT_TRUE(stressed->metrics.HasColumn("usdc_PriceUSD"));
  ASSERT_TRUE(stressed->metrics.HasColumn("usdc_PegDevBps"));
  EXPECT_TRUE(stressed->catalog.Has("usdc_PriceUSD"));

  const table::Column& price = **stressed->metrics.GetColumn("usdc_PriceUSD");
  const table::Column& dev = **stressed->metrics.GetColumn("usdc_PegDevBps");
  double min_price = 2.0;
  size_t trough = 0;
  for (size_t t = 0; t < price.size(); ++t) {
    if (price.is_valid(t) && price.value(t) < min_price) {
      min_price = price.value(t);
      trough = t;
    }
  }
  // Default depth 0.10 with a [0.8, 1.2] event multiplier: the trough
  // trades at least 4% under the peg.
  EXPECT_LT(min_price, 0.96);
  EXPECT_GT(dev.value(trough), 0.0);
  // Redemption run: the depeg shrinks supply relative to the baseline
  // path (the peg term subtracts deterministically; observation noise
  // draws are unchanged).
  const table::Column& base_supply = **baseline->metrics.GetColumn("usdc_SplyCur");
  const table::Column& depeg_supply =
      **stressed->metrics.GetColumn("usdc_SplyCur");
  ASSERT_TRUE(depeg_supply.is_valid(trough + 3));
  EXPECT_LT(depeg_supply.value(trough + 3), base_supply.value(trough + 3));
}

TEST(StressTest, RankChurnMultipliersMarkRebalanceBoundaries) {
  RankChurnStress churn;
  churn.enabled = true;
  churn.sigma_mult = 5.0;
  churn.half_width_days = 2;
  const std::vector<Date> dates = DailyRange(Date(2020, 1, 1), Date(2020, 3, 15));
  const auto mult = RankChurnSigmaMultipliers(churn, dates);
  ASSERT_EQ(mult.size(), dates.size());
  for (size_t t = 0; t < dates.size(); ++t) {
    const int day = dates[t].day();
    const bool near_boundary =
        day <= 3 || (dates[t].month() == 1 && day >= 30) ||
        (dates[t].month() == 2 && day >= 28);
    EXPECT_EQ(mult[t], near_boundary ? 5.0 : 1.0) << dates[t].ToString();
  }
  churn.enabled = false;
  for (double m : RankChurnSigmaMultipliers(churn, dates)) EXPECT_EQ(m, 1.0);
}

TEST(StressTest, RankChurnStormsTop100AtBoundaries) {
  const auto baseline = SimulateMarket(SmallConfig());
  ASSERT_TRUE(baseline.ok());
  MarketSimConfig config = SmallConfig();
  config.stress.rank_churn.enabled = true;
  const auto stressed = SimulateMarket(config);
  ASSERT_TRUE(stressed.ok());

  // Compare membership churn on rebalance-boundary days vs mid-month,
  // after a warm-up year so the alt universe is populated.
  double boundary_stressed = 0.0, boundary_base = 0.0, interior_stressed = 0.0;
  size_t boundary_days = 0, interior_days = 0;
  const auto& dates = stressed->latent.dates;
  for (size_t t = 366; t < dates.size(); ++t) {
    const int day = dates[t].day();
    if (day <= 1 + config.stress.rank_churn.half_width_days) {
      boundary_stressed += static_cast<double>(MembershipChurn(stressed->panel, t));
      boundary_base += static_cast<double>(MembershipChurn(baseline->panel, t));
      ++boundary_days;
    } else if (day >= 12 && day <= 18) {
      interior_stressed += static_cast<double>(MembershipChurn(stressed->panel, t));
      ++interior_days;
    }
  }
  ASSERT_GT(boundary_days, 0u);
  ASSERT_GT(interior_days, 0u);
  // The storm at least doubles boundary churn relative to the organic
  // level and clearly exceeds the stressed market's own mid-month rate.
  EXPECT_GT(boundary_stressed, 2.0 * boundary_base);
  EXPECT_GT(boundary_stressed / static_cast<double>(boundary_days),
            1.5 * interior_stressed / static_cast<double>(interior_days));
}

TEST(StressTest, EveryInjectorIsBitwiseSeedDeterministic) {
  for (int which = 0; which < 4; ++which) {
    MarketSimConfig config = SmallConfig(7);
    switch (which) {
      case 0: config.stress.flash_crash.enabled = true; break;
      case 1: config.stress.depeg.enabled = true; break;
      case 2: config.stress.outage.enabled = true; break;
      default: config.stress.rank_churn.enabled = true; break;
    }
    const auto a = SimulateMarket(config);
    const auto b = SimulateMarket(config);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(FirstMetricsDifference(*a, *b), "") << "injector " << which;
    EXPECT_EQ(a->latent.btc_close, b->latent.btc_close) << "injector " << which;
    EXPECT_EQ(a->panel.mcap, b->panel.mcap) << "injector " << which;
    // ... and differs from the unstressed market (the injector did
    // something).
    const auto plain = SimulateMarket(SmallConfig(7));
    const bool metrics_differ = FirstMetricsDifference(*plain, *a) != "";
    const bool panel_differs = plain->panel.mcap != a->panel.mcap;
    EXPECT_TRUE(metrics_differ || panel_differs) << "injector " << which;
  }
}

TEST(StressTest, InvalidStressParametersAreRejected) {
  MarketSimConfig config = SmallConfig();
  config.stress.flash_crash.enabled = true;
  config.stress.flash_crash.magnitude = 0.0;
  EXPECT_FALSE(SimulateMarket(config).ok());
  config = SmallConfig();
  config.stress.outage.enabled = true;
  config.stress.outage.duration_days = 0;
  EXPECT_FALSE(SimulateMarket(config).ok());
}

}  // namespace
}  // namespace fab::sim
