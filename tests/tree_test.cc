#include "ml/tree.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"

namespace fab::ml {
namespace {

/// Fits a plain (unweighted) regression tree on (x, y).
RegressionTree FitTree(const ColMatrix& x, const std::vector<double>& y,
                       TreeParams params) {
  auto binned = BinnedMatrix::Build(x);
  std::vector<double> g(y.size()), h(y.size(), 1.0);
  for (size_t i = 0; i < y.size(); ++i) g[i] = -y[i];
  RegressionTree tree;
  Rng rng(3);
  EXPECT_TRUE(tree.Fit(*binned, g, h, params, &rng).ok());
  return tree;
}

TEST(TreeTest, RejectsBadInput) {
  auto x = ColMatrix::FromColumns({{1, 2, 3}});
  auto binned = BinnedMatrix::Build(*x);
  RegressionTree tree;
  TreeParams params;
  std::vector<double> short_g{1.0};
  std::vector<double> h(3, 1.0);
  EXPECT_FALSE(tree.Fit(*binned, short_g, h, params, nullptr).ok());
  params.max_depth = 0;
  std::vector<double> g(3, 1.0);
  EXPECT_FALSE(tree.Fit(*binned, g, h, params, nullptr).ok());
  params.max_depth = 3;
  params.colsample_per_node = 0.5;
  EXPECT_FALSE(tree.Fit(*binned, g, h, params, nullptr).ok());  // null rng
}

TEST(TreeTest, ConstantTargetGivesSingleLeaf) {
  auto x = ColMatrix::FromColumns({{1, 2, 3, 4}});
  const RegressionTree tree = FitTree(*x, {5, 5, 5, 5}, TreeParams{});
  EXPECT_EQ(tree.NumLeaves(), 1);
  EXPECT_DOUBLE_EQ(tree.PredictOne(*x, 0), 5.0);
}

TEST(TreeTest, SplitsOnTheInformativeFeature) {
  Rng rng(7);
  std::vector<double> informative(200), noise(200), y(200);
  for (size_t i = 0; i < 200; ++i) {
    informative[i] = rng.Normal();
    noise[i] = rng.Normal();
    y[i] = informative[i] > 0.0 ? 10.0 : -10.0;
  }
  auto x = ColMatrix::FromColumns({noise, informative});
  TreeParams params;
  params.max_depth = 2;
  const RegressionTree tree = FitTree(*x, y, params);
  ASSERT_TRUE(tree.fitted());
  EXPECT_EQ(tree.nodes()[0].feature, 1);
  EXPECT_NEAR(tree.nodes()[0].threshold, 0.0, 0.3);
  EXPECT_GT(tree.gain_importance()[1], tree.gain_importance()[0]);
}

TEST(TreeTest, PerfectlySeparableDataFitsExactly) {
  auto x = ColMatrix::FromColumns({{1, 2, 3, 4, 5, 6, 7, 8}});
  const std::vector<double> y{1, 1, 1, 1, 9, 9, 9, 9};
  TreeParams params;
  params.max_depth = 4;
  const RegressionTree tree = FitTree(*x, y, params);
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(tree.PredictOne(*x, i), y[i]);
  }
}

TEST(TreeTest, RespectsMaxDepth) {
  Rng rng(9);
  std::vector<double> col(500), y(500);
  for (size_t i = 0; i < 500; ++i) {
    col[i] = rng.Normal();
    y[i] = rng.Normal();
  }
  auto x = ColMatrix::FromColumns({col});
  for (int depth : {1, 2, 4, 6}) {
    TreeParams params;
    params.max_depth = depth;
    params.min_child_weight = 1.0;
    params.min_split_weight = 2.0;
    const RegressionTree tree = FitTree(*x, y, params);
    EXPECT_LE(tree.Depth(), depth);
  }
}

TEST(TreeTest, RespectsMinChildWeight) {
  Rng rng(11);
  std::vector<double> col(300), y(300);
  for (size_t i = 0; i < 300; ++i) {
    col[i] = rng.Normal();
    y[i] = col[i] + 0.1 * rng.Normal();
  }
  auto x = ColMatrix::FromColumns({col});
  TreeParams params;
  params.max_depth = 10;
  params.min_child_weight = 30.0;
  const RegressionTree tree = FitTree(*x, y, params);
  // No leaf can hold fewer than 30 samples: <= 10 leaves for n = 300.
  EXPECT_LE(tree.NumLeaves(), 10);
}

TEST(TreeTest, LeafValuesAreChildMeans) {
  // Single split; leaves must predict the group means exactly.
  auto x = ColMatrix::FromColumns({{1, 2, 10, 11}});
  const std::vector<double> y{3, 5, 21, 23};
  TreeParams params;
  params.max_depth = 1;
  const RegressionTree tree = FitTree(*x, y, params);
  EXPECT_DOUBLE_EQ(tree.PredictOne(*x, 0), 4.0);
  EXPECT_DOUBLE_EQ(tree.PredictOne(*x, 3), 22.0);
}

TEST(TreeTest, LambdaShrinksLeafValues) {
  auto x = ColMatrix::FromColumns({{1, 2, 10, 11}});
  const std::vector<double> y{4, 4, 20, 20};
  TreeParams reg;
  reg.max_depth = 1;
  reg.lambda = 2.0;
  auto binned = BinnedMatrix::Build(*x);
  std::vector<double> g(4), h(4, 1.0);
  for (size_t i = 0; i < 4; ++i) g[i] = -y[i];
  RegressionTree tree;
  ASSERT_TRUE(tree.Fit(*binned, g, h, reg, nullptr).ok());
  // Leaf value = sum(y) / (count + lambda) = 8 / 4 = 2 < unregularized 4.
  EXPECT_DOUBLE_EQ(tree.PredictOne(*x, 0), 2.0);
}

TEST(TreeTest, GammaPrunesWeakSplits) {
  Rng rng(13);
  std::vector<double> col(200), y(200);
  for (size_t i = 0; i < 200; ++i) {
    col[i] = rng.Normal();
    y[i] = 0.05 * col[i] + rng.Normal();  // weak signal
  }
  auto x = ColMatrix::FromColumns({col});
  TreeParams loose;
  loose.max_depth = 6;
  TreeParams strict = loose;
  strict.gamma = 1e6;
  const RegressionTree tree_loose = FitTree(*x, y, loose);
  const RegressionTree tree_strict = FitTree(*x, y, strict);
  EXPECT_GT(tree_loose.NumLeaves(), 1);
  EXPECT_EQ(tree_strict.NumLeaves(), 1);
}

TEST(TreeTest, ZeroWeightSamplesIgnored) {
  // Out-of-bag samples (g = h = 0) must not affect the fit.
  auto x = ColMatrix::FromColumns({{1, 2, 3, 4, 100}});
  auto binned = BinnedMatrix::Build(*x);
  // The outlier row has zero weight.
  std::vector<double> g{-1, -1, -9, -9, 0};
  std::vector<double> h{1, 1, 1, 1, 0};
  TreeParams params;
  params.max_depth = 2;
  RegressionTree tree;
  ASSERT_TRUE(tree.Fit(*binned, g, h, params, nullptr).ok());
  EXPECT_DOUBLE_EQ(tree.PredictOne(*x, 0), 1.0);
  EXPECT_DOUBLE_EQ(tree.PredictOne(*x, 2), 9.0);
}

TEST(TreeTest, CoverTracksHessianMass) {
  auto x = ColMatrix::FromColumns({{1, 2, 3, 4}});
  const RegressionTree tree = FitTree(*x, {1, 1, 9, 9}, TreeParams{});
  EXPECT_DOUBLE_EQ(tree.nodes()[0].cover, 4.0);
  // Children covers sum to the parent cover.
  const TreeNode& root = tree.nodes()[0];
  if (root.feature >= 0) {
    EXPECT_DOUBLE_EQ(
        tree.nodes()[static_cast<size_t>(root.left)].cover +
            tree.nodes()[static_cast<size_t>(root.right)].cover,
        root.cover);
  }
}

TEST(TreeTest, DeterministicWithSameRngSeed) {
  Rng data_rng(17);
  std::vector<std::vector<double>> cols(10, std::vector<double>(200));
  for (auto& c : cols) {
    for (auto& v : c) v = data_rng.Normal();
  }
  std::vector<double> y(200);
  for (size_t i = 0; i < 200; ++i) y[i] = cols[0][i] + 0.3 * data_rng.Normal();
  auto x = ColMatrix::FromColumns(cols);
  auto binned = BinnedMatrix::Build(*x);
  std::vector<double> g(200), h(200, 1.0);
  for (size_t i = 0; i < 200; ++i) g[i] = -y[i];
  TreeParams params;
  params.colsample_per_node = 0.5;
  RegressionTree a, b;
  Rng rng_a(5), rng_b(5);
  ASSERT_TRUE(a.Fit(*binned, g, h, params, &rng_a).ok());
  ASSERT_TRUE(b.Fit(*binned, g, h, params, &rng_b).ok());
  ASSERT_EQ(a.nodes().size(), b.nodes().size());
  for (size_t i = 0; i < a.nodes().size(); ++i) {
    EXPECT_EQ(a.nodes()[i].feature, b.nodes()[i].feature);
    EXPECT_DOUBLE_EQ(a.nodes()[i].threshold, b.nodes()[i].threshold);
  }
}

class TreeDepthSweep : public ::testing::TestWithParam<int> {};

TEST_P(TreeDepthSweep, TrainErrorDecreasesWithDepth) {
  Rng rng(23);
  const size_t n = 600;
  std::vector<double> c0(n), c1(n), y(n);
  for (size_t i = 0; i < n; ++i) {
    c0[i] = rng.Normal();
    c1[i] = rng.Normal();
    y[i] = std::sin(2.0 * c0[i]) + c1[i] * c1[i];
  }
  auto x = ColMatrix::FromColumns({c0, c1});
  TreeParams shallow;
  shallow.max_depth = GetParam();
  TreeParams deeper;
  deeper.max_depth = GetParam() + 2;
  const RegressionTree tree_shallow = FitTree(*x, y, shallow);
  const RegressionTree tree_deeper = FitTree(*x, y, deeper);
  auto sse = [&](const RegressionTree& tree) {
    double acc = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double d = tree.PredictOne(*x, i) - y[i];
      acc += d * d;
    }
    return acc;
  };
  EXPECT_LE(sse(tree_deeper), sse(tree_shallow) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Depths, TreeDepthSweep, ::testing::Values(1, 2, 3, 5));

}  // namespace
}  // namespace fab::ml
