#include "ml/forest.h"

#include <gtest/gtest.h>

#include <cmath>

#include "ml/metrics.h"
#include "util/random.h"

namespace fab::ml {
namespace {

Dataset MakeLinearDataset(size_t n, size_t f, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> cols(f, std::vector<double>(n));
  for (auto& c : cols) {
    for (auto& v : c) v = rng.Normal();
  }
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    y[i] = 3.0 * cols[0][i] - 2.0 * cols[1][i] + 0.2 * rng.Normal();
  }
  Dataset d;
  d.x = *ColMatrix::FromColumns(std::move(cols));
  d.y = std::move(y);
  for (size_t j = 0; j < f; ++j) d.feature_names.push_back("f" + std::to_string(j));
  return d;
}

TEST(ForestTest, RejectsBadInput) {
  RandomForestRegressor rf;
  auto x = ColMatrix::FromColumns({{1, 2, 3}});
  EXPECT_FALSE(rf.Fit(*x, {1.0}).ok());  // size mismatch
  ForestParams params;
  params.n_trees = 0;
  RandomForestRegressor bad_trees(params);
  EXPECT_FALSE(bad_trees.Fit(*x, {1, 2, 3}).ok());
  params.n_trees = 5;
  params.max_features = 1.5;
  RandomForestRegressor bad_mf(params);
  EXPECT_FALSE(bad_mf.Fit(*x, {1, 2, 3}).ok());
}

TEST(ForestTest, LearnsLinearSignalBeyondMeanPredictor) {
  const Dataset d = MakeLinearDataset(600, 10, 5);
  ForestParams params;
  params.n_trees = 40;
  params.max_depth = 8;
  RandomForestRegressor rf(params);
  ASSERT_TRUE(rf.Fit(d.x, d.y).ok());
  const std::vector<double> pred = rf.Predict(d.x);
  EXPECT_GT(R2Score(d.y, pred), 0.8);
}

TEST(ForestTest, ImportancesConcentrateOnSignalFeatures) {
  const Dataset d = MakeLinearDataset(600, 10, 7);
  ForestParams params;
  params.n_trees = 40;
  params.max_depth = 8;
  params.max_features = 0.5;
  RandomForestRegressor rf(params);
  ASSERT_TRUE(rf.Fit(d.x, d.y).ok());
  const std::vector<double> imp = rf.FeatureImportances();
  double total = 0.0;
  for (double v : imp) total += v;
  EXPECT_NEAR(total, 1.0, 1e-9);
  // f0 and f1 carry all the signal.
  EXPECT_GT(imp[0] + imp[1], 0.8);
  for (size_t j = 2; j < imp.size(); ++j) EXPECT_LT(imp[j], 0.05);
}

TEST(ForestTest, DeterministicInSeed) {
  const Dataset d = MakeLinearDataset(300, 5, 9);
  ForestParams params;
  params.n_trees = 10;
  params.seed = 1234;
  params.num_threads = 1;  // fixed tree order
  RandomForestRegressor a(params), b(params);
  ASSERT_TRUE(a.Fit(d.x, d.y).ok());
  ASSERT_TRUE(b.Fit(d.x, d.y).ok());
  EXPECT_EQ(a.Predict(d.x), b.Predict(d.x));
}

TEST(ForestTest, DifferentSeedsGiveDifferentForests) {
  const Dataset d = MakeLinearDataset(300, 5, 9);
  ForestParams params;
  params.n_trees = 10;
  params.num_threads = 1;
  params.seed = 1;
  RandomForestRegressor a(params);
  params.seed = 2;
  RandomForestRegressor b(params);
  ASSERT_TRUE(a.Fit(d.x, d.y).ok());
  ASSERT_TRUE(b.Fit(d.x, d.y).ok());
  EXPECT_NE(a.Predict(d.x), b.Predict(d.x));
}

TEST(ForestTest, PredictionsWithinTargetRange) {
  // Tree means cannot extrapolate beyond observed targets.
  const Dataset d = MakeLinearDataset(400, 6, 11);
  double lo = d.y[0], hi = d.y[0];
  for (double v : d.y) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  RandomForestRegressor rf(ForestParams{.n_trees = 20, .max_depth = 6});
  ASSERT_TRUE(rf.Fit(d.x, d.y).ok());
  for (double p : rf.Predict(d.x)) {
    EXPECT_GE(p, lo - 1e-9);
    EXPECT_LE(p, hi + 1e-9);
  }
}

TEST(ForestTest, MoreTreesReduceVariance) {
  // Out-of-sample MSE with 60 trees should beat 2 trees on average.
  const Dataset train = MakeLinearDataset(500, 8, 13);
  const Dataset test = MakeLinearDataset(500, 8, 14);
  ForestParams small;
  small.n_trees = 2;
  small.max_depth = 8;
  ForestParams large = small;
  large.n_trees = 60;
  RandomForestRegressor rf_small(small), rf_large(large);
  ASSERT_TRUE(rf_small.Fit(train.x, train.y).ok());
  ASSERT_TRUE(rf_large.Fit(train.x, train.y).ok());
  const double mse_small = MeanSquaredError(test.y, rf_small.Predict(test.x));
  const double mse_large = MeanSquaredError(test.y, rf_large.Predict(test.x));
  EXPECT_LT(mse_large, mse_small);
}

TEST(ForestTest, SetParamUpdatesAndValidates) {
  RandomForestRegressor rf;
  EXPECT_TRUE(rf.SetParam("n_trees", 7).ok());
  EXPECT_TRUE(rf.SetParam("max_depth", 3).ok());
  EXPECT_TRUE(rf.SetParam("min_samples_leaf", 4).ok());
  EXPECT_TRUE(rf.SetParam("max_features", 0.5).ok());
  EXPECT_TRUE(rf.SetParam("seed", 42).ok());
  EXPECT_FALSE(rf.SetParam("bogus", 1).ok());
  EXPECT_EQ(rf.params().n_trees, 7);
  EXPECT_EQ(rf.params().max_depth, 3);
}

TEST(ForestTest, CloneUnfittedCopiesParams) {
  ForestParams params;
  params.n_trees = 13;
  RandomForestRegressor rf(params);
  auto clone = rf.CloneUnfitted();
  auto* typed = dynamic_cast<RandomForestRegressor*>(clone.get());
  ASSERT_NE(typed, nullptr);
  EXPECT_EQ(typed->params().n_trees, 13);
  EXPECT_TRUE(typed->trees().empty());
  EXPECT_EQ(clone->name(), "rf");
}

TEST(ForestTest, BootstrapFractionControlsBagSize) {
  const Dataset d = MakeLinearDataset(400, 5, 15);
  ForestParams params;
  params.n_trees = 5;
  params.bootstrap_fraction = 0.1;
  params.max_depth = 12;
  params.min_samples_leaf = 1.0;
  RandomForestRegressor rf(params);
  ASSERT_TRUE(rf.Fit(d.x, d.y).ok());
  // With 40-sample bags, trees stay small.
  for (const RegressionTree& tree : rf.trees()) {
    EXPECT_LE(tree.NumLeaves(), 41);
  }
}

}  // namespace
}  // namespace fab::ml
