// Proves the pipeline's thread-count-invariance guarantee: PFI, SHAP,
// a full FRA run, forest training and an improvement-style CV fold all
// produce BITWISE-identical doubles at shared-pool widths 1, 2 and 8.
// Every assertion below is EXPECT_EQ on doubles, deliberately not
// approximate — parallel units derive their RNG streams from
// (seed, unit_index) and reduce in index order, so nothing may drift.

#include <gtest/gtest.h>

#include <vector>

#include "core/fra.h"
#include "explain/permutation.h"
#include "explain/shap.h"
#include "ml/forest.h"
#include "ml/gbdt.h"
#include "ml/model_selection.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace fab {
namespace {

const int kThreadCounts[] = {1, 2, 8};

ml::Dataset MakeDataset(size_t rows, size_t n_signal, size_t n_noise,
                        uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> cols(n_signal + n_noise,
                                        std::vector<double>(rows));
  for (auto& c : cols) {
    for (auto& v : c) v = rng.Normal();
  }
  std::vector<double> y(rows, 0.0);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < n_signal; ++j) {
      y[i] += (1.0 + 0.3 * static_cast<double>(j)) * cols[j][i];
    }
    y[i] += 0.25 * rng.Normal();
  }
  ml::Dataset d;
  d.x = *ml::ColMatrix::FromColumns(std::move(cols));
  d.y = std::move(y);
  for (size_t j = 0; j < n_signal + n_noise; ++j) {
    d.feature_names.push_back("f" + std::to_string(j));
  }
  return d;
}

/// Runs `compute()` once per thread count and asserts all runs are
/// bitwise equal to the first.
template <typename Fn>
void ExpectInvariantAcrossThreadCounts(const Fn& compute) {
  util::SetSharedPoolThreads(kThreadCounts[0]);
  const auto baseline = compute();
  for (size_t k = 1; k < std::size(kThreadCounts); ++k) {
    util::SetSharedPoolThreads(kThreadCounts[k]);
    const auto run = compute();
    ASSERT_EQ(run.size(), baseline.size()) << "threads=" << kThreadCounts[k];
    for (size_t i = 0; i < run.size(); ++i) {
      EXPECT_EQ(run[i], baseline[i])
          << "slot " << i << " differs at threads=" << kThreadCounts[k];
    }
  }
  util::SetSharedPoolThreads(0);
}

class DeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    train_ = MakeDataset(240, 3, 9, 101);
    valid_ = MakeDataset(120, 3, 9, 103);
  }

  ml::ForestParams SmallForest() const {
    ml::ForestParams params;
    params.n_trees = 12;
    params.max_depth = 5;
    params.max_features = 0.5;
    params.seed = 19;
    return params;
  }

  ml::Dataset train_, valid_;
};

TEST_F(DeterminismTest, ForestFitBitwiseInvariant) {
  ExpectInvariantAcrossThreadCounts([&] {
    ml::RandomForestRegressor rf(SmallForest());
    EXPECT_TRUE(rf.Fit(train_.x, train_.y).ok());
    std::vector<double> out = rf.Predict(valid_.x);
    const std::vector<double> imp = rf.FeatureImportances();
    out.insert(out.end(), imp.begin(), imp.end());
    return out;
  });
}

TEST_F(DeterminismTest, PermutationImportanceBitwiseInvariant) {
  ml::RandomForestRegressor rf(SmallForest());
  ASSERT_TRUE(rf.Fit(train_.x, train_.y).ok());
  ExpectInvariantAcrossThreadCounts([&] {
    explain::PermutationOptions options;
    options.n_repeats = 2;
    options.seed = 55;
    const auto imp = explain::PermutationImportance(rf, valid_, options);
    EXPECT_TRUE(imp.ok());
    return *imp;
  });
}

TEST_F(DeterminismTest, MeanAbsShapBitwiseInvariant) {
  ml::RandomForestRegressor rf(SmallForest());
  ASSERT_TRUE(rf.Fit(train_.x, train_.y).ok());
  ml::GbdtParams xgb_params;
  xgb_params.n_rounds = 20;
  xgb_params.max_depth = 3;
  xgb_params.seed = 23;
  ml::GbdtRegressor xgb(xgb_params);
  ASSERT_TRUE(xgb.Fit(train_.x, train_.y).ok());
  ExpectInvariantAcrossThreadCounts([&] {
    const auto rf_shap = explain::MeanAbsShapForest(rf, valid_.x);
    const auto xgb_shap = explain::MeanAbsShapGbdt(xgb, valid_.x);
    EXPECT_TRUE(rf_shap.ok() && xgb_shap.ok());
    std::vector<double> out = *rf_shap;
    out.insert(out.end(), xgb_shap->begin(), xgb_shap->end());
    return out;
  });
}

TEST_F(DeterminismTest, ImprovementCvFoldBitwiseInvariant) {
  // The improvement experiment's measurement unit: shuffled KFold +
  // cross-validated MSE of a cloned model per fold.
  ExpectInvariantAcrossThreadCounts([&] {
    const auto folds =
        ml::KFold(train_.num_rows(), 4, /*shuffle=*/true, 0xC0FFEEull);
    EXPECT_TRUE(folds.ok());
    ml::RandomForestRegressor rf(SmallForest());
    const auto rf_mse = ml::CrossValMse(rf, train_, *folds);
    EXPECT_TRUE(rf_mse.ok());
    ml::GbdtParams xgb_params;
    xgb_params.n_rounds = 15;
    xgb_params.max_depth = 3;
    ml::GbdtRegressor xgb(xgb_params);
    const auto xgb_mse = ml::CrossValMse(xgb, train_, *folds);
    EXPECT_TRUE(xgb_mse.ok());
    return std::vector<double>{*rf_mse, *xgb_mse};
  });
}

TEST_F(DeterminismTest, FraBitwiseInvariant) {
  // A full (small) FRA run: iterations of four importance fits plus the
  // final consensus ranking — the pipeline's hottest composite path.
  core::FraOptions options;
  options.target_size = 6;
  options.rf.n_trees = 10;
  options.rf.max_depth = 5;
  options.rf.max_features = 0.5;
  options.xgb.n_rounds = 15;
  options.xgb.max_depth = 3;
  options.pfi_repeats = 1;
  options.seed = 909;

  util::SetSharedPoolThreads(1);
  const auto baseline = core::RunFra(train_, options);
  ASSERT_TRUE(baseline.ok());
  for (size_t k = 1; k < std::size(kThreadCounts); ++k) {
    util::SetSharedPoolThreads(kThreadCounts[k]);
    const auto run = core::RunFra(train_, options);
    ASSERT_TRUE(run.ok());
    EXPECT_EQ(run->selected, baseline->selected)
        << "ranking differs at threads=" << kThreadCounts[k];
    ASSERT_EQ(run->selected_scores.size(), baseline->selected_scores.size());
    for (size_t i = 0; i < run->selected_scores.size(); ++i) {
      EXPECT_EQ(run->selected_scores[i], baseline->selected_scores[i]);
    }
    ASSERT_EQ(run->history.size(), baseline->history.size());
    for (size_t i = 0; i < run->history.size(); ++i) {
      EXPECT_EQ(run->history[i].features_removed,
                baseline->history[i].features_removed);
    }
  }
  util::SetSharedPoolThreads(0);
}

}  // namespace
}  // namespace fab
