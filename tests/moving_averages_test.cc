#include "ta/moving_averages.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"

namespace fab::ta {
namespace {

TEST(SmaTest, KnownValues) {
  const table::Column out = Sma({1, 2, 3, 4, 5}, 3);
  EXPECT_TRUE(out.is_null(0));
  EXPECT_TRUE(out.is_null(1));
  EXPECT_DOUBLE_EQ(out.value(2), 2.0);
  EXPECT_DOUBLE_EQ(out.value(3), 3.0);
  EXPECT_DOUBLE_EQ(out.value(4), 4.0);
}

TEST(SmaTest, WindowOneIsIdentity) {
  const table::Column out = Sma({5, 7, 9}, 1);
  EXPECT_DOUBLE_EQ(out.value(0), 5.0);
  EXPECT_DOUBLE_EQ(out.value(2), 9.0);
}

TEST(SmaTest, TooShortInputAllNull) {
  EXPECT_EQ(Sma({1, 2}, 5).null_count(), 2u);
}

TEST(SmaTest, InvalidWindowAllNull) {
  EXPECT_EQ(Sma({1, 2, 3}, 0).null_count(), 3u);
}

TEST(EmaTest, SeededWithSmaThenSmooths) {
  const table::Column out = Ema({2, 4, 6, 8}, 2);
  EXPECT_TRUE(out.is_null(0));
  EXPECT_DOUBLE_EQ(out.value(1), 3.0);  // SMA seed of {2, 4}
  // alpha = 2/3: 6*2/3 + 3/3 = 5; 8*2/3 + 5/3 ≈ 7.
  EXPECT_NEAR(out.value(2), 5.0, 1e-12);
  EXPECT_NEAR(out.value(3), 7.0, 1e-12);
}

TEST(EmaTest, ConstantSeriesStaysConstant) {
  const table::Column out = Ema(std::vector<double>(50, 3.5), 10);
  for (size_t i = 9; i < 50; ++i) EXPECT_DOUBLE_EQ(out.value(i), 3.5);
}

TEST(EmaTest, ConvergesToNewLevelAfterStep) {
  std::vector<double> series(20, 10.0);
  series.resize(200, 20.0);  // step to 20
  const table::Column out = Ema(series, 10);
  EXPECT_NEAR(out.value(199), 20.0, 1e-6);
}

TEST(WmaTest, KnownValues) {
  // WMA of {1,2,3} with window 3: (1*1 + 2*2 + 3*3)/6 = 14/6.
  const table::Column out = Wma({1, 2, 3}, 3);
  EXPECT_NEAR(out.value(2), 14.0 / 6.0, 1e-12);
}

TEST(WmaTest, WeightsRecentMoreThanSma) {
  // Rising series: WMA > SMA because recent (larger) values weigh more.
  const std::vector<double> rising{1, 2, 3, 4, 5, 6};
  const table::Column wma = Wma(rising, 4);
  const table::Column sma = Sma(rising, 4);
  for (size_t i = 3; i < rising.size(); ++i) {
    EXPECT_GT(wma.value(i), sma.value(i));
  }
}

class MaWindowSweep : public ::testing::TestWithParam<int> {
 protected:
  std::vector<double> RandomWalk(size_t n, uint64_t seed) {
    Rng rng(seed);
    std::vector<double> out(n);
    double p = 100.0;
    for (auto& v : out) {
      p *= std::exp(0.02 * rng.Normal());
      v = p;
    }
    return out;
  }
};

TEST_P(MaWindowSweep, AveragesStayWithinRollingRange) {
  const int w = GetParam();
  const std::vector<double> series = RandomWalk(300, 17);
  const table::Column sma = Sma(series, w);
  const table::Column ema = Ema(series, w);
  const table::Column wma = Wma(series, w);
  for (size_t i = static_cast<size_t>(w) - 1; i < series.size(); ++i) {
    double lo = series[i];
    double hi = series[i];
    for (size_t j = i + 1 - static_cast<size_t>(w); j <= i; ++j) {
      lo = std::min(lo, series[j]);
      hi = std::max(hi, series[j]);
    }
    EXPECT_GE(sma.value(i), lo);
    EXPECT_LE(sma.value(i), hi);
    EXPECT_GE(wma.value(i), lo);
    EXPECT_LE(wma.value(i), hi);
    (void)ema;  // EMA can exceed the window range slightly via its memory.
  }
}

TEST_P(MaWindowSweep, WarmupLengthMatchesWindow) {
  const int w = GetParam();
  const std::vector<double> series = RandomWalk(100, 23);
  const table::Column sma = Sma(series, w);
  if (static_cast<size_t>(w) > series.size()) {
    EXPECT_EQ(sma.null_count(), series.size());  // too short: all null
    return;
  }
  for (int i = 0; i < w - 1; ++i) {
    EXPECT_TRUE(sma.is_null(static_cast<size_t>(i)));
  }
  EXPECT_TRUE(sma.is_valid(static_cast<size_t>(w - 1)));
}

TEST_P(MaWindowSweep, SmaLagsEmaOnTrends) {
  const int w = GetParam();
  // Strictly rising series: EMA reacts faster, so EMA >= SMA.
  std::vector<double> rising(200);
  for (size_t i = 0; i < rising.size(); ++i) {
    rising[i] = static_cast<double>(i * i);
  }
  const table::Column sma = Sma(rising, w);
  const table::Column ema = Ema(rising, w);
  for (size_t i = static_cast<size_t>(2 * w); i < rising.size(); ++i) {
    EXPECT_GE(ema.value(i), sma.value(i));
  }
}

INSTANTIATE_TEST_SUITE_P(Windows, MaWindowSweep,
                         ::testing::Values(2, 5, 14, 50, 200));

}  // namespace
}  // namespace fab::ta
