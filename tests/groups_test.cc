#include "core/groups.h"

#include <gtest/gtest.h>

namespace fab::core {
namespace {

TEST(MergeGroupTest, AveragesDuplicateImportance) {
  ScoredFeatureVector w1;
  w1.window = 1;
  w1.features = {"a", "b"};
  w1.importance = {0.8, 0.2};
  ScoredFeatureVector w7;
  w7.window = 7;
  w7.features = {"b", "c"};
  w7.importance = {0.6, 0.4};
  const auto group = MergeGroup({w1, w7});
  ASSERT_TRUE(group.ok());
  ASSERT_EQ(group->features.size(), 3u);
  // a: 0.8, b: (0.2+0.6)/2 = 0.4, c: 0.4 -> ranked a, then b/c (stable).
  EXPECT_EQ(group->features[0], "a");
  EXPECT_DOUBLE_EQ(group->importance[0], 0.8);
  EXPECT_DOUBLE_EQ(group->importance[1], 0.4);
  EXPECT_DOUBLE_EQ(group->importance[2], 0.4);
}

TEST(MergeGroupTest, RankedDescending) {
  ScoredFeatureVector v;
  v.window = 1;
  v.features = {"low", "high", "mid"};
  v.importance = {0.1, 0.9, 0.5};
  const auto group = MergeGroup({v});
  EXPECT_EQ(group->features,
            (std::vector<std::string>{"high", "mid", "low"}));
}

TEST(MergeGroupTest, RejectsMismatchedLengths) {
  ScoredFeatureVector bad;
  bad.window = 1;
  bad.features = {"a"};
  bad.importance = {0.1, 0.2};
  EXPECT_FALSE(MergeGroup({bad}).ok());
}

TEST(MergeGroupTest, EmptyInputGivesEmptyGroup) {
  const auto group = MergeGroup({});
  ASSERT_TRUE(group.ok());
  EXPECT_TRUE(group->features.empty());
}

TEST(GroupTopKTest, TruncatesRanking) {
  HorizonGroup group;
  group.features = {"a", "b", "c"};
  group.importance = {3, 2, 1};
  EXPECT_EQ(GroupTopK(group, 2), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(GroupTopK(group, 10).size(), 3u);
}

TEST(GroupUniqueTopKTest, ExcludesOtherGroupMembers) {
  HorizonGroup short_term;
  short_term.features = {"ema5", "shared", "rsi", "obv"};
  short_term.importance = {4, 3, 2, 1};
  HorizonGroup long_term;
  long_term.features = {"shared", "supply"};
  long_term.importance = {2, 1};
  const auto unique = GroupUniqueTopK(short_term, long_term, 2);
  EXPECT_EQ(unique, (std::vector<std::string>{"ema5", "rsi"}));
  const auto unique_long = GroupUniqueTopK(long_term, short_term, 5);
  EXPECT_EQ(unique_long, (std::vector<std::string>{"supply"}));
}

TEST(GroupUniqueTopKTest, StopsAtK) {
  HorizonGroup a;
  a.features = {"x1", "x2", "x3", "x4"};
  a.importance = {4, 3, 2, 1};
  HorizonGroup empty;
  EXPECT_EQ(GroupUniqueTopK(a, empty, 2).size(), 2u);
}

// Pins the deterministic-emission contract: MergeGroup accumulates into a
// hash map, but tied importances must come out in first-appearance order
// across the input windows (stable ranking), never in hash order. With 20
// tied keys a regression to hash-order emission is all but guaranteed to
// permute this list on at least one standard library.
TEST(MergeGroupTest, TiedImportanceKeepsFirstAppearanceOrder) {
  ScoredFeatureVector w1;
  w1.window = 1;
  ScoredFeatureVector w7;
  w7.window = 7;
  std::vector<std::string> expected;
  for (int i = 0; i < 10; ++i) {
    const std::string a = "w1_feat_" + std::to_string(i);
    w1.features.push_back(a);
    w1.importance.push_back(0.5);
    expected.push_back(a);
  }
  for (int i = 0; i < 10; ++i) {
    const std::string b = "w7_feat_" + std::to_string(i);
    w7.features.push_back(b);
    w7.importance.push_back(0.5);
    expected.push_back(b);
  }
  const auto group = MergeGroup({w1, w7});
  ASSERT_TRUE(group.ok());
  EXPECT_EQ(group->features, expected);

  // Byte-identical on repeat evaluation.
  const auto again = MergeGroup({w1, w7});
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->features, group->features);
  EXPECT_EQ(again->importance, group->importance);
}

// A feature shared by both windows keeps its FIRST appearance slot even
// though the second window also mentions it.
TEST(MergeGroupTest, SharedFeatureKeepsFirstAppearanceSlot) {
  ScoredFeatureVector w1;
  w1.window = 1;
  w1.features = {"alpha", "shared", "beta"};
  w1.importance = {0.3, 0.3, 0.3};
  ScoredFeatureVector w7;
  w7.window = 7;
  w7.features = {"gamma", "shared"};
  w7.importance = {0.3, 0.3};
  const auto group = MergeGroup({w1, w7});
  ASSERT_TRUE(group.ok());
  EXPECT_EQ(group->features, (std::vector<std::string>{
                                 "alpha", "shared", "beta", "gamma"}));
}

}  // namespace
}  // namespace fab::core
